// Package dnscde is a reproduction of "Counting in the Dark: DNS Caches
// Discovery and Enumeration in the Internet" (Klein, Shulman, Waidner;
// DSN 2017): a library and toolset that discovers and counts the hidden
// caches of DNS resolution platforms, maps ingress IP addresses to cache
// clusters, and discovers egress IP addresses — using only standard DNS
// request/response behaviour as a side channel.
//
// The paper's methodology lives in internal/core; the measured objects
// (resolution platforms with configurable caches, load balancers and
// ingress/egress pools) in internal/platform; the simulated Internet in
// internal/netsim and internal/dnstree; and the evaluation drivers that
// regenerate every table and figure in internal/experiments. See
// DESIGN.md for the full inventory and EXPERIMENTS.md for measured
// results. Root-level benchmarks in bench_test.go regenerate each
// table/figure via `go test -bench=.`.
package dnscde

// Version identifies the reproduction release.
const Version = "1.0.0"
