module dnscde

go 1.22
