// Quickstart: build a simulated Internet, stand up a DNS resolution
// platform with a hidden cache configuration, and let CDE discover it
// from the outside.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"dnscde/internal/core"
	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
)

func main() {
	// A world = simulated network + root/TLD servers + the CDE
	// measurement infrastructure (cache.example and its nameservers).
	w, err := simtest.New(simtest.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// The measured object: a resolution platform with 3 hidden caches
	// behind 2 ingress IPs, picking caches uniformly at random — the
	// strategy >80% of the paper's networks use.
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "quickstart", Caches: 3, Ingress: 2, Egress: 4,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(7) },
	})
	if err != nil {
		log.Fatal(err)
	}
	truth := plat.GroundTruth()
	fmt.Printf("ground truth: %d caches, %d ingress IPs, %d egress IPs (%s selection)\n\n",
		truth.Caches, truth.IngressIPs, truth.EgressIPs, truth.Selector)

	ctx := context.Background()
	prober := w.DirectProber(plat.Config().IngressIPs[0])

	// §IV-B1a: q identical queries; arrivals at our nameserver = caches.
	enum, err := core.EnumerateDirect(ctx, prober, w.Infra, core.EnumOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CDE measured %d caches with %d probes (%s technique)\n",
		enum.Caches, enum.ProbesSent, enum.Technique)

	// §IV-B1b: which egress IPs talk to our nameservers?
	egress, err := core.DiscoverEgressAdaptive(ctx, prober, w.Infra, 32, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CDE discovered %d egress IPs with %d probes\n", len(egress.IPs), egress.ProbesSent)

	if enum.Caches == truth.Caches && len(egress.IPs) == truth.EgressIPs {
		fmt.Println("\nmeasurement matches ground truth ✔")
	} else {
		fmt.Println("\nmeasurement disagrees with ground truth ✘")
	}
}
