// Resilience monitoring: the paper's §II-B use case. A network operator
// (or an outside observer) repeatedly enumerates a platform's caches;
// when the measured count drops below the deployment's configured size,
// caching components have failed — "a DNS platform uses four caches, but
// our tool measures two, namely two are down". The same loop also
// classifies the platform's cache-selection strategy (the paper's §IV-A
// future work).
//
//	go run ./examples/resilience
package main

import (
	"context"
	"fmt"
	"log"

	"dnscde/internal/core"
	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
)

func main() {
	w, err := simtest.New(simtest.Options{Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "monitored", Caches: 4, Ingress: 1, Egress: 3,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(8) },
	})
	if err != nil {
		log.Fatal(err)
	}
	prober := w.DirectProber(plat.Config().IngressIPs[0])
	ctx := context.Background()

	check := func(phase string) int {
		res, err := core.EnumerateAdaptive(ctx, prober, w.Infra, core.AdaptiveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if res.Caches < 4 {
			status = fmt.Sprintf("ALERT: %d of 4 caches down", 4-res.Caches)
		}
		fmt.Printf("%-22s measured %d caches  [%s]\n", phase, res.Caches, status)
		return res.Caches
	}

	check("baseline")

	// Two caching components fail.
	plat.SetCacheDown(0, true)
	plat.SetCacheDown(2, true)
	check("after failure")

	// Operators repair one.
	plat.SetCacheDown(0, false)
	check("partial recovery")

	plat.SetCacheDown(2, false)
	check("full recovery")

	// Bonus: identify the load balancer's strategy from outside.
	cls, err := core.ClassifySelection(ctx, prober, w.Infra, core.ClassifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselection strategy classified as: %s (sequential runs %d/%d)\n",
		cls.Class, cls.SequentialRuns, cls.Runs)
}
