// Enterprise (SMTP) study: the paper's §III-B indirect channel. A probe
// email to a nonexistent mailbox makes the enterprise's mail server issue
// SPF/DKIM/DMARC/MX lookups for the *sender's* domain — which the prober
// owns. The CNAME-chain bypass (§IV-B2a) then enumerates the enterprise's
// hidden caches without ever talking to its resolver directly.
//
//	go run ./examples/enterprise
package main

import (
	"context"
	"fmt"
	"log"

	"dnscde/internal/core"
	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
	"dnscde/internal/smtpsim"
)

func main() {
	w, err := simtest.New(simtest.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// The enterprise: 4 hidden caches, reached only through its SMTP
	// server's resolver.
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "acme-corp", Caches: 4, Ingress: 2, Egress: 8,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(3) },
	})
	if err != nil {
		log.Fatal(err)
	}
	policy := smtpsim.CheckPolicy{SPFTXT: true, DMARC: true, MXBounce: true}
	server := smtpsim.NewServer("acme-corp.example", policy, w.NewStub(plat.Config().IngressIPs[0]))

	ctx := context.Background()

	// Step 1: one exploratory email shows which checks the server runs
	// (the per-server signal aggregated in the paper's Table I).
	probeDomain, err := w.Infra.NewFlatSession()
	if err != nil {
		log.Fatal(err)
	}
	if err := smtpsim.SendProbe(ctx, server, probeDomain.Honey); err != nil {
		log.Fatal(err)
	}
	fmt.Println("queries triggered by one probe email:")
	for _, e := range w.Infra.Parent.Log().Entries() {
		if dnswire.IsSubdomain(e.Q.Name, probeDomain.Honey) {
			fmt.Printf("  %-40s %v from egress %v\n", e.Q.Name, e.Q.Type, e.Src)
		}
	}

	// Step 2: full cache enumeration through the email channel.
	prober := smtpsim.NewProber(server)
	enum, err := core.EnumerateChain(ctx, prober, w.Infra, core.EnumOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCNAME-chain enumeration via email: %d caches (truth %d), %d emails sent\n",
		enum.Caches, plat.GroundTruth().Caches, enum.ProbesSent)

	// Step 3: egress discovery — every email's lookups leave from some
	// egress IP; with enough distinct sender domains all of them show.
	egress, err := core.DiscoverEgressAdaptive(ctx, prober, w.Infra, 32, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("egress IPs observed at our nameservers: %d (truth %d)\n",
		len(egress.IPs), plat.GroundTruth().EgressIPs)
}
