// Timing side channel: the paper's §IV-B3 indirect-egress scenario. The
// platform is restricted to resolving only allow-listed domains, so the
// prober's own nameservers never see its queries — enumeration works
// purely from response latency: cached answers are fast, cache misses pay
// the upstream round trip.
//
//	go run ./examples/timing
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dnscde/internal/core"
	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
)

func main() {
	w, err := simtest.New(simtest.Options{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "restricted", Caches: 5, Ingress: 1, Egress: 2,
		Mutate: func(c *platform.Config) {
			c.Selector = loadbal.NewRandom(2)
			// §IV-B3: the platform only resolves names under domains on
			// its allow list — which happens to include the measurement
			// domain, but the *prober* pretends it cannot read its own
			// nameserver logs and uses latency alone.
			c.AllowedSuffixes = []string{"cache.example"}
			c.CacheHitDelay = 300 * time.Microsecond
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	prober := w.DirectProber(plat.Config().IngressIPs[0])
	ctx := context.Background()

	res, err := core.EnumerateTimingDirect(ctx, prober, w.Infra, core.TimingOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("calibration: cached ≈ %v, uncached ≈ %v → threshold %v\n",
		median(res.CachedRTTs), median(res.UncachedRTTs), res.Threshold)
	fmt.Printf("counting phase latencies (fresh honey record):\n")
	for i, rtt := range res.CountRTTs {
		marker := "fast (cache hit)"
		if rtt > res.Threshold {
			marker = "SLOW (cache miss → new cache found)"
		}
		if i < 12 {
			fmt.Printf("  probe %2d: %-10v %s\n", i+1, rtt.Round(time.Microsecond), marker)
		}
	}
	fmt.Printf("  ... %d probes total\n\n", len(res.CountRTTs))
	fmt.Printf("slow responses counted: %d caches (ground truth %d)\n",
		res.Caches, plat.GroundTruth().Caches)
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	return sorted[len(sorted)/2]
}
