// Ad-network (ISP) study: the paper's §III-C channel. Web clients run a
// probe script delivered through an ad iframe; their browsers resolve
// prober-owned names through the ISP's resolution platform. Local browser
// and OS caches sit in the way, so the names-hierarchy bypass (§IV-B2b)
// does the counting. The 1:50 completion rate of the pop-under test is
// modelled with client patience.
//
//	go run ./examples/adnetwork
package main

import (
	"context"
	"fmt"
	"log"

	"dnscde/internal/adnet"
	"dnscde/internal/core"
	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
)

func main() {
	w, err := simtest.New(simtest.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "isp", Caches: 3, Ingress: 2, Egress: 12,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(1) },
	})
	if err != nil {
		log.Fatal(err)
	}
	ingress := plat.Config().IngressIPs[0]
	ctx := context.Background()

	// The campaign: 100 clients load the ad; most close the pop-under
	// after a handful of fetches, 1 in 50 lets it finish.
	session, err := w.Infra.NewHierarchySession(60)
	if err != nil {
		log.Fatal(err)
	}
	clients := make([]*adnet.Client, 0, 100)
	for i := 0; i < 100; i++ {
		patience := 4
		if i%50 == 0 {
			patience = 0
		}
		clients = append(clients, adnet.NewClient(i, patience, w.NewStub(ingress)))
	}
	stats := adnet.RunCampaign(ctx, clients, func(int) []string {
		names := make([]string, 0, 40)
		for i := 1; i <= 40; i++ {
			names = append(names, session.ProbeName(i))
		}
		return names
	})
	fmt.Printf("campaign: %d clients, %d ran the script, %d completed (1:%d)\n",
		stats.Clients, stats.AJAXCallbacks, stats.Completed, stats.Clients/max(stats.Completed, 1))

	// Measurement through one patient client.
	patient := adnet.NewClient(999, 0, w.NewStub(ingress))
	enum, err := core.EnumerateHierarchy(ctx, adnet.NewProber(patient), w.Infra, core.EnumOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("names-hierarchy enumeration via browser: %d caches (truth %d), %d fetches\n",
		enum.Caches, plat.GroundTruth().Caches, enum.ProbesSent)

	// The same client cannot re-query a name (browser/OS caches); show
	// that the second fetch of a probe name never reaches the platform.
	before := plat.SnapshotStats().Queries
	if _, err := patient.Fetch(ctx, session.ProbeName(1)); err != nil {
		log.Fatal(err)
	}
	if _, err := patient.Fetch(ctx, session.ProbeName(1)); err != nil {
		log.Fatal(err)
	}
	after := plat.SnapshotStats().Queries
	fmt.Printf("local caches absorbed %d of 2 repeat fetches (platform saw %d)\n",
		2-int(after-before), after-before)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
