// Open-resolver study: the paper's §III-A / §V direct-access scenario.
// A population of networks operating open resolvers is generated with the
// paper's topology distributions, then measured with direct probing:
// cache enumeration, ingress→cache-cluster mapping and egress discovery.
//
//	go run ./examples/openresolvers
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/netip"

	"dnscde/internal/core"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
	"dnscde/internal/population"
	"dnscde/internal/simtest"
	"dnscde/internal/stats"
)

func main() {
	w, err := simtest.New(simtest.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	dataset := population.Generate(population.OpenResolvers, 30, rand.New(rand.NewSource(11)))
	ctx := context.Background()

	table := &stats.Table{Header: []string{"Network", "Operator", "truth n", "measured n", "egress (truth/meas)"}}
	exact := 0
	for i, spec := range dataset.Specs[:15] {
		plat, err := w.NewPlatform(simtest.PlatformSpec{
			Name: spec.Name, Caches: spec.Caches, Ingress: spec.Ingress, Egress: spec.Egress,
			Seed:    int64(i),
			Profile: netsim.LinkProfile{OneWay: spec.Latency, Jitter: spec.Jitter, Loss: spec.Loss},
			Mutate:  func(c *platform.Config) { c.Selector = spec.MakeSelector(int64(i)) },
		})
		if err != nil {
			log.Fatal(err)
		}
		prober := w.DirectProber(plat.Config().IngressIPs[0])
		enum, err := core.EnumerateAdaptive(ctx, prober, w.Infra, core.AdaptiveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		egress, err := core.DiscoverEgressAdaptive(ctx, prober, w.Infra, 32, 4096)
		if err != nil {
			log.Fatal(err)
		}
		if enum.Caches == spec.Caches {
			exact++
		}
		table.AddRow(spec.Name, truncate(spec.Operator, 28),
			fmt.Sprintf("%d", spec.Caches), fmt.Sprintf("%d", enum.Caches),
			fmt.Sprintf("%d/%d", spec.Egress, len(egress.IPs)))
	}
	fmt.Println(table.String())
	fmt.Printf("exact cache recovery: %d/15 networks\n\n", exact)

	// Cluster mapping on one multi-ingress platform with two disjoint
	// cache pools — the §IV-B1b honey-record walk.
	demo, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "cluster-demo", Caches: 4, Ingress: 4, Egress: 2,
		Mutate: func(c *platform.Config) {
			c.IngressClusters = [][]int{{0, 1}, {0, 1}, {2, 3}, {2, 3}}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	clusters, err := core.MapIngressClusters(ctx, w.Infra, demo.Config().IngressIPs,
		func(ip netip.Addr) core.Prober { return w.DirectProber(ip) }, core.MappingOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster mapping of a 4-ingress platform with two cache pools:\n")
	for i, cluster := range clusters.Clusters {
		fmt.Printf("  cluster %d: %v\n", i, cluster)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
