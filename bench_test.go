package dnscde_test

// One benchmark per table and figure of the paper (DESIGN.md §4), plus
// micro-benchmarks of the substrate hot paths. Each experiment benchmark
// runs the corresponding driver, reports the number of shape checks
// passed as a custom metric, and fails the run if a check regresses.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFigure4 -benchtime=3x

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/core"
	"dnscde/internal/detpar"
	"dnscde/internal/dnswire"
	"dnscde/internal/experiments"
	"dnscde/internal/loadbal"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
)

// benchConfig sizes populations for benchmark runs: large enough for the
// shape checks, small enough that -bench=. completes in minutes.
func benchConfig() experiments.Config {
	return experiments.Config{Seed: 2017, OpenResolvers: 60, Enterprises: 60, ISPs: 60}
}

// statBenchConfig is for generation-only experiments whose checks need
// larger samples (Table I shares, Fig. 2 operator shares).
func statBenchConfig() experiments.Config {
	return experiments.Config{Seed: 2017, OpenResolvers: 600, Enterprises: 600, ISPs: 600}
}

// runExperiment benchmarks one experiment driver end to end.
func runExperiment(b *testing.B, id string, cfg experiments.Config) {
	b.Helper()
	var passed, total int
	for i := 0; i < b.N; i++ {
		report, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		passed, total = 0, len(report.Checks)
		for _, c := range report.Checks {
			if c.Pass() {
				passed++
			}
		}
		if passed != total {
			b.Fatalf("%s: %d/%d shape checks passed:\n%s", id, passed, total, report.Render())
		}
	}
	b.ReportMetric(float64(passed), "checks")
}

// Table I: SMTP query-type mix.
func BenchmarkTableI_SMTPQueryTypes(b *testing.B) { runExperiment(b, "table1", statBenchConfig()) }

// Fig. 2: operator distribution across the three datasets.
func BenchmarkFigure2_OperatorDistribution(b *testing.B) {
	runExperiment(b, "fig2", statBenchConfig())
}

// Fig. 3: CDF of egress IPs per platform (CDE egress discovery).
func BenchmarkFigure3_EgressIPs(b *testing.B) { runExperiment(b, "fig3", benchConfig()) }

// midBenchConfig matches the cdebench default sizes; the Fig. 4/6 share
// checks need the larger sample.
func midBenchConfig() experiments.Config {
	return experiments.Config{Seed: 2017, OpenResolvers: 120, Enterprises: 120, ISPs: 120}
}

// Fig. 4: CDF of caches per platform (CDE enumeration).
func BenchmarkFigure4_CacheCounts(b *testing.B) { runExperiment(b, "fig4", midBenchConfig()) }

// Fig. 5: bubble scatter, open resolvers.
func BenchmarkFigure5_OpenResolverScatter(b *testing.B) { runExperiment(b, "fig5", benchConfig()) }

// Fig. 6: cache-to-IP ratio categories across populations.
func BenchmarkFigure6_RatioCategories(b *testing.B) { runExperiment(b, "fig6", midBenchConfig()) }

// Fig. 7: bubble scatter, SMTP population.
func BenchmarkFigure7_SMTPScatter(b *testing.B) { runExperiment(b, "fig7", benchConfig()) }

// Fig. 8: bubble scatter, ad-network population.
func BenchmarkFigure8_AdNetScatter(b *testing.B) { runExperiment(b, "fig8", benchConfig()) }

// Theorem 5.1: coupon-collector bound, analytic vs Monte-Carlo vs live.
func BenchmarkTheorem51_CouponCollector(b *testing.B) { runExperiment(b, "thm51", benchConfig()) }

// §V-B: init/validate coverage and success rate.
func BenchmarkInitValidate_SuccessRate(b *testing.B) {
	runExperiment(b, "initvalidate", benchConfig())
}

// §V: carpet bombing vs packet loss.
func BenchmarkCarpetBombing_Loss(b *testing.B) { runExperiment(b, "carpet", benchConfig()) }

// §IV-B3: timing side channel.
func BenchmarkTimingChannel(b *testing.B) { runExperiment(b, "timing", benchConfig()) }

// Ablations (DESIGN.md §6).
func BenchmarkAblation_Selection(b *testing.B) {
	runExperiment(b, "ablation-selection", benchConfig())
}

func BenchmarkAblation_Bypass(b *testing.B) { runExperiment(b, "ablation-bypass", benchConfig()) }

func BenchmarkAblation_TimingThreshold(b *testing.B) {
	runExperiment(b, "ablation-threshold", benchConfig())
}

func BenchmarkAblation_Forwarder(b *testing.B) {
	runExperiment(b, "ablation-forwarder", benchConfig())
}

// Extension experiments (paper §II motivations and §VI observations).

func BenchmarkExtension_Poisoning(b *testing.B) { runExperiment(b, "poisoning", benchConfig()) }

func BenchmarkExtension_Resilience(b *testing.B) { runExperiment(b, "resilience", benchConfig()) }

func BenchmarkExtension_EDNSSurvey(b *testing.B) { runExperiment(b, "edns", benchConfig()) }

func BenchmarkExtension_TTLConsistency(b *testing.B) {
	runExperiment(b, "ttlconsistency", benchConfig())
}

func BenchmarkExtension_Classify(b *testing.B) { runExperiment(b, "classify", benchConfig()) }

func BenchmarkExtension_Fingerprint(b *testing.B) {
	runExperiment(b, "fingerprint", benchConfig())
}

func BenchmarkAblation_CrossTraffic(b *testing.B) {
	runExperiment(b, "ablation-crosstraffic", benchConfig())
}

func BenchmarkExtension_SelectionShare(b *testing.B) {
	runExperiment(b, "selectionshare", benchConfig())
}

// --- substrate micro-benchmarks ---

// BenchmarkDetpar_Speedup runs the Theorem 5.1 experiment at 1 and at
// GOMAXPROCS workers under identical configs. The per-worker sub-benchmark
// times quantify the detpar fan-out's wall-clock speedup (ns/op ratio);
// the reports are asserted byte-identical, so the speedup is never bought
// with a determinism regression. On a single-core runner the two times
// converge — the ratio is only meaningful where GOMAXPROCS > 1.
func BenchmarkDetpar_Speedup(b *testing.B) {
	baseline := ""
	for _, workers := range []int{1, 0} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", detpar.Workers(workers)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Workers = workers
				report, err := experiments.Run("thm51", cfg)
				if err != nil {
					b.Fatal(err)
				}
				rendered := report.Render()
				if baseline == "" {
					baseline = rendered
				} else if rendered != baseline {
					b.Fatalf("report at workers=%d differs from workers=1 baseline", workers)
				}
			}
		})
	}
}

func BenchmarkWirePackUnpack(b *testing.B) {
	msg := dnswire.NewQuery(1, "x-1.sub.cache.example.", dnswire.TypeA)
	resp := dnswire.NewResponse(msg)
	resp.Answer = append(resp.Answer, dnswire.RR{
		Name: "x-1.sub.cache.example.", Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.CNAMERecord{Target: "name.cache.example."},
	}, dnswire.RR{
		Name: "name.cache.example.", Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.ARecord{Addr: netip.MustParseAddr("192.0.2.80")},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := resp.Pack()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dnswire.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlatformResolution(b *testing.B) {
	w, err := simtest.New(simtest.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Caches: 4,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(1) },
	})
	if err != nil {
		b.Fatal(err)
	}
	session, err := w.Infra.NewHierarchySession(1)
	if err != nil {
		b.Fatal(err)
	}
	conn := w.Net.Bind(netip.MustParseAddr("198.18.5.5"))
	ingress := plat.Config().IngressIPs[0]
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := dnswire.NewQuery(uint16(i), session.ProbeName(i+1), dnswire.TypeA)
		if _, _, err := conn.Exchange(ctx, q, ingress); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateDirect(b *testing.B) {
	w, err := simtest.New(simtest.Options{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Caches: 4,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(2) },
	})
	if err != nil {
		b.Fatal(err)
	}
	prober := w.DirectProber(plat.Config().IngressIPs[0])
	ctx := context.Background()
	exact := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.EnumerateDirect(ctx, prober, w.Infra, core.EnumOptions{Queries: 32})
		if err != nil {
			b.Fatal(err)
		}
		// With q=32 probes against n=4 uniform caches a run misses one
		// cache with probability ≈ 4·(3/4)^32 ≈ 4e-4; demand near-exact.
		if res.Caches == 4 {
			exact++
		} else if res.Caches < 3 {
			b.Fatalf("measured %d caches", res.Caches)
		}
	}
	b.ReportMetric(float64(exact)/float64(b.N), "exact-rate")
}

func BenchmarkTimingEnumeration(b *testing.B) {
	w, err := simtest.New(simtest.Options{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Caches:  4,
		Profile: netsim.LinkProfile{OneWay: 2 * time.Millisecond},
		Mutate:  func(c *platform.Config) { c.Selector = loadbal.NewRandom(3) },
	})
	if err != nil {
		b.Fatal(err)
	}
	prober := w.DirectProber(plat.Config().IngressIPs[0])
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.EnumerateTimingDirect(ctx, prober, w.Infra, core.TimingOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Caches != 4 {
			b.Fatalf("measured %d caches", res.Caches)
		}
	}
}

// BenchmarkCost_Experiment runs the Thm 5.1 cost-accounting experiment
// end to end; its JSON output seeds the bench trajectory.
func BenchmarkCost_Experiment(b *testing.B) { runExperiment(b, "cost", benchConfig()) }

// Accounting-layer hot paths: the overhead an instrumented substrate pays
// per event, and the one-nil-check price of disabled instrumentation.

func BenchmarkCost_CounterAdd(b *testing.B) {
	c := metrics.New().Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCost_CounterDisabled(b *testing.B) {
	var c *metrics.Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCost_HistogramObserve(b *testing.B) {
	h := metrics.New().Histogram("bench.hist", metrics.RTTBoundsUS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i % 1000000))
	}
}

func BenchmarkCost_RegistryLookup(b *testing.B) {
	reg := metrics.New()
	reg.Counter("bench.lookup")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("bench.lookup").Add(1)
	}
}

func BenchmarkCost_SnapshotDiff(b *testing.B) {
	reg := metrics.New()
	for i := 0; i < 64; i++ {
		reg.Counter(fmt.Sprintf("bench.c%d", i)).Add(int64(i))
	}
	base := reg.Snapshot()
	reg.Counter("bench.c1").Add(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = reg.Snapshot().Diff(base)
	}
}
