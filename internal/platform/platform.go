package platform

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"

	"dnscde/internal/detpar"
	"dnscde/internal/dnscache"
	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/trace"
)

// Platform is a running DNS resolution platform attached to a simulated
// network. It implements netsim.Handler at each of its ingress IPs and is
// safe for concurrent use.
type Platform struct {
	cfg    Config
	net    *netsim.Network
	caches []*dnscache.Cache

	mu        sync.Mutex
	rng       *rand.Rand
	rngSrc    *detpar.CountingSource
	egressRR  int
	ingressOf map[netip.Addr]int // ingress IP -> index into cfg.IngressIPs
	down      []bool             // caches taken out of rotation (§II-B)

	stats PlatformStats

	// Accounting handles, nil (no-op) without a configured registry.
	mQueries      *metrics.Counter
	mRecursions   *metrics.Counter
	mCacheHits    *metrics.Counter
	mCacheMisses  *metrics.Counter
	mRefused      *metrics.Counter
	mUpstreamFail *metrics.Counter
}

// PlatformStats counts platform-level events, available as ground truth.
type PlatformStats struct {
	Queries      int64
	CacheHits    int64
	CacheMisses  int64
	Refused      int64
	UpstreamFail int64
}

var _ netsim.Handler = (*Platform)(nil)

// New builds a platform from cfg and registers its ingress IPs on n with
// the given link profile.
func New(cfg Config, n *netsim.Network, profile netsim.LinkProfile) (*Platform, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rngSrc := detpar.NewCountingSource(cfg.Seed + 1)
	p := &Platform{
		cfg:       cfg,
		net:       n,
		caches:    make([]*dnscache.Cache, cfg.CacheCount),
		rng:       rand.New(rngSrc),
		rngSrc:    rngSrc,
		ingressOf: make(map[netip.Addr]int, len(cfg.IngressIPs)),
	}
	p.down = make([]bool, cfg.CacheCount)
	for i := range p.caches {
		p.caches[i] = dnscache.New(fmt.Sprintf("%s/cache-%d", cfg.Name, i), cfg.CachePolicy)
	}
	if reg := cfg.Metrics; reg != nil {
		for _, c := range p.caches {
			c.SetMetrics(reg)
		}
		p.cfg.Selector = loadbal.Instrument(p.cfg.Selector, reg, "loadbal."+cfg.Name)
		p.mQueries = reg.Counter("platform.queries." + cfg.Name)
		p.mRecursions = reg.Counter("platform.recursions." + cfg.Name)
		p.mCacheHits = reg.Counter("platform.cache_hits." + cfg.Name)
		p.mCacheMisses = reg.Counter("platform.cache_misses." + cfg.Name)
		p.mRefused = reg.Counter("platform.refused." + cfg.Name)
		p.mUpstreamFail = reg.Counter("platform.upstream_fail." + cfg.Name)
	}
	for i, ip := range cfg.IngressIPs {
		p.ingressOf[ip] = i
		n.Register(ip, profile, &front{p: p, ingress: ip})
	}
	return p, nil
}

// front binds one ingress IP to the platform so the pipeline knows which
// ingress address a query arrived at (the netsim handler interface only
// exposes the source).
type front struct {
	p       *Platform
	ingress netip.Addr
}

var _ netsim.Handler = (*front)(nil)

// ServeDNS implements netsim.Handler.
func (f *front) ServeDNS(ctx context.Context, src netip.Addr, query *dnswire.Message) (*dnswire.Message, error) {
	return f.p.serveFrom(ctx, f.ingress, src, query)
}

// GroundTruth returns the configuration summary the experiments verify
// CDE's measurements against.
func (p *Platform) GroundTruth() GroundTruth { return p.cfg.groundTruth() }

// Caches exposes the cache instances for white-box assertions in tests.
func (p *Platform) Caches() []*dnscache.Cache {
	out := make([]*dnscache.Cache, len(p.caches))
	copy(out, p.caches)
	return out
}

// Config returns a copy of the platform's configuration.
func (p *Platform) Config() Config { return p.cfg }

// SnapshotStats returns a copy of the platform counters.
func (p *Platform) SnapshotStats() PlatformStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// FlushCaches clears every cache (operator intervention between
// experiment repetitions).
func (p *Platform) FlushCaches() {
	for _, c := range p.caches {
		c.Flush()
	}
}

// SetCacheDown marks cache idx as failed (or restores it): the load
// balancer stops sampling it. This models the §II-B resilience scenario —
// "a DNS platform uses four caches, but our tool measures two, namely two
// are down" — and lets experiments verify CDE detects the failure.
func (p *Platform) SetCacheDown(idx int, isDown bool) {
	if idx < 0 || idx >= len(p.caches) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down[idx] = isDown
}

// clusterFor returns the live cache indices reachable via the ingress IP.
func (p *Platform) clusterFor(ingress netip.Addr) []int {
	var base []int
	if idx, ok := p.ingressOf[ingress]; ok && len(p.cfg.IngressClusters) > 0 {
		base = p.cfg.IngressClusters[idx]
	} else {
		base = make([]int, len(p.caches))
		for i := range base {
			base[i] = i
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	live := make([]int, 0, len(base))
	for _, i := range base {
		if !p.down[i] {
			live = append(live, i)
		}
	}
	return live
}

// allowed reports whether the platform will resolve name at all.
func (p *Platform) allowed(name string) bool {
	if len(p.cfg.AllowedSuffixes) == 0 {
		return true
	}
	for _, suffix := range p.cfg.AllowedSuffixes {
		if dnswire.IsSubdomain(name, suffix) {
			return true
		}
	}
	return false
}

// pickEgress chooses the egress IP for one upstream query on behalf of
// cache cacheIdx.
func (p *Platform) pickEgress(cacheIdx int) netip.Addr {
	ips := p.cfg.EgressIPs
	switch p.cfg.EgressPolicy {
	case EgressRoundRobin:
		p.mu.Lock()
		defer p.mu.Unlock()
		ip := ips[p.egressRR%len(ips)]
		p.egressRR++
		return ip
	case EgressPerCache:
		return ips[cacheIdx%len(ips)]
	default: // EgressRandom
		p.mu.Lock()
		defer p.mu.Unlock()
		return ips[p.rng.Intn(len(ips))]
	}
}

// count increments one stats counter under the lock.
func (p *Platform) count(f func(*PlatformStats)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f(&p.stats)
}

// ServeDNS implements netsim.Handler directly for single-ingress use; the
// query is treated as having arrived at the first ingress IP.
func (p *Platform) ServeDNS(ctx context.Context, src netip.Addr, query *dnswire.Message) (*dnswire.Message, error) {
	return p.serveFrom(ctx, p.cfg.IngressIPs[0], src, query)
}

// serveFrom is the ingress pipeline of Fig. 1. Exactly one cache is
// sampled per query (§IV-A); on a miss the egress resolver performs
// iterative resolution and the result is stored in the sampled cache only.
func (p *Platform) serveFrom(ctx context.Context, ingress, src netip.Addr, query *dnswire.Message) (*dnswire.Message, error) {
	q, err := query.FirstQuestion()
	if err != nil {
		resp := dnswire.NewResponse(query)
		resp.Header.RCode = dnswire.RCodeFormErr
		return resp, nil
	}
	p.count(func(s *PlatformStats) { s.Queries++ })
	p.mQueries.Inc()

	resp := dnswire.NewResponse(query)
	resp.Header.RecursionAvailable = true

	if !p.allowed(q.Name) {
		p.count(func(s *PlatformStats) { s.Refused++ })
		p.mRefused.Inc()
		resp.Header.RCode = dnswire.RCodeRefused
		return resp, nil
	}

	// Load balancer: sample exactly one cache from the ingress IP's
	// cluster. The selector indexes within the cluster so that, e.g.,
	// round robin cycles over the cluster's caches.
	cluster := p.clusterFor(ingress)
	if len(cluster) == 0 {
		// Every cache behind this ingress IP is down.
		p.count(func(s *PlatformStats) { s.UpstreamFail++ })
		p.mUpstreamFail.Inc()
		resp.Header.RCode = dnswire.RCodeServFail
		return resp, nil
	}
	pos := p.cfg.Selector.Select(q, src, len(cluster))
	cacheIdx := cluster[pos]
	cache := p.caches[cacheIdx]
	trace.Addf(ctx, "lb", "%s selected cache %d of %d for %s", p.cfg.Selector.Name(), cacheIdx, len(cluster), q)

	now := p.cfg.Clock.Now()
	if entry, ok := cache.Get(q, now); ok {
		p.count(func(s *PlatformStats) { s.CacheHits++ })
		p.mCacheHits.Inc()
		trace.Addf(ctx, "cache-hit", "%s answered %s", cache.ID, q)
		if p.cfg.CacheHitDelay > 0 {
			netsim.ChargeLatency(ctx, p.cfg.CacheHitDelay)
		}
		return p.entryToResponse(resp, entry), nil
	}
	p.count(func(s *PlatformStats) { s.CacheMisses++ })
	p.mCacheMisses.Inc()
	trace.Addf(ctx, "cache-miss", "%s lacks %s", cache.ID, q)

	entry, err := p.resolve(ctx, q, cacheIdx)
	if err != nil {
		p.count(func(s *PlatformStats) { s.UpstreamFail++ })
		p.mUpstreamFail.Inc()
		resp.Header.RCode = dnswire.RCodeServFail
		return resp, nil
	}
	cache.Put(q, entry, p.cfg.Clock.Now())

	// Windows-style follow-up: prefetch the AAAA record for names just
	// resolved under A (observable at the nameserver as an A→AAAA query
	// pattern — a §VI software fingerprint).
	if p.cfg.QueryAAAA && q.Type == dnswire.TypeA {
		followUp := dnswire.Question{Name: q.Name, Type: dnswire.TypeAAAA, Class: q.Class}
		if _, ok := cache.Get(followUp, p.cfg.Clock.Now()); !ok {
			if e6, err := p.resolve(ctx, followUp, cacheIdx); err == nil {
				cache.Put(followUp, e6, p.cfg.Clock.Now())
			}
		}
	}
	return p.entryToResponse(resp, entry), nil
}

// entryToResponse fills resp from a cache entry.
func (p *Platform) entryToResponse(resp *dnswire.Message, e dnscache.Entry) *dnswire.Message {
	resp.Header.RCode = e.RCode
	resp.Answer = append(resp.Answer, e.Records...)
	resp.Authority = append(resp.Authority, e.Authority...)
	return resp
}
