// Package platform implements the generic DNS resolution platform of the
// paper's Fig. 1: a set of ingress IP addresses that receive client
// queries, a load balancer that assigns each query to one of n hidden
// caches, and a set of egress IP addresses used to contact authoritative
// nameservers on cache misses.
//
// The platform is the *measured object* of the paper: CDE (internal/core)
// probes it from the outside and tries to recover n, the IP↔cache mapping
// and the egress set, all of which are explicit configuration here and
// therefore available as ground truth to the experiments.
package platform

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"dnscde/internal/clock"
	"dnscde/internal/dnscache"
	"dnscde/internal/loadbal"
	"dnscde/internal/metrics"
)

// EgressPolicy selects which egress IP issues an upstream query.
type EgressPolicy uint8

// Egress policies. The paper observes that "typically multiple IP
// addresses are involved in a resolution chain" — EgressRandom and
// EgressRoundRobin model that; EgressPerCache pins each cache to one
// egress address (a one-to-one correspondence the paper saw "in some
// cases").
const (
	EgressRandom EgressPolicy = iota + 1
	EgressRoundRobin
	EgressPerCache
)

// String returns the policy mnemonic.
func (p EgressPolicy) String() string {
	switch p {
	case EgressRandom:
		return "egress-random"
	case EgressRoundRobin:
		return "egress-round-robin"
	case EgressPerCache:
		return "egress-per-cache"
	default:
		return fmt.Sprintf("egress-policy%d", p)
	}
}

// Config describes one resolution platform.
type Config struct {
	// Name labels the platform in experiment output.
	Name string

	// IngressIPs receive client queries. At least one is required.
	IngressIPs []netip.Addr
	// EgressIPs contact authoritative nameservers. At least one is
	// required.
	EgressIPs []netip.Addr
	// CacheCount is n, the number of hidden caches. At least 1.
	CacheCount int
	// CachePolicy applies to every cache.
	CachePolicy dnscache.Policy
	// Selector is the load balancer's cache-selection strategy; nil
	// defaults to uniform random (the dominant strategy in the paper's
	// dataset: ">80% of the networks ... support unpredictable cache
	// selection").
	Selector loadbal.Selector
	// EgressPolicy picks the egress IP per upstream query; zero value
	// defaults to EgressRandom.
	EgressPolicy EgressPolicy

	// IngressClusters optionally restricts each ingress IP to a subset of
	// caches: IngressClusters[i] lists the cache indices reachable via
	// IngressIPs[i]. Empty means every ingress IP reaches every cache.
	// This models the paper's §IV-B1b cache clusters.
	IngressClusters [][]int

	// Roots are the addresses of the root nameservers used to start
	// iterative resolution. Required unless Forwarders is set.
	Roots []netip.Addr

	// Forwarders, when non-empty, turns the platform into a forwarding
	// resolver: cache misses are sent as recursive queries to one of
	// these upstream resolver addresses instead of being resolved
	// iteratively. This models the §VI observation that ingress
	// resolvers are "often configured to use upstream caches, such as
	// Google Public DNS, in which cases the client will only see the
	// forwarder" — CDE then measures the combined cache topology.
	Forwarders []netip.Addr

	// AllowedSuffixes, when non-empty, restricts resolution to names
	// under the listed domain suffixes; anything else is REFUSED. This
	// models §IV-B3's restricted platforms, which force the timing-based
	// (indirect egress) technique.
	AllowedSuffixes []string

	// Metrics, when non-nil, receives the platform's accounting: query
	// and recursion counters, per-cache hit/miss/expiry/eviction counts
	// and per-index selection counts, all prefixed with the platform
	// Name. Nil disables instrumentation at zero cost.
	Metrics *metrics.Registry

	// Clock drives TTL arithmetic; nil defaults to the wall clock.
	Clock clock.Clock
	// Seed makes egress selection and retry jitter deterministic.
	Seed int64
	// UpstreamRetries is how many times an upstream exchange is retried
	// on timeout; zero defaults to 2 (3 attempts total).
	UpstreamRetries int
	// CacheHitDelay is simulated processing time for answering from
	// cache; cache misses additionally pay real upstream round trips.
	CacheHitDelay time.Duration
	// MaxCNAMEChase bounds CNAME indirection; zero defaults to 8.
	MaxCNAMEChase int
	// MaxReferrals bounds delegation depth per lookup; zero defaults to 16.
	MaxReferrals int
	// QueryAAAA, when true, makes the platform also resolve the AAAA
	// record after answering an A query (Windows-resolver behaviour,
	// one of the query-pattern fingerprints of the §VI related work).
	QueryAAAA bool
	// EDNS, when true, attaches an EDNS0 OPT record to upstream queries
	// (RFC 6891). The paper's §II-C names EDNS adoption as one of the
	// mechanisms CDE-style studies can measure; the nameserver-side log
	// records its presence per query.
	EDNS bool
	// TrustAnswerChains, when true, accepts CNAME targets appended to the
	// answer section by authoritative servers that chase in-zone aliases
	// (BIND-style). When false (the default, matching hardened resolvers
	// like Unbound) the platform re-queries each CNAME target itself —
	// the behaviour the paper's §IV-B2a bypass technique relies on.
	TrustAnswerChains bool
}

// Config validation errors.
var (
	ErrNoIngress  = errors.New("platform: no ingress IPs")
	ErrNoEgress   = errors.New("platform: no egress IPs")
	ErrNoCaches   = errors.New("platform: cache count must be >= 1")
	ErrNoRoots    = errors.New("platform: no root nameserver addresses")
	ErrBadCluster = errors.New("platform: invalid ingress cluster")
)

// validate normalises cfg and applies defaults.
func (cfg *Config) validate() error {
	if len(cfg.IngressIPs) == 0 {
		return ErrNoIngress
	}
	if len(cfg.EgressIPs) == 0 {
		return ErrNoEgress
	}
	if cfg.CacheCount < 1 {
		return ErrNoCaches
	}
	if len(cfg.Roots) == 0 && len(cfg.Forwarders) == 0 {
		return ErrNoRoots
	}
	if len(cfg.IngressClusters) > 0 {
		if len(cfg.IngressClusters) != len(cfg.IngressIPs) {
			return fmt.Errorf("%w: %d clusters for %d ingress IPs",
				ErrBadCluster, len(cfg.IngressClusters), len(cfg.IngressIPs))
		}
		for i, cluster := range cfg.IngressClusters {
			if len(cluster) == 0 {
				return fmt.Errorf("%w: ingress %d has empty cluster", ErrBadCluster, i)
			}
			for _, idx := range cluster {
				if idx < 0 || idx >= cfg.CacheCount {
					return fmt.Errorf("%w: ingress %d references cache %d of %d",
						ErrBadCluster, i, idx, cfg.CacheCount)
				}
			}
		}
	}
	if cfg.Selector == nil {
		cfg.Selector = loadbal.NewRandom(cfg.Seed)
	}
	if cfg.EgressPolicy == 0 {
		cfg.EgressPolicy = EgressRandom
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.UpstreamRetries == 0 {
		cfg.UpstreamRetries = 2
	}
	if cfg.MaxCNAMEChase == 0 {
		cfg.MaxCNAMEChase = 8
	}
	if cfg.MaxReferrals == 0 {
		cfg.MaxReferrals = 16
	}
	return nil
}

// GroundTruth summarises the configuration parameters the CDE measurement
// tries to recover from the outside; experiments compare measured values
// against it.
type GroundTruth struct {
	Name        string
	IngressIPs  int
	EgressIPs   int
	Caches      int
	Selector    string
	SelectorCat loadbal.Category
}

// groundTruth derives the summary from a validated config.
func (cfg *Config) groundTruth() GroundTruth {
	return GroundTruth{
		Name:        cfg.Name,
		IngressIPs:  len(cfg.IngressIPs),
		EgressIPs:   len(cfg.EgressIPs),
		Caches:      cfg.CacheCount,
		Selector:    cfg.Selector.Name(),
		SelectorCat: cfg.Selector.Category(),
	}
}
