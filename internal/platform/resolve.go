package platform

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync/atomic"

	"dnscde/internal/dnscache"
	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/trace"
)

// Resolution errors.
var (
	ErrChaseLimit       = errors.New("platform: CNAME chase limit exceeded")
	ErrReferralLimit    = errors.New("platform: referral depth limit exceeded")
	ErrAllServersFailed = errors.New("platform: all upstream servers failed")
	ErrGluelessLoop     = errors.New("platform: glueless delegation recursion limit")
)

// _queryID generates message IDs for upstream queries.
var _queryID atomic.Uint32

func nextID() uint16 { return uint16(_queryID.Add(1)) }

// maxGluelessDepth bounds nested resolutions for NS hosts without glue.
const maxGluelessDepth = 3

// resolve performs full recursive resolution of q on behalf of cache
// cacheIdx, chasing CNAMEs and caching every record it learns (final
// answers, intermediate CNAMEs, delegations and glue) into that one cache —
// the property the paper's names-hierarchy technique (§IV-B2b) observes.
// Forwarding platforms delegate the recursion to their upstream instead.
func (p *Platform) resolve(ctx context.Context, q dnswire.Question, cacheIdx int) (dnscache.Entry, error) {
	p.mRecursions.Inc()
	if len(p.cfg.Forwarders) > 0 {
		return p.forwardResolve(ctx, q, cacheIdx)
	}
	return p.resolveDepth(ctx, q, cacheIdx, 0)
}

// forwardResolve sends q as a recursive query to an upstream resolver —
// the forwarder configuration of §VI. The upstream performs all iterative
// work (and its own caching); only the final answer lands in this
// platform's selected cache.
func (p *Platform) forwardResolve(ctx context.Context, q dnswire.Question, cacheIdx int) (dnscache.Entry, error) {
	var lastErr error
	for _, upstream := range p.cfg.Forwarders {
		egress := p.pickEgress(cacheIdx)
		conn := p.net.Bind(egress)
		query := dnswire.NewQuery(nextID(), q.Name, q.Type) // RD set
		p.maybeAddEDNS(query)
		trace.Addf(ctx, "forward", "egress %v forwards %s to %v", egress, q, upstream)
		resp, _, err := netsim.ExchangeRetry(ctx, conn, query, upstream, p.cfg.UpstreamRetries+1)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Header.RCode == dnswire.RCodeServFail || resp.Header.RCode == dnswire.RCodeRefused {
			lastErr = fmt.Errorf("platform: forwarder %v returned %v", upstream, resp.Header.RCode)
			continue
		}
		return dnscache.Entry{
			Records:   resp.Answer,
			RCode:     resp.Header.RCode,
			Authority: resp.Authority,
		}, nil
	}
	return dnscache.Entry{}, fmt.Errorf("%w: %w", ErrAllServersFailed, lastErr)
}

func (p *Platform) resolveDepth(ctx context.Context, q dnswire.Question, cacheIdx, depth int) (dnscache.Entry, error) {
	cache := p.caches[cacheIdx]
	var chain []dnswire.RR
	name := q.Name
	visited := map[string]bool{name: true}
	for hop := 0; hop <= p.cfg.MaxCNAMEChase; hop++ {
		cur := dnswire.Question{Name: name, Type: q.Type, Class: q.Class}
		if hop > 0 {
			// The original name was already checked by the ingress
			// pipeline; chased targets may be cached from earlier probes.
			if e, ok := cache.Get(cur, p.cfg.Clock.Now()); ok {
				return mergeChain(chain, e), nil
			}
		}
		out, err := p.resolveIterative(ctx, cur, cacheIdx, depth)
		if err != nil {
			return dnscache.Entry{}, err
		}
		now := p.cfg.Clock.Now()
		if out.cname != "" {
			trace.Addf(ctx, "cname", "%s is an alias for %s", name, out.cname)
			chain = append(chain, out.chainRRs...)
			// Cache the alias under its own name and type so later
			// resolutions of the same alias skip the upstream query.
			cache.Put(cur, dnscache.Entry{Records: out.chainRRs}, now)
			if visited[out.cname] {
				return dnscache.Entry{}, ErrChaseLimit // CNAME loop
			}
			visited[out.cname] = true
			name = out.cname
			continue
		}
		if hop > 0 {
			// Terminal data for a chased target: cache it under the
			// target's question; the caller caches the full chain under
			// the original question.
			cache.Put(cur, out.entry, now)
		}
		return mergeChain(chain, out.entry), nil
	}
	return dnscache.Entry{}, ErrChaseLimit
}

// mergeChain prepends accumulated CNAME records to a terminal entry.
func mergeChain(chain []dnswire.RR, e dnscache.Entry) dnscache.Entry {
	if len(chain) == 0 {
		return e
	}
	merged := dnscache.Entry{RCode: e.RCode, Authority: e.Authority}
	merged.Records = append(merged.Records, chain...)
	merged.Records = append(merged.Records, e.Records...)
	return merged
}

// iterOut is one step of iterative resolution: either a terminal entry or
// a CNAME redirection.
type iterOut struct {
	entry    dnscache.Entry
	cname    string       // non-empty: caller must chase
	chainRRs []dnswire.RR // the CNAME records leading to cname
}

// resolveIterative walks the delegation tree for one concrete question,
// starting from the deepest cached delegation (or the roots), following
// referrals and caching what it learns.
func (p *Platform) resolveIterative(ctx context.Context, q dnswire.Question, cacheIdx, depth int) (iterOut, error) {
	cache := p.caches[cacheIdx]
	servers := p.startingServers(cache, q.Name)

	for ref := 0; ref < p.cfg.MaxReferrals; ref++ {
		resp, err := p.askAny(ctx, q, servers, cacheIdx)
		if err != nil {
			return iterOut{}, err
		}

		switch {
		case resp.Header.RCode == dnswire.RCodeNXDomain:
			return iterOut{entry: dnscache.Entry{
				RCode:     dnswire.RCodeNXDomain,
				Authority: resp.Authority,
			}}, nil

		case len(resp.Answer) > 0:
			return p.interpretAnswer(q, resp)

		case hasNS(resp.Authority):
			next, err := p.followReferral(ctx, resp, cacheIdx, depth)
			if err != nil {
				return iterOut{}, err
			}
			servers = next

		default:
			// NOERROR with no answer and no referral: NODATA.
			return iterOut{entry: dnscache.Entry{
				RCode:     dnswire.RCodeNoError,
				Authority: resp.Authority,
			}}, nil
		}
	}
	return iterOut{}, ErrReferralLimit
}

// interpretAnswer extracts the relevant records for q from a response's
// answer section.
func (p *Platform) interpretAnswer(q dnswire.Question, resp *dnswire.Message) (iterOut, error) {
	// Direct records of the requested type win.
	direct := recordsFor(resp.Answer, q.Name, q.Type)
	if len(direct) > 0 {
		return iterOut{entry: dnscache.Entry{Records: direct}}, nil
	}
	cnames := recordsFor(resp.Answer, q.Name, dnswire.TypeCNAME)
	if len(cnames) == 0 {
		// Answer section holds nothing usable for this question.
		return iterOut{entry: dnscache.Entry{RCode: dnswire.RCodeNoError, Authority: resp.Authority}}, nil
	}
	first := cnames[0]
	target := dnswire.CanonicalName(first.Data.(dnswire.CNAMERecord).Target)

	if !p.cfg.TrustAnswerChains {
		// Hardened behaviour: accept only the alias itself and re-query
		// the target — the behaviour §IV-B2a relies on.
		return iterOut{cname: target, chainRRs: []dnswire.RR{first}}, nil
	}

	// BIND-style: walk the chain the authoritative server appended.
	chain := []dnswire.RR{first}
	seen := map[string]bool{q.Name: true}
	for hops := 0; hops < p.cfg.MaxCNAMEChase; hops++ {
		if seen[target] {
			return iterOut{}, ErrChaseLimit
		}
		seen[target] = true
		if finals := recordsFor(resp.Answer, target, q.Type); len(finals) > 0 {
			return iterOut{entry: dnscache.Entry{Records: append(chain, finals...)}}, nil
		}
		next := recordsFor(resp.Answer, target, dnswire.TypeCNAME)
		if len(next) == 0 {
			// Chain leaves the response; chase the tail ourselves.
			return iterOut{cname: target, chainRRs: chain}, nil
		}
		chain = append(chain, next[0])
		target = dnswire.CanonicalName(next[0].Data.(dnswire.CNAMERecord).Target)
	}
	return iterOut{}, ErrChaseLimit
}

// followReferral caches the delegation carried by resp and returns the
// addresses of the child zone's nameservers, resolving glueless NS hosts
// recursively when needed.
func (p *Platform) followReferral(ctx context.Context, resp *dnswire.Message, cacheIdx, depth int) ([]netip.Addr, error) {
	cache := p.caches[cacheIdx]
	now := p.cfg.Clock.Now()

	nsSet := filterType(resp.Authority, dnswire.TypeNS)
	cut := dnswire.CanonicalName(nsSet[0].Name)
	trace.Addf(ctx, "referral", "delegation to %s (%d NS, %d glue)", cut, len(nsSet), len(resp.Additional))
	cache.Put(dnswire.Question{Name: cut, Type: dnswire.TypeNS, Class: dnswire.ClassIN},
		dnscache.Entry{Records: nsSet}, now)

	var addrs []netip.Addr
	for _, glue := range resp.Additional {
		a, ok := glue.Data.(dnswire.ARecord)
		if !ok {
			continue
		}
		addrs = append(addrs, a.Addr)
		cache.Put(dnswire.Question{Name: dnswire.CanonicalName(glue.Name), Type: dnswire.TypeA, Class: dnswire.ClassIN},
			dnscache.Entry{Records: []dnswire.RR{glue}}, now)
	}
	if len(addrs) > 0 {
		return addrs, nil
	}

	// Glueless delegation: resolve the NS hosts' addresses ourselves.
	if depth >= maxGluelessDepth {
		return nil, ErrGluelessLoop
	}
	for _, ns := range nsSet {
		host := dnswire.CanonicalName(ns.Data.(dnswire.NSRecord).Host)
		e, err := p.resolveDepth(ctx, dnswire.Question{Name: host, Type: dnswire.TypeA, Class: dnswire.ClassIN}, cacheIdx, depth+1)
		if err != nil {
			continue
		}
		for _, rr := range e.Records {
			if a, ok := rr.Data.(dnswire.ARecord); ok {
				addrs = append(addrs, a.Addr)
			}
		}
		if len(addrs) > 0 {
			break
		}
	}
	if len(addrs) == 0 {
		return nil, ErrAllServersFailed
	}
	return addrs, nil
}

// askAny tries the given servers in order until one answers, each with the
// configured retry budget, picking a fresh egress IP per query.
func (p *Platform) askAny(ctx context.Context, q dnswire.Question, servers []netip.Addr, cacheIdx int) (*dnswire.Message, error) {
	if len(servers) == 0 {
		return nil, ErrAllServersFailed
	}
	var lastErr error
	for _, server := range servers {
		egress := p.pickEgress(cacheIdx)
		conn := p.net.Bind(egress)
		query := dnswire.NewQuery(nextID(), q.Name, q.Type)
		query.Header.RecursionDesired = false
		p.maybeAddEDNS(query)
		trace.Addf(ctx, "upstream", "egress %v asks %v for %s", egress, server, q)
		resp, _, err := netsim.ExchangeRetry(ctx, conn, query, server, p.cfg.UpstreamRetries+1)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Header.RCode == dnswire.RCodeRefused || resp.Header.RCode == dnswire.RCodeServFail {
			lastErr = fmt.Errorf("platform: upstream %v returned %v", server, resp.Header.RCode)
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("%w: %w", ErrAllServersFailed, lastErr)
}

// maybeAddEDNS attaches an EDNS0 OPT pseudo-record to an upstream query
// when the platform is configured for it.
func (p *Platform) maybeAddEDNS(query *dnswire.Message) {
	if !p.cfg.EDNS {
		return
	}
	query.Additional = append(query.Additional, dnswire.RR{
		Name:  ".",
		Class: dnswire.Class(dnswire.MaxEDNSSize),
		Data:  dnswire.OPTRecord{UDPSize: dnswire.MaxEDNSSize},
	})
}

// startingServers finds the deepest delegation cached for name — the
// mechanism that makes §IV-B2b observable: a cache holding the
// sub.cache.example delegation asks the child directly, while a fresh
// cache must visit the parent.
func (p *Platform) startingServers(cache *dnscache.Cache, name string) []netip.Addr {
	labels := dnswire.SplitLabels(name)
	now := p.cfg.Clock.Now()
	for i := 0; i < len(labels); i++ {
		zoneName := strings.Join(labels[i:], ".") + "."
		nsEntry, ok := cache.Get(dnswire.Question{Name: zoneName, Type: dnswire.TypeNS, Class: dnswire.ClassIN}, now)
		if !ok {
			continue
		}
		var addrs []netip.Addr
		for _, ns := range nsEntry.Records {
			nsr, ok := ns.Data.(dnswire.NSRecord)
			if !ok {
				continue
			}
			host := dnswire.CanonicalName(nsr.Host)
			if aEntry, ok := cache.Get(dnswire.Question{Name: host, Type: dnswire.TypeA, Class: dnswire.ClassIN}, now); ok {
				for _, rr := range aEntry.Records {
					if a, ok := rr.Data.(dnswire.ARecord); ok {
						addrs = append(addrs, a.Addr)
					}
				}
			}
		}
		if len(addrs) > 0 {
			return addrs
		}
	}
	return append([]netip.Addr(nil), p.cfg.Roots...)
}

// recordsFor selects records owned by name with the given type.
func recordsFor(rrs []dnswire.RR, name string, t dnswire.Type) []dnswire.RR {
	name = dnswire.CanonicalName(name)
	var out []dnswire.RR
	for _, rr := range rrs {
		if rr.Type() == t && dnswire.CanonicalName(rr.Name) == name {
			out = append(out, rr)
		}
	}
	return out
}

// filterType selects records of type t.
func filterType(rrs []dnswire.RR, t dnswire.Type) []dnswire.RR {
	var out []dnswire.RR
	for _, rr := range rrs {
		if rr.Type() == t {
			out = append(out, rr)
		}
	}
	return out
}

// hasNS reports whether rrs contains an NS record.
func hasNS(rrs []dnswire.RR) bool {
	return len(filterType(rrs, dnswire.TypeNS)) > 0
}
