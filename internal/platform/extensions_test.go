package platform

import (
	"context"
	"net/netip"
	"testing"

	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/netsim"
	"dnscde/internal/trace"
	"dnscde/internal/zone"
)

// TestForwarderPlatform builds a two-tier setup: a forwarder platform
// whose cache misses go to an upstream recursive platform, as in the
// paper's §VI Google-Public-DNS observation.
func TestForwarderPlatform(t *testing.T) {
	w := buildWorld(t, 10)

	upstream := w.newPlatform(t, func(c *Config) {
		c.Name = "upstream"
		c.CacheCount = 2
		c.Selector = loadbal.NewRoundRobin()
		c.IngressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.150")}
		c.EgressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.250")}
	})
	forwarder := w.newPlatform(t, func(c *Config) {
		c.Name = "forwarder"
		c.CacheCount = 1
		c.Roots = nil
		c.Forwarders = []netip.Addr{upstream.Config().IngressIPs[0]}
		c.IngressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.151")}
		c.EgressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.251")}
	})

	resp, _ := query(t, w, forwarder, "x-1.sub.cache.example.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answer) != 1 {
		t.Fatalf("resp = %s", resp.Summary())
	}
	// The nameserver only ever sees the *upstream's* egress IP — "the
	// client will only see the forwarder" and vice versa.
	srcs := w.child.Log().DistinctSources("")
	if len(srcs) != 1 || srcs[0] != netip.MustParseAddr("198.51.100.250") {
		t.Errorf("nameserver saw %v, want only the upstream egress", srcs)
	}
	// Both tiers cached the answer: a repeat query is a forwarder-cache
	// hit and adds no upstream traffic.
	before := upstream.SnapshotStats().Queries
	query(t, w, forwarder, "x-1.sub.cache.example.", dnswire.TypeA)
	if got := upstream.SnapshotStats().Queries; got != before {
		t.Errorf("upstream saw %d extra queries on forwarder cache hit", got-before)
	}
}

func TestForwarderEnumerationSeesUpstreamThroughForwarderMisses(t *testing.T) {
	// CDE through a forwarder observes the *combined* topology: the
	// upstream is only consulted while the forwarder's own caches still
	// miss, so the nameserver count is bounded by the forwarder tier.
	// With 3 forwarder caches and 2 upstream caches (round robin at both
	// tiers) the forwarder misses 3 times, the upstream receives those 3
	// queries and covers both of its caches: ω = 2.
	w := buildWorld(t, 10)
	upstream := w.newPlatform(t, func(c *Config) {
		c.Name = "upstream"
		c.CacheCount = 2
		c.Selector = loadbal.NewRoundRobin()
		c.IngressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.150")}
		c.EgressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.250")}
	})
	forwarder := w.newPlatform(t, func(c *Config) {
		c.Name = "forwarder"
		c.CacheCount = 3
		c.Selector = loadbal.NewRoundRobin()
		c.Roots = nil
		c.Forwarders = []netip.Addr{upstream.Config().IngressIPs[0]}
		c.IngressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.151")}
		c.EgressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.251")}
	})
	for i := 0; i < 12; i++ {
		query(t, w, forwarder, "x-2.sub.cache.example.", dnswire.TypeA)
	}
	if got := w.child.Log().CountName("x-2.sub.cache.example."); got != 2 {
		t.Errorf("nameserver saw %d queries, want 2 (upstream caches via 3 forwarder misses)", got)
	}
	// A single-cache forwarder in contrast shields the upstream after
	// one miss — the client-side view "only sees the forwarder".
	shielded := w.newPlatform(t, func(c *Config) {
		c.Name = "shielded"
		c.CacheCount = 1
		c.Roots = nil
		c.Forwarders = []netip.Addr{upstream.Config().IngressIPs[0]}
		c.IngressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.152")}
		c.EgressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.252")}
	})
	for i := 0; i < 12; i++ {
		query(t, w, shielded, "x-3.sub.cache.example.", dnswire.TypeA)
	}
	if got := w.child.Log().CountName("x-3.sub.cache.example."); got != 1 {
		t.Errorf("nameserver saw %d queries through single-cache forwarder, want 1", got)
	}
}

func TestForwarderUnreachableServFail(t *testing.T) {
	w := buildWorld(t, 5)
	forwarder := w.newPlatform(t, func(c *Config) {
		c.Roots = nil
		c.Forwarders = []netip.Addr{netip.MustParseAddr("203.0.113.99")} // nobody
		c.UpstreamRetries = 1
	})
	conn := w.net.Bind(clientAddr)
	resp, _, err := conn.Exchange(context.Background(),
		dnswire.NewQuery(1, "x-1.sub.cache.example.", dnswire.TypeA), forwarder.Config().IngressIPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestConfigRequiresRootsOrForwarders(t *testing.T) {
	w := buildWorld(t, 5)
	cfg := Config{
		IngressIPs: []netip.Addr{clientAddr},
		EgressIPs:  []netip.Addr{clientAddr},
		CacheCount: 1,
	}
	if _, err := New(cfg, w.net, netsim.LinkProfile{}); err == nil {
		t.Error("config without roots or forwarders accepted")
	}
	cfg.Forwarders = []netip.Addr{netip.MustParseAddr("203.0.113.1")}
	if _, err := New(cfg, w.net, netsim.LinkProfile{}); err != nil {
		t.Errorf("forwarder-only config rejected: %v", err)
	}
}

func TestEDNSAdvertisedUpstream(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, func(c *Config) { c.EDNS = true })
	query(t, w, p, "x-1.sub.cache.example.", dnswire.TypeA)
	if share := w.child.Log().EDNSShare(""); share != 1 {
		t.Errorf("EDNS share at child = %v, want 1", share)
	}
	entry := w.child.Log().Entries()[0]
	if !entry.EDNS || entry.UDPSize != dnswire.MaxEDNSSize {
		t.Errorf("entry = %+v", entry)
	}

	w2 := buildWorld(t, 5)
	p2 := w2.newPlatform(t, nil) // EDNS off
	query(t, w2, p2, "x-1.sub.cache.example.", dnswire.TypeA)
	if share := w2.child.Log().EDNSShare(""); share != 0 {
		t.Errorf("EDNS share without EDNS = %v", share)
	}
}

func TestSetCacheDownShrinksRotation(t *testing.T) {
	// §II-B: "a DNS platform uses four caches, but our tool measures
	// two, namely two are down."
	w := buildWorld(t, 5)
	p := w.newPlatform(t, func(c *Config) {
		c.CacheCount = 4
		c.Selector = loadbal.NewRoundRobin()
	})
	for i := 0; i < 16; i++ {
		query(t, w, p, "x-1.sub.cache.example.", dnswire.TypeA)
	}
	if got := w.child.Log().CountName("x-1.sub.cache.example."); got != 4 {
		t.Fatalf("healthy platform: %d arrivals, want 4", got)
	}

	p.SetCacheDown(1, true)
	p.SetCacheDown(3, true)
	for i := 0; i < 16; i++ {
		query(t, w, p, "x-2.sub.cache.example.", dnswire.TypeA)
	}
	if got := w.child.Log().CountName("x-2.sub.cache.example."); got != 2 {
		t.Errorf("degraded platform: %d arrivals, want 2", got)
	}

	// Restoration brings the full set back.
	p.SetCacheDown(1, false)
	p.SetCacheDown(3, false)
	for i := 0; i < 16; i++ {
		query(t, w, p, "x-3.sub.cache.example.", dnswire.TypeA)
	}
	if got := w.child.Log().CountName("x-3.sub.cache.example."); got != 4 {
		t.Errorf("restored platform: %d arrivals, want 4", got)
	}
}

func TestAllCachesDownServFail(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, func(c *Config) { c.CacheCount = 2 })
	p.SetCacheDown(0, true)
	p.SetCacheDown(1, true)
	conn := w.net.Bind(clientAddr)
	resp, _, err := conn.Exchange(context.Background(),
		dnswire.NewQuery(1, "x-1.sub.cache.example.", dnswire.TypeA), p.Config().IngressIPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
	if p.SetCacheDown(99, true); false { // out-of-range must not panic
		t.Fatal("unreachable")
	}
}

func TestForwarderWithHierarchyProbeNames(t *testing.T) {
	// zone.ProbeName helper still resolves through two tiers.
	w := buildWorld(t, 10)
	upstream := w.newPlatform(t, func(c *Config) {
		c.IngressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.150")}
		c.EgressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.250")}
	})
	fwd := w.newPlatform(t, func(c *Config) {
		c.Roots = nil
		c.Forwarders = []netip.Addr{upstream.Config().IngressIPs[0]}
		c.IngressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.151")}
		c.EgressIPs = []netip.Addr{netip.MustParseAddr("198.51.100.251")}
	})
	resp, _ := query(t, w, fwd, zone.ProbeName(3, "chain.example"), dnswire.TypeA)
	if len(resp.Answer) != 2 {
		t.Errorf("chain through forwarder = %s", resp.Summary())
	}
}

// TestCNAMELoopHandling verifies both resolver modes survive a CNAME loop
// served by the authoritative side (which returns the partial chain).
func TestCNAMELoopHandling(t *testing.T) {
	w := buildWorld(t, 5)
	loopZone := zone.New("loop.example")
	loopAddr := netip.MustParseAddr("203.0.113.40")
	if err := zone.Apex(loopZone, "ns.loop.example.", loopAddr, 3600); err != nil {
		t.Fatal(err)
	}
	loopZone.MustAdd(dnswire.RR{Name: "a.loop.example.", Class: dnswire.ClassIN, TTL: 60,
		Data: dnswire.CNAMERecord{Target: "b.loop.example."}})
	loopZone.MustAdd(dnswire.RR{Name: "b.loop.example.", Class: dnswire.ClassIN, TTL: 60,
		Data: dnswire.CNAMERecord{Target: "a.loop.example."}})
	if _, err := w.tree.AttachAuthority(loopAddr, netsim.LinkProfile{}, loopZone); err != nil {
		t.Fatal(err)
	}

	for _, trust := range []bool{false, true} {
		p := w.newPlatform(t, func(c *Config) { c.TrustAnswerChains = trust })
		conn := w.net.Bind(clientAddr)
		resp, _, err := conn.Exchange(context.Background(),
			dnswire.NewQuery(1, "a.loop.example.", dnswire.TypeA), p.Config().IngressIPs[0])
		if err != nil {
			t.Fatalf("trust=%v: %v", trust, err)
		}
		if resp.Header.RCode != dnswire.RCodeServFail {
			t.Errorf("trust=%v: rcode = %v, want SERVFAIL on CNAME loop", trust, resp.Header.RCode)
		}
	}
}

// TestResolutionTrace verifies the opt-in trace records the full story of
// one cold resolution and the short story of the warm repeat.
func TestResolutionTrace(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, nil)
	conn := w.net.Bind(clientAddr)

	tr := trace.New()
	ctx := trace.With(context.Background(), tr)
	if _, _, err := conn.Exchange(ctx, dnswire.NewQuery(1, "x-1.sub.cache.example.", dnswire.TypeA), p.Config().IngressIPs[0]); err != nil {
		t.Fatal(err)
	}
	kinds := tr.Kinds()
	var haveLB, haveMiss, haveUpstream, haveReferral bool
	for _, k := range kinds {
		switch k {
		case "lb":
			haveLB = true
		case "cache-miss":
			haveMiss = true
		case "upstream":
			haveUpstream = true
		case "referral":
			haveReferral = true
		}
	}
	if !haveLB || !haveMiss || !haveUpstream || !haveReferral {
		t.Errorf("cold trace incomplete: %v\n%s", kinds, tr)
	}

	warm := trace.New()
	ctx = trace.With(context.Background(), warm)
	if _, _, err := conn.Exchange(ctx, dnswire.NewQuery(2, "x-1.sub.cache.example.", dnswire.TypeA), p.Config().IngressIPs[0]); err != nil {
		t.Fatal(err)
	}
	wk := warm.Kinds()
	if len(wk) != 2 || wk[0] != "lb" || wk[1] != "cache-hit" {
		t.Errorf("warm trace = %v\n%s", wk, warm)
	}
}
