package platform

import (
	"net/netip"
	"testing"

	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/netsim"
	"dnscde/internal/zone"
)

// TestGluelessDelegation exercises the followReferral recursion: the
// delegated child zone's nameserver host lives in a *different* domain,
// so the referral carries no glue and the platform must resolve the NS
// host's address itself before descending.
func TestGluelessDelegation(t *testing.T) {
	w := buildWorld(t, 5)

	// glue-ns.example holds the A record of the out-of-zone NS host.
	nsHostAddr := netip.MustParseAddr("203.0.113.30")
	nsZone := zone.New("glue-ns.example")
	if err := zone.Apex(nsZone, "ns.glue-ns.example.", nsHostAddr, 3600); err != nil {
		t.Fatal(err)
	}
	childSrvAddr := netip.MustParseAddr("203.0.113.31")
	nsZone.MustAdd(dnswire.RR{Name: "childhost.glue-ns.example.", Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.ARecord{Addr: childSrvAddr}})
	if _, err := w.tree.AttachAuthority(nsHostAddr, netsim.LinkProfile{}, nsZone); err != nil {
		t.Fatal(err)
	}

	// glueless.example delegates sub.glueless.example to that host —
	// with no glue, since the host is out of zone.
	parent := zone.New("glueless.example")
	parentAddr := netip.MustParseAddr("203.0.113.32")
	if err := zone.Apex(parent, "ns.glueless.example.", parentAddr, 3600); err != nil {
		t.Fatal(err)
	}
	parent.MustAdd(dnswire.RR{Name: "sub.glueless.example.", Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.NSRecord{Host: "childhost.glue-ns.example."}})
	if _, err := w.tree.AttachAuthority(parentAddr, netsim.LinkProfile{}, parent); err != nil {
		t.Fatal(err)
	}

	child := zone.New("sub.glueless.example")
	if err := zone.Apex(child, "childhost.glue-ns.example.", childSrvAddr, 3600); err == nil {
		// Apex adds the NS host's A record in-zone, which is out of zone
		// here — build the apex manually instead.
		t.Fatal("expected out-of-zone apex glue to fail; adjust test")
	}
	child = zone.New("sub.glueless.example")
	child.MustAdd(dnswire.RR{Name: "sub.glueless.example.", Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.SOARecord{MName: "childhost.glue-ns.example.", RName: "h.sub.glueless.example.",
			Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 60}})
	child.MustAdd(dnswire.RR{Name: "sub.glueless.example.", Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.NSRecord{Host: "childhost.glue-ns.example."}})
	child.MustAdd(dnswire.RR{Name: "www.sub.glueless.example.", Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.ARecord{Addr: targetAddr}})
	if _, err := w.tree.AttachAuthority(childSrvAddr, netsim.LinkProfile{}, child); err != nil {
		t.Fatal(err)
	}

	p := w.newPlatform(t, nil)
	resp, _ := query(t, w, p, "www.sub.glueless.example.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answer) != 1 {
		t.Fatalf("glueless resolution failed: %s", resp.Summary())
	}
	if a := resp.Answer[0].Data.(dnswire.ARecord); a.Addr != targetAddr {
		t.Errorf("addr = %v", a.Addr)
	}
}

func TestGluelessDelegationUnresolvableNS(t *testing.T) {
	// A delegation whose NS host does not exist anywhere must SERVFAIL,
	// not loop.
	w := buildWorld(t, 5)
	parent := zone.New("deadend.example")
	parentAddr := netip.MustParseAddr("203.0.113.33")
	if err := zone.Apex(parent, "ns.deadend.example.", parentAddr, 3600); err != nil {
		t.Fatal(err)
	}
	parent.MustAdd(dnswire.RR{Name: "sub.deadend.example.", Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.NSRecord{Host: "nohost.nowhere.example."}})
	if _, err := w.tree.AttachAuthority(parentAddr, netsim.LinkProfile{}, parent); err != nil {
		t.Fatal(err)
	}
	p := w.newPlatform(t, nil)
	resp, _ := query(t, w, p, "www.sub.deadend.example.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v, want SERVFAIL", resp.Header.RCode)
	}
}

func TestEgressRoundRobinPolicy(t *testing.T) {
	egress := netsim.AddrRange(netip.MustParseAddr("198.51.100.210"), 3)
	w := buildWorld(t, 12)
	p := w.newPlatform(t, func(c *Config) {
		c.EgressIPs = egress
		c.EgressPolicy = EgressRoundRobin
		c.Selector = loadbal.NewRoundRobin()
	})
	for i := 1; i <= 9; i++ {
		query(t, w, p, zone.ProbeName(i, "sub.cache.example"), dnswire.TypeA)
	}
	seen := w.child.Log().DistinctSources("")
	if len(seen) != 3 {
		t.Errorf("round-robin egress used %d IPs, want 3", len(seen))
	}
}

func TestEgressPolicyStrings(t *testing.T) {
	if EgressRandom.String() != "egress-random" ||
		EgressRoundRobin.String() != "egress-round-robin" ||
		EgressPerCache.String() != "egress-per-cache" {
		t.Error("egress policy strings")
	}
	if EgressPolicy(9).String() != "egress-policy9" {
		t.Error("unknown policy string")
	}
}

func TestCachesAccessor(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, func(c *Config) { c.CacheCount = 3 })
	caches := p.Caches()
	if len(caches) != 3 {
		t.Fatalf("Caches() = %d", len(caches))
	}
	for i, c := range caches {
		if c.ID == "" {
			t.Errorf("cache %d has empty ID", i)
		}
	}
	// The returned slice is a copy.
	caches[0] = nil
	if p.Caches()[0] == nil {
		t.Error("Caches exposed internal slice")
	}
}
