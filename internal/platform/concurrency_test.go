package platform

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/netsim"
	"dnscde/internal/zone"
)

// TestConcurrentClients hammers one platform from many goroutines with a
// mixture of cache hits, misses, NXDOMAINs and refused names, checking
// that counters stay consistent and no probe is lost or duplicated.
func TestConcurrentClients(t *testing.T) {
	w := buildWorld(t, 40)
	p := w.newPlatform(t, func(c *Config) {
		c.CacheCount = 6
		c.Selector = loadbal.NewRandom(11)
	})
	ingress := p.Config().IngressIPs[0]

	const workers = 24
	const perWorker = 40
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			conn := w.net.Bind(netsim.MustAddr(fmt.Sprintf("198.18.7.%d", wkr+1)))
			for i := 0; i < perWorker; i++ {
				var name string
				switch i % 4 {
				case 0:
					name = zone.ProbeName(1+i%20, "sub.cache.example") // shared, cacheable
				case 1:
					name = zone.ProbeName(1+i%20, "chain.example") // CNAME chain
				case 2:
					name = fmt.Sprintf("nx-%d-%d.cache.example.", wkr, i) // NXDOMAIN
				default:
					name = zone.ProbeName(1+(wkr*perWorker+i)%20, "sub.cache.example")
				}
				resp, _, err := conn.Exchange(context.Background(),
					dnswire.NewQuery(uint16(i), name, dnswire.TypeA), ingress)
				if err != nil {
					errCh <- fmt.Errorf("worker %d probe %d: %w", wkr, i, err)
					return
				}
				if rc := resp.Header.RCode; rc != dnswire.RCodeNoError && rc != dnswire.RCodeNXDomain {
					errCh <- fmt.Errorf("worker %d probe %d: rcode %v", wkr, i, rc)
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	s := p.SnapshotStats()
	if s.Queries != workers*perWorker {
		t.Errorf("Queries = %d, want %d", s.Queries, workers*perWorker)
	}
	if s.CacheHits+s.CacheMisses != s.Queries {
		t.Errorf("hits %d + misses %d != queries %d", s.CacheHits, s.CacheMisses, s.Queries)
	}
	if s.UpstreamFail != 0 || s.Refused != 0 {
		t.Errorf("unexpected failures: %+v", s)
	}
}

// TestConcurrentCacheDownToggles races cache up/down toggles against
// client traffic; queries must never error (SERVFAIL only when every
// cache is down, which the toggler avoids).
func TestConcurrentCacheDownToggles(t *testing.T) {
	w := buildWorld(t, 20)
	p := w.newPlatform(t, func(c *Config) {
		c.CacheCount = 4
		c.Selector = loadbal.NewRandom(5)
	})
	ingress := p.Config().IngressIPs[0]

	stop := make(chan struct{})
	var togglerWg sync.WaitGroup
	togglerWg.Add(1)
	go func() {
		defer togglerWg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Keep at least caches 2 and 3 alive.
			p.SetCacheDown(i%2, true)
			p.SetCacheDown(i%2, false)
			i++
		}
	}()

	conn := w.net.Bind(netsim.MustAddr("198.18.8.1"))
	for i := 0; i < 400; i++ {
		name := zone.ProbeName(1+i%20, "sub.cache.example")
		resp, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(uint16(i), name, dnswire.TypeA), ingress)
		if err != nil && !errors.Is(err, netsim.ErrTimeout) {
			t.Fatalf("probe %d: %v", i, err)
		}
		if err == nil && resp.Header.RCode == dnswire.RCodeServFail {
			t.Fatalf("probe %d: SERVFAIL despite live caches", i)
		}
	}
	close(stop)
	togglerWg.Wait()
}
