package platform

import (
	"fmt"

	"dnscde/internal/loadbal"
)

// CheckpointState is the serializable mutable state of one platform,
// excluding its caches (checkpointed individually per cache): the load-
// balancer chain position, the egress round-robin cursor and RNG stream
// position, the per-cache down flags, and the ground-truth counters.
type CheckpointState struct {
	Selector loadbal.State
	EgressRR int
	RNGDraws uint64
	Down     []bool
	Stats    PlatformStats
}

// Checkpoint captures the platform's mutable state. Must be called at a
// quiescent barrier (no queries in flight).
func (p *Platform) Checkpoint() (CheckpointState, error) {
	sel, ok := loadbal.CaptureState(p.cfg.Selector)
	if !ok {
		return CheckpointState{}, fmt.Errorf("platform %s: selector %q is not checkpointable", p.cfg.Name, p.cfg.Selector.Name())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return CheckpointState{
		Selector: sel,
		EgressRR: p.egressRR,
		RNGDraws: p.rngSrc.Draws(),
		Down:     append([]bool(nil), p.down...),
		Stats:    p.stats,
	}, nil
}

// RestoreCheckpoint overlays a captured state onto a freshly constructed
// platform. The platform must have been built from the same Config (same
// name, seed, cache count and selector strategy) — restore repositions
// chains, it does not reconfigure.
func (p *Platform) RestoreCheckpoint(st CheckpointState) error {
	if len(st.Down) != len(p.caches) {
		return fmt.Errorf("platform %s: restore has %d down flags, platform has %d caches", p.cfg.Name, len(st.Down), len(p.caches))
	}
	if err := loadbal.RestoreState(p.cfg.Selector, st.Selector); err != nil {
		return fmt.Errorf("platform %s: %w", p.cfg.Name, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.egressRR = st.EgressRR
	p.rngSrc.SkipTo(st.RNGDraws)
	copy(p.down, st.Down)
	p.stats = st.Stats
	return nil
}
