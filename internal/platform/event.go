package platform

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"dnscde/internal/dnscache"
	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/netsim/des"
	"dnscde/internal/trace"
)

// Ingress pipeline opcodes: on a sharded scheduler the platform serves a
// query as a native event chain on the delivering lane instead of
// blocking inside the delivery event. opIngress runs the front-of-house
// checks and the load-balancer sample, opCacheLookup samples the one
// cache (answering hits after CacheHitDelay of simulated time), opRecurse
// hands a miss to the egress resolver on a des.Process — so the recursion
// interleaves with other traffic on the event loops instead of nesting
// pooled schedulers — and opRespond delivers the response. The stages
// mirror serveFrom statement for statement; both paths must consume
// identical RNG draws and charge identical simulated time (DESIGN.md §12).
const (
	opIngress uint8 = iota
	opCacheLookup
	opRecurse
	opRespond
)

// queryEv is the pooled per-query actor carrying one ingress pipeline
// through its stages.
type queryEv struct {
	p       *Platform
	ingress netip.Addr
	sched   *des.Scheduler
	lane    int
	ctx     context.Context
	src     netip.Addr
	query   *dnswire.Message
	r       netsim.Responder

	q        dnswire.Question
	resp     *dnswire.Message
	cache    *dnscache.Cache
	cacheIdx int
	err      error
}

var _ des.Actor = (*queryEv)(nil)

var (
	_ netsim.EventHandler = (*front)(nil)
	_ netsim.EventHandler = (*Platform)(nil)
)

var queryEvPool = sync.Pool{New: func() any { return new(queryEv) }}

// ServeDNSEvent implements netsim.EventHandler for one ingress IP.
func (f *front) ServeDNSEvent(ctx context.Context, sched *des.Scheduler, src netip.Addr, query *dnswire.Message, r netsim.Responder) {
	f.p.serveFromEvent(ctx, sched, f.ingress, src, query, r)
}

// ServeDNSEvent implements netsim.EventHandler directly for single-ingress
// use, mirroring ServeDNS.
func (p *Platform) ServeDNSEvent(ctx context.Context, sched *des.Scheduler, src netip.Addr, query *dnswire.Message, r netsim.Responder) {
	p.serveFromEvent(ctx, sched, p.cfg.IngressIPs[0], src, query, r)
}

// serveFromEvent starts the event-native ingress pipeline.
func (p *Platform) serveFromEvent(ctx context.Context, sched *des.Scheduler, ingress, src netip.Addr, query *dnswire.Message, r netsim.Responder) {
	qe := queryEvPool.Get().(*queryEv)
	qe.p = p
	qe.ingress = ingress
	qe.sched = sched
	qe.lane = sched.LaneIndex()
	qe.ctx = ctx
	qe.src = src
	qe.query = query
	qe.r = r
	sched.Schedule(0, qe, opIngress)
}

// Fire dispatches one pipeline stage.
func (qe *queryEv) Fire(now des.Time, op uint8) {
	switch op {
	case opIngress:
		qe.stageIngress(now)
	case opCacheLookup:
		qe.stageCacheLookup(now)
	case opRecurse:
		qe.stageRecurse()
	case opRespond:
		qe.respond(now)
	}
}

// respond delivers the terminal response (or error) and recycles the
// record.
func (qe *queryEv) respond(now des.Time) {
	r, resp, err := qe.r, qe.resp, qe.err
	*qe = queryEv{}
	queryEvPool.Put(qe)
	r.Respond(now, resp, err)
}

// respondNow is for stages that settle at the current instant without
// another event hop (handlerTime parity: the synchronous path charges no
// meter time on these branches either).
func (qe *queryEv) respondNow(now des.Time, resp *dnswire.Message) {
	qe.resp = resp
	qe.respond(now)
}

// stageIngress mirrors the front-of-house half of serveFrom: question
// parse, query accounting, refusal policy and the load-balancer sample.
func (qe *queryEv) stageIngress(now des.Time) {
	p := qe.p
	q, err := qe.query.FirstQuestion()
	if err != nil {
		resp := dnswire.NewResponse(qe.query)
		resp.Header.RCode = dnswire.RCodeFormErr
		qe.respondNow(now, resp)
		return
	}
	qe.q = q
	p.count(func(s *PlatformStats) { s.Queries++ })
	p.mQueries.Inc()

	resp := dnswire.NewResponse(qe.query)
	resp.Header.RecursionAvailable = true
	qe.resp = resp

	if !p.allowed(q.Name) {
		p.count(func(s *PlatformStats) { s.Refused++ })
		p.mRefused.Inc()
		resp.Header.RCode = dnswire.RCodeRefused
		qe.respondNow(now, resp)
		return
	}

	cluster := p.clusterFor(qe.ingress)
	if len(cluster) == 0 {
		// Every cache behind this ingress IP is down.
		p.count(func(s *PlatformStats) { s.UpstreamFail++ })
		p.mUpstreamFail.Inc()
		resp.Header.RCode = dnswire.RCodeServFail
		qe.respondNow(now, resp)
		return
	}
	pos := p.cfg.Selector.Select(q, qe.src, len(cluster))
	qe.cacheIdx = cluster[pos]
	qe.cache = p.caches[qe.cacheIdx]
	trace.Addf(qe.ctx, "lb", "%s selected cache %d of %d for %s", p.cfg.Selector.Name(), qe.cacheIdx, len(cluster), q)

	qe.sched.Schedule(0, qe, opCacheLookup)
}

// stageCacheLookup samples the one selected cache. Hits answer after
// CacheHitDelay of simulated time — the event-world form of the
// ChargeLatency call the synchronous path makes — and misses fall through
// to the recursion stage.
func (qe *queryEv) stageCacheLookup(now des.Time) {
	p := qe.p
	if entry, ok := qe.cache.Get(qe.q, p.cfg.Clock.Now()); ok {
		p.count(func(s *PlatformStats) { s.CacheHits++ })
		p.mCacheHits.Inc()
		trace.Addf(qe.ctx, "cache-hit", "%s answered %s", qe.cache.ID, qe.q)
		qe.resp = p.entryToResponse(qe.resp, entry)
		if p.cfg.CacheHitDelay > 0 {
			qe.sched.Schedule(p.cfg.CacheHitDelay, qe, opRespond)
			return
		}
		qe.respond(now)
		return
	}
	p.count(func(s *PlatformStats) { s.CacheMisses++ })
	p.mCacheMisses.Inc()
	trace.Addf(qe.ctx, "cache-miss", "%s lacks %s", qe.cache.ID, qe.q)
	qe.sched.Schedule(0, qe, opRecurse)
}

// stageRecurse hands the miss to the egress resolver. On a sharded
// universe the existing blocking resolver code runs on its own goroutine
// under a des.Process: each upstream exchange it issues rides the shared
// event loops (ExchangeRetry detects the process in its context), parking
// the goroutine between events, and the accumulated simulated time lands
// in the opRespond injection. Without a sharded universe (defensive —
// the exchange layer only routes here when sharded) the resolver runs
// synchronously on the lane with legacy nested pooled schedulers.
func (qe *queryEv) stageRecurse() {
	ss := qe.sched.Sharded()
	if ss == nil {
		qe.finishResolve(qe.ctx)
		qe.sched.Schedule(0, qe, opRespond)
		return
	}
	proc := ss.NewProcess()
	go qe.recurse(proc)
}

// recurse is the process goroutine: the platform's unmodified recursive
// resolution (forwarding chain or iterative descent), with the process in
// scope so nested exchanges await on the event loops.
func (qe *queryEv) recurse(proc *des.Process) {
	defer func() {
		if r := recover(); r != nil {
			if des.Aborted(r) {
				// The universe died under us (a lane panic elsewhere);
				// unwind silently, the coordinator reports the cause.
				return
			}
			qe.resp = nil
			qe.err = fmt.Errorf("platform: resolve panic: %v", r)
			proc.Detach(qe.lane, qe, opRespond)
		}
	}()
	qe.finishResolve(netsim.WithProcess(qe.ctx, proc))
	proc.Detach(qe.lane, qe, opRespond)
}

// finishResolve mirrors the miss half of serveFrom: resolve, store into
// the sampled cache, optional AAAA follow-up, response assembly.
func (qe *queryEv) finishResolve(ctx context.Context) {
	p := qe.p
	entry, err := p.resolve(ctx, qe.q, qe.cacheIdx)
	if err != nil {
		p.count(func(s *PlatformStats) { s.UpstreamFail++ })
		p.mUpstreamFail.Inc()
		qe.resp.Header.RCode = dnswire.RCodeServFail
		return
	}
	qe.cache.Put(qe.q, entry, p.cfg.Clock.Now())

	// Windows-style follow-up: prefetch the AAAA record for names just
	// resolved under A (observable at the nameserver as an A→AAAA query
	// pattern — a §VI software fingerprint).
	if p.cfg.QueryAAAA && qe.q.Type == dnswire.TypeA {
		followUp := dnswire.Question{Name: qe.q.Name, Type: dnswire.TypeAAAA, Class: qe.q.Class}
		if _, ok := qe.cache.Get(followUp, p.cfg.Clock.Now()); !ok {
			if e6, err := p.resolve(ctx, followUp, qe.cacheIdx); err == nil {
				qe.cache.Put(followUp, e6, p.cfg.Clock.Now())
			}
		}
	}
	qe.resp = p.entryToResponse(qe.resp, entry)
}
