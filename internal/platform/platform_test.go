package platform

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/authns"
	"dnscde/internal/clock"
	"dnscde/internal/dnstree"
	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/netsim"
	"dnscde/internal/zone"
)

var (
	parentNSAddr = netip.MustParseAddr("203.0.113.10")
	childNSAddr  = netip.MustParseAddr("203.0.113.11")
	targetAddr   = netip.MustParseAddr("192.0.2.80")
	clientAddr   = netip.MustParseAddr("198.18.0.1")
)

// world is a fully wired simulated Internet for platform tests.
type world struct {
	net    *netsim.Network
	clk    *clock.Virtual
	tree   *dnstree.Tree
	parent *authns.Server // authoritative for cache.example
	child  *authns.Server // authoritative for sub.cache.example
	hier   *zone.Hierarchy
}

// buildWorld wires root + TLD + the paper's two-zone CDE setup (cache.example
// with q CNAME-chain probes and a delegated sub.cache.example with q
// hierarchy probes).
func buildWorld(t *testing.T, q int) *world {
	t.Helper()
	w := &world{
		net: netsim.New(7),
		clk: clock.NewVirtual(),
	}
	tree, err := dnstree.Build(w.net, w.clk, netsim.LinkProfile{OneWay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	w.tree = tree

	hier, err := zone.BuildHierarchy("cache.example", q, targetAddr, parentNSAddr, childNSAddr, 300)
	if err != nil {
		t.Fatal(err)
	}
	w.hier = hier
	chain, err := zone.BuildCNAMEChain("chain.example", q, targetAddr, parentNSAddr, 300)
	if err != nil {
		t.Fatal(err)
	}
	w.parent, err = tree.AttachAuthority(parentNSAddr, netsim.LinkProfile{OneWay: 10 * time.Millisecond}, hier.Parent, chain)
	if err != nil {
		t.Fatal(err)
	}
	w.child, err = tree.AttachAuthority(childNSAddr, netsim.LinkProfile{OneWay: 10 * time.Millisecond}, hier.Child)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// newPlatform builds a platform with sensible test defaults, letting the
// caller override pieces of the config.
func (w *world) newPlatform(t *testing.T, mutate func(*Config)) *Platform {
	t.Helper()
	cfg := Config{
		Name:       "test-platform",
		IngressIPs: []netip.Addr{netip.MustParseAddr("198.51.100.100")},
		EgressIPs:  []netip.Addr{netip.MustParseAddr("198.51.100.200")},
		CacheCount: 1,
		Roots:      w.tree.Roots(),
		Clock:      w.clk,
		Seed:       11,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := New(cfg, w.net, netsim.LinkProfile{OneWay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// query sends one client query to the platform's first ingress IP.
func query(t *testing.T, w *world, p *Platform, name string, typ dnswire.Type) (*dnswire.Message, time.Duration) {
	t.Helper()
	conn := w.net.Bind(clientAddr)
	resp, rtt, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, name, typ), p.Config().IngressIPs[0])
	if err != nil {
		t.Fatalf("query %s: %v", name, err)
	}
	return resp, rtt
}

func TestResolveThroughHierarchy(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, nil)
	resp, _ := query(t, w, p, "x-1.sub.cache.example.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if !resp.Header.RecursionAvailable {
		t.Error("RA not set")
	}
	if len(resp.Answer) != 1 {
		t.Fatalf("answers = %v", resp.Answer)
	}
	if a := resp.Answer[0].Data.(dnswire.ARecord); a.Addr != targetAddr {
		t.Errorf("addr = %v", a.Addr)
	}
	// Full cold-cache walk: root, TLD, parent, child each got >= 1 query.
	if w.tree.Root.Log().Len() == 0 || w.tree.TLD.Log().Len() == 0 {
		t.Error("resolution did not start at the roots")
	}
	if w.parent.Log().Len() == 0 || w.child.Log().Len() == 0 {
		t.Error("resolution did not walk the delegation")
	}
}

func TestSingleCacheSecondQueryIsHit(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, nil)
	query(t, w, p, "x-1.sub.cache.example.", dnswire.TypeA)
	before := w.child.Log().CountName("x-1.sub.cache.example.")
	query(t, w, p, "x-1.sub.cache.example.", dnswire.TypeA)
	after := w.child.Log().CountName("x-1.sub.cache.example.")
	if before != 1 || after != 1 {
		t.Errorf("child saw %d then %d queries, want 1 both times (second from cache)", before, after)
	}
	s := p.SnapshotStats()
	if s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheHitFasterThanMiss(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, func(c *Config) { c.CacheHitDelay = time.Millisecond })
	_, missRTT := query(t, w, p, "x-2.sub.cache.example.", dnswire.TypeA)
	_, hitRTT := query(t, w, p, "x-2.sub.cache.example.", dnswire.TypeA)
	if hitRTT >= missRTT {
		t.Errorf("hit %v not faster than miss %v — timing side channel broken", hitRTT, missRTT)
	}
	// The miss walks at least root+TLD+parent+child upstream at 2*(2+10)ms
	// legs minimum; the hit pays only the client leg.
	if hitRTT > missRTT/2 {
		t.Errorf("hit %v vs miss %v: separation too small", hitRTT, missRTT)
	}
}

func TestTTLExpiryTriggersRequery(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, nil)
	query(t, w, p, "x-1.sub.cache.example.", dnswire.TypeA)
	w.clk.Advance(301 * time.Second) // probe records carry TTL 300
	query(t, w, p, "x-1.sub.cache.example.", dnswire.TypeA)
	if got := w.child.Log().CountName("x-1.sub.cache.example."); got != 2 {
		t.Errorf("child saw %d queries, want 2 after TTL expiry", got)
	}
}

func TestMultiCacheEnumerationSignal(t *testing.T) {
	// The §IV-B1a signal: q identical queries against n caches produce
	// exactly n arrivals at the authoritative server (each cache misses
	// once, then hits).
	const n = 4
	w := buildWorld(t, 5)
	p := w.newPlatform(t, func(c *Config) {
		c.CacheCount = n
		c.Selector = loadbal.NewRoundRobin()
	})
	for i := 0; i < 4*n; i++ {
		query(t, w, p, "x-1.sub.cache.example.", dnswire.TypeA)
	}
	if got := w.child.Log().CountName("x-1.sub.cache.example."); got != n {
		t.Errorf("child saw %d queries, want %d (one per cache)", got, n)
	}
}

func TestCNAMEChainRequeryBehaviour(t *testing.T) {
	// §IV-B2a: distinct aliases x-i all CNAME to name.chain.example. With
	// hardened (default) resolution each cache re-queries the target once;
	// the per-cache count of arrivals for the target equals the number of
	// caches.
	const n = 3
	w := buildWorld(t, 10)
	p := w.newPlatform(t, func(c *Config) {
		c.CacheCount = n
		c.Selector = loadbal.NewRoundRobin()
	})
	for i := 1; i <= 9; i++ {
		resp, _ := query(t, w, p, zone.ProbeName(i, "chain.example"), dnswire.TypeA)
		if len(resp.Answer) != 2 {
			t.Fatalf("probe %d: answer = %v", i, resp.Answer)
		}
	}
	if got := w.parent.Log().CountName("name.chain.example."); got != n {
		t.Errorf("target queried %d times, want %d (once per cache)", got, n)
	}
}

func TestCNAMEChainTrustedSkipsRequery(t *testing.T) {
	// Ablation: a platform that trusts BIND-style appended chains never
	// queries the target separately, defeating the §IV-B2a count.
	w := buildWorld(t, 10)
	p := w.newPlatform(t, func(c *Config) {
		c.CacheCount = 3
		c.Selector = loadbal.NewRoundRobin()
		c.TrustAnswerChains = true
	})
	for i := 1; i <= 9; i++ {
		resp, _ := query(t, w, p, zone.ProbeName(i, "chain.example"), dnswire.TypeA)
		if len(resp.Answer) != 2 {
			t.Fatalf("probe %d: answer = %v", i, resp.Answer)
		}
	}
	if got := w.parent.Log().CountName("name.chain.example."); got != 0 {
		t.Errorf("target queried %d times, want 0 with trusted chains", got)
	}
}

func TestNamesHierarchySignal(t *testing.T) {
	// §IV-B2b: after the first probe lands in a cache, that cache holds
	// the sub.cache.example delegation and asks the child directly; the
	// parent sees one query per cache.
	const n = 3
	w := buildWorld(t, 20)
	p := w.newPlatform(t, func(c *Config) {
		c.CacheCount = n
		c.Selector = loadbal.NewRoundRobin()
	})
	for i := 1; i <= 15; i++ {
		query(t, w, p, zone.ProbeName(i, "sub.cache.example"), dnswire.TypeA)
	}
	if got := w.parent.Log().CountSuffix("sub.cache.example."); got != n {
		t.Errorf("parent saw %d probe queries, want %d (one per cache)", got, n)
	}
	if got := w.child.Log().CountSuffix("sub.cache.example."); got != 15 {
		t.Errorf("child saw %d queries, want 15 (every probe)", got)
	}
}

func TestEgressIPsObservedAtNameserver(t *testing.T) {
	egress := netsim.AddrRange(netip.MustParseAddr("198.51.100.200"), 5)
	w := buildWorld(t, 30)
	p := w.newPlatform(t, func(c *Config) {
		c.EgressIPs = egress
		c.EgressPolicy = EgressRandom
	})
	for i := 1; i <= 30; i++ {
		query(t, w, p, zone.ProbeName(i, "sub.cache.example"), dnswire.TypeA)
	}
	seen := w.child.Log().DistinctSources("")
	if len(seen) != len(egress) {
		t.Errorf("observed %d egress IPs, want %d", len(seen), len(egress))
	}
	valid := make(map[netip.Addr]bool, len(egress))
	for _, ip := range egress {
		valid[ip] = true
	}
	for _, ip := range seen {
		if !valid[ip] {
			t.Errorf("unexpected source %v", ip)
		}
	}
}

func TestEgressPerCachePinning(t *testing.T) {
	egress := netsim.AddrRange(netip.MustParseAddr("198.51.100.200"), 4)
	w := buildWorld(t, 10)
	p := w.newPlatform(t, func(c *Config) {
		c.CacheCount = 1
		c.EgressIPs = egress
		c.EgressPolicy = EgressPerCache
	})
	for i := 1; i <= 10; i++ {
		query(t, w, p, zone.ProbeName(i, "sub.cache.example"), dnswire.TypeA)
	}
	if seen := w.child.Log().DistinctSources(""); len(seen) != 1 {
		t.Errorf("per-cache egress: saw %d IPs, want 1", len(seen))
	}
}

func TestAllowedSuffixesRefusesOthers(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, func(c *Config) {
		c.AllowedSuffixes = []string{"allowed.example"}
	})
	conn := w.net.Bind(clientAddr)
	resp, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "x-1.sub.cache.example.", dnswire.TypeA), p.Config().IngressIPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v, want REFUSED", resp.Header.RCode)
	}
	if s := p.SnapshotStats(); s.Refused != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNegativeCaching(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, nil)
	resp, _ := query(t, w, p, "missing.sub.cache.example.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	query(t, w, p, "missing.sub.cache.example.", dnswire.TypeA)
	// SOA minimum is 60s, so the second query must be served from cache.
	if got := w.child.Log().CountName("missing.sub.cache.example."); got != 1 {
		t.Errorf("child saw %d queries, want 1 (negative caching)", got)
	}
}

func TestIngressClusters(t *testing.T) {
	ingress := netsim.AddrRange(netip.MustParseAddr("198.51.100.100"), 2)
	w := buildWorld(t, 20)
	_ = w.newPlatform(t, func(c *Config) {
		c.IngressIPs = ingress
		c.CacheCount = 4
		c.Selector = loadbal.NewRoundRobin()
		// Ingress 0 -> caches {0,1}, ingress 1 -> caches {2,3}.
		c.IngressClusters = [][]int{{0, 1}, {2, 3}}
	})
	conn := w.net.Bind(clientAddr)
	// Probe only via ingress 0: the enumeration signal must count its
	// cluster (2), not all 4 caches.
	for i := 0; i < 12; i++ {
		if _, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "x-1.sub.cache.example.", dnswire.TypeA), ingress[0]); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.child.Log().CountName("x-1.sub.cache.example."); got != 2 {
		t.Errorf("cluster 0: child saw %d queries, want 2", got)
	}
	// Now via ingress 1: two more caches must fetch it.
	for i := 0; i < 12; i++ {
		if _, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "x-1.sub.cache.example.", dnswire.TypeA), ingress[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.child.Log().CountName("x-1.sub.cache.example."); got != 4 {
		t.Errorf("both clusters: child saw %d queries, want 4", got)
	}
}

func TestServFailWhenRootsUnreachable(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, func(c *Config) {
		c.Roots = []netip.Addr{netip.MustParseAddr("203.0.113.99")} // nobody there
		c.UpstreamRetries = 1
	})
	conn := w.net.Bind(clientAddr)
	resp, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "x-1.sub.cache.example.", dnswire.TypeA), p.Config().IngressIPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v, want SERVFAIL", resp.Header.RCode)
	}
	if s := p.SnapshotStats(); s.UpstreamFail != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestConfigValidation(t *testing.T) {
	w := buildWorld(t, 5)
	base := func() Config {
		return Config{
			IngressIPs: []netip.Addr{clientAddr},
			EgressIPs:  []netip.Addr{clientAddr},
			CacheCount: 1,
			Roots:      w.tree.Roots(),
		}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"no ingress", func(c *Config) { c.IngressIPs = nil }, ErrNoIngress},
		{"no egress", func(c *Config) { c.EgressIPs = nil }, ErrNoEgress},
		{"no caches", func(c *Config) { c.CacheCount = 0 }, ErrNoCaches},
		{"no roots", func(c *Config) { c.Roots = nil }, ErrNoRoots},
		{"cluster count mismatch", func(c *Config) { c.IngressClusters = [][]int{{0}, {0}} }, ErrBadCluster},
		{"cluster empty", func(c *Config) { c.IngressClusters = [][]int{{}} }, ErrBadCluster},
		{"cluster index out of range", func(c *Config) { c.IngressClusters = [][]int{{5}} }, ErrBadCluster},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		if _, err := New(cfg, w.net, netsim.LinkProfile{}); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestGroundTruth(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, func(c *Config) {
		c.CacheCount = 7
		c.Selector = loadbal.NewRoundRobin()
	})
	gt := p.GroundTruth()
	if gt.Caches != 7 || gt.IngressIPs != 1 || gt.EgressIPs != 1 {
		t.Errorf("ground truth = %+v", gt)
	}
	if gt.Selector != "round-robin" || gt.SelectorCat != loadbal.TrafficDependent {
		t.Errorf("selector ground truth = %+v", gt)
	}
}

func TestFlushCaches(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, nil)
	query(t, w, p, "x-1.sub.cache.example.", dnswire.TypeA)
	p.FlushCaches()
	query(t, w, p, "x-1.sub.cache.example.", dnswire.TypeA)
	if got := w.child.Log().CountName("x-1.sub.cache.example."); got != 2 {
		t.Errorf("child saw %d queries, want 2 after flush", got)
	}
}

func TestFormErrOnEmptyQuery(t *testing.T) {
	w := buildWorld(t, 5)
	p := w.newPlatform(t, nil)
	resp, err := p.ServeDNS(context.Background(), clientAddr, &dnswire.Message{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeFormErr {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestResolutionSurvivesPacketLoss(t *testing.T) {
	w := buildWorld(t, 5)
	// Lossy client link, like the paper's Iranian networks.
	w.net.Register(clientAddr, netsim.LinkProfile{Loss: 0.11}, netsim.HandlerFunc(
		func(context.Context, netip.Addr, *dnswire.Message) (*dnswire.Message, error) {
			return nil, fmt.Errorf("client is not a server")
		}))
	p := w.newPlatform(t, func(c *Config) { c.UpstreamRetries = 4 })
	conn := w.net.Bind(clientAddr)
	okCount := 0
	for i := 1; i <= 5; i++ {
		resp, _, err := netsim.ExchangeRetry(context.Background(), conn,
			dnswire.NewQuery(uint16(i), zone.ProbeName(i, "sub.cache.example"), dnswire.TypeA),
			p.Config().IngressIPs[0], 10)
		if err == nil && resp.Header.RCode == dnswire.RCodeNoError {
			okCount++
		}
	}
	if okCount < 4 {
		t.Errorf("only %d/5 probes succeeded under 11%% loss with retries", okCount)
	}
}
