package udpnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnscde/internal/dnswire"
)

// DNS over TCP (RFC 1035 §4.2.2): each message is prefixed with a 2-octet
// length. The server side answers queries that arrived truncated over
// UDP — e.g. control-zone egress readouts listing many source addresses —
// and the Transport falls back to TCP automatically when it sees the TC
// bit.

// TCPServer serves a netsim.Handler over TCP.
type TCPServer struct {
	handler handlerIface

	mu       sync.Mutex
	listener net.Listener
	closed   atomic.Bool
}

// handlerIface mirrors netsim.Handler without importing it twice.
type handlerIface interface {
	ServeDNS(ctx context.Context, src netip.Addr, query *dnswire.Message) (*dnswire.Message, error)
}

// NewTCPServer wraps handler.
func NewTCPServer(handler handlerIface) *TCPServer {
	return &TCPServer{handler: handler}
}

// Listen binds the server to addr and returns the bound address.
func (s *TCPServer) Listen(addr string) (netip.AddrPort, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("udpnet: tcp listen %q: %w", addr, err)
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	return l.Addr().(*net.TCPAddr).AddrPort(), nil
}

// Serve accepts connections until the context is cancelled or Close is
// called. Each connection may carry multiple framed queries.
func (s *TCPServer) Serve(ctx context.Context) error {
	s.mu.Lock()
	l := s.listener
	s.mu.Unlock()
	if l == nil {
		return errors.New("udpnet: TCP Serve before Listen")
	}
	go func() {
		<-ctx.Done()
		s.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() || ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("udpnet: tcp accept: %w", err)
		}
		go s.serveConn(ctx, conn)
	}
}

func (s *TCPServer) serveConn(ctx context.Context, conn net.Conn) {
	defer func() { _ = conn.Close() }()
	src := netip.Addr{}
	if tcpAddr, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		src = tcpAddr.AddrPort().Addr()
	}
	for {
		//cdelint:allow walltime socket read deadlines are wall-clock by definition
		if err := conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
			return // connection already dead; nothing to serve
		}
		query, err := readFramed(conn)
		if err != nil {
			return // EOF, timeout or garbage: drop the connection
		}
		resp, err := s.handler.ServeDNS(ctx, src, query)
		if err != nil {
			resp = dnswire.NewResponse(query)
			resp.Header.RCode = dnswire.RCodeServFail
		}
		if err := writeFramed(conn, resp); err != nil {
			return
		}
	}
}

// Close stops the server.
func (s *TCPServer) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		_ = s.listener.Close()
	}
}

// readFramed reads one length-prefixed DNS message.
func readFramed(r io.Reader) (*dnswire.Message, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	msgLen := binary.BigEndian.Uint16(lenBuf[:])
	buf := make([]byte, msgLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return dnswire.Unpack(buf)
}

// writeFramed writes one length-prefixed DNS message.
func writeFramed(w io.Writer, msg *dnswire.Message) error {
	wire, err := msg.Pack()
	if err != nil {
		return err
	}
	if len(wire) > 0xFFFF {
		return fmt.Errorf("udpnet: message exceeds TCP frame limit")
	}
	frame := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(frame, uint16(len(wire)))
	copy(frame[2:], wire)
	_, err = w.Write(frame)
	return err
}

// ExchangeTCP performs one framed exchange over a fresh TCP connection.
func ExchangeTCP(ctx context.Context, query *dnswire.Message, dst netip.AddrPort, timeout time.Duration) (*dnswire.Message, time.Duration, error) {
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	//cdelint:allow walltime RTT of a real TCP exchange is measured on the wall clock
	start := time.Now()
	conn, err := d.DialContext(ctx, "tcp", dst.String())
	if err != nil {
		return nil, 0, fmt.Errorf("udpnet: tcp dial %v: %w", dst, err)
	}
	defer func() { _ = conn.Close() }()
	//cdelint:allow walltime socket deadlines are wall-clock by definition
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, time.Since(start), fmt.Errorf("udpnet: tcp deadline: %w", err)
	}
	if err := writeFramed(conn, query); err != nil {
		return nil, time.Since(start), fmt.Errorf("udpnet: tcp send: %w", err)
	}
	resp, err := readFramed(conn)
	if err != nil {
		return nil, time.Since(start), fmt.Errorf("udpnet: tcp receive: %w", err)
	}
	if resp.Header.ID != query.Header.ID {
		return nil, time.Since(start), fmt.Errorf("udpnet: tcp response ID mismatch")
	}
	return resp, time.Since(start), nil
}
