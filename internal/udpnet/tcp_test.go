package udpnet

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"dnscde/internal/authns"
	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/zone"
)

// newControlAuth builds an authoritative server with the control zone on.
func newControlAuth(t *testing.T, h *zone.Hierarchy) *authns.Server {
	t.Helper()
	return authns.NewServer([]*zone.Zone{h.Parent, h.Child},
		authns.WithControlZone("ctl.cache.example."))
}

// bigTXTHandler answers every query with a TXT record too large for a
// 512-byte UDP response.
func bigTXTHandler() netsim.Handler {
	return netsim.HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		resp := dnswire.NewResponse(q)
		resp.Header.Authoritative = true
		values := make([]string, 0, 8)
		for i := 0; i < 8; i++ {
			values = append(values, strings.Repeat(fmt.Sprintf("v%d-", i), 30))
		}
		resp.Answer = append(resp.Answer, dnswire.RR{
			Name: q.Question[0].Name, Class: dnswire.ClassIN, TTL: 0,
			Data: dnswire.TXTRecord{Strings: values},
		})
		return resp, nil
	})
}

// startTCP runs a TCP server for h.
func startTCP(t *testing.T, h handlerIface) (netip.AddrPort, func()) {
	t.Helper()
	srv := NewTCPServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ctx)
	}()
	return addr, func() {
		cancel()
		srv.Close()
		wg.Wait()
	}
}

func TestExchangeTCPDirect(t *testing.T) {
	auth := authServer(t)
	addr, stop := startTCP(t, auth)
	defer stop()
	resp, rtt, err := ExchangeTCP(context.Background(),
		dnswire.NewQuery(9, "name.cache.example.", dnswire.TypeA), addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answer) != 1 || rtt <= 0 {
		t.Fatalf("resp = %s rtt=%v", resp.Summary(), rtt)
	}
}

func TestExchangeTCPMultipleQueriesPerConnServer(t *testing.T) {
	// The server must survive many sequential connections and queries.
	auth := authServer(t)
	addr, stop := startTCP(t, auth)
	defer stop()
	for i := 0; i < 10; i++ {
		if _, _, err := ExchangeTCP(context.Background(),
			dnswire.NewQuery(uint16(i+1), "name.cache.example.", dnswire.TypeA), addr, 2*time.Second); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if auth.Log().Len() != 10 {
		t.Errorf("log = %d", auth.Log().Len())
	}
}

func TestUDPTruncationTCPFallback(t *testing.T) {
	h := bigTXTHandler()
	udpSrv := NewServer(h)
	udpAddr, err := udpSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	go func() { _ = udpSrv.Serve(context.Background()) }()
	defer udpSrv.Close()

	// TCP server on the SAME port.
	tcpSrv := NewTCPServer(h)
	tcpAddr, err := tcpSrv.Listen(udpAddr.String())
	if err != nil {
		t.Skipf("cannot bind TCP on the UDP port: %v", err)
	}
	go func() { _ = tcpSrv.Serve(context.Background()) }()
	defer tcpSrv.Close()
	if tcpAddr.Port() != udpAddr.Port() {
		t.Fatalf("port mismatch %v vs %v", tcpAddr, udpAddr)
	}

	// Without fallback: truncated, empty response.
	tr := &Transport{Port: udpAddr.Port(), Timeout: 2 * time.Second}
	resp, _, err := tr.Exchange(context.Background(),
		dnswire.NewQuery(5, "big.cache.example.", dnswire.TypeTXT), udpAddr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Truncated || len(resp.Answer) != 0 {
		t.Fatalf("expected truncated UDP response, got %s", resp.Summary())
	}

	// With fallback: the full answer arrives over TCP.
	tr.FallbackTCP = true
	resp, _, err = tr.Exchange(context.Background(),
		dnswire.NewQuery(6, "big.cache.example.", dnswire.TypeTXT), udpAddr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated || len(resp.Answer) != 1 {
		t.Fatalf("fallback response = %s", resp.Summary())
	}
	txt := resp.Answer[0].Data.(dnswire.TXTRecord)
	if len(txt.Strings) != 8 {
		t.Errorf("TXT strings = %d", len(txt.Strings))
	}
}

func TestTCPServeBeforeListen(t *testing.T) {
	srv := NewTCPServer(authServer(t))
	if err := srv.Serve(context.Background()); err == nil {
		t.Error("Serve before Listen succeeded")
	}
}

func TestControlEgressOverTCPFallback(t *testing.T) {
	// The motivating case: an egress readout listing many sources
	// exceeds 512 bytes and needs the TCP path.
	h, err := zone.BuildHierarchy("cache.example", 3,
		netip.MustParseAddr("192.0.2.80"), netip.MustParseAddr("198.51.100.1"),
		netip.MustParseAddr("198.51.100.2"), 300)
	if err != nil {
		t.Fatal(err)
	}
	auth := newControlAuth(t, h)
	// Log 60 distinct sources.
	for i := 0; i < 60; i++ {
		src := netip.AddrFrom4([4]byte{203, 0, byte(113 + i/250), byte(i % 250)})
		if _, err := auth.ServeDNS(context.Background(), src,
			dnswire.NewQuery(uint16(i+1), "x-1.sub.cache.example.", dnswire.TypeA)); err != nil {
			t.Fatal(err)
		}
	}

	udpSrv := NewServer(auth)
	udpAddr, err := udpSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	go func() { _ = udpSrv.Serve(context.Background()) }()
	defer udpSrv.Close()
	tcpSrv := NewTCPServer(auth)
	if _, err := tcpSrv.Listen(udpAddr.String()); err != nil {
		t.Skipf("cannot bind TCP on the UDP port: %v", err)
	}
	go func() { _ = tcpSrv.Serve(context.Background()) }()
	defer tcpSrv.Close()

	tr := &Transport{Port: udpAddr.Port(), Timeout: 2 * time.Second, FallbackTCP: true}
	resp, _, err := tr.Exchange(context.Background(),
		dnswire.NewQuery(99, "egress.sub.cache.example.ctl.cache.example.", dnswire.TypeTXT), udpAddr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answer) != 1 {
		t.Fatalf("resp = %s", resp.Summary())
	}
	txt := resp.Answer[0].Data.(dnswire.TXTRecord)
	if txt.Strings[0] != "60" || len(txt.Strings) != 61 {
		t.Errorf("egress readout = %d strings, first %q", len(txt.Strings), txt.Strings[0])
	}
}
