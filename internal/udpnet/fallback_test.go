package udpnet

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
)

var (
	fbClient = netip.MustParseAddr("192.0.2.77")
	fbServer = netip.MustParseAddr("198.51.100.99")
)

// answeringHandler returns an authoritative A answer for every query.
func answeringHandler(addr netip.Addr) netsim.HandlerFunc {
	return func(_ context.Context, _ netip.Addr, query *dnswire.Message) (*dnswire.Message, error) {
		resp := dnswire.NewResponse(query)
		resp.Header.Authoritative = true
		q, err := query.FirstQuestion()
		if err != nil {
			return nil, err
		}
		resp.Answer = append(resp.Answer, dnswire.RR{
			Name:  q.Name,
			Class: dnswire.ClassIN,
			TTL:   60,
			Data:  dnswire.ARecord{Addr: addr},
		})
		return resp, nil
	}
}

// TestTCPFallbackSimulatedTruncation is the end-to-end satellite test: a
// simulated link that truncates every UDP response must trigger the
// fallback wrapper's TCP retry and yield the full, untruncated answer —
// the same decision logic Transport runs over real sockets.
func TestTCPFallbackSimulatedTruncation(t *testing.T) {
	n := netsim.New(2017)
	answer := netip.MustParseAddr("203.0.113.55")
	n.Register(fbServer, netsim.LinkProfile{
		Faults: &netsim.FaultProfile{TruncateRate: 1},
	}, answeringHandler(answer))
	conn := n.Bind(fbClient)

	// Without the wrapper the client is stuck with the TC stub.
	query := dnswire.NewQuery(41, "stub.cde.example", dnswire.TypeA)
	stub, _, err := conn.Exchange(context.Background(), query, fbServer)
	if err != nil {
		t.Fatal(err)
	}
	if !stub.Header.Truncated || len(stub.Answer) != 0 {
		t.Fatalf("precondition: UDP leg should return an empty TC stub, got TC=%v answers=%d", stub.Header.Truncated, len(stub.Answer))
	}

	f := &TCPFallback{UDP: conn, TCP: conn.TCP()}
	query = dnswire.NewQuery(42, "full.cde.example", dnswire.TypeA)
	full, rtt, err := f.Exchange(context.Background(), query, fbServer)
	if err != nil {
		t.Fatal(err)
	}
	if full.Header.Truncated {
		t.Error("fallback answer still has TC set")
	}
	if len(full.Answer) != 1 {
		t.Fatalf("fallback answer has %d records, want 1", len(full.Answer))
	}
	if a, ok := full.Answer[0].Data.(dnswire.ARecord); !ok || a.Addr != answer {
		t.Errorf("fallback answer = %+v, want A %v", full.Answer[0].Data, answer)
	}
	if rtt < 0 {
		t.Errorf("combined rtt = %v, want >= 0 (both legs accounted)", rtt)
	}
	if got := n.SnapshotStats().Faults.Truncated; got < 2 {
		t.Errorf("truncation fault count = %d, want >= 2 (stub probe + fallback's UDP leg)", got)
	}
}

// TestTCPFallbackPassThrough: a clean (untruncated) response must come
// back from the UDP leg untouched, with no TCP exchange at all.
func TestTCPFallbackPassThrough(t *testing.T) {
	n := netsim.New(7)
	n.Register(fbServer, netsim.LinkProfile{}, answeringHandler(netip.MustParseAddr("203.0.113.56")))
	conn := n.Bind(fbClient)

	tcpCalls := 0
	f := &TCPFallback{
		UDP: conn,
		TCP: ExchangerFunc(func(context.Context, *dnswire.Message, netip.Addr) (*dnswire.Message, time.Duration, error) {
			tcpCalls++
			return nil, 0, errors.New("tcp leg must not run for clean responses")
		}),
	}
	resp, _, err := f.Exchange(context.Background(), dnswire.NewQuery(1, "clean.cde.example", dnswire.TypeA), fbServer)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answer) != 1 || resp.Header.Truncated {
		t.Errorf("clean response mangled: TC=%v answers=%d", resp.Header.Truncated, len(resp.Answer))
	}
	if tcpCalls != 0 {
		t.Errorf("TCP leg ran %d times on a clean path, want 0", tcpCalls)
	}
}

// TestTCPFallbackNilTCPReturnsStub: with no TCP leg configured the
// truncated response is handed back as-is, matching Transport with
// FallbackTCP unset.
func TestTCPFallbackNilTCPReturnsStub(t *testing.T) {
	n := netsim.New(7)
	n.Register(fbServer, netsim.LinkProfile{
		Faults: &netsim.FaultProfile{TruncateRate: 1},
	}, answeringHandler(netip.MustParseAddr("203.0.113.57")))
	f := &TCPFallback{UDP: n.Bind(fbClient)}
	resp, _, err := f.Exchange(context.Background(), dnswire.NewQuery(9, "stub2.cde.example", dnswire.TypeA), fbServer)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Truncated {
		t.Error("nil TCP leg should surface the TC stub unchanged")
	}
}

// TestTCPFallbackUDPErrorPropagates: a lost UDP leg surfaces its error
// without attempting TCP (the TC bit was never observed).
func TestTCPFallbackUDPErrorPropagates(t *testing.T) {
	n := netsim.New(7)
	n.Register(fbServer, netsim.LinkProfile{Loss: 1}, answeringHandler(netip.MustParseAddr("203.0.113.58")))
	conn := n.Bind(fbClient)
	f := &TCPFallback{UDP: conn, TCP: conn.TCP()}
	_, _, err := f.Exchange(context.Background(), dnswire.NewQuery(3, "lost.cde.example", dnswire.TypeA), fbServer)
	if !errors.Is(err, netsim.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout from the UDP leg", err)
	}
}
