package udpnet

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/netsim/des"
)

var (
	fbClient = netip.MustParseAddr("192.0.2.77")
	fbServer = netip.MustParseAddr("198.51.100.99")
)

// answeringHandler returns an authoritative A answer for every query.
func answeringHandler(addr netip.Addr) netsim.HandlerFunc {
	return func(_ context.Context, _ netip.Addr, query *dnswire.Message) (*dnswire.Message, error) {
		resp := dnswire.NewResponse(query)
		resp.Header.Authoritative = true
		q, err := query.FirstQuestion()
		if err != nil {
			return nil, err
		}
		resp.Answer = append(resp.Answer, dnswire.RR{
			Name:  q.Name,
			Class: dnswire.ClassIN,
			TTL:   60,
			Data:  dnswire.ARecord{Addr: addr},
		})
		return resp, nil
	}
}

// TestTCPFallbackSimulatedTruncation is the end-to-end satellite test: a
// simulated link that truncates every UDP response must trigger the
// fallback wrapper's TCP retry and yield the full, untruncated answer —
// the same decision logic Transport runs over real sockets.
func TestTCPFallbackSimulatedTruncation(t *testing.T) {
	n := netsim.New(2017)
	answer := netip.MustParseAddr("203.0.113.55")
	n.Register(fbServer, netsim.LinkProfile{
		Faults: &netsim.FaultProfile{TruncateRate: 1},
	}, answeringHandler(answer))
	conn := n.Bind(fbClient)

	// Without the wrapper the client is stuck with the TC stub.
	query := dnswire.NewQuery(41, "stub.cde.example", dnswire.TypeA)
	stub, _, err := conn.Exchange(context.Background(), query, fbServer)
	if err != nil {
		t.Fatal(err)
	}
	if !stub.Header.Truncated || len(stub.Answer) != 0 {
		t.Fatalf("precondition: UDP leg should return an empty TC stub, got TC=%v answers=%d", stub.Header.Truncated, len(stub.Answer))
	}

	f := &TCPFallback{UDP: conn, TCP: conn.TCP()}
	query = dnswire.NewQuery(42, "full.cde.example", dnswire.TypeA)
	full, rtt, err := f.Exchange(context.Background(), query, fbServer)
	if err != nil {
		t.Fatal(err)
	}
	if full.Header.Truncated {
		t.Error("fallback answer still has TC set")
	}
	if len(full.Answer) != 1 {
		t.Fatalf("fallback answer has %d records, want 1", len(full.Answer))
	}
	if a, ok := full.Answer[0].Data.(dnswire.ARecord); !ok || a.Addr != answer {
		t.Errorf("fallback answer = %+v, want A %v", full.Answer[0].Data, answer)
	}
	if rtt < 0 {
		t.Errorf("combined rtt = %v, want >= 0 (both legs accounted)", rtt)
	}
	if got := n.SnapshotStats().Faults.Truncated; got < 2 {
		t.Errorf("truncation fault count = %d, want >= 2 (stub probe + fallback's UDP leg)", got)
	}
}

// TestTCPFallbackPassThrough: a clean (untruncated) response must come
// back from the UDP leg untouched, with no TCP exchange at all.
func TestTCPFallbackPassThrough(t *testing.T) {
	n := netsim.New(7)
	n.Register(fbServer, netsim.LinkProfile{}, answeringHandler(netip.MustParseAddr("203.0.113.56")))
	conn := n.Bind(fbClient)

	tcpCalls := 0
	f := &TCPFallback{
		UDP: conn,
		TCP: ExchangerFunc(func(context.Context, *dnswire.Message, netip.Addr) (*dnswire.Message, time.Duration, error) {
			tcpCalls++
			return nil, 0, errors.New("tcp leg must not run for clean responses")
		}),
	}
	resp, _, err := f.Exchange(context.Background(), dnswire.NewQuery(1, "clean.cde.example", dnswire.TypeA), fbServer)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answer) != 1 || resp.Header.Truncated {
		t.Errorf("clean response mangled: TC=%v answers=%d", resp.Header.Truncated, len(resp.Answer))
	}
	if tcpCalls != 0 {
		t.Errorf("TCP leg ran %d times on a clean path, want 0", tcpCalls)
	}
}

// TestTCPFallbackNilTCPReturnsStub: with no TCP leg configured the
// truncated response is handed back as-is, matching Transport with
// FallbackTCP unset.
func TestTCPFallbackNilTCPReturnsStub(t *testing.T) {
	n := netsim.New(7)
	n.Register(fbServer, netsim.LinkProfile{
		Faults: &netsim.FaultProfile{TruncateRate: 1},
	}, answeringHandler(netip.MustParseAddr("203.0.113.57")))
	f := &TCPFallback{UDP: n.Bind(fbClient)}
	resp, _, err := f.Exchange(context.Background(), dnswire.NewQuery(9, "stub2.cde.example", dnswire.TypeA), fbServer)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Truncated {
		t.Error("nil TCP leg should surface the TC stub unchanged")
	}
}

// TestTCPFallbackUDPErrorPropagates: a lost UDP leg surfaces its error
// without attempting TCP (the TC bit was never observed).
func TestTCPFallbackUDPErrorPropagates(t *testing.T) {
	n := netsim.New(7)
	n.Register(fbServer, netsim.LinkProfile{Loss: 1}, answeringHandler(netip.MustParseAddr("203.0.113.58")))
	conn := n.Bind(fbClient)
	f := &TCPFallback{UDP: conn, TCP: conn.TCP()}
	_, _, err := f.Exchange(context.Background(), dnswire.NewQuery(3, "lost.cde.example", dnswire.TypeA), fbServer)
	if !errors.Is(err, netsim.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout from the UDP leg", err)
	}
}

// TestTCPFallbackExchangeEvent runs the same truncation fallback as an
// event chain on a caller-owned scheduler and expects a result identical
// to the blocking wrapper: the TC stub triggers the TCP leg, the combined
// duration spans both legs, and the callback fires during the caller's
// scheduler drain.
func TestTCPFallbackExchangeEvent(t *testing.T) {
	answer := netip.MustParseAddr("203.0.113.58")
	build := func() (*netsim.Network, *TCPFallback) {
		n := netsim.New(2017)
		n.Register(fbServer, netsim.LinkProfile{
			OneWay: 3 * time.Millisecond,
			Faults: &netsim.FaultProfile{TruncateRate: 1},
		}, answeringHandler(answer))
		conn := n.Bind(fbClient)
		return n, &TCPFallback{UDP: conn, TCP: conn.TCP()}
	}

	_, fBlocking := build()
	query := dnswire.NewQuery(43, "event.cde.example", dnswire.TypeA)
	wantResp, wantRTT, wantErr := fBlocking.Exchange(context.Background(), query, fbServer)
	if wantErr != nil {
		t.Fatal(wantErr)
	}

	_, fEvent := build()
	sched := des.NewScheduler()
	var gotResp *dnswire.Message
	var gotRTT time.Duration
	var gotErr error
	fired := false
	fEvent.ExchangeEvent(context.Background(), sched, dnswire.NewQuery(43, "event.cde.example", dnswire.TypeA), fbServer,
		func(resp *dnswire.Message, rtt time.Duration, err error) {
			gotResp, gotRTT, gotErr = resp, rtt, err
			fired = true
		})
	if fired {
		t.Fatal("done fired before the scheduler ran")
	}
	sched.Run()
	if !fired {
		t.Fatal("done never fired")
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if gotRTT != wantRTT {
		t.Errorf("event rtt = %v, blocking rtt = %v; want identical", gotRTT, wantRTT)
	}
	if len(gotResp.Answer) != len(wantResp.Answer) || gotResp.Header.Truncated {
		t.Errorf("event response differs: TC=%v answers=%d, want answers=%d",
			gotResp.Header.Truncated, len(gotResp.Answer), len(wantResp.Answer))
	}
	if a, ok := gotResp.Answer[0].Data.(dnswire.ARecord); !ok || a.Addr != answer {
		t.Errorf("event answer = %+v, want A %v", gotResp.Answer[0].Data, answer)
	}
}
