package udpnet

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/netsim/des"
)

// TCPFallback composes two Exchangers into RFC 1035 §4.2 client
// behaviour: queries go out over the UDP exchanger, and a response with
// the TC bit set is re-asked over the TCP exchanger. Both legs are plain
// netsim.Exchangers, so the same wrapper drives real sockets
// (Transport + TCP dialing) and the simulator (Conn + Conn.TCP) — which
// is what lets the truncation fault profile exercise the genuine fallback
// decision logic end-to-end without a socket in sight.
type TCPFallback struct {
	// UDP carries the initial query.
	UDP netsim.Exchanger
	// TCP carries the retry after a truncated response; nil disables the
	// fallback (truncated responses are returned as-is).
	TCP netsim.Exchanger
}

var (
	_ netsim.Exchanger      = (*TCPFallback)(nil)
	_ netsim.EventExchanger = (*TCPFallback)(nil)
)

// ExchangerFunc adapts a bare function to netsim.Exchanger, so transport
// legs that are naturally methods (Transport.exchangeUDP) or closures can
// slot into a TCPFallback.
type ExchangerFunc func(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error)

// Exchange implements netsim.Exchanger.
func (f ExchangerFunc) Exchange(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error) {
	return f(ctx, query, dst)
}

// Exchange implements netsim.Exchanger. The returned duration is the
// total across both legs: a truncated UDP round trip is real time a
// measurement spent before the TCP retry.
func (f *TCPFallback) Exchange(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error) {
	resp, rtt, err := f.UDP.Exchange(ctx, query, dst)
	if err != nil {
		return nil, rtt, err
	}
	if !resp.Header.Truncated || f.TCP == nil {
		return resp, rtt, nil
	}
	full, tcpRTT, err := f.TCP.Exchange(ctx, query, dst)
	total := rtt + tcpRTT
	if err != nil {
		return nil, total, fmt.Errorf("udpnet: tcp fallback: %w", err)
	}
	return full, total, nil
}

// ExchangeEvent implements netsim.EventExchanger: the UDP leg runs as an
// event chain on the caller's scheduler, and a truncated response chains
// straight into the TCP leg at its simulated arrival time — so the
// fallback decision costs no blocking and composes with millions of
// concurrent clients on one event loop. A leg that is not event-capable
// (a real socket transport) is driven synchronously at its firing instant,
// preserving the blocking semantics it was written for.
func (f *TCPFallback) ExchangeEvent(ctx context.Context, sched *des.Scheduler, query *dnswire.Message, dst netip.Addr, done func(*dnswire.Message, time.Duration, error)) {
	exchangeLegEvent(ctx, sched, f.UDP, query, dst, func(resp *dnswire.Message, rtt time.Duration, err error) {
		if err != nil {
			done(nil, rtt, err)
			return
		}
		if !resp.Header.Truncated || f.TCP == nil {
			done(resp, rtt, nil)
			return
		}
		exchangeLegEvent(ctx, sched, f.TCP, query, dst, func(full *dnswire.Message, tcpRTT time.Duration, err error) {
			total := rtt + tcpRTT
			if err != nil {
				done(nil, total, fmt.Errorf("udpnet: tcp fallback: %w", err))
				return
			}
			done(full, total, nil)
		})
	})
}

// exchangeLegEvent runs one leg on the scheduler: natively when the leg
// implements netsim.EventExchanger, otherwise by blocking inside the
// current event dispatch.
func exchangeLegEvent(ctx context.Context, sched *des.Scheduler, leg netsim.Exchanger, query *dnswire.Message, dst netip.Addr, done func(*dnswire.Message, time.Duration, error)) {
	if ev, ok := leg.(netsim.EventExchanger); ok {
		ev.ExchangeEvent(ctx, sched, query, dst, done)
		return
	}
	done(leg.Exchange(ctx, query, dst))
}
