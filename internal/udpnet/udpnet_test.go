package udpnet

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnscde/internal/authns"
	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/zone"
)

// startServer runs an authns server over loopback UDP and returns its
// address and a stop function.
func startServer(t *testing.T, h netsim.Handler) (netip.AddrPort, func()) {
	t.Helper()
	srv := NewServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ctx)
	}()
	return addr, func() {
		cancel()
		srv.Close()
		wg.Wait()
	}
}

func authServer(t *testing.T) *authns.Server {
	t.Helper()
	z, err := zone.BuildFlat("cache.example", "name",
		netip.MustParseAddr("192.0.2.80"), netip.MustParseAddr("198.51.100.1"), 300)
	if err != nil {
		t.Fatal(err)
	}
	return authns.NewServer([]*zone.Zone{z})
}

func TestUDPRoundTrip(t *testing.T) {
	auth := authServer(t)
	addr, stop := startServer(t, auth)
	defer stop()

	tr := &Transport{Port: addr.Port(), Timeout: 2 * time.Second}
	resp, rtt, err := tr.Exchange(context.Background(),
		dnswire.NewQuery(42, "name.cache.example.", dnswire.TypeA), addr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 42 || len(resp.Answer) != 1 {
		t.Fatalf("resp = %s", resp.Summary())
	}
	if rtt <= 0 {
		t.Error("no RTT measured")
	}
	// The server saw the query in its log with our loopback source.
	if auth.Log().Len() != 1 {
		t.Errorf("log length = %d", auth.Log().Len())
	}
	if src := auth.Log().Entries()[0].Src; !src.IsLoopback() {
		t.Errorf("logged source = %v", src)
	}
}

func TestUDPTimeout(t *testing.T) {
	// Nothing is listening on this port (we bind and immediately close).
	srv := NewServer(authServer(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	srv.Close()

	tr := &Transport{Port: addr.Port(), Timeout: 200 * time.Millisecond}
	_, _, err = tr.Exchange(context.Background(),
		dnswire.NewQuery(1, "name.cache.example.", dnswire.TypeA), addr.Addr())
	if err == nil {
		t.Fatal("want timeout error")
	}
	// Closed loopback ports may yield ICMP refusal rather than a timeout;
	// both surface as errors. A genuine timeout maps to netsim.ErrTimeout.
	if errors.Is(err, netsim.ErrTimeout) {
		t.Log("timed out as expected")
	}
}

func TestUDPContextCancel(t *testing.T) {
	auth := authServer(t)
	addr, stop := startServer(t, auth)
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	tr := &Transport{Port: addr.Port(), Timeout: 10 * time.Second}
	// The query is valid and will be answered quickly; this only checks
	// that a context deadline shorter than Timeout is respected when the
	// server is unresponsive. Use a sink socket that never answers.
	sink := NewServer(netsim.HandlerFunc(func(ctx context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		time.Sleep(time.Second)
		return dnswire.NewResponse(q), nil
	}))
	sinkAddr, err := sink.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	go func() { _ = sink.Serve(context.Background()) }()
	defer sink.Close()

	start := time.Now()
	_, _, err = (&Transport{Port: sinkAddr.Port(), Timeout: 10 * time.Second}).Exchange(ctx,
		dnswire.NewQuery(2, "a.example.", dnswire.TypeA), sinkAddr.Addr())
	if err == nil {
		t.Fatal("want error")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("context deadline not respected")
	}
	_ = tr
}

func TestUDPIgnoresMismatchedID(t *testing.T) {
	// A handler that answers with the wrong ID first, then never again —
	// the transport must keep waiting and time out.
	bad := NewServer(netsim.HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		resp := dnswire.NewResponse(q)
		resp.Header.ID = q.Header.ID + 1
		return resp, nil
	}))
	addr, err := bad.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	go func() { _ = bad.Serve(context.Background()) }()
	defer bad.Close()

	tr := &Transport{Port: addr.Port(), Timeout: 300 * time.Millisecond}
	_, _, err = tr.Exchange(context.Background(),
		dnswire.NewQuery(7, "a.example.", dnswire.TypeA), addr.Addr())
	if !errors.Is(err, netsim.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout after ignoring mismatched ID", err)
	}
}

func TestServeBeforeListen(t *testing.T) {
	srv := NewServer(authServer(t))
	if err := srv.Serve(context.Background()); err == nil {
		t.Error("Serve before Listen succeeded")
	}
}

func TestUDPConcurrentQueries(t *testing.T) {
	auth := authServer(t)
	addr, stop := startServer(t, auth)
	defer stop()
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(id uint16) {
			defer wg.Done()
			tr := &Transport{Port: addr.Port(), Timeout: 2 * time.Second}
			_, _, err := tr.Exchange(context.Background(),
				dnswire.NewQuery(id, "name.cache.example.", dnswire.TypeA), addr.Addr())
			if err != nil {
				errCh <- err
			}
		}(uint16(i + 1))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if auth.Log().Len() != 32 {
		t.Errorf("log length = %d, want 32", auth.Log().Len())
	}
}
