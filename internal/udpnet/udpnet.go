// Package udpnet carries the same Handler/Exchanger abstractions as the
// simulated network over real UDP sockets, which is what makes this
// repository a usable measurement tool and not only a reproduction: the
// CDE authoritative servers (cmd/cdeserver) and the prober (cmd/cdescan)
// run unchanged over the Internet.
package udpnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
)

// MaxPacket is the receive buffer size (EDNS0-sized).
const MaxPacket = dnswire.MaxEDNSSize

// Server serves a netsim.Handler over a UDP socket.
type Server struct {
	handler netsim.Handler

	mu     sync.Mutex
	conn   *net.UDPConn
	closed atomic.Bool
}

// NewServer wraps handler.
func NewServer(handler netsim.Handler) *Server {
	return &Server{handler: handler}
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and returns the
// bound address.
func (s *Server) Listen(addr string) (netip.AddrPort, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("udpnet: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("udpnet: listening on %q: %w", addr, err)
	}
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
	return conn.LocalAddr().(*net.UDPAddr).AddrPort(), nil
}

// Serve reads queries until the context is cancelled or Close is called.
// Each datagram is decoded, handled and answered; malformed datagrams are
// answered with FORMERR when a message ID can be salvaged.
func (s *Server) Serve(ctx context.Context) error {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn == nil {
		return errors.New("udpnet: Serve before Listen")
	}
	go func() {
		<-ctx.Done()
		s.Close()
	}()
	buf := make([]byte, MaxPacket)
	for {
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			if s.closed.Load() || ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("udpnet: read: %w", err)
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		go s.handlePacket(ctx, conn, raddr, pkt)
	}
}

func (s *Server) handlePacket(ctx context.Context, conn *net.UDPConn, raddr *net.UDPAddr, pkt []byte) {
	query, err := dnswire.Unpack(pkt)
	if err != nil {
		return // not salvageable
	}
	src := raddr.AddrPort().Addr()
	resp, err := s.handler.ServeDNS(ctx, src, query)
	if err != nil {
		resp = dnswire.NewResponse(query)
		resp.Header.RCode = dnswire.RCodeServFail
	}
	wire, err := resp.Pack()
	if err != nil {
		return
	}
	if len(wire) > dnswire.MaxUDPSize {
		// Truncate oversize responses per RFC 1035 §4.2.1 (no EDNS
		// negotiation implemented on the server side).
		trunc := dnswire.NewResponse(query)
		trunc.Header.Truncated = true
		if wire, err = trunc.Pack(); err != nil {
			return
		}
	}
	//cdelint:allow errflow datagram replies are best-effort; the client retries on loss
	_, _ = conn.WriteToUDP(wire, raddr)
}

// Close stops the server.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		_ = s.conn.Close()
	}
}

// Transport is a netsim.Exchanger over real UDP. The destination port is
// fixed per transport (53 for real resolvers; tests use ephemeral ports).
type Transport struct {
	// Port is the destination UDP port; zero defaults to 53.
	Port uint16
	// Timeout bounds each exchange; zero defaults to 2s.
	Timeout time.Duration
	// FallbackTCP retries over TCP (same port) when a response arrives
	// with the TC bit set — required for oversize answers such as
	// control-zone egress listings.
	FallbackTCP bool
}

var _ netsim.Exchanger = (*Transport)(nil)

// params resolves the configured port and timeout to their defaults.
func (t *Transport) params() (uint16, time.Duration) {
	port := t.Port
	if port == 0 {
		port = 53
	}
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	return port, timeout
}

// Exchange implements netsim.Exchanger: send the query to dst:Port and
// wait for the matching response. With FallbackTCP set the exchange is
// routed through the same TCPFallback wrapper the simulator exercises,
// so a TC-bit answer is transparently re-asked over TCP.
func (t *Transport) Exchange(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error) {
	if !t.FallbackTCP {
		return t.exchangeUDP(ctx, query, dst)
	}
	f := TCPFallback{UDP: ExchangerFunc(t.exchangeUDP), TCP: ExchangerFunc(t.exchangeTCP)}
	return f.Exchange(ctx, query, dst)
}

// exchangeTCP is the fallback leg: one framed exchange to dst:Port.
func (t *Transport) exchangeTCP(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error) {
	port, timeout := t.params()
	return ExchangeTCP(ctx, query, netip.AddrPortFrom(dst, port), timeout)
}

// exchangeUDP is the UDP leg: send, then wait for the matching response.
// Truncated responses are returned as-is for the caller (TCPFallback) to
// act on.
func (t *Transport) exchangeUDP(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error) {
	port, timeout := t.params()

	wire, err := query.Pack()
	if err != nil {
		return nil, 0, fmt.Errorf("udpnet: packing query: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, net.UDPAddrFromAddrPort(netip.AddrPortFrom(dst, port)))
	if err != nil {
		return nil, 0, fmt.Errorf("udpnet: dialing %v: %w", dst, err)
	}
	defer func() { _ = conn.Close() }()

	//cdelint:allow walltime socket deadlines are wall-clock by definition
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, 0, fmt.Errorf("udpnet: deadline: %w", err)
	}

	//cdelint:allow walltime RTT of a real UDP exchange is measured on the wall clock
	start := time.Now()
	if _, err := conn.Write(wire); err != nil {
		return nil, 0, fmt.Errorf("udpnet: send: %w", err)
	}
	buf := make([]byte, MaxPacket)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return nil, time.Since(start), netsim.ErrTimeout
			}
			return nil, time.Since(start), fmt.Errorf("udpnet: receive: %w", err)
		}
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue // garbage datagram; keep waiting
		}
		if resp.Header.ID != query.Header.ID {
			continue // late or spoofed response
		}
		return resp, time.Since(start), nil
	}
}
