package netsim

import (
	"context"
	"net/netip"
	"sync"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/netsim/des"
)

// Responder is the completion callback of an event-native handler: the
// handler (or an event it scheduled) calls Respond exactly once, on the
// scheduler lane the query was delivered on, at the simulated instant
// the response leaves the server. The elapsed simulated time between
// delivery and Respond is the exchange's handler time — the event-world
// equivalent of the latency meter the synchronous path uses.
type Responder interface {
	Respond(now des.Time, resp *dnswire.Message, err error)
}

// EventHandler is implemented by handlers that can serve a query as a
// native event chain instead of blocking inside the delivery event: the
// handler schedules its stages (cache lookup, upstream recursion,
// processing delay) on the delivering lane's scheduler and calls
// r.Respond when the response is ready. On a sharded scheduler the
// exchange layer prefers this interface, so a deep forwarding chain or
// resolution recursion interleaves with other traffic on the event loops
// rather than nesting pooled schedulers; on standalone schedulers the
// synchronous ServeDNS path is used unchanged.
type EventHandler interface {
	ServeDNSEvent(ctx context.Context, sched *des.Scheduler, src netip.Addr, query *dnswire.Message, r Responder)
}

// discardResponder swallows a response — the sink for event-mode
// duplicate deliveries, whose response is dropped while the handler's
// side effects (cache fills) persist.
type discardResponder struct{}

func (discardResponder) Respond(des.Time, *dnswire.Message, error) {}

// respondEvent is a pooled actor that delivers a Responder callback at a
// later simulated instant — the building block event-native handlers use
// to model fixed processing delay (see RespondAfter).
type respondEvent struct {
	r    Responder
	resp *dnswire.Message
	err  error
}

var _ des.Actor = (*respondEvent)(nil)

var respondEventPool = sync.Pool{New: func() any { return new(respondEvent) }}

// Fire delivers the callback and recycles the record.
//
//cdelint:hotpath
func (e *respondEvent) Fire(now des.Time, op uint8) {
	r, resp, err := e.r, e.resp, e.err
	*e = respondEvent{}
	respondEventPool.Put(e)
	r.Respond(now, resp, err)
}

// RespondAfter schedules r.Respond(resp, err) on sched after delay of
// simulated processing time. Handlers whose work is a fixed delay (the
// authoritative server's per-query processing cost) implement
// EventHandler with one RespondAfter call.
//
//cdelint:hotpath
func RespondAfter(sched *des.Scheduler, delay time.Duration, r Responder, resp *dnswire.Message, err error) {
	e := respondEventPool.Get().(*respondEvent)
	e.r, e.resp, e.err = r, resp, err
	sched.Schedule(delay, e, 0)
}
