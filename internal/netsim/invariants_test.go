package netsim

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
)

// TestStatsMetricsInvariants drives N clean or single-fault exchanges per
// FaultKind and asserts that the Stats fold, the metrics counters and the
// per-kind fault counts are mutually consistent — at workers 1 and 8
// (each worker owns its own source address, preserving the per-source
// determinism contract).
func TestStatsMetricsInvariants(t *testing.T) {
	const perWorker = 8

	type expect struct {
		// per exchange: whether it succeeds, and which counters move.
		wantErr   error // nil, or ErrTimeout
		lost      int64 // Lost increments per exchange
		recvd     int64 // packets.recvd increments per exchange
		faultKind FaultKind
		rttIs     func(timeout time.Duration, rtt time.Duration) bool
	}
	cases := []struct {
		name    string
		profile LinkProfile
		exp     expect
	}{
		{
			name:    "clean",
			profile: LinkProfile{},
			exp:     expect{recvd: 1},
		},
		{
			name:    "servfail",
			profile: LinkProfile{Faults: &FaultProfile{ServFailRate: 1}},
			exp:     expect{recvd: 1, faultKind: FaultServFail},
		},
		{
			name:    "refused",
			profile: LinkProfile{Faults: &FaultProfile{RefusedRate: 1}},
			exp:     expect{recvd: 1, faultKind: FaultRefused},
		},
		{
			name:    "truncate",
			profile: LinkProfile{Faults: &FaultProfile{TruncateRate: 1}},
			exp:     expect{recvd: 1, faultKind: FaultTruncate},
		},
		{
			name:    "duplicate",
			profile: LinkProfile{Faults: &FaultProfile{DuplicateRate: 1}},
			exp:     expect{recvd: 1, faultKind: FaultDuplicate},
		},
		{
			name:    "late",
			profile: LinkProfile{Faults: &FaultProfile{LateRate: 1}},
			exp: expect{
				wantErr: ErrTimeout, recvd: 1, faultKind: FaultLate,
				// The late response is charged the bare timeout: the
				// retransmission timer ran concurrently with the server.
				rttIs: func(timeout, rtt time.Duration) bool { return rtt == timeout },
			},
		},
		{
			name:    "outage",
			profile: LinkProfile{Faults: &FaultProfile{Outages: []OutageWindow{{Start: 0, End: 1 << 30}}}},
			exp: expect{
				wantErr: ErrTimeout, lost: 1, faultKind: FaultOutage,
				rttIs: func(timeout, rtt time.Duration) bool { return rtt == timeout },
			},
		},
		{
			name:    "loss",
			profile: LinkProfile{Loss: 1},
			exp: expect{
				wantErr: ErrTimeout, lost: 1,
				rttIs: func(timeout, rtt time.Duration) bool { return rtt == timeout },
			},
		},
	}

	for _, tc := range cases {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				n := New(42)
				reg := metrics.New()
				n.SetMetrics(reg)
				const timeout = 750 * time.Millisecond
				n.SetTimeout(timeout)
				n.Register(testServer, tc.profile, echoHandler())

				var wg sync.WaitGroup
				errs := make([]error, workers*perWorker)
				rtts := make([]time.Duration, workers*perWorker)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						src := netip.AddrFrom4([4]byte{192, 0, 2, byte(100 + w)})
						conn := n.Bind(src)
						for i := 0; i < perWorker; i++ {
							q := dnswire.NewQuery(uint16(w*perWorker+i+1), "a.example", dnswire.TypeA)
							_, rtt, err := conn.Exchange(context.Background(), q, testServer)
							errs[w*perWorker+i] = err
							rtts[w*perWorker+i] = rtt
						}
					}(w)
				}
				wg.Wait()

				total := int64(workers * perWorker)
				for i, err := range errs {
					if tc.exp.wantErr == nil && err != nil {
						t.Fatalf("exchange %d: unexpected error %v", i, err)
					}
					if tc.exp.wantErr != nil && !errors.Is(err, tc.exp.wantErr) {
						t.Fatalf("exchange %d: err = %v, want %v", i, err, tc.exp.wantErr)
					}
					if tc.exp.rttIs != nil && !tc.exp.rttIs(timeout, rtts[i]) {
						t.Fatalf("exchange %d: rtt = %v violates the charge contract (timeout %v)", i, rtts[i], timeout)
					}
				}

				stats := n.SnapshotStats()
				snap := reg.Snapshot()

				if stats.Exchanges != total {
					t.Errorf("Exchanges = %d, want %d", stats.Exchanges, total)
				}
				if want := tc.exp.lost * total; stats.Lost != want {
					t.Errorf("Lost = %d, want %d", stats.Lost, want)
				}
				if got := snap.Counter("netsim.packets.lost"); got != stats.Lost {
					t.Errorf("packets.lost = %d, disagrees with Stats.Lost = %d", got, stats.Lost)
				}
				// Every exchange sends exactly one query packet...
				if got := snap.Counter("netsim.packets.sent"); got != total {
					t.Errorf("packets.sent = %d, want %d (one per exchange)", got, total)
				}
				// ...and receives exactly as many responses as reached the
				// packing stage (even late ones were served and packed).
				if want := tc.exp.recvd * total; snap.Counter("netsim.packets.recvd") != want {
					t.Errorf("packets.recvd = %d, want %d", snap.Counter("netsim.packets.recvd"), want)
				}
				if stats.BytesSent <= 0 {
					t.Error("BytesSent not accounted")
				}
				if tc.exp.recvd > 0 && stats.BytesRecvd <= 0 {
					t.Error("BytesRecvd not accounted despite delivered responses")
				}
				if tc.exp.recvd == 0 && stats.BytesRecvd != 0 {
					t.Errorf("BytesRecvd = %d, want 0 when no response is packed", stats.BytesRecvd)
				}

				// The per-kind fault counters agree between Stats and the
				// registry for every FaultKind, fired or not.
				faultPairs := []struct {
					kind   FaultKind
					stat   int64
					metric int64
				}{
					{FaultServFail, stats.Faults.ServFail, snap.Counter("netsim.faults.servfail")},
					{FaultRefused, stats.Faults.Refused, snap.Counter("netsim.faults.refused")},
					{FaultTruncate, stats.Faults.Truncated, snap.Counter("netsim.faults.truncated")},
					{FaultDuplicate, stats.Faults.Duplicated, snap.Counter("netsim.faults.duplicated")},
					{FaultLate, stats.Faults.Late, snap.Counter("netsim.faults.late")},
					{FaultOutage, stats.Faults.Outage, snap.Counter("netsim.faults.outage")},
				}
				for _, fp := range faultPairs {
					if fp.stat != fp.metric {
						t.Errorf("fault %s: Stats = %d, metrics = %d", fp.kind, fp.stat, fp.metric)
					}
					want := int64(0)
					if fp.kind == tc.exp.faultKind {
						want = total
					}
					if fp.stat != want {
						t.Errorf("fault %s: count = %d, want %d", fp.kind, fp.stat, want)
					}
				}
			})
		}
	}
}

// TestCleanExchangePacketAccounting is the regression test for the
// double-counted sent packet: one clean exchange is exactly one sent and
// one received packet.
func TestCleanExchangePacketAccounting(t *testing.T) {
	n := New(7)
	reg := metrics.New()
	n.SetMetrics(reg)
	n.Register(testServer, LinkProfile{}, echoHandler())
	if _, _, err := n.Bind(testClient).Exchange(context.Background(),
		dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("netsim.packets.sent"); got != 1 {
		t.Errorf("packets.sent = %d, want exactly 1 per clean exchange", got)
	}
	if got := snap.Counter("netsim.packets.recvd"); got != 1 {
		t.Errorf("packets.recvd = %d, want exactly 1 per clean exchange", got)
	}
	s := n.SnapshotStats()
	if s.BytesSent == 0 || s.BytesRecvd == 0 {
		t.Errorf("byte accounting missing: sent=%d recvd=%d", s.BytesSent, s.BytesRecvd)
	}
}
