package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// GilbertElliott is the classic two-state Markov burst-loss model: the
// channel alternates between a Good and a Bad state, each with its own
// per-packet loss probability. Real Internet loss is bursty — a congested
// queue drops trains of packets, not independent coins — which is exactly
// the regime where the paper's §V-B loss-boosted replication matters: K
// replicates sent back-to-back into a burst can all die together, so
// measured (not assumed-i.i.d.) loss rates drive the compensation.
//
// The stationary loss rate is
//
//	πB·LossBad + (1-πB)·LossGood, where πB = PGoodBad/(PGoodBad+PBadGood).
type GilbertElliott struct {
	// PGoodBad is the per-packet probability of transitioning Good→Bad.
	PGoodBad float64
	// PBadGood is the per-packet probability of transitioning Bad→Good;
	// its inverse is the mean burst length in packets.
	PBadGood float64
	// LossGood is the per-packet loss probability in the Good state.
	LossGood float64
	// LossBad is the per-packet loss probability in the Bad state.
	LossBad float64
}

// enabled reports whether the chain does anything at all.
func (ge GilbertElliott) enabled() bool {
	return ge != GilbertElliott{}
}

// MeanLoss returns the stationary packet-loss rate of the chain.
func (ge GilbertElliott) MeanLoss() float64 {
	if !ge.enabled() {
		return 0
	}
	denom := ge.PGoodBad + ge.PBadGood
	if denom == 0 {
		// No transitions: the chain stays in Good forever.
		return ge.LossGood
	}
	piBad := ge.PGoodBad / denom
	return piBad*ge.LossBad + (1-piBad)*ge.LossGood
}

// BurstLoss builds a Gilbert–Elliott chain with the given stationary loss
// rate and mean burst length (in packets). Losses only occur in the Bad
// state (LossBad=1, LossGood=0), the most common simplified
// parameterisation. rate must be in [0,1) and meanBurst >= 1.
func BurstLoss(rate float64, meanBurst float64) GilbertElliott {
	if rate <= 0 {
		return GilbertElliott{}
	}
	if meanBurst < 1 {
		meanBurst = 1
	}
	pBG := 1 / meanBurst
	// Stationary Bad-state occupancy must equal rate:
	//   PGB/(PGB+PBG) = rate  =>  PGB = rate·PBG/(1-rate).
	pGB := rate * pBG / (1 - rate)
	return GilbertElliott{PGoodBad: pGB, PBadGood: pBG, LossBad: 1}
}

// OutageWindow schedules a transient outage of a host, expressed in the
// per-flow exchange counter: the destination is unreachable for the
// half-open window [Start, End) of exchanges arriving on a given
// (source → destination) flow. Flow-relative indices keep the schedule
// deterministic under concurrency — a wall-clock or global-counter window
// would fire on a scheduling-dependent set of probes.
type OutageWindow struct {
	Start int
	End   int
}

func (w OutageWindow) contains(n int) bool { return n >= w.Start && n < w.End }

// FaultProfile describes the deterministic fault behaviour of one link
// beyond the base LinkProfile (Bernoulli loss + jitter). Attach one via
// LinkProfile.Faults. All randomness is drawn from the per-source splitmix64
// RNG streams, so fault sequences are a pure function of (network seed,
// source address, flow history) and TestWorkersInvariance-style
// byte-identical parallelism still holds.
//
// BurstLoss applies to whichever side of the exchange carries it (a client
// link or a server link); the remaining faults model server-side
// misbehaviour and are honoured from the destination's profile only.
type FaultProfile struct {
	// BurstLoss replaces the profile's Bernoulli Loss with a Gilbert–
	// Elliott chain (per flow, per side) when enabled.
	BurstLoss GilbertElliott

	// ServFailRate / RefusedRate are probabilities that the destination
	// short-circuits a query with an injected SERVFAIL / REFUSED response
	// instead of invoking its handler — the resolver-side failures the
	// paper's probes must classify as "probe failed", not "cache absent".
	ServFailRate float64
	RefusedRate  float64

	// TruncateRate is the probability that a UDP response is truncated in
	// flight: the answer sections are stripped and the TC bit set, forcing
	// clients that care to re-ask over TCP (udpnet's FallbackTCP path).
	// TCP exchanges (Conn.TCP) are immune.
	TruncateRate float64

	// DuplicateRate is the probability that the query packet is duplicated
	// in flight so the destination handler serves it twice. The duplicate's
	// response is discarded, but its side effects — cache fills, arrivals
	// at the authoritative NS — persist, inflating the paper's ω if the
	// enumeration does not deduplicate.
	DuplicateRate float64

	// LateRate is the probability that the response arrives after the
	// client's retransmission timer: the client observes a timeout (and is
	// charged the full timeout), yet the handler ran, so server-side
	// effects persist exactly as for a duplicate.
	LateRate float64

	// Outages lists scheduled transient outages in per-flow exchange
	// indices; during a window the destination behaves as if down
	// (queries vanish, the client times out).
	Outages []OutageWindow
}

// effectiveLoss returns the stationary packet-loss probability the profile
// imposes per packet (burst chain if enabled, Bernoulli otherwise).
func effectiveLoss(p LinkProfile) float64 {
	if p.Faults != nil && p.Faults.BurstLoss.enabled() {
		return p.Faults.BurstLoss.MeanLoss()
	}
	return p.Loss
}

// ParseFaultProfile parses a CLI fault specification of comma-separated
// key=value terms:
//
//	burst=RATE[:MEANBURST]  Gilbert–Elliott burst loss (default burst 4 pkts)
//	servfail=RATE           injected SERVFAIL responses
//	refused=RATE            injected REFUSED responses
//	truncate=RATE           truncated (TC-bit) UDP responses
//	duplicate=RATE          duplicated query delivery
//	late=RATE               responses arriving after the client timer
//	outage=START+LEN        host down for exchanges [START, START+LEN)
//
// e.g. "burst=0.11:4,servfail=0.02,outage=10+20". An empty spec returns
// (nil, nil).
func ParseFaultProfile(spec string) (*FaultProfile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	fp := &FaultProfile{}
	for _, term := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok {
			return nil, fmt.Errorf("netsim: fault term %q: want key=value", term)
		}
		switch key {
		case "burst":
			rateStr, burstStr, hasBurst := strings.Cut(val, ":")
			rate, err := parseRate(key, rateStr)
			if err != nil {
				return nil, err
			}
			mean := 4.0
			if hasBurst {
				mean, err = strconv.ParseFloat(burstStr, 64)
				if err != nil || mean < 1 {
					return nil, fmt.Errorf("netsim: fault term burst=%s: mean burst must be a number >= 1", val)
				}
			}
			fp.BurstLoss = BurstLoss(rate, mean)
		case "servfail":
			rate, err := parseRate(key, val)
			if err != nil {
				return nil, err
			}
			fp.ServFailRate = rate
		case "refused":
			rate, err := parseRate(key, val)
			if err != nil {
				return nil, err
			}
			fp.RefusedRate = rate
		case "truncate":
			rate, err := parseRate(key, val)
			if err != nil {
				return nil, err
			}
			fp.TruncateRate = rate
		case "duplicate":
			rate, err := parseRate(key, val)
			if err != nil {
				return nil, err
			}
			fp.DuplicateRate = rate
		case "late":
			rate, err := parseRate(key, val)
			if err != nil {
				return nil, err
			}
			fp.LateRate = rate
		case "outage":
			startStr, lenStr, ok := strings.Cut(val, "+")
			if !ok {
				return nil, fmt.Errorf("netsim: fault term outage=%s: want START+LEN", val)
			}
			start, err1 := strconv.Atoi(startStr)
			length, err2 := strconv.Atoi(lenStr)
			if err1 != nil || err2 != nil || start < 0 || length <= 0 {
				return nil, fmt.Errorf("netsim: fault term outage=%s: want non-negative START and positive LEN", val)
			}
			fp.Outages = append(fp.Outages, OutageWindow{Start: start, End: start + length})
		default:
			return nil, fmt.Errorf("netsim: unknown fault key %q", key)
		}
	}
	sort.Slice(fp.Outages, func(i, j int) bool { return fp.Outages[i].Start < fp.Outages[j].Start })
	return fp, nil
}

func parseRate(key, val string) (float64, error) {
	rate, err := strconv.ParseFloat(val, 64)
	if err != nil || rate < 0 || rate > 1 {
		return 0, fmt.Errorf("netsim: fault term %s=%s: want a rate in [0,1]", key, val)
	}
	return rate, nil
}

// String renders the profile in the ParseFaultProfile syntax.
func (fp *FaultProfile) String() string {
	if fp == nil {
		return ""
	}
	var terms []string
	if fp.BurstLoss.enabled() {
		mean := 1.0
		if fp.BurstLoss.PBadGood > 0 {
			mean = 1 / fp.BurstLoss.PBadGood
		}
		terms = append(terms, fmt.Sprintf("burst=%.4g:%.4g", fp.BurstLoss.MeanLoss(), mean))
	}
	if fp.ServFailRate > 0 {
		terms = append(terms, fmt.Sprintf("servfail=%.4g", fp.ServFailRate))
	}
	if fp.RefusedRate > 0 {
		terms = append(terms, fmt.Sprintf("refused=%.4g", fp.RefusedRate))
	}
	if fp.TruncateRate > 0 {
		terms = append(terms, fmt.Sprintf("truncate=%.4g", fp.TruncateRate))
	}
	if fp.DuplicateRate > 0 {
		terms = append(terms, fmt.Sprintf("duplicate=%.4g", fp.DuplicateRate))
	}
	if fp.LateRate > 0 {
		terms = append(terms, fmt.Sprintf("late=%.4g", fp.LateRate))
	}
	for _, w := range fp.Outages {
		terms = append(terms, fmt.Sprintf("outage=%d+%d", w.Start, w.End-w.Start))
	}
	return strings.Join(terms, ",")
}

// flowState is the per-(source → destination) fault state held inside the
// source's lockedRand: the flow's exchange counter (driving outage windows)
// and the Gilbert–Elliott chain states for each side of the path. Keeping
// it keyed by source preserves the per-source determinism contract.
type flowState struct {
	n      int  // exchanges attempted on this flow so far
	srcBad bool // GE chain state of the source-side link
	dstBad bool // GE chain state of the destination-side link
}

// flow returns (creating on first use) the fault state for dst. Caller
// must be the goroutine owning this source stream, same as for roll().
func (lr *lockedRand) flow(dst netip.Addr) *flowState {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if lr.flows == nil {
		//cdelint:allow hotalloc flow map created once per source stream
		lr.flows = make(map[netip.Addr]*flowState)
	}
	fs, ok := lr.flows[dst]
	if !ok {
		//cdelint:allow hotalloc per-flow fault state allocated once per (src,dst) pair, then cached
		fs = &flowState{}
		lr.flows[dst] = fs
	}
	return fs
}

// nextFlowIdx returns the flow's current exchange index and advances the
// counter; outage windows are expressed in these indices.
func (lr *lockedRand) nextFlowIdx(fs *flowState) int {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	idx := fs.n
	fs.n++
	return idx
}

// geStep advances a Gilbert–Elliott chain one packet and reports whether
// that packet is lost. Exactly two draws per step (transition, loss) keep
// the consumed stream length a pure function of the flow's packet count.
func (lr *lockedRand) geStep(state *bool, ge GilbertElliott) bool {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if *state {
		if lr.rng.Float64() < ge.PBadGood {
			*state = false
		}
	} else {
		if lr.rng.Float64() < ge.PGoodBad {
			*state = true
		}
	}
	p := ge.LossGood
	if *state {
		p = ge.LossBad
	}
	return lr.rng.Float64() < p
}

// lostPacket evaluates one side's per-packet loss for one direction:
// the link's burst chain when faulted, the Bernoulli profile loss
// otherwise. With no FaultProfile attached this consumes exactly one
// draw, matching the pre-fault-layer stream layout byte for byte.
func (lr *lockedRand) lostPacket(fs *flowState, p LinkProfile, srcSide bool) bool {
	if p.Faults != nil && p.Faults.BurstLoss.enabled() {
		state := &fs.dstBad
		if srcSide {
			state = &fs.srcBad
		}
		return lr.geStep(state, p.Faults.BurstLoss)
	}
	return lr.roll() < p.Loss
}

// inOutage reports whether exchange index n of a flow falls inside any
// scheduled outage window.
func inOutage(windows []OutageWindow, n int) bool {
	for _, w := range windows {
		if w.contains(n) {
			return true
		}
	}
	return false
}

// FaultKind names one injected-fault flavour. It is a closed enum: the
// exhaustive analyzer makes every switch over FaultKind account for all
// members, so adding a fault here surfaces every counter and dispatch
// site that must learn about it.
type FaultKind string

// Fault kinds, in the order FaultStats counts them.
const (
	FaultServFail  FaultKind = "servfail"
	FaultRefused   FaultKind = "refused"
	FaultTruncate  FaultKind = "truncate"
	FaultDuplicate FaultKind = "duplicate"
	FaultLate      FaultKind = "late"
	FaultOutage    FaultKind = "outage"
)

// FaultStats counts injected faults, mirrored into Stats for tests that
// run without a metrics registry.
type FaultStats struct {
	ServFail   int64
	Refused    int64
	Truncated  int64
	Duplicated int64
	Late       int64
	Outage     int64
}
