package netsim

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/dnswire"
)

// lossyExchanger models a transport that surfaces every failure as
// ErrTimeout without consulting ctx itself — exactly what
// udpnet.Transport does when the socket deadline (clamped to the ctx
// deadline) expires. The ctx check must therefore live in ExchangeRetry.
type lossyExchanger struct {
	calls int
}

func (l *lossyExchanger) Exchange(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error) {
	l.calls++
	return nil, 10 * time.Millisecond, ErrTimeout
}

// TestExchangeRetryStopsOnCancelledContext is the regression test for the
// retry loop ignoring ctx between attempts: a cancelled prober kept
// retransmitting until the attempt budget was exhausted whenever losses
// surfaced as ErrTimeout.
func TestExchangeRetryStopsOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first retry decision
	ex := &lossyExchanger{}
	query := dnswire.NewQuery(1, "h1.cache.example.", dnswire.TypeA)

	_, _, err := ExchangeRetry(ctx, ex, query, MustAddr("192.0.2.1"), 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (cancellation must be distinct from loss)", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, must not be reported as packet loss", err)
	}
	if ex.calls != 1 {
		t.Fatalf("exchanger called %d times, want 1 (no retransmission after cancel)", ex.calls)
	}
}

// TestExchangeRetryExhaustsAttemptsOnLoss pins the pre-existing contract:
// with a live context, retries continue through losses and the final
// error is ErrTimeout with the cumulative time of all attempts — per-try
// transport time plus the deterministic backoff waits between them.
func TestExchangeRetryExhaustsAttemptsOnLoss(t *testing.T) {
	ex := &lossyExchanger{}
	query := dnswire.NewQuery(2, "h2.cache.example.", dnswire.TypeA)
	dst := MustAddr("192.0.2.1")
	_, total, err := ExchangeRetry(context.Background(), ex, query, dst, 3)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if ex.calls != 3 {
		t.Fatalf("exchanger called %d times, want 3", ex.calls)
	}
	bo, seed := DefaultBackoff(), retrySeed(query, dst)
	want := 30*time.Millisecond + bo.Wait(seed, 1) + bo.Wait(seed, 2)
	if total != want {
		t.Fatalf("total = %v, want %v (3 tries + 2 backoff waits)", total, want)
	}
}

// TestExchangeRetryCumulativeTimeInvariant is the regression test for the
// instant-retransmit bug: k failed attempts must cost at least the sum of
// the per-try times plus (k-1) backoff waits, and each wait is bounded by
// the schedule's jittered envelope. A retry loop that retransmits the
// moment a timeout returns undercosts lossy probes versus the stub
// resolver behaviour it models.
func TestExchangeRetryCumulativeTimeInvariant(t *testing.T) {
	const attempts = 5
	ex := &lossyExchanger{}
	query := dnswire.NewQuery(3, "h3.cache.example.", dnswire.TypeA)
	dst := MustAddr("192.0.2.1")
	_, total, err := ExchangeRetry(context.Background(), ex, query, dst, attempts)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}

	bo := DefaultBackoff()
	transport := time.Duration(attempts) * 10 * time.Millisecond
	var minWait, maxWait time.Duration
	for i := 1; i < attempts; i++ {
		nominal := bo.Base << (i - 1) // Factor 2 doubling
		if nominal > bo.Max {
			nominal = bo.Max
		}
		minWait += time.Duration(float64(nominal) * (1 - bo.Jitter))
		maxWait += time.Duration(float64(nominal) * (1 + bo.Jitter))
	}
	if total < transport+minWait || total > transport+maxWait {
		t.Fatalf("total = %v, want within [%v, %v] (transport %v + jittered backoff)",
			total, transport+minWait, transport+maxWait, transport)
	}

	// Determinism: the same probe retried again consumes the same waits.
	ex2 := &lossyExchanger{}
	_, total2, _ := ExchangeRetry(context.Background(), ex2, query, dst, attempts)
	if total2 != total {
		t.Fatalf("cumulative time not deterministic: %v vs %v", total, total2)
	}
}

// TestBackoffWaitSchedule pins the schedule shape: monotone growth to the
// cap, jitter within its envelope, zero schedule waits not at all.
func TestBackoffWaitSchedule(t *testing.T) {
	bo := DefaultBackoff()
	for retry := 1; retry <= 8; retry++ {
		nominal := bo.Base << (retry - 1)
		if nominal > bo.Max {
			nominal = bo.Max
		}
		lo := time.Duration(float64(nominal) * (1 - bo.Jitter))
		hi := time.Duration(float64(nominal) * (1 + bo.Jitter))
		w := bo.Wait(42, retry)
		if w < lo || w > hi {
			t.Errorf("Wait(42, %d) = %v, want within [%v, %v]", retry, w, lo, hi)
		}
		if w != bo.Wait(42, retry) {
			t.Errorf("Wait(42, %d) not deterministic", retry)
		}
	}
	var zero Backoff
	if w := zero.Wait(42, 3); w != 0 {
		t.Errorf("zero Backoff Wait = %v, want 0 (legacy immediate retransmit)", w)
	}
}

// TestBackoffWaitTable drives the schedule through its envelope
// table-style: nominal growth, the 5s cap, jitter bounded by ±Jitter,
// exactness when jitter is off, and the degenerate inputs.
func TestBackoffWaitTable(t *testing.T) {
	seeds := []uint64{0, 1, 42, 1 << 20, ^uint64(0)}
	cases := []struct {
		name    string
		bo      Backoff
		retry   int
		nominal time.Duration
	}{
		{"first retry waits Base", DefaultBackoff(), 1, 500 * time.Millisecond},
		{"second retry doubles", DefaultBackoff(), 2, time.Second},
		{"third retry doubles again", DefaultBackoff(), 3, 2 * time.Second},
		{"fifth retry hits the 5s cap", DefaultBackoff(), 5, 5 * time.Second},
		{"deep retry stays capped", DefaultBackoff(), 40, 5 * time.Second},
		{"no jitter is exact", Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}, 4, 800 * time.Millisecond},
		{"no jitter caps exactly", Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}, 6, time.Second},
		{"factor below 1 is constant", Backoff{Base: 100 * time.Millisecond, Factor: 0.5}, 5, 100 * time.Millisecond},
		{"uncapped keeps growing", Backoff{Base: time.Millisecond, Factor: 2}, 10, 512 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lo := time.Duration(float64(tc.nominal) * (1 - tc.bo.Jitter))
			hi := time.Duration(float64(tc.nominal) * (1 + tc.bo.Jitter))
			var minSeen, maxSeen time.Duration
			for i, seed := range seeds {
				w := tc.bo.Wait(seed, tc.retry)
				if w < lo || w > hi {
					t.Errorf("Wait(%d, %d) = %v, want within [%v, %v]", seed, tc.retry, w, lo, hi)
				}
				if tc.bo.Jitter == 0 && w != tc.nominal {
					t.Errorf("Wait(%d, %d) = %v, want exactly %v with jitter off", seed, tc.retry, w, tc.nominal)
				}
				if w2 := tc.bo.Wait(seed, tc.retry); w2 != w {
					t.Errorf("Wait(%d, %d) not a pure function: %v then %v", seed, tc.retry, w, w2)
				}
				if i == 0 || w < minSeen {
					minSeen = w
				}
				if w > maxSeen {
					maxSeen = w
				}
			}
			// Jitter must actually spread the schedule: identical waits
			// across all seeds would re-synchronise concurrent probes.
			if tc.bo.Jitter > 0 && minSeen == maxSeen {
				t.Errorf("Wait(%d) = %v for every seed, want seed-dependent jitter", tc.retry, minSeen)
			}
		})
	}
	t.Run("degenerate inputs wait 0", func(t *testing.T) {
		bo := DefaultBackoff()
		for _, retry := range []int{0, -1} {
			if w := bo.Wait(7, retry); w != 0 {
				t.Errorf("Wait(7, %d) = %v, want 0", retry, w)
			}
		}
		if w := (Backoff{Max: time.Second, Factor: 2}).Wait(7, 3); w != 0 {
			t.Errorf("zero-Base Wait = %v, want 0", w)
		}
	})
}

// cancellingExchanger cancels its context while serving attempt number
// cancelOn, then times out — modelling a measurement aborted while a
// probe is in flight. Like udpnet.Transport, it reports the expiry as a
// plain timeout; surfacing ctx.Err() is the retry loop's job.
type cancellingExchanger struct {
	cancel   context.CancelFunc
	cancelOn int
	calls    int
}

func (c *cancellingExchanger) Exchange(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error) {
	c.calls++
	if c.calls == c.cancelOn {
		c.cancel()
	}
	return nil, 10 * time.Millisecond, ErrTimeout
}

// TestExchangeRetryBackoffCancelledMidSequence: when the context is
// cancelled while an attempt is in flight, the loop must stop before the
// next retransmission and surface ctx.Err() — not ErrTimeout — no matter
// how deep into the attempt budget the cancellation lands.
func TestExchangeRetryBackoffCancelledMidSequence(t *testing.T) {
	for _, cancelOn := range []int{1, 2, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		ex := &cancellingExchanger{cancel: cancel, cancelOn: cancelOn}
		query := dnswire.NewQuery(4, "h4.cache.example.", dnswire.TypeA)
		_, _, err := ExchangeRetryBackoff(ctx, ex, query, MustAddr("192.0.2.1"), 8, DefaultBackoff())
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelOn=%d: err = %v, want context.Canceled", cancelOn, err)
		}
		if errors.Is(err, ErrTimeout) {
			t.Errorf("cancelOn=%d: err = %v, must not read as packet loss", cancelOn, err)
		}
		if ex.calls != cancelOn {
			t.Errorf("cancelOn=%d: %d attempts, want %d (no retransmit after cancel)", cancelOn, ex.calls, cancelOn)
		}
		cancel()
	}
}
