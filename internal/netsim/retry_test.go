package netsim

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/dnswire"
)

// lossyExchanger models a transport that surfaces every failure as
// ErrTimeout without consulting ctx itself — exactly what
// udpnet.Transport does when the socket deadline (clamped to the ctx
// deadline) expires. The ctx check must therefore live in ExchangeRetry.
type lossyExchanger struct {
	calls int
}

func (l *lossyExchanger) Exchange(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error) {
	l.calls++
	return nil, 10 * time.Millisecond, ErrTimeout
}

// TestExchangeRetryStopsOnCancelledContext is the regression test for the
// retry loop ignoring ctx between attempts: a cancelled prober kept
// retransmitting until the attempt budget was exhausted whenever losses
// surfaced as ErrTimeout.
func TestExchangeRetryStopsOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first retry decision
	ex := &lossyExchanger{}
	query := dnswire.NewQuery(1, "h1.cache.example.", dnswire.TypeA)

	_, _, err := ExchangeRetry(ctx, ex, query, MustAddr("192.0.2.1"), 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (cancellation must be distinct from loss)", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, must not be reported as packet loss", err)
	}
	if ex.calls != 1 {
		t.Fatalf("exchanger called %d times, want 1 (no retransmission after cancel)", ex.calls)
	}
}

// TestExchangeRetryExhaustsAttemptsOnLoss pins the pre-existing contract:
// with a live context, retries continue through losses and the final
// error is ErrTimeout with the cumulative time of all attempts — per-try
// transport time plus the deterministic backoff waits between them.
func TestExchangeRetryExhaustsAttemptsOnLoss(t *testing.T) {
	ex := &lossyExchanger{}
	query := dnswire.NewQuery(2, "h2.cache.example.", dnswire.TypeA)
	dst := MustAddr("192.0.2.1")
	_, total, err := ExchangeRetry(context.Background(), ex, query, dst, 3)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if ex.calls != 3 {
		t.Fatalf("exchanger called %d times, want 3", ex.calls)
	}
	bo, seed := DefaultBackoff(), retrySeed(query, dst)
	want := 30*time.Millisecond + bo.Wait(seed, 1) + bo.Wait(seed, 2)
	if total != want {
		t.Fatalf("total = %v, want %v (3 tries + 2 backoff waits)", total, want)
	}
}

// TestExchangeRetryCumulativeTimeInvariant is the regression test for the
// instant-retransmit bug: k failed attempts must cost at least the sum of
// the per-try times plus (k-1) backoff waits, and each wait is bounded by
// the schedule's jittered envelope. A retry loop that retransmits the
// moment a timeout returns undercosts lossy probes versus the stub
// resolver behaviour it models.
func TestExchangeRetryCumulativeTimeInvariant(t *testing.T) {
	const attempts = 5
	ex := &lossyExchanger{}
	query := dnswire.NewQuery(3, "h3.cache.example.", dnswire.TypeA)
	dst := MustAddr("192.0.2.1")
	_, total, err := ExchangeRetry(context.Background(), ex, query, dst, attempts)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}

	bo := DefaultBackoff()
	transport := time.Duration(attempts) * 10 * time.Millisecond
	var minWait, maxWait time.Duration
	for i := 1; i < attempts; i++ {
		nominal := bo.Base << (i - 1) // Factor 2 doubling
		if nominal > bo.Max {
			nominal = bo.Max
		}
		minWait += time.Duration(float64(nominal) * (1 - bo.Jitter))
		maxWait += time.Duration(float64(nominal) * (1 + bo.Jitter))
	}
	if total < transport+minWait || total > transport+maxWait {
		t.Fatalf("total = %v, want within [%v, %v] (transport %v + jittered backoff)",
			total, transport+minWait, transport+maxWait, transport)
	}

	// Determinism: the same probe retried again consumes the same waits.
	ex2 := &lossyExchanger{}
	_, total2, _ := ExchangeRetry(context.Background(), ex2, query, dst, attempts)
	if total2 != total {
		t.Fatalf("cumulative time not deterministic: %v vs %v", total, total2)
	}
}

// TestBackoffWaitSchedule pins the schedule shape: monotone growth to the
// cap, jitter within its envelope, zero schedule waits not at all.
func TestBackoffWaitSchedule(t *testing.T) {
	bo := DefaultBackoff()
	for retry := 1; retry <= 8; retry++ {
		nominal := bo.Base << (retry - 1)
		if nominal > bo.Max {
			nominal = bo.Max
		}
		lo := time.Duration(float64(nominal) * (1 - bo.Jitter))
		hi := time.Duration(float64(nominal) * (1 + bo.Jitter))
		w := bo.Wait(42, retry)
		if w < lo || w > hi {
			t.Errorf("Wait(42, %d) = %v, want within [%v, %v]", retry, w, lo, hi)
		}
		if w != bo.Wait(42, retry) {
			t.Errorf("Wait(42, %d) not deterministic", retry)
		}
	}
	var zero Backoff
	if w := zero.Wait(42, 3); w != 0 {
		t.Errorf("zero Backoff Wait = %v, want 0 (legacy immediate retransmit)", w)
	}
}
