package netsim

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/dnswire"
)

// lossyExchanger models a transport that surfaces every failure as
// ErrTimeout without consulting ctx itself — exactly what
// udpnet.Transport does when the socket deadline (clamped to the ctx
// deadline) expires. The ctx check must therefore live in ExchangeRetry.
type lossyExchanger struct {
	calls int
}

func (l *lossyExchanger) Exchange(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error) {
	l.calls++
	return nil, 10 * time.Millisecond, ErrTimeout
}

// TestExchangeRetryStopsOnCancelledContext is the regression test for the
// retry loop ignoring ctx between attempts: a cancelled prober kept
// retransmitting until the attempt budget was exhausted whenever losses
// surfaced as ErrTimeout.
func TestExchangeRetryStopsOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first retry decision
	ex := &lossyExchanger{}
	query := dnswire.NewQuery(1, "h1.cache.example.", dnswire.TypeA)

	_, _, err := ExchangeRetry(ctx, ex, query, MustAddr("192.0.2.1"), 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (cancellation must be distinct from loss)", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, must not be reported as packet loss", err)
	}
	if ex.calls != 1 {
		t.Fatalf("exchanger called %d times, want 1 (no retransmission after cancel)", ex.calls)
	}
}

// TestExchangeRetryExhaustsAttemptsOnLoss pins the pre-existing contract:
// with a live context, retries continue through losses and the final
// error is ErrTimeout with the cumulative time of all attempts.
func TestExchangeRetryExhaustsAttemptsOnLoss(t *testing.T) {
	ex := &lossyExchanger{}
	query := dnswire.NewQuery(2, "h2.cache.example.", dnswire.TypeA)
	_, total, err := ExchangeRetry(context.Background(), ex, query, MustAddr("192.0.2.1"), 3)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if ex.calls != 3 {
		t.Fatalf("exchanger called %d times, want 3", ex.calls)
	}
	if total != 30*time.Millisecond {
		t.Fatalf("total = %v, want cumulative 30ms", total)
	}
}
