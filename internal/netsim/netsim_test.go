package netsim

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
)

var (
	testClient = MustAddr("192.0.2.10")
	testServer = MustAddr("198.51.100.53")
)

// echoHandler answers every query with an authoritative NOERROR response.
func echoHandler() Handler {
	return HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		resp := dnswire.NewResponse(q)
		resp.Header.Authoritative = true
		return resp, nil
	})
}

func TestExchangeDelivers(t *testing.T) {
	n := New(1)
	n.Register(testServer, LinkProfile{OneWay: 5 * time.Millisecond}, echoHandler())
	conn := n.Bind(testClient)
	resp, rtt, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Response || !resp.Header.Authoritative {
		t.Error("response flags wrong")
	}
	if rtt != 10*time.Millisecond {
		t.Errorf("rtt = %v, want 10ms (5ms each way, no jitter)", rtt)
	}
}

func TestExchangeNoRoute(t *testing.T) {
	n := New(1)
	conn := n.Bind(testClient)
	_, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer)
	if !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestExchangeCancelledContext(t *testing.T) {
	n := New(1)
	n.Register(testServer, LinkProfile{}, echoHandler())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := n.Bind(testClient).Exchange(ctx, dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestExchangeSourceProfileLatency(t *testing.T) {
	n := New(1)
	n.Register(testServer, LinkProfile{OneWay: 5 * time.Millisecond}, echoHandler())
	// Register the client too, so its link latency is charged.
	n.Register(testClient, LinkProfile{OneWay: 20 * time.Millisecond}, echoHandler())
	_, rtt, err := n.Bind(testClient).Exchange(context.Background(), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer)
	if err != nil {
		t.Fatal(err)
	}
	if rtt != 50*time.Millisecond {
		t.Errorf("rtt = %v, want 50ms (25ms each way)", rtt)
	}
}

func TestPacketLossRate(t *testing.T) {
	n := New(42)
	// 11% per-packet loss, the paper's Iran measurement. Per exchange the
	// survival probability is (1-0.11)^2 ≈ 0.792.
	n.Register(testServer, LinkProfile{Loss: 0.11}, echoHandler())
	conn := n.Bind(testClient)
	const trials = 5000
	losses := 0
	for i := 0; i < trials; i++ {
		_, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "a.example", dnswire.TypeA), testServer)
		switch {
		case errors.Is(err, ErrTimeout):
			losses++
		case err != nil:
			t.Fatal(err)
		}
	}
	got := float64(losses) / trials
	want := 1 - 0.89*0.89
	if got < want-0.02 || got > want+0.02 {
		t.Errorf("observed loss %.3f, want ≈%.3f", got, want)
	}
}

func TestLossChargesTimeout(t *testing.T) {
	n := New(7)
	n.SetTimeout(time.Second)
	n.Register(testServer, LinkProfile{Loss: 1}, echoHandler())
	_, rtt, err := n.Bind(testClient).Exchange(context.Background(), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if rtt != time.Second {
		t.Errorf("rtt = %v, want the 1s timeout", rtt)
	}
}

func TestNestedExchangeInflatesRTT(t *testing.T) {
	n := New(1)
	upstream := MustAddr("203.0.113.1")
	n.Register(upstream, LinkProfile{OneWay: 30 * time.Millisecond}, echoHandler())
	// A "resolver" that forwards every query upstream before answering —
	// the cache-miss path of the timing side channel.
	resolver := HandlerFunc(func(ctx context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		_, _, err := n.Bind(testServer).Exchange(ctx, q, upstream)
		if err != nil {
			return nil, err
		}
		return dnswire.NewResponse(q), nil
	})
	n.Register(testServer, LinkProfile{OneWay: 5 * time.Millisecond}, resolver)

	_, rtt, err := n.Bind(testClient).Exchange(context.Background(), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer)
	if err != nil {
		t.Fatal(err)
	}
	// Client<->resolver: 10ms. Resolver<->upstream: 2*(5+30) = 70ms.
	if rtt != 80*time.Millisecond {
		t.Errorf("rtt = %v, want 80ms including upstream leg", rtt)
	}
}

func TestChargeLatency(t *testing.T) {
	n := New(1)
	slow := HandlerFunc(func(ctx context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		ChargeLatency(ctx, 15*time.Millisecond)
		return dnswire.NewResponse(q), nil
	})
	n.Register(testServer, LinkProfile{}, slow)
	_, rtt, err := n.Bind(testClient).Exchange(context.Background(), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer)
	if err != nil {
		t.Fatal(err)
	}
	if rtt != 15*time.Millisecond {
		t.Errorf("rtt = %v, want 15ms of charged processing", rtt)
	}
}

func TestChargeLatencyOutsideExchangeIsNoop(t *testing.T) {
	ChargeLatency(context.Background(), time.Hour) // must not panic
}

func TestUnregister(t *testing.T) {
	n := New(1)
	n.Register(testServer, LinkProfile{}, echoHandler())
	if !n.Registered(testServer) {
		t.Fatal("host not registered")
	}
	n.Unregister(testServer)
	if n.Registered(testServer) {
		t.Fatal("host still registered")
	}
	_, _, err := n.Bind(testClient).Exchange(context.Background(), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer)
	if !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute after unregister", err)
	}
}

func TestStatsCounting(t *testing.T) {
	n := New(1)
	n.Register(testServer, LinkProfile{}, echoHandler())
	conn := n.Bind(testClient)
	for i := 0; i < 3; i++ {
		if _, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "a.example", dnswire.TypeA), testServer); err != nil {
			t.Fatal(err)
		}
	}
	s := n.SnapshotStats()
	if s.Exchanges != 3 {
		t.Errorf("Exchanges = %d, want 3", s.Exchanges)
	}
	if s.BytesSent == 0 || s.BytesRecvd == 0 {
		t.Error("byte counters not incremented")
	}
	if s.Lost != 0 {
		t.Errorf("Lost = %d, want 0", s.Lost)
	}
}

func TestJitterBoundsRTT(t *testing.T) {
	n := New(99)
	n.Register(testServer, LinkProfile{OneWay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond}, echoHandler())
	conn := n.Bind(testClient)
	for i := 0; i < 200; i++ {
		_, rtt, err := conn.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "a.example", dnswire.TypeA), testServer)
		if err != nil {
			t.Fatal(err)
		}
		if rtt < 20*time.Millisecond || rtt > 30*time.Millisecond {
			t.Fatalf("rtt = %v outside [20ms, 30ms]", rtt)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		n := New(123)
		n.Register(testServer, LinkProfile{OneWay: 10 * time.Millisecond, Jitter: 8 * time.Millisecond, Loss: 0.05}, echoHandler())
		conn := n.Bind(testClient)
		out := make([]time.Duration, 0, 50)
		for i := 0; i < 50; i++ {
			_, rtt, _ := conn.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "a.example", dnswire.TypeA), testServer)
			out = append(out, rtt)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at exchange %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestConcurrentExchanges(t *testing.T) {
	n := New(5)
	n.Register(testServer, LinkProfile{Jitter: time.Millisecond, Loss: 0.01}, echoHandler())
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn := n.Bind(testClient)
			for j := 0; j < 20; j++ {
				_, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(uint16(id), "a.example", dnswire.TypeA), testServer)
				if err != nil && !errors.Is(err, ErrTimeout) {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := n.SnapshotStats().Exchanges; got != 64*20 {
		t.Errorf("Exchanges = %d, want %d", got, 64*20)
	}
}

func TestAddrRange(t *testing.T) {
	got := AddrRange(MustAddr("10.0.0.254"), 3)
	want := []netip.Addr{MustAddr("10.0.0.254"), MustAddr("10.0.0.255"), MustAddr("10.0.1.0")}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("addr %d = %v, want %v", i, got[i], want[i])
		}
	}
	if out := AddrRange(MustAddr("10.0.0.1"), 0); len(out) != 0 {
		t.Errorf("zero-count range returned %v", out)
	}
}

func TestExchangeRetryRecoversFromLoss(t *testing.T) {
	n := New(11)
	n.Register(testServer, LinkProfile{Loss: 0.5}, echoHandler())
	conn := n.Bind(testClient)
	ok := 0
	for i := 0; i < 200; i++ {
		_, _, err := ExchangeRetry(context.Background(), conn, dnswire.NewQuery(uint16(i), "a.example", dnswire.TypeA), testServer, 16)
		if err == nil {
			ok++
		}
	}
	// Per-attempt success ≈ 0.25, so failing 16 straight ≈ 0.75^16 ≈ 1%;
	// allow a little slack.
	if ok < 190 {
		t.Errorf("only %d/200 retried exchanges succeeded", ok)
	}
}

func TestExchangeRetryAccumulatesTime(t *testing.T) {
	n := New(3)
	n.SetTimeout(time.Second)
	n.Register(testServer, LinkProfile{Loss: 1}, echoHandler())
	query := dnswire.NewQuery(1, "a.example", dnswire.TypeA)
	_, total, err := ExchangeRetry(context.Background(), n.Bind(testClient), query, testServer, 3)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	bo, seed := DefaultBackoff(), retrySeed(query, testServer)
	want := 3*time.Second + bo.Wait(seed, 1) + bo.Wait(seed, 2)
	if total != want {
		t.Errorf("total = %v, want %v (3 timeouts + 2 backoff waits)", total, want)
	}
}

func TestExchangeRetryNonTimeoutFailsFast(t *testing.T) {
	n := New(3)
	calls := 0
	n.Register(testServer, LinkProfile{}, HandlerFunc(func(context.Context, netip.Addr, *dnswire.Message) (*dnswire.Message, error) {
		calls++
		return nil, errors.New("boom")
	}))
	_, _, err := ExchangeRetry(context.Background(), n.Bind(testClient), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer, 5)
	if err == nil {
		t.Fatal("want error")
	}
	if calls != 1 {
		t.Errorf("handler called %d times, want 1 (no retry on hard errors)", calls)
	}
}

func TestHandlerPanicBecomesError(t *testing.T) {
	n := New(1)
	n.Register(testServer, LinkProfile{}, HandlerFunc(
		func(context.Context, netip.Addr, *dnswire.Message) (*dnswire.Message, error) {
			panic("boom")
		}))
	_, _, err := n.Bind(testClient).Exchange(context.Background(),
		dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer)
	if err == nil || !strings.Contains(err.Error(), "handler panic") {
		t.Errorf("err = %v, want handler panic error", err)
	}
	// The network stays usable afterwards.
	n.Register(testServer, LinkProfile{}, echoHandler())
	if _, _, err := n.Bind(testClient).Exchange(context.Background(),
		dnswire.NewQuery(2, "a.example", dnswire.TypeA), testServer); err != nil {
		t.Errorf("network unusable after panic: %v", err)
	}
}

func TestSetMetricsCountsPacketsAndRTT(t *testing.T) {
	n := New(1)
	reg := metrics.New()
	n.SetMetrics(reg)
	n.Register(testServer, LinkProfile{OneWay: 5 * time.Millisecond}, echoHandler())
	conn := n.Bind(testClient)
	for i := 0; i < 3; i++ {
		if _, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(uint16(i+1), "a.example", dnswire.TypeA), testServer); err != nil {
			t.Fatal(err)
		}
	}
	s := reg.Snapshot()
	// Each lossless exchange sends one query and receives one response.
	if got := s.Counter("netsim.packets.sent"); got != 3 {
		t.Errorf("packets.sent = %d, want 3", got)
	}
	if got := s.Counter("netsim.packets.recvd"); got != 3 {
		t.Errorf("packets.recvd = %d, want 3", got)
	}
	if got := s.Counter("netsim.packets.lost"); got != 0 {
		t.Errorf("packets.lost = %d, want 0", got)
	}
	h := s.Histograms["netsim.rtt_us."+testServer.String()]
	if h.Count != 3 {
		t.Errorf("rtt histogram count = %d, want 3", h.Count)
	}
	if want := int64(3 * 10_000); h.Sum != want { // 10ms per round trip
		t.Errorf("rtt histogram sum = %d µs, want %d", h.Sum, want)
	}
}

func TestSetMetricsCountsLossAndRetries(t *testing.T) {
	n := New(1)
	reg := metrics.New()
	n.SetMetrics(reg)
	n.Register(testServer, LinkProfile{Loss: 1.0}, echoHandler())
	conn := n.Bind(testClient)
	_, _, err := ExchangeRetry(context.Background(), conn, dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer, 4)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout under total loss", err)
	}
	s := reg.Snapshot()
	if got := s.Counter("netsim.packets.lost"); got != 4 {
		t.Errorf("packets.lost = %d, want 4 (every attempt's query dropped)", got)
	}
	if got := s.Counter("netsim.retries"); got != 3 {
		t.Errorf("retries = %d, want 3 (attempts beyond the first)", got)
	}
}
