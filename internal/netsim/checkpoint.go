package netsim

import (
	"fmt"
	"net/netip"
	"sort"
)

// FlowSnapshot is the serializable fault state of one (source →
// destination) flow: the exchange counter driving outage windows and the
// Gilbert–Elliott chain positions for each side of the path.
type FlowSnapshot struct {
	Dst    netip.Addr
	N      int
	SrcBad bool
	DstBad bool
}

// SourceState is the serializable state of one source address' stream: the
// RNG position (number of values drawn since creation) and the per-
// destination fault-model state. The RNG values themselves are not stored —
// the stream is a pure function of (network seed, address), so position is
// sufficient to reconstruct it exactly.
type SourceState struct {
	Addr  netip.Addr
	Draws uint64
	Flows []FlowSnapshot
}

// CheckpointSources captures every per-source RNG stream and its fault
// state, sorted by source address so the result is canonical: two networks
// that performed the same exchanges produce byte-identical checkpoints
// regardless of worker or shard scheduling. The caller must be at a
// quiescent barrier (no exchanges in flight).
func (n *Network) CheckpointSources() []SourceState {
	var out []SourceState
	n.srcRNGs.Range(func(k, v any) bool {
		lr := v.(*lockedRand)
		lr.mu.Lock()
		st := SourceState{Addr: k.(netip.Addr), Draws: lr.src.Draws()}
		for dst, fs := range lr.flows {
			st.Flows = append(st.Flows, FlowSnapshot{Dst: dst, N: fs.n, SrcBad: fs.srcBad, DstBad: fs.dstBad})
		}
		lr.mu.Unlock()
		sort.Slice(st.Flows, func(i, j int) bool { return st.Flows[i].Dst.Less(st.Flows[j].Dst) })
		out = append(out, st)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// RestoreSources replays captured source streams into the network: each
// stream is recreated from its deterministic (seed, address) derivation and
// fast-forwarded to the recorded draw position, and flow fault state is
// reinstated. Existing streams for the same addresses are repositioned in
// place. Restore must happen at a quiescent barrier, before any new
// exchanges draw from the streams.
func (n *Network) RestoreSources(states []SourceState) error {
	for _, st := range states {
		if !st.Addr.IsValid() {
			return fmt.Errorf("netsim: restore: invalid source address")
		}
		lr := n.srcRand(st.Addr)
		lr.mu.Lock()
		lr.src.SkipTo(st.Draws)
		lr.flows = nil
		if len(st.Flows) > 0 {
			lr.flows = make(map[netip.Addr]*flowState, len(st.Flows))
			for _, f := range st.Flows {
				if !f.Dst.IsValid() {
					lr.mu.Unlock()
					return fmt.Errorf("netsim: restore: invalid flow destination for source %v", st.Addr)
				}
				lr.flows[f.Dst] = &flowState{n: f.N, srcBad: f.SrcBad, dstBad: f.DstBad}
			}
		}
		lr.mu.Unlock()
	}
	return nil
}

// RestoreStats overwrites the network's counters with a previously
// captured Stats value. The totals land in shard 0 and every other shard
// is zeroed; the per-shard split is an implementation detail invisible to
// readers (only the SnapshotStats fold is observable), so restoring the
// fold rather than the split keeps the checkpoint format independent of
// statShardCount.
func (n *Network) RestoreStats(s Stats) {
	for i := range n.shards {
		sh := &n.shards[i]
		sh.exchanges.Store(0)
		sh.lost.Store(0)
		sh.bytesSent.Store(0)
		sh.bytesRecvd.Store(0)
		sh.servfail.Store(0)
		sh.refused.Store(0)
		sh.truncated.Store(0)
		sh.duplicated.Store(0)
		sh.late.Store(0)
		sh.outage.Store(0)
	}
	sh := &n.shards[0]
	sh.exchanges.Store(s.Exchanges)
	sh.lost.Store(s.Lost)
	sh.bytesSent.Store(s.BytesSent)
	sh.bytesRecvd.Store(s.BytesRecvd)
	sh.servfail.Store(s.Faults.ServFail)
	sh.refused.Store(s.Faults.Refused)
	sh.truncated.Store(s.Faults.Truncated)
	sh.duplicated.Store(s.Faults.Duplicated)
	sh.late.Store(s.Faults.Late)
	sh.outage.Store(s.Faults.Outage)
}
