package netsim

import (
	"context"

	"dnscde/internal/netsim/des"
)

// procCtxKey carries the des.Process driving the calling goroutine. Code
// running under a sharded scheduler's process bridge (a scenario
// workload, the platform's recursion goroutine) tags its context with the
// process so blocking helpers — ExchangeRetry above all — ride the
// sharded event loops via Await/Resume instead of spinning up nested
// pooled schedulers.
type procCtxKey struct{}

// WithProcess returns ctx carrying p. Blocking netsim entry points that
// find a process in their context run their event chains on the
// process's sharded universe and park the goroutine until completion.
func WithProcess(ctx context.Context, p *des.Process) context.Context {
	return context.WithValue(ctx, procCtxKey{}, p)
}

// processFrom extracts the driving process, or nil.
func processFrom(ctx context.Context) *des.Process {
	p, _ := ctx.Value(procCtxKey{}).(*des.Process)
	return p
}

// ClearProcess shadows any process in ctx with nil. The exchange layer
// strips the process once at the bridge boundary so handler code — which
// runs on lane goroutines, not on the process goroutine — can never
// accidentally park a lane by awaiting on a context that is not its own.
func ClearProcess(ctx context.Context) context.Context {
	if processFrom(ctx) == nil {
		return ctx
	}
	return context.WithValue(ctx, procCtxKey{}, (*des.Process)(nil))
}
