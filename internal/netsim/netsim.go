// Package netsim provides the simulated Internet over which the CDE
// reproduction runs: hosts keyed by IP address, per-host latency profiles,
// per-host Bernoulli packet loss, and an Exchanger abstraction that the
// probers, resolution platforms and authoritative nameservers all use.
//
// Every simulated exchange round-trips through the real DNS wire codec
// (dnswire.Pack / dnswire.Unpack), so the simulation exercises exactly the
// bytes a real deployment would emit. The same Exchanger interface is
// implemented over real UDP sockets by package udpnet, which is how the
// library doubles as a live measurement tool.
package netsim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnscde/internal/detpar"
	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
	"dnscde/internal/trace"
)

// Simulation errors.
var (
	// ErrTimeout reports a lost query or lost response; the paper's §V
	// carpet-bombing technique exists to tolerate exactly this.
	ErrTimeout = errors.New("netsim: query timed out (packet loss)")
	// ErrNoRoute reports a destination IP with no registered host.
	ErrNoRoute = errors.New("netsim: no host at destination address")
	// ErrMalformed reports a message that failed wire encoding or decoding.
	ErrMalformed = errors.New("netsim: malformed message")
)

// Handler processes one DNS query arriving at a simulated host.
//
// The handler may issue nested exchanges (a recursive resolver querying an
// authoritative server does); nested latency is accumulated onto the
// enclosing exchange via the context, so the round-trip time observed by
// the original client includes upstream resolution time — the basis of the
// paper's §IV-B3 timing side channel.
type Handler interface {
	ServeDNS(ctx context.Context, src netip.Addr, query *dnswire.Message) (*dnswire.Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, src netip.Addr, query *dnswire.Message) (*dnswire.Message, error)

var _ Handler = HandlerFunc(nil)

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(ctx context.Context, src netip.Addr, query *dnswire.Message) (*dnswire.Message, error) {
	return f(ctx, src, query)
}

// LinkProfile describes the network path characteristics of one host.
type LinkProfile struct {
	// OneWay is the base one-way delay between this host and the
	// simulated backbone.
	OneWay time.Duration
	// Jitter is the maximum uniform random extra delay added per
	// direction.
	Jitter time.Duration
	// Loss is the probability in [0,1] that a single packet to or from
	// this host is dropped. The paper measured ~11% in Iran, ~4% in China
	// and ~1% elsewhere.
	Loss float64
	// Faults, when non-nil, layers deterministic fault injection on the
	// link: Gilbert–Elliott burst loss (replacing Loss), injected
	// SERVFAIL/REFUSED, truncation, duplication, late responses and
	// scheduled outages. See FaultProfile. A pointer keeps LinkProfile
	// comparable with ==.
	Faults *FaultProfile
}

// DefaultLinkProfile matches the paper's "typical" network: ~1% loss and a
// modest regional delay.
func DefaultLinkProfile() LinkProfile {
	return LinkProfile{OneWay: 10 * time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.01}
}

type host struct {
	handler Handler
	profile LinkProfile
	// down marks a transient outage toggled by SetDown; queries to a down
	// host vanish (client times out). Atomic so the hot path reads it
	// without holding the network lock.
	down atomic.Bool
}

// Network is a simulated Internet. The zero value is not usable; use New.
// Network is safe for concurrent use.
type Network struct {
	mu    sync.Mutex
	hosts map[netip.Addr]*host

	// seed derives the per-source-address RNG streams. Loss and jitter
	// draws for an exchange come from the RNG of its *source* address
	// (see srcRand), so concurrent exchanges from different sources never
	// contend on — or scheduling-dependently interleave — one stream.
	seed    int64
	srcRNGs sync.Map // netip.Addr -> *lockedRand

	// timeout is the simulated time charged for a lost packet, mirroring
	// a resolver's retransmission timer.
	timeout time.Duration

	// clientProfile is the link profile applied to source addresses with
	// no registered host (probers Bind arbitrary client addresses). It
	// defaults to the zero profile — a perfect local link — and is
	// settable via SetClientProfile.
	clientProfile LinkProfile

	stats Stats

	// metrics, when non-nil, mirrors packet-level events into the
	// accounting registry; the handles are pre-created so the hot path
	// pays one nil check per event.
	metrics      *metrics.Registry
	mSent        *metrics.Counter
	mLost        *metrics.Counter
	mRetries     *metrics.Counter
	mServFail    *metrics.Counter
	mRefused     *metrics.Counter
	mTruncated   *metrics.Counter
	mDuplicated  *metrics.Counter
	mLate        *metrics.Counter
	mOutage      *metrics.Counter
	linkRTTHists sync.Map // netip.Addr -> *metrics.Histogram
}

// Stats counts network-level events, used by tests and by the carpet-
// bombing experiment to confirm configured loss rates.
type Stats struct {
	Exchanges  int64
	Lost       int64
	BytesSent  int64
	BytesRecvd int64
	// Faults counts injected faults by kind; always maintained, registry
	// or not, so tests can assert on injection without metrics plumbing.
	Faults FaultStats
}

// New creates an empty network with deterministic randomness: seed fixes
// every per-source RNG stream (see srcRand).
func New(seed int64) *Network {
	return &Network{
		hosts:   make(map[netip.Addr]*host),
		seed:    seed,
		timeout: 2 * time.Second,
	}
}

// lockedRand is one source address' persistent RNG stream. The lock makes
// a *shared* source safe (two goroutines probing from the same address
// draw atomically); determinism additionally requires that at most one
// goroutine uses a given source at a time, which the detpar-converted
// callers guarantee by assigning each parallel trial its own addresses.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
	// flows holds per-destination fault state (exchange counters and
	// Gilbert–Elliott chain positions); nil until a faulted link is used.
	flows map[netip.Addr]*flowState
}

func (lr *lockedRand) roll() float64 {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.rng.Float64()
}

func (lr *lockedRand) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return time.Duration(lr.rng.Int63n(int64(max) + 1))
}

// srcRand returns the persistent RNG stream for exchanges originating at
// src, creating it on first use. The stream is a pure function of
// (network seed, src), so the sequence of draws a source consumes depends
// only on its own exchange history — never on what other sources are
// doing concurrently. It lives on the Network rather than the Conn
// because callers re-Bind the same source per resolution; a per-Conn
// stream would replay identical draws every time.
func (n *Network) srcRand(src netip.Addr) *lockedRand {
	if lr, ok := n.srcRNGs.Load(src); ok {
		return lr.(*lockedRand)
	}
	b := src.As16()
	lo := binary.BigEndian.Uint64(b[:8])
	hi := binary.BigEndian.Uint64(b[8:])
	lr := &lockedRand{rng: rand.New(rand.NewSource(detpar.Derive(n.seed, lo, hi)))}
	actual, _ := n.srcRNGs.LoadOrStore(src, lr)
	return actual.(*lockedRand)
}

// SetMetrics attaches an accounting registry: every subsequent exchange
// counts its packets under "netsim.packets.sent"/"netsim.packets.lost",
// retransmissions under "netsim.retries", and records per-destination
// round-trip times in "netsim.rtt_us.<dst>" histograms (microseconds).
// A nil registry detaches instrumentation.
func (n *Network) SetMetrics(reg *metrics.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.metrics = reg
	n.mSent = reg.Counter("netsim.packets.sent")
	n.mLost = reg.Counter("netsim.packets.lost")
	n.mRetries = reg.Counter("netsim.retries")
	n.mServFail = reg.Counter("netsim.faults.servfail")
	n.mRefused = reg.Counter("netsim.faults.refused")
	n.mTruncated = reg.Counter("netsim.faults.truncated")
	n.mDuplicated = reg.Counter("netsim.faults.duplicated")
	n.mLate = reg.Counter("netsim.faults.late")
	n.mOutage = reg.Counter("netsim.faults.outage")
	// Drop handles cached against a previously attached registry.
	n.linkRTTHists.Range(func(k, _ any) bool {
		n.linkRTTHists.Delete(k)
		return true
	})
}

// rttHist returns the per-destination RTT histogram, caching the handle so
// steady-state exchanges skip the registry's name lookup.
func (n *Network) rttHist(reg *metrics.Registry, dst netip.Addr) *metrics.Histogram {
	if reg == nil {
		return nil
	}
	if h, ok := n.linkRTTHists.Load(dst); ok {
		return h.(*metrics.Histogram)
	}
	h := reg.Histogram("netsim.rtt_us."+dst.String(), metrics.RTTBoundsUS)
	n.linkRTTHists.Store(dst, h)
	return h
}

// SetTimeout sets the simulated duration charged to an exchange whose query
// or response packet is lost.
func (n *Network) SetTimeout(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.timeout = d
}

// SetClientProfile sets the link profile applied to *unregistered* source
// addresses — the probers' client side of every exchange. Historically an
// unregistered source silently got a zero profile (no loss, no delay, no
// faults) even when callers intended otherwise; the fallback is now
// explicit and configurable. The default remains the zero profile, so
// existing simulations are unchanged.
func (n *Network) SetClientProfile(p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.clientProfile = p
}

// ClientProfile returns the profile applied to unregistered sources.
func (n *Network) ClientProfile() LinkProfile {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.clientProfile
}

// SetDown marks the host at addr as down (or back up): while down, queries
// to it vanish and clients time out, modelling the paper's §II-B transient
// platform outages without losing the host's registration or cache state
// the way Unregister would.
func (n *Network) SetDown(addr netip.Addr, down bool) {
	if h, ok := n.lookup(addr); ok {
		h.down.Store(down)
	}
}

// Register attaches handler to addr with the given link profile. It
// replaces any previous registration for addr.
func (n *Network) Register(addr netip.Addr, profile LinkProfile, handler Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[addr] = &host{handler: handler, profile: profile}
}

// Unregister removes the host at addr, simulating a machine going down —
// the paper's §II-B resilience use case (a platform with four caches of
// which two are down).
func (n *Network) Unregister(addr netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.hosts, addr)
}

// Registered reports whether a host is attached at addr.
func (n *Network) Registered(addr netip.Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.hosts[addr]
	return ok
}

// SnapshotStats returns a copy of the network counters.
func (n *Network) SnapshotStats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// lookup returns the host at addr.
func (n *Network) lookup(addr netip.Addr) (*host, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[addr]
	return h, ok
}

type latencyMeterKey struct{}

// latencyMeter accumulates simulated upstream time spent by a handler so
// that nested exchanges inflate the caller-observed RTT.
type latencyMeter struct {
	mu      sync.Mutex
	elapsed time.Duration
}

func (lm *latencyMeter) add(d time.Duration) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.elapsed += d
}

func (lm *latencyMeter) total() time.Duration {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.elapsed
}

// meterPool recycles latency meters across exchanges. One meter used to
// escape into the handler context per round trip (two when duplication
// fired); pooling removes that steady-state allocation. Safe because
// handlers run synchronously inside Exchange — nothing retains the meter
// after safeServe returns.
var meterPool = sync.Pool{New: func() any { return new(latencyMeter) }}

// getMeter returns a zeroed meter from the pool.
func getMeter() *latencyMeter {
	lm := meterPool.Get().(*latencyMeter)
	lm.elapsed = 0
	return lm
}

// chargeUpstream adds d to the latency meter of the exchange enclosing ctx,
// if any. Handlers performing work outside this package's Exchange path
// (e.g. artificial processing delay) may call ChargeLatency instead.
func chargeUpstream(ctx context.Context, d time.Duration) {
	if lm, ok := ctx.Value(latencyMeterKey{}).(*latencyMeter); ok {
		lm.add(d)
	}
}

// ChargeLatency records extra simulated processing time against the
// exchange enclosing ctx. Handlers use it to model cache-lookup or
// computation delay.
func ChargeLatency(ctx context.Context, d time.Duration) {
	chargeUpstream(ctx, d)
}

// safeServe invokes a handler, converting panics into errors so one
// faulty simulated host cannot take down the whole network — the same
// boundary recovery a real server framework applies per request.
func safeServe(h Handler, ctx context.Context, src netip.Addr, query *dnswire.Message) (resp *dnswire.Message, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("netsim: handler panic: %v", r)
		}
	}()
	return h.ServeDNS(ctx, src, query)
}

// Exchanger sends one DNS query and waits for the response, reporting the
// (simulated or real) round-trip time.
type Exchanger interface {
	Exchange(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error)
}

// Conn is an Exchanger bound to a simulated source address.
type Conn struct {
	net *Network
	src netip.Addr
	// tcp marks a TCP-semantics exchange: immune to in-flight truncation
	// and duplication, at the cost of one extra handshake round trip.
	tcp bool
}

var _ Exchanger = (*Conn)(nil)

// Bind returns an Exchanger that sends from src. The source needs no
// registered handler; registration is only required to *receive* queries.
func (n *Network) Bind(src netip.Addr) *Conn {
	return &Conn{net: n, src: src}
}

// Src returns the bound source address.
func (c *Conn) Src() netip.Addr { return c.src }

// TCP returns a copy of the Conn that exchanges with TCP semantics: the
// simulated path never truncates or duplicates its messages (TCP is a
// byte stream with its own retransmission), and every exchange is charged
// one extra round trip for the connection handshake — the same cost shape
// udpnet's real-socket TCP fallback pays.
func (c *Conn) TCP() *Conn {
	cc := *c
	cc.tcp = true
	return &cc
}

// retryCounter exposes the network's retransmission counter to
// ExchangeRetry (nil when no registry is attached).
func (c *Conn) retryCounter() *metrics.Counter {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	return c.net.mRetries
}

// scratchPool recycles the wire-encoding buffers used by Exchange. Safe
// because dnswire.Unpack never aliases its input: every decoded field is
// copied out of the wire bytes, so the scratch can be reused the moment
// Unpack returns.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// Exchange implements Exchanger. The query is packed to wire format,
// "transmitted" (subject to loss and latency), decoded, handled, and the
// response travels back the same way. The returned duration is the full
// simulated round-trip time including any upstream exchanges performed by
// the destination handler.
//
// Exchange runs once per probe, millions of times per enumeration trial;
// its steady-state path must not allocate. Fault branches and nested
// handler calls are charged to their owners via allow comments below.
//
//cdelint:hotpath
func (c *Conn) Exchange(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	n := c.net

	n.mu.Lock()
	n.stats.Exchanges++
	timeout := n.timeout
	reg, mSent, mLost := n.metrics, n.mSent, n.mLost
	clientProfile := n.clientProfile
	n.mu.Unlock()

	h, ok := n.lookup(dst)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %v", ErrNoRoute, dst)
	}
	// An unregistered source (the usual case for probers, which Bind
	// arbitrary client addresses) gets the network's configurable client
	// profile rather than a silent zero profile.
	srcProfile := clientProfile
	if sh, ok := n.lookup(c.src); ok {
		srcProfile = sh.profile
	}
	//cdelint:allow hotalloc per-source RNG stream is created once and cached in a sync.Map
	lr := n.srcRand(c.src)

	// Fault state for this (src → dst) flow, only materialised when a
	// FaultProfile is attached to either side: the zero-fault path must
	// consume byte-identical RNG draws to the pre-fault-layer simulator.
	dstFP := h.profile.Faults
	var fs *flowState
	var flowIdx int
	if srcProfile.Faults != nil || dstFP != nil {
		fs = lr.flow(dst)
		flowIdx = lr.nextFlowIdx(fs)
	}

	scratch := scratchPool.Get().(*[]byte)
	defer scratchPool.Put(scratch)
	wire, err := query.AppendPack((*scratch)[:0])
	*scratch = wire[:0]
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	n.mu.Lock()
	n.stats.BytesSent += int64(len(wire))
	n.mu.Unlock()
	mSent.Inc()

	// Transient outage: the destination is down (operator SetDown or a
	// scheduled window); the query vanishes and the client times out.
	if h.down.Load() || (dstFP != nil && inOutage(dstFP.Outages, flowIdx)) {
		n.mu.Lock()
		n.stats.Lost++
		n.mu.Unlock()
		mLost.Inc()
		n.noteFault(ctx, FaultOutage, c.src, dst)
		chargeUpstream(ctx, timeout)
		return nil, timeout, ErrTimeout
	}

	oneWay := srcProfile.OneWay + h.profile.OneWay +
		lr.jitter(srcProfile.Jitter) + lr.jitter(h.profile.Jitter)

	// Query packet subject to loss on either endpoint's link. The short-
	// circuit matters: with no faults attached this is exactly the
	// historical two-draw-max Bernoulli pattern.
	if lr.lostPacket(fs, srcProfile, true) || lr.lostPacket(fs, h.profile, false) {
		n.mu.Lock()
		n.stats.Lost++
		n.mu.Unlock()
		mLost.Inc()
		chargeUpstream(ctx, timeout)
		return nil, timeout, ErrTimeout
	}

	decoded, err := dnswire.Unpack(wire)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %w", ErrMalformed, err)
	}

	// Injected server failure: the destination short-circuits with
	// SERVFAIL/REFUSED instead of resolving — one draw covers both rates.
	var injected dnswire.RCode
	injectedOK := false
	if dstFP != nil && (dstFP.ServFailRate > 0 || dstFP.RefusedRate > 0) {
		switch u := lr.roll(); {
		case u < dstFP.ServFailRate:
			injected, injectedOK = dnswire.RCodeServFail, true
			n.noteFault(ctx, FaultServFail, c.src, dst)
		case u < dstFP.ServFailRate+dstFP.RefusedRate:
			injected, injectedOK = dnswire.RCodeRefused, true
			n.noteFault(ctx, FaultRefused, c.src, dst)
		}
	}

	// Run the handler with a fresh meter so its nested exchanges are
	// charged to this round trip.
	meter := getMeter()
	defer meterPool.Put(meter)
	var resp *dnswire.Message
	if injectedOK {
		//cdelint:allow hotalloc injected-fault path; the synthesized response is the product
		resp = dnswire.NewResponse(decoded)
		resp.Header.RCode = injected
	} else {
		resp, err = safeServe(h.handler, context.WithValue(ctx, latencyMeterKey{}, meter), c.src, decoded)
		if err != nil {
			return nil, 0, fmt.Errorf("netsim: handler at %v: %w", dst, err)
		}
		// Duplicated query delivery: the handler serves the query a second
		// time and that response is discarded, but its side effects (cache
		// fills, authoritative arrivals) persist. TCP streams never
		// duplicate. The duplicate overlaps the original in real time, so
		// no extra latency is charged.
		if dstFP != nil && dstFP.DuplicateRate > 0 && !c.tcp && lr.roll() < dstFP.DuplicateRate {
			n.noteFault(ctx, FaultDuplicate, c.src, dst)
			dupMeter := getMeter()
			//cdelint:allow errflow the duplicate's response and error are discarded by design; only the original is returned
			_, _ = safeServe(h.handler, context.WithValue(ctx, latencyMeterKey{}, dupMeter), c.src, decoded)
			meterPool.Put(dupMeter)
		}
	}
	handlerTime := meter.total()

	// In-flight truncation: the response loses its record sections and
	// gains the TC bit, pushing TCP-capable clients to re-ask via
	// Conn.TCP / udpnet's FallbackTCP. TCP exchanges are immune.
	if dstFP != nil && dstFP.TruncateRate > 0 && !c.tcp && lr.roll() < dstFP.TruncateRate {
		n.noteFault(ctx, FaultTruncate, c.src, dst)
		//cdelint:allow hotalloc injected-truncation path; the synthesized response is the product
		tr := dnswire.NewResponse(decoded)
		tr.Header.RCode = resp.Header.RCode
		tr.Header.RecursionAvailable = resp.Header.RecursionAvailable
		tr.Header.Authoritative = resp.Header.Authoritative
		tr.Header.Truncated = true
		resp = tr
	}

	// The query bytes are fully decoded; reuse the same scratch for the
	// response direction.
	respWire, err := resp.AppendPack(wire[:0])
	*scratch = respWire[:0]
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	n.mu.Lock()
	n.stats.BytesRecvd += int64(len(respWire))
	n.mu.Unlock()
	mSent.Inc()

	returnWay := srcProfile.OneWay + h.profile.OneWay +
		lr.jitter(srcProfile.Jitter) + lr.jitter(h.profile.Jitter)

	// Response packet subject to loss as well.
	if lr.lostPacket(fs, srcProfile, true) || lr.lostPacket(fs, h.profile, false) {
		n.mu.Lock()
		n.stats.Lost++
		n.mu.Unlock()
		mLost.Inc()
		total := timeout + handlerTime
		chargeUpstream(ctx, total)
		return nil, total, ErrTimeout
	}

	// Late response: it arrives after the client's retransmission timer,
	// so the client sees a timeout (and pays for it) even though the
	// server did all its work.
	if dstFP != nil && dstFP.LateRate > 0 && lr.roll() < dstFP.LateRate {
		n.noteFault(ctx, FaultLate, c.src, dst)
		total := timeout + handlerTime
		chargeUpstream(ctx, total)
		return nil, total, ErrTimeout
	}

	respDecoded, err := dnswire.Unpack(respWire)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %w", ErrMalformed, err)
	}

	rtt := oneWay + handlerTime + returnWay
	if c.tcp {
		// TCP pays a handshake round trip before the query flows.
		rtt += oneWay + returnWay
	}
	//cdelint:allow hotalloc per-destination histogram is cached; metrics were opted into by attaching a registry
	n.rttHist(reg, dst).Observe(rtt.Microseconds())
	chargeUpstream(ctx, rtt)
	return respDecoded, rtt, nil
}

// noteFault records one injected fault in the always-on Stats mirror, the
// metrics registry (when attached) and the context's trace (when present).
// The switch covers every FaultKind member; the exhaustive analyzer keeps
// it that way when a new kind is added.
func (n *Network) noteFault(ctx context.Context, kind FaultKind, src, dst netip.Addr) {
	n.mu.Lock()
	var ctr *metrics.Counter
	switch kind {
	case FaultServFail:
		n.stats.Faults.ServFail++
		ctr = n.mServFail
	case FaultRefused:
		n.stats.Faults.Refused++
		ctr = n.mRefused
	case FaultTruncate:
		n.stats.Faults.Truncated++
		ctr = n.mTruncated
	case FaultDuplicate:
		n.stats.Faults.Duplicated++
		ctr = n.mDuplicated
	case FaultLate:
		n.stats.Faults.Late++
		ctr = n.mLate
	case FaultOutage:
		n.stats.Faults.Outage++
		ctr = n.mOutage
	}
	n.mu.Unlock()
	ctr.Inc()
	//cdelint:allow hotalloc fault notes format and box only when a fault fired, off the steady-state path
	trace.Addf(ctx, "fault", "%s: %v -> %v", string(kind), src, dst)
}
