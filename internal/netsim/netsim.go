// Package netsim provides the simulated Internet over which the CDE
// reproduction runs: hosts keyed by IP address, per-host latency profiles,
// per-host Bernoulli packet loss, and an Exchanger abstraction that the
// probers, resolution platforms and authoritative nameservers all use.
//
// Every simulated exchange round-trips through the real DNS wire codec
// (dnswire.Pack / dnswire.Unpack), so the simulation exercises exactly the
// bytes a real deployment would emit. The same Exchanger interface is
// implemented over real UDP sockets by package udpnet, which is how the
// library doubles as a live measurement tool.
//
// Since PR 7 the transmission core is a discrete-event scheduler
// (internal/netsim/des): each exchange is a chain of events — launch,
// delivery, completion — on a des.Scheduler, so a single event loop can
// carry millions of concurrent stub clients. Conn.Exchange remains a
// blocking call (it drives a pooled private scheduler to completion);
// Conn.ExchangeEvent exposes the asynchronous chain for callers that
// multiplex many exchanges on one scheduler. See DESIGN.md §10.
package netsim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnscde/internal/detpar"
	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
	"dnscde/internal/trace"
)

// Simulation errors.
var (
	// ErrTimeout reports a lost query or lost response; the paper's §V
	// carpet-bombing technique exists to tolerate exactly this.
	ErrTimeout = errors.New("netsim: query timed out (packet loss)")
	// ErrNoRoute reports a destination IP with no registered host.
	ErrNoRoute = errors.New("netsim: no host at destination address")
	// ErrMalformed reports a message that failed wire encoding or decoding.
	ErrMalformed = errors.New("netsim: malformed message")
)

// Handler processes one DNS query arriving at a simulated host.
//
// The handler may issue nested exchanges (a recursive resolver querying an
// authoritative server does); nested latency is accumulated onto the
// enclosing exchange via the context, so the round-trip time observed by
// the original client includes upstream resolution time — the basis of the
// paper's §IV-B3 timing side channel.
type Handler interface {
	ServeDNS(ctx context.Context, src netip.Addr, query *dnswire.Message) (*dnswire.Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, src netip.Addr, query *dnswire.Message) (*dnswire.Message, error)

var _ Handler = HandlerFunc(nil)

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(ctx context.Context, src netip.Addr, query *dnswire.Message) (*dnswire.Message, error) {
	return f(ctx, src, query)
}

// LinkProfile describes the network path characteristics of one host.
type LinkProfile struct {
	// OneWay is the base one-way delay between this host and the
	// simulated backbone.
	OneWay time.Duration
	// Jitter is the maximum uniform random extra delay added per
	// direction.
	Jitter time.Duration
	// Loss is the probability in [0,1] that a single packet to or from
	// this host is dropped. The paper measured ~11% in Iran, ~4% in China
	// and ~1% elsewhere.
	Loss float64
	// Faults, when non-nil, layers deterministic fault injection on the
	// link: Gilbert–Elliott burst loss (replacing Loss), injected
	// SERVFAIL/REFUSED, truncation, duplication, late responses and
	// scheduled outages. See FaultProfile. A pointer keeps LinkProfile
	// comparable with ==.
	Faults *FaultProfile
}

// DefaultLinkProfile matches the paper's "typical" network: ~1% loss and a
// modest regional delay.
func DefaultLinkProfile() LinkProfile {
	return LinkProfile{OneWay: 10 * time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.01}
}

type host struct {
	handler Handler
	profile LinkProfile
	// down marks a transient outage toggled by SetDown; queries to a down
	// host vanish (client times out). Atomic so the hot path reads it
	// without holding any lock.
	down atomic.Bool
}

// netConfig is the network's immutable configuration snapshot: timeout,
// client-side profile and pre-created metric handles. Writers (SetMetrics,
// SetTimeout, SetClientProfile) copy-mutate-store a fresh pointer under
// Network.mu; the exchange hot path loads it once per exchange with a
// single atomic read and never touches a mutex.
type netConfig struct {
	// timeout is the simulated time charged for a lost packet, mirroring
	// a resolver's retransmission timer.
	timeout time.Duration

	// clientProfile is the link profile applied to source addresses with
	// no registered host (probers Bind arbitrary client addresses). It
	// defaults to the zero profile — a perfect local link — and is
	// settable via SetClientProfile.
	clientProfile LinkProfile

	// metrics, when non-nil, mirrors packet-level events into the
	// accounting registry; the handles are pre-created so the hot path
	// pays one nil check per event.
	metrics     *metrics.Registry
	mSent       *metrics.Counter
	mRecvd      *metrics.Counter
	mLost       *metrics.Counter
	mRetries    *metrics.Counter
	mServFail   *metrics.Counter
	mRefused    *metrics.Counter
	mTruncated  *metrics.Counter
	mDuplicated *metrics.Counter
	mLate       *metrics.Counter
	mOutage     *metrics.Counter
}

// statShardCount is the number of counter shards; a power of two so the
// shard index is a mask of the source-address hash.
const statShardCount = 16

// statShard is one shard of the network counters. Every field is an
// atomic, and the struct is padded to two cache lines so concurrent
// sources hashing to different shards never false-share. Exchanges update
// their source's shard with plain atomic adds; SnapshotStats folds all
// shards into a Stats value. This replaces the per-exchange mutex
// acquisitions the original Exchange paid four times per round trip.
type statShard struct {
	exchanges  atomic.Int64
	lost       atomic.Int64
	bytesSent  atomic.Int64
	bytesRecvd atomic.Int64
	servfail   atomic.Int64
	refused    atomic.Int64
	truncated  atomic.Int64
	duplicated atomic.Int64
	late       atomic.Int64
	outage     atomic.Int64
	_          [48]byte // pad 10×8 bytes up to 128 (two cache lines)
}

// Network is a simulated Internet. The zero value is not usable; use New.
// Network is safe for concurrent use.
type Network struct {
	// mu serialises configuration writers; the exchange path never takes
	// it (hosts and config are read via atomic pointer) except for the
	// one-off host-view rebuild after a registration change.
	mu    sync.Mutex
	hosts sync.Map // netip.Addr -> *host
	// hostsView caches an immutable snapshot of hosts for the exchange
	// path: sync.Map.Load boxes the 24-byte netip.Addr key into an
	// interface on every call, while a plain map read allocates nothing.
	// Register/Unregister invalidate the view (store nil) under mu; the
	// next lookup rebuilds it, also under mu, so a rebuild can never
	// overwrite a newer invalidation with a stale snapshot.
	hostsView atomic.Pointer[map[netip.Addr]*host]

	// seed derives the per-source-address RNG streams. Loss and jitter
	// draws for an exchange come from the RNG of its *source* address
	// (see srcRand), so concurrent exchanges from different sources never
	// contend on — or scheduling-dependently interleave — one stream.
	seed    int64
	srcRNGs sync.Map // netip.Addr -> *lockedRand

	cfg atomic.Pointer[netConfig]

	shards [statShardCount]statShard

	linkRTTHists sync.Map // netip.Addr -> *metrics.Histogram
}

// Stats counts network-level events, used by tests and by the carpet-
// bombing experiment to confirm configured loss rates.
type Stats struct {
	Exchanges  int64
	Lost       int64
	BytesSent  int64
	BytesRecvd int64
	// Faults counts injected faults by kind; always maintained, registry
	// or not, so tests can assert on injection without metrics plumbing.
	Faults FaultStats
}

// New creates an empty network with deterministic randomness: seed fixes
// every per-source RNG stream (see srcRand).
func New(seed int64) *Network {
	n := &Network{seed: seed}
	n.cfg.Store(&netConfig{timeout: 2 * time.Second})
	return n
}

// lockedRand is one source address' persistent RNG stream. The lock makes
// a *shared* source safe (two goroutines probing from the same address
// draw atomically); determinism additionally requires that at most one
// goroutine uses a given source at a time, which the detpar-converted
// callers guarantee by assigning each parallel trial its own addresses.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
	// src is the counting source backing rng; it records the stream
	// position so a world snapshot can capture — and a restore replay —
	// exactly how many values this source has drawn.
	src *detpar.CountingSource
	// shard is the stat shard this source's exchanges account into,
	// cached here so the hot path pays the address hash exactly once.
	shard *statShard
	// flows holds per-destination fault state (exchange counters and
	// Gilbert–Elliott chain positions); nil until a faulted link is used.
	flows map[netip.Addr]*flowState
}

func (lr *lockedRand) roll() float64 {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.rng.Float64()
}

func (lr *lockedRand) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return time.Duration(lr.rng.Int63n(int64(max) + 1))
}

// srcRand returns the persistent RNG stream for exchanges originating at
// src, creating it on first use. The stream is a pure function of
// (network seed, src), so the sequence of draws a source consumes depends
// only on its own exchange history — never on what other sources are
// doing concurrently. It lives on the Network rather than the Conn
// because callers re-Bind the same source per resolution; a per-Conn
// stream would replay identical draws every time.
func (n *Network) srcRand(src netip.Addr) *lockedRand {
	if lr, ok := n.srcRNGs.Load(src); ok {
		return lr.(*lockedRand)
	}
	b := src.As16()
	lo := binary.BigEndian.Uint64(b[:8])
	hi := binary.BigEndian.Uint64(b[8:])
	cs := detpar.NewCountingSource(detpar.Derive(n.seed, lo, hi))
	lr := &lockedRand{
		rng:   rand.New(cs),
		src:   cs,
		shard: &n.shards[(lo^hi)&(statShardCount-1)],
	}
	actual, _ := n.srcRNGs.LoadOrStore(src, lr)
	return actual.(*lockedRand)
}

// SetMetrics attaches an accounting registry: every subsequent exchange
// counts query packets under "netsim.packets.sent", delivered responses
// under "netsim.packets.recvd", losses under "netsim.packets.lost",
// retransmissions under "netsim.retries", and records per-destination
// round-trip times in "netsim.rtt_us.<dst>" histograms (microseconds).
// A nil registry detaches instrumentation.
func (n *Network) SetMetrics(reg *metrics.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cfg := *n.cfg.Load()
	cfg.metrics = reg
	cfg.mSent = reg.Counter("netsim.packets.sent")
	cfg.mRecvd = reg.Counter("netsim.packets.recvd")
	cfg.mLost = reg.Counter("netsim.packets.lost")
	cfg.mRetries = reg.Counter("netsim.retries")
	cfg.mServFail = reg.Counter("netsim.faults.servfail")
	cfg.mRefused = reg.Counter("netsim.faults.refused")
	cfg.mTruncated = reg.Counter("netsim.faults.truncated")
	cfg.mDuplicated = reg.Counter("netsim.faults.duplicated")
	cfg.mLate = reg.Counter("netsim.faults.late")
	cfg.mOutage = reg.Counter("netsim.faults.outage")
	n.cfg.Store(&cfg)
	// Drop handles cached against a previously attached registry.
	n.linkRTTHists.Range(func(k, _ any) bool {
		n.linkRTTHists.Delete(k)
		return true
	})
}

// rttHist returns the per-destination RTT histogram, caching the handle so
// steady-state exchanges skip the registry's name lookup.
func (n *Network) rttHist(reg *metrics.Registry, dst netip.Addr) *metrics.Histogram {
	if reg == nil {
		return nil
	}
	if h, ok := n.linkRTTHists.Load(dst); ok {
		return h.(*metrics.Histogram)
	}
	h := reg.Histogram("netsim.rtt_us."+dst.String(), metrics.RTTBoundsUS)
	n.linkRTTHists.Store(dst, h)
	return h
}

// SetTimeout sets the simulated duration charged to an exchange whose query
// or response packet is lost.
func (n *Network) SetTimeout(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cfg := *n.cfg.Load()
	cfg.timeout = d
	n.cfg.Store(&cfg)
}

// SetClientProfile sets the link profile applied to *unregistered* source
// addresses — the probers' client side of every exchange. Historically an
// unregistered source silently got a zero profile (no loss, no delay, no
// faults) even when callers intended otherwise; the fallback is now
// explicit and configurable. The default remains the zero profile, so
// existing simulations are unchanged.
func (n *Network) SetClientProfile(p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cfg := *n.cfg.Load()
	cfg.clientProfile = p
	n.cfg.Store(&cfg)
}

// ClientProfile returns the profile applied to unregistered sources.
func (n *Network) ClientProfile() LinkProfile {
	return n.cfg.Load().clientProfile
}

// SetDown marks the host at addr as down (or back up): while down, queries
// to it vanish and clients time out, modelling the paper's §II-B transient
// platform outages without losing the host's registration or cache state
// the way Unregister would.
func (n *Network) SetDown(addr netip.Addr, down bool) {
	if h, ok := n.lookup(addr); ok {
		h.down.Store(down)
	}
}

// Register attaches handler to addr with the given link profile. It
// replaces any previous registration for addr.
func (n *Network) Register(addr netip.Addr, profile LinkProfile, handler Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts.Store(addr, &host{handler: handler, profile: profile})
	n.hostsView.Store(nil)
}

// Unregister removes the host at addr, simulating a machine going down —
// the paper's §II-B resilience use case (a platform with four caches of
// which two are down).
func (n *Network) Unregister(addr netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts.Delete(addr)
	n.hostsView.Store(nil)
}

// Registered reports whether a host is attached at addr.
func (n *Network) Registered(addr netip.Addr) bool {
	_, ok := n.hosts.Load(addr)
	return ok
}

// SnapshotStats folds the per-shard counters into one Stats value. The
// fold reads each shard atomically; a snapshot taken while exchanges are
// in flight is a consistent lower bound, and one taken at quiescence is
// exact — the same contract the old mutex-guarded struct offered.
func (n *Network) SnapshotStats() Stats {
	var s Stats
	for i := range n.shards {
		sh := &n.shards[i]
		s.Exchanges += sh.exchanges.Load()
		s.Lost += sh.lost.Load()
		s.BytesSent += sh.bytesSent.Load()
		s.BytesRecvd += sh.bytesRecvd.Load()
		s.Faults.ServFail += sh.servfail.Load()
		s.Faults.Refused += sh.refused.Load()
		s.Faults.Truncated += sh.truncated.Load()
		s.Faults.Duplicated += sh.duplicated.Load()
		s.Faults.Late += sh.late.Load()
		s.Faults.Outage += sh.outage.Load()
	}
	return s
}

// lookup returns the host at addr. It reads the immutable host view —
// a plain map keyed by the concrete address type — so the per-exchange
// route lookup neither locks nor boxes.
//
//cdelint:hotpath
func (n *Network) lookup(addr netip.Addr) (*host, bool) {
	m := n.hostsView.Load()
	if m == nil {
		m = n.rebuildHostsView() //cdelint:allow hotalloc cold path: runs once per registration change, not per exchange
	}
	h, ok := (*m)[addr]
	return h, ok
}

// rebuildHostsView snapshots the hosts map into a fresh immutable view.
// It runs under mu so it cannot publish a snapshot that is missing a
// registration committed after the view was invalidated.
func (n *Network) rebuildHostsView() *map[netip.Addr]*host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m := n.hostsView.Load(); m != nil {
		return m
	}
	m := make(map[netip.Addr]*host)
	n.hosts.Range(func(k, v any) bool {
		m[k.(netip.Addr)] = v.(*host)
		return true
	})
	n.hostsView.Store(&m)
	return &m
}

type latencyMeterKey struct{}

// latencyMeter accumulates simulated upstream time spent by a handler so
// that nested exchanges inflate the caller-observed RTT.
type latencyMeter struct {
	mu      sync.Mutex
	elapsed time.Duration
}

func (lm *latencyMeter) add(d time.Duration) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.elapsed += d
}

func (lm *latencyMeter) total() time.Duration {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.elapsed
}

// meterPool recycles latency meters across exchanges. One meter used to
// escape into the handler context per round trip (two when duplication
// fired); pooling removes that steady-state allocation. Safe because
// handlers run synchronously inside the delivery event — nothing retains
// the meter after safeServe returns.
var meterPool = sync.Pool{New: func() any { return new(latencyMeter) }}

// getMeter returns a zeroed meter from the pool.
func getMeter() *latencyMeter {
	lm := meterPool.Get().(*latencyMeter)
	lm.elapsed = 0
	return lm
}

// chargeUpstream adds d to the latency meter of the exchange enclosing ctx,
// if any. Handlers performing work outside this package's Exchange path
// (e.g. artificial processing delay) may call ChargeLatency instead.
func chargeUpstream(ctx context.Context, d time.Duration) {
	if lm, ok := ctx.Value(latencyMeterKey{}).(*latencyMeter); ok {
		lm.add(d)
	}
}

// ChargeLatency records extra simulated processing time against the
// exchange enclosing ctx. Handlers use it to model cache-lookup or
// computation delay. Synchronous handlers charge the enclosing exchange's
// latency meter; code running under a sharded scheduler's process bridge
// (no meter in scope — nested time advances on the event loops instead)
// charges the process, delaying its next injected event by d.
func ChargeLatency(ctx context.Context, d time.Duration) {
	if _, ok := ctx.Value(latencyMeterKey{}).(*latencyMeter); ok {
		chargeUpstream(ctx, d)
		return
	}
	if p := processFrom(ctx); p != nil {
		p.Advance(d)
	}
}

// safeServe invokes a handler, converting panics into errors so one
// faulty simulated host cannot take down the whole network — the same
// boundary recovery a real server framework applies per request.
func safeServe(h Handler, ctx context.Context, src netip.Addr, query *dnswire.Message) (resp *dnswire.Message, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("netsim: handler panic: %v", r)
		}
	}()
	return h.ServeDNS(ctx, src, query)
}

// Exchanger sends one DNS query and waits for the response, reporting the
// (simulated or real) round-trip time.
type Exchanger interface {
	Exchange(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error)
}

// Conn is an Exchanger bound to a simulated source address.
type Conn struct {
	net *Network
	src netip.Addr
	// tcp marks a TCP-semantics exchange: immune to in-flight truncation
	// and duplication, at the cost of one extra handshake round trip.
	tcp bool
}

var _ Exchanger = (*Conn)(nil)

// Bind returns an Exchanger that sends from src. The source needs no
// registered handler; registration is only required to *receive* queries.
func (n *Network) Bind(src netip.Addr) *Conn {
	return &Conn{net: n, src: src}
}

// Src returns the bound source address.
func (c *Conn) Src() netip.Addr { return c.src }

// TCP returns a copy of the Conn that exchanges with TCP semantics: the
// simulated path never truncates or duplicates its messages (TCP is a
// byte stream with its own retransmission), and every exchange is charged
// one extra round trip for the connection handshake — the same cost shape
// udpnet's real-socket TCP fallback pays.
func (c *Conn) TCP() *Conn {
	cc := *c
	cc.tcp = true
	return &cc
}

// retryCounter exposes the network's retransmission counter to
// ExchangeRetry (nil when no registry is attached).
func (c *Conn) retryCounter() *metrics.Counter {
	return c.net.cfg.Load().mRetries
}

// scratchPool recycles the wire-encoding buffers used by exchanges. Safe
// because dnswire.Unpack never aliases its input: every decoded field is
// copied out of the wire bytes, so the scratch can be reused the moment
// Unpack returns.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// noteFault records one injected fault in the always-on shard mirror, the
// metrics registry (when attached) and the context's trace (when present).
// The switch covers every FaultKind member; the exhaustive analyzer keeps
// it that way when a new kind is added.
func noteFault(ctx context.Context, cfg *netConfig, shard *statShard, kind FaultKind, src, dst netip.Addr) {
	var ctr *metrics.Counter
	switch kind {
	case FaultServFail:
		shard.servfail.Add(1)
		ctr = cfg.mServFail
	case FaultRefused:
		shard.refused.Add(1)
		ctr = cfg.mRefused
	case FaultTruncate:
		shard.truncated.Add(1)
		ctr = cfg.mTruncated
	case FaultDuplicate:
		shard.duplicated.Add(1)
		ctr = cfg.mDuplicated
	case FaultLate:
		shard.late.Add(1)
		ctr = cfg.mLate
	case FaultOutage:
		shard.outage.Add(1)
		ctr = cfg.mOutage
	}
	ctr.Inc()
	//cdelint:allow hotalloc fault notes format and box only when a fault fired, off the steady-state path
	trace.Addf(ctx, "fault", "%s: %v -> %v", string(kind), src, dst)
}
