package netsim

import (
	"context"
	"encoding/binary"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/netsim/des"
)

// Exchange event-chain opcodes: one exchange is a linear chain of events
// spanning at most two scheduler lanes. opLaunch runs on the source's
// (home) lane: it packs the query, draws the outbound loss/jitter and
// either dies to opTimeout or travels to opDeliver. opDeliver runs on the
// destination's lane: decode, injected faults, the handler (synchronously,
// or as a native event chain via EventHandler), and response packing; it
// hops back to the home lane as opReturn, which draws the return path and
// terminates in opComplete or opTimeout at the exchange's true simulated
// end time. opFail carries a destination-side error (malformed wire,
// handler failure) home. The hops use des.Scheduler.SendTo, so on a
// standalone scheduler they are ordinary same-lane events — the chain
// dispatches the same number of events in every mode.
const (
	opLaunch uint8 = iota
	opDeliver
	opReturn
	opComplete
	opTimeout
	opFail
)

// addrKey folds an address into the 64-bit partition key the sharded
// scheduler hashes lanes from — the same lo^hi fold srcRand uses for its
// stat shard, so a source's exchanges, stats and RNG stream all key off
// one value.
//
//cdelint:hotpath
func addrKey(a netip.Addr) uint64 {
	b := a.As16()
	return binary.BigEndian.Uint64(b[:8]) ^ binary.BigEndian.Uint64(b[8:])
}

// LaneKey is the sharded-lane partition key of the connection's bound
// source address — the lane-affinity hint the retry layer uses to pick
// the event loop a source's exchanges launch on.
func (c *Conn) LaneKey() uint64 { return addrKey(c.src) }

// EventExchanger is implemented by transports that can run an exchange as
// an event chain on a caller-owned scheduler instead of blocking: the
// exchange is enqueued immediately, and done fires from the scheduler's
// dispatch loop at the exchange's simulated completion time. Callers
// multiplexing many concurrent clients on one scheduler (the scale
// experiment, udpnet's TCP-fallback chain) drive the scheduler themselves.
// When sched is a lane of a sharded scheduler, done fires on that same
// lane; the destination half of the chain may run on another lane.
type EventExchanger interface {
	ExchangeEvent(ctx context.Context, sched *des.Scheduler, query *dnswire.Message, dst netip.Addr, done func(*dnswire.Message, time.Duration, error))
}

var _ EventExchanger = (*Conn)(nil)

// exchangeState is the pooled per-exchange actor: all flow state for one
// query/response round trip lives here by value, and the same record is
// recycled through exchangeStatePool across exchanges. Stage methods fire
// from the scheduler; the draw order against the source's RNG stream is
// byte-identical to the historical blocking Exchange (see DESIGN.md §10,
// §12). Fields written on the destination lane (wire, handlerTime) are
// read on the home lane only after a simulated-time barrier, which is
// what makes the cross-lane handoff race-free without any locking.
type exchangeState struct {
	sched *des.Scheduler
	net   *Network
	c     *Conn
	ctx   context.Context
	query *dnswire.Message
	dst   netip.Addr

	cfg        *netConfig
	dstHost    *host
	srcProfile LinkProfile
	lr         *lockedRand
	fs         *flowState
	flowIdx    int

	homeLane int
	dstSched *des.Scheduler

	scratch *[]byte
	wire    []byte
	decoded *dnswire.Message

	start       des.Time
	deliverAt   des.Time
	oneWay      time.Duration
	handlerTime time.Duration

	resp *dnswire.Message
	rtt  time.Duration
	err  error

	// done, when non-nil, marks the asynchronous mode: settle invokes it
	// and returns the state to the pool. When nil, the blocking wrapper
	// reads the result fields after the scheduler drains.
	done func(*dnswire.Message, time.Duration, error)
}

var _ des.Actor = (*exchangeState)(nil)
var _ Responder = (*exchangeState)(nil)

var exchangeStatePool = sync.Pool{New: func() any { return new(exchangeState) }}

//cdelint:hotpath
func getExchangeState() *exchangeState {
	return exchangeStatePool.Get().(*exchangeState)
}

//cdelint:hotpath
func putExchangeState(st *exchangeState) {
	*st = exchangeState{}
	exchangeStatePool.Put(st)
}

// schedPool recycles private schedulers for the blocking Exchange wrapper
// and for nested exchanges issued by handlers (each nesting level takes
// its own scheduler, so handler recursion needs no continuation-passing).
var schedPool = sync.Pool{New: func() any { return des.NewScheduler() }}

// Fire dispatches one stage of the exchange chain.
//
//cdelint:hotpath
func (st *exchangeState) Fire(now des.Time, op uint8) {
	switch op {
	case opLaunch:
		st.launch(now)
	case opDeliver:
		st.deliver(now)
	case opReturn:
		st.returnPath()
	case opComplete:
		chargeUpstream(st.ctx, st.rtt)
		st.settle(st.resp, st.rtt, nil)
	case opTimeout:
		chargeUpstream(st.ctx, st.rtt)
		st.settle(nil, st.rtt, ErrTimeout)
	case opFail:
		st.settle(nil, st.rtt, st.err)
	}
}

// settle terminates the chain: release the wire scratch, record the
// result, and in asynchronous mode deliver it and recycle the state.
// It always runs on the home lane.
func (st *exchangeState) settle(resp *dnswire.Message, rtt time.Duration, err error) {
	if st.scratch != nil {
		scratchPool.Put(st.scratch)
		st.scratch = nil
		st.wire = nil
	}
	st.resp, st.rtt, st.err = resp, rtt, err
	if st.done != nil {
		done := st.done
		st.done = nil
		done(resp, rtt, err)
		putExchangeState(st)
	}
}

// failTo hops a destination-side error back to the home lane, where
// settle may touch home-lane state (the caller's done callback).
//
//cdelint:hotpath
func (st *exchangeState) failTo(now des.Time, err error) {
	st.rtt = 0
	st.err = err
	st.dstSched.SendTo(st.homeLane, now, st, opFail)
}

// loseToTimeout arms the client's retransmission timer: the exchange
// terminates at start+timeout with ErrTimeout, and the charge is exactly
// the timeout — the timer runs concurrently with any server-side work, so
// handler time is never added on top (the pre-DES code overcharged the
// response-loss and late paths by handlerTime). Runs on the home lane.
//
//cdelint:hotpath
func (st *exchangeState) loseToTimeout() {
	st.rtt = st.cfg.timeout
	st.sched.ScheduleAt(st.start.Add(st.cfg.timeout), st, opTimeout)
}

// launch is the query-side stage, on the home lane: stats, routing,
// fault-flow state, wire packing and the outbound loss/jitter draws, in
// exactly the order the blocking Exchange performed them.
//
//cdelint:hotpath
func (st *exchangeState) launch(now des.Time) {
	if err := st.ctx.Err(); err != nil {
		st.settle(nil, 0, err)
		return
	}
	n := st.net
	cfg := n.cfg.Load()
	st.cfg = cfg
	st.start = now

	// The source stream carries both the RNG and the stat shard; creating
	// it consumes no draws, so hoisting it above the route lookup leaves
	// every subsequent draw identical to the historical order.
	//cdelint:allow hotalloc per-source RNG stream is created once and cached in a sync.Map
	lr := n.srcRand(st.c.src)
	st.lr = lr
	lr.shard.exchanges.Add(1)

	h, ok := n.lookup(st.dst)
	if !ok {
		st.settle(nil, 0, fmt.Errorf("%w: %v", ErrNoRoute, st.dst))
		return
	}
	st.dstHost = h
	// The destination's lane is a pure function of its address — the same
	// splitmix64 mix detpar derives RNG streams from — so the delivery
	// half of the chain lands on the lane that owns the destination at
	// any shard count. Standalone schedulers answer lane 0 for everything
	// and SendTo degenerates to ScheduleAt.
	st.homeLane = st.sched.LaneIndex()
	dstLane := st.sched.LaneFor(addrKey(st.dst))
	st.dstSched = st.sched.LaneScheduler(dstLane)
	// An unregistered source (the usual case for probers, which Bind
	// arbitrary client addresses) gets the network's configurable client
	// profile rather than a silent zero profile.
	srcProfile := cfg.clientProfile
	if sh, ok := n.lookup(st.c.src); ok {
		srcProfile = sh.profile
	}
	st.srcProfile = srcProfile

	// Fault state for this (src → dst) flow, only materialised when a
	// FaultProfile is attached to either side: the zero-fault path must
	// consume byte-identical RNG draws to the pre-fault-layer simulator.
	dstFP := h.profile.Faults
	st.fs = nil
	if srcProfile.Faults != nil || dstFP != nil {
		st.fs = lr.flow(st.dst)
		st.flowIdx = lr.nextFlowIdx(st.fs)
	}

	scratch := scratchPool.Get().(*[]byte)
	st.scratch = scratch
	wire, err := st.query.AppendPack((*scratch)[:0])
	*scratch = wire[:0]
	if err != nil {
		st.settle(nil, 0, fmt.Errorf("%w: %w", ErrMalformed, err))
		return
	}
	st.wire = wire
	lr.shard.bytesSent.Add(int64(len(wire)))
	cfg.mSent.Inc()

	// Transient outage: the destination is down (operator SetDown or a
	// scheduled window); the query vanishes and the client times out.
	if h.down.Load() || (dstFP != nil && inOutage(dstFP.Outages, st.flowIdx)) {
		lr.shard.lost.Add(1)
		cfg.mLost.Inc()
		noteFault(st.ctx, cfg, lr.shard, FaultOutage, st.c.src, st.dst)
		st.loseToTimeout()
		return
	}

	st.oneWay = srcProfile.OneWay + h.profile.OneWay +
		lr.jitter(srcProfile.Jitter) + lr.jitter(h.profile.Jitter)

	// Query packet subject to loss on either endpoint's link. The short-
	// circuit matters: with no faults attached this is exactly the
	// historical two-draw-max Bernoulli pattern.
	if lr.lostPacket(st.fs, srcProfile, true) || lr.lostPacket(st.fs, h.profile, false) {
		lr.shard.lost.Add(1)
		cfg.mLost.Inc()
		st.loseToTimeout()
		return
	}

	st.sched.SendTo(dstLane, st.start.Add(st.oneWay), st, opDeliver)
}

// deliver is the server-side stage, on the destination's lane: decode,
// injected faults, then the handler — as a native event chain when the
// destination implements EventHandler and the universe is sharded,
// synchronously otherwise (nested exchanges then take their own pooled
// scheduler, exactly the legacy behaviour).
//
//cdelint:hotpath
func (st *exchangeState) deliver(now des.Time) {
	cfg, lr, h := st.cfg, st.lr, st.dstHost
	dstFP := h.profile.Faults
	st.deliverAt = now

	decoded, err := dnswire.Unpack(st.wire)
	if err != nil {
		st.failTo(now, fmt.Errorf("%w: %w", ErrMalformed, err))
		return
	}
	st.decoded = decoded

	// Injected server failure: the destination short-circuits with
	// SERVFAIL/REFUSED instead of resolving — one draw covers both rates.
	if dstFP != nil && (dstFP.ServFailRate > 0 || dstFP.RefusedRate > 0) {
		var injected dnswire.RCode
		injectedOK := false
		switch u := lr.roll(); {
		case u < dstFP.ServFailRate:
			injected, injectedOK = dnswire.RCodeServFail, true
			noteFault(st.ctx, cfg, lr.shard, FaultServFail, st.c.src, st.dst)
		case u < dstFP.ServFailRate+dstFP.RefusedRate:
			injected, injectedOK = dnswire.RCodeRefused, true
			noteFault(st.ctx, cfg, lr.shard, FaultRefused, st.c.src, st.dst)
		}
		if injectedOK {
			//cdelint:allow hotalloc injected-fault path; the synthesized response is the product
			resp := dnswire.NewResponse(decoded)
			resp.Header.RCode = injected
			st.handlerTime = 0
			st.finishServe(now, resp)
			return
		}
	}

	// Event-native path: on a sharded universe, a handler that speaks
	// EventHandler serves the query as its own event chain on this lane
	// and calls st.Respond when done — recursion interleaves on the loop.
	if eh, ok := h.handler.(EventHandler); ok && st.dstSched.Sharded() != nil {
		eh.ServeDNSEvent(st.ctx, st.dstSched, st.c.src, decoded, st)
		return
	}

	// Synchronous path: run the handler with a fresh meter so its nested
	// exchanges are charged to this round trip.
	meter := getMeter()
	resp, err := safeServe(h.handler, context.WithValue(st.ctx, latencyMeterKey{}, meter), st.c.src, decoded)
	if err != nil {
		meterPool.Put(meter)
		st.failTo(now, fmt.Errorf("netsim: handler at %v: %w", st.dst, err))
		return
	}
	// Duplicated query delivery: the handler serves the query a second
	// time and that response is discarded, but its side effects (cache
	// fills, authoritative arrivals) persist. TCP streams never
	// duplicate. The duplicate overlaps the original in real time, so
	// no extra latency is charged.
	if dstFP != nil && dstFP.DuplicateRate > 0 && !st.c.tcp && lr.roll() < dstFP.DuplicateRate {
		noteFault(st.ctx, cfg, lr.shard, FaultDuplicate, st.c.src, st.dst)
		dupMeter := getMeter()
		//cdelint:allow errflow the duplicate's response and error are discarded by design; only the original is returned
		_, _ = safeServe(h.handler, context.WithValue(st.ctx, latencyMeterKey{}, dupMeter), st.c.src, decoded)
		meterPool.Put(dupMeter)
	}
	st.handlerTime = meter.total()
	meterPool.Put(meter)
	st.finishServe(now, resp)
}

// Respond implements Responder: the event-native handler's completion,
// firing on the destination lane at the simulated instant the response is
// ready. Handler time is the simulated span since delivery — the event
// world's replacement for the synchronous path's latency meter.
//
//cdelint:hotpath
func (st *exchangeState) Respond(now des.Time, resp *dnswire.Message, err error) {
	if err != nil {
		st.failTo(now, fmt.Errorf("netsim: handler at %v: %w", st.dst, err))
		return
	}
	st.handlerTime = now.Sub(st.deliverAt)
	cfg, lr, h := st.cfg, st.lr, st.dstHost
	dstFP := h.profile.Faults
	// Duplicated delivery, event flavour: serve the query again into a
	// discarding responder. The duplicate's chain runs after this draw,
	// so its side effects land slightly later in simulated time; its
	// response is dropped either way.
	if dstFP != nil && dstFP.DuplicateRate > 0 && !st.c.tcp && lr.roll() < dstFP.DuplicateRate {
		noteFault(st.ctx, cfg, lr.shard, FaultDuplicate, st.c.src, st.dst)
		if eh, ok := h.handler.(EventHandler); ok {
			eh.ServeDNSEvent(st.ctx, st.dstSched, st.c.src, st.decoded, discardResponder{})
		}
	}
	st.finishServe(now, resp)
}

// finishServe completes the destination-side work — in-flight truncation,
// response packing, received-traffic accounting — and hops the chain back
// to the home lane as opReturn. Runs on the destination lane.
//
//cdelint:hotpath
func (st *exchangeState) finishServe(now des.Time, resp *dnswire.Message) {
	cfg, lr, h := st.cfg, st.lr, st.dstHost
	dstFP := h.profile.Faults

	// In-flight truncation: the response loses its record sections and
	// gains the TC bit, pushing TCP-capable clients to re-ask via
	// Conn.TCP / udpnet's FallbackTCP. TCP exchanges are immune.
	if dstFP != nil && dstFP.TruncateRate > 0 && !st.c.tcp && lr.roll() < dstFP.TruncateRate {
		noteFault(st.ctx, cfg, lr.shard, FaultTruncate, st.c.src, st.dst)
		//cdelint:allow hotalloc injected-truncation path; the synthesized response is the product
		tr := dnswire.NewResponse(st.decoded)
		tr.Header.RCode = resp.Header.RCode
		tr.Header.RecursionAvailable = resp.Header.RecursionAvailable
		tr.Header.Authoritative = resp.Header.Authoritative
		tr.Header.Truncated = true
		resp = tr
	}

	// The query bytes are fully decoded; reuse the same scratch for the
	// response direction.
	respWire, err := resp.AppendPack(st.wire[:0])
	*st.scratch = respWire[:0]
	if err != nil {
		st.failTo(now, fmt.Errorf("%w: %w", ErrMalformed, err))
		return
	}
	st.wire = respWire
	// The response is a *received* packet; the pre-DES code bumped the
	// sent counter here a second time, double-counting every clean
	// exchange's traffic.
	lr.shard.bytesRecvd.Add(int64(len(respWire)))
	cfg.mRecvd.Inc()

	st.dstSched.SendTo(st.homeLane, now, st, opReturn)
}

// returnPath is the response-side stage, back on the home lane: the
// return-trip jitter/loss/late draws, response decode and RTT accounting,
// terminating in opComplete at the exchange's simulated end time.
//
//cdelint:hotpath
func (st *exchangeState) returnPath() {
	cfg, lr, h := st.cfg, st.lr, st.dstHost
	dstFP := h.profile.Faults

	returnWay := st.srcProfile.OneWay + h.profile.OneWay +
		lr.jitter(st.srcProfile.Jitter) + lr.jitter(h.profile.Jitter)

	// Response packet subject to loss as well; the client's timer fires
	// at start+timeout regardless of how long the server worked.
	if lr.lostPacket(st.fs, st.srcProfile, true) || lr.lostPacket(st.fs, h.profile, false) {
		lr.shard.lost.Add(1)
		cfg.mLost.Inc()
		st.loseToTimeout()
		return
	}

	// Late response: it arrives after the client's retransmission timer,
	// so the client sees a timeout (and pays for it) even though the
	// server did all its work.
	if dstFP != nil && dstFP.LateRate > 0 && lr.roll() < dstFP.LateRate {
		noteFault(st.ctx, cfg, lr.shard, FaultLate, st.c.src, st.dst)
		st.loseToTimeout()
		return
	}

	respDecoded, err := dnswire.Unpack(st.wire)
	if err != nil {
		st.settle(nil, 0, fmt.Errorf("%w: %w", ErrMalformed, err))
		return
	}

	rtt := st.oneWay + st.handlerTime + returnWay
	if st.c.tcp {
		// TCP pays a handshake round trip before the query flows.
		rtt += st.oneWay + returnWay
	}
	//cdelint:allow hotalloc per-destination histogram is cached; metrics were opted into by attaching a registry
	st.net.rttHist(cfg.metrics, st.dst).Observe(rtt.Microseconds())
	st.resp = respDecoded
	st.rtt = rtt
	st.sched.ScheduleAt(st.start.Add(rtt), st, opComplete)
}

// Exchange implements Exchanger. The query is packed to wire format,
// "transmitted" (subject to loss and latency), decoded, handled, and the
// response travels back the same way. The returned duration is the full
// simulated round-trip time including any upstream exchanges performed by
// the destination handler.
//
// The blocking wrapper drives a private pooled scheduler to completion;
// the exchange itself is the opLaunch/opDeliver/opReturn/opComplete event
// chain above. Exchange runs once per probe, millions of times per
// enumeration trial; its steady-state path must not allocate.
//
//cdelint:hotpath
func (c *Conn) Exchange(ctx context.Context, query *dnswire.Message, dst netip.Addr) (*dnswire.Message, time.Duration, error) {
	sched := schedPool.Get().(*des.Scheduler)
	st := getExchangeState()
	st.sched = sched
	st.net = c.net
	st.c = c
	st.ctx = ctx
	st.query = query
	st.dst = dst
	sched.Schedule(0, st, opLaunch)
	sched.Run()
	resp, rtt, err := st.resp, st.rtt, st.err
	putExchangeState(st)
	sched.Reset()
	schedPool.Put(sched)
	return resp, rtt, err
}

// ExchangeEvent implements EventExchanger: the exchange is enqueued on the
// caller's scheduler and done fires at the simulated completion time. The
// caller owns the scheduler single-threadedly; millions of concurrent
// client exchanges interleave on one event loop this way. When sched is a
// lane of a sharded universe, only the lane's own goroutine may call this,
// and done fires back on the same lane.
//
//cdelint:hotpath
func (c *Conn) ExchangeEvent(ctx context.Context, sched *des.Scheduler, query *dnswire.Message, dst netip.Addr, done func(*dnswire.Message, time.Duration, error)) {
	st := getExchangeState()
	st.sched = sched
	st.net = c.net
	st.c = c
	st.ctx = ctx
	st.query = query
	st.dst = dst
	st.done = done
	sched.Schedule(0, st, opLaunch)
}
