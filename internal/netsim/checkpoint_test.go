package netsim

import (
	"net/netip"
	"testing"
)

// TestSnapshotStatsFoldOrderIndependent asserts the sharded counter fold
// is a pure sum: the same totals distributed across the stat shards in
// different layouts fold to the same Stats value. This is the property
// checkpoint restore relies on — RestoreStats parks everything in shard
// 0, and later snapshots must still match a live run whose counts were
// spread across all 16 shards.
func TestSnapshotStatsFoldOrderIndependent(t *testing.T) {
	layoutA := New(1)
	layoutB := New(1)
	// 100 exchanges, 7 lost, 40 servfails — striped forward in A,
	// backward in B, so every shard holds different values in each.
	for i := 0; i < statShardCount; i++ {
		a, b := &layoutA.shards[i], &layoutB.shards[statShardCount-1-i]
		a.exchanges.Store(int64(i * 2))
		b.exchanges.Store(int64(i * 2))
		a.lost.Store(int64(i % 3))
		b.lost.Store(int64(i % 3))
		a.servfail.Store(int64(statShardCount - i))
		b.servfail.Store(int64(statShardCount - i))
	}
	sa, sb := layoutA.SnapshotStats(), layoutB.SnapshotStats()
	if sa != sb {
		t.Errorf("fold depends on shard layout: %+v vs %+v", sa, sb)
	}

	restored := New(1)
	restored.RestoreStats(sa)
	if got := restored.SnapshotStats(); got != sa {
		t.Errorf("restore-then-fold drifted: %+v, want %+v", got, sa)
	}
}

// TestRestoreStatsReplaces asserts RestoreStats overwrites prior
// counters instead of accumulating — restoring twice, or onto a network
// that already ran traffic, must land exactly on the snapshot.
func TestRestoreStatsReplaces(t *testing.T) {
	n := New(1)
	for i := range n.shards {
		n.shards[i].exchanges.Store(5)
		n.shards[i].outage.Store(2)
	}
	want := Stats{Exchanges: 3, BytesSent: 12, Faults: FaultStats{Late: 1}}
	n.RestoreStats(want)
	if got := n.SnapshotStats(); got != want {
		t.Errorf("first restore: %+v, want %+v", got, want)
	}
	n.RestoreStats(want)
	if got := n.SnapshotStats(); got != want {
		t.Errorf("second restore accumulated: %+v, want %+v", got, want)
	}
}

// TestCheckpointSourcesCanonicalOrder asserts the source dump is sorted
// by address (and each flow list by destination) regardless of creation
// order — the canonical-bytes property snapshot comparison rests on.
func TestCheckpointSourcesCanonicalOrder(t *testing.T) {
	n := New(1)
	addrs := []string{"10.30.0.9", "10.30.0.1", "10.30.0.5"}
	for _, a := range addrs {
		lr := n.srcRand(netip.MustParseAddr(a))
		lr.rng.Int63() // advance so Draws is nonzero
	}
	states := n.CheckpointSources()
	if len(states) != len(addrs) {
		t.Fatalf("%d sources, want %d", len(states), len(addrs))
	}
	for i := 1; i < len(states); i++ {
		if !states[i-1].Addr.Less(states[i].Addr) {
			t.Errorf("sources out of order: %v before %v", states[i-1].Addr, states[i].Addr)
		}
	}
	for _, st := range states {
		if st.Draws != 1 {
			t.Errorf("source %v draws = %d, want 1", st.Addr, st.Draws)
		}
	}
}

// TestRestoreSourcesReplaysStreams asserts a restored source stream
// continues exactly where the original left off: capture after k draws,
// restore into a fresh network, and the next draws match the original
// stream's k+1th, k+2th, ... values.
func TestRestoreSourcesReplaysStreams(t *testing.T) {
	src := netip.MustParseAddr("10.30.0.1")
	orig := New(42)
	lr := orig.srcRand(src)
	for i := 0; i < 13; i++ {
		lr.rng.Int63()
	}
	states := orig.CheckpointSources()

	fresh := New(42)
	if err := fresh.RestoreSources(states); err != nil {
		t.Fatalf("RestoreSources: %v", err)
	}
	a, b := orig.srcRand(src), fresh.srcRand(src)
	for i := 0; i < 20; i++ {
		if va, vb := a.rng.Int63(), b.rng.Int63(); va != vb {
			t.Fatalf("draw %d after restore: %d, original stream %d", i, vb, va)
		}
	}
}
