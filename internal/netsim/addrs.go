package netsim

import (
	"fmt"
	"net/netip"
)

// MustAddr parses a textual IP address, panicking on failure. It is meant
// for tests, examples and static topology tables.
func MustAddr(s string) netip.Addr {
	return netip.MustParseAddr(s)
}

// AddrRange returns n consecutive addresses starting at base. It is used
// to allocate the ingress/egress subnets of simulated resolution platforms
// (the paper's Fig. 1 allocates whole subnets to resolvers).
func AddrRange(base netip.Addr, n int) []netip.Addr {
	if n < 0 {
		panic(fmt.Sprintf("netsim: negative address count %d", n))
	}
	out := make([]netip.Addr, 0, n)
	a := base
	for i := 0; i < n; i++ {
		out = append(out, a)
		a = a.Next()
	}
	return out
}
