package netsim

import (
	"context"
	"errors"
	"net/netip"
	"time"

	"dnscde/internal/dnswire"
)

// ExchangeRetry performs an exchange with up to attempts tries, retrying
// only on timeout (packet loss). It mirrors a stub resolver's
// retransmission behaviour and returns the cumulative time spent across
// all attempts, so lost packets still cost simulated time.
func ExchangeRetry(ctx context.Context, ex Exchanger, query *dnswire.Message, dst netip.Addr, attempts int) (*dnswire.Message, time.Duration, error) {
	if attempts < 1 {
		attempts = 1
	}
	var total time.Duration
	var lastErr error
	for i := 0; i < attempts; i++ {
		resp, rtt, err := ex.Exchange(ctx, query, dst)
		total += rtt
		if err == nil {
			return resp, total, nil
		}
		lastErr = err
		if !errors.Is(err, ErrTimeout) {
			return nil, total, err
		}
	}
	return nil, total, lastErr
}
