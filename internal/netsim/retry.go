package netsim

import (
	"context"
	"errors"
	"hash/fnv"
	"math"
	"net/netip"
	"sync"
	"time"

	"dnscde/internal/detpar"
	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim/des"
)

// retryAccounter is implemented by Exchangers that expose a retransmission
// counter (the simulated Conn when its Network has a metrics registry
// attached); other Exchangers, such as the real-socket transport, simply
// go uncounted.
type retryAccounter interface {
	retryCounter() *metrics.Counter
}

// Backoff is a deterministic exponential-backoff schedule for
// retransmissions: wait Base before the first retransmit, multiply by
// Factor each further retransmit, cap at Max, and spread each wait by a
// jitter fraction drawn deterministically from (query, dst, retry) — no
// wall clock, no global RNG, so simulated runs stay byte-identical at any
// worker count.
//
// The zero Backoff waits not at all, reproducing the legacy
// retransmit-immediately behaviour.
type Backoff struct {
	// Base is the wait before the first retransmission.
	Base time.Duration
	// Max caps any single wait; 0 means uncapped.
	Max time.Duration
	// Factor multiplies the wait per further retransmission; values < 1
	// are treated as 1 (constant schedule).
	Factor float64
	// Jitter spreads each wait uniformly over [1-Jitter, 1+Jitter] of its
	// nominal value, decorrelating retransmissions of concurrent probes
	// the way real stub resolvers do to avoid synchronised retry storms.
	Jitter float64
}

// DefaultBackoff mirrors a stub resolver's retransmission policy: 500ms
// initial timeout supplement, doubling per attempt, capped at 5s, ±25%
// jitter.
func DefaultBackoff() Backoff {
	return Backoff{Base: 500 * time.Millisecond, Max: 5 * time.Second, Factor: 2, Jitter: 0.25}
}

// Wait returns the pause before retransmission number retry (1-based).
// It is a pure function of (seed, retry): the jitter term comes from a
// splitmix64 derivation, not from any shared RNG stream, so inserting or
// removing backoff waits never perturbs the network's loss/jitter draws.
func (b Backoff) Wait(seed uint64, retry int) time.Duration {
	if b.Base <= 0 || retry < 1 {
		return 0
	}
	w := float64(b.Base)
	factor := b.Factor
	if factor < 1 {
		factor = 1
	}
	for i := 1; i < retry; i++ {
		w *= factor
		if b.Max > 0 && w >= float64(b.Max) {
			break
		}
	}
	if b.Max > 0 && w > float64(b.Max) {
		w = float64(b.Max)
	}
	if b.Jitter > 0 {
		u := float64(detpar.Derive(int64(seed), uint64(retry))) / float64(math.MaxInt64)
		w *= 1 - b.Jitter + 2*b.Jitter*u
	}
	return time.Duration(w)
}

// retrySeed derives the deterministic jitter seed for one logical probe.
// It hashes the question and destination — not the message ID, which is
// allocated from a process-global counter and therefore differs between
// scheduling orders of concurrent probers.
func retrySeed(query *dnswire.Message, dst netip.Addr) uint64 {
	h := fnv.New64a()
	if q, err := query.FirstQuestion(); err == nil {
		h.Write([]byte(q.Name))
		var tb [2]byte
		tb[0], tb[1] = byte(q.Type>>8), byte(q.Type)
		h.Write(tb[:])
	}
	b := dst.As16()
	h.Write(b[:])
	return h.Sum64()
}

// retryState is the pooled actor driving one retransmission schedule as an
// event chain: each Fire launches one attempt via ExchangeEvent, the
// attempt's completion lands in onResult, and a lost attempt re-arms the
// actor after the backoff wait — all in simulated time on one scheduler.
type retryState struct {
	sched    *des.Scheduler
	ex       EventExchanger
	ctx      context.Context
	query    *dnswire.Message
	dst      netip.Addr
	attempts int
	bo       Backoff
	retries  *metrics.Counter
	seed     uint64

	attempt int
	total   time.Duration
	lastErr error

	resp *dnswire.Message
	err  error
	done func(*dnswire.Message, time.Duration, error)

	// onResultFn is the bound method value handed to ExchangeEvent; it is
	// created once per pooled record and survives recycling, so the retry
	// chain allocates no per-attempt closure.
	onResultFn func(*dnswire.Message, time.Duration, error)
}

var _ des.Actor = (*retryState)(nil)

var retryStatePool = sync.Pool{New: func() any { return new(retryState) }}

//cdelint:hotpath
func getRetryState() *retryState {
	rs := retryStatePool.Get().(*retryState)
	if rs.onResultFn == nil {
		//cdelint:allow hotalloc the bound method value is created once per pooled record, then reused
		rs.onResultFn = rs.onResult
	}
	return rs
}

//cdelint:hotpath
func putRetryState(rs *retryState) {
	rs.sched = nil
	rs.ex = nil
	rs.ctx = nil
	rs.query = nil
	rs.dst = netip.Addr{}
	rs.attempts = 0
	rs.bo = Backoff{}
	rs.retries = nil
	rs.seed = 0
	rs.attempt = 0
	rs.total = 0
	rs.lastErr = nil
	rs.resp = nil
	rs.err = nil
	rs.done = nil
	retryStatePool.Put(rs)
}

// Fire launches the current attempt.
//
//cdelint:hotpath
func (rs *retryState) Fire(now des.Time, op uint8) {
	rs.ex.ExchangeEvent(rs.ctx, rs.sched, rs.query, rs.dst, rs.onResultFn)
}

// onResult receives one attempt's outcome and either settles the schedule
// or arms the next retransmission after the backoff wait.
//
//cdelint:hotpath
func (rs *retryState) onResult(resp *dnswire.Message, rtt time.Duration, err error) {
	rs.total += rtt
	if err == nil {
		rs.settle(resp, nil)
		return
	}
	rs.lastErr = err
	if !errors.Is(err, ErrTimeout) {
		rs.settle(nil, err)
		return
	}
	rs.attempt++
	if rs.attempt >= rs.attempts {
		rs.settle(nil, rs.lastErr)
		return
	}
	// Cancellation is honoured between attempts: once ctx is done, no
	// further retransmission is sent and the context's error is returned
	// as-is — distinct from ErrTimeout, so callers can tell an aborted
	// measurement from packet loss.
	if cerr := rs.ctx.Err(); cerr != nil {
		rs.settle(nil, cerr)
		return
	}
	rs.retries.Inc()
	// The backoff wait is simulated time: it inflates both this probe's
	// cumulative cost and any enclosing exchange's RTT, exactly like the
	// timeout that triggered it.
	wait := rs.bo.Wait(rs.seed, rs.attempt)
	rs.total += wait
	chargeUpstream(rs.ctx, wait)
	rs.sched.Schedule(wait, rs, 0)
}

// settle records the schedule's outcome; in asynchronous mode it delivers
// the result and recycles the state.
func (rs *retryState) settle(resp *dnswire.Message, err error) {
	rs.resp, rs.err = resp, err
	if rs.done != nil {
		done, total := rs.done, rs.total
		rs.done = nil
		done(resp, total, err)
		putRetryState(rs)
	}
}

// initRetryState primes a pooled record for one schedule.
//
//cdelint:hotpath
func initRetryState(rs *retryState, sched *des.Scheduler, ex EventExchanger, ctx context.Context, query *dnswire.Message, dst netip.Addr, attempts int, bo Backoff) {
	rs.sched = sched
	rs.ex = ex
	rs.ctx = ctx
	rs.query = query
	rs.dst = dst
	rs.attempts = attempts
	rs.bo = bo
	rs.seed = retrySeed(query, dst)
	if ra, ok := ex.(retryAccounter); ok {
		rs.retries = ra.retryCounter()
	}
}

// ExchangeRetry performs an exchange with up to attempts tries, retrying
// only on timeout (packet loss) with the DefaultBackoff schedule between
// attempts. It mirrors a stub resolver's retransmission behaviour and
// returns the cumulative time spent across all attempts — timeouts plus
// backoff waits — so lost packets cost simulated time the way they cost a
// real measurement wall-clock time.
//
// Cancellation is honoured between attempts: once ctx is done, no further
// retransmission is sent and the context's error is returned as-is —
// distinct from ErrTimeout, so callers can tell an aborted measurement
// from packet loss. The check is needed here because transports may
// surface a ctx-deadline expiry as an ordinary timeout (a real UDP socket
// clamps its read deadline to the ctx deadline), which would otherwise
// keep a cancelled prober retransmitting until attempts ran out.
func ExchangeRetry(ctx context.Context, ex Exchanger, query *dnswire.Message, dst netip.Addr, attempts int) (*dnswire.Message, time.Duration, error) {
	return ExchangeRetryBackoff(ctx, ex, query, dst, attempts, DefaultBackoff())
}

// ExchangeRetryBackoff is ExchangeRetry with an explicit backoff schedule;
// the zero Backoff retransmits immediately. Event-capable transports (the
// simulated Conn, udpnet's TCPFallback over simulated legs) run the whole
// schedule as an event chain on a pooled scheduler; other Exchangers fall
// back to the blocking loop.
//
//cdelint:hotpath
func ExchangeRetryBackoff(ctx context.Context, ex Exchanger, query *dnswire.Message, dst netip.Addr, attempts int, bo Backoff) (*dnswire.Message, time.Duration, error) {
	if attempts < 1 {
		attempts = 1
	}
	if eex, ok := ex.(EventExchanger); ok {
		// Under a sharded universe, a goroutine driven by a des.Process
		// (a scenario workload, the platform's recursion) runs the whole
		// schedule on the shared event loops instead of a private nested
		// scheduler, parking until the chain settles.
		if p := processFrom(ctx); p != nil {
			return exchangeRetryProcess(ctx, p, eex, query, dst, attempts, bo)
		}
		sched := schedPool.Get().(*des.Scheduler)
		rs := getRetryState()
		initRetryState(rs, sched, eex, ctx, query, dst, attempts, bo)
		sched.Schedule(0, rs, 0)
		sched.Run()
		resp, total, err := rs.resp, rs.total, rs.err
		putRetryState(rs)
		sched.Reset()
		schedPool.Put(sched)
		return resp, total, err
	}
	return exchangeRetryBlocking(ctx, ex, query, dst, attempts, bo)
}

// ExchangeRetryEvent runs a full retransmission schedule asynchronously on
// the caller's scheduler: done fires at the simulated time the schedule
// settles (success, non-timeout error, cancellation or exhaustion), with
// the cumulative duration across attempts and backoff waits.
func ExchangeRetryEvent(ctx context.Context, sched *des.Scheduler, ex EventExchanger, query *dnswire.Message, dst netip.Addr, attempts int, bo Backoff, done func(*dnswire.Message, time.Duration, error)) {
	if attempts < 1 {
		attempts = 1
	}
	rs := getRetryState()
	initRetryState(rs, sched, ex, ctx, query, dst, attempts, bo)
	rs.done = done
	sched.Schedule(0, rs, 0)
}

// laneKeyer is implemented by transports that know which sharded lane
// their exchanges should launch on (the simulated Conn keys on its bound
// source address, keeping each source's work on one event loop).
type laneKeyer interface {
	LaneKey() uint64
}

// procWait is the pooled rendezvous between a parked process goroutine
// and the retry chain settling on a lane: deliver stores the outcome and
// resumes the process. The bound method value is created once per pooled
// record, so the bridge allocates nothing in steady state.
type procWait struct {
	p     *des.Process
	resp  *dnswire.Message
	total time.Duration
	err   error

	deliverFn func(*dnswire.Message, time.Duration, error)
}

var procWaitPool = sync.Pool{New: func() any { return new(procWait) }}

//cdelint:hotpath
func getProcWait() *procWait {
	w := procWaitPool.Get().(*procWait)
	if w.deliverFn == nil {
		//cdelint:allow hotalloc the bound method value is created once per pooled record, then reused
		w.deliverFn = w.deliver
	}
	return w
}

// deliver runs on the process's home lane, inside the event that settled
// the retry schedule.
//
//cdelint:hotpath
func (w *procWait) deliver(resp *dnswire.Message, total time.Duration, err error) {
	w.resp, w.total, w.err = resp, total, err
	w.p.Resume()
}

// exchangeRetryProcess runs a retransmission schedule on the sharded
// universe driving the calling goroutine: the retryState is injected on
// the source's lane, the goroutine parks, and the chain's events — which
// may hop lanes for delivery — resume it at the simulated completion
// time. The process is stripped from the context here, once, so handler
// code downstream (which runs on lane goroutines) can never inherit it
// and deadlock a lane by parking it.
//
//cdelint:hotpath
func exchangeRetryProcess(ctx context.Context, p *des.Process, ex EventExchanger, query *dnswire.Message, dst netip.Addr, attempts int, bo Backoff) (*dnswire.Message, time.Duration, error) {
	cctx := ClearProcess(ctx)
	lane := 0
	if lk, ok := ex.(laneKeyer); ok {
		lane = p.LaneFor(lk.LaneKey())
	}
	w := getProcWait()
	w.p = p
	rs := getRetryState()
	initRetryState(rs, p.LaneScheduler(lane), ex, cctx, query, dst, attempts, bo)
	rs.done = w.deliverFn
	p.Await(lane, rs, 0)
	resp, total, err := w.resp, w.total, w.err
	w.p = nil
	w.resp = nil
	w.err = nil
	w.total = 0
	procWaitPool.Put(w)
	return resp, total, err
}

// exchangeRetryBlocking is the legacy loop for transports without an
// event-chain form (the real-socket udpnet exchanger).
func exchangeRetryBlocking(ctx context.Context, ex Exchanger, query *dnswire.Message, dst netip.Addr, attempts int, bo Backoff) (*dnswire.Message, time.Duration, error) {
	var retries *metrics.Counter
	if ra, ok := ex.(retryAccounter); ok {
		retries = ra.retryCounter()
	}
	seed := retrySeed(query, dst)
	var total time.Duration
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if cerr := ctx.Err(); cerr != nil {
				return nil, total, cerr
			}
			retries.Inc()
			wait := bo.Wait(seed, i)
			total += wait
			chargeUpstream(ctx, wait)
		}
		resp, rtt, err := ex.Exchange(ctx, query, dst)
		total += rtt
		if err == nil {
			return resp, total, nil
		}
		lastErr = err
		if !errors.Is(err, ErrTimeout) {
			return nil, total, err
		}
	}
	return nil, total, lastErr
}
