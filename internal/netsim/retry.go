package netsim

import (
	"context"
	"errors"
	"net/netip"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
)

// retryAccounter is implemented by Exchangers that expose a retransmission
// counter (the simulated Conn when its Network has a metrics registry
// attached); other Exchangers, such as the real-socket transport, simply
// go uncounted.
type retryAccounter interface {
	retryCounter() *metrics.Counter
}

// ExchangeRetry performs an exchange with up to attempts tries, retrying
// only on timeout (packet loss). It mirrors a stub resolver's
// retransmission behaviour and returns the cumulative time spent across
// all attempts, so lost packets still cost simulated time.
//
// Cancellation is honoured between attempts: once ctx is done, no further
// retransmission is sent and the context's error is returned as-is —
// distinct from ErrTimeout, so callers can tell an aborted measurement
// from packet loss. The check is needed here because transports may
// surface a ctx-deadline expiry as an ordinary timeout (a real UDP socket
// clamps its read deadline to the ctx deadline), which would otherwise
// keep a cancelled prober retransmitting until attempts ran out.
func ExchangeRetry(ctx context.Context, ex Exchanger, query *dnswire.Message, dst netip.Addr, attempts int) (*dnswire.Message, time.Duration, error) {
	if attempts < 1 {
		attempts = 1
	}
	var retries *metrics.Counter
	if ra, ok := ex.(retryAccounter); ok {
		retries = ra.retryCounter()
	}
	var total time.Duration
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if cerr := ctx.Err(); cerr != nil {
				return nil, total, cerr
			}
			retries.Inc()
		}
		resp, rtt, err := ex.Exchange(ctx, query, dst)
		total += rtt
		if err == nil {
			return resp, total, nil
		}
		lastErr = err
		if !errors.Is(err, ErrTimeout) {
			return nil, total, err
		}
	}
	return nil, total, lastErr
}
