package netsim

import (
	"context"
	"errors"
	"hash/fnv"
	"math"
	"net/netip"
	"time"

	"dnscde/internal/detpar"
	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
)

// retryAccounter is implemented by Exchangers that expose a retransmission
// counter (the simulated Conn when its Network has a metrics registry
// attached); other Exchangers, such as the real-socket transport, simply
// go uncounted.
type retryAccounter interface {
	retryCounter() *metrics.Counter
}

// Backoff is a deterministic exponential-backoff schedule for
// retransmissions: wait Base before the first retransmit, multiply by
// Factor each further retransmit, cap at Max, and spread each wait by a
// jitter fraction drawn deterministically from (query, dst, retry) — no
// wall clock, no global RNG, so simulated runs stay byte-identical at any
// worker count.
//
// The zero Backoff waits not at all, reproducing the legacy
// retransmit-immediately behaviour.
type Backoff struct {
	// Base is the wait before the first retransmission.
	Base time.Duration
	// Max caps any single wait; 0 means uncapped.
	Max time.Duration
	// Factor multiplies the wait per further retransmission; values < 1
	// are treated as 1 (constant schedule).
	Factor float64
	// Jitter spreads each wait uniformly over [1-Jitter, 1+Jitter] of its
	// nominal value, decorrelating retransmissions of concurrent probes
	// the way real stub resolvers do to avoid synchronised retry storms.
	Jitter float64
}

// DefaultBackoff mirrors a stub resolver's retransmission policy: 500ms
// initial timeout supplement, doubling per attempt, capped at 5s, ±25%
// jitter.
func DefaultBackoff() Backoff {
	return Backoff{Base: 500 * time.Millisecond, Max: 5 * time.Second, Factor: 2, Jitter: 0.25}
}

// Wait returns the pause before retransmission number retry (1-based).
// It is a pure function of (seed, retry): the jitter term comes from a
// splitmix64 derivation, not from any shared RNG stream, so inserting or
// removing backoff waits never perturbs the network's loss/jitter draws.
func (b Backoff) Wait(seed uint64, retry int) time.Duration {
	if b.Base <= 0 || retry < 1 {
		return 0
	}
	w := float64(b.Base)
	factor := b.Factor
	if factor < 1 {
		factor = 1
	}
	for i := 1; i < retry; i++ {
		w *= factor
		if b.Max > 0 && w >= float64(b.Max) {
			break
		}
	}
	if b.Max > 0 && w > float64(b.Max) {
		w = float64(b.Max)
	}
	if b.Jitter > 0 {
		u := float64(detpar.Derive(int64(seed), uint64(retry))) / float64(math.MaxInt64)
		w *= 1 - b.Jitter + 2*b.Jitter*u
	}
	return time.Duration(w)
}

// retrySeed derives the deterministic jitter seed for one logical probe.
// It hashes the question and destination — not the message ID, which is
// allocated from a process-global counter and therefore differs between
// scheduling orders of concurrent probers.
func retrySeed(query *dnswire.Message, dst netip.Addr) uint64 {
	h := fnv.New64a()
	if q, err := query.FirstQuestion(); err == nil {
		h.Write([]byte(q.Name))
		h.Write([]byte{byte(q.Type >> 8), byte(q.Type)})
	}
	b := dst.As16()
	h.Write(b[:])
	return h.Sum64()
}

// ExchangeRetry performs an exchange with up to attempts tries, retrying
// only on timeout (packet loss) with the DefaultBackoff schedule between
// attempts. It mirrors a stub resolver's retransmission behaviour and
// returns the cumulative time spent across all attempts — timeouts plus
// backoff waits — so lost packets cost simulated time the way they cost a
// real measurement wall-clock time.
//
// Cancellation is honoured between attempts: once ctx is done, no further
// retransmission is sent and the context's error is returned as-is —
// distinct from ErrTimeout, so callers can tell an aborted measurement
// from packet loss. The check is needed here because transports may
// surface a ctx-deadline expiry as an ordinary timeout (a real UDP socket
// clamps its read deadline to the ctx deadline), which would otherwise
// keep a cancelled prober retransmitting until attempts ran out.
func ExchangeRetry(ctx context.Context, ex Exchanger, query *dnswire.Message, dst netip.Addr, attempts int) (*dnswire.Message, time.Duration, error) {
	return ExchangeRetryBackoff(ctx, ex, query, dst, attempts, DefaultBackoff())
}

// ExchangeRetryBackoff is ExchangeRetry with an explicit backoff schedule;
// the zero Backoff retransmits immediately.
func ExchangeRetryBackoff(ctx context.Context, ex Exchanger, query *dnswire.Message, dst netip.Addr, attempts int, bo Backoff) (*dnswire.Message, time.Duration, error) {
	if attempts < 1 {
		attempts = 1
	}
	var retries *metrics.Counter
	if ra, ok := ex.(retryAccounter); ok {
		retries = ra.retryCounter()
	}
	seed := retrySeed(query, dst)
	var total time.Duration
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if cerr := ctx.Err(); cerr != nil {
				return nil, total, cerr
			}
			retries.Inc()
			// The backoff wait is simulated time: it inflates both this
			// probe's cumulative cost and any enclosing exchange's RTT,
			// exactly like the timeout that triggered it.
			wait := bo.Wait(seed, i)
			total += wait
			chargeUpstream(ctx, wait)
		}
		resp, rtt, err := ex.Exchange(ctx, query, dst)
		total += rtt
		if err == nil {
			return resp, total, nil
		}
		lastErr = err
		if !errors.Is(err, ErrTimeout) {
			return nil, total, err
		}
	}
	return nil, total, lastErr
}
