package netsim

import (
	"context"
	"errors"
	"math"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/trace"
)

// exchangeN runs k exchanges over conn with distinct query names and
// returns how many succeeded.
func exchangeN(t *testing.T, conn *Conn, dst netip.Addr, k int) int {
	t.Helper()
	ok := 0
	for i := 0; i < k; i++ {
		q := dnswire.NewQuery(uint16(i), "q"+string(rune('a'+i%26))+".example", dnswire.TypeA)
		if _, _, err := conn.Exchange(context.Background(), q, dst); err == nil {
			ok++
		}
	}
	return ok
}

// TestClientProfileFallback is the regression test for the unregistered-
// source bug: Exchange used to leave srcProfile zero-valued whenever the
// bound source had no registered host, silently disabling client-side loss
// and delay. The fallback is now the network's configurable client
// profile.
func TestClientProfileFallback(t *testing.T) {
	n := New(7)
	n.Register(testServer, LinkProfile{}, echoHandler())
	conn := n.Bind(testClient) // testClient is NOT registered

	// Default client profile is still the zero profile: unchanged behaviour.
	if _, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer); err != nil {
		t.Fatalf("default client profile should be lossless: %v", err)
	}

	// A lossy client profile must now reach unregistered sources.
	n.SetClientProfile(LinkProfile{Loss: 1})
	if _, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(2, "b.example", dnswire.TypeA), testServer); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout (client-side loss must apply to unregistered sources)", err)
	}

	// Client-side delay applies too.
	n.SetClientProfile(LinkProfile{OneWay: 7 * time.Millisecond})
	_, rtt, err := conn.Exchange(context.Background(), dnswire.NewQuery(3, "c.example", dnswire.TypeA), testServer)
	if err != nil {
		t.Fatal(err)
	}
	if rtt != 14*time.Millisecond {
		t.Errorf("rtt = %v, want 14ms from the client profile's one-way delay", rtt)
	}

	// A registered source still wins over the fallback.
	n.Register(testClient, LinkProfile{}, echoHandler())
	_, rtt, err = conn.Exchange(context.Background(), dnswire.NewQuery(4, "d.example", dnswire.TypeA), testServer)
	if err != nil {
		t.Fatal(err)
	}
	if rtt != 0 {
		t.Errorf("rtt = %v, want 0 (registered source profile overrides fallback)", rtt)
	}
}

func TestBurstLossParameterisation(t *testing.T) {
	for _, tc := range []struct{ rate, mean float64 }{
		{0.01, 1}, {0.04, 4}, {0.11, 4}, {0.25, 8},
	} {
		ge := BurstLoss(tc.rate, tc.mean)
		if got := ge.MeanLoss(); math.Abs(got-tc.rate) > 1e-12 {
			t.Errorf("BurstLoss(%v, %v).MeanLoss() = %v, want %v", tc.rate, tc.mean, got, tc.rate)
		}
		if ge.PBadGood != 1/tc.mean {
			t.Errorf("BurstLoss(%v, %v).PBadGood = %v, want %v", tc.rate, tc.mean, ge.PBadGood, 1/tc.mean)
		}
	}
	if BurstLoss(0, 4).enabled() {
		t.Error("BurstLoss(0, ...) must be disabled")
	}
}

// TestBurstLossStationaryRate drives many packets through a Gilbert–
// Elliott link and confirms the empirical loss matches the configured
// stationary rate, and that losses are burstier than an i.i.d. coin.
func TestBurstLossStationaryRate(t *testing.T) {
	const rate, meanBurst = 0.11, 4.0
	n := New(2017)
	n.Register(testServer, LinkProfile{Faults: &FaultProfile{BurstLoss: BurstLoss(rate, meanBurst)}}, echoHandler())
	conn := n.Bind(testClient)

	const trials = 4000
	lost, burstRun, maxRun := 0, 0, 0
	for i := 0; i < trials; i++ {
		q := dnswire.NewQuery(uint16(i), "a.example", dnswire.TypeA)
		if _, _, err := conn.Exchange(context.Background(), q, testServer); err != nil {
			lost++
			burstRun++
			if burstRun > maxRun {
				maxRun = burstRun
			}
		} else {
			burstRun = 0
		}
	}
	got := float64(lost) / trials
	// Each exchange draws two packets (query + response), so per-exchange
	// failure ≈ 1-(1-rate)² ≈ 0.208 — but bursts correlate the two draws;
	// accept a generous band around the per-packet rate.
	if got < 0.08 || got > 0.30 {
		t.Errorf("empirical exchange-loss rate = %v, want within [0.08, 0.30] for per-packet rate %v", got, rate)
	}
	// With mean burst 4 packets, multi-exchange loss runs must occur —
	// i.i.d. loss at this rate would make a 3-run rare (~0.1%·trials).
	if maxRun < 2 {
		t.Errorf("max consecutive lost exchanges = %d, want >= 2 (burstiness)", maxRun)
	}
}

func TestServFailRefusedInjection(t *testing.T) {
	handlerCalls := 0
	n := New(5)
	n.Register(testServer, LinkProfile{Faults: &FaultProfile{ServFailRate: 1}},
		HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
			handlerCalls++
			return dnswire.NewResponse(q), nil
		}))
	conn := n.Bind(testClient)

	tr := trace.New()
	ctx := trace.With(context.Background(), tr)
	resp, _, err := conn.Exchange(ctx, dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("RCode = %v, want SERVFAIL", resp.Header.RCode)
	}
	if !resp.Header.Response || len(resp.Question) != 1 {
		t.Error("injected response must echo the question with QR set")
	}
	if handlerCalls != 0 {
		t.Errorf("handler called %d times, want 0 (injection short-circuits)", handlerCalls)
	}
	if kinds := tr.Kinds(); len(kinds) == 0 || kinds[0] != "fault" {
		t.Errorf("trace kinds = %v, want a fault event", kinds)
	}
	if n.SnapshotStats().Faults.ServFail != 1 {
		t.Errorf("Faults.ServFail = %d, want 1", n.SnapshotStats().Faults.ServFail)
	}

	n.Register(testServer, LinkProfile{Faults: &FaultProfile{RefusedRate: 1}}, echoHandler())
	resp, _, err = conn.Exchange(context.Background(), dnswire.NewQuery(2, "b.example", dnswire.TypeA), testServer)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("RCode = %v, want REFUSED", resp.Header.RCode)
	}
}

func TestTruncationAndTCPImmunity(t *testing.T) {
	n := New(9)
	n.Register(testServer, LinkProfile{OneWay: 5 * time.Millisecond, Faults: &FaultProfile{TruncateRate: 1}},
		HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
			resp := dnswire.NewResponse(q)
			resp.Header.Authoritative = true
			resp.Answer = append(resp.Answer, dnswire.RR{
				Name: q.Question[0].Name, Class: dnswire.ClassIN, TTL: 60,
				Data: dnswire.ARecord{Addr: MustAddr("203.0.113.1")},
			})
			return resp, nil
		}))
	conn := n.Bind(testClient)

	resp, udpRTT, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Truncated {
		t.Fatal("UDP response must carry the TC bit at TruncateRate 1")
	}
	if len(resp.Answer) != 0 {
		t.Errorf("truncated response kept %d answers, want 0", len(resp.Answer))
	}
	if resp.Header.RCode != dnswire.RCodeNoError || !resp.Header.Authoritative {
		t.Error("truncation must preserve RCode and AA")
	}

	tcpResp, tcpRTT, err := conn.TCP().Exchange(context.Background(), dnswire.NewQuery(2, "a.example", dnswire.TypeA), testServer)
	if err != nil {
		t.Fatal(err)
	}
	if tcpResp.Header.Truncated || len(tcpResp.Answer) != 1 {
		t.Errorf("TCP exchange must be immune to truncation: TC=%v answers=%d", tcpResp.Header.Truncated, len(tcpResp.Answer))
	}
	if tcpRTT <= udpRTT {
		t.Errorf("TCP rtt = %v, want > UDP rtt %v (handshake round trip)", tcpRTT, udpRTT)
	}
	if got := n.SnapshotStats().Faults.Truncated; got != 1 {
		t.Errorf("Faults.Truncated = %d, want 1 (TCP path must not count)", got)
	}
}

func TestScheduledOutageWindow(t *testing.T) {
	n := New(3)
	n.Register(testServer, LinkProfile{Faults: &FaultProfile{Outages: []OutageWindow{{Start: 2, End: 4}}}}, echoHandler())
	conn := n.Bind(testClient)

	var results []bool
	for i := 0; i < 6; i++ {
		_, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "a.example", dnswire.TypeA), testServer)
		results = append(results, err == nil)
	}
	want := []bool{true, true, false, false, true, true}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("exchange %d ok=%v, want %v (outage window [2,4))", i, results[i], want[i])
		}
	}
	if got := n.SnapshotStats().Faults.Outage; got != 2 {
		t.Errorf("Faults.Outage = %d, want 2", got)
	}
	// The window is per-flow: a different source has its own counter and
	// hits the same schedule independently.
	other := n.Bind(MustAddr("192.0.2.99"))
	if ok := exchangeN(t, other, testServer, 2); ok != 2 {
		t.Errorf("fresh flow: %d/2 exchanges ok before its own window, want 2", ok)
	}
}

func TestSetDown(t *testing.T) {
	n := New(3)
	n.Register(testServer, LinkProfile{}, echoHandler())
	conn := n.Bind(testClient)

	n.SetDown(testServer, true)
	if _, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout while down", err)
	}
	n.SetDown(testServer, false)
	if _, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(2, "a.example", dnswire.TypeA), testServer); err != nil {
		t.Fatalf("err = %v after SetDown(false), want success", err)
	}
}

func TestDuplicateDelivery(t *testing.T) {
	handlerCalls := 0
	n := New(4)
	n.Register(testServer, LinkProfile{Faults: &FaultProfile{DuplicateRate: 1}},
		HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
			handlerCalls++
			return dnswire.NewResponse(q), nil
		}))
	conn := n.Bind(testClient)
	if _, _, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer); err != nil {
		t.Fatal(err)
	}
	if handlerCalls != 2 {
		t.Errorf("handler called %d times, want 2 (duplicated delivery)", handlerCalls)
	}
	// TCP streams never duplicate.
	handlerCalls = 0
	if _, _, err := conn.TCP().Exchange(context.Background(), dnswire.NewQuery(2, "b.example", dnswire.TypeA), testServer); err != nil {
		t.Fatal(err)
	}
	if handlerCalls != 1 {
		t.Errorf("TCP: handler called %d times, want 1", handlerCalls)
	}
}

func TestLateResponseTimesOutButServes(t *testing.T) {
	handlerCalls := 0
	n := New(6)
	n.SetTimeout(time.Second)
	n.Register(testServer, LinkProfile{Faults: &FaultProfile{LateRate: 1}},
		HandlerFunc(func(ctx context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
			handlerCalls++
			ChargeLatency(ctx, 30*time.Millisecond)
			return dnswire.NewResponse(q), nil
		}))
	conn := n.Bind(testClient)
	_, total, err := conn.Exchange(context.Background(), dnswire.NewQuery(1, "a.example", dnswire.TypeA), testServer)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout for a late response", err)
	}
	if handlerCalls != 1 {
		t.Errorf("handler called %d times, want 1 (server-side effects persist)", handlerCalls)
	}
	// The client's retransmission timer runs concurrently with the
	// server's work, so the charge is the timeout alone — not timeout
	// plus handler time.
	if total != time.Second {
		t.Errorf("total = %v, want the bare timeout", total)
	}
	if got := n.SnapshotStats().Faults.Late; got != 1 {
		t.Errorf("Faults.Late = %d, want 1", got)
	}
}

// TestFaultDeterminism replays the same exchange sequence on two networks
// with the same seed and expects identical outcomes, including fault
// injections — the property TestWorkersInvariance relies on.
func TestFaultDeterminism(t *testing.T) {
	run := func() (Stats, int) {
		n := New(2017)
		fp := &FaultProfile{
			BurstLoss:    BurstLoss(0.11, 4),
			ServFailRate: 0.05,
			TruncateRate: 0.03,
			LateRate:     0.02,
			Outages:      []OutageWindow{{Start: 10, End: 15}},
		}
		n.Register(testServer, LinkProfile{Jitter: time.Millisecond, Faults: fp}, echoHandler())
		ok := exchangeN(t, n.Bind(testClient), testServer, 500)
		return n.SnapshotStats(), ok
	}
	s1, ok1 := run()
	s2, ok2 := run()
	if s1 != s2 || ok1 != ok2 {
		t.Errorf("fault injection not deterministic:\n%+v ok=%d\n%+v ok=%d", s1, ok1, s2, ok2)
	}
}

func TestParseFaultProfile(t *testing.T) {
	tests := []struct {
		spec    string
		want    string // re-rendered via String()
		wantErr bool
	}{
		{spec: "", want: ""},
		{spec: "burst=0.11:4", want: "burst=0.11:4"},
		{spec: "burst=0.05", want: "burst=0.05:4"}, // default mean burst
		{spec: "servfail=0.02,refused=0.01", want: "servfail=0.02,refused=0.01"},
		{spec: "truncate=0.5,duplicate=0.1,late=0.2", want: "truncate=0.5,duplicate=0.1,late=0.2"},
		{spec: "outage=10+20", want: "outage=10+20"},
		{spec: "burst=0.11:4,servfail=0.02,outage=5+5", want: "burst=0.11:4,servfail=0.02,outage=5+5"},
		{spec: "bogus=1", wantErr: true},
		{spec: "servfail=1.5", wantErr: true},
		{spec: "servfail=x", wantErr: true},
		{spec: "burst=0.1:0.5", wantErr: true},
		{spec: "outage=10", wantErr: true},
		{spec: "outage=-1+5", wantErr: true},
		{spec: "servfail", wantErr: true},
	}
	for _, tc := range tests {
		fp, err := ParseFaultProfile(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseFaultProfile(%q): want error, got %v", tc.spec, fp)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFaultProfile(%q): %v", tc.spec, err)
			continue
		}
		if got := fp.String(); got != tc.want {
			t.Errorf("ParseFaultProfile(%q).String() = %q, want %q", tc.spec, got, tc.want)
		}
	}
	if fp, err := ParseFaultProfile("  "); err != nil || fp != nil {
		t.Errorf("blank spec: got (%v, %v), want (nil, nil)", fp, err)
	}
}
