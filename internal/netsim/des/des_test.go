package des

import (
	"testing"
	"time"
)

// recorder logs (now, op) pairs as events fire.
type recorder struct {
	fired []struct {
		at Time
		op uint8
	}
}

func (r *recorder) Fire(now Time, op uint8) {
	r.fired = append(r.fired, struct {
		at Time
		op uint8
	}{now, op})
}

func TestDispatchOrder(t *testing.T) {
	s := NewScheduler()
	r := &recorder{}
	s.Schedule(30*time.Millisecond, r, 3)
	s.Schedule(10*time.Millisecond, r, 1)
	s.Schedule(20*time.Millisecond, r, 2)
	s.Schedule(10*time.Millisecond, r, 4) // same instant as op 1, scheduled later
	if n := s.Run(); n != 4 {
		t.Fatalf("Run dispatched %d events, want 4", n)
	}
	wantOps := []uint8{1, 4, 2, 3}
	wantAt := []Time{
		Time(10 * time.Millisecond), Time(10 * time.Millisecond),
		Time(20 * time.Millisecond), Time(30 * time.Millisecond),
	}
	for i, f := range r.fired {
		if f.op != wantOps[i] || f.at != wantAt[i] {
			t.Errorf("event %d = (op %d at %v), want (op %d at %v)", i, f.op, f.at, wantOps[i], wantAt[i])
		}
	}
	if s.Now() != Time(30*time.Millisecond) {
		t.Errorf("Now = %v, want 30ms", s.Now())
	}
}

// chainer reschedules itself op times, modelling an event chain.
type chainer struct {
	s     *Scheduler
	fires int
}

func (c *chainer) Fire(now Time, op uint8) {
	c.fires++
	if op > 0 {
		c.s.Schedule(time.Millisecond, c, op-1)
	}
}

func TestChainedEventsFromWithinFire(t *testing.T) {
	s := NewScheduler()
	c := &chainer{s: s}
	s.Schedule(0, c, 5)
	if n := s.Run(); n != 6 {
		t.Fatalf("dispatched %d, want 6 (chain of 5 reschedules)", n)
	}
	if s.Now() != Time(5*time.Millisecond) {
		t.Errorf("Now = %v, want 5ms", s.Now())
	}
}

// sameInstant schedules a follow-up at the SAME timestamp; it must fire
// after everything already queued at that instant.
type sameInstant struct {
	s     *Scheduler
	order *[]uint8
}

func (a *sameInstant) Fire(now Time, op uint8) {
	*a.order = append(*a.order, op)
	if op == 1 {
		a.s.Schedule(0, a, 9)
	}
}

func TestSameInstantFollowUpFiresAfterBatch(t *testing.T) {
	s := NewScheduler()
	var order []uint8
	a := &sameInstant{s: s, order: &order}
	s.Schedule(time.Millisecond, a, 1)
	s.Schedule(time.Millisecond, a, 2)
	s.Run()
	want := []uint8{1, 2, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleAtClampsToNow(t *testing.T) {
	s := NewScheduler()
	r := &recorder{}
	s.Schedule(10*time.Millisecond, r, 1)
	s.Run()
	s.ScheduleAt(Time(5*time.Millisecond), r, 2) // in the past
	s.Run()
	if got := r.fired[1].at; got != Time(10*time.Millisecond) {
		t.Errorf("past event fired at %v, want clamped to 10ms", got)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	r := &recorder{}
	s.Schedule(10*time.Millisecond, r, 1)
	s.Schedule(20*time.Millisecond, r, 2)
	s.Schedule(30*time.Millisecond, r, 3)
	if n := s.RunUntil(Time(20 * time.Millisecond)); n != 2 {
		t.Fatalf("RunUntil dispatched %d, want 2", n)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	// An early-drained queue still advances the clock to the barrier.
	s2 := NewScheduler()
	s2.RunUntil(Time(time.Second))
	if s2.Now() != Time(time.Second) {
		t.Errorf("Now = %v, want 1s barrier", s2.Now())
	}
}

func TestResetRecyclesCapacity(t *testing.T) {
	s := NewScheduler()
	r := &recorder{}
	for i := 0; i < 100; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, r, 0)
	}
	s.Reset()
	if s.Pending() != 0 || s.Now() != 0 || s.Dispatched() != 0 {
		t.Fatal("Reset must clear pending events, clock and dispatch count")
	}
	s.Schedule(time.Millisecond, r, 7)
	if n := s.Run(); n != 1 {
		t.Fatalf("post-Reset Run dispatched %d, want 1", n)
	}
}

// nopActor is the cheapest possible actor for the allocation guard.
type nopActor struct{}

func (nopActor) Fire(Time, uint8) {}

// TestHotPathAllocationFree is the benchmark guard for the DES hot path:
// after warm-up, schedule + dispatch must not allocate — the same
// contract the //cdelint:hotpath annotations enforce statically.
func TestHotPathAllocationFree(t *testing.T) {
	s := NewScheduler()
	var a nopActor
	// Warm the heap and batch buffers past the steady-state working set.
	for i := 0; i < 256; i++ {
		s.Schedule(time.Duration(i)*time.Microsecond, a, 0)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			s.Schedule(time.Duration(i)*time.Microsecond, a, uint8(i))
		}
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("schedule/dispatch allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkScheduleDispatch(b *testing.B) {
	s := NewScheduler()
	var a nopActor
	for i := 0; i < 256; i++ {
		s.Schedule(time.Duration(i)*time.Microsecond, a, 0)
	}
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Microsecond, a, 0)
		s.Step()
	}
}
