package des

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"dnscde/internal/detpar"
)

// hopRec is one observed dispatch: simulated time and opcode.
type hopRec struct {
	at Time
	op uint8
}

// token is a test actor that walks a fixed ring of positions, hopping to
// each position's lane via SendTo and logging every dispatch it sees.
// Tokens are fully independent — each owns its state — which is exactly
// the invariance contract: a causal chain's observations are a pure
// function of the workload at any shard count. (Shared mutable state
// between concurrently-firing lanes is out of contract, as on any
// parallel scheduler.)
type token struct {
	scheds    []*Scheduler // scheds[i] owns position i's lane
	lanes     []int        // lanes[i] is position i's lane index
	pos       int
	remaining int
	log       []hopRec
}

func (tk *token) Fire(now Time, op uint8) {
	tk.log = append(tk.log, hopRec{at: now, op: op})
	if tk.remaining <= 0 {
		return
	}
	tk.remaining--
	next := (tk.pos + 1) % len(tk.lanes)
	tk.scheds[tk.pos].SendTo(tk.lanes[next], now.Add(3*time.Millisecond), tk, op+1)
	tk.pos = next
}

// ringLogs runs nTokens independent ring-walking tokens (hops each) over
// nPos positions keyed through LaneFor, and returns the per-token logs.
func ringLogs(t *testing.T, shards, nPos, nTokens, hops int) [][]hopRec {
	t.Helper()
	ss := NewSharded(shards)
	scheds := make([]*Scheduler, nPos)
	lanes := make([]int, nPos)
	for i := range scheds {
		lanes[i] = ss.LaneFor(detpar.Mix(uint64(i) + 12345))
		scheds[i] = ss.LaneScheduler(lanes[i])
	}
	tokens := make([]*token, nTokens)
	for i := range tokens {
		tokens[i] = &token{scheds: scheds, lanes: lanes, pos: i % nPos, remaining: hops}
		scheds[i%nPos].ScheduleAt(0, tokens[i], 0)
	}
	if err := ss.Run(); err != nil {
		t.Fatalf("Run(shards=%d): %v", shards, err)
	}
	if got, want := ss.Dispatched(), uint64(nTokens*(hops+1)); got != want {
		t.Fatalf("shards=%d dispatched %d events, want %d", shards, got, want)
	}
	logs := make([][]hopRec, nTokens)
	for i, tk := range tokens {
		logs[i] = tk.log
	}
	return logs
}

// TestShardedMatchesSingleScheduler proves the tentpole determinism claim
// at the scheduler layer: a cross-lane workload observes byte-identical
// per-actor dispatch sequences on a plain Scheduler, a 1-lane sharded
// universe and multi-lane sharded universes.
func TestShardedMatchesSingleScheduler(t *testing.T) {
	const nPos, nTokens, hops = 13, 7, 400

	// Reference: plain single scheduler (SendTo degenerates to ScheduleAt).
	plain := NewScheduler()
	refTokens := make([]*token, nTokens)
	scheds := make([]*Scheduler, nPos)
	lanes := make([]int, nPos)
	for i := range scheds {
		scheds[i] = plain
		lanes[i] = 0
	}
	for i := range refTokens {
		refTokens[i] = &token{scheds: scheds, lanes: lanes, pos: i % nPos, remaining: hops}
		plain.ScheduleAt(0, refTokens[i], 0)
	}
	plain.Run()

	for _, shards := range []int{1, 2, 3, 8} {
		logs := ringLogs(t, shards, nPos, nTokens, hops)
		for i, ref := range refTokens {
			if len(logs[i]) != len(ref.log) {
				t.Fatalf("shards=%d token %d saw %d dispatches, plain saw %d",
					shards, i, len(logs[i]), len(ref.log))
			}
			for j := range logs[i] {
				if logs[i][j] != ref.log[j] {
					t.Fatalf("shards=%d token %d dispatch %d = %+v, plain = %+v",
						shards, i, j, logs[i][j], ref.log[j])
				}
			}
		}
	}
}

// spammer fans out to every lane each time it fires — the adversarial
// all-to-all cross-shard pattern for the race detector.
type spammer struct {
	sched   *Scheduler
	targets []*spammer // one per lane
	rounds  int
	fired   int
}

func (s *spammer) Fire(now Time, op uint8) {
	s.fired++
	if int(op) >= s.rounds {
		return
	}
	for lane, tgt := range s.targets {
		s.sched.SendTo(lane, now.Add(time.Millisecond), tgt, op+1)
	}
}

// TestShardedAllToAllRace floods every lane-pair mailbox every round.
// Run under -race this exercises the lock-free mailbox handoff, the
// barrier protocol and concurrent lane dispatch; the event count is an
// exact closed form, so any lost or duplicated cross-shard send fails
// loudly at every shard count.
func TestShardedAllToAllRace(t *testing.T) {
	const rounds = 6
	for _, shards := range []int{2, 4, 8} {
		ss := NewSharded(shards)
		lanes := ss.Lanes()
		spammers := make([]*spammer, lanes)
		for i := range spammers {
			spammers[i] = &spammer{sched: ss.LaneScheduler(i), rounds: rounds}
		}
		for _, s := range spammers {
			s.targets = spammers
		}
		ss.LaneScheduler(0).ScheduleAt(0, spammers[0], 0)
		if err := ss.Run(); err != nil {
			t.Fatalf("Run(shards=%d): %v", shards, err)
		}
		// 1 seed + lanes^1 + lanes^2 + ... + lanes^rounds dispatches.
		want := uint64(1)
		pow := uint64(1)
		for r := 0; r < rounds; r++ {
			pow *= uint64(lanes)
			want += pow
		}
		if got := ss.Dispatched(); got != want {
			t.Fatalf("shards=%d dispatched %d, want %d", shards, got, want)
		}
	}
}

// resumer is the lane-side half of a process round trip: it records when
// it fired and unparks the process.
type resumer struct {
	p  *Process
	at []Time
}

func (r *resumer) Fire(now Time, op uint8) {
	r.at = append(r.at, now)
	r.p.Resume()
}

// sink records dispatches and does nothing else (Detach targets).
type sink struct{ at []Time }

func (s *sink) Fire(now Time, op uint8) { s.at = append(s.at, now) }

// TestProcessLifecycle drives Await/Resume/Advance/Detach end to end:
// each Advance(d) must land the next injected event exactly d after the
// previous round, and Detach must deliver a final event after the
// goroutine exits.
func TestProcessLifecycle(t *testing.T) {
	for _, shards := range []int{1, 3} {
		ss := NewSharded(shards)
		p := ss.NewProcess()
		r := &resumer{p: p}
		final := &sink{}
		go func() {
			for i := 0; i < 3; i++ {
				p.Await(p.LaneFor(uint64(i)), r, 0)
				p.Advance(10 * time.Millisecond)
			}
			p.Detach(0, final, 0)
		}()
		if err := ss.Run(); err != nil {
			t.Fatalf("Run(shards=%d): %v", shards, err)
		}
		ms := func(n int) Time { return Time(0).Add(time.Duration(n) * time.Millisecond) }
		wantR := []Time{ms(0), ms(10), ms(20)}
		if len(r.at) != len(wantR) {
			t.Fatalf("shards=%d resumer fired %d times, want %d", shards, len(r.at), len(wantR))
		}
		for i := range wantR {
			if r.at[i] != wantR[i] {
				t.Fatalf("shards=%d resume %d at %v, want %v", shards, i, r.at[i], wantR[i])
			}
		}
		if len(final.at) != 1 || final.at[0] != ms(30) {
			t.Fatalf("shards=%d detach fired %v, want [%v]", shards, final.at, ms(30))
		}
	}
}

// stuck parks its process forever: it never resumes.
type stuck struct{}

func (stuck) Fire(Time, uint8) {}

// TestProcessDeadlock checks that a parked process whose chain never
// resumes it is detected (ErrDeadlock) and aborted (the goroutine unwinds
// through the Aborted panic).
func TestProcessDeadlock(t *testing.T) {
	ss := NewSharded(2)
	p := ss.NewProcess()
	unwound := make(chan bool, 1)
	go func() {
		defer func() { unwound <- Aborted(recover()) }()
		p.Await(1, stuck{}, 0)
		t.Error("Await returned from a deadlocked universe")
	}()
	if err := ss.Run(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
	if !<-unwound {
		t.Fatal("parked goroutine did not unwind through the abort panic")
	}
}

// bomb panics when fired.
type bomb struct{}

func (bomb) Fire(Time, uint8) { panic("boom") }

// TestLanePanicAbortsRun checks that an actor panic on a lane surfaces as
// a Run error naming the lane and aborts any parked process.
func TestLanePanicAbortsRun(t *testing.T) {
	for _, shards := range []int{1, 4} {
		ss := NewSharded(shards)
		p := ss.NewProcess()
		unwound := make(chan bool, 1)
		go func() {
			defer func() { unwound <- Aborted(recover()) }()
			p.Await(0, stuck{}, 0)
			t.Error("Await returned from an aborted universe")
		}()
		lane := ss.Lanes() - 1
		ss.LaneScheduler(lane).ScheduleAt(0, bomb{}, 0)
		err := ss.Run()
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("shards=%d Run = %v, want lane panic error", shards, err)
		}
		if !<-unwound {
			t.Fatalf("shards=%d parked goroutine did not unwind through the abort panic", shards)
		}
	}
}

// TestShardedHotPathAllocationFree extends the hot-path allocation
// contract to sharded dispatch: after a warm-up run grows the mailboxes
// and heaps to steady state, a second run pushing many cross-lane events
// must allocate only the fixed per-Run machinery (worker goroutines and
// channels), nothing per event. testing.AllocsPerRun only counts the
// calling goroutine, so this measures the whole process via MemStats.
func TestShardedHotPathAllocationFree(t *testing.T) {
	const hops = 20000
	ss := NewSharded(2)
	runPinned := func() {
		budget := hops
		a := &pinnedHopper{hops: &budget}
		b := &pinnedHopper{hops: &budget}
		a.sched, a.toLane, a.next = ss.LaneScheduler(0), 1, b
		b.sched, b.toLane, b.next = ss.LaneScheduler(1), 0, a
		a.sched.ScheduleAt(ss.Now(), a, 0)
		if err := ss.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}

	runPinned() // warm-up: grow heaps, mailboxes, worker stacks

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	runPinned()
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs

	// Fixed per-Run overhead (2 workers, 3 channels, bookkeeping) is well
	// under this budget; a per-event allocation would cost >= hops.
	if allocs > 1000 {
		t.Fatalf("sharded steady-state run allocated %d objects over %d cross-lane hops; hot path must not allocate", allocs, hops)
	}
}

// pinnedHopper bounces between two explicit lanes.
type pinnedHopper struct {
	sched  *Scheduler
	toLane int
	next   *pinnedHopper
	hops   *int
}

func (h *pinnedHopper) Fire(now Time, op uint8) {
	if *h.hops <= 0 {
		return
	}
	*h.hops--
	h.sched.SendTo(h.toLane, now.Add(time.Millisecond), h.next, op+1)
}
