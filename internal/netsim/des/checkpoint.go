package des

// Checkpoint support: a simulated world is snapshotted at a quiescent
// barrier — no events pending anywhere — so the only scheduler state a
// checkpoint must carry is the simulated clock. Restoring a world into a
// fresh scheduler therefore reduces to verifying quiescence and setting
// the clock; the event heap, mailboxes and per-lane sequence counters are
// all empty/irrelevant at a barrier by construction.

// Quiescent reports whether the scheduler holds no pending events.
func (s *Scheduler) Quiescent() bool { return len(s.heap) == 0 }

// RestoreClock sets the simulated clock to t without dispatching anything.
// It is the restore-side counterpart of a checkpoint taken at a quiescent
// barrier; callers must verify Quiescent first, since moving the clock
// over pending events would violate the time-ordered dispatch invariant.
func (s *Scheduler) RestoreClock(t Time) { s.now = t }

// Quiescent reports whether every lane's heap and every cross-lane
// mailbox is empty — the sharded scheduler's barrier condition. It first
// waits for any in-flight Run round to drain (a process resumed by one
// lane's event runs concurrently with the rest of the round), so calling
// it from a runnable process between RunSequenced workloads is safe.
func (ss *ShardedScheduler) Quiescent() bool {
	ss.roundBarrier()
	for _, lane := range ss.lanes {
		if lane.Pending() > 0 {
			return false
		}
	}
	for s := range ss.outMin {
		for _, at := range ss.outMin[s] {
			if at != infTime {
				return false
			}
		}
	}
	return true
}

// RestoreClock sets every lane's clock and the global round timestamp to
// t. The per-lane sequence counters are deliberately left alone: they
// only break ties among events scheduled into the same lane after the
// restore, and relative order within a lane is all dispatch depends on.
// Safe across differing lane counts — the checkpoint carries one barrier
// timestamp, not per-lane clocks, because at a barrier all lanes agree.
func (ss *ShardedScheduler) RestoreClock(t Time) {
	for _, lane := range ss.lanes {
		lane.now = t
	}
	ss.lastT = t
}
