// Package des is the discrete-event scheduler core of the simulated
// Internet: a time-ordered event heap keyed on simulated time, with
// pooled by-value event records and batched same-instant dispatch.
//
// netsim rewrites every exchange as a chain of events on a Scheduler —
// query departure, delivery at the destination, response arrival — so a
// single event loop can carry millions of concurrent stub clients
// without a goroutine, a mutex or a wall clock anywhere in the loop. The
// design follows the userspace-netstack style (gvisor's pkg/tcpip):
// single-threaded dispatch, explicit simulated time, allocation-free
// steady state.
//
// Determinism contract: events dispatch in strict (time, scheduling
// order) — two events at the same instant fire in the order they were
// scheduled. Given the same initial schedule and the same actor
// behaviour, a run is a pure function of its inputs; there is no
// randomness and no wall-clock reach in this package.
package des

import (
	"time"

	"dnscde/internal/detpar"
)

// Time is a point in simulated time, in nanoseconds since the
// scheduler's epoch. It is not related to any wall clock.
type Time int64

// Add returns t shifted forward by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t − u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the elapsed time since the epoch to a duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Actor receives dispatched events. The opcode echoes what was passed to
// Schedule, so one pooled actor can drive a multi-stage event chain
// (send → deliver → complete) without allocating a closure per stage.
type Actor interface {
	Fire(now Time, op uint8)
}

// event is one pending dispatch. Events live by value inside the
// scheduler's heap and batch slices — the pooled-record design: no
// per-event heap allocation, and slice capacity is recycled across
// Reset cycles and sync.Pool round trips.
type event struct {
	at    Time
	seq   uint64
	op    uint8
	actor Actor
}

// Scheduler is a deterministic single-threaded discrete-event executor.
// It is NOT safe for concurrent use: one goroutine owns a scheduler for
// the duration of a run, which is exactly what makes the dispatch loop
// mutex- and allocation-free. Concurrency across trials comes from
// running independent schedulers (detpar's per-trial fan-out), never
// from sharing one.
type Scheduler struct {
	now Time
	seq uint64
	// heap is a binary min-heap on (at, seq); seq breaks ties so equal
	// timestamps dispatch in scheduling order.
	heap []event
	// batch is the reused buffer drain fills with every event sharing
	// the earliest pending timestamp — batched delivery: all packets
	// landing at one instant are popped together, then fired in order,
	// halving heap traffic under synchronized arrivals.
	batch      []event
	dispatched uint64

	// lane is non-nil when this scheduler is one lane of a
	// ShardedScheduler; it carries the back-pointer the cross-lane send
	// path (SendTo) and the lane-aware accessors below use. Standalone
	// schedulers have a nil lane and behave as a single-lane universe.
	lane *laneLink
}

// laneLink ties a lane scheduler back to its ShardedScheduler.
type laneLink struct {
	ss  *ShardedScheduler
	idx int
}

// Lanes returns the number of event-loop lanes in this scheduler's
// universe: 1 for a standalone scheduler, N for a lane of an N-way
// ShardedScheduler.
func (s *Scheduler) Lanes() int {
	if s.lane == nil {
		return 1
	}
	return len(s.lane.ss.lanes)
}

// LaneIndex returns this scheduler's lane number (0 when standalone).
func (s *Scheduler) LaneIndex() int {
	if s.lane == nil {
		return 0
	}
	return s.lane.idx
}

// Sharded returns the ShardedScheduler this scheduler is a lane of, or
// nil for a standalone scheduler. Callers use it to detect whether the
// cross-lane machinery (and its process bridge) is available.
func (s *Scheduler) Sharded() *ShardedScheduler {
	if s.lane == nil {
		return nil
	}
	return s.lane.ss
}

// LaneFor maps a partition key (netsim uses the xor-folded source or
// destination address) to a lane index via the same splitmix64 mix
// detpar derives its per-index RNG streams from. A standalone scheduler
// always answers 0.
//
//cdelint:hotpath
func (s *Scheduler) LaneFor(key uint64) int {
	if s.lane == nil {
		return 0
	}
	return int(detpar.Mix(key) % uint64(len(s.lane.ss.lanes)))
}

// LaneScheduler returns the scheduler of lane i (itself when standalone).
func (s *Scheduler) LaneScheduler(i int) *Scheduler {
	if s.lane == nil {
		return s
	}
	return s.lane.ss.lanes[i]
}

// SendTo schedules an event on lane `lane` at absolute time `at`. Sends
// to the own lane (and every send on a standalone scheduler) are plain
// ScheduleAt calls; cross-lane sends append to the per-(sender,receiver)
// mailbox, which the receiving lane drains at the next simulated-time
// barrier. Only the goroutine currently running this lane may call it.
//
//cdelint:hotpath
func (s *Scheduler) SendTo(lane int, at Time, a Actor, op uint8) {
	if s.lane == nil || lane == s.lane.idx {
		s.ScheduleAt(at, a, op)
		return
	}
	s.lane.ss.post(s.lane.idx, lane, at, a, op)
}

// runRound dispatches every pending event with timestamp <= at and
// advances the lane clock to at — one lane's share of a sharded barrier
// round. Events an actor schedules at the same instant run in the same
// round; later times stay queued.
//
//cdelint:hotpath
func (s *Scheduler) runRound(at Time) {
	if s.now < at {
		s.now = at
	}
	for len(s.heap) > 0 && s.heap[0].at <= at {
		s.drain()
	}
}

// peek returns the timestamp of the earliest pending event.
func (s *Scheduler) peek() (Time, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// NewScheduler returns an empty scheduler with pre-sized event storage.
func NewScheduler() *Scheduler {
	return &Scheduler{heap: make([]event, 0, 64), batch: make([]event, 0, 16)}
}

// Now returns the current simulated time: the timestamp of the event
// being dispatched, or of the last batch dispatched when idle.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of scheduled, not-yet-dispatched events.
func (s *Scheduler) Pending() int { return len(s.heap) }

// Dispatched returns the total number of events fired since the last
// Reset.
func (s *Scheduler) Dispatched() uint64 { return s.dispatched }

// Schedule enqueues an event for actor a with opcode op, delay after the
// current simulated time. Negative delays clamp to "now".
//
//cdelint:hotpath
func (s *Scheduler) Schedule(delay time.Duration, a Actor, op uint8) {
	if delay < 0 {
		delay = 0
	}
	s.ScheduleAt(s.now.Add(delay), a, op)
}

// ScheduleAt enqueues an event at an absolute simulated time. Times in
// the past clamp to "now", so a chain can schedule against a fixed
// deadline (a retransmission timer armed at send time) without racing
// the clock backwards.
//
//cdelint:hotpath
func (s *Scheduler) ScheduleAt(at Time, a Actor, op uint8) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.heap = append(s.heap, event{at: at, seq: s.seq, op: op, actor: a})
	s.siftUp(len(s.heap) - 1)
}

// Step dispatches the single earliest pending event. It reports false
// when the queue is empty.
//
//cdelint:hotpath
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	ev := s.pop()
	s.now = ev.at
	s.dispatched++
	ev.actor.Fire(ev.at, ev.op)
	return true
}

// Run dispatches events in (time, order) until the queue drains,
// returning the number of events fired. Actors may schedule further
// events from inside Fire; they join the queue in order.
//
//cdelint:hotpath
func (s *Scheduler) Run() uint64 {
	start := s.dispatched
	for s.drain() {
	}
	return s.dispatched - start
}

// RunUntil dispatches events whose timestamp is <= deadline, leaving
// later events queued, and advances Now to deadline when the queue ran
// dry early — the simulated-time barrier checkpointing needs.
func (s *Scheduler) RunUntil(deadline Time) uint64 {
	start := s.dispatched
	for len(s.heap) > 0 && s.heap[0].at <= deadline {
		s.drain()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.dispatched - start
}

// drain pops the full batch of events sharing the earliest timestamp
// into the reused batch buffer, then fires them in scheduling order.
// Events scheduled by a firing actor — even at the same instant — land
// after the current batch, preserving the global (time, order) sequence.
//
//cdelint:hotpath
func (s *Scheduler) drain() bool {
	if len(s.heap) == 0 {
		return false
	}
	at := s.heap[0].at
	s.now = at
	s.batch = s.batch[:0]
	for len(s.heap) > 0 && s.heap[0].at == at {
		s.batch = append(s.batch, s.pop())
	}
	for i := range s.batch {
		ev := &s.batch[i]
		s.dispatched++
		ev.actor.Fire(at, ev.op)
		ev.actor = nil // drop the reference so pooled actors can recycle
	}
	return true
}

// Reset clears all pending events and rewinds the clock to the epoch,
// keeping the heap and batch capacity for reuse — the sync.Pool path
// netsim's blocking Exchange wrapper rides.
func (s *Scheduler) Reset() {
	for i := range s.heap {
		s.heap[i].actor = nil
	}
	s.heap = s.heap[:0]
	s.now = 0
	s.seq = 0
	s.dispatched = 0
}

// pop removes and returns the minimum event. Callers check len > 0.
//
//cdelint:hotpath
func (s *Scheduler) pop() event {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap[last].actor = nil
	s.heap = s.heap[:last]
	if last > 0 {
		s.siftDown(0)
	}
	return top
}

// less orders the heap by (at, seq).
//
//cdelint:hotpath
func (s *Scheduler) less(i, j int) bool {
	if s.heap[i].at != s.heap[j].at {
		return s.heap[i].at < s.heap[j].at
	}
	return s.heap[i].seq < s.heap[j].seq
}

//cdelint:hotpath
func (s *Scheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

//cdelint:hotpath
func (s *Scheduler) siftDown(i int) {
	n := len(s.heap)
	for {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < n && s.less(left, least) {
			least = left
		}
		if right < n && s.less(right, least) {
			least = right
		}
		if least == i {
			return
		}
		s.heap[i], s.heap[least] = s.heap[least], s.heap[i]
		i = least
	}
}
