package des

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// infTime is the sentinel "no pending event" timestamp.
const infTime = Time(math.MaxInt64)

// ErrDeadlock reports a sharded run that stalled: live processes remain
// but no lane has a pending event and nothing is runnable, so no chain
// can ever advance. It indicates a caller bug (a process parked on an
// event that was never scheduled).
var ErrDeadlock = errors.New("des: sharded run deadlocked: processes parked with no pending events")

// errAborted is the panic value delivered to parked processes when a
// lane panic kills the run; RunSequenced-style drivers recover it.
var errAborted = errors.New("des: sharded scheduler aborted")

// xev is one cross-lane mailbox record: a pending event in flight from a
// sending lane to a receiving lane. Records live by value in the
// per-(sender,receiver) outbox slices, whose capacity is recycled across
// barrier rounds — the pooled-mailbox design keeping the cross-shard
// send path allocation-free in steady state.
type xev struct {
	at    Time
	op    uint8
	actor Actor
}

// injection is one event a Process asks the coordinator to plant between
// rounds. (procID, seq) orders simultaneous injections deterministically.
type injection struct {
	procID uint64
	seq    uint64
	lane   int
	op     uint8
	delay  time.Duration
	actor  Actor
}

// laneCmd is one phase instruction from the coordinator to a lane worker.
type laneCmd struct {
	imp bool // true: drain inbound mailboxes; false: run the round
	at  Time
}

// laneDone is a worker's phase-completion report.
type laneDone struct {
	idx      int
	panicked any
}

// ShardedScheduler runs N independent event-loop lanes — one goroutine
// each — under a conservative bulk-synchronous protocol: every round,
// the coordinator computes the global minimum pending timestamp T across
// all lane heaps and cross-lane mailboxes, wakes exactly the lanes with
// work at T, and runs two phases separated by barriers. Phase one drains
// inbound mailboxes into the receiving lanes' heaps; phase two dispatches
// every event at T. Because no lane ever executes an event with a
// timestamp above the global minimum, an event's effects are always
// imported before any later-timestamped event runs — the same causal
// order a single-threaded scheduler guarantees.
//
// Mailboxes are lock-free in the only sense that matters here: the
// out[s][r] slice is written exclusively by lane s during run phases and
// read exclusively by lane r during import phases, and the two phases
// never overlap, so no send or drain takes a lock. Happens-before between
// the phases is established by the coordinator's channel barriers.
//
// Determinism: each lane dispatches its events in (time, seq) order, and
// a lane's event sequence is a pure function of the workload — imports
// happen in ascending sender-lane order at fixed barrier points, so the
// wall-clock interleaving of lane goroutines never leaks into dispatch
// order. Cross-shard *draw-order* invariance is a property netsim layers
// on top: every RNG stream belongs to one source address, and a source's
// draws all happen on causally ordered events, so re-partitioning sources
// over lanes cannot reorder any single stream (DESIGN.md §12).
type ShardedScheduler struct {
	lanes []*Scheduler

	// out[s][r] is the mailbox from lane s to lane r; outMin[s][r] is the
	// minimum timestamp it holds (infTime when empty), letting the
	// coordinator fold the global minimum without touching the records.
	out    [][][]xev
	outMin [][]Time

	// Worker machinery, rebuilt per Run (multi-lane only).
	cmds []chan laneCmd
	fin  chan laneDone
	wg   sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	runnable int
	procs    int
	procSeq  uint64
	injected []injection
	injSpare []injection
	procList []*Process
	dead     bool

	// lastT is the current round's timestamp; inRound is true while lane
	// workers (or the inline fast path) are still executing that round.
	// Both are guarded by mu for readers outside the coordinator
	// goroutine: a process resumed by one lane's event runs concurrently
	// with the rest of the round, so Now and Quiescent must wait for the
	// round to drain before reading scheduler state.
	lastT   Time
	inRound bool
}

// NewSharded builds an n-lane sharded scheduler (n < 1 is treated as 1).
// No goroutines start until Run is called.
func NewSharded(n int) *ShardedScheduler {
	if n < 1 {
		n = 1
	}
	ss := &ShardedScheduler{
		lanes:  make([]*Scheduler, n),
		out:    make([][][]xev, n),
		outMin: make([][]Time, n),
	}
	ss.cond = sync.NewCond(&ss.mu)
	for i := range ss.lanes {
		s := NewScheduler()
		s.lane = &laneLink{ss: ss, idx: i}
		ss.lanes[i] = s
		ss.out[i] = make([][]xev, n)
		ss.outMin[i] = make([]Time, n)
		for r := range ss.outMin[i] {
			ss.outMin[i][r] = infTime
		}
	}
	return ss
}

// Lanes returns the lane count.
func (ss *ShardedScheduler) Lanes() int { return len(ss.lanes) }

// LaneScheduler returns the scheduler owning lane i.
func (ss *ShardedScheduler) LaneScheduler(i int) *Scheduler { return ss.lanes[i] }

// LaneFor maps a partition key to its lane (see Scheduler.LaneFor).
func (ss *ShardedScheduler) LaneFor(key uint64) int { return ss.lanes[0].LaneFor(key) }

// Now returns the timestamp of the last completed round. When called
// from a process goroutine it blocks until the round that resumed the
// process has fully drained on every lane, so the value (and any world
// state read afterwards, while the caller remains runnable) is stable.
func (ss *ShardedScheduler) Now() Time {
	ss.mu.Lock()
	for ss.inRound && !ss.dead {
		ss.cond.Wait()
	}
	t := ss.lastT
	ss.mu.Unlock()
	return t
}

// roundBarrier blocks until no Run round is executing. While the caller
// is a runnable process the coordinator cannot start the next round
// (it waits for runnable == 0), so scheduler state is stable after the
// barrier returns.
func (ss *ShardedScheduler) roundBarrier() {
	ss.mu.Lock()
	for ss.inRound && !ss.dead {
		ss.cond.Wait()
	}
	ss.mu.Unlock()
}

// Dispatched sums the events fired across all lanes. Call it only when
// the scheduler is quiescent (before Run or after it returns).
func (ss *ShardedScheduler) Dispatched() uint64 {
	var n uint64
	for _, lane := range ss.lanes {
		n += lane.dispatched
	}
	return n
}

// post appends one cross-lane event to the from→to mailbox. Only the
// goroutine running lane `from` may call it (via Scheduler.SendTo).
//
//cdelint:hotpath
func (ss *ShardedScheduler) post(from, to int, at Time, a Actor, op uint8) {
	box := ss.out[from]
	//cdelint:allow hotalloc mailbox slices grow to the steady-state in-flight set once, then recycle their capacity across rounds
	box[to] = append(box[to], xev{at: at, op: op, actor: a})
	if at < ss.outMin[from][to] {
		ss.outMin[from][to] = at
	}
}

// importInbox drains every mailbox addressed to lane r into its heap, in
// ascending sender order, and resets the drained boxes. Runs on lane r's
// worker during an import phase, when no lane is sending.
//
//cdelint:hotpath
func (ss *ShardedScheduler) importInbox(r int) {
	lane := ss.lanes[r]
	for s := range ss.lanes {
		box := ss.out[s][r]
		if len(box) == 0 {
			continue
		}
		for i := range box {
			e := &box[i]
			lane.ScheduleAt(e.at, e.actor, e.op)
			e.actor = nil
		}
		ss.out[s][r] = box[:0]
		ss.outMin[s][r] = infTime
	}
}

// inboxMin returns the earliest timestamp pending in any mailbox
// addressed to lane r. Coordinator-only, between phases.
func (ss *ShardedScheduler) inboxMin(r int) Time {
	min := infTime
	for s := range ss.lanes {
		if at := ss.outMin[s][r]; at < min {
			min = at
		}
	}
	return min
}

// worker is one lane's phase loop: execute coordinator commands until the
// command channel closes, converting panics into reports so a fault in
// one lane fails the run instead of crashing the process.
func (ss *ShardedScheduler) worker(idx int, cmds <-chan laneCmd) {
	defer ss.wg.Done()
	for cmd := range cmds {
		res := laneDone{idx: idx}
		func() {
			defer func() {
				if r := recover(); r != nil {
					res.panicked = r
				}
			}()
			if cmd.imp {
				ss.importInbox(idx)
			} else {
				ss.lanes[idx].runRound(cmd.at)
			}
		}()
		ss.fin <- res
	}
}

// Run drives the sharded universe until every lane heap and mailbox is
// empty and every process has finished, then returns. It is the sharded
// analogue of Scheduler.Run; it must not be called concurrently with
// itself, and actors run strictly on their lane's goroutine. A panic
// inside an event is returned as an error (and parked processes are
// aborted); ErrDeadlock reports a stalled process graph.
func (ss *ShardedScheduler) Run() error {
	n := len(ss.lanes)
	if n > 1 {
		ss.cmds = make([]chan laneCmd, n)
		ss.fin = make(chan laneDone, n)
		for i := range ss.cmds {
			ss.cmds[i] = make(chan laneCmd, 1)
			ss.wg.Add(1)
			go ss.worker(i, ss.cmds[i])
		}
		defer func() {
			for _, c := range ss.cmds {
				close(c)
			}
			ss.wg.Wait()
			ss.cmds = nil
		}()
	}

	active := make([]int, 0, n)
	for {
		// Barrier on computation: every process resumed during the last
		// round must park (or finish) before the next timestamp is chosen,
		// so injection timing is a function of the event graph alone.
		ss.mu.Lock()
		for ss.runnable > 0 {
			ss.cond.Wait()
		}
		inj := ss.injected
		ss.injected = ss.injSpare[:0]
		ss.injSpare = inj
		procs := ss.procs
		ss.mu.Unlock()

		if len(inj) > 0 {
			// Simultaneous injections from distinct processes are ordered
			// by (process id, per-process seq) — ids are assigned in
			// creation order, so sequential-causality workloads (at most
			// one runnable process at a time) are fully deterministic.
			sort.Slice(inj, func(i, j int) bool {
				if inj[i].procID != inj[j].procID {
					return inj[i].procID < inj[j].procID
				}
				return inj[i].seq < inj[j].seq
			})
			for i := range inj {
				in := &inj[i]
				ss.lanes[in.lane].ScheduleAt(ss.lastT.Add(in.delay), in.actor, in.op)
				in.actor = nil
			}
		}

		// Global minimum pending timestamp across heaps and mailboxes.
		T := infTime
		for _, lane := range ss.lanes {
			if at, ok := lane.peek(); ok && at < T {
				T = at
			}
		}
		for s := range ss.outMin {
			for _, at := range ss.outMin[s] {
				if at < T {
					T = at
				}
			}
		}
		if T == infTime {
			ss.mu.Lock()
			if ss.procs == 0 && ss.runnable == 0 && len(ss.injected) == 0 {
				ss.mu.Unlock()
				return nil
			}
			if ss.runnable == 0 && len(ss.injected) == 0 {
				ss.mu.Unlock()
				ss.abort()
				return ErrDeadlock
			}
			ss.mu.Unlock()
			continue
		}
		_ = procs

		// Active set: lanes with events to run at T or mail to import.
		active = active[:0]
		for i, lane := range ss.lanes {
			at, ok := lane.peek()
			if (ok && at == T) || ss.inboxMin(i) == T {
				active = append(active, i)
			}
		}

		// Publish the round before dispatching it: lastT is final for the
		// round before any event fires, so a process resumed mid-round
		// already reads the right clock, and inRound holds Now/Quiescent
		// readers back until every lane has finished the round.
		ss.mu.Lock()
		ss.inRound = true
		ss.lastT = T
		ss.mu.Unlock()

		if n == 1 {
			if err := ss.runLaneInline(T); err != nil {
				ss.abort()
				return err
			}
		} else {
			if err := ss.phase(active, laneCmd{imp: true}); err != nil {
				ss.abort()
				return err
			}
			if err := ss.phase(active, laneCmd{at: T}); err != nil {
				ss.abort()
				return err
			}
		}

		ss.mu.Lock()
		ss.inRound = false
		ss.cond.Broadcast()
		ss.mu.Unlock()
	}
}

// runLaneInline is the single-lane fast path: no worker goroutines, no
// barriers — the coordinator runs the round itself. Cross-lane mailboxes
// are unreachable with one lane, so no import phase is needed.
func (ss *ShardedScheduler) runLaneInline(at Time) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("des: lane 0 panicked: %v", r)
		}
	}()
	ss.lanes[0].runRound(at)
	return nil
}

// phase broadcasts one command to the active lanes and waits for all of
// them — one barrier of the bulk-synchronous round.
func (ss *ShardedScheduler) phase(active []int, cmd laneCmd) error {
	for _, i := range active {
		ss.cmds[i] <- cmd
	}
	var perr error
	for range active {
		res := <-ss.fin
		if res.panicked != nil && perr == nil {
			perr = fmt.Errorf("des: lane %d panicked: %v", res.idx, res.panicked)
		}
	}
	return perr
}

// abort marks the universe dead and unparks every parked process with an
// abort panic, so blocked RunSequenced-style drivers can unwind.
func (ss *ShardedScheduler) abort() {
	ss.mu.Lock()
	ss.dead = true
	ss.inRound = false
	ss.cond.Broadcast()
	var parked []*Process
	for _, p := range ss.procList {
		if p.parked && !p.finished {
			p.aborted = true
			parked = append(parked, p)
		}
	}
	ss.mu.Unlock()
	for _, p := range parked {
		p.resume <- struct{}{}
	}
}

// Process is the bridge between blocking, goroutine-shaped code (the
// scenario probers, the platform's recursive resolver) and the sharded
// event loops. A process lives on its own goroutine; to perform one
// event-chained operation it injects the chain's first event via Await
// and parks until some event calls Resume. The coordinator never starts
// a round while any process is runnable, which makes injection timing —
// and therefore every downstream draw — deterministic.
type Process struct {
	ss  *ShardedScheduler
	id  uint64
	seq uint64
	// delay accumulates simulated processing time (Advance) charged since
	// the last injection; the next injected event lands that far after
	// the current round's timestamp.
	delay    time.Duration
	resume   chan struct{}
	parked   bool
	finished bool
	aborted  bool
}

// NewProcess registers a new process with the universe. The process
// counts as runnable until its goroutine calls Await, Detach or Finish,
// so create it before (or on the same lane event as) starting the
// goroutine that drives it.
func (ss *ShardedScheduler) NewProcess() *Process {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.procSeq++
	p := &Process{ss: ss, id: ss.procSeq, resume: make(chan struct{}, 1)}
	ss.procs++
	ss.runnable++
	ss.procList = append(ss.procList, p)
	return p
}

// Lanes returns the universe's lane count.
func (p *Process) Lanes() int { return len(p.ss.lanes) }

// LaneFor maps a partition key to a lane.
func (p *Process) LaneFor(key uint64) int { return p.ss.LaneFor(key) }

// LaneScheduler returns the scheduler of lane i.
func (p *Process) LaneScheduler(i int) *Scheduler { return p.ss.lanes[i] }

// Advance charges d of simulated processing time to the process: the
// next event it injects lands d later than it otherwise would. It is the
// process-world analogue of netsim.ChargeLatency.
func (p *Process) Advance(d time.Duration) {
	if d > 0 {
		p.delay += d
	}
}

// Await injects one event on the given lane (at the current round's
// timestamp plus any Advance charge) and parks the calling goroutine
// until an event calls Resume. The injected actor's chain must
// eventually Resume this process, or the run deadlocks.
func (p *Process) Await(lane int, a Actor, op uint8) {
	ss := p.ss
	ss.mu.Lock()
	if ss.dead {
		ss.mu.Unlock()
		panic(errAborted)
	}
	p.seq++
	ss.injected = append(ss.injected, injection{procID: p.id, seq: p.seq, lane: lane, op: op, delay: p.delay, actor: a})
	p.delay = 0
	p.parked = true
	ss.runnable--
	ss.cond.Broadcast()
	ss.mu.Unlock()
	<-p.resume
	if p.aborted {
		panic(errAborted)
	}
}

// Resume unparks a process parked in Await. It must be called from a
// lane event (the chain the process injected), at most once per Await.
func (p *Process) Resume() {
	ss := p.ss
	ss.mu.Lock()
	ss.runnable++
	p.parked = false
	ss.mu.Unlock()
	p.resume <- struct{}{}
}

// Detach injects one final event and finishes the process without
// parking: the goroutine hands its continuation to the event chain and
// exits. The platform's recursion uses it to deliver opRespond.
func (p *Process) Detach(lane int, a Actor, op uint8) {
	ss := p.ss
	ss.mu.Lock()
	p.seq++
	ss.injected = append(ss.injected, injection{procID: p.id, seq: p.seq, lane: lane, op: op, delay: p.delay, actor: a})
	p.delay = 0
	p.finished = true
	ss.procs--
	ss.runnable--
	ss.cond.Broadcast()
	ss.mu.Unlock()
}

// Finish retires the process without injecting anything further.
func (p *Process) Finish() {
	ss := p.ss
	ss.mu.Lock()
	p.finished = true
	ss.procs--
	ss.runnable--
	ss.cond.Broadcast()
	ss.mu.Unlock()
}

// Aborted reports whether the universe died under this process (after a
// lane panic); drivers use it to distinguish abort unwinds.
func Aborted(r any) bool {
	err, ok := r.(error)
	return ok && errors.Is(err, errAborted)
}
