package netsim

import "testing"

// FuzzParseFaultProfile asserts the fault-grammar parser never panics
// and that String() of any accepted profile reparses to a profile whose
// own String() is stable — the normalization must converge.
func FuzzParseFaultProfile(f *testing.F) {
	for _, seed := range []string{
		"",
		"burst=0.11:4",
		"burst=0.05",
		"servfail=0.02,refused=0.01,truncate=0.1",
		"duplicate=0.03,late=0.02",
		"outage=4+8",
		"outage=0+1,outage=10+20,burst=0.11:4",
		"burst=1:1",
		"bogus=1",
		"burst=",
		"outage=4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 1<<12 {
			t.Skip("oversize spec")
		}
		fp, err := ParseFaultProfile(spec)
		if err != nil || fp == nil {
			return
		}
		s := fp.String()
		fp2, err := ParseFaultProfile(s)
		if err != nil {
			t.Fatalf("String() output %q does not reparse: %v", s, err)
		}
		// One normalization pass must converge: the reparse's rendering is
		// a fixpoint (the first String may round float rates).
		s2 := fp2.String()
		fp3, err := ParseFaultProfile(s2)
		if err != nil {
			t.Fatalf("second String() output %q does not reparse: %v", s2, err)
		}
		if s3 := fp3.String(); s3 != s2 {
			t.Fatalf("String not convergent: %q -> %q -> %q", s, s2, s3)
		}
	})
}
