package worldstate

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
)

// writer accumulates the snapshot bytes. All integers are big-endian;
// variable-length data is u32-length-prefixed.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }

func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// addr encodes a netip.Addr as length-prefixed MarshalBinary bytes
// (0 = invalid/zero address, 4 = IPv4, 16 = IPv6).
func (w *writer) addr(a netip.Addr) error {
	b, err := a.MarshalBinary()
	if err != nil {
		return fmt.Errorf("worldstate: encode address %v: %w", a, err)
	}
	if len(b) > 255 {
		return fmt.Errorf("worldstate: encode address %v: unexpected %d-byte form", a, len(b))
	}
	w.u8(uint8(len(b)))
	w.buf = append(w.buf, b...)
	return nil
}

// section appends one (kind, length, payload) record built by fn.
func (w *writer) section(kind uint16, fn func(*writer) error) error {
	var body writer
	if err := fn(&body); err != nil {
		return err
	}
	w.u16(kind)
	w.bytes(body.buf)
	return nil
}

// Encode serializes an Image into the versioned binary snapshot format.
// The encoding is canonical: identical Images produce identical bytes
// (maps are emitted in sorted order), so snapshot bytes can be compared
// directly to detect state divergence.
func Encode(img *Image) ([]byte, error) {
	var w writer
	w.buf = append(w.buf, magic...)
	w.u16(Version)

	err := w.section(sectionMeta, func(b *writer) error {
		b.i64(img.Meta.Seed)
		b.i64(img.Meta.ClockUnixNano)
		b.i64(int64(img.Meta.BarrierT))
		for _, a := range []netip.Addr{img.Meta.NextIngress, img.Meta.NextEgress, img.Meta.NextClient} {
			if err := b.addr(a); err != nil {
				return err
			}
		}
		b.u64(uint64(img.Meta.SessionCursor))
		return nil
	})
	if err != nil {
		return nil, err
	}

	err = w.section(sectionNetwork, func(b *writer) error {
		s := img.Network.Stats
		for _, v := range []int64{
			s.Exchanges, s.Lost, s.BytesSent, s.BytesRecvd,
			s.Faults.ServFail, s.Faults.Refused, s.Faults.Truncated,
			s.Faults.Duplicated, s.Faults.Late, s.Faults.Outage,
		} {
			b.i64(v)
		}
		b.u32(uint32(len(img.Network.Sources)))
		for _, src := range img.Network.Sources {
			if err := b.addr(src.Addr); err != nil {
				return err
			}
			b.u64(src.Draws)
			b.u32(uint32(len(src.Flows)))
			for _, f := range src.Flows {
				if err := b.addr(f.Dst); err != nil {
					return err
				}
				b.i64(int64(f.N))
				var flags uint8
				if f.SrcBad {
					flags |= 1
				}
				if f.DstBad {
					flags |= 2
				}
				b.u8(flags)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	err = w.section(sectionPlatforms, func(b *writer) error {
		b.u32(uint32(len(img.Platforms)))
		for _, p := range img.Platforms {
			b.str(p.Name)
			b.str(p.State.Selector.Kind)
			b.i64(int64(p.State.Selector.Pos))
			b.u64(p.State.Selector.Draws)
			b.i64(int64(p.State.EgressRR))
			b.u64(p.State.RNGDraws)
			b.u32(uint32(len(p.State.Down)))
			for _, d := range p.State.Down {
				b.bool(d)
			}
			ps := p.State.Stats
			for _, v := range []int64{ps.Queries, ps.CacheHits, ps.CacheMisses, ps.Refused, ps.UpstreamFail} {
				b.i64(v)
			}
			b.u32(uint32(len(p.Caches)))
			for _, c := range p.Caches {
				b.str(c.ID)
				for _, v := range []int64{c.Stats.Hits, c.Stats.Misses, c.Stats.Evictions, c.Stats.Expired} {
					b.i64(v)
				}
				b.u32(uint32(len(c.Items)))
				for _, it := range c.Items {
					b.str(it.Key)
					b.i64(it.Stored.UnixNano())
					b.i64(it.Expires.UnixNano())
					wire, err := encodeEntry(it.Entry)
					if err != nil {
						return err
					}
					b.bytes(wire)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	err = w.section(sectionMetrics, func(b *writer) error {
		counterNames := make([]string, 0, len(img.Metrics.Counters))
		for name := range img.Metrics.Counters {
			counterNames = append(counterNames, name)
		}
		sort.Strings(counterNames)
		b.u32(uint32(len(counterNames)))
		for _, name := range counterNames {
			b.str(name)
			b.i64(img.Metrics.Counters[name])
		}
		histNames := make([]string, 0, len(img.Metrics.Histograms))
		for name := range img.Metrics.Histograms {
			histNames = append(histNames, name)
		}
		sort.Strings(histNames)
		b.u32(uint32(len(histNames)))
		for _, name := range histNames {
			h := img.Metrics.Histograms[name]
			b.str(name)
			b.u32(uint32(len(h.Bounds)))
			for _, v := range h.Bounds {
				b.i64(v)
			}
			b.u32(uint32(len(h.Buckets)))
			for _, v := range h.Buckets {
				b.i64(v)
			}
			b.i64(h.Count)
			b.i64(h.Sum)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	if len(img.App) > 0 {
		err = w.section(sectionApp, func(b *writer) error {
			b.buf = append(b.buf, img.App...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	return w.buf, nil
}
