package worldstate

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/dnscache"
	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
)

// sampleImage builds a representative snapshot exercising every section
// and every field kind: multiple RNG sources with fault-chain flows,
// two platforms with different selector kinds, positive and negative
// cache entries, counters, histograms and an app payload.
func sampleImage() *Image {
	stored := time.Date(2017, time.June, 26, 0, 0, 42, 0, time.UTC)
	return &Image{
		Meta: Meta{
			Seed:          7,
			ClockUnixNano: stored.Add(90 * time.Second).UnixNano(),
			BarrierT:      123456789,
			NextIngress:   netip.MustParseAddr("10.10.0.3"),
			NextEgress:    netip.MustParseAddr("10.20.0.5"),
			NextClient:    netip.MustParseAddr("10.30.0.9"),
			SessionCursor: 41,
		},
		Network: Network{
			Stats: netsim.Stats{
				Exchanges: 100, Lost: 3, BytesSent: 5000, BytesRecvd: 7000,
				Faults: netsim.FaultStats{ServFail: 2, Late: 1},
			},
			Sources: []netsim.SourceState{
				{
					Addr:  netip.MustParseAddr("10.30.0.1"),
					Draws: 17,
					Flows: []netsim.FlowSnapshot{
						{Dst: netip.MustParseAddr("10.10.0.1"), N: 4, SrcBad: true},
						{Dst: netip.MustParseAddr("203.0.113.20"), N: 9, DstBad: true},
					},
				},
				{Addr: netip.MustParseAddr("10.30.0.2"), Draws: 3},
			},
		},
		Platforms: []Platform{
			{
				Name: "resolver",
				State: platform.CheckpointState{
					Selector: loadbal.State{Kind: "round-robin", Pos: 2},
					EgressRR: 1,
					RNGDraws: 12,
					Down:     []bool{false, true, false},
					Stats:    platform.PlatformStats{Queries: 50, CacheHits: 30, CacheMisses: 20},
				},
				Caches: []CacheState{
					{
						ID:    "resolver-c0",
						Stats: dnscache.Stats{Hits: 10, Misses: 5, Evictions: 1},
						Items: []dnscache.ItemState{
							{
								Key: "a.probe.cache.example.|IN|A",
								Entry: dnscache.Entry{
									Records: []dnswire.RR{{
										Name: "a.probe.cache.example.", Class: dnswire.ClassIN, TTL: 60,
										Data: dnswire.ARecord{Addr: netip.MustParseAddr("192.0.2.80")},
									}},
								},
								Stored:  stored,
								Expires: stored.Add(60 * time.Second),
							},
							{
								Key: "nx.probe.cache.example.|IN|A",
								Entry: dnscache.Entry{
									RCode: dnswire.RCodeNXDomain,
									Authority: []dnswire.RR{{
										Name: "cache.example.", Class: dnswire.ClassIN, TTL: 30,
										Data: dnswire.SOARecord{MName: "ns.cache.example.", RName: "root.cache.example.", Serial: 1, Minimum: 30},
									}},
								},
								Stored:  stored,
								Expires: stored.Add(30 * time.Second),
							},
						},
					},
					{ID: "resolver-c1"},
					{ID: "resolver-c2"},
				},
			},
			{
				Name: "forwarder",
				State: platform.CheckpointState{
					Selector: loadbal.State{Kind: "random", Draws: 99},
					Down:     []bool{false},
					Stats:    platform.PlatformStats{Queries: 8, UpstreamFail: 1},
				},
				Caches: []CacheState{{ID: "forwarder-c0"}},
			},
		},
		Metrics: metrics.Snapshot{
			Counters: map[string]int64{
				"core.probes.sent":    25,
				"netsim.packets.sent": 200,
				"zero.counter":        0,
			},
			Histograms: map[string]metrics.HistogramSnapshot{
				"netsim.rtt.us": {Bounds: []int64{100, 1000, 10000}, Buckets: []int64{5, 10, 2, 0}, Count: 17, Sum: 31234},
			},
		},
		App: []byte(`{"scenario":"x","trial":0,"barrier":1}`),
	}
}

// TestEncodeDecodeRoundTrip locks the codec's core contract: Encode then
// Decode reproduces the image exactly (per Diff), and re-encoding the
// decoded image reproduces the bytes exactly — the canonical-bytes
// property the bisector compares on.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := sampleImage()
	buf, err := Encode(img)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.HasPrefix(buf, []byte(magic)) {
		t.Errorf("snapshot does not start with magic %q", magic)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d := Diff(img, got); d != "" {
		t.Errorf("decoded image differs: %s", d)
	}
	buf2, err := Encode(got)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Error("re-encoded snapshot bytes differ from original")
	}
}

// TestEncodeSortsMetrics asserts canonical bytes do not depend on map
// iteration order: two images with the same metrics encode identically
// (run enough times that Go's randomized map order would expose an
// order-dependent encoder).
func TestEncodeSortsMetrics(t *testing.T) {
	var first []byte
	for i := 0; i < 20; i++ {
		buf, err := Encode(sampleImage())
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf
		} else if !bytes.Equal(first, buf) {
			t.Fatal("Encode is not deterministic across runs")
		}
	}
}

// TestDecodeRejectsCorruption walks a table of deliberately damaged
// snapshots; each must fail with ErrCorrupt and never panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	valid, err := Encode(sampleImage())
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string]func() []byte{
		"empty": func() []byte { return nil },
		"short magic": func() []byte {
			return valid[:4]
		},
		"bad magic": func() []byte {
			b := append([]byte(nil), valid...)
			b[0] = 'X'
			return b
		},
		"bad version": func() []byte {
			b := append([]byte(nil), valid...)
			b[8], b[9] = 0xff, 0xff
			return b
		},
		"truncated mid-section": func() []byte {
			return valid[:len(valid)/2]
		},
		"trailing garbage": func() []byte {
			return append(append([]byte(nil), valid...), 0xde, 0xad)
		},
		"section length overruns buffer": func() []byte {
			b := append([]byte(nil), valid...)
			// First section header sits right after magic+version: kind
			// at [10:12], length at [12:16]. Claim more payload than
			// the buffer holds.
			b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0xff
			return b
		},
		"duplicate section": func() []byte {
			// Append a second copy of the first section (META).
			b := append([]byte(nil), valid...)
			secLen := 16 + int(uint32(b[12])<<24|uint32(b[13])<<16|uint32(b[14])<<8|uint32(b[15]))
			return append(b, b[10:secLen]...)
		},
		"missing required section": func() []byte {
			// Keep header but drop every section.
			return valid[:10]
		},
	}
	for name, make := range damage {
		t.Run(name, func(t *testing.T) {
			img, err := Decode(make())
			if err == nil {
				t.Fatal("Decode accepted damaged snapshot")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("err = %v, want ErrCorrupt", err)
			}
			if img != nil {
				t.Error("Decode returned a partial image alongside an error")
			}
		})
	}
}

// TestDecodeSkipsUnknownSections locks forward compatibility: a snapshot
// with an extra unknown section kind decodes fine and the known content
// is intact.
func TestDecodeSkipsUnknownSections(t *testing.T) {
	img := sampleImage()
	valid, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	// Splice an unknown section (kind 999, 3-byte payload) after the header.
	unknown := []byte{0x03, 0xe7, 0x00, 0x00, 0x00, 0x03, 0xaa, 0xbb, 0xcc}
	spliced := append(append(append([]byte(nil), valid[:10]...), unknown...), valid[10:]...)
	got, err := Decode(spliced)
	if err != nil {
		t.Fatalf("Decode with unknown section: %v", err)
	}
	if d := Diff(img, got); d != "" {
		t.Errorf("unknown section disturbed decoding: %s", d)
	}
}

// TestDiffReportsFirstDivergence spot-checks the bisector's diff
// explainer on a few mutated fields.
func TestDiffReportsFirstDivergence(t *testing.T) {
	a := sampleImage()
	if d := Diff(a, sampleImage()); d != "" {
		t.Fatalf("identical images diff as %q", d)
	}
	b := sampleImage()
	b.Meta.BarrierT++
	if d := Diff(a, b); d == "" {
		t.Error("event-clock divergence not reported")
	}
	c := sampleImage()
	c.Network.Sources[0].Draws++
	if d := Diff(a, c); d == "" {
		t.Error("RNG stream divergence not reported")
	}
	e := sampleImage()
	e.Platforms[0].Caches[0].Items[0].Expires = e.Platforms[0].Caches[0].Items[0].Expires.Add(time.Second)
	if d := Diff(a, e); d == "" {
		t.Error("cache entry stamp divergence not reported")
	}
	m := sampleImage()
	m.Metrics.Counters["core.probes.sent"]++
	if d := Diff(a, m); d == "" {
		t.Error("counter divergence not reported")
	}
}
