package worldstate

import (
	"fmt"
	"sort"
)

// Diff compares two decoded snapshots and describes the first difference
// it finds, walking section by section in encoding order — the divergence
// bisector uses it to turn "the snapshot bytes differ at barrier T" into
// an actionable "which subsystem's state diverged first" report. Returns
// "" when the images are identical.
func Diff(a, b *Image) string {
	if d := diffMeta(a.Meta, b.Meta); d != "" {
		return "meta: " + d
	}
	if d := diffNetwork(a.Network, b.Network); d != "" {
		return "network: " + d
	}
	if d := diffPlatforms(a.Platforms, b.Platforms); d != "" {
		return "platforms: " + d
	}
	if d := diffMetrics(a, b); d != "" {
		return "metrics: " + d
	}
	if string(a.App) != string(b.App) {
		return fmt.Sprintf("app payload differs (%d vs %d bytes)", len(a.App), len(b.App))
	}
	return ""
}

func diffMeta(a, b Meta) string {
	switch {
	case a.Seed != b.Seed:
		return fmt.Sprintf("seed %d vs %d", a.Seed, b.Seed)
	case a.ClockUnixNano != b.ClockUnixNano:
		return fmt.Sprintf("virtual clock %d vs %d ns", a.ClockUnixNano, b.ClockUnixNano)
	case a.BarrierT != b.BarrierT:
		return fmt.Sprintf("event clock %d vs %d", a.BarrierT, b.BarrierT)
	case a.NextIngress != b.NextIngress:
		return fmt.Sprintf("ingress allocator %v vs %v", a.NextIngress, b.NextIngress)
	case a.NextEgress != b.NextEgress:
		return fmt.Sprintf("egress allocator %v vs %v", a.NextEgress, b.NextEgress)
	case a.NextClient != b.NextClient:
		return fmt.Sprintf("client allocator %v vs %v", a.NextClient, b.NextClient)
	case a.SessionCursor != b.SessionCursor:
		return fmt.Sprintf("session cursor %d vs %d", a.SessionCursor, b.SessionCursor)
	}
	return ""
}

func diffNetwork(a, b Network) string {
	if a.Stats != b.Stats {
		return fmt.Sprintf("stats %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Sources) != len(b.Sources) {
		return fmt.Sprintf("%d vs %d sources", len(a.Sources), len(b.Sources))
	}
	for i := range a.Sources {
		sa, sb := a.Sources[i], b.Sources[i]
		if sa.Addr != sb.Addr {
			return fmt.Sprintf("source %d is %v vs %v", i, sa.Addr, sb.Addr)
		}
		if sa.Draws != sb.Draws {
			return fmt.Sprintf("source %v drew %d vs %d values", sa.Addr, sa.Draws, sb.Draws)
		}
		if len(sa.Flows) != len(sb.Flows) {
			return fmt.Sprintf("source %v has %d vs %d flows", sa.Addr, len(sa.Flows), len(sb.Flows))
		}
		for j := range sa.Flows {
			if sa.Flows[j] != sb.Flows[j] {
				return fmt.Sprintf("source %v flow %v: %+v vs %+v", sa.Addr, sa.Flows[j].Dst, sa.Flows[j], sb.Flows[j])
			}
		}
	}
	return ""
}

func diffPlatforms(a, b []Platform) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d vs %d platforms", len(a), len(b))
	}
	for i := range a {
		pa, pb := a[i], b[i]
		if pa.Name != pb.Name {
			return fmt.Sprintf("platform %d is %q vs %q", i, pa.Name, pb.Name)
		}
		if pa.State.Selector != pb.State.Selector {
			return fmt.Sprintf("%s selector %+v vs %+v", pa.Name, pa.State.Selector, pb.State.Selector)
		}
		if pa.State.EgressRR != pb.State.EgressRR || pa.State.RNGDraws != pb.State.RNGDraws {
			return fmt.Sprintf("%s egress cursor/draws (%d,%d) vs (%d,%d)",
				pa.Name, pa.State.EgressRR, pa.State.RNGDraws, pb.State.EgressRR, pb.State.RNGDraws)
		}
		if fmt.Sprint(pa.State.Down) != fmt.Sprint(pb.State.Down) {
			return fmt.Sprintf("%s down flags %v vs %v", pa.Name, pa.State.Down, pb.State.Down)
		}
		if pa.State.Stats != pb.State.Stats {
			return fmt.Sprintf("%s stats %+v vs %+v", pa.Name, pa.State.Stats, pb.State.Stats)
		}
		if d := diffCaches(pa.Caches, pb.Caches); d != "" {
			return pa.Name + ": " + d
		}
	}
	return ""
}

func diffCaches(a, b []CacheState) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d vs %d caches", len(a), len(b))
	}
	for i := range a {
		ca, cb := a[i], b[i]
		if ca.ID != cb.ID {
			return fmt.Sprintf("cache %d is %q vs %q", i, ca.ID, cb.ID)
		}
		if ca.Stats != cb.Stats {
			return fmt.Sprintf("%s stats %+v vs %+v", ca.ID, ca.Stats, cb.Stats)
		}
		if len(ca.Items) != len(cb.Items) {
			return fmt.Sprintf("%s holds %d vs %d entries", ca.ID, len(ca.Items), len(cb.Items))
		}
		for j := range ca.Items {
			ia, ib := ca.Items[j], cb.Items[j]
			if ia.Key != ib.Key {
				return fmt.Sprintf("%s entry %d (LRU order) keyed %q vs %q", ca.ID, j, ia.Key, ib.Key)
			}
			if !ia.Stored.Equal(ib.Stored) || !ia.Expires.Equal(ib.Expires) {
				return fmt.Sprintf("%s entry %q stamps (%v,%v) vs (%v,%v)",
					ca.ID, ia.Key, ia.Stored, ia.Expires, ib.Stored, ib.Expires)
			}
			wa, errA := encodeEntry(ia.Entry)
			wb, errB := encodeEntry(ib.Entry)
			if errA != nil || errB != nil || string(wa) != string(wb) {
				return fmt.Sprintf("%s entry %q payload differs", ca.ID, ia.Key)
			}
		}
	}
	return ""
}

func diffMetrics(a, b *Image) string {
	names := make(map[string]bool)
	for name := range a.Metrics.Counters {
		names[name] = true
	}
	for name := range b.Metrics.Counters {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		va, okA := a.Metrics.Counters[name]
		vb, okB := b.Metrics.Counters[name]
		if okA != okB || va != vb {
			return fmt.Sprintf("counter %q = %d (present=%v) vs %d (present=%v)", name, va, okA, vb, okB)
		}
	}
	if len(a.Metrics.Histograms) != len(b.Metrics.Histograms) {
		return fmt.Sprintf("%d vs %d histograms", len(a.Metrics.Histograms), len(b.Metrics.Histograms))
	}
	for name, ha := range a.Metrics.Histograms {
		hb, ok := b.Metrics.Histograms[name]
		if !ok {
			return fmt.Sprintf("histogram %q present vs absent", name)
		}
		if ha.Count != hb.Count || ha.Sum != hb.Sum ||
			fmt.Sprint(ha.Bounds) != fmt.Sprint(hb.Bounds) ||
			fmt.Sprint(ha.Buckets) != fmt.Sprint(hb.Buckets) {
			return fmt.Sprintf("histogram %q differs (count %d vs %d, sum %d vs %d)", name, ha.Count, hb.Count, ha.Sum, hb.Sum)
		}
	}
	return ""
}
