package worldstate

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"dnscde/internal/dnscache"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/netsim/des"
	"dnscde/internal/platform"
)

// reader walks snapshot bytes with bounds checking. Every primitive
// returns ErrCorrupt-wrapped errors on truncation, and every count is
// validated against the bytes remaining before anything is allocated, so
// hostile length fields cannot drive huge allocations.
type reader struct {
	buf []byte
	off int
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, corrupt("need %d bytes at offset %d, have %d", n, r.off, r.remaining())
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *reader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

// count reads a u32 element count and validates it against the remaining
// bytes assuming each element occupies at least minElem bytes, bounding
// any allocation by the snapshot's actual size.
func (r *reader) count(minElem int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if minElem < 1 {
		minElem = 1
	}
	if int64(n)*int64(minElem) > int64(r.remaining()) {
		return 0, corrupt("count %d exceeds remaining %d bytes (min element %d)", n, r.remaining(), minElem)
	}
	return int(n), nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	b, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	return b, nil
}

func (r *reader) str() (string, error) {
	b, err := r.bytes()
	return string(b), err
}

func (r *reader) bool() (bool, error) {
	v, err := r.u8()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, corrupt("bool byte %d at offset %d", v, r.off-1)
	}
}

func (r *reader) addr() (netip.Addr, error) {
	n, err := r.u8()
	if err != nil {
		return netip.Addr{}, err
	}
	b, err := r.take(int(n))
	if err != nil {
		return netip.Addr{}, err
	}
	var a netip.Addr
	if err := a.UnmarshalBinary(b); err != nil {
		return netip.Addr{}, corrupt("address: %v", err)
	}
	return a, nil
}

// Decode parses snapshot bytes into an Image. It is pure: on any error it
// returns a nil Image and an error wrapping ErrCorrupt, and it never
// mutates anything outside its own return value — restoring into a world
// is a separate, validated step (simtest.World.Restore).
func Decode(buf []byte) (*Image, error) {
	r := &reader{buf: buf}
	head, err := r.take(len(magic))
	if err != nil {
		return nil, err
	}
	if string(head) != magic {
		return nil, corrupt("bad magic %q", head)
	}
	version, err := r.u16()
	if err != nil {
		return nil, err
	}
	if version != Version {
		return nil, corrupt("unsupported version %d (have %d)", version, Version)
	}

	img := &Image{}
	seen := make(map[uint16]bool)
	for r.remaining() > 0 {
		kind, err := r.u16()
		if err != nil {
			return nil, err
		}
		payload, err := r.bytes()
		if err != nil {
			return nil, err
		}
		if seen[kind] {
			return nil, corrupt("duplicate section %d", kind)
		}
		seen[kind] = true
		sr := &reader{buf: payload}
		switch kind {
		case sectionMeta:
			err = decodeMeta(sr, &img.Meta)
		case sectionNetwork:
			err = decodeNetwork(sr, &img.Network)
		case sectionPlatforms:
			err = decodePlatforms(sr, img)
		case sectionMetrics:
			err = decodeMetrics(sr, &img.Metrics)
		case sectionApp:
			img.App = append([]byte(nil), payload...)
			sr.off = len(payload)
		default:
			// Unknown section: skip for forward compatibility.
			sr.off = len(payload)
		}
		if err != nil {
			return nil, err
		}
		if sr.remaining() > 0 {
			return nil, corrupt("section %d has %d trailing bytes", kind, sr.remaining())
		}
	}
	for _, kind := range []uint16{sectionMeta, sectionNetwork, sectionPlatforms, sectionMetrics} {
		if !seen[kind] {
			return nil, corrupt("missing section %d", kind)
		}
	}
	return img, nil
}

func decodeMeta(r *reader, m *Meta) error {
	var err error
	if m.Seed, err = r.i64(); err != nil {
		return err
	}
	if m.ClockUnixNano, err = r.i64(); err != nil {
		return err
	}
	barrier, err := r.i64()
	if err != nil {
		return err
	}
	m.BarrierT = des.Time(barrier)
	if m.NextIngress, err = r.addr(); err != nil {
		return err
	}
	if m.NextEgress, err = r.addr(); err != nil {
		return err
	}
	if m.NextClient, err = r.addr(); err != nil {
		return err
	}
	cursor, err := r.u64()
	if err != nil {
		return err
	}
	if cursor > uint64(int(^uint(0)>>1)) {
		return corrupt("session cursor %d overflows int", cursor)
	}
	m.SessionCursor = int(cursor)
	return nil
}

func decodeNetwork(r *reader, n *Network) error {
	for _, dst := range []*int64{
		&n.Stats.Exchanges, &n.Stats.Lost, &n.Stats.BytesSent, &n.Stats.BytesRecvd,
		&n.Stats.Faults.ServFail, &n.Stats.Faults.Refused, &n.Stats.Faults.Truncated,
		&n.Stats.Faults.Duplicated, &n.Stats.Faults.Late, &n.Stats.Faults.Outage,
	} {
		v, err := r.i64()
		if err != nil {
			return err
		}
		*dst = v
	}
	// Each source is at least: 1-byte addr len + 8-byte draws + 4-byte
	// flow count.
	numSources, err := r.count(13)
	if err != nil {
		return err
	}
	if numSources > 0 {
		n.Sources = make([]netsim.SourceState, 0, numSources)
	}
	for i := 0; i < numSources; i++ {
		var src netsim.SourceState
		if src.Addr, err = r.addr(); err != nil {
			return err
		}
		if !src.Addr.IsValid() {
			return corrupt("source %d: invalid address", i)
		}
		if src.Draws, err = r.u64(); err != nil {
			return err
		}
		numFlows, err := r.count(10) // addr len byte + i64 n + flags
		if err != nil {
			return err
		}
		if numFlows > 0 {
			src.Flows = make([]netsim.FlowSnapshot, 0, numFlows)
		}
		for j := 0; j < numFlows; j++ {
			var f netsim.FlowSnapshot
			if f.Dst, err = r.addr(); err != nil {
				return err
			}
			if !f.Dst.IsValid() {
				return corrupt("source %v flow %d: invalid destination", src.Addr, j)
			}
			nn, err := r.i64()
			if err != nil {
				return err
			}
			if nn < 0 || nn > int64(int(^uint(0)>>1)) {
				return corrupt("source %v flow %d: exchange count %d out of range", src.Addr, j, nn)
			}
			f.N = int(nn)
			flags, err := r.u8()
			if err != nil {
				return err
			}
			if flags > 3 {
				return corrupt("source %v flow %d: flag byte %d", src.Addr, j, flags)
			}
			f.SrcBad = flags&1 != 0
			f.DstBad = flags&2 != 0
			src.Flows = append(src.Flows, f)
		}
		n.Sources = append(n.Sources, src)
	}
	return nil
}

func decodePlatforms(r *reader, img *Image) error {
	numPlatforms, err := r.count(4)
	if err != nil {
		return err
	}
	if numPlatforms > 0 {
		img.Platforms = make([]Platform, 0, numPlatforms)
	}
	for i := 0; i < numPlatforms; i++ {
		var p Platform
		if p.Name, err = r.str(); err != nil {
			return err
		}
		var st platform.CheckpointState
		if st.Selector.Kind, err = r.str(); err != nil {
			return err
		}
		pos, err := r.i64()
		if err != nil {
			return err
		}
		if pos < 0 || pos > int64(int(^uint(0)>>1)) {
			return corrupt("platform %s: selector pos %d out of range", p.Name, pos)
		}
		st.Selector.Pos = int(pos)
		if st.Selector.Draws, err = r.u64(); err != nil {
			return err
		}
		rr, err := r.i64()
		if err != nil {
			return err
		}
		if rr < 0 || rr > int64(int(^uint(0)>>1)) {
			return corrupt("platform %s: egress cursor %d out of range", p.Name, rr)
		}
		st.EgressRR = int(rr)
		if st.RNGDraws, err = r.u64(); err != nil {
			return err
		}
		numDown, err := r.count(1)
		if err != nil {
			return err
		}
		st.Down = make([]bool, numDown)
		for j := range st.Down {
			if st.Down[j], err = r.bool(); err != nil {
				return err
			}
		}
		for _, dst := range []*int64{
			&st.Stats.Queries, &st.Stats.CacheHits, &st.Stats.CacheMisses,
			&st.Stats.Refused, &st.Stats.UpstreamFail,
		} {
			v, err := r.i64()
			if err != nil {
				return err
			}
			*dst = v
		}
		p.State = st
		numCaches, err := r.count(4)
		if err != nil {
			return err
		}
		if numCaches > 0 {
			p.Caches = make([]CacheState, 0, numCaches)
		}
		for j := 0; j < numCaches; j++ {
			var c CacheState
			if c.ID, err = r.str(); err != nil {
				return err
			}
			for _, dst := range []*int64{&c.Stats.Hits, &c.Stats.Misses, &c.Stats.Evictions, &c.Stats.Expired} {
				v, err := r.i64()
				if err != nil {
					return err
				}
				*dst = v
			}
			numItems, err := r.count(24) // key len + two i64 stamps + wire len
			if err != nil {
				return err
			}
			if numItems > 0 {
				c.Items = make([]dnscache.ItemState, 0, numItems)
			}
			for k := 0; k < numItems; k++ {
				var it dnscache.ItemState
				if it.Key, err = r.str(); err != nil {
					return err
				}
				stored, err := r.i64()
				if err != nil {
					return err
				}
				expires, err := r.i64()
				if err != nil {
					return err
				}
				it.Stored = time.Unix(0, stored).UTC()
				it.Expires = time.Unix(0, expires).UTC()
				wire, err := r.bytes()
				if err != nil {
					return err
				}
				if it.Entry, err = decodeEntry(wire); err != nil {
					return err
				}
				c.Items = append(c.Items, it)
			}
			p.Caches = append(p.Caches, c)
		}
		img.Platforms = append(img.Platforms, p)
	}
	return nil
}

func decodeMetrics(r *reader, s *metrics.Snapshot) error {
	numCounters, err := r.count(12) // name len + i64 value
	if err != nil {
		return err
	}
	if numCounters > 0 {
		s.Counters = make(map[string]int64, numCounters)
	}
	var prev string
	for i := 0; i < numCounters; i++ {
		name, err := r.str()
		if err != nil {
			return err
		}
		if i > 0 && name <= prev {
			return corrupt("counters not in sorted order (%q after %q)", name, prev)
		}
		prev = name
		v, err := r.i64()
		if err != nil {
			return err
		}
		s.Counters[name] = v
	}
	numHists, err := r.count(28) // name len + two counts + count + sum
	if err != nil {
		return err
	}
	if numHists > 0 {
		s.Histograms = make(map[string]metrics.HistogramSnapshot, numHists)
	}
	prev = ""
	for i := 0; i < numHists; i++ {
		name, err := r.str()
		if err != nil {
			return err
		}
		if i > 0 && name <= prev {
			return corrupt("histograms not in sorted order (%q after %q)", name, prev)
		}
		prev = name
		var h metrics.HistogramSnapshot
		numBounds, err := r.count(8)
		if err != nil {
			return err
		}
		h.Bounds = make([]int64, numBounds)
		for j := range h.Bounds {
			if h.Bounds[j], err = r.i64(); err != nil {
				return err
			}
		}
		numBuckets, err := r.count(8)
		if err != nil {
			return err
		}
		if numBuckets != numBounds+1 {
			return corrupt("histogram %q has %d buckets for %d bounds", name, numBuckets, numBounds)
		}
		h.Buckets = make([]int64, numBuckets)
		for j := range h.Buckets {
			if h.Buckets[j], err = r.i64(); err != nil {
				return err
			}
		}
		if h.Count, err = r.i64(); err != nil {
			return err
		}
		if h.Sum, err = r.i64(); err != nil {
			return err
		}
		s.Histograms[name] = h
	}
	return nil
}
