// Package worldstate serializes the full state of a running simulated
// world at a simulated-time barrier — DNS cache contents with their decay
// clocks, load-balancer chain positions, per-source RNG stream positions,
// fault-model chain state, the discrete-event clock and the metrics
// registry — into a versioned, length-prefixed binary snapshot, and
// decodes such snapshots back into an Image a fresh world can be restored
// from.
//
// The design follows gvisor's sentry save/restore split: this package
// owns the *format* (a pure value ↔ bytes codec with no knowledge of live
// worlds), while simtest.World owns the *orchestration* (quiescence
// checks, walking live objects into an Image, overlaying an Image onto a
// fresh world). Keeping the codec pure means Decode can never partially
// mutate anything: it either returns a complete Image or a typed
// ErrCorrupt.
//
// Two properties the format is built around:
//
//   - Canonical bytes. Every map is sorted before encoding and no
//     worker/shard/lane count is recorded, so two worlds that performed
//     the same simulated work produce byte-identical snapshots regardless
//     of how the work was scheduled. The divergence bisector (cdebench
//     -exp bisect) is built directly on this: compare snapshot bytes at a
//     barrier, and any difference is a real state divergence.
//
//   - Replay-based RNG capture. Random streams are pure functions of
//     deterministic seeds, so the snapshot stores stream *positions*
//     (draw counts), not generator internals. Restore re-derives each
//     stream from its seed and fast-forwards — exact, compact, and
//     independent of math/rand's internal state layout.
//
// See DESIGN.md §14 for the full format specification and the list of
// state deliberately not captured.
package worldstate

import (
	"errors"
	"fmt"
	"net/netip"

	"dnscde/internal/dnscache"
	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/netsim/des"
	"dnscde/internal/platform"
)

// Typed errors. Callers branch on these with errors.Is.
var (
	// ErrCorrupt reports snapshot bytes that do not decode: wrong magic,
	// unsupported version, truncated or overrunning sections, or payloads
	// that fail validation. Decode returns it without mutating anything.
	ErrCorrupt = errors.New("worldstate: corrupt snapshot")
	// ErrBusy reports a snapshot attempt outside a quiescent barrier —
	// events still pending in the scheduler or exchanges in flight.
	ErrBusy = errors.New("worldstate: world is not at a quiescent barrier")
	// ErrMismatch reports a restore into a world whose configuration
	// (seed, platform layout, cache counts, selector strategies) does not
	// match the snapshot. The target world is left unmodified.
	ErrMismatch = errors.New("worldstate: snapshot does not match world configuration")
)

// Version is the current snapshot format version. Decode rejects any
// other value; the version is bumped on any incompatible layout change.
const Version = 1

// magic identifies a worldstate snapshot. Eight bytes, like a tar or ELF
// magic, so file(1)-style sniffing is trivial.
const magic = "CDEWSNAP"

// Section kinds. Each section is encoded as u16 kind + u32 length +
// payload; unknown kinds are skipped on decode for forward compatibility.
const (
	sectionMeta      = 1
	sectionNetwork   = 2
	sectionPlatforms = 3
	sectionMetrics   = 4
	sectionApp       = 5
)

// Meta is the world-level scalar state: identity, clocks and allocator
// cursors.
type Meta struct {
	// Seed is the world's root seed; restore validates it against the
	// fresh world so a snapshot cannot silently overlay a different run.
	Seed int64
	// ClockUnixNano is the virtual wall clock at the barrier (TTL decay
	// arithmetic runs on it).
	ClockUnixNano int64
	// BarrierT is the discrete-event clock at the barrier.
	BarrierT des.Time
	// NextIngress, NextEgress and NextClient are the world's address-
	// allocator cursors; client addresses select per-source RNG streams,
	// so the cursor is part of the deterministic state.
	NextIngress netip.Addr
	NextEgress  netip.Addr
	NextClient  netip.Addr
	// SessionCursor is the measurement infrastructure's session-ID
	// allocator position (probe names derive from it).
	SessionCursor int
}

// Network is the simulated-Internet state: folded packet counters and
// every per-source RNG/fault stream.
type Network struct {
	Stats   netsim.Stats
	Sources []netsim.SourceState
}

// Platform is one resolution platform's state: chain positions and
// counters, plus every cache's contents.
type Platform struct {
	Name   string
	State  platform.CheckpointState
	Caches []CacheState
}

// CacheState is one DNS cache's contents and counters.
type CacheState struct {
	ID    string
	Stats dnscache.Stats
	Items []dnscache.ItemState
}

// Image is a fully decoded snapshot: everything needed to overlay a fresh
// world built from the same scenario so it continues byte-identically.
type Image struct {
	Meta      Meta
	Network   Network
	Platforms []Platform
	Metrics   metrics.Snapshot
	// App is an opaque application-level payload (the scenario layer
	// records which trial/workload the barrier sits at); the codec
	// round-trips it without interpretation.
	App []byte
}

// encodeEntry packs a cache entry through the real DNS wire codec: a
// synthetic response message carrying the entry's records. Reusing the
// wire format means the snapshot exercises exactly the bytes a real
// deployment would emit and inherits the codec's fuzz coverage.
func encodeEntry(e dnscache.Entry) ([]byte, error) {
	m := &dnswire.Message{
		Header:    dnswire.Header{Response: true, RCode: e.RCode},
		Answer:    e.Records,
		Authority: e.Authority,
	}
	wire, err := m.Pack()
	if err != nil {
		return nil, fmt.Errorf("worldstate: pack cache entry: %w", err)
	}
	return wire, nil
}

// decodeEntry reverses encodeEntry.
func decodeEntry(wire []byte) (dnscache.Entry, error) {
	m, err := dnswire.Unpack(wire)
	if err != nil {
		return dnscache.Entry{}, fmt.Errorf("%w: cache entry: %w", ErrCorrupt, err)
	}
	return dnscache.Entry{Records: m.Answer, RCode: m.Header.RCode, Authority: m.Authority}, nil
}
