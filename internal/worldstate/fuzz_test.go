package worldstate

import (
	"errors"
	"testing"
)

// FuzzCheckpointDecode throws arbitrary bytes at the snapshot decoder.
// The contract under fuzz: Decode never panics; every rejection is a
// typed ErrCorrupt (callers branch on it to distinguish damaged
// checkpoint files from config mismatches); and every accepted input
// yields an image the codec can round-trip — re-encode, re-decode,
// no drift. The seed corpus starts from real encoded snapshots plus
// the interesting prefixes the corruption table exercises.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := Encode(sampleImage())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(magic))
	f.Add([]byte(magic + "\x00\x01"))
	truncVersion := append([]byte(nil), valid...)
	truncVersion[9] = 0x02
	f.Add(truncVersion)
	minimal, err := Encode(&Image{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(minimal)

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode error %v does not wrap ErrCorrupt", err)
			}
			if img != nil {
				t.Fatal("Decode returned a partial image alongside an error")
			}
			return
		}
		// Accepted input: the decoded image must re-encode cleanly and
		// the re-encoded bytes must decode to the same image. (The
		// re-encoded bytes may legitimately differ from the input —
		// unknown sections are skipped — but the *value* must be a
		// fixpoint.)
		buf, err := Encode(img)
		if err != nil {
			t.Fatalf("Encode of accepted image: %v", err)
		}
		img2, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-Decode of canonical bytes: %v", err)
		}
		if d := Diff(img, img2); d != "" {
			t.Fatalf("codec fixpoint violated: %s", d)
		}
	})
}
