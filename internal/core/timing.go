package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"dnscde/internal/dnswire"
)

// This file implements §IV-B3, the *indirect egress* techniques: counting
// caches purely from response latency, with no cooperating authoritative
// nameserver log.

// ThresholdFunc derives a cached/uncached decision boundary from latency
// calibration samples.
type ThresholdFunc func(cached, uncached []time.Duration) time.Duration

// MidpointThreshold places the boundary halfway between the median cached
// and median uncached latencies.
func MidpointThreshold(cached, uncached []time.Duration) time.Duration {
	return (durMedian(cached) + durMedian(uncached)) / 2
}

// KMeansThreshold ignores the labelled calibration split, pools all
// samples and runs 1-D 2-means; the boundary is the midpoint of the two
// final centroids. It is the ablation alternative when calibration labels
// are unreliable.
func KMeansThreshold(cached, uncached []time.Duration) time.Duration {
	all := make([]float64, 0, len(cached)+len(uncached))
	for _, d := range cached {
		all = append(all, float64(d))
	}
	for _, d := range uncached {
		all = append(all, float64(d))
	}
	if len(all) == 0 {
		return 0
	}
	sort.Float64s(all)
	lo, hi := all[0], all[len(all)-1]
	if lo == hi {
		return time.Duration(lo)
	}
	for iter := 0; iter < 50; iter++ {
		var sumLo, sumHi float64
		var nLo, nHi int
		for _, v := range all {
			if v-lo <= hi-v {
				sumLo += v
				nLo++
			} else {
				sumHi += v
				nHi++
			}
		}
		newLo, newHi := lo, hi
		if nLo > 0 {
			newLo = sumLo / float64(nLo)
		}
		if nHi > 0 {
			newHi = sumHi / float64(nHi)
		}
		if newLo == lo && newHi == hi {
			break
		}
		lo, hi = newLo, newHi
	}
	return time.Duration((lo + hi) / 2)
}

func durMedian(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// TimingOptions tunes the timing-channel enumeration.
type TimingOptions struct {
	// SeedQueries force the calibration honey record into all caches;
	// zero defaults to 100, the paper's example redundancy.
	SeedQueries int
	// Calibration is the number of latency samples per class; zero
	// defaults to 16.
	Calibration int
	// CountProbes is the probe budget of the counting phase; zero
	// defaults to RecommendedQueries(8, 0.99).
	CountProbes int
	// Threshold derives the decision boundary; nil defaults to
	// MidpointThreshold.
	Threshold ThresholdFunc
}

func (o TimingOptions) withDefaults() TimingOptions {
	if o.SeedQueries == 0 {
		o.SeedQueries = 100
	}
	if o.Calibration == 0 {
		o.Calibration = 16
	}
	if o.CountProbes == 0 {
		o.CountProbes = RecommendedQueries(8, 0.99)
	}
	if o.Threshold == nil {
		o.Threshold = MidpointThreshold
	}
	return o
}

// TimingResult is the outcome of a timing-channel enumeration.
type TimingResult struct {
	// Caches is the number of probes classified as uncached-latency —
	// "this number corresponds to the amount of caches" (§IV-B3).
	Caches int
	// Threshold is the decision boundary used.
	Threshold time.Duration
	// CachedRTTs and UncachedRTTs are the calibration samples.
	CachedRTTs, UncachedRTTs []time.Duration
	// CountRTTs are the counting-phase samples.
	CountRTTs  []time.Duration
	ProbesSent int
}

// EnumerateTimingDirect counts caches via latency with a direct prober:
// calibrate the cached latency on a fully seeded honey record and the
// uncached latency on nonexistent random subdomains, then probe a fresh
// honey record and count slow (uncached-latency) responses.
func EnumerateTimingDirect(ctx context.Context, p Prober, in *Infra, opts TimingOptions) (TimingResult, error) {
	if !p.Direct() {
		return TimingResult{}, fmt.Errorf("core: direct timing enumeration needs a direct prober; use EnumerateTimingIndirect")
	}
	opts = opts.withDefaults()
	calib, err := in.NewFlatSession()
	if err != nil {
		return TimingResult{}, err
	}
	var result TimingResult

	// Phase 1: force the calibration honey record into all caches.
	for i := 0; i < opts.SeedQueries; i++ {
		result.ProbesSent++
		_, _ = p.Probe(ctx, calib.Honey, dnswire.TypeA)
	}
	// Phase 2a: cached-latency samples (honey is now everywhere).
	for i := 0; i < opts.Calibration; i++ {
		result.ProbesSent++
		pr, err := p.Probe(ctx, calib.Honey, dnswire.TypeA)
		if err != nil {
			continue
		}
		result.CachedRTTs = append(result.CachedRTTs, pr.RTT)
	}
	// Phase 2b: uncached-latency samples — random subdomains of the honey
	// name never exist and always traverse the egress path.
	for i := 0; i < opts.Calibration; i++ {
		result.ProbesSent++
		pr, err := p.Probe(ctx, calib.FreshName(i), dnswire.TypeA)
		if err != nil {
			continue
		}
		result.UncachedRTTs = append(result.UncachedRTTs, pr.RTT)
	}
	if len(result.CachedRTTs) == 0 || len(result.UncachedRTTs) == 0 {
		return result, ErrAllProbesFailed
	}
	result.Threshold = opts.Threshold(result.CachedRTTs, result.UncachedRTTs)

	// Phase 3: count — a fresh honey record starts uncached everywhere;
	// each cache is slow exactly once.
	count, err := in.NewFlatSession()
	if err != nil {
		return result, err
	}
	for i := 0; i < opts.CountProbes; i++ {
		result.ProbesSent++
		pr, err := p.Probe(ctx, count.Honey, dnswire.TypeA)
		if err != nil {
			continue
		}
		result.CountRTTs = append(result.CountRTTs, pr.RTT)
		if pr.RTT > result.Threshold {
			result.Caches++
		}
	}
	return result, nil
}

// EnumerateTimingIndirect counts caches via latency through local caches
// (web-browser access): probe q distinct names in a fresh delegated zone;
// a probe landing on a cache without the delegation pays an extra referral
// round trip. The run self-calibrates — the first probe is always
// uncovered (slow baseline) and the trailing probes are almost surely
// covered (fast baseline) — and counts slow probes.
func EnumerateTimingIndirect(ctx context.Context, p Prober, in *Infra, opts TimingOptions) (TimingResult, error) {
	opts = opts.withDefaults()
	q := opts.CountProbes
	tail := opts.Calibration
	session, err := in.NewHierarchySession(q + tail)
	if err != nil {
		return TimingResult{}, err
	}
	var result TimingResult
	rtts := make([]time.Duration, 0, q)
	for i := 1; i <= q; i++ {
		result.ProbesSent++
		pr, err := p.Probe(ctx, session.ProbeName(i), dnswire.TypeA)
		if err != nil || pr.FromLocalCache {
			continue
		}
		rtts = append(rtts, pr.RTT)
	}
	if len(rtts) == 0 {
		return result, ErrAllProbesFailed
	}
	// Tail probes after q samples: the delegation is cached in nearly
	// every cache, so they give the fast (delegation-cached) baseline.
	for i := q + 1; i <= q+tail; i++ {
		result.ProbesSent++
		pr, err := p.Probe(ctx, session.ProbeName(i), dnswire.TypeA)
		if err != nil || pr.FromLocalCache {
			continue
		}
		result.CachedRTTs = append(result.CachedRTTs, pr.RTT)
	}
	// The first probe can never have found the delegation cached.
	result.UncachedRTTs = []time.Duration{rtts[0]}
	if len(result.CachedRTTs) == 0 {
		return result, ErrAllProbesFailed
	}
	result.Threshold = opts.Threshold(result.CachedRTTs, result.UncachedRTTs)
	result.CountRTTs = rtts
	for _, rtt := range rtts {
		if rtt > result.Threshold {
			result.Caches++
		}
	}
	return result, nil
}
