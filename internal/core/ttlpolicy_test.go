package core

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/dnscache"
	"dnscde/internal/platform"
)

func TestInferTTLPolicyNoClamps(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 1})
	policy, err := InferTTLPolicy(context.Background(), w.directProber(plat), w.infra, TTLProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if policy.MinTTL != 0 || policy.MaxTTL != 0 {
		t.Errorf("clamps inferred on unclamped platform: %+v", policy)
	}
	if policy.LowServed > 5*time.Second || policy.HighServed < 7*24*time.Hour-time.Minute {
		t.Errorf("served TTLs off: %+v", policy)
	}
}

func TestInferTTLPolicyMinClamp(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 1, mutate: func(c *platform.Config) {
		c.CachePolicy = dnscache.Policy{MinTTL: 300 * time.Second}
	}})
	policy, err := InferTTLPolicy(context.Background(), w.directProber(plat), w.infra, TTLProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if policy.MinTTL < 295*time.Second || policy.MinTTL > 300*time.Second {
		t.Errorf("MinTTL = %v, want ≈300s", policy.MinTTL)
	}
	if policy.MaxTTL != 0 {
		t.Errorf("spurious MaxTTL: %+v", policy)
	}
}

func TestInferTTLPolicyMaxClamp(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 1, mutate: func(c *platform.Config) {
		c.CachePolicy = dnscache.Policy{MaxTTL: 24 * time.Hour}
	}})
	policy, err := InferTTLPolicy(context.Background(), w.directProber(plat), w.infra, TTLProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if policy.MaxTTL < 23*time.Hour || policy.MaxTTL > 24*time.Hour {
		t.Errorf("MaxTTL = %v, want ≈24h", policy.MaxTTL)
	}
	if policy.MinTTL != 0 {
		t.Errorf("spurious MinTTL: %+v", policy)
	}
}

func TestInferTTLPolicyBothClamps(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 2, mutate: func(c *platform.Config) {
		c.CachePolicy = dnscache.Policy{MinTTL: 60 * time.Second, MaxTTL: time.Hour}
	}})
	policy, err := InferTTLPolicy(context.Background(), w.directProber(plat), w.infra, TTLProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if policy.MinTTL == 0 || policy.MaxTTL == 0 {
		t.Errorf("clamps missed: %+v", policy)
	}
}

func TestInferTTLPolicyUnreachable(t *testing.T) {
	w := newTestWorld(t)
	p := NewDirectProber(w.net, clientAddr, netip.MustParseAddr("198.51.100.251"), 0)
	if _, err := InferTTLPolicy(context.Background(), p, w.infra, TTLProbeOptions{}); err == nil {
		t.Error("want error for unreachable platform")
	}
}
