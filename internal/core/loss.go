package core

import (
	"context"
	"fmt"
	"sync"

	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
	"dnscde/internal/trace"
)

// LossEstimator is an online estimator of the probe-level loss rate — the
// measured quantity the paper's §V-B plugs into the carpet-bombing factor
// ("the rate at which replicates are transmitted is increased according to
// the packet loss rate"; Iran ~11%, China ~4%). It is fed either directly
// (Record per probe) or from the metrics registry's probe counters
// (SeedFromMetrics), and is safe for concurrent use.
type LossEstimator struct {
	mu     sync.Mutex
	sent   int64
	failed int64
}

// Record adds one probe outcome.
func (e *LossEstimator) Record(failed bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sent++
	if failed {
		e.failed++
	}
}

// Counts returns the probes observed and how many of them failed.
func (e *LossEstimator) Counts() (sent, failed int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sent, e.failed
}

// Rate returns the observed loss rate, 0 before any probe has been
// recorded. The plain ratio (no smoothing prior) matters: a loss-free run
// must estimate exactly 0 so the replication factor stays 1 and a clean
// measurement costs not one probe more than the uncompensated loop.
func (e *LossEstimator) Rate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sent == 0 {
		return 0
	}
	return float64(e.failed) / float64(e.sent)
}

// Replicates returns the §V carpet-bombing factor K for the current
// estimate: the smallest K with 1-rate^K >= confidence, capped at maxK
// (maxK <= 0 means uncapped). Before any probe has been recorded the
// estimator has no evidence of loss, so K is defined to be exactly 1 —
// never NaN-driven or confidence-dependent — and the compensated loop's
// first probe costs the same as the uncompensated one.
func (e *LossEstimator) Replicates(confidence float64, maxK int) int {
	if sent, _ := e.Counts(); sent == 0 {
		return 1
	}
	k := CarpetBombingFactor(e.Rate(), confidence)
	if maxK > 0 && k > maxK {
		k = maxK
	}
	return k
}

// SeedFromMetrics primes the estimator with the cumulative
// "core.probes.sent"/"core.probes.errors" counters of reg, so a fresh
// enumeration starts from the loss already observed by earlier probes on
// the same path — the online feedback loop of §V-B. A nil registry is a
// no-op.
func (e *LossEstimator) SeedFromMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	sent := reg.Counter("core.probes.sent").Value()
	failed := reg.Counter("core.probes.errors").Value()
	if failed > sent {
		failed = sent
	}
	e.mu.Lock()
	e.sent += sent
	e.failed += failed
	e.mu.Unlock()
}

// probeFailed decides whether a probe outcome counts as lost for
// compensation purposes: transport errors (timeouts) and injected server
// failures (SERVFAIL/REFUSED) both starve the honey-record sample, so
// both inflate the replication factor.
func probeFailed(res ProbeResult, err error) bool {
	if err != nil {
		return true
	}
	return res.RCode != dnswire.RCodeNoError
}

// CompensateOptions tunes loss-compensated enumeration.
type CompensateOptions struct {
	// Confidence is the per-probe survival target 1-rate^K; zero defaults
	// to 0.99.
	Confidence float64
	// MaxReplicates caps K so a pathological loss estimate cannot explode
	// the probe budget; zero defaults to 8.
	MaxReplicates int
	// Estimator, when non-nil, carries loss knowledge across enumerations
	// (e.g. seeded from the metrics registry); nil starts fresh.
	Estimator *LossEstimator
}

func (o CompensateOptions) withDefaults() CompensateOptions {
	if o.Confidence == 0 {
		o.Confidence = 0.99
	}
	if o.MaxReplicates == 0 {
		o.MaxReplicates = 8
	}
	if o.Estimator == nil {
		o.Estimator = &LossEstimator{}
	}
	return o
}

// EnumerateDirectCompensated is EnumerateDirect with §V-B loss
// compensation: the replication factor K is re-derived from the online
// loss estimate before every probe, so the loop starts at K=1 on a clean
// path and climbs toward the carpet-bombing factor as losses are observed
// — converging on the paper's "replicates increased according to the
// packet loss rate" without a separate calibration pass.
func EnumerateDirectCompensated(ctx context.Context, p Prober, in *Infra, opts EnumOptions, copts CompensateOptions) (EnumResult, error) {
	opts = opts.withDefaults()
	copts = copts.withDefaults()
	if !p.Direct() {
		return EnumResult{}, fmt.Errorf("core: direct enumeration needs a direct prober (local caches absorb repeated queries)")
	}
	session, err := in.NewFlatSession()
	if err != nil {
		return EnumResult{}, err
	}
	in.mEnumRounds.Inc()
	est := copts.Estimator
	res := EnumResult{Technique: TechniqueDirect}
	lastK := 0
	for i := 0; i < opts.Queries; i++ {
		k := est.Replicates(copts.Confidence, copts.MaxReplicates)
		if k < opts.Replicates {
			k = opts.Replicates // never below the caller's explicit floor
		}
		if k != lastK {
			trace.Addf(ctx, "compensate", "loss=%.3f K=%d (probe %d/%d)", est.Rate(), k, i+1, opts.Queries)
			lastK = k
		}
		for r := 0; r < k; r++ {
			res.ProbesSent++
			pres, err := p.Probe(ctx, session.Honey, opts.QType)
			in.countProbe(err, r > 0)
			failed := probeFailed(pres, err)
			est.Record(failed)
			if failed {
				res.ProbeErrors++
			}
		}
	}
	if res.ProbeErrors == res.ProbesSent {
		return res, ErrAllProbesFailed
	}
	res.Caches = session.ObservedCaches()
	return res, nil
}
