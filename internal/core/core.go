// Package core implements CDE — Caches Discovery and Enumeration — the
// primary contribution of "Counting in the Dark: DNS Caches Discovery and
// Enumeration in the Internet" (Klein, Shulman, Waidner; DSN 2017).
//
// CDE treats a DNS resolution platform as a black box reachable through
// its ingress IP addresses and observes two side channels:
//
//   - the queries that arrive at prober-controlled authoritative
//     nameservers (the *direct egress* channel, §IV-B1/§IV-B2), and
//   - the response latency seen by the prober (the *indirect egress*
//     timing channel, §IV-B3).
//
// From these it recovers the number of hidden caches behind an IP address,
// the mapping between ingress IPs and cache clusters, and the set of
// egress IPs — none of which are directly visible in any DNS message.
//
// The package is organised by methodology:
//
//   - probers.go — direct and indirect (stub-mediated) probers
//   - infra.go — the prober-side zone/nameserver infrastructure and
//     per-measurement sessions (fresh probe names, fresh delegations)
//   - enumerate.go — cache enumeration via the three access modes
//   - adaptive.go — unknown-n probing with doubling budgets
//   - mapping.go — ingress-IP→cache-cluster mapping and egress discovery
//   - timing.go — the latency side channel
//   - initvalidate.go — the §V-B two-phase init/validate protocol
//   - analysis.go — coupon-collector bounds and carpet-bombing sizing
//
// and by the extensions built on those primitives:
//
//   - classify.go — cache-selection-strategy classification (the paper's
//     declared §IV-A future work)
//   - fingerprint.go — resolver-software fingerprinting (§II-C / §VI)
//   - ttlpolicy.go — TTL-clamp inference (§II-C footnote)
//   - security.go — cache-poisoning difficulty (§II-A, quantified)
//   - survey.go — the one-call full platform profile
package core
