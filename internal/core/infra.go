package core

import (
	"fmt"
	"net/netip"
	"sync"

	"dnscde/internal/authns"
	"dnscde/internal/clock"
	"dnscde/internal/dnstree"
	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/zone"
)

// Infra is the prober-side measurement infrastructure of Fig. 1: the
// cache.example domain, its authoritative nameservers and their query
// logs. Sessions carve fresh probe names (and, for the hierarchy
// technique, fresh delegated child zones) out of the domain so repeated
// measurements of the same platform never collide in its caches — the
// "subdomains under cache.example" of §IV-A.
type Infra struct {
	// Domain is the base domain, e.g. "cache.example.".
	Domain string
	// Parent serves the base domain; its log is the primary observation
	// point.
	Parent *authns.Server
	// Child serves per-session delegated child zones on a separate
	// address, as in the paper's §IV-B2b two-server setup.
	Child *authns.Server

	// Target is the address probe names resolve to (a.b.c.e in the
	// paper's zone fragments).
	Target netip.Addr

	parentZone *zone.Zone
	parentAddr netip.Addr
	childAddr  netip.Addr
	ttl        uint32

	mu      sync.Mutex
	session int

	// Probe-cost accounting handles, nil (no-op) without a registry.
	metrics        *metrics.Registry
	mProbes        *metrics.Counter
	mProbeErrors   *metrics.Counter
	mReplicates    *metrics.Counter
	mEnumRounds    *metrics.Counter
	mInitSeeds     *metrics.Counter
	mValidateSeeds *metrics.Counter
}

// InfraConfig configures the measurement infrastructure.
type InfraConfig struct {
	// Domain under "example." owned by the prober; defaults to
	// "cache.example.".
	Domain string
	// ParentAddr and ChildAddr host the two authoritative servers.
	ParentAddr, ChildAddr netip.Addr
	// Target is the address answered for probe names.
	Target netip.Addr
	// TTL for probe records; defaults to 300.
	TTL uint32
	// Profile is the link profile of the nameservers.
	Profile netsim.LinkProfile
	// Metrics, when non-nil, receives the probe-cost accounting: probes
	// issued, carpet-bombing replicates, enumeration rounds and
	// init/validate seeds under the "core." prefix, plus the nameservers'
	// arrival counters under "authns.". Nil disables instrumentation.
	Metrics *metrics.Registry
}

// NewInfra builds the CDE zones, attaches them to the simulated DNS tree
// and returns the infrastructure handle.
func NewInfra(tree *dnstree.Tree, clk clock.Clock, cfg InfraConfig) (*Infra, error) {
	if cfg.Domain == "" {
		cfg.Domain = "cache.example."
	}
	cfg.Domain = dnswire.CanonicalName(cfg.Domain)
	if cfg.TTL == 0 {
		cfg.TTL = 300
	}

	parentZone := zone.New(cfg.Domain)
	if err := zone.Apex(parentZone, "ns."+cfg.Domain, cfg.ParentAddr, cfg.TTL); err != nil {
		return nil, fmt.Errorf("core: building %s: %w", cfg.Domain, err)
	}
	parent, err := tree.AttachAuthority(cfg.ParentAddr, cfg.Profile, parentZone)
	if err != nil {
		return nil, fmt.Errorf("core: attaching parent: %w", err)
	}
	child := authns.NewServer(nil, authns.WithClock(clk))
	tree.Net.Register(cfg.ChildAddr, cfg.Profile, child)

	in := &Infra{
		Domain:     cfg.Domain,
		Parent:     parent,
		Child:      child,
		Target:     cfg.Target,
		parentZone: parentZone,
		parentAddr: cfg.ParentAddr,
		childAddr:  cfg.ChildAddr,
		ttl:        cfg.TTL,
	}
	if reg := cfg.Metrics; reg != nil {
		parent.SetMetrics(reg)
		child.SetMetrics(reg)
		in.metrics = reg
		in.mProbes = reg.Counter("core.probes.sent")
		in.mProbeErrors = reg.Counter("core.probes.errors")
		in.mReplicates = reg.Counter("core.probes.replicates")
		in.mEnumRounds = reg.Counter("core.enum.rounds")
		in.mInitSeeds = reg.Counter("core.initvalidate.init_seeds")
		in.mValidateSeeds = reg.Counter("core.initvalidate.validate_seeds")
	}
	return in, nil
}

// Metrics returns the attached accounting registry (nil when accounting
// is off).
func (in *Infra) Metrics() *metrics.Registry { return in.metrics }

// countProbe records one issued probe and its outcome; replicate marks
// carpet-bombing repetitions beyond a probe's first transmission (§V).
func (in *Infra) countProbe(err error, replicate bool) {
	in.mProbes.Inc()
	if replicate {
		in.mReplicates.Inc()
	}
	if err != nil {
		in.mProbeErrors.Inc()
	}
}

// nextSessionID allocates a unique session number.
func (in *Infra) nextSessionID() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.session++
	return in.session
}

// SessionCursor returns the last allocated session number. Probe names
// are derived from session IDs, so a world checkpoint must capture the
// cursor: a restored run's next session must get the same ID (and thus
// probe the same names) as the uninterrupted run's.
func (in *Infra) SessionCursor() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.session
}

// RestoreSessionCursor repositions the session-ID allocator.
func (in *Infra) RestoreSessionCursor(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.session = n
}

// shardStride is the size of each shard's session-ID space. The base
// Infra allocates IDs 1, 2, 3, …; Shard(i) allocates from
// (i+1)*shardStride. No experiment comes near a million sessions per
// namespace, so the spaces never collide.
const shardStride = 1 << 20

// Shard returns a view of the infrastructure with its own session-ID
// namespace, disjoint from the base Infra's and from every other shard's.
// Parallel measurement loops give each work item the shard of its index:
// session (and therefore probe) names then depend only on the item's
// index, not on goroutine scheduling — which matters because hash-based
// cache selectors make measured results a function of the probed names.
// Zones, servers, logs and accounting handles are shared with the base
// Infra; calling Shard(i) twice yields views that collide with each
// other, so derive exactly one per parallel slot.
func (in *Infra) Shard(i int) *Infra {
	if i < 0 {
		i = 0
	}
	return &Infra{
		Domain:         in.Domain,
		Parent:         in.Parent,
		Child:          in.Child,
		Target:         in.Target,
		parentZone:     in.parentZone,
		parentAddr:     in.parentAddr,
		childAddr:      in.childAddr,
		ttl:            in.ttl,
		session:        (i + 1) * shardStride,
		metrics:        in.metrics,
		mProbes:        in.mProbes,
		mProbeErrors:   in.mProbeErrors,
		mReplicates:    in.mReplicates,
		mEnumRounds:    in.mEnumRounds,
		mInitSeeds:     in.mInitSeeds,
		mValidateSeeds: in.mValidateSeeds,
	}
}

// FlatSession is a direct-probing session (§IV-B1): one honey A record.
type FlatSession struct {
	// Honey is the probe name ("name.cache.example" in the paper).
	Honey string
	infra *Infra
}

// NewFlatSession plants a fresh honey record in the parent zone.
func (in *Infra) NewFlatSession() (*FlatSession, error) {
	return in.NewFlatSessionTTL(in.ttl)
}

// NewFlatSessionTTL plants a fresh honey record with an explicit TTL —
// the instrument of TTL-clamp inference, which compares the TTL a
// platform serves against the authoritative one.
func (in *Infra) NewFlatSessionTTL(ttl uint32) (*FlatSession, error) {
	id := in.nextSessionID()
	honey := fmt.Sprintf("h%d.%s", id, in.Domain)
	err := in.parentZone.Add(dnswire.RR{
		Name: honey, Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.ARecord{Addr: in.Target},
	})
	if err != nil {
		return nil, fmt.Errorf("core: planting honey record: %w", err)
	}
	return &FlatSession{Honey: honey, infra: in}, nil
}

// ObservedCaches returns ω, the number of queries for the honey name that
// reached the nameserver (§IV-B1a: "The number of queries ω < q arriving
// at our nameserver is the number of caches"). Counting is per query
// type (largest group): resolvers with coupled follow-up lookups (e.g.
// AAAA after A) would otherwise double-count every cache miss.
func (s *FlatSession) ObservedCaches() int {
	return s.infra.Parent.Log().CountNameMaxType(s.Honey)
}

// FreshName returns the honey name with a unique uncached label prepended
// — §IV-B3's "honey record with a random subdomain prepended". The name
// does not exist, so it is never cached positively; every probe for it
// exercises the full egress path. For positively-resolvable fresh names
// use a new session instead.
func (s *FlatSession) FreshName(i int) string {
	return fmt.Sprintf("r%d.%s", i, s.Honey)
}

// ChainSession is a CNAME-chain bypass session (§IV-B2a): q alias records
// pointing at one target record.
type ChainSession struct {
	// Aliases are the q probe names x-1 … x-q.
	Aliases []string
	// TargetName is the common CNAME target whose arrival count is ω.
	TargetName string
	infra      *Infra
}

// NewChainSession plants q fresh aliases and their common target.
func (in *Infra) NewChainSession(q int) (*ChainSession, error) {
	if q < 1 {
		return nil, fmt.Errorf("core: chain session needs q >= 1, have %d", q)
	}
	id := in.nextSessionID()
	target := fmt.Sprintf("t%d.%s", id, in.Domain)
	if err := in.parentZone.Add(dnswire.RR{
		Name: target, Class: dnswire.ClassIN, TTL: in.ttl,
		Data: dnswire.ARecord{Addr: in.Target},
	}); err != nil {
		return nil, fmt.Errorf("core: planting chain target: %w", err)
	}
	aliases := make([]string, 0, q)
	for i := 1; i <= q; i++ {
		alias := fmt.Sprintf("x-%d-s%d.%s", i, id, in.Domain)
		if err := in.parentZone.Add(dnswire.RR{
			Name: alias, Class: dnswire.ClassIN, TTL: in.ttl,
			Data: dnswire.CNAMERecord{Target: target},
		}); err != nil {
			return nil, fmt.Errorf("core: planting alias %d: %w", i, err)
		}
		aliases = append(aliases, alias)
	}
	return &ChainSession{Aliases: aliases, TargetName: target, infra: in}, nil
}

// ObservedCaches returns ω: the number of queries for the common target
// seen at the nameserver — one per cache that had to resolve it.
func (s *ChainSession) ObservedCaches() int {
	return s.infra.Parent.Log().CountName(s.TargetName)
}

// ObservedCachesType is ObservedCaches restricted to one query type. Use
// it when the probing channel resolves each alias under several types
// (e.g. an SMTP server checking TXT and MX), which would otherwise count
// each cache once per type.
func (s *ChainSession) ObservedCachesType(t dnswire.Type) int {
	return s.infra.Parent.Log().CountNameType(s.TargetName, t)
}

// ObservedCachesBestType returns the largest per-qtype arrival count for
// the target — correct for single-type channels and robust for channels
// that query each alias under several types without the caller knowing
// which.
func (s *ChainSession) ObservedCachesBestType() int {
	return s.infra.Parent.Log().CountNameMaxType(s.TargetName)
}

// DeepChainSession is a CNAME chain of configurable depth:
// c1 → c2 → … → cD → target(A). It is the measurement instrument of the
// resolver fingerprinting extension: how deep a platform follows the
// chain (observed as per-link arrivals at the nameserver) reveals its
// CNAME-chase limit, one of the §VI query-pattern fingerprints.
type DeepChainSession struct {
	// Links are the chain owner names c1 … cD in order.
	Links []string
	// TargetName is the final A record.
	TargetName string
	infra      *Infra
}

// NewDeepChainSession plants a fresh chain of the given depth.
func (in *Infra) NewDeepChainSession(depth int) (*DeepChainSession, error) {
	if depth < 1 {
		return nil, fmt.Errorf("core: deep chain needs depth >= 1, have %d", depth)
	}
	id := in.nextSessionID()
	target := fmt.Sprintf("deep-t%d.%s", id, in.Domain)
	if err := in.parentZone.Add(dnswire.RR{
		Name: target, Class: dnswire.ClassIN, TTL: in.ttl,
		Data: dnswire.ARecord{Addr: in.Target},
	}); err != nil {
		return nil, fmt.Errorf("core: planting deep-chain target: %w", err)
	}
	links := make([]string, depth)
	for i := range links {
		links[i] = fmt.Sprintf("c%d-s%d.%s", i+1, id, in.Domain)
	}
	for i, link := range links {
		next := target
		if i+1 < depth {
			next = links[i+1]
		}
		if err := in.parentZone.Add(dnswire.RR{
			Name: link, Class: dnswire.ClassIN, TTL: in.ttl,
			Data: dnswire.CNAMERecord{Target: next},
		}); err != nil {
			return nil, fmt.Errorf("core: planting deep-chain link %d: %w", i+1, err)
		}
	}
	return &DeepChainSession{Links: links, TargetName: target, infra: in}, nil
}

// ObservedDepth returns how many chain links were individually queried at
// the nameserver — the depth the platform actually walked itself.
func (s *DeepChainSession) ObservedDepth() int {
	depth := 0
	for _, link := range s.Links {
		if s.infra.Parent.Log().CountName(link) > 0 {
			depth++
		}
	}
	return depth
}

// TargetReached reports whether the final A record was queried.
func (s *DeepChainSession) TargetReached() bool {
	return s.infra.Parent.Log().CountName(s.TargetName) > 0
}

// HierarchySession is a names-hierarchy bypass session (§IV-B2b): a fresh
// delegated child zone whose delegation re-fetches are counted at the
// parent.
type HierarchySession struct {
	// ChildOrigin is the session's delegated zone, e.g. "s7.cache.example.".
	ChildOrigin string
	// ProbeNames are q names inside the child zone.
	ProbeNames []string
	infra      *Infra
	childZone  *zone.Zone
}

// NewHierarchySession creates a fresh child zone sN.<domain>, delegates it
// from the parent (NS + glue pointing at the child server's address) and
// plants q probe records plus a wildcard for overflow probes.
func (in *Infra) NewHierarchySession(q int) (*HierarchySession, error) {
	if q < 1 {
		return nil, fmt.Errorf("core: hierarchy session needs q >= 1, have %d", q)
	}
	id := in.nextSessionID()
	childOrigin := fmt.Sprintf("s%d.%s", id, in.Domain)
	childNS := "ns." + childOrigin

	// Parent-side delegation, exactly the paper's zone fragment.
	if err := in.parentZone.Add(dnswire.RR{
		Name: childOrigin, Class: dnswire.ClassIN, TTL: in.ttl,
		Data: dnswire.NSRecord{Host: childNS},
	}); err != nil {
		return nil, fmt.Errorf("core: delegating %s: %w", childOrigin, err)
	}
	if err := in.parentZone.Add(dnswire.RR{
		Name: childNS, Class: dnswire.ClassIN, TTL: in.ttl,
		Data: dnswire.ARecord{Addr: in.childAddr},
	}); err != nil {
		return nil, fmt.Errorf("core: glue for %s: %w", childNS, err)
	}

	child := zone.New(childOrigin)
	if err := zone.Apex(child, childNS, in.childAddr, in.ttl); err != nil {
		return nil, fmt.Errorf("core: child apex: %w", err)
	}
	// Wildcard lets drivers use more probes than pre-planted without
	// another session.
	if err := child.Add(dnswire.RR{
		Name: "*." + childOrigin, Class: dnswire.ClassIN, TTL: in.ttl,
		Data: dnswire.ARecord{Addr: in.Target},
	}); err != nil {
		return nil, fmt.Errorf("core: child wildcard: %w", err)
	}
	names := make([]string, 0, q)
	for i := 1; i <= q; i++ {
		name := zone.ProbeName(i, childOrigin)
		if err := child.Add(dnswire.RR{
			Name: name, Class: dnswire.ClassIN, TTL: in.ttl,
			Data: dnswire.ARecord{Addr: in.Target},
		}); err != nil {
			return nil, fmt.Errorf("core: probe record %d: %w", i, err)
		}
		names = append(names, name)
	}
	in.Child.AddZone(child)

	return &HierarchySession{
		ChildOrigin: childOrigin,
		ProbeNames:  names,
		infra:       in,
		childZone:   child,
	}, nil
}

// ObservedCaches returns ω: the number of probe queries that arrived at
// the *parent* nameserver — caches holding the delegation skip it
// (§IV-B2b: "The number of queries arriving at the nameserver of
// cache.example indicate the number of caches").
func (s *HierarchySession) ObservedCaches() int {
	return s.infra.Parent.Log().CountSuffix(s.ChildOrigin)
}

// ChildArrivals counts probe queries at the child nameserver (every cache
// miss for a probe name, regardless of cached delegations).
func (s *HierarchySession) ChildArrivals() int {
	return s.infra.Child.Log().CountSuffix(s.ChildOrigin)
}

// ProbeName returns the i-th probe name (1-based), synthesising names
// beyond the pre-planted set via the wildcard.
func (s *HierarchySession) ProbeName(i int) string {
	if i >= 1 && i <= len(s.ProbeNames) {
		return s.ProbeNames[i-1]
	}
	return zone.ProbeName(i, s.ChildOrigin)
}
