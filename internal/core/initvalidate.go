package core

import (
	"context"
	"sync"

	"dnscde/internal/dnswire"
)

// This file implements the §V-B two-phase measurement protocol used in
// the paper's Internet study: an *init* phase that sends N seed queries
// in parallel (planting a honey record in the caches they hit) and a
// *validate* phase that re-requests the seeded record N times and checks
// for its presence.
//
// With uniform cache selection the init phase covers a cache with
// probability 1-exp(-N/n); the validate phase confirms coverage and picks
// up stragglers. The union of arrivals over both phases is the cache
// count, and it is robust to packet loss because every phase is N-way
// redundant ("carpet bombing").

// InitValidateOptions tunes the protocol.
type InitValidateOptions struct {
	// N is the per-phase probe count; it should exceed the expected
	// cache count (the paper recommends N = 2n, which misses only
	// exp(-2) ≈ 13.5% of caches in init and virtually none after
	// validate). Zero defaults to 16.
	N int
	// Concurrency is the number of in-flight probes per phase ("in
	// parallel or in rapid succession"); zero defaults to N.
	Concurrency int
}

func (o InitValidateOptions) withDefaults() InitValidateOptions {
	if o.N == 0 {
		o.N = 16
	}
	if o.Concurrency == 0 || o.Concurrency > o.N {
		o.Concurrency = o.N
	}
	return o
}

// InitValidateResult is the outcome of one init/validate run.
type InitValidateResult struct {
	N int
	// InitArrivals is ω during init: distinct caches covered by seeds.
	InitArrivals int
	// ValidateArrivals counts caches first reached during validate
	// (missed by init).
	ValidateArrivals int
	// Caches is the total over both phases — the measured cache count.
	Caches int
	// ValidateHits is the number of validate probes answered from a
	// cache (seed present), the protocol's empirical success count.
	ValidateHits int
	// ProbeErrors counts probes lost to timeouts across both phases.
	ProbeErrors int
}

// InitValidate runs the two-phase protocol against the platform behind p.
func InitValidate(ctx context.Context, p Prober, in *Infra, opts InitValidateOptions) (InitValidateResult, error) {
	opts = opts.withDefaults()
	session, err := in.NewFlatSession()
	if err != nil {
		return InitValidateResult{}, err
	}
	result := InitValidateResult{N: opts.N}

	// Init phase: N seed probes in parallel.
	in.mInitSeeds.Add(int64(opts.N))
	result.ProbeErrors += probeBurst(ctx, p, in, session.Honey, opts.N, opts.Concurrency)
	result.InitArrivals = session.ObservedCaches()

	// Validate phase: N presence checks in parallel.
	in.mValidateSeeds.Add(int64(opts.N))
	result.ProbeErrors += probeBurst(ctx, p, in, session.Honey, opts.N, opts.Concurrency)
	total := session.ObservedCaches()
	result.ValidateArrivals = total - result.InitArrivals
	result.Caches = total
	result.ValidateHits = opts.N - result.ValidateArrivals

	if result.ProbeErrors == 2*opts.N {
		return result, ErrAllProbesFailed
	}
	return result, nil
}

// probeBurst sends n probes for name with the given concurrency and
// returns the number of failed probes. Each probe is charged to the
// infrastructure's cost accounting.
func probeBurst(ctx context.Context, p Prober, in *Infra, name string, n, concurrency int) int {
	var wg sync.WaitGroup
	sem := make(chan struct{}, concurrency)
	var mu sync.Mutex
	failures := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			_, err := p.Probe(ctx, name, dnswire.TypeA)
			in.countProbe(err, false)
			if err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return failures
}
