package core

import (
	"context"
	"testing"

	"dnscde/internal/loadbal"
)

func TestClassifyRoundRobin(t *testing.T) {
	w := newTestWorld(t)
	for _, n := range []int{2, 4, 6} {
		plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRoundRobin()})
		res, err := ClassifySelection(context.Background(), w.directProber(plat), w.infra, ClassifyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Class != ClassTrafficDependent {
			t.Errorf("n=%d: class = %q (seq %d/%d)", n, res.Class, res.SequentialRuns, res.Runs)
		}
		if res.Caches != n {
			t.Errorf("n=%d: caches = %d", n, res.Caches)
		}
	}
}

func TestClassifyRandom(t *testing.T) {
	w := newTestWorld(t)
	for _, n := range []int{3, 6} {
		plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRandom(int64(n))})
		res, err := ClassifySelection(context.Background(), w.directProber(plat), w.infra, ClassifyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Class != ClassUnpredictable {
			t.Errorf("n=%d: class = %q (seq %d/%d)", n, res.Class, res.SequentialRuns, res.Runs)
		}
	}
}

func TestClassifyHashQName(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 4, selector: loadbal.HashQName{}})
	res, err := ClassifySelection(context.Background(), w.directProber(plat), w.infra, ClassifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassKeyDependent {
		t.Errorf("class = %q", res.Class)
	}
	if res.IdenticalKeyCaches != 1 || res.Caches != 4 {
		t.Errorf("identical=%d distinct=%d", res.IdenticalKeyCaches, res.Caches)
	}
}

func TestClassifyHashSourceIPNeedsVantages(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 4, selector: loadbal.HashSourceIP{}})
	ingress := plat.Config().IngressIPs[0]

	// Single vantage: indistinguishable from a single cache.
	res, err := ClassifySelection(context.Background(), w.directProber(plat), w.infra, ClassifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassSingleCache {
		t.Errorf("single vantage class = %q, want single-cache", res.Class)
	}

	// Extra vantages with distinct client addresses expose the
	// source-keyed selection.
	extras := make([]Prober, 0, 16)
	base := clientAddr
	for i := 0; i < 16; i++ {
		base = base.Next()
		extras = append(extras, NewDirectProber(w.net, base, ingress, 0))
	}
	res, err = ClassifySelection(context.Background(), w.directProber(plat), w.infra,
		ClassifyOptions{ExtraVantages: extras})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassKeyDependent {
		t.Errorf("multi-vantage class = %q (distinct=%d identical=%d)", res.Class, res.Caches, res.IdenticalKeyCaches)
	}
}

func TestClassifySingleCache(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 1, selector: loadbal.NewRandom(3)})
	res, err := ClassifySelection(context.Background(), w.directProber(plat), w.infra, ClassifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassSingleCache {
		t.Errorf("class = %q", res.Class)
	}
}

func TestClassifyRejectsIndirect(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 2})
	if _, err := ClassifySelection(context.Background(), w.indirectProber(plat), w.infra, ClassifyOptions{}); err == nil {
		t.Error("indirect prober accepted")
	}
}

func TestSequentialChance(t *testing.T) {
	if got := sequentialChance(1); got != 1 {
		t.Errorf("n=1: %v", got)
	}
	if got := sequentialChance(2); got != 0.5 {
		t.Errorf("n=2: %v", got)
	}
	// 3!/27 = 6/27.
	if got := sequentialChance(3); got < 0.2221 || got > 0.2223 {
		t.Errorf("n=3: %v", got)
	}
}
