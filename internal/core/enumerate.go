package core

import (
	"context"
	"errors"
	"fmt"

	"dnscde/internal/dnswire"
	"dnscde/internal/trace"
)

// Technique identifies a CDE enumeration methodology.
type Technique string

// Enumeration techniques.
const (
	// TechniqueDirect: direct ingress + direct egress (§IV-B1) — q
	// identical queries for one honey name.
	TechniqueDirect Technique = "direct"
	// TechniqueChain: indirect ingress via the CNAME-chain bypass
	// (§IV-B2a) — q distinct aliases of one target.
	TechniqueChain Technique = "cname-chain"
	// TechniqueHierarchy: indirect ingress via the names-hierarchy bypass
	// (§IV-B2b) — q distinct names in a fresh delegated zone.
	TechniqueHierarchy Technique = "names-hierarchy"
	// TechniqueTiming: indirect egress via response latency (§IV-B3).
	TechniqueTiming Technique = "timing"
)

// EnumOptions tunes an enumeration run.
type EnumOptions struct {
	// Queries is q, the probe budget. Zero defaults to
	// RecommendedQueries(8, 0.99) — enough to cover up to 8 caches with
	// 99% confidence under unpredictable selection.
	Queries int
	// Replicates is the carpet-bombing factor K (§V): each probe is sent
	// K times so that packet loss on the measured path does not starve
	// the sample. Zero defaults to 1 (no replication).
	Replicates int
	// QType is the probed record type; zero defaults to A.
	QType dnswire.Type
}

// withDefaults normalises opts.
func (o EnumOptions) withDefaults() EnumOptions {
	if o.Queries == 0 {
		o.Queries = RecommendedQueries(8, 0.99)
	}
	if o.Replicates == 0 {
		o.Replicates = 1
	}
	if o.QType == 0 {
		o.QType = dnswire.TypeA
	}
	return o
}

// EnumResult is the outcome of one enumeration run.
type EnumResult struct {
	Technique Technique
	// Caches is ω, the measured cache count.
	Caches int
	// ProbesSent counts probe queries issued (including carpet-bombing
	// replicates); ProbeErrors counts those lost to timeouts.
	ProbesSent  int
	ProbeErrors int
}

// ErrAllProbesFailed reports an enumeration whose every probe was lost.
var ErrAllProbesFailed = errors.New("core: all probes failed")

// EnumerateDirect counts the caches behind a directly accessible ingress
// IP (§IV-B1a): q identical queries for a fresh honey record; the number
// of arrivals at the nameserver is the cache count.
func EnumerateDirect(ctx context.Context, p Prober, in *Infra, opts EnumOptions) (EnumResult, error) {
	opts = opts.withDefaults()
	if !p.Direct() {
		return EnumResult{}, fmt.Errorf("core: direct enumeration needs a direct prober (local caches absorb repeated queries)")
	}
	session, err := in.NewFlatSession()
	if err != nil {
		return EnumResult{}, err
	}
	in.mEnumRounds.Inc()
	res := EnumResult{Technique: TechniqueDirect}
	for i := 0; i < opts.Queries; i++ {
		for k := 0; k < opts.Replicates; k++ {
			res.ProbesSent++
			_, err := p.Probe(ctx, session.Honey, opts.QType)
			in.countProbe(err, k > 0)
			if err != nil {
				res.ProbeErrors++
			}
		}
	}
	if res.ProbeErrors == res.ProbesSent {
		return res, ErrAllProbesFailed
	}
	res.Caches = session.ObservedCaches()
	return res, nil
}

// EnumerateChain counts caches through local caches using the CNAME-chain
// bypass (§IV-B2a): q distinct aliases all pointing at one target; each
// cache resolves the target at most once, so arrivals for the target
// count the caches.
func EnumerateChain(ctx context.Context, p Prober, in *Infra, opts EnumOptions) (EnumResult, error) {
	opts = opts.withDefaults()
	session, err := in.NewChainSession(opts.Queries)
	if err != nil {
		return EnumResult{}, err
	}
	in.mEnumRounds.Inc()
	res := EnumResult{Technique: TechniqueChain}
	for _, alias := range session.Aliases {
		for k := 0; k < opts.Replicates; k++ {
			res.ProbesSent++
			_, err := p.Probe(ctx, alias, opts.QType)
			in.countProbe(err, k > 0)
			if err != nil {
				res.ProbeErrors++
			}
		}
	}
	if res.ProbeErrors == res.ProbesSent {
		return res, ErrAllProbesFailed
	}
	// Count per query type and take the best group: channels like SMTP
	// resolve each alias under several types, and every type group is an
	// independent enumeration of the same caches.
	res.Caches = session.ObservedCachesBestType()
	return res, nil
}

// EnumerateHierarchy counts caches through local caches using the
// names-hierarchy bypass (§IV-B2b): q distinct names in a freshly
// delegated child zone; only caches that lack the delegation visit the
// parent, so parent arrivals count the caches.
func EnumerateHierarchy(ctx context.Context, p Prober, in *Infra, opts EnumOptions) (EnumResult, error) {
	opts = opts.withDefaults()
	session, err := in.NewHierarchySession(opts.Queries)
	if err != nil {
		return EnumResult{}, err
	}
	in.mEnumRounds.Inc()
	res := EnumResult{Technique: TechniqueHierarchy}
	for i := 1; i <= opts.Queries; i++ {
		name := session.ProbeName(i)
		for k := 0; k < opts.Replicates; k++ {
			res.ProbesSent++
			_, err := p.Probe(ctx, name, opts.QType)
			in.countProbe(err, k > 0)
			if err != nil {
				res.ProbeErrors++
			}
		}
	}
	if res.ProbeErrors == res.ProbesSent {
		return res, ErrAllProbesFailed
	}
	res.Caches = session.ObservedCaches()
	return res, nil
}

// EnumerateUntilComplete probes one fresh honey record until the
// nameserver has observed `target` distinct arrivals (ω == target) or
// maxProbes is exhausted — the direct Monte-Carlo instrument of Theorem
// 5.1: under uniform selection the expected number of probes to complete
// is n·H_n, the coupon-collector bound. It returns the probes actually
// spent, so repeated trials sample the full completion-time distribution.
//
// The loop carries §V-B loss compensation: an online LossEstimator tracks
// failed probes (timeouts and SERVFAIL/REFUSED answers) and each round
// replicates its probe by the carpet-bombing factor for the estimated
// rate. On a loss-free path the estimate stays 0 and the factor 1, so the
// probe count is exactly the uncompensated one — the cost-accounting
// experiment's n·H_n comparison is unaffected.
func EnumerateUntilComplete(ctx context.Context, p Prober, in *Infra, target, maxProbes int) (EnumResult, error) {
	if target < 1 {
		return EnumResult{}, fmt.Errorf("core: completion target must be >= 1, have %d", target)
	}
	if maxProbes < target {
		maxProbes = target * 64
	}
	if !p.Direct() {
		return EnumResult{}, fmt.Errorf("core: completion enumeration needs a direct prober")
	}
	session, err := in.NewFlatSession()
	if err != nil {
		return EnumResult{}, err
	}
	in.mEnumRounds.Inc()
	est := &LossEstimator{}
	res := EnumResult{Technique: TechniqueDirect}
	lastK := 1
	for res.ProbesSent < maxProbes {
		k := est.Replicates(0.99, 8)
		if k != lastK {
			trace.Addf(ctx, "compensate", "loss=%.3f K=%d after %d probes", est.Rate(), k, res.ProbesSent)
			lastK = k
		}
		for r := 0; r < k && res.ProbesSent < maxProbes; r++ {
			res.ProbesSent++
			pres, err := p.Probe(ctx, session.Honey, dnswire.TypeA)
			in.countProbe(err, r > 0)
			failed := probeFailed(pres, err)
			est.Record(failed)
			if failed {
				res.ProbeErrors++
			}
		}
		if res.Caches = session.ObservedCaches(); res.Caches >= target {
			return res, nil
		}
	}
	if res.ProbeErrors == res.ProbesSent {
		return res, ErrAllProbesFailed
	}
	return res, nil
}

// Enumerate picks the appropriate technique for the prober's access mode:
// direct probers use the §IV-B1 identical-query technique, indirect
// probers the §IV-B2b names hierarchy.
func Enumerate(ctx context.Context, p Prober, in *Infra, opts EnumOptions) (EnumResult, error) {
	if p.Direct() {
		return EnumerateDirect(ctx, p, in, opts)
	}
	return EnumerateHierarchy(ctx, p, in, opts)
}
