package core

import (
	"context"
	"testing"
	"time"
)

func TestDurMedian(t *testing.T) {
	tests := []struct {
		in   []time.Duration
		want time.Duration
	}{
		{nil, 0},
		{[]time.Duration{5}, 5},
		{[]time.Duration{1, 3}, 2},
		{[]time.Duration{9, 1, 5}, 5},
		// Even length: mean of the middle pair, integer-truncated.
		{[]time.Duration{4, 1, 3, 2}, 2},
	}
	for _, tt := range tests {
		if got := durMedian(tt.in); got != tt.want {
			t.Errorf("durMedian(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
	// Input must not be mutated.
	in := []time.Duration{3, 1, 2}
	_ = durMedian(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("durMedian mutated its input")
	}
}

func TestMidpointThreshold(t *testing.T) {
	cached := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond}
	uncached := []time.Duration{20 * time.Millisecond, 30 * time.Millisecond}
	got := MidpointThreshold(cached, uncached)
	want := (3*time.Millisecond + 25*time.Millisecond) / 2
	if got != want {
		t.Errorf("MidpointThreshold = %v, want %v", got, want)
	}
}

func TestKMeansThreshold(t *testing.T) {
	cached := []time.Duration{2 * time.Millisecond, 3 * time.Millisecond, 2500 * time.Microsecond}
	uncached := []time.Duration{20 * time.Millisecond, 21 * time.Millisecond, 22 * time.Millisecond}
	got := KMeansThreshold(cached, uncached)
	if got < 3*time.Millisecond || got > 20*time.Millisecond {
		t.Errorf("KMeansThreshold = %v, not between clusters", got)
	}
}

func TestKMeansThresholdDegenerate(t *testing.T) {
	if got := KMeansThreshold(nil, nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	same := []time.Duration{5 * time.Millisecond, 5 * time.Millisecond}
	if got := KMeansThreshold(same, nil); got != 5*time.Millisecond {
		t.Errorf("identical samples = %v", got)
	}
}

func TestTimingDirectWithJitter(t *testing.T) {
	// Jitter below the upstream separation must not confuse the count.
	w := newTestWorld(t)
	// Rebuild a platform with jitter on its links.
	plat := w.newPlatform(t, platformOpts{caches: 3})
	_ = plat
	res, err := EnumerateTimingDirect(context.Background(), w.directProber(plat), w.infra, TimingOptions{
		CountProbes: RecommendedQueries(3, 0.999),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Caches != 3 {
		t.Errorf("measured %d caches", res.Caches)
	}
	if len(res.CountRTTs) == 0 || len(res.CachedRTTs) == 0 {
		t.Error("missing RTT samples")
	}
}

func TestTimingOptionsDefaults(t *testing.T) {
	o := TimingOptions{}.withDefaults()
	if o.SeedQueries != 100 {
		t.Errorf("SeedQueries = %d, want the paper's 100", o.SeedQueries)
	}
	if o.Calibration == 0 || o.CountProbes == 0 || o.Threshold == nil {
		t.Errorf("defaults incomplete: %+v", o)
	}
}
