package core

// This file implements resolver-software fingerprinting from the
// nameserver side — the §II-C motivation ("for distribution and
// integration of patches it is important to know which software the
// caches are running") built on the query-pattern features the §VI
// related work identifies: the maximal CNAME-chain length a resolver
// follows itself, whether it issues AAAA queries after A queries, and
// whether it trusts server-appended CNAME chains.

import (
	"context"
	"fmt"

	"dnscde/internal/dnswire"
)

// Fingerprint is the externally observable behaviour profile of a
// resolution platform.
type Fingerprint struct {
	// ObservedChaseDepth is how many CNAME links the platform queried
	// individually at the nameserver.
	ObservedChaseDepth int
	// ChaseLimited reports that the probe chain was deeper than the
	// platform was willing to walk (the probe failed or the target was
	// never queried); ObservedChaseDepth then *is* the platform's limit.
	ChaseLimited bool
	// TrustsServerChains reports BIND-style acceptance of
	// server-appended CNAME chains: the final answer arrived although
	// only the first link was ever queried.
	TrustsServerChains bool
	// QueriesAAAA reports an A→AAAA follow-up pattern.
	QueriesAAAA bool
	ProbesSent  int
}

// FingerprintOptions tunes the probe.
type FingerprintOptions struct {
	// ShallowDepth is the chain length of the trust probe; it must be
	// within every resolver's chase budget. Zero defaults to 4.
	ShallowDepth int
	// ChainDepth is the limit-measurement chain length; it must exceed
	// any plausible chase limit. Zero defaults to 24.
	ChainDepth int
}

func (o FingerprintOptions) withDefaults() FingerprintOptions {
	if o.ShallowDepth == 0 {
		o.ShallowDepth = 4
	}
	if o.ChainDepth == 0 {
		o.ChainDepth = 24
	}
	return o
}

// FingerprintResolver measures a platform's query-pattern fingerprint
// with three probes: an A query for a fresh honey record (AAAA-coupling
// check), a query into a shallow CNAME chain (chain-trust check: did the
// platform re-query each link or accept the server-appended chain?), and
// a query into a deep chain (chase-limit measurement).
func FingerprintResolver(ctx context.Context, p Prober, in *Infra, opts FingerprintOptions) (Fingerprint, error) {
	opts = opts.withDefaults()
	var fp Fingerprint

	// Probe 1: AAAA coupling.
	flat, err := in.NewFlatSession()
	if err != nil {
		return fp, err
	}
	fp.ProbesSent++
	if _, err := p.Probe(ctx, flat.Honey, dnswire.TypeA); err != nil {
		return fp, fmt.Errorf("core: fingerprint A probe: %w", err)
	}
	fp.QueriesAAAA = in.Parent.Log().CountNameType(flat.Honey, dnswire.TypeAAAA) > 0

	// Probe 2: shallow chain — every resolver can complete it; only a
	// chain-trusting one does so without querying the later links.
	shallow, err := in.NewDeepChainSession(opts.ShallowDepth)
	if err != nil {
		return fp, err
	}
	fp.ProbesSent++
	res, probeErr := p.Probe(ctx, shallow.Links[0], dnswire.TypeA)
	answered := probeErr == nil && res.RCode == dnswire.RCodeNoError && len(res.Records) > 0
	if answered && shallow.ObservedDepth() == 1 && !shallow.TargetReached() {
		fp.TrustsServerChains = true
		fp.ObservedChaseDepth = 1
		return fp, nil
	}

	// Probe 3: deep chain — how far does the platform walk on its own?
	deep, err := in.NewDeepChainSession(opts.ChainDepth)
	if err != nil {
		return fp, err
	}
	fp.ProbesSent++
	_, _ = p.Probe(ctx, deep.Links[0], dnswire.TypeA)
	fp.ObservedChaseDepth = deep.ObservedDepth()
	fp.ChaseLimited = !deep.TargetReached()
	return fp, nil
}

// Software is a coarse resolver-software class derived from a
// fingerprint, in the spirit of the §VI passive-fingerprinting studies.
type Software string

// Software classes used by the fingerprint experiment. The labels follow
// the behavioural archetypes of the fingerprinting literature; they are
// classes, not version claims.
const (
	// SoftwareChainTrusting accepts server-appended CNAME chains
	// (BIND-style).
	SoftwareChainTrusting Software = "chain-trusting"
	// SoftwareAAAACoupled re-queries AAAA after A (Windows-style).
	SoftwareAAAACoupled Software = "aaaa-coupled"
	// SoftwareHardened re-queries every CNAME target itself and issues
	// no coupled AAAA queries (Unbound-style).
	SoftwareHardened Software = "hardened"
	// SoftwareUnknown is anything else.
	SoftwareUnknown Software = "unknown"
)

// ClassifySoftware maps a fingerprint to its software class.
func ClassifySoftware(fp Fingerprint) Software {
	switch {
	case fp.TrustsServerChains:
		return SoftwareChainTrusting
	case fp.QueriesAAAA:
		return SoftwareAAAACoupled
	case fp.ObservedChaseDepth > 1:
		return SoftwareHardened
	default:
		return SoftwareUnknown
	}
}
