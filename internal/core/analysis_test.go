package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHarmonicNumber(t *testing.T) {
	tests := []struct {
		n    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {4, 25.0 / 12},
	}
	for _, tt := range tests {
		if got := HarmonicNumber(tt.n); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("H_%d = %v, want %v", tt.n, got, tt.want)
		}
	}
}

func TestExpectedProbesToCoverAll(t *testing.T) {
	// n=1 -> 1 query; n=2 -> 3 queries; n=4 -> 4*25/12 ≈ 8.33.
	if got := ExpectedProbesToCoverAll(1); got != 1 {
		t.Errorf("E[X] for n=1 = %v", got)
	}
	if got := ExpectedProbesToCoverAll(2); math.Abs(got-3) > 1e-12 {
		t.Errorf("E[X] for n=2 = %v, want 3", got)
	}
	if got := ExpectedProbesToCoverAll(0); got != 0 {
		t.Errorf("E[X] for n=0 = %v", got)
	}
}

func TestTheorem51MonteCarlo(t *testing.T) {
	// Validate E[X] = n·H_n against simulation for several n.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 5, 10, 25} {
		const trials = 3000
		total := 0
		for trial := 0; trial < trials; trial++ {
			covered := make([]bool, n)
			count := 0
			for queries := 0; count < n; queries++ {
				idx := rng.Intn(n)
				if !covered[idx] {
					covered[idx] = true
					count++
				}
				total++
			}
		}
		got := float64(total) / trials
		want := ExpectedProbesToCoverAll(n)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("n=%d: Monte Carlo %.2f vs n·H_n %.2f", n, got, want)
		}
	}
}

func TestCoverageProbability(t *testing.T) {
	if got := CoverageProbability(1, 1); got != 1 {
		t.Errorf("P(cover|n=1,q=1) = %v", got)
	}
	if got := CoverageProbability(4, 0); got != 0 {
		t.Errorf("P(cover|q=0) = %v", got)
	}
	// Exact vs paper's exponential approximation at N = 2n.
	exact := CoverageProbability(10, 20)
	approx := 1 - ExpectedUncoveredFraction(10, 20)
	if math.Abs(exact-approx) > 0.02 {
		t.Errorf("exact %v vs approx %v diverge", exact, approx)
	}
}

func TestExpectedCovered(t *testing.T) {
	// With q = 2n, expect ≈ n(1 - e^-2) ≈ 0.865n.
	got := ExpectedCovered(100, 200)
	if got < 85 || got > 88 {
		t.Errorf("ExpectedCovered(100, 200) = %v", got)
	}
}

func TestRecommendedQueries(t *testing.T) {
	if got := RecommendedQueries(1, 0.99); got != 1 {
		t.Errorf("nMax=1: %d", got)
	}
	q := RecommendedQueries(8, 0.99)
	// Union bound: 8·(7/8)^q ≤ 0.01.
	if bound := 8 * math.Pow(7.0/8, float64(q)); bound > 0.01 {
		t.Errorf("q=%d gives union bound %v > 0.01", q, bound)
	}
	// One fewer query must violate the bound (minimality).
	if bound := 8 * math.Pow(7.0/8, float64(q-1)); bound <= 0.01 {
		t.Errorf("q=%d is not minimal", q)
	}
	if RecommendedQueries(8, 0.999) <= RecommendedQueries(8, 0.9) {
		t.Error("higher confidence should need more queries")
	}
	if RecommendedQueries(16, 0.99) <= RecommendedQueries(4, 0.99) {
		t.Error("more caches should need more queries")
	}
}

func TestCarpetBombingFactor(t *testing.T) {
	if got := CarpetBombingFactor(0, 0.99); got != 1 {
		t.Errorf("no loss: K = %d", got)
	}
	// 11% loss (Iran): need K with 0.11^K ≤ 0.01 → K = 3.
	if got := CarpetBombingFactor(0.11, 0.99); got != 3 {
		t.Errorf("11%% loss: K = %d, want 3", got)
	}
	// 1% loss: K = 1.
	if got := CarpetBombingFactor(0.01, 0.99); got != 1 {
		t.Errorf("1%% loss: K = %d, want 1", got)
	}
	if CarpetBombingFactor(0.5, 0.999) <= CarpetBombingFactor(0.5, 0.9) {
		t.Error("higher confidence should need more replicates")
	}
}

func TestInitValidateSuccessRate(t *testing.T) {
	// As N/n grows the success rate asymptotically reaches N (§V-B).
	n := 10
	big := 100
	got := InitValidateSuccessRate(n, big)
	if got < float64(big)*0.99 {
		t.Errorf("success rate %v for N/n=10, want ≈N", got)
	}
	if InitValidateSuccessRate(0, 10) != 0 {
		t.Error("n=0 should yield 0")
	}
	// N = n: (1-e^-1)^2 ≈ 0.3995 per probe.
	got = InitValidateSuccessRate(10, 10)
	if math.Abs(got-10*0.39958) > 0.1 {
		t.Errorf("N=n success rate = %v", got)
	}
}

func TestPropertyCoverageMonotonic(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		q := r.Intn(200)
		// More probes never reduce coverage.
		return CoverageProbability(n, q+1) >= CoverageProbability(n, q)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyHarmonicBounds(t *testing.T) {
	// ln(n) < H_n ≤ ln(n) + 1 for n ≥ 1.
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10000)
		h := HarmonicNumber(n)
		ln := math.Log(float64(n))
		return h > ln && h <= ln+1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
