package core

import (
	"math"
	"net/netip"

	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
)

// This file quantifies the paper's §II-A security motivation: multiple
// caches with unpredictable selection raise the bar for cache poisoning,
// because a multi-record injection (e.g. a spoofed NS record followed by
// a spoofed A record that exploits it) only works if every injected
// record lands in the *same* cache.

// PoisoningSuccessProbability returns the probability that a k-record
// poisoning attack against a platform with n uniformly-selected caches
// places all k records in one cache: n·(1/n)^k = (1/n)^(k-1).
func PoisoningSuccessProbability(n, k int) float64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	if n == 1 || k == 1 {
		return 1
	}
	return math.Pow(1/float64(n), float64(k-1))
}

// ExpectedPoisoningAttempts returns the expected number of complete
// k-record attack iterations until one lands entirely in a single cache.
func ExpectedPoisoningAttempts(n, k int) float64 {
	p := PoisoningSuccessProbability(n, k)
	if p == 0 {
		return math.Inf(1)
	}
	return 1 / p
}

// _victimAddr is the fixed client whose queries the simulated attacker
// races; the load balancer sees this source for every injected record.
var _victimAddr = netip.MustParseAddr("198.18.99.99")

// SimulatePoisoning Monte-Carlo-validates the closed form against an
// actual cache-selection strategy: each trial injects k records (k
// resolver queries the attacker races) through the selector and succeeds
// when all of them are handled by the same cache. It returns the
// empirical success rate over trials.
//
// For selectors in the paper's unpredictable category the rate matches
// (1/n)^(k-1); for round robin consecutive records never share a cache
// (when n > 1 and no cross traffic); and for key-dependent selectors a
// same-key attack always shares one — which is exactly why §VII
// recommends multiple caches *with unpredictable selection* as a
// poisoning defence.
func SimulatePoisoning(sel loadbal.Selector, n, k, trials int) float64 {
	if trials <= 0 || n <= 0 || k <= 0 {
		return 0
	}
	q := dnswire.Question{Name: "victim.example.", Type: dnswire.TypeA, Class: dnswire.ClassIN}
	successes := 0
	for t := 0; t < trials; t++ {
		first := sel.Select(q, _victimAddr, n)
		allSame := true
		for i := 1; i < k; i++ {
			// Keep drawing even after a mismatch so traffic-dependent
			// selectors advance the same number of steps per trial.
			if sel.Select(q, _victimAddr, n) != first {
				allSame = false
			}
		}
		if allSame {
			successes++
		}
	}
	return float64(successes) / float64(trials)
}
