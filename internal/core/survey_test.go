package core

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnscde/internal/dnscache"
	"dnscde/internal/loadbal"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
)

func TestSurveyPlatformCompleteProfile(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{
		caches: 3, egress: 4, selector: loadbal.NewRoundRobin(),
		mutate: func(c *platform.Config) {
			c.CachePolicy = dnscache.Policy{MinTTL: 120 * time.Second}
			c.QueryAAAA = true
			c.MaxCNAMEChase = 8
		},
	})
	survey, err := SurveyPlatform(context.Background(), w.directProber(plat), w.infra, SurveyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if survey.Caches.Caches != 3 {
		t.Errorf("caches = %d", survey.Caches.Caches)
	}
	if len(survey.Egress.IPs) != 4 {
		t.Errorf("egress = %d", len(survey.Egress.IPs))
	}
	if survey.Selection.Class != ClassTrafficDependent {
		t.Errorf("selection = %q", survey.Selection.Class)
	}
	if survey.SoftwareClass != SoftwareAAAACoupled {
		t.Errorf("software = %q", survey.SoftwareClass)
	}
	if survey.TTL.MinTTL < 115*time.Second || survey.TTL.MinTTL > 120*time.Second {
		t.Errorf("min ttl = %v", survey.TTL.MinTTL)
	}
	if survey.Timing.Caches != 3 {
		t.Errorf("timing cross-check = %d", survey.Timing.Caches)
	}
	if survey.ProbesSent == 0 {
		t.Error("no probe accounting")
	}

	out := survey.Render()
	for _, want := range []string{
		"caches:            3",
		"egress IPs:        4",
		"traffic-dependent",
		"aaaa-coupled",
		"min clamp",
		"timing cross-check: 3 caches",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSurveySkipTiming(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 2})
	survey, err := SurveyPlatform(context.Background(), w.directProber(plat), w.infra,
		SurveyOptions{SkipTiming: true})
	if err != nil {
		t.Fatal(err)
	}
	if survey.Timing.ProbesSent != 0 {
		t.Error("timing ran despite SkipTiming")
	}
	if strings.Contains(survey.Render(), "timing cross-check") {
		t.Error("render shows skipped timing")
	}
}

func TestSurveyRejectsIndirect(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 1})
	if _, err := SurveyPlatform(context.Background(), w.indirectProber(plat), w.infra, SurveyOptions{}); err == nil {
		t.Error("indirect prober accepted")
	}
}

func TestFormatAddrsTruncation(t *testing.T) {
	long := netsim.AddrRange(netip.MustParseAddr("10.0.0.1"), 12)
	out := formatAddrs(long, 8)
	if !strings.Contains(out, "(+4)") {
		t.Errorf("formatAddrs = %q", out)
	}
	short := netsim.AddrRange(netip.MustParseAddr("10.0.0.1"), 3)
	if strings.Contains(formatAddrs(short, 8), "+") {
		t.Error("short list truncated")
	}
}
