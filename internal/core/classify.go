package core

import (
	"context"
	"fmt"

	"dnscde/internal/dnswire"
)

// This file implements the paper's declared future work (§IV-A: "A
// comprehensive study of cache selection algorithms is outside the scope
// of this study and we propose it as one of the interesting followup
// topics"): classifying a platform's cache-selection strategy from the
// outside, using only the CDE side channels.
//
// The classifier combines three observations:
//
//  1. ω_distinct — enumeration with distinct names (names hierarchy)
//     counts the caches reachable from this vantage point.
//  2. ω_identical — enumeration with one repeated name counts the caches
//     a *single key* reaches: 1 under key-dependent selection, all n
//     otherwise.
//  3. arrival order — under traffic-dependent (round-robin) selection the
//     first n identical probes each hit a fresh cache, so the nameserver
//     arrivals occupy exactly the first n probe slots; under
//     unpredictable selection the last fresh arrival lands around n·H_n.
//
// A single vantage point cannot distinguish a hash-by-source-IP platform
// from a single cache; supplying extra vantage probers (the ad-network
// situation) resolves that case.

// SelectionClass is the classifier's verdict.
type SelectionClass string

// Selection classes. They extend loadbal.Category with the observational
// corner cases.
const (
	// ClassSingleCache: one cache visible from every supplied vantage;
	// the selector is unobservable.
	ClassSingleCache SelectionClass = "single-cache"
	// ClassTrafficDependent: multiple caches, identical queries reach
	// all of them, arrivals sequential (round-robin-like).
	ClassTrafficDependent SelectionClass = "traffic-dependent"
	// ClassUnpredictable: multiple caches, identical queries reach all
	// of them, arrivals scattered (random-like).
	ClassUnpredictable SelectionClass = "unpredictable"
	// ClassKeyDependent: distinct names (or distinct sources) reach more
	// caches than a single repeated key does.
	ClassKeyDependent SelectionClass = "key-dependent"
)

// ClassifyOptions tunes the classifier.
type ClassifyOptions struct {
	// Queries is the per-phase probe budget; zero defaults to
	// RecommendedQueries(8, 0.99).
	Queries int
	// Repetitions of the arrival-order test; zero defaults to 3. With r
	// repetitions the probability that uniform-random selection passes
	// every sequential test is (n!/nⁿ)^r.
	Repetitions int
	// ExtraVantages are probers from different source addresses,
	// used to expose hash-by-source-IP platforms that look single-cache
	// from one vantage. Optional.
	ExtraVantages []Prober
}

func (o ClassifyOptions) withDefaults() ClassifyOptions {
	if o.Queries == 0 {
		o.Queries = RecommendedQueries(8, 0.99)
	}
	if o.Repetitions == 0 {
		o.Repetitions = 3
	}
	return o
}

// ClassifyResult is the classifier's output.
type ClassifyResult struct {
	Class SelectionClass
	// Caches is the distinct-name cache count (per vantage union).
	Caches int
	// IdenticalKeyCaches is the identical-query count.
	IdenticalKeyCaches int
	// SequentialRuns of Runs arrival-order tests looked round-robin.
	SequentialRuns, Runs int
	ProbesSent           int
}

// ClassifySelection determines the target platform's cache-selection
// strategy. It needs a direct prober (identical queries must reach the
// platform unimpeded by local caches).
func ClassifySelection(ctx context.Context, p Prober, in *Infra, opts ClassifyOptions) (ClassifyResult, error) {
	opts = opts.withDefaults()
	if !p.Direct() {
		return ClassifyResult{}, fmt.Errorf("core: classification needs a direct prober")
	}
	var result ClassifyResult

	// Phase 1: distinct-name enumeration from the primary vantage, plus
	// any extra vantages (union counted at the nameserver).
	session, err := in.NewHierarchySession(opts.Queries)
	if err != nil {
		return result, err
	}
	vantages := append([]Prober{p}, opts.ExtraVantages...)
	for i := 1; i <= opts.Queries; i++ {
		result.ProbesSent++
		_, _ = vantages[(i-1)%len(vantages)].Probe(ctx, session.ProbeName(i), dnswire.TypeA)
	}
	result.Caches = session.ObservedCaches()

	// Phase 2: identical-query enumeration.
	ident, err := EnumerateDirect(ctx, p, in, EnumOptions{Queries: opts.Queries})
	if err != nil {
		return result, err
	}
	result.ProbesSent += ident.ProbesSent
	result.IdenticalKeyCaches = ident.Caches

	switch {
	case result.Caches <= 1:
		result.Class = ClassSingleCache
		return result, nil
	case ident.Caches < result.Caches:
		// Distinct keys (names or sources) reach more caches than one
		// repeated key: the load balancer keys on the query.
		result.Class = ClassKeyDependent
		return result, nil
	}

	// Phase 3: arrival-order test — does every one of the first n
	// identical probes hit a fresh cache? Uniform-random selection passes
	// one run with probability n!/nⁿ, so for small n more repetitions are
	// needed to push the misclassification rate below ~2%.
	n := result.Caches
	reps := opts.Repetitions
	pSeq := sequentialChance(n)
	for conf := pow(pSeq, reps); conf > 0.02 && reps < 16; conf = pow(pSeq, reps) {
		reps++
	}
	for r := 0; r < reps; r++ {
		fs, err := in.NewFlatSession()
		if err != nil {
			return result, err
		}
		// A run is sequential when n *successful* probes suffice to cover
		// all n caches. Probe errors (client-side packet loss) are
		// retried transparently: the platform may or may not have handled
		// a lost probe, so only delivered probes count against the n
		// budget, and coverage is read from the nameserver log.
		covered, successes, attempts := 0, 0, 0
		for covered < n && successes < n && attempts < 20*n {
			attempts++
			result.ProbesSent++
			if _, err := p.Probe(ctx, fs.Honey, dnswire.TypeA); err != nil {
				continue
			}
			successes++
			covered = fs.ObservedCaches()
		}
		result.Runs++
		if covered >= n {
			result.SequentialRuns++
		}
	}
	if result.SequentialRuns == result.Runs {
		result.Class = ClassTrafficDependent
	} else {
		result.Class = ClassUnpredictable
	}
	return result, nil
}

// sequentialChance returns n!/nⁿ — the probability that n uniform draws
// over n caches happen to touch each cache exactly once.
func sequentialChance(n int) float64 {
	p := 1.0
	for i := 1; i <= n; i++ {
		p *= float64(i) / float64(n)
	}
	return p
}

// pow is a small integer power for probabilities.
func pow(base float64, exp int) float64 {
	out := 1.0
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
