package core

import (
	"context"
	"fmt"
	"net/netip"

	"dnscde/internal/dnswire"
)

// This file implements §IV-B1b: mapping ingress IP addresses to cache
// clusters with honey records, and discovering the egress IP addresses a
// platform uses.

// MappingOptions tunes the cluster-mapping procedure.
type MappingOptions struct {
	// SeedQueries plants the honey record in (statistically) all caches
	// of a cluster; zero defaults to RecommendedQueries(8, 0.99).
	SeedQueries int
	// CheckQueries probes a candidate ingress IP for the honey record;
	// zero defaults to SeedQueries (generous, to sample every cache of
	// the candidate's cluster).
	CheckQueries int
	// Replicates is the carpet-bombing factor applied to each query.
	Replicates int
}

func (o MappingOptions) withDefaults() MappingOptions {
	if o.SeedQueries == 0 {
		o.SeedQueries = RecommendedQueries(8, 0.99)
	}
	if o.CheckQueries == 0 {
		o.CheckQueries = o.SeedQueries
	}
	if o.Replicates == 0 {
		o.Replicates = 1
	}
	return o
}

// ClusterResult groups ingress IPs by the cache cluster they map to.
type ClusterResult struct {
	// Clusters holds ingress IPs that share caches; Clusters[i] all hit
	// the caches seeded through Clusters[i][0].
	Clusters [][]netip.Addr
	// ProbesSent counts every probe issued during mapping.
	ProbesSent int
}

// MapIngressClusters discovers which ingress IPs share caches (§IV-B1b):
// plant a honey record through a cluster's representative IP, then test a
// candidate IP — "if queries are responded without accessing our server,
// we add the IP to the same cluster".
//
// A fresh honey record is used per (candidate, cluster) test: the check
// queries themselves plant the honey in the candidate's caches, so reusing
// one honey record across candidates would contaminate later tests (two
// disjoint clusters would appear merged once any candidate of the second
// cluster had been checked against the first cluster's honey).
//
// makeProber must return a direct prober for the given ingress IP.
func MapIngressClusters(ctx context.Context, in *Infra, ingress []netip.Addr, makeProber func(netip.Addr) Prober, opts MappingOptions) (ClusterResult, error) {
	opts = opts.withDefaults()
	if len(ingress) == 0 {
		return ClusterResult{}, fmt.Errorf("core: no ingress IPs to map")
	}

	var result ClusterResult
	reps := make([]Prober, 0, 4) // representative prober per cluster

	for _, ip := range ingress {
		candidate := makeProber(ip)
		assigned := false
		for cIdx, rep := range reps {
			honey, err := in.NewFlatSession()
			if err != nil {
				return result, err
			}
			// Seed through the cluster representative, covering (with high
			// probability) every cache of that cluster.
			for i := 0; i < opts.SeedQueries*opts.Replicates; i++ {
				result.ProbesSent++
				_, _ = rep.Probe(ctx, honey.Honey, dnswire.TypeA) // losses tolerated
			}
			seeded := honey.ObservedCaches()
			// Check through the candidate: same cluster ⇒ every check is a
			// cache hit ⇒ no new arrivals at the nameserver.
			for i := 0; i < opts.CheckQueries*opts.Replicates; i++ {
				result.ProbesSent++
				_, _ = candidate.Probe(ctx, honey.Honey, dnswire.TypeA)
			}
			if honey.ObservedCaches() == seeded {
				result.Clusters[cIdx] = append(result.Clusters[cIdx], ip)
				assigned = true
				break
			}
		}
		if !assigned {
			reps = append(reps, candidate)
			result.Clusters = append(result.Clusters, []netip.Addr{ip})
		}
	}
	return result, nil
}

// EgressResult is the outcome of egress-IP discovery.
type EgressResult struct {
	// IPs are the distinct egress addresses observed at the nameservers.
	IPs        []netip.Addr
	ProbesSent int
}

// DiscoverEgress finds the egress IP addresses of the platform behind
// prober p (§IV-B1b: "By repeating the experiment with a set of queries
// ... and checking which egress IP addresses they arrive from at our
// nameservers, all the egress addresses can be covered"). It probes q
// distinct names in a fresh delegated zone so every probe exercises the
// egress path, then reads the source addresses from both nameserver logs.
func DiscoverEgress(ctx context.Context, p Prober, in *Infra, opts EnumOptions) (EgressResult, error) {
	opts = opts.withDefaults()
	session, err := in.NewHierarchySession(opts.Queries)
	if err != nil {
		return EgressResult{}, err
	}
	var result EgressResult
	failures := 0
	for i := 1; i <= opts.Queries; i++ {
		name := session.ProbeName(i)
		for k := 0; k < opts.Replicates; k++ {
			result.ProbesSent++
			if _, err := p.Probe(ctx, name, opts.QType); err != nil {
				failures++
			}
		}
	}
	if failures == result.ProbesSent {
		return result, ErrAllProbesFailed
	}
	seen := make(map[netip.Addr]struct{})
	for _, src := range in.Parent.Log().DistinctSources(session.ChildOrigin) {
		seen[src] = struct{}{}
	}
	for _, src := range in.Child.Log().DistinctSources(session.ChildOrigin) {
		seen[src] = struct{}{}
	}
	result.IPs = make([]netip.Addr, 0, len(seen))
	for src := range seen {
		result.IPs = append(result.IPs, src)
	}
	return result, nil
}
