package core

import "math"

// This file implements the §V-B analysis: the coupon-collector bound of
// Theorem 5.1, coverage estimates for the init/validate protocol, and
// carpet-bombing sizing against packet loss.

// HarmonicNumber returns H_n = Σ_{i=1..n} 1/i.
func HarmonicNumber(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1.0 / float64(i)
	}
	return h
}

// ExpectedProbesToCoverAll returns E[X] = n·H_n, the expected number of
// queries needed to probe all n caches under uniform (unpredictable)
// selection — Theorem 5.1.
func ExpectedProbesToCoverAll(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * HarmonicNumber(n)
}

// CoverageProbability returns the probability that a specific cache out of
// n has been probed at least once after q uniform probes:
// 1 - (1-1/n)^q ≈ 1 - exp(-q/n), the §V-B coverage estimate.
func CoverageProbability(n, q int) float64 {
	if n <= 0 || q < 0 {
		return 0
	}
	return 1 - math.Pow(1-1.0/float64(n), float64(q))
}

// ExpectedUncoveredFraction is exp(-q/n) — the paper's approximation of
// the fraction of caches missed after q probes.
func ExpectedUncoveredFraction(n, q int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Exp(-float64(q) / float64(n))
}

// ExpectedCovered returns the expected number of distinct caches probed
// after q uniform probes out of n: n(1 - (1-1/n)^q).
func ExpectedCovered(n, q int) float64 {
	return float64(n) * CoverageProbability(n, q)
}

// RecommendedQueries returns a probe budget q such that all of up to nMax
// caches are covered with probability at least confidence under uniform
// selection. It uses the union bound on the coupon-collector tail:
// P(some cache uncovered after q probes) ≤ n·(1-1/n)^q.
func RecommendedQueries(nMax int, confidence float64) int {
	if nMax <= 1 {
		return 1
	}
	if confidence <= 0 {
		return nMax
	}
	if confidence >= 1 {
		confidence = 0.999999
	}
	eps := 1 - confidence
	n := float64(nMax)
	// Solve n·(1-1/n)^q ≤ eps for q.
	q := math.Log(eps/n) / math.Log(1-1/n)
	return int(math.Ceil(q))
}

// CarpetBombingFactor returns K, the per-probe replication factor (§V)
// needed so a probe survives per-exchange loss probability loss with
// probability at least confidence: smallest K with 1-loss^K ≥ confidence.
func CarpetBombingFactor(loss, confidence float64) int {
	if loss <= 0 {
		return 1
	}
	if loss >= 1 {
		loss = 0.999999
	}
	if confidence >= 1 {
		confidence = 0.999999
	}
	k := math.Log(1-confidence) / math.Log(loss)
	if k < 1 {
		return 1
	}
	return int(math.Ceil(k))
}

// InitValidateSuccessRate returns the paper's §V-B estimate of the
// expected number of successful init/validate pairs with N probes against
// n caches: N·(1-exp(-N/n))².
func InitValidateSuccessRate(n, bigN int) float64 {
	if n <= 0 {
		return 0
	}
	f := 1 - math.Exp(-float64(bigN)/float64(n))
	return float64(bigN) * f * f
}
