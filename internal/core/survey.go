package core

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Survey bundles every CDE measurement into one platform profile — the
// complete answer to the paper's motivating questions (§II): how many
// caches, behind which IPs, selected how, running what, with which TTL
// policy.
type Survey struct {
	// Caches is the adaptive enumeration result.
	Caches AdaptiveResult
	// Egress lists the discovered egress IPs.
	Egress EgressResult
	// Selection is the strategy classification.
	Selection ClassifyResult
	// Software is the resolver fingerprint and its class.
	Software      Fingerprint
	SoftwareClass Software
	// TTL is the inferred clamping policy.
	TTL TTLPolicy
	// Timing carries the latency-channel cross-check (0 probes when the
	// survey skipped it).
	Timing TimingResult

	ProbesSent int
}

// SurveyOptions tunes SurveyPlatform.
type SurveyOptions struct {
	// ExtraVantages improve selection classification on
	// hash-by-source-IP platforms (see ClassifyOptions).
	ExtraVantages []Prober
	// SkipTiming disables the latency cross-check.
	SkipTiming bool
	// EgressWindow/EgressMaxProbes tune egress discovery; zeros use the
	// DiscoverEgressAdaptive defaults.
	EgressWindow, EgressMaxProbes int
}

// SurveyPlatform runs the full CDE measurement suite against the platform
// behind prober p. The prober must be direct (the classifier and the TTL
// probe need repeatable queries).
func SurveyPlatform(ctx context.Context, p Prober, in *Infra, opts SurveyOptions) (*Survey, error) {
	if !p.Direct() {
		return nil, fmt.Errorf("core: a survey needs a direct prober")
	}
	s := &Survey{}

	caches, err := EnumerateAdaptive(ctx, p, in, AdaptiveOptions{})
	if err != nil {
		return nil, fmt.Errorf("core: survey enumeration: %w", err)
	}
	s.Caches = caches
	s.ProbesSent += caches.ProbesSent

	egress, err := DiscoverEgressAdaptive(ctx, p, in, opts.EgressWindow, opts.EgressMaxProbes)
	if err != nil {
		return nil, fmt.Errorf("core: survey egress discovery: %w", err)
	}
	sort.Slice(egress.IPs, func(i, j int) bool { return egress.IPs[i].Less(egress.IPs[j]) })
	s.Egress = egress
	s.ProbesSent += egress.ProbesSent

	selection, err := ClassifySelection(ctx, p, in, ClassifyOptions{ExtraVantages: opts.ExtraVantages})
	if err != nil {
		return nil, fmt.Errorf("core: survey classification: %w", err)
	}
	s.Selection = selection
	s.ProbesSent += selection.ProbesSent

	fp, err := FingerprintResolver(ctx, p, in, FingerprintOptions{})
	if err != nil {
		return nil, fmt.Errorf("core: survey fingerprint: %w", err)
	}
	s.Software = fp
	s.SoftwareClass = ClassifySoftware(fp)
	s.ProbesSent += fp.ProbesSent

	ttl, err := InferTTLPolicy(ctx, p, in, TTLProbeOptions{})
	if err != nil {
		return nil, fmt.Errorf("core: survey ttl policy: %w", err)
	}
	s.TTL = ttl
	s.ProbesSent += ttl.ProbesSent

	if !opts.SkipTiming {
		timing, err := EnumerateTimingDirect(ctx, p, in, TimingOptions{
			CountProbes: RecommendedQueries(maxInt(s.Caches.Caches+1, 4), 0.99),
		})
		if err != nil {
			return nil, fmt.Errorf("core: survey timing channel: %w", err)
		}
		s.Timing = timing
		s.ProbesSent += timing.ProbesSent
	}
	return s, nil
}

// Render returns a human-readable platform profile.
func (s *Survey) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "caches:            %d (converged=%v, %d probes)\n",
		s.Caches.Caches, s.Caches.Converged, s.Caches.ProbesSent)
	fmt.Fprintf(&sb, "egress IPs:        %d %v\n", len(s.Egress.IPs), formatAddrs(s.Egress.IPs, 8))
	fmt.Fprintf(&sb, "cache selection:   %s (sequential %d/%d)\n",
		s.Selection.Class, s.Selection.SequentialRuns, s.Selection.Runs)
	fmt.Fprintf(&sb, "software class:    %s (chase depth %d, limited=%v, AAAA=%v, trusts chains=%v)\n",
		s.SoftwareClass, s.Software.ObservedChaseDepth, s.Software.ChaseLimited,
		s.Software.QueriesAAAA, s.Software.TrustsServerChains)
	fmt.Fprintf(&sb, "TTL policy:        %s\n", renderTTLPolicy(s.TTL))
	if s.Timing.ProbesSent > 0 {
		fmt.Fprintf(&sb, "timing cross-check: %d caches (threshold %v)\n",
			s.Timing.Caches, s.Timing.Threshold)
	}
	fmt.Fprintf(&sb, "total probes:      %d\n", s.ProbesSent)
	return sb.String()
}

func renderTTLPolicy(t TTLPolicy) string {
	switch {
	case t.MinTTL > 0 && t.MaxTTL > 0:
		return fmt.Sprintf("min clamp ≈%v, max clamp ≈%v", t.MinTTL, t.MaxTTL)
	case t.MinTTL > 0:
		return fmt.Sprintf("min clamp ≈%v", t.MinTTL)
	case t.MaxTTL > 0:
		return fmt.Sprintf("max clamp ≈%v", t.MaxTTL)
	default:
		return "authoritative TTLs honoured"
	}
}

func formatAddrs(addrs []netip.Addr, limit int) string {
	if len(addrs) <= limit {
		return fmt.Sprintf("%v", addrs)
	}
	return fmt.Sprintf("%v …(+%d)", addrs[:limit], len(addrs)-limit)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
