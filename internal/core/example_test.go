package core_test

import (
	"context"
	"fmt"
	"log"

	"dnscde/internal/core"
	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
)

// ExampleEnumerateDirect shows the paper's headline technique (§IV-B1a):
// q identical queries for a prober-owned honey record; the arrivals at
// the prober's nameserver count the hidden caches.
func ExampleEnumerateDirect() {
	w := simtest.MustNew(simtest.Options{Seed: 1})
	target, err := w.NewPlatform(simtest.PlatformSpec{
		Caches: 3,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(1) },
	})
	if err != nil {
		log.Fatal(err)
	}
	prober := w.DirectProber(target.Config().IngressIPs[0])
	res, err := core.EnumerateDirect(context.Background(), prober, w.Infra, core.EnumOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d caches with technique %q\n", res.Caches, res.Technique)
	// Output: measured 3 caches with technique "direct"
}

// ExampleEnumerateAdaptive measures a platform without knowing its cache
// count in advance: the probe budget doubles until the coupon-collector
// bound for one more cache than observed is met.
func ExampleEnumerateAdaptive() {
	w := simtest.MustNew(simtest.Options{Seed: 2})
	target, err := w.NewPlatform(simtest.PlatformSpec{
		Caches: 12,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(7) },
	})
	if err != nil {
		log.Fatal(err)
	}
	prober := w.DirectProber(target.Config().IngressIPs[0])
	res, err := core.EnumerateAdaptive(context.Background(), prober, w.Infra, core.AdaptiveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("caches=%d converged=%v\n", res.Caches, res.Converged)
	// Output: caches=12 converged=true
}

// ExampleClassifySelection identifies the load balancer's strategy — the
// paper's §IV-A future work.
func ExampleClassifySelection() {
	w := simtest.MustNew(simtest.Options{Seed: 3})
	target, err := w.NewPlatform(simtest.PlatformSpec{
		Caches: 4,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRoundRobin() },
	})
	if err != nil {
		log.Fatal(err)
	}
	prober := w.DirectProber(target.Config().IngressIPs[0])
	res, err := core.ClassifySelection(context.Background(), prober, w.Infra, core.ClassifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Class)
	// Output: traffic-dependent
}

// ExamplePoisoningSuccessProbability quantifies the §II-A motivation:
// more caches with unpredictable selection make multi-record poisoning
// exponentially harder.
func ExamplePoisoningSuccessProbability() {
	for _, n := range []int{1, 2, 4, 8} {
		fmt.Printf("n=%d: %.4f\n", n, core.PoisoningSuccessProbability(n, 2))
	}
	// Output:
	// n=1: 1.0000
	// n=2: 0.5000
	// n=4: 0.2500
	// n=8: 0.1250
}

// ExampleExpectedProbesToCoverAll evaluates Theorem 5.1's closed form.
func ExampleExpectedProbesToCoverAll() {
	fmt.Printf("n=4: %.2f probes expected\n", core.ExpectedProbesToCoverAll(4))
	fmt.Printf("n=16: %.2f probes expected\n", core.ExpectedProbesToCoverAll(16))
	// Output:
	// n=4: 8.33 probes expected
	// n=16: 54.09 probes expected
}

// ExampleCarpetBombingFactor sizes probe replication against the packet
// loss the paper measured in different regions (§V).
func ExampleCarpetBombingFactor() {
	fmt.Println("typical 1%:", core.CarpetBombingFactor(0.01, 0.99))
	fmt.Println("Iran 11%:", core.CarpetBombingFactor(0.11, 0.99))
	// Output:
	// typical 1%: 1
	// Iran 11%: 3
}
