package core

import (
	"context"
	"net/netip"
	"sync/atomic"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/stub"
)

// ProbeResult is the prober-visible outcome of one probe query.
type ProbeResult struct {
	RCode   dnswire.RCode
	Records []dnswire.RR
	// RTT is the latency observed by the prober — the signal of the
	// §IV-B3 timing channel. It is zero when a local cache answered.
	RTT time.Duration
	// FromLocalCache reports an answer served by a client-side cache
	// without reaching the platform (only possible for indirect probers).
	FromLocalCache bool
}

// Prober issues probe queries toward a resolution platform. Probers come
// in two flavours (§IV): direct probers talk straight to an ingress IP and
// control timing and repetition; indirect probers trigger queries through
// client software (email servers, web browsers) behind local caches.
type Prober interface {
	// Probe resolves (name, qtype) through the target platform.
	Probe(ctx context.Context, name string, qtype dnswire.Type) (ProbeResult, error)
	// Direct reports whether the prober has direct ingress access
	// (timing control and repeatable queries).
	Direct() bool
}

// _probeID generates DNS message IDs for direct probes.
var _probeID atomic.Uint32

// DirectProber sends queries straight to an ingress IP of the target
// platform — the open-resolver scenario (set-up 2 in Fig. 1).
type DirectProber struct {
	conn    netsim.Exchanger
	ingress netip.Addr
	// retries is the retransmission budget per probe on packet loss.
	retries int
}

var _ Prober = (*DirectProber)(nil)

// NewDirectProber creates a prober sending from clientAddr on n to the
// platform ingress IP. retries (per-probe retransmissions on loss)
// defaults to 0 — CDE's carpet bombing handles loss at a higher level,
// and experiments can opt into stub-style retransmission instead.
func NewDirectProber(n *netsim.Network, clientAddr, ingress netip.Addr, retries int) *DirectProber {
	return &DirectProber{conn: n.Bind(clientAddr), ingress: ingress, retries: retries}
}

// Probe implements Prober.
func (p *DirectProber) Probe(ctx context.Context, name string, qtype dnswire.Type) (ProbeResult, error) {
	query := dnswire.NewQuery(uint16(_probeID.Add(1)), name, qtype)
	resp, rtt, err := netsim.ExchangeRetry(ctx, p.conn, query, p.ingress, p.retries+1)
	if err != nil {
		return ProbeResult{}, err
	}
	return ProbeResult{RCode: resp.Header.RCode, Records: resp.Answer, RTT: rtt}, nil
}

// Direct implements Prober.
func (*DirectProber) Direct() bool { return true }

// Ingress returns the targeted ingress address.
func (p *DirectProber) Ingress() netip.Addr { return p.ingress }

// IndirectProber triggers queries through a stub resolver with local
// caches — the email-server and web-browser scenarios (set-up 1 in
// Fig. 1). Repeated probes for one name are absorbed by the local caches,
// which is exactly the limitation the §IV-B2 bypasses exist to defeat.
type IndirectProber struct {
	stub *stub.Resolver
}

var _ Prober = (*IndirectProber)(nil)

// NewIndirectProber wraps a stub resolver.
func NewIndirectProber(s *stub.Resolver) *IndirectProber {
	return &IndirectProber{stub: s}
}

// Probe implements Prober.
func (p *IndirectProber) Probe(ctx context.Context, name string, qtype dnswire.Type) (ProbeResult, error) {
	res, err := p.stub.Lookup(ctx, name, qtype)
	if err != nil {
		return ProbeResult{}, err
	}
	return ProbeResult{
		RCode:          res.RCode,
		Records:        res.Records,
		RTT:            res.RTT,
		FromLocalCache: res.FromLocalCache,
	}, nil
}

// Direct implements Prober.
func (*IndirectProber) Direct() bool { return false }
