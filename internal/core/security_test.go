package core

import (
	"math"
	"testing"

	"dnscde/internal/loadbal"
)

func TestPoisoningSuccessProbability(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{1, 5, 1},    // single cache: every record lands together
		{4, 1, 1},    // single-record attack: trivially together
		{2, 2, 0.5},  // two records, two caches
		{4, 2, 0.25}, // the NS+A example with 4 caches
		{4, 3, 1.0 / 16},
		{0, 2, 0},
		{2, 0, 0},
	}
	for _, tt := range tests {
		if got := PoisoningSuccessProbability(tt.n, tt.k); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("P(n=%d,k=%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestExpectedPoisoningAttempts(t *testing.T) {
	if got := ExpectedPoisoningAttempts(4, 2); got != 4 {
		t.Errorf("E(4,2) = %v", got)
	}
	if got := ExpectedPoisoningAttempts(0, 2); !math.IsInf(got, 1) {
		t.Errorf("E(0,2) = %v, want +Inf", got)
	}
}

func TestSimulatePoisoningRandomMatchesClosedForm(t *testing.T) {
	const trials = 200000
	for _, tc := range []struct{ n, k int }{{2, 2}, {4, 2}, {4, 3}, {8, 2}} {
		got := SimulatePoisoning(loadbal.NewRandom(7), tc.n, tc.k, trials)
		want := PoisoningSuccessProbability(tc.n, tc.k)
		if math.Abs(got-want) > want*0.1+0.005 {
			t.Errorf("n=%d k=%d: MC %v vs closed form %v", tc.n, tc.k, got, want)
		}
	}
}

func TestSimulatePoisoningRoundRobinNeverSucceeds(t *testing.T) {
	// Consecutive queries never hit the same cache under round robin
	// (absent cross traffic) — a k>1 injection cannot co-locate.
	if got := SimulatePoisoning(loadbal.NewRoundRobin(), 4, 2, 1000); got != 0 {
		t.Errorf("round robin success rate = %v, want 0", got)
	}
}

func TestSimulatePoisoningKeyDependentAlwaysSucceeds(t *testing.T) {
	// A same-name, same-source attack always lands in one cache under
	// key-dependent selection — multiple caches give no protection.
	if got := SimulatePoisoning(loadbal.HashQName{}, 8, 4, 1000); got != 1 {
		t.Errorf("hash-qname success rate = %v, want 1", got)
	}
	if got := SimulatePoisoning(loadbal.HashSourceIP{}, 8, 4, 1000); got != 1 {
		t.Errorf("hash-source success rate = %v, want 1", got)
	}
}

func TestSimulatePoisoningDegenerateInputs(t *testing.T) {
	if got := SimulatePoisoning(loadbal.NewRandom(1), 4, 2, 0); got != 0 {
		t.Errorf("zero trials = %v", got)
	}
}
