package core

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/clock"
	"dnscde/internal/dnstree"
	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
	"dnscde/internal/stub"
)

var (
	parentAddr = netip.MustParseAddr("203.0.113.20")
	childAddr  = netip.MustParseAddr("203.0.113.21")
	targetAddr = netip.MustParseAddr("192.0.2.80")
	clientAddr = netip.MustParseAddr("198.18.0.1")
)

// testWorld is a wired simulated Internet with a CDE infrastructure.
type testWorld struct {
	net   *netsim.Network
	clk   *clock.Virtual
	tree  *dnstree.Tree
	infra *Infra
	reg   *metrics.Registry

	nextIngress netip.Addr
	nextEgress  netip.Addr
}

func newTestWorld(t *testing.T) *testWorld {
	t.Helper()
	w := &testWorld{
		net:         netsim.New(99),
		clk:         clock.NewVirtual(),
		reg:         metrics.New(),
		nextIngress: netip.MustParseAddr("198.51.100.10"),
		nextEgress:  netip.MustParseAddr("198.51.101.10"),
	}
	tree, err := dnstree.Build(w.net, w.clk, netsim.LinkProfile{OneWay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	w.tree = tree
	infra, err := NewInfra(tree, w.clk, InfraConfig{
		ParentAddr: parentAddr,
		ChildAddr:  childAddr,
		Target:     targetAddr,
		Profile:    netsim.LinkProfile{OneWay: 10 * time.Millisecond},
		Metrics:    w.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.infra = infra
	return w
}

// platformOpts configures newPlatform.
type platformOpts struct {
	caches   int
	ingress  int
	egress   int
	selector loadbal.Selector
	mutate   func(*platform.Config)
}

// newPlatform creates a platform with fresh ingress/egress address ranges.
func (w *testWorld) newPlatform(t *testing.T, o platformOpts) *platform.Platform {
	t.Helper()
	if o.caches == 0 {
		o.caches = 1
	}
	if o.ingress == 0 {
		o.ingress = 1
	}
	if o.egress == 0 {
		o.egress = 1
	}
	ingress := netsim.AddrRange(w.nextIngress, o.ingress)
	w.nextIngress = ingress[len(ingress)-1].Next()
	egress := netsim.AddrRange(w.nextEgress, o.egress)
	w.nextEgress = egress[len(egress)-1].Next()

	cfg := platform.Config{
		Name:       "target",
		IngressIPs: ingress,
		EgressIPs:  egress,
		CacheCount: o.caches,
		Selector:   o.selector,
		Roots:      w.tree.Roots(),
		Clock:      w.clk,
		Seed:       42,
	}
	if o.mutate != nil {
		o.mutate(&cfg)
	}
	p, err := platform.New(cfg, w.net, netsim.LinkProfile{OneWay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (w *testWorld) directProber(p *platform.Platform) *DirectProber {
	return NewDirectProber(w.net, clientAddr, p.Config().IngressIPs[0], 0)
}

func (w *testWorld) indirectProber(p *platform.Platform) *IndirectProber {
	s := stub.New(stub.Config{
		ClientAddr: clientAddr,
		PlatformIP: p.Config().IngressIPs[0],
		Clock:      w.clk,
	}, w.net)
	return NewIndirectProber(s)
}

func TestEnumerateDirectRoundRobinExact(t *testing.T) {
	w := newTestWorld(t)
	for _, n := range []int{1, 2, 4, 7} {
		plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRoundRobin()})
		res, err := EnumerateDirect(context.Background(), w.directProber(plat), w.infra, EnumOptions{Queries: 4 * n})
		if err != nil {
			t.Fatal(err)
		}
		if res.Caches != n {
			t.Errorf("n=%d: measured %d caches", n, res.Caches)
		}
		if res.Technique != TechniqueDirect {
			t.Errorf("technique = %q", res.Technique)
		}
	}
}

func TestEnumerateDirectRandomSelector(t *testing.T) {
	w := newTestWorld(t)
	for _, n := range []int{1, 3, 6} {
		plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRandom(7)})
		q := RecommendedQueries(n, 0.999)
		res, err := EnumerateDirect(context.Background(), w.directProber(plat), w.infra, EnumOptions{Queries: q})
		if err != nil {
			t.Fatal(err)
		}
		if res.Caches != n {
			t.Errorf("n=%d (q=%d): measured %d caches", n, q, res.Caches)
		}
	}
}

func TestEnumerateDirectRejectsIndirectProber(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{})
	if _, err := EnumerateDirect(context.Background(), w.indirectProber(plat), w.infra, EnumOptions{Queries: 4}); err == nil {
		t.Error("indirect prober accepted for direct enumeration")
	}
}

func TestEnumerateChainIndirect(t *testing.T) {
	// §IV-B2a through browser/OS caches: distinct aliases bypass them.
	w := newTestWorld(t)
	for _, n := range []int{1, 3, 5} {
		plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRandom(3)})
		res, err := EnumerateChain(context.Background(), w.indirectProber(plat), w.infra,
			EnumOptions{Queries: RecommendedQueries(n, 0.999)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Caches != n {
			t.Errorf("n=%d: measured %d caches", n, res.Caches)
		}
	}
}

func TestEnumerateHierarchyIndirect(t *testing.T) {
	w := newTestWorld(t)
	for _, n := range []int{1, 2, 5} {
		plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRandom(5)})
		res, err := EnumerateHierarchy(context.Background(), w.indirectProber(plat), w.infra,
			EnumOptions{Queries: RecommendedQueries(n, 0.999)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Caches != n {
			t.Errorf("n=%d: measured %d caches", n, res.Caches)
		}
	}
}

func TestEnumerateDispatchesOnAccessMode(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 2, selector: loadbal.NewRoundRobin()})
	res, err := Enumerate(context.Background(), w.directProber(plat), w.infra, EnumOptions{Queries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != TechniqueDirect {
		t.Errorf("direct prober used %q", res.Technique)
	}
	plat2 := w.newPlatform(t, platformOpts{caches: 2, selector: loadbal.NewRoundRobin()})
	res, err = Enumerate(context.Background(), w.indirectProber(plat2), w.infra, EnumOptions{Queries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != TechniqueHierarchy {
		t.Errorf("indirect prober used %q", res.Technique)
	}
}

func TestRepeatedSessionsAreIndependent(t *testing.T) {
	// Re-measuring the same platform must not be poisoned by records
	// cached during the previous session.
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 3, selector: loadbal.NewRoundRobin()})
	p := w.directProber(plat)
	for round := 0; round < 3; round++ {
		res, err := EnumerateDirect(context.Background(), p, w.infra, EnumOptions{Queries: 12})
		if err != nil {
			t.Fatal(err)
		}
		if res.Caches != 3 {
			t.Errorf("round %d: measured %d caches", round, res.Caches)
		}
	}
}

func TestEnumerationWithHashQNameSelector(t *testing.T) {
	// Key-dependent selection: identical queries always hit one cache, so
	// the direct technique underestimates (1); the distinct-name
	// hierarchy technique still spreads across caches.
	w := newTestWorld(t)
	const n = 4
	plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.HashQName{}})
	direct, err := EnumerateDirect(context.Background(), w.directProber(plat), w.infra, EnumOptions{Queries: 40})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Caches != 1 {
		t.Errorf("direct technique vs hash-qname: measured %d, want 1 (single cache sampled)", direct.Caches)
	}
	plat2 := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.HashQName{}})
	hier, err := EnumerateHierarchy(context.Background(), w.directProber(plat2), w.infra, EnumOptions{Queries: 60})
	if err != nil {
		t.Fatal(err)
	}
	if hier.Caches != n {
		t.Errorf("hierarchy technique vs hash-qname: measured %d, want %d", hier.Caches, n)
	}
}

func TestCarpetBombingUnderLoss(t *testing.T) {
	// §V: 11% packet loss (the paper's Iran case); replication keeps the
	// enumeration accurate.
	w := newTestWorld(t)
	w.net.Register(clientAddr, netsim.LinkProfile{Loss: 0.11}, netsim.HandlerFunc(
		func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
			return dnswire.NewResponse(q), nil
		}))
	const n = 4
	plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRandom(9)})
	k := CarpetBombingFactor(1-0.89*0.89, 0.99) // per-exchange loss
	res, err := EnumerateDirect(context.Background(), w.directProber(plat), w.infra,
		EnumOptions{Queries: RecommendedQueries(n, 0.999), Replicates: k})
	if err != nil {
		t.Fatal(err)
	}
	if res.Caches != n {
		t.Errorf("measured %d caches under loss with K=%d", res.Caches, k)
	}
	if res.ProbeErrors == 0 {
		t.Error("expected some probe losses at 11% packet loss")
	}
}

func TestAllProbesFailed(t *testing.T) {
	w := newTestWorld(t)
	// Prober aimed at an address with no platform.
	p := NewDirectProber(w.net, clientAddr, netip.MustParseAddr("198.51.100.250"), 0)
	_, err := EnumerateDirect(context.Background(), p, w.infra, EnumOptions{Queries: 3})
	if err == nil {
		t.Error("want error when every probe fails")
	}
}

func TestMapIngressClustersSharedCaches(t *testing.T) {
	// One platform, 3 ingress IPs, all sharing the same caches → one
	// cluster.
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 2, ingress: 3, selector: loadbal.NewRandom(1)})
	ips := plat.Config().IngressIPs
	res, err := MapIngressClusters(context.Background(), w.infra, ips, func(ip netip.Addr) Prober {
		return NewDirectProber(w.net, clientAddr, ip, 0)
	}, MappingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %v, want 1", res.Clusters)
	}
	if len(res.Clusters[0]) != 3 {
		t.Errorf("cluster size = %d, want 3", len(res.Clusters[0]))
	}
}

func TestMapIngressClustersDisjointCaches(t *testing.T) {
	// One platform, 4 ingress IPs in two disjoint cache clusters.
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 4, ingress: 4, selector: loadbal.NewRandom(1),
		mutate: func(c *platform.Config) {
			c.IngressClusters = [][]int{{0, 1}, {0, 1}, {2, 3}, {2, 3}}
		}})
	ips := plat.Config().IngressIPs
	res, err := MapIngressClusters(context.Background(), w.infra, ips, func(ip netip.Addr) Prober {
		return NewDirectProber(w.net, clientAddr, ip, 0)
	}, MappingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %v, want 2", res.Clusters)
	}
	for i, cluster := range res.Clusters {
		if len(cluster) != 2 {
			t.Errorf("cluster %d = %v, want 2 members", i, cluster)
		}
	}
	// Membership must match ground truth: {ips[0], ips[1]} and {ips[2], ips[3]}.
	if !(res.Clusters[0][0] == ips[0] && res.Clusters[0][1] == ips[1]) {
		t.Errorf("cluster 0 = %v", res.Clusters[0])
	}
}

func TestDiscoverEgress(t *testing.T) {
	w := newTestWorld(t)
	const egressCount = 6
	plat := w.newPlatform(t, platformOpts{caches: 2, egress: egressCount, selector: loadbal.NewRandom(1)})
	res, err := DiscoverEgress(context.Background(), w.directProber(plat), w.infra, EnumOptions{Queries: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPs) != egressCount {
		t.Errorf("discovered %d egress IPs, want %d", len(res.IPs), egressCount)
	}
	valid := make(map[netip.Addr]bool)
	for _, ip := range plat.Config().EgressIPs {
		valid[ip] = true
	}
	for _, ip := range res.IPs {
		if !valid[ip] {
			t.Errorf("spurious egress IP %v", ip)
		}
	}
}

func TestInitValidateCoversAllCaches(t *testing.T) {
	w := newTestWorld(t)
	const n = 4
	plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRandom(2)})
	res, err := InitValidate(context.Background(), w.directProber(plat), w.infra,
		InitValidateOptions{N: 6 * n})
	if err != nil {
		t.Fatal(err)
	}
	if res.Caches != n {
		t.Errorf("measured %d caches, want %d", res.Caches, n)
	}
	if res.InitArrivals < 1 || res.InitArrivals > n {
		t.Errorf("init arrivals = %d", res.InitArrivals)
	}
	if res.ValidateHits < res.N-n {
		t.Errorf("validate hits = %d of N=%d", res.ValidateHits, res.N)
	}
}

func TestInitValidateConcurrencyBounded(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 2, selector: loadbal.NewRandom(2)})
	res, err := InitValidate(context.Background(), w.directProber(plat), w.infra,
		InitValidateOptions{N: 8, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Caches != 2 {
		t.Errorf("measured %d caches", res.Caches)
	}
}

func TestTimingDirect(t *testing.T) {
	w := newTestWorld(t)
	for _, n := range []int{1, 3, 5} {
		plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRandom(4)})
		res, err := EnumerateTimingDirect(context.Background(), w.directProber(plat), w.infra,
			TimingOptions{CountProbes: RecommendedQueries(n, 0.999)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Caches != n {
			t.Errorf("n=%d: timing channel measured %d caches (threshold %v)", n, res.Caches, res.Threshold)
		}
		if res.Threshold <= 0 {
			t.Error("no threshold derived")
		}
	}
}

func TestTimingDirectRejectsIndirect(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{})
	if _, err := EnumerateTimingDirect(context.Background(), w.indirectProber(plat), w.infra, TimingOptions{}); err == nil {
		t.Error("indirect prober accepted")
	}
}

func TestTimingIndirect(t *testing.T) {
	w := newTestWorld(t)
	for _, n := range []int{1, 3} {
		plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRandom(8)})
		res, err := EnumerateTimingIndirect(context.Background(), w.indirectProber(plat), w.infra,
			TimingOptions{CountProbes: RecommendedQueries(n, 0.999)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Caches != n {
			t.Errorf("n=%d: indirect timing measured %d caches", n, res.Caches)
		}
	}
}

func TestTimingKMeansThreshold(t *testing.T) {
	w := newTestWorld(t)
	const n = 3
	plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRandom(4)})
	res, err := EnumerateTimingDirect(context.Background(), w.directProber(plat), w.infra,
		TimingOptions{CountProbes: RecommendedQueries(n, 0.999), Threshold: KMeansThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if res.Caches != n {
		t.Errorf("kmeans threshold: measured %d caches", res.Caches)
	}
}

func TestSessionsProduceUniqueNames(t *testing.T) {
	w := newTestWorld(t)
	seen := make(map[string]bool)
	for i := 0; i < 5; i++ {
		fs, err := w.infra.NewFlatSession()
		if err != nil {
			t.Fatal(err)
		}
		if seen[fs.Honey] {
			t.Fatalf("duplicate honey name %q", fs.Honey)
		}
		seen[fs.Honey] = true
	}
	cs, err := w.infra.NewChainSession(3)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := w.infra.NewHierarchySession(3)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]string{cs.TargetName}, cs.Aliases...), hs.ProbeNames...)
	for _, name := range all {
		if seen[name] {
			t.Fatalf("duplicate probe name %q", name)
		}
		seen[name] = true
	}
}

func TestHierarchySessionWildcardOverflow(t *testing.T) {
	w := newTestWorld(t)
	hs, err := w.infra.NewHierarchySession(2)
	if err != nil {
		t.Fatal(err)
	}
	plat := w.newPlatform(t, platformOpts{})
	p := w.directProber(plat)
	// Probe index beyond the pre-planted set resolves via the wildcard.
	pr, err := p.Probe(context.Background(), hs.ProbeName(10), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if pr.RCode != dnswire.RCodeNoError || len(pr.Records) == 0 {
		t.Errorf("overflow probe: rcode=%v records=%v", pr.RCode, pr.Records)
	}
}

func TestEnumerateUntilCompleteAccountsProbes(t *testing.T) {
	// The completion instrument must (a) actually reach the target cache
	// count and (b) charge every probe it spent to the infrastructure's
	// cost registry, so experiments can read costs from metrics rather
	// than driver bookkeeping.
	w := newTestWorld(t)
	const n = 5
	plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRandom(11)})
	p := w.directProber(plat)

	before := w.reg.Snapshot()
	res, err := EnumerateUntilComplete(context.Background(), p, w.infra, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Caches != n {
		t.Fatalf("Caches = %d, want %d", res.Caches, n)
	}
	if res.ProbesSent < n {
		t.Errorf("ProbesSent = %d, want >= %d (coupon collection needs at least n draws)", res.ProbesSent, n)
	}
	diff := w.reg.Snapshot().Diff(before)
	if got := diff.Counter("core.probes.sent"); got != int64(res.ProbesSent) {
		t.Errorf("core.probes.sent = %d, want %d (driver's ProbesSent)", got, res.ProbesSent)
	}
	if got := diff.Counter("core.enum.rounds"); got != 1 {
		t.Errorf("core.enum.rounds = %d, want 1", got)
	}
	if got := diff.Counter("core.probes.errors"); got != 0 {
		t.Errorf("core.probes.errors = %d, want 0 on a lossless network", got)
	}
}

func TestEnumerateUntilCompleteRejectsBadTarget(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{})
	if _, err := EnumerateUntilComplete(context.Background(), w.directProber(plat), w.infra, 0, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := EnumerateUntilComplete(context.Background(), w.indirectProber(plat), w.infra, 1, 0); err == nil {
		t.Error("indirect prober accepted")
	}
}
