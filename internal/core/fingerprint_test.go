package core

import (
	"context"
	"testing"

	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
)

func TestDeepChainSession(t *testing.T) {
	w := newTestWorld(t)
	session, err := w.infra.NewDeepChainSession(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(session.Links) != 5 {
		t.Fatalf("links = %d", len(session.Links))
	}
	if session.ObservedDepth() != 0 || session.TargetReached() {
		t.Error("fresh session already observed")
	}
	if _, err := w.infra.NewDeepChainSession(0); err == nil {
		t.Error("depth 0 accepted")
	}
}

func TestFingerprintHardenedResolver(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 1, mutate: func(c *platform.Config) {
		c.MaxCNAMEChase = 11
	}})
	fp, err := FingerprintResolver(context.Background(), w.directProber(plat), w.infra, FingerprintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fp.TrustsServerChains {
		t.Error("hardened platform classified as chain-trusting")
	}
	if !fp.ChaseLimited {
		t.Error("24-deep chain should exceed the 11-hop limit")
	}
	// The chase limit counts hops from the first link; the platform
	// queried links 1..limit+1 before giving up.
	if fp.ObservedChaseDepth < 11 || fp.ObservedChaseDepth > 13 {
		t.Errorf("observed depth = %d, want ≈11", fp.ObservedChaseDepth)
	}
	if fp.QueriesAAAA {
		t.Error("spurious AAAA coupling")
	}
	if got := ClassifySoftware(fp); got != SoftwareHardened {
		t.Errorf("classified %q", got)
	}
}

func TestFingerprintChainTrusting(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 1, mutate: func(c *platform.Config) {
		c.TrustAnswerChains = true
	}})
	fp, err := FingerprintResolver(context.Background(), w.directProber(plat), w.infra, FingerprintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !fp.TrustsServerChains {
		t.Errorf("fingerprint = %+v, want chain-trusting", fp)
	}
	if got := ClassifySoftware(fp); got != SoftwareChainTrusting {
		t.Errorf("classified %q", got)
	}
}

func TestFingerprintAAAACoupled(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 1, mutate: func(c *platform.Config) {
		c.QueryAAAA = true
		c.MaxCNAMEChase = 8
	}})
	fp, err := FingerprintResolver(context.Background(), w.directProber(plat), w.infra, FingerprintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !fp.QueriesAAAA {
		t.Errorf("fingerprint = %+v, want AAAA coupling", fp)
	}
	if got := ClassifySoftware(fp); got != SoftwareAAAACoupled {
		t.Errorf("classified %q", got)
	}
}

func TestFingerprintChaseWithinBudget(t *testing.T) {
	// A chain shallower than the platform's limit is walked to the end.
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 1, mutate: func(c *platform.Config) {
		c.MaxCNAMEChase = 16
	}})
	fp, err := FingerprintResolver(context.Background(), w.directProber(plat), w.infra,
		FingerprintOptions{ChainDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if fp.ChaseLimited {
		t.Errorf("fingerprint = %+v: 6-deep chain within a 16-hop budget flagged as limited", fp)
	}
	if fp.ObservedChaseDepth != 6 {
		t.Errorf("observed depth = %d, want 6", fp.ObservedChaseDepth)
	}
}

func TestFingerprintSelectorIndependent(t *testing.T) {
	// Multi-cache platforms fingerprint the same way (each probe lands in
	// some cache; behaviour is identical across caches here).
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 4, selector: loadbal.NewRandom(3),
		mutate: func(c *platform.Config) { c.QueryAAAA = true }})
	fp, err := FingerprintResolver(context.Background(), w.directProber(plat), w.infra, FingerprintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !fp.QueriesAAAA {
		t.Errorf("fingerprint = %+v", fp)
	}
}
