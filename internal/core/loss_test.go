package core

import (
	"context"
	"math"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/loadbal"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
)

func TestLossEstimator(t *testing.T) {
	var e LossEstimator
	if e.Rate() != 0 {
		t.Errorf("fresh estimator Rate = %v, want 0 (no smoothing prior)", e.Rate())
	}
	if k := e.Replicates(0.99, 8); k != 1 {
		t.Errorf("fresh estimator Replicates = %d, want 1", k)
	}
	for i := 0; i < 10; i++ {
		e.Record(i < 2) // 2 failures / 10 probes
	}
	if got := e.Rate(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Rate = %v, want 0.2", got)
	}
	sent, failed := e.Counts()
	if sent != 10 || failed != 2 {
		t.Errorf("Counts = (%d, %d), want (10, 2)", sent, failed)
	}
	// K must match the closed-form §V factor and honour the cap.
	if k, want := e.Replicates(0.99, 8), CarpetBombingFactor(0.2, 0.99); k != want {
		t.Errorf("Replicates(0.99) = %d, want %d", k, want)
	}
	if k := e.Replicates(0.999999, 2); k != 2 {
		t.Errorf("capped Replicates = %d, want 2", k)
	}
}

func TestLossEstimatorSeedFromMetrics(t *testing.T) {
	reg := metrics.New()
	reg.Counter("core.probes.sent").Add(100)
	reg.Counter("core.probes.errors").Add(11)
	var e LossEstimator
	e.SeedFromMetrics(reg)
	if got := e.Rate(); math.Abs(got-0.11) > 1e-12 {
		t.Errorf("seeded Rate = %v, want 0.11 (Iran-grade loss)", got)
	}
	// Nil registry is a no-op; errors can never exceed sent.
	e2 := &LossEstimator{}
	e2.SeedFromMetrics(nil)
	if r := e2.Rate(); r != 0 {
		t.Errorf("nil-registry Rate = %v, want 0", r)
	}
}

// TestCompensatedCleanPathMatchesRaw: with zero loss, compensation must
// cost exactly nothing — same probe count as the uncompensated loop, K
// pinned at 1 throughout.
func TestCompensatedCleanPathMatchesRaw(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 4, selector: loadbal.NewRoundRobin()})
	p := w.directProber(plat)

	const q = 16
	raw, err := EnumerateDirect(context.Background(), p, w.infra, EnumOptions{Queries: q})
	if err != nil {
		t.Fatal(err)
	}
	est := &LossEstimator{}
	comp, err := EnumerateDirectCompensated(context.Background(), p, w.infra, EnumOptions{Queries: q}, CompensateOptions{Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	if comp.ProbesSent != q || comp.ProbesSent != raw.ProbesSent {
		t.Errorf("clean-path compensated sent %d probes, raw %d, want both %d", comp.ProbesSent, raw.ProbesSent, q)
	}
	if comp.Caches != raw.Caches {
		t.Errorf("clean-path compensated ω=%d, raw ω=%d", comp.Caches, raw.Caches)
	}
	if est.Rate() != 0 {
		t.Errorf("clean-path loss estimate = %v, want 0", est.Rate())
	}
}

// TestCompensatedRecoversUnderBurstLoss drives both enumeration arms over
// a bursty-loss ingress link (§V-B's Iran-grade path, exaggerated): the
// compensated loop must observe the loss, inflate its replication factor
// and recover at least as many caches as the raw loop with the same
// logical budget.
func TestCompensatedRecoversUnderBurstLoss(t *testing.T) {
	w := newTestWorld(t)
	ingress := netsim.AddrRange(netip.MustParseAddr("198.51.120.10"), 1)
	egress := netsim.AddrRange(netip.MustParseAddr("198.51.121.10"), 1)
	_, err := platform.New(platform.Config{
		Name:       "lossy",
		IngressIPs: ingress,
		EgressIPs:  egress,
		CacheCount: 6,
		Selector:   loadbal.NewRandom(6),
		Roots:      w.tree.Roots(),
		Clock:      w.clk,
		Seed:       42,
	}, w.net, netsim.LinkProfile{
		OneWay: 2 * time.Millisecond,
		Faults: &netsim.FaultProfile{BurstLoss: netsim.BurstLoss(0.25, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewDirectProber(w.net, clientAddr, ingress[0], 0)

	const q = 24
	raw, err := EnumerateDirect(context.Background(), p, w.infra, EnumOptions{Queries: q})
	if err != nil {
		t.Fatal(err)
	}
	est := &LossEstimator{}
	comp, err := EnumerateDirectCompensated(context.Background(), p, w.infra, EnumOptions{Queries: q}, CompensateOptions{Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	if est.Rate() <= 0.05 {
		t.Errorf("loss estimate = %v, want > 0.05 on a 25%% bursty link", est.Rate())
	}
	if comp.ProbesSent <= q {
		t.Errorf("compensated sent %d probes for budget %d, want inflation (> budget)", comp.ProbesSent, q)
	}
	if comp.Caches < raw.Caches {
		t.Errorf("compensated ω=%d < raw ω=%d — compensation must not count fewer caches", comp.Caches, raw.Caches)
	}
	if comp.Caches != 6 {
		t.Logf("note: compensated ω=%d of 6 (budget-bound; experiment sweeps calibrate the tolerance)", comp.Caches)
	}
}

// TestCompensatedCountsServFailAsLoss: injected SERVFAILs return err ==
// nil but starve the honey sample; they must feed the estimator like
// timeouts do.
func TestCompensatedCountsServFailAsLoss(t *testing.T) {
	w := newTestWorld(t)
	ingress := netsim.AddrRange(netip.MustParseAddr("198.51.122.10"), 1)
	egress := netsim.AddrRange(netip.MustParseAddr("198.51.123.10"), 1)
	if _, err := platform.New(platform.Config{
		Name:       "flaky",
		IngressIPs: ingress,
		EgressIPs:  egress,
		CacheCount: 2,
		Selector:   loadbal.NewRoundRobin(),
		Roots:      w.tree.Roots(),
		Clock:      w.clk,
		Seed:       42,
	}, w.net, netsim.LinkProfile{
		Faults: &netsim.FaultProfile{ServFailRate: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	p := NewDirectProber(w.net, clientAddr, ingress[0], 0)
	est := &LossEstimator{}
	res, err := EnumerateDirectCompensated(context.Background(), p, w.infra, EnumOptions{Queries: 20}, CompensateOptions{Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	if est.Rate() <= 0.2 {
		t.Errorf("loss estimate = %v, want > 0.2 with ServFailRate 0.5", est.Rate())
	}
	if res.ProbeErrors == 0 {
		t.Error("injected SERVFAILs must count as probe errors")
	}
	if res.Caches != 2 {
		t.Errorf("ω = %d, want 2 despite SERVFAIL injection", res.Caches)
	}
}

// TestLossEstimatorZeroProbesDefined pins the zero-probe contract: with
// sent==0 there is no evidence of loss, so Rate is exactly 0 (never NaN
// from 0/0) and Replicates is exactly 1 for every confidence target —
// including the degenerate confidence >= 1 that would otherwise be
// clamped inside CarpetBombingFactor.
func TestLossEstimatorZeroProbesDefined(t *testing.T) {
	var e LossEstimator
	if r := e.Rate(); r != 0 || math.IsNaN(r) {
		t.Errorf("Rate at sent==0 = %v, want exactly 0", r)
	}
	for _, conf := range []float64{0, 0.5, 0.99, 0.999999, 1, 2} {
		if k := e.Replicates(conf, 0); k != 1 {
			t.Errorf("Replicates(conf=%v, uncapped) at sent==0 = %d, want 1", conf, k)
		}
		if k := e.Replicates(conf, 8); k != 1 {
			t.Errorf("Replicates(conf=%v, cap 8) at sent==0 = %d, want 1", conf, k)
		}
	}
	// The contract holds for the metrics-seeded path too: an all-zero
	// registry must not manufacture replication.
	var seeded LossEstimator
	seeded.SeedFromMetrics(metrics.New())
	if k := seeded.Replicates(0.99, 8); k != 1 {
		t.Errorf("Replicates after seeding from empty registry = %d, want 1", k)
	}
}
