package core

import (
	"context"
	"fmt"
	"time"

	"dnscde/internal/dnswire"
)

// This file infers a platform's TTL-clamping policy — the paper's §II-C
// footnote: "Some DNS resolution platforms enforce a minimal and a
// maximal TTL. In those cases, TTL that is smaller than the minimum, or
// larger than the maximum will be adjusted by the cache." The clamp is
// visible in the TTL values the platform serves for records whose
// authoritative TTLs the prober chose.

// TTLPolicy is the inferred clamping behaviour.
type TTLPolicy struct {
	// MinTTL is the inferred floor (0 = none detected): the platform
	// served a low-TTL record with a larger TTL.
	MinTTL time.Duration
	// MaxTTL is the inferred cap (0 = none detected): the platform
	// served a high-TTL record with a smaller TTL.
	MaxTTL time.Duration
	// LowServed/HighServed are the raw observations for the low- and
	// high-TTL probe records.
	LowServed, HighServed time.Duration
	ProbesSent            int
}

// TTLProbeOptions tunes InferTTLPolicy.
type TTLProbeOptions struct {
	// LowTTL is the authoritative TTL of the floor probe; zero defaults
	// to 5s (well under common min-TTL clamps).
	LowTTL time.Duration
	// HighTTL is the authoritative TTL of the cap probe; zero defaults
	// to 7 days (well over common max-TTL clamps).
	HighTTL time.Duration
	// Probes per record; zero defaults to 24. Multiple probes are needed
	// because only *cache hits* expose the clamp, and under a multi-cache
	// load balancer any single repeat may land on a cold cache.
	Probes int
}

func (o TTLProbeOptions) withDefaults() TTLProbeOptions {
	if o.LowTTL == 0 {
		o.LowTTL = 5 * time.Second
	}
	if o.HighTTL == 0 {
		o.HighTTL = 7 * 24 * time.Hour
	}
	if o.Probes == 0 {
		o.Probes = 24
	}
	return o
}

// InferTTLPolicy plants two honey records — one with a very low and one
// with a very high authoritative TTL — resolves each repeatedly through
// the platform, and compares the served TTLs against the authoritative
// values. Cache misses serve the authoritative TTL verbatim; cache hits
// serve the (possibly clamped, decayed) cached TTL. Across enough probes
// to hit a warm cache with high probability:
//
//   - max(served) for the low-TTL record above its authoritative TTL
//     reveals a min-TTL clamp (and its approximate value);
//   - min(served) for the high-TTL record below its authoritative TTL
//     reveals a max-TTL clamp.
func InferTTLPolicy(ctx context.Context, p Prober, in *Infra, opts TTLProbeOptions) (TTLPolicy, error) {
	opts = opts.withDefaults()
	var policy TTLPolicy

	probeServed := func(ttl uint32) (minServed, maxServed time.Duration, err error) {
		session, err := in.NewFlatSessionTTL(ttl)
		if err != nil {
			return 0, 0, err
		}
		got := false
		for i := 0; i < opts.Probes; i++ {
			policy.ProbesSent++
			res, err := p.Probe(ctx, session.Honey, dnswire.TypeA)
			if err != nil {
				continue
			}
			for _, rr := range res.Records {
				if rr.Type() != dnswire.TypeA {
					continue
				}
				served := time.Duration(rr.TTL) * time.Second
				if !got || served < minServed {
					minServed = served
				}
				if served > maxServed {
					maxServed = served
				}
				got = true
			}
		}
		if !got {
			return 0, 0, fmt.Errorf("%w: ttl probe", ErrAllProbesFailed)
		}
		return minServed, maxServed, nil
	}

	_, lowMax, err := probeServed(uint32(opts.LowTTL / time.Second))
	if err != nil {
		return policy, err
	}
	policy.LowServed = lowMax
	// Allow one second of decay slack between caching and serving.
	if lowMax > opts.LowTTL+time.Second {
		policy.MinTTL = lowMax
	}

	highMin, _, err := probeServed(uint32(opts.HighTTL / time.Second))
	if err != nil {
		return policy, err
	}
	policy.HighServed = highMin
	if highMin > 0 && highMin+time.Second < opts.HighTTL {
		policy.MaxTTL = highMin
	}
	return policy, nil
}
