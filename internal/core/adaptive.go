package core

import (
	"context"
	"fmt"

	"dnscde/internal/dnswire"
)

// This file implements the adaptive probing loops a field measurement
// needs: the cache count n is unknown in advance, so probe budgets are
// grown until the observation stabilises — the practical realisation of
// §V-B's "a prerequisite is that N ... is larger than n".

// AdaptiveOptions tunes adaptive enumeration.
type AdaptiveOptions struct {
	// InitialBudget is the first round's probe count; zero defaults
	// to 16.
	InitialBudget int
	// MaxBudget caps the total number of probes; zero defaults to 4096.
	MaxBudget int
	// Replicates is the carpet-bombing factor per probe.
	Replicates int
	// QType is the probed record type; zero defaults to A.
	QType dnswire.Type
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.InitialBudget == 0 {
		o.InitialBudget = 16
	}
	if o.MaxBudget == 0 {
		o.MaxBudget = 4096
	}
	if o.Replicates == 0 {
		o.Replicates = 1
	}
	if o.QType == 0 {
		o.QType = dnswire.TypeA
	}
	return o
}

// AdaptiveResult is the outcome of an adaptive enumeration.
type AdaptiveResult struct {
	Technique Technique
	// Caches is the stabilised measurement.
	Caches int
	// Rounds is how many doubling rounds ran.
	Rounds      int
	ProbesSent  int
	ProbeErrors int
	// Converged reports whether the doubling rule was satisfied before
	// MaxBudget was exhausted.
	Converged bool
}

// EnumerateAdaptive measures the cache count without prior knowledge of
// n: it runs enumeration sessions with doubling probe budgets until the
// measured count ω is at most a quarter of the budget (so a further cache
// would very likely have been sampled), or the budget cap is reached.
//
// Each round uses a fresh session, so rounds are independent
// measurements; the final round's count is reported.
func EnumerateAdaptive(ctx context.Context, p Prober, in *Infra, opts AdaptiveOptions) (AdaptiveResult, error) {
	o := opts.withDefaults()
	result := AdaptiveResult{}
	budget := o.InitialBudget
	for {
		result.Rounds++
		enumOpts := EnumOptions{Queries: budget, Replicates: o.Replicates, QType: o.QType}
		var (
			res EnumResult
			err error
		)
		if p.Direct() {
			res = EnumResult{}
			res, err = EnumerateDirect(ctx, p, in, enumOpts)
		} else {
			res, err = EnumerateHierarchy(ctx, p, in, enumOpts)
		}
		result.ProbesSent += res.ProbesSent
		result.ProbeErrors += res.ProbeErrors
		if err != nil {
			return result, fmt.Errorf("core: adaptive round %d: %w", result.Rounds, err)
		}
		result.Technique = res.Technique
		result.Caches = res.Caches

		// Stop when the round's budget would have exposed an (ω+1)-th
		// cache with 99% probability — i.e. the budget meets the coupon-
		// collector bound for one more cache than we saw.
		if budget >= RecommendedQueries(res.Caches+1, 0.99) {
			result.Converged = true
			return result, nil
		}
		if result.ProbesSent+budget*2 > o.MaxBudget {
			return result, nil
		}
		budget *= 2
	}
}

// DiscoverEgressAdaptive discovers egress IPs without a preset probe
// count: it keeps probing fresh names until no new egress address has
// appeared for `window` consecutive probes, or maxProbes is reached.
func DiscoverEgressAdaptive(ctx context.Context, p Prober, in *Infra, window, maxProbes int) (EgressResult, error) {
	if window <= 0 {
		window = 24
	}
	if maxProbes <= 0 {
		maxProbes = 4096
	}
	session, err := in.NewHierarchySession(1)
	if err != nil {
		return EgressResult{}, err
	}
	var result EgressResult
	seen := make(map[string]struct{}) // egress IPs as strings for set keys
	count := func() int {
		for _, src := range in.Parent.Log().DistinctSources(session.ChildOrigin) {
			seen[src.String()] = struct{}{}
		}
		for _, src := range in.Child.Log().DistinctSources(session.ChildOrigin) {
			seen[src.String()] = struct{}{}
		}
		return len(seen)
	}
	stale := 0
	failures := 0
	for i := 1; i <= maxProbes && stale < window; i++ {
		result.ProbesSent++
		_, err := p.Probe(ctx, session.ProbeName(i), dnswire.TypeA)
		in.countProbe(err, false)
		if err != nil {
			failures++
		}
		before := len(seen)
		if count() > before {
			stale = 0
		} else {
			stale++
		}
	}
	if failures == result.ProbesSent {
		return result, ErrAllProbesFailed
	}
	for _, src := range in.Parent.Log().DistinctSources(session.ChildOrigin) {
		result.IPs = append(result.IPs, src)
	}
	for _, src := range in.Child.Log().DistinctSources(session.ChildOrigin) {
		dup := false
		for _, have := range result.IPs {
			if have == src {
				dup = true
				break
			}
		}
		if !dup {
			result.IPs = append(result.IPs, src)
		}
	}
	return result, nil
}
