package core

import (
	"context"
	"testing"

	"dnscde/internal/loadbal"
)

func TestEnumerateAdaptiveRecoversN(t *testing.T) {
	w := newTestWorld(t)
	for _, n := range []int{1, 3, 8, 20} {
		plat := w.newPlatform(t, platformOpts{caches: n, selector: loadbal.NewRandom(6)})
		res, err := EnumerateAdaptive(context.Background(), w.directProber(plat), w.infra, AdaptiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Caches != n {
			t.Errorf("n=%d: adaptive measured %d (rounds=%d, probes=%d)", n, res.Caches, res.Rounds, res.ProbesSent)
		}
		if !res.Converged {
			t.Errorf("n=%d: did not converge", n)
		}
	}
}

func TestEnumerateAdaptiveGrowsBudget(t *testing.T) {
	w := newTestWorld(t)
	// n=20 with the default initial budget of 16 must trigger doubling.
	plat := w.newPlatform(t, platformOpts{caches: 20, selector: loadbal.NewRandom(8)})
	res, err := EnumerateAdaptive(context.Background(), w.directProber(plat), w.infra, AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 2 {
		t.Errorf("rounds = %d, want >= 2 for n=20", res.Rounds)
	}
}

func TestEnumerateAdaptiveIndirect(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 4, selector: loadbal.NewRandom(2)})
	res, err := EnumerateAdaptive(context.Background(), w.indirectProber(plat), w.infra, AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != TechniqueHierarchy {
		t.Errorf("technique = %q", res.Technique)
	}
	if res.Caches != 4 {
		t.Errorf("measured %d caches", res.Caches)
	}
}

func TestEnumerateAdaptiveBudgetCap(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 30, selector: loadbal.NewRandom(1)})
	res, err := EnumerateAdaptive(context.Background(), w.directProber(plat), w.infra,
		AdaptiveOptions{InitialBudget: 8, MaxBudget: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("converged despite tiny budget")
	}
	if res.ProbesSent > 24 {
		t.Errorf("probes = %d exceeds cap", res.ProbesSent)
	}
}

func TestDiscoverEgressAdaptive(t *testing.T) {
	w := newTestWorld(t)
	for _, egress := range []int{1, 5, 12} {
		plat := w.newPlatform(t, platformOpts{caches: 2, egress: egress, selector: loadbal.NewRandom(4)})
		res, err := DiscoverEgressAdaptive(context.Background(), w.directProber(plat), w.infra, 24, 2048)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IPs) != egress {
			t.Errorf("egress=%d: discovered %d (probes=%d)", egress, len(res.IPs), res.ProbesSent)
		}
	}
}

func TestDiscoverEgressAdaptiveStopsEarly(t *testing.T) {
	w := newTestWorld(t)
	plat := w.newPlatform(t, platformOpts{caches: 1, egress: 1})
	res, err := DiscoverEgressAdaptive(context.Background(), w.directProber(plat), w.infra, 10, 2048)
	if err != nil {
		t.Fatal(err)
	}
	// One egress IP stabilises after the window, far below the cap.
	if res.ProbesSent > 15 {
		t.Errorf("probes = %d, want prompt stop", res.ProbesSent)
	}
}
