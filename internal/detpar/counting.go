package detpar

import "math/rand"

// CountingSource is a rand.Source64 that counts how many values have been
// drawn from it. It exists so a random stream's position can be captured in
// a world snapshot and restored later: recreate the source from the same
// seed and SkipTo the recorded draw count, and every subsequent draw is
// identical to the uninterrupted stream.
//
// CountingSource implements rand.Source64 — not just rand.Source — on
// purpose: rand.New type-asserts Source64 at construction, and a
// Source-only wrapper would make Rand.Uint64 synthesize each value from
// two Int63 draws, shifting the stream relative to the unwrapped source.
// Both Int63 and Uint64 advance the underlying generator exactly one step,
// so the draw count is method-agnostic: position n means the generator has
// been stepped n times, however the values were consumed.
//
// CountingSource is not safe for concurrent use; like any rand.Source it
// must be externally serialized (rand.Rand callers already do this).
type CountingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

// NewCountingSource returns a counting source seeded with seed, positioned
// at draw 0.
func NewCountingSource(seed int64) *CountingSource {
	// rand.NewSource's concrete type implements Source64; the assertion
	// is guaranteed to hold for the standard library implementation.
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source.
func (c *CountingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *CountingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Seed implements rand.Source: it reseeds the underlying generator and
// resets the draw count to zero.
func (c *CountingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.seed = seed
	c.draws = 0
}

// Draws returns the stream position: the number of values drawn since the
// source was created, last reseeded, or last SkipTo target.
func (c *CountingSource) Draws() uint64 { return c.draws }

// Skip advances the stream by n draws, discarding the values.
func (c *CountingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.draws += n
}

// SkipTo positions the stream at exactly n total draws. If the stream is
// already past n it is rewound by reseeding with the original seed and
// fast-forwarding from zero, so SkipTo is safe to call on a source in any
// state.
func (c *CountingSource) SkipTo(n uint64) {
	if n < c.draws {
		c.Seed(c.seed)
	}
	c.Skip(n - c.draws)
}
