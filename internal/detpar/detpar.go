// Package detpar is the deterministic parallel fan-out engine behind the
// Monte-Carlo experiment drivers and the measurement pool: it runs n
// independent trials on a bounded worker pool while keeping the results
// byte-identical to a sequential run (and to itself at any worker count).
//
// Determinism rests on two rules (DESIGN.md §7, "Determinism under
// parallelism"):
//
//   - Per-index randomness. Trial i never shares an RNG with trial j:
//     ForEach derives an independent seed for every index via a splitmix64
//     mix of the caller's seed, so the random stream a trial consumes
//     depends only on (seed, i), never on scheduling.
//   - Index-ordered merge. Results land in a slice slot owned by their
//     index; errors are reported lowest-index-first. Nothing observable
//     depends on completion order.
//
// A trial body must therefore be self-contained: it draws randomness only
// from the *rand.Rand it is handed (or from seeds derived with Derive) and
// touches no mutable state shared with other trials except commutative
// sinks (atomic counters, sharded logs).
package detpar

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
)

// Workers resolves a worker-count setting: values <= 0 select
// runtime.GOMAXPROCS(0) — "use the hardware" — and anything else is
// returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// splitmix64 is the SplitMix64 output function (Steele, Lea & Flood,
// "Fast splittable pseudorandom number generators", OOPSLA 2014) — the
// standard way to expand one seed into many independent ones. Unlike
// seed+i, nearby inputs produce uncorrelated outputs, so per-index
// *rand.Rand streams do not overlap in practice.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix exposes the splitmix64 mixing function for consumers that need a
// deterministic, well-spread hash of a small integer key — notably the
// sharded discrete-event scheduler, which partitions simulated sources
// across event-loop lanes by Mix(addr key) so the assignment is a pure
// function of the address, never of registration or scheduling order.
func Mix(x uint64) uint64 { return splitmix64(x) }

// Derive mixes seed with the given salts into an independent sub-seed.
// It is the blessed way to seed a per-trial world, platform or selector:
// Derive(seed, i) and Derive(seed, j) are uncorrelated for i != j, and the
// result depends only on the inputs — never on scheduling. The returned
// value is always positive so it can feed APIs that treat 0 as "default".
func Derive(seed int64, salts ...uint64) int64 {
	x := splitmix64(uint64(seed))
	for _, s := range salts {
		x = splitmix64(x ^ s)
	}
	v := int64(x &^ (1 << 63))
	if v == 0 {
		v = 1
	}
	return v
}

// Rand returns the deterministic RNG for index i under seed: the stream
// ForEach hands to fn(i, rng). Exposed so a sequential caller (or a test)
// can reproduce exactly what a parallel run consumed.
func Rand(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(Derive(seed, uint64(i))))
}

// ForEach runs fn(i, rng) for every i in [0, n) on a bounded pool of
// workers. Each index receives its own RNG (see Rand), so the work is
// byte-identical at any worker count. The first error by index order is
// returned; after any error (or ctx cancellation) remaining indices are
// skipped. fn must not retain rng beyond its call.
func ForEach(ctx context.Context, seed int64, n, workers int, fn func(i int, rng *rand.Rand) error) error {
	_, err := mapIndexed(ctx, n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i, Rand(seed, i))
	})
	return err
}

// Map runs fn(i, rng) for every i in [0, n) like ForEach and merges the
// results in index order, so out[i] is always trial i's result regardless
// of scheduling.
func Map[T any](ctx context.Context, seed int64, n, workers int, fn func(i int, rng *rand.Rand) (T, error)) ([]T, error) {
	return mapIndexed(ctx, n, workers, func(i int) (T, error) {
		return fn(i, Rand(seed, i))
	})
}

// Each is ForEach for trial bodies that need no randomness (or that derive
// their own seeds with Derive): fn(i) runs for every i in [0, n) on the
// bounded pool, with the same index-ordered error contract.
func Each(ctx context.Context, n, workers int, fn func(i int) error) error {
	_, err := mapIndexed(ctx, n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// mapIndexed is the shared pool: indices are handed out through a
// channel, workers write results into their index's slot, and the lowest-
// index error wins. Workers stop picking up new indices once an error is
// recorded or ctx is cancelled; in-flight indices run to completion.
//
// mapIndexed fans out every parallel trial in the repository; its setup
// allocates O(workers) once (annotated below) and the per-index loop must
// stay allocation-free.
//
//cdelint:hotpath
func mapIndexed[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		n = 0
	}
	//cdelint:allow hotalloc result slice allocated once per fan-out, amortised over n trials
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	//cdelint:allow hotalloc error slots allocated once per fan-out, amortised over n trials
	errs := make([]error, n)
	var failed sync.Once
	//cdelint:allow hotalloc one stop channel per fan-out
	stop := make(chan struct{})
	abort := func() { failed.Do(func() { close(stop) }) }

	//cdelint:allow hotalloc one index channel per fan-out
	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				v, err := fn(i)
				out[i] = v
				if err != nil {
					errs[i] = err
					abort()
				}
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case indices <- i:
		case <-stop:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(indices)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, ctx.Err()
}
