package detpar

import (
	"math/rand"
	"testing"
)

// A rand.Rand on a CountingSource must produce the exact stream a plain
// rand.NewSource yields: the wrapper may not perturb a single draw, or
// every golden report in the repository shifts.
func TestCountingSourceStreamIdentical(t *testing.T) {
	const seed = 12345
	plain := rand.New(rand.NewSource(seed))
	cs := NewCountingSource(seed)
	counted := rand.New(cs)

	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if a, b := plain.Int63(), counted.Int63(); a != b {
				t.Fatalf("draw %d: Int63 %d != %d", i, b, a)
			}
		case 1:
			if a, b := plain.Float64(), counted.Float64(); a != b {
				t.Fatalf("draw %d: Float64 %v != %v", i, b, a)
			}
		case 2:
			if a, b := plain.Uint64(), counted.Uint64(); a != b {
				t.Fatalf("draw %d: Uint64 %d != %d", i, b, a)
			}
		case 3:
			if a, b := plain.Int63n(97), counted.Int63n(97); a != b {
				t.Fatalf("draw %d: Int63n %d != %d", i, b, a)
			}
		}
	}
}

// Uint64 must cost exactly one draw. If CountingSource were only a
// rand.Source, rand.Rand would synthesize Uint64 from two Int63 calls and
// the position bookkeeping (and the stream itself) would be wrong.
func TestCountingSourceDrawAccounting(t *testing.T) {
	cs := NewCountingSource(7)
	r := rand.New(cs)

	r.Int63()
	if got := cs.Draws(); got != 1 {
		t.Fatalf("after Int63: draws = %d, want 1", got)
	}
	r.Uint64()
	if got := cs.Draws(); got != 2 {
		t.Fatalf("after Uint64: draws = %d, want 2", got)
	}
	r.Float64()
	if got := cs.Draws(); got != 3 {
		t.Fatalf("after Float64: draws = %d, want 3", got)
	}
}

// SkipTo(n) must land a fresh source on the same stream position as a
// source that consumed n values normally — including rewinding.
func TestCountingSourceSkipTo(t *testing.T) {
	const seed = 99
	ref := rand.New(NewCountingSource(seed))
	want := make([]int64, 50)
	for i := range want {
		want[i] = ref.Int63()
	}

	for _, pos := range []uint64{0, 1, 7, 49} {
		cs := NewCountingSource(seed)
		cs.SkipTo(pos)
		if cs.Draws() != pos {
			t.Fatalf("SkipTo(%d): draws = %d", pos, cs.Draws())
		}
		if got := rand.New(cs).Int63(); got != want[pos] {
			t.Fatalf("SkipTo(%d): next draw %d, want %d", pos, got, want[pos])
		}
	}

	// Rewind: run past the target, then SkipTo back.
	cs := NewCountingSource(seed)
	cs.SkipTo(30)
	cs.SkipTo(5)
	if cs.Draws() != 5 {
		t.Fatalf("rewind: draws = %d, want 5", cs.Draws())
	}
	if got := rand.New(cs).Int63(); got != want[5] {
		t.Fatalf("rewind: next draw %d, want %d", got, want[5])
	}
}
