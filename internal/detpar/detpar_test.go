package detpar

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestMapDeterministicAcrossWorkerCounts is the core contract: the merged
// result is byte-identical at any worker count, including the sequential
// workers=1 run.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 64
	trial := func(i int, rng *rand.Rand) (string, error) {
		// Consume a scheduling-sensitive amount of randomness so any
		// stream sharing between indices would show up immediately.
		draws := 1 + rng.Intn(32)
		sum := 0
		for k := 0; k < draws; k++ {
			sum += rng.Intn(1000)
		}
		return fmt.Sprintf("trial %d: draws=%d sum=%d", i, draws, sum), nil
	}
	want, err := Map(context.Background(), 2017, n, 1, trial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, n, 0} {
		got, err := Map(context.Background(), 2017, n, workers, trial)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRandMatchesForEach: the RNG handed to fn(i, ·) is exactly Rand(seed, i),
// so sequential callers can reproduce a parallel stream.
func TestRandMatchesForEach(t *testing.T) {
	got := make([]int64, 16)
	err := ForEach(context.Background(), 42, 16, 4, func(i int, rng *rand.Rand) error {
		got[i] = rng.Int63()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if want := Rand(42, i).Int63(); got[i] != want {
			t.Fatalf("index %d: first draw %d, want Rand(42,%d) draw %d", i, got[i], i, want)
		}
	}
}

// TestDeriveIndependence: nearby seeds and salts must not collide, and the
// result is always positive (0 is reserved for "default" in seed options).
func TestDeriveIndependence(t *testing.T) {
	seen := make(map[int64]string)
	for seed := int64(0); seed < 8; seed++ {
		for i := uint64(0); i < 256; i++ {
			v := Derive(seed, i)
			if v <= 0 {
				t.Fatalf("Derive(%d, %d) = %d, want positive", seed, i, v)
			}
			key := fmt.Sprintf("seed=%d i=%d", seed, i)
			if prev, dup := seen[v]; dup {
				t.Fatalf("Derive collision: %s and %s both map to %d", prev, key, v)
			}
			seen[v] = key
		}
	}
	if a, b := Derive(7, 1, 2), Derive(7, 2, 1); a == b {
		t.Fatalf("Derive must be order-sensitive in its salts; got %d twice", a)
	}
}

// TestLowestIndexErrorWins: when several trials fail, the reported error is
// the lowest-index one regardless of completion order.
func TestLowestIndexErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for run := 0; run < 10; run++ {
		err := Each(context.Background(), 32, 8, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 4, 17, 31:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("run %d: got %v, want the index-3 error", run, err)
		}
	}
}

// TestErrorStopsFeeding: after a trial fails, remaining indices are skipped
// (bounded overshoot: only in-flight trials complete).
func TestErrorStopsFeeding(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := Each(context.Background(), 10000, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if got := ran.Load(); got > 100 {
		t.Fatalf("ran %d trials after an index-0 failure; feeding did not stop", got)
	}
}

// TestContextCancellation: a cancelled ctx aborts the fan-out and is
// reported when no trial itself failed.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Each(ctx, 10000, 2, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > 100 {
		t.Fatalf("ran %d trials after cancellation", got)
	}
}

// TestMapIndexOrder: out[i] belongs to trial i even when completion order
// is scrambled by the scheduler.
func TestMapIndexOrder(t *testing.T) {
	out, err := Map(context.Background(), 1, 256, runtime.GOMAXPROCS(0), func(i int, rng *rand.Rand) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestZeroAndNegativeN: degenerate sizes complete without running fn.
func TestZeroAndNegativeN(t *testing.T) {
	for _, n := range []int{0, -3} {
		called := false
		if err := Each(context.Background(), n, 4, func(int) error { called = true; return nil }); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if called {
			t.Fatalf("n=%d: fn was called", n)
		}
	}
}

// TestWorkers: the <=0 convention resolves to the hardware parallelism.
func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}
