// Package dnscache implements the resolver-side DNS cache that the paper's
// methodology discovers and enumerates. A resolution platform (Fig. 1)
// holds n of these behind a load balancer; the CDE techniques count them
// from the outside.
//
// The cache supports the behaviours the paper calls out explicitly:
// per-record TTL decay, operator-configured minimum and maximum TTL
// clamping (§II-C footnote: "Some DNS resolution platforms enforce a
// minimal and a maximal TTL"), negative caching (RFC 2308), bounded
// capacity with LRU eviction, and hit/miss statistics.
package dnscache

import (
	"container/list"
	"sync"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
)

// Policy configures cache behaviour.
type Policy struct {
	// MinTTL, when > 0, raises every stored TTL to at least this value —
	// the paper notes this confuses naive TTL-consistency measurements.
	MinTTL time.Duration
	// MaxTTL, when > 0, caps every stored TTL.
	MaxTTL time.Duration
	// NegativeTTL, when > 0, caps the TTL of negative entries. When 0 the
	// SOA minimum (RFC 2308) provided by the caller is used as-is.
	NegativeTTL time.Duration
	// Capacity, when > 0, bounds the number of entries; least recently
	// used entries are evicted first.
	Capacity int
}

// ClampTTL applies the policy's min/max to a TTL.
func (p Policy) ClampTTL(ttl time.Duration) time.Duration {
	if p.MaxTTL > 0 && ttl > p.MaxTTL {
		ttl = p.MaxTTL
	}
	if p.MinTTL > 0 && ttl < p.MinTTL {
		ttl = p.MinTTL
	}
	return ttl
}

// Entry is one cached response.
type Entry struct {
	// Records are the answer records (empty for negative entries).
	Records []dnswire.RR
	// RCode distinguishes NOERROR/NODATA from NXDOMAIN entries.
	RCode dnswire.RCode
	// Authority carries the SOA for negative entries.
	Authority []dnswire.RR
}

// Negative reports whether the entry caches a negative answer.
func (e Entry) Negative() bool { return len(e.Records) == 0 }

// Stats counts cache events.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Expired   int64
}

type item struct {
	key     string
	entry   Entry
	stored  time.Time
	expires time.Time
	lru     *list.Element
}

// Cache is a bounded TTL + LRU DNS cache. The zero value is not usable;
// use New. Cache is safe for concurrent use.
type Cache struct {
	// ID labels the cache instance; experiments use it as ground truth
	// when verifying CDE's enumeration ("which cache answered?").
	ID string

	policy Policy

	mu    sync.Mutex
	items map[string]*item
	order *list.List // front = most recently used
	stats Stats

	// Accounting handles, nil (no-op) until SetMetrics attaches a
	// registry.
	mHits      *metrics.Counter
	mMisses    *metrics.Counter
	mExpired   *metrics.Counter
	mEvictions *metrics.Counter
}

// New creates an empty cache with the given identity and policy.
func New(id string, policy Policy) *Cache {
	return &Cache{
		ID:     id,
		policy: policy,
		items:  make(map[string]*item),
		order:  list.New(),
	}
}

// SetMetrics attaches an accounting registry: cache events are counted
// under "dnscache.{hits,misses,expired,evictions}.<ID>" in addition to
// the local Stats. A nil registry detaches instrumentation.
func (c *Cache) SetMetrics(reg *metrics.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mHits = reg.Counter("dnscache.hits." + c.ID)
	c.mMisses = reg.Counter("dnscache.misses." + c.ID)
	c.mExpired = reg.Counter("dnscache.expired." + c.ID)
	c.mEvictions = reg.Counter("dnscache.evictions." + c.ID)
}

// Policy returns the cache's policy.
func (c *Cache) Policy() Policy { return c.policy }

// Len returns the number of live entries (including not-yet-expired ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// SnapshotStats returns a copy of the cache counters.
func (c *Cache) SnapshotStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Flush drops every entry.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[string]*item)
	c.order.Init()
}

// FlushName drops all entries for the given question name (any type).
func (c *Cache) FlushName(name string) {
	name = dnswire.CanonicalName(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, it := range c.items {
		if it.entry.ownerName() == name || keyName(key) == name {
			c.order.Remove(it.lru)
			delete(c.items, key)
		}
	}
}

// keyName extracts the name component of a Question.Key().
func keyName(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			return key[:i]
		}
	}
	return key
}

// ownerName returns the owner of the first record, or "".
func (e Entry) ownerName() string {
	if len(e.Records) == 0 {
		return ""
	}
	return dnswire.CanonicalName(e.Records[0].Name)
}

// Put stores a response for q. The entry's lifetime is the minimum
// remaining TTL across its records (or the negative TTL), clamped by the
// policy. Entries with an effective TTL of zero are not stored.
func (c *Cache) Put(q dnswire.Question, e Entry, now time.Time) {
	// DNS TTLs are whole seconds (RFC 1035 §3.2.1), so the entry lifetime
	// must be too: a fractional lifetime (possible via sub-second policy
	// durations) would outlive the truncated record TTLs served from the
	// cache, and during the final partial second Get would hand out
	// records decayed to TTL 0 as fresh hits. Truncating aligns expiry
	// with the moment the served TTL reaches zero.
	ttl := c.effectiveTTL(e).Truncate(time.Second)
	if ttl <= 0 {
		return
	}
	// Store defensive copies so callers cannot mutate cached data, and
	// clamp each stored record's TTL so the TTLs served from cache agree
	// with the entry's policy-adjusted lifetime.
	e.Records = clampRecordTTLs(e.Records, c.policy)
	e.Authority = append([]dnswire.RR(nil), e.Authority...)

	key := q.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.items[key]; ok {
		c.order.Remove(old.lru)
		delete(c.items, key)
	}
	it := &item{key: key, entry: e, stored: now, expires: now.Add(ttl)}
	it.lru = c.order.PushFront(it)
	c.items[key] = it
	for c.policy.Capacity > 0 && len(c.items) > c.policy.Capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*item)
		c.order.Remove(back)
		delete(c.items, victim.key)
		c.stats.Evictions++
		c.mEvictions.Inc()
	}
}

// effectiveTTL computes the clamped lifetime of e.
func (c *Cache) effectiveTTL(e Entry) time.Duration {
	if e.Negative() {
		ttl := time.Duration(0)
		if len(e.Authority) > 0 {
			// RFC 2308: negative TTL is min(SOA TTL, SOA.MINIMUM).
			soaTTL := time.Duration(e.Authority[0].TTL) * time.Second
			if soa, ok := e.Authority[0].Data.(dnswire.SOARecord); ok {
				minField := time.Duration(soa.Minimum) * time.Second
				if minField < soaTTL {
					soaTTL = minField
				}
			}
			ttl = soaTTL
		}
		if c.policy.NegativeTTL > 0 && (ttl == 0 || ttl > c.policy.NegativeTTL) {
			ttl = c.policy.NegativeTTL
		}
		return c.policy.ClampTTL(ttl)
	}
	min := time.Duration(1<<63 - 1)
	for _, rr := range e.Records {
		if d := time.Duration(rr.TTL) * time.Second; d < min {
			min = d
		}
	}
	return c.policy.ClampTTL(min)
}

// Get looks up q. On a hit it returns the entry with record TTLs decayed
// by the time elapsed since storage, and refreshes the entry's LRU
// position. Expired entries count as misses and are removed.
func (c *Cache) Get(q dnswire.Question, now time.Time) (Entry, bool) {
	key := q.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	it, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		c.mMisses.Inc()
		return Entry{}, false
	}
	if !now.Before(it.expires) {
		c.order.Remove(it.lru)
		delete(c.items, key)
		c.stats.Expired++
		c.stats.Misses++
		c.mExpired.Inc()
		c.mMisses.Inc()
		return Entry{}, false
	}
	c.order.MoveToFront(it.lru)
	c.stats.Hits++
	c.mHits.Inc()

	// Guard against now < stored (virtual-clock rewind or skew): the
	// unsigned conversion would otherwise wrap into a huge elapsed value
	// and zero every served TTL.
	var elapsed uint32
	if d := now.Sub(it.stored); d > 0 {
		elapsed = uint32(d / time.Second)
	}
	out := Entry{RCode: it.entry.RCode}
	out.Records = decayTTLs(it.entry.Records, elapsed)
	out.Authority = decayTTLs(it.entry.Authority, elapsed)
	return out, true
}

// Contains reports whether q is cached and fresh without perturbing LRU
// order or statistics. CDE's honey-record mapping (§IV-B1b) checks
// presence without wanting to alter cache state.
func (c *Cache) Contains(q dnswire.Question, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	it, ok := c.items[q.Key()]
	return ok && now.Before(it.expires)
}

func clampRecordTTLs(rrs []dnswire.RR, p Policy) []dnswire.RR {
	if len(rrs) == 0 {
		return nil
	}
	out := make([]dnswire.RR, len(rrs))
	for i, rr := range rrs {
		d := p.ClampTTL(time.Duration(rr.TTL) * time.Second)
		rr.TTL = uint32(d / time.Second)
		out[i] = rr
	}
	return out
}

func decayTTLs(rrs []dnswire.RR, elapsed uint32) []dnswire.RR {
	if len(rrs) == 0 {
		return nil
	}
	out := make([]dnswire.RR, len(rrs))
	for i, rr := range rrs {
		if rr.TTL > elapsed {
			rr.TTL -= elapsed
		} else {
			rr.TTL = 0
		}
		out[i] = rr
	}
	return out
}
