package dnscache

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
)

var _epoch = time.Date(2017, time.June, 26, 0, 0, 0, 0, time.UTC)

func q(name string) dnswire.Question {
	return dnswire.Question{Name: dnswire.CanonicalName(name), Type: dnswire.TypeA, Class: dnswire.ClassIN}
}

func aEntry(name string, ttl uint32) Entry {
	return Entry{Records: []dnswire.RR{{
		Name: dnswire.CanonicalName(name), Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.ARecord{Addr: netip.MustParseAddr("192.0.2.1")},
	}}}
}

func negEntry(rcode dnswire.RCode, soaTTL, soaMin uint32) Entry {
	return Entry{
		RCode: rcode,
		Authority: []dnswire.RR{{
			Name: "cache.example.", Class: dnswire.ClassIN, TTL: soaTTL,
			Data: dnswire.SOARecord{MName: "ns.cache.example.", RName: "h.cache.example.", Minimum: soaMin},
		}},
	}
}

func TestPutGetHit(t *testing.T) {
	c := New("c1", Policy{})
	c.Put(q("a.example"), aEntry("a.example", 300), _epoch)
	e, ok := c.Get(q("a.example"), _epoch.Add(10*time.Second))
	if !ok {
		t.Fatal("miss")
	}
	if e.Records[0].TTL != 290 {
		t.Errorf("decayed TTL = %d, want 290", e.Records[0].TTL)
	}
	s := c.SnapshotStats()
	if s.Hits != 1 || s.Misses != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestGetMiss(t *testing.T) {
	c := New("c1", Policy{})
	if _, ok := c.Get(q("missing.example"), _epoch); ok {
		t.Fatal("unexpected hit")
	}
	if s := c.SnapshotStats(); s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestExpiry(t *testing.T) {
	c := New("c1", Policy{})
	c.Put(q("a.example"), aEntry("a.example", 60), _epoch)
	if _, ok := c.Get(q("a.example"), _epoch.Add(59*time.Second)); !ok {
		t.Error("fresh entry missed")
	}
	if _, ok := c.Get(q("a.example"), _epoch.Add(60*time.Second)); ok {
		t.Error("expired entry hit")
	}
	s := c.SnapshotStats()
	if s.Expired != 1 {
		t.Errorf("Expired = %d", s.Expired)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after expiry", c.Len())
	}
}

func TestMinTTLClamp(t *testing.T) {
	// The paper's footnote: "TTL that is smaller than the minimum ... will
	// be adjusted by the cache."
	c := New("c1", Policy{MinTTL: 300 * time.Second})
	c.Put(q("a.example"), aEntry("a.example", 10), _epoch)
	e, ok := c.Get(q("a.example"), _epoch.Add(100*time.Second))
	if !ok {
		t.Fatal("entry should survive: min TTL raised it to 300s")
	}
	if e.Records[0].TTL != 200 {
		t.Errorf("TTL = %d, want 200 (300 clamped - 100 elapsed)", e.Records[0].TTL)
	}
}

func TestMaxTTLClamp(t *testing.T) {
	c := New("c1", Policy{MaxTTL: 60 * time.Second})
	c.Put(q("a.example"), aEntry("a.example", 86400), _epoch)
	if _, ok := c.Get(q("a.example"), _epoch.Add(61*time.Second)); ok {
		t.Error("entry outlived max TTL")
	}
}

func TestZeroTTLNotStored(t *testing.T) {
	c := New("c1", Policy{})
	c.Put(q("a.example"), aEntry("a.example", 0), _epoch)
	if c.Len() != 0 {
		t.Error("zero-TTL entry stored")
	}
}

func TestNegativeCachingUsesSOAMinimum(t *testing.T) {
	c := New("c1", Policy{})
	// SOA TTL 3600 but MINIMUM 60: RFC 2308 takes the min.
	c.Put(q("nx.example"), negEntry(dnswire.RCodeNXDomain, 3600, 60), _epoch)
	e, ok := c.Get(q("nx.example"), _epoch.Add(59*time.Second))
	if !ok {
		t.Fatal("negative entry missed while fresh")
	}
	if !e.Negative() || e.RCode != dnswire.RCodeNXDomain {
		t.Errorf("entry = %+v", e)
	}
	if _, ok := c.Get(q("nx.example"), _epoch.Add(60*time.Second)); ok {
		t.Error("negative entry outlived SOA minimum")
	}
}

func TestNegativeTTLPolicyCaps(t *testing.T) {
	c := New("c1", Policy{NegativeTTL: 5 * time.Second})
	c.Put(q("nx.example"), negEntry(dnswire.RCodeNXDomain, 3600, 3600), _epoch)
	if _, ok := c.Get(q("nx.example"), _epoch.Add(6*time.Second)); ok {
		t.Error("negative entry outlived NegativeTTL policy")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New("c1", Policy{Capacity: 3})
	for i := 0; i < 3; i++ {
		c.Put(q(fmt.Sprintf("n%d.example", i)), aEntry("x.example", 300), _epoch)
	}
	// Touch n0 so n1 becomes the LRU victim.
	if _, ok := c.Get(q("n0.example"), _epoch); !ok {
		t.Fatal("n0 missing")
	}
	c.Put(q("n3.example"), aEntry("x.example", 300), _epoch)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ok := c.Get(q("n1.example"), _epoch); ok {
		t.Error("LRU victim n1 still cached")
	}
	if _, ok := c.Get(q("n0.example"), _epoch); !ok {
		t.Error("recently used n0 evicted")
	}
	if s := c.SnapshotStats(); s.Evictions != 1 {
		t.Errorf("Evictions = %d", s.Evictions)
	}
}

func TestPutReplaces(t *testing.T) {
	c := New("c1", Policy{})
	c.Put(q("a.example"), aEntry("a.example", 300), _epoch)
	c.Put(q("a.example"), aEntry("a.example", 999), _epoch)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	e, _ := c.Get(q("a.example"), _epoch)
	if e.Records[0].TTL != 999 {
		t.Errorf("TTL = %d, want replacement", e.Records[0].TTL)
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New("c1", Policy{})
	c.Put(q("a.example"), aEntry("a.example", 300), _epoch)
	if !c.Contains(q("a.example"), _epoch) {
		t.Error("Contains = false for cached entry")
	}
	if c.Contains(q("b.example"), _epoch) {
		t.Error("Contains = true for absent entry")
	}
	if c.Contains(q("a.example"), _epoch.Add(301*time.Second)) {
		t.Error("Contains = true for expired entry")
	}
	if s := c.SnapshotStats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("Contains perturbed stats: %+v", s)
	}
}

func TestFlush(t *testing.T) {
	c := New("c1", Policy{})
	c.Put(q("a.example"), aEntry("a.example", 300), _epoch)
	c.Put(q("b.example"), aEntry("b.example", 300), _epoch)
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Len = %d after Flush", c.Len())
	}
}

func TestFlushName(t *testing.T) {
	c := New("c1", Policy{})
	c.Put(q("a.example"), aEntry("a.example", 300), _epoch)
	txtQ := dnswire.Question{Name: "a.example.", Type: dnswire.TypeTXT, Class: dnswire.ClassIN}
	c.Put(txtQ, Entry{Records: []dnswire.RR{{Name: "a.example.", Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.TXTRecord{Strings: []string{"x"}}}}}, _epoch)
	c.Put(q("b.example"), aEntry("b.example", 300), _epoch)
	c.FlushName("A.Example")
	if c.Len() != 1 {
		t.Errorf("Len = %d after FlushName, want 1", c.Len())
	}
	if _, ok := c.Get(q("b.example"), _epoch); !ok {
		t.Error("unrelated entry flushed")
	}
}

func TestGetReturnsCopies(t *testing.T) {
	c := New("c1", Policy{})
	c.Put(q("a.example"), aEntry("a.example", 300), _epoch)
	e, _ := c.Get(q("a.example"), _epoch)
	e.Records[0].TTL = 1
	e2, _ := c.Get(q("a.example"), _epoch)
	if e2.Records[0].TTL != 300 {
		t.Error("Get exposed mutable internal state")
	}
}

func TestPutDefensiveCopy(t *testing.T) {
	c := New("c1", Policy{})
	entry := aEntry("a.example", 300)
	c.Put(q("a.example"), entry, _epoch)
	entry.Records[0].TTL = 1
	e, _ := c.Get(q("a.example"), _epoch)
	if e.Records[0].TTL != 300 {
		t.Error("Put aliased caller's slice")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New("c1", Policy{Capacity: 64})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				name := fmt.Sprintf("n%d.example", (id*7+j)%100)
				c.Put(q(name), aEntry(name, 300), _epoch)
				c.Get(q(name), _epoch)
				c.Contains(q(name), _epoch)
			}
		}(i)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}

func TestPropertyCapacityNeverExceeded(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cap := 1 + r.Intn(20)
		c := New("c", Policy{Capacity: cap})
		now := _epoch
		for i := 0; i < 200; i++ {
			c.Put(q(fmt.Sprintf("n%d.example", r.Intn(50))), aEntry("x.example", uint32(1+r.Intn(1000))), now)
			if c.Len() > cap {
				return false
			}
			now = now.Add(time.Duration(r.Intn(5)) * time.Second)
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyTTLDecayMonotonic(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New("c", Policy{})
		ttl := uint32(10 + r.Intn(1000))
		c.Put(q("a.example"), aEntry("a.example", ttl), _epoch)
		prev := ttl + 1
		for elapsed := 0; elapsed < int(ttl); elapsed += 1 + r.Intn(50) {
			e, ok := c.Get(q("a.example"), _epoch.Add(time.Duration(elapsed)*time.Second))
			if !ok {
				return false // must not expire before ttl
			}
			cur := e.Records[0].TTL
			if cur >= prev {
				return false // strictly decreasing across increasing elapsed
			}
			prev = cur
		}
		_, ok := c.Get(q("a.example"), _epoch.Add(time.Duration(ttl)*time.Second))
		return !ok
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyClampTTLWithinBounds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(minS, maxS uint16, ttlS uint32) bool {
		p := Policy{MinTTL: time.Duration(minS) * time.Second, MaxTTL: time.Duration(maxS) * time.Second}
		got := p.ClampTTL(time.Duration(ttlS) * time.Second)
		if p.MaxTTL > 0 && got > p.MaxTTL && got > p.MinTTL {
			return false
		}
		if p.MinTTL > 0 && got < p.MinTTL {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkCachePutGet(b *testing.B) {
	c := New("bench", Policy{Capacity: 4096})
	entry := aEntry("bench.example", 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		question := q(fmt.Sprintf("n%d.example", i%1000))
		c.Put(question, entry, _epoch)
		if _, ok := c.Get(question, _epoch); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkCacheGetHot(b *testing.B) {
	c := New("bench", Policy{})
	question := q("hot.example")
	c.Put(question, aEntry("hot.example", 300), _epoch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(question, _epoch); !ok {
			b.Fatal("miss")
		}
	}
}

// TestGetExpiresAtDecayedTTLZero is the regression test for the expiry-
// boundary bug: a fractional policy TTL (here MinTTL = 1500ms) gave the
// entry a fractional lifetime while the stored record TTLs truncate to
// whole seconds, so during the final partial second Get served records
// decayed to TTL 0 as fresh hits. The enforced semantics: an entry
// expires no later than the moment its decayed record TTL reaches 0.
func TestGetExpiresAtDecayedTTLZero(t *testing.T) {
	c := New("c1", Policy{MinTTL: 1500 * time.Millisecond})
	c.Put(q("a.example"), aEntry("a.example", 1), _epoch)

	// Within the whole-second lifetime the record is served with TTL 1.
	e, ok := c.Get(q("a.example"), _epoch.Add(500*time.Millisecond))
	if !ok {
		t.Fatal("entry missing inside its lifetime")
	}
	if e.Records[0].TTL != 1 {
		t.Fatalf("TTL = %d, want 1 inside the lifetime", e.Records[0].TTL)
	}

	// At 1.2s the served TTL would have decayed to 0: must be expired,
	// not a fresh hit.
	if e, ok := c.Get(q("a.example"), _epoch.Add(1200*time.Millisecond)); ok {
		t.Fatalf("TTL-0 record served as a fresh hit: %+v", e.Records)
	}
	if s := c.SnapshotStats(); s.Expired != 1 {
		t.Errorf("Expired = %d, want 1", s.Expired)
	}
}

// TestPutDropsSubSecondLifetime: a policy that clamps the lifetime below
// one second (MaxTTL = 500ms) would serve TTL-0 records for its whole
// lifetime; such entries are not stored at all (DNS TTLs are whole
// seconds, RFC 1035 §3.2.1).
func TestPutDropsSubSecondLifetime(t *testing.T) {
	c := New("c1", Policy{MaxTTL: 500 * time.Millisecond})
	c.Put(q("a.example"), aEntry("a.example", 300), _epoch)
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0 (sub-second lifetime must not be cached)", c.Len())
	}
}

// TestGetClockSkewDoesNotServeZeroTTL: a lookup timestamped before the
// store (virtual-clock rewind or skew) must not wrap the elapsed seconds
// into a huge unsigned value that zeroes every served TTL.
func TestGetClockSkewDoesNotServeZeroTTL(t *testing.T) {
	c := New("c1", Policy{})
	c.Put(q("a.example"), aEntry("a.example", 60), _epoch)
	e, ok := c.Get(q("a.example"), _epoch.Add(-2*time.Second))
	if !ok {
		t.Fatal("entry missing")
	}
	if e.Records[0].TTL != 60 {
		t.Fatalf("TTL = %d, want undecayed 60 when now precedes stored", e.Records[0].TTL)
	}
}

func TestSetMetricsCountsEvents(t *testing.T) {
	reg := metrics.New()
	c := New("p/cache-0", Policy{Capacity: 1})
	c.SetMetrics(reg)
	c.Put(q("a.example"), aEntry("a.example", 60), _epoch)
	c.Get(q("a.example"), _epoch)                     // hit
	c.Get(q("b.example"), _epoch)                     // miss
	c.Get(q("a.example"), _epoch.Add(61*time.Second)) // expired (+miss)
	c.Put(q("c.example"), aEntry("c.example", 60), _epoch)
	c.Put(q("d.example"), aEntry("d.example", 60), _epoch) // evicts c
	s := reg.Snapshot()
	for name, want := range map[string]int64{
		"dnscache.hits.p/cache-0":      1,
		"dnscache.misses.p/cache-0":    2,
		"dnscache.expired.p/cache-0":   1,
		"dnscache.evictions.p/cache-0": 1,
	} {
		if got := s.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
