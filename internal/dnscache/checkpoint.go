package dnscache

import "time"

// ItemState is one cache entry in serializable form: the question key, the
// stored response, and the absolute store/expiry instants on the simulated
// clock. TTL decay is not materialized — Get recomputes it from stored vs.
// now — so restoring the two timestamps restores the decay exactly.
type ItemState struct {
	Key     string
	Entry   Entry
	Stored  time.Time
	Expires time.Time
}

// CheckpointItems captures every live entry in LRU order, most recently
// used first. The order is part of the state: with a bounded capacity the
// next eviction victim depends on it.
func (c *Cache) CheckpointItems() []ItemState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ItemState, 0, len(c.items))
	for el := c.order.Front(); el != nil; el = el.Next() {
		it := el.Value.(*item)
		out = append(out, ItemState{Key: it.key, Entry: it.entry, Stored: it.stored, Expires: it.expires})
	}
	return out
}

// RestoreItems replaces the cache contents with the captured entries,
// preserving their MRU-first order (the order CheckpointItems emits).
// Entries are installed verbatim — no TTL clamping or capacity eviction is
// re-applied, since the captured state already reflects both.
func (c *Cache) RestoreItems(items []ItemState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[string]*item, len(items))
	c.order.Init()
	for _, st := range items {
		it := &item{key: st.Key, entry: st.Entry, stored: st.Stored, expires: st.Expires}
		it.lru = c.order.PushBack(it)
		c.items[st.Key] = it
	}
}

// RestoreStats overwrites the cache's local counters with a captured
// value. The registry-side counters are restored separately via the
// metrics snapshot; keeping both in the checkpoint keeps SnapshotStats
// and the registry in agreement after a restore.
func (c *Cache) RestoreStats(s Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = s
}
