package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// analyze writes the synthetic files (path -> source, paths relative to a
// temp module root) and runs the given analyzers over the whole tree.
func analyze(t *testing.T, files map[string]string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := Load(root, []Target{{Dir: root, Recursive: true}})
	if err != nil {
		t.Fatal(err)
	}
	return tree.Run(analyzers)
}

// wantDiags asserts the findings: each entry of want is a substring that
// must appear in the corresponding (position-sorted) diagnostic.
func wantDiags(t *testing.T, got []Diagnostic, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostic(s), want %d:\n%s", len(got), len(want), renderDiags(got))
	}
	for i, sub := range want {
		if !strings.Contains(got[i].String(), sub) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, got[i].String(), sub)
		}
	}
}

func renderDiags(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString("  " + d.String() + "\n")
	}
	return sb.String()
}

func TestWalltime(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  []string
	}{
		{
			name: "flags wall-clock reads outside internal/clock",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "time"
func Stamp() time.Time { return time.Now() }
func Nap()              { time.Sleep(time.Second) }
`},
			want: []string{"[walltime] time.Now", "[walltime] time.Sleep"},
		},
		{
			name: "flags aliased time import",
			files: map[string]string{"internal/foo/foo.go": `package foo
import clk "time"
func Stamp() clk.Time { return clk.Now() }
`},
			want: []string{"[walltime] time.Now"},
		},
		{
			name: "internal/clock is exempt",
			files: map[string]string{"internal/clock/clock.go": `package clock
import "time"
func Wall() time.Time { return time.Now() }
`},
			want: nil,
		},
		{
			name: "pure time values are legal",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "time"
const Epoch = 300 * time.Second
func Fixed() time.Time { return time.Date(2017, time.June, 26, 0, 0, 0, 0, time.UTC) }
`},
			want: nil,
		},
		{
			name: "local identifier named time does not match",
			files: map[string]string{"internal/foo/foo.go": `package foo
type ticker struct{ Now func() int }
func Use(time ticker) int { return time.Now() }
`},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, analyze(t, tc.files, []*Analyzer{Walltime}), tc.want...)
		})
	}
}

func TestDetrand(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  []string
	}{
		{
			name: "flags global-source draws and Seed",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "math/rand"
func Pick(n int) int { rand.Seed(1); return rand.Intn(n) }
`},
			want: []string{"[detrand] rand.Seed", "[detrand] rand.Intn"},
		},
		{
			name: "explicitly seeded RNG is legal",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "math/rand"
func Pick(n int) int { return rand.New(rand.NewSource(7)).Intn(n) }
func Inject(rng *rand.Rand, n int) int { return rng.Intn(n) }
`},
			want: nil,
		},
		{
			name: "flags math/rand/v2 global draws too",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "math/rand/v2"
func Pick(n int) int { return rand.IntN(n) + rand.Int() }
`},
			// rand/v2 renamed Intn to IntN; only the still-shared names are
			// denied, so Int() is caught here.
			want: []string{"[detrand] rand.Int"},
		},
		{
			name: "flags *rand.Rand captured by a goroutine literal",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "math/rand"
func Race(n int) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		go func() { _ = rng.Intn(n) }()
	}
}
`},
			want: []string{`[detrand] *rand.Rand "rng" is captured by a goroutine literal`},
		},
		{
			name: "flags an injected RNG parameter captured by a goroutine",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "math/rand"
func Fan(rng *rand.Rand, n int) {
	go func() { _ = rng.Int63() }()
}
`},
			want: []string{`[detrand] *rand.Rand "rng" is captured by a goroutine literal`},
		},
		{
			name: "goroutine with its own RNG parameter is legal",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "math/rand"
func Fan(seed int64, n int) {
	outer := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		go func(r *rand.Rand) { _ = r.Intn(n) }(rand.New(rand.NewSource(outer.Int63())))
	}
}
`},
			want: nil,
		},
		{
			name: "goroutine deriving its RNG locally is legal",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "math/rand"
func Fan(seed int64, n int) {
	for i := 0; i < n; i++ {
		i := i
		go func() {
			rng := rand.New(rand.NewSource(seed + int64(i)))
			_ = rng.Intn(n)
		}()
	}
}
`},
			want: nil,
		},
		{
			name: "goroutine capture honours the allow escape",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "math/rand"
func Race(rng *rand.Rand, n int) {
	go func() {
		_ = rng.Intn(n) //cdelint:allow detrand single goroutine, rng not used after spawn
	}()
}
`},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, analyze(t, tc.files, []*Analyzer{Detrand}), tc.want...)
		})
	}
}

func TestCtxflow(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  []string
	}{
		{
			name: "exported blocking function must accept a context",
			files: map[string]string{"internal/udpnet/x.go": `package udpnet
import "net"
func Pump(conn net.Conn) error { buf := make([]byte, 16); _, err := conn.Read(buf); return err }
`},
			want: []string{"[ctxflow] exported Pump blocks on I/O (Read)"},
		},
		{
			name: "context parameter must be used",
			files: map[string]string{"internal/platform/x.go": `package platform
import "context"
func Resolve(ctx context.Context, name string) string { return name }
`},
			want: []string{"[ctxflow] exported Resolve accepts context parameter \"ctx\" but never uses it"},
		},
		{
			name: "blank context parameter is flagged",
			files: map[string]string{"internal/authns/x.go": `package authns
import "context"
func Answer(_ context.Context, name string) string { return name }
`},
			want: []string{"[ctxflow] exported Answer accepts a context.Context but discards it"},
		},
		{
			name: "threaded context is legal",
			files: map[string]string{"internal/udpnet/x.go": `package udpnet
import (
	"context"
	"net"
)
func Pump(ctx context.Context, conn net.Conn) error {
	if err := ctx.Err(); err != nil { return err }
	buf := make([]byte, 16)
	_, err := conn.Read(buf)
	return err
}
`},
			want: nil,
		},
		{
			name: "unexported helpers and non-target packages are exempt",
			files: map[string]string{
				"internal/udpnet/x.go": `package udpnet
import "net"
func pump(conn net.Conn) error { buf := make([]byte, 16); _, err := conn.Read(buf); return err }
`,
				"internal/stats/x.go": `package stats
import "net"
func Pump(conn net.Conn) error { buf := make([]byte, 16); _, err := conn.Read(buf); return err }
`,
			},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, analyze(t, tc.files, []*Analyzer{Ctxflow}), tc.want...)
		})
	}
}

func TestMutexcopy(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  []string
	}{
		{
			name: "value receiver on mutex holder",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "sync"
type Counter struct {
	mu sync.Mutex
	n  int
}
func (c Counter) Get() int { return c.n }
`},
			want: []string{"[mutexcopy] method Get has a value receiver but Counter contains a mutex"},
		},
		{
			name: "embedded mutex holder propagates",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "sync"
type base struct{ mu sync.RWMutex }
type Wrapper struct {
	base
	n int
}
func (w Wrapper) Get() int { return w.n }
`},
			want: []string{"[mutexcopy] method Get has a value receiver but Wrapper contains a mutex"},
		},
		{
			name: "pointer receivers and mutex-free values are legal",
			files: map[string]string{"internal/foo/foo.go": `package foo
import "sync"
type Counter struct {
	mu sync.Mutex
	n  int
}
func (c *Counter) Get() int { c.mu.Lock(); defer c.mu.Unlock(); return c.n }
type Point struct{ X, Y int }
func (p Point) Sum() int { return p.X + p.Y }
type Shared struct{ mu *sync.Mutex }
func (s Shared) Ptr() *sync.Mutex { return s.mu }
`},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, analyze(t, tc.files, []*Analyzer{Mutexcopy}), tc.want...)
		})
	}
}

func TestGoleak(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  []string
	}{
		{
			name: "unsignalled goroutine literal",
			files: map[string]string{"internal/foo/foo.go": `package foo
func Spawn() {
	go func() { println("orphan") }()
}
`},
			want: []string{"[goleak] goroutine has no visible cancellation or completion signal"},
		},
		{
			name: "context, waitgroup and channel signals are legal",
			files: map[string]string{"internal/foo/foo.go": `package foo
import (
	"context"
	"sync"
)
func Spawn(ctx context.Context, ch chan int) {
	go func() { <-ctx.Done() }()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); println("counted") }()
	go func() { ch <- 1 }()
	wg.Wait()
}
`},
			want: nil,
		},
		{
			name: "package main is exempt",
			files: map[string]string{"cmd/foo/main.go": `package main
func main() {
	go func() { println("fire and forget") }()
}
`},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, analyze(t, tc.files, []*Analyzer{Goleak}), tc.want...)
		})
	}
}

func TestWiresafe(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  []string
	}{
		{
			name: "unchecked wire indexing",
			files: map[string]string{"internal/dnswire/x.go": `package dnswire
func Peek(wire []byte, off int) byte { return wire[off] }
`},
			want: []string{`[wiresafe] indexing wire buffer "wire" without a preceding bounds check`},
		},
		{
			name: "unchecked slicing",
			files: map[string]string{"internal/dnswire/x.go": `package dnswire
func Tail(wire []byte, off int) []byte { return wire[off:] }
`},
			want: []string{`[wiresafe] indexing wire buffer "wire"`},
		},
		{
			name: "len guard makes indexing legal",
			files: map[string]string{"internal/dnswire/x.go": `package dnswire
func Peek(wire []byte, off int) byte {
	if off >= len(wire) { return 0 }
	return wire[off]
}
`},
			want: nil,
		},
		{
			name: "offset comparison against a caller-validated end is legal",
			files: map[string]string{"internal/dnswire/x.go": `package dnswire
func Window(wire []byte, off, end int) []byte {
	if off+2 > end { return nil }
	return wire[off:end]
}
`},
			want: nil,
		},
		{
			name: "full slice and non-wire packages are exempt",
			files: map[string]string{
				"internal/dnswire/x.go": `package dnswire
func Copy(wire []byte) []byte { out := append([]byte(nil), wire[:]...); return out }
`,
				"internal/zone/x.go": `package zone
func Peek(data []byte, off int) byte { return data[off] }
`,
			},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, analyze(t, tc.files, []*Analyzer{Wiresafe}), tc.want...)
		})
	}
}

func TestAllowSuppression(t *testing.T) {
	t.Run("end-of-line and standalone forms suppress", func(t *testing.T) {
		diags := analyze(t, map[string]string{"internal/foo/foo.go": `package foo
import "time"
func Stamp() time.Time { return time.Now() } //cdelint:allow walltime deliberate wall-clock read for this test
//cdelint:allow walltime standalone form covers the next line
func Stamp2() time.Time { return time.Now() }
`}, []*Analyzer{Walltime})
		wantDiags(t, diags)
	})
	t.Run("allow only silences the named analyzer", func(t *testing.T) {
		diags := analyze(t, map[string]string{"internal/foo/foo.go": `package foo
import (
	"math/rand"
	"time"
)
//cdelint:allow detrand suppressing the wrong analyzer must not help
func Stamp() int64 { _ = rand.Intn(3); return time.Now().Unix() }
`}, []*Analyzer{Walltime, Detrand})
		wantDiags(t, diags, "[walltime] time.Now")
	})
	t.Run("allow without a reason is itself a finding", func(t *testing.T) {
		diags := analyze(t, map[string]string{"internal/foo/foo.go": `package foo
//cdelint:allow walltime
func Nothing() {}
`}, []*Analyzer{Walltime})
		wantDiags(t, diags, "[cdelint] allow comment needs an analyzer name and a reason")
	})
}

func TestLoadSkipsTestsAndHiddenDirs(t *testing.T) {
	diags := analyze(t, map[string]string{
		"internal/foo/foo_test.go": `package foo
import "time"
func stamp() time.Time { return time.Now() }
`,
		"internal/foo/testdata/gen.go": `package gen
import "time"
func stamp() time.Time { return time.Now() }
`,
		"internal/foo/foo.go": `package foo
func Nothing() {}
`,
	}, []*Analyzer{Walltime})
	wantDiags(t, diags)
}

func TestFindModuleRoot(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module example.test\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	nested := filepath.Join(root, "a", "b")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	got, err := FindModuleRoot(nested)
	if err != nil {
		t.Fatal(err)
	}
	// Resolve symlinks so the comparison survives /tmp indirection.
	want, _ := filepath.EvalSymlinks(root)
	gotResolved, _ := filepath.EvalSymlinks(got)
	if gotResolved != want {
		t.Errorf("FindModuleRoot = %q, want %q", got, root)
	}
}
