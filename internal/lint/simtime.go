package lint

import (
	"go/ast"
	"go/types"
)

// Simtime is the type-aware successor to walltime for the simulation
// packages: netsim, scenario and experiments must run entirely on
// simulated time (clock.Clock, charged latencies, per-flow counters), so
// a wall-clock read laundered through a module-internal helper is just as
// damaging as a direct time.Now — the reports stop being a pure function
// of (scenario, seed). Simtime computes, over the whole module, which
// functions reach the wall clock through static calls, and flags every
// call site in a simulation package whose callee carries that taint.
//
// Division of labour with walltime: walltime flags the direct call sites
// of its denied set everywhere; simtime adds (a) time.Since/time.Until —
// legal elsewhere for real-socket RTTs — inside the simulation packages,
// and (b) transitive reach through module helpers. Paths through the
// clock.Clock interface are structurally invisible to the static call
// graph, which is exactly the point: an injected clock is the approved
// way to consume time. A wall-clock call site suppressed for simtime
// does not taint its callers.
var Simtime = &Analyzer{
	Name: "simtime",
	Doc:  "simulation packages (netsim, its des core, scenario, experiments) must not reach the wall clock, even through module-internal helpers",
	Run:  runSimtime,
}

// simtimeRoots are the packages whose results must be wall-clock-free.
// internal/campaign is included because its run core (runner.go) must
// stay a pure function of (spec, run index); the campaign scheduler's
// tick loop is the one annotated wall-clock boundary inside it.
var simtimeRoots = map[string]bool{
	"internal/netsim":      true,
	"internal/netsim/des":  true,
	"internal/scenario":    true,
	"internal/experiments": true,
	"internal/campaign":    true,
	"internal/worldstate":  true,
}

// simtimeDenied extends walltime's set with the measurement pair: on a
// simulated path even Since/Until leak host timing into results.
var simtimeDenied = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

// wallTaint records how a function reaches the wall clock.
type wallTaint struct {
	// via is the module callee the taint arrives through (nil when the
	// function calls time directly).
	via *types.Func
	// source is the time package function ultimately reached.
	source string
}

// wallClockTaint computes (once per tree) the module functions that reach
// a denied time function through static calls. internal/clock is the
// sanctioned wall-clock boundary and never taints.
func wallClockTaint(t *Tree) map[*types.Func]*wallTaint {
	return memoize(t, "simtime.taint", func() map[*types.Func]*wallTaint {
		funcs := moduleFuncs(t)
		taint := map[*types.Func]*wallTaint{}
		// Seed: functions with a direct, unsuppressed denied call.
		for _, fi := range sortedFuncs(funcs) {
			if fi.Pkg.RelPath == "internal/clock" {
				continue
			}
			fi := fi
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				if taint[fi.Obj] != nil {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := pkgFunc(t.Info, call, "time")
				if ok && simtimeDenied[name] && !t.suppressed(call.Pos(), "simtime") {
					taint[fi.Obj] = &wallTaint{source: "time." + name}
					return false
				}
				return true
			})
		}
		// Propagate backwards over static call edges to a fixpoint.
		for changed := true; changed; {
			changed = false
			for _, fi := range sortedFuncs(funcs) {
				if taint[fi.Obj] != nil || fi.Pkg.RelPath == "internal/clock" {
					continue
				}
				for _, callee := range staticCallees(t, funcs, fi) {
					ct := taint[callee]
					if ct == nil {
						continue
					}
					taint[fi.Obj] = &wallTaint{via: callee, source: ct.source}
					changed = true
					break
				}
			}
		}
		return taint
	})
}

func runSimtime(p *Pass) {
	if !simtimeRoots[p.Pkg.RelPath] {
		return
	}
	t := p.Tree
	taint := wallClockTaint(t)
	funcs := moduleFuncs(t)
	info := p.Info()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Direct Since/Until: the part of the denied set walltime does
			// not already report (avoiding duplicate findings per site).
			if name, ok := pkgFunc(info, call, "time"); ok {
				if simtimeDenied[name] && !walltimeDenied[name] {
					p.Reportf(call.Pos(),
						"time.%s measures the wall clock inside a simulation package; derive durations from the simulated clock", name)
				}
				return true
			}
			// Transitive: a module callee that reaches the wall clock.
			callee := staticCallee(info, call)
			if callee == nil {
				return true
			}
			ct := taint[callee]
			if ct == nil {
				return true
			}
			if _, inModule := funcs[callee]; !inModule {
				return true
			}
			p.Reportf(call.Pos(), "call to %s reaches %s (%s); thread a clock.Clock through instead",
				funcDisplayName(callee), ct.source, taintChain(taint, callee))
			return true
		})
	}
}

// taintChain renders the helper chain from fn to the wall-clock source,
// e.g. "helperA → helperB → time.Now".
func taintChain(taint map[*types.Func]*wallTaint, fn *types.Func) string {
	out := funcDisplayName(fn)
	for hops := 0; hops < 10; hops++ {
		ct := taint[fn]
		if ct == nil {
			break
		}
		if ct.via == nil {
			return out + " → " + ct.source
		}
		fn = ct.via
		out += " → " + funcDisplayName(fn)
	}
	return out
}
