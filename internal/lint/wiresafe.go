package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Wiresafe guards the DNS wire-format decoder: indexing an attacker-
// controlled wire buffer without a preceding bounds check is how parsers
// panic on truncated or malicious datagrams. Within internal/dnswire,
// every index or slice expression on a []byte parameter must be preceded
// (in the same function) by either a len(<buf>) call or a comparison
// mentioning one of the offset variables used in the index.
var Wiresafe = &Analyzer{
	Name: "wiresafe",
	Doc:  "in internal/dnswire, slice indexing on wire buffers must follow a bounds check in the same function",
	Run:  runWiresafe,
}

// wiresafeTargets are the packages that decode untrusted wire bytes.
var wiresafeTargets = map[string]bool{
	"internal/dnswire": true,
}

func runWiresafe(p *Pass) {
	if !wiresafeTargets[p.Pkg.RelPath] {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			bufs := byteSliceParams(p, fn)
			if len(bufs) == 0 {
				continue
			}
			checkWireIndexing(p, fn, bufs)
		}
	}
}

// byteSliceParams returns the names of fn's parameters whose type is (or
// is a named alias of) []byte, resolved through the type checker.
func byteSliceParams(p *Pass, fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fn.Type.Params == nil {
		return out
	}
	for _, field := range fn.Type.Params.List {
		tv, ok := p.Info().Types[field.Type]
		if !ok {
			continue
		}
		slice, ok := tv.Type.Underlying().(*types.Slice)
		if !ok {
			continue
		}
		basic, ok := slice.Elem().(*types.Basic)
		if !ok || basic.Kind() != types.Byte && basic.Kind() != types.Uint8 {
			continue
		}
		for _, name := range field.Names {
			out[name.Name] = true
		}
	}
	return out
}

// checkWireIndexing walks fn's body in source order, recording bounds
// evidence (len(<buf>) calls and comparisons) and flagging buffer indexing
// that no earlier evidence covers.
func checkWireIndexing(p *Pass, fn *ast.FuncDecl, bufs map[string]bool) {
	// lenPos[buf] holds positions of len(buf) calls; cmpIdents holds, per
	// comparison position, the identifier names it mentions.
	lenPos := map[string][]token.Pos{}
	type cmp struct {
		pos    token.Pos
		idents map[string]bool
	}
	var cmps []cmp

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "len" && len(x.Args) == 1 {
				if arg, ok := x.Args[0].(*ast.Ident); ok && bufs[arg.Name] {
					lenPos[arg.Name] = append(lenPos[arg.Name], x.Pos())
				}
			}
		case *ast.BinaryExpr:
			switch x.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				c := cmp{pos: x.Pos(), idents: map[string]bool{}}
				ast.Inspect(x, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						c.idents[id.Name] = true
					}
					return true
				})
				cmps = append(cmps, c)
			}
		}
		return true
	})

	covered := func(buf string, at token.Pos, offsetIdents map[string]bool) bool {
		for _, pos := range lenPos[buf] {
			if pos < at {
				return true
			}
		}
		for _, c := range cmps {
			if c.pos >= at {
				continue
			}
			for name := range offsetIdents {
				if c.idents[name] {
					return true
				}
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var (
			base    ast.Expr
			offsets []ast.Expr
			pos     token.Pos
		)
		switch x := n.(type) {
		case *ast.IndexExpr:
			base, offsets, pos = x.X, []ast.Expr{x.Index}, x.Pos()
		case *ast.SliceExpr:
			if x.Low == nil && x.High == nil {
				return true // buf[:] never panics
			}
			base, offsets, pos = x.X, []ast.Expr{x.Low, x.High, x.Max}, x.Pos()
		default:
			return true
		}
		id, ok := base.(*ast.Ident)
		if !ok || !bufs[id.Name] {
			return true
		}
		offsetIdents := map[string]bool{}
		for _, off := range offsets {
			if off == nil {
				continue
			}
			ast.Inspect(off, func(m ast.Node) bool {
				if oid, ok := m.(*ast.Ident); ok {
					offsetIdents[oid.Name] = true
				}
				return true
			})
		}
		if !covered(id.Name, pos, offsetIdents) {
			p.Reportf(pos,
				"indexing wire buffer %q without a preceding bounds check (len(%s) or an offset comparison) in this function", id.Name, id.Name)
		}
		return true
	})
}
