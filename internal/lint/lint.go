// Package lint implements cdelint, the project-specific static-analysis
// suite. It turns the repository's determinism, context-flow and
// wire-safety conventions into machine-checked invariants:
//
//   - walltime:   wall-clock reads stay behind the clock.Clock abstraction
//   - detrand:    math/rand is always injected or explicitly seeded
//   - ctxflow:    blocking exported APIs accept and use a context.Context
//   - mutexcopy:  no value receivers on types guarding state with a mutex
//   - goleak:     goroutines carry a visible cancellation/completion signal
//   - wiresafe:   wire-buffer indexing is preceded by a bounds check
//   - hotalloc:   //cdelint:hotpath functions (and their static callees)
//     stay free of heap-allocating constructs
//   - exhaustive: switches over enum-like const sets cover every member or
//     carry a default that fails loudly
//   - simtime:    nothing reachable from the simulation packages touches
//     the wall clock, even through module-internal helpers
//   - errflow:    errors crossing package boundaries wrap with %w, and
//     wire/IO paths never discard error returns
//
// The engine is deliberately stdlib-only (go/ast, go/parser, go/types,
// go/importer): the repository has no module dependencies and the linter
// must not add one. Since PR 6 the engine type-checks the whole module —
// module-internal imports are resolved from the source tree and standard-
// library imports through the stdlib source importer — so analyzers see
// object identity, signatures and cross-package call structure instead of
// raw syntax, and can exchange facts about objects through the Tree's
// fact store. `//cdelint:allow <analyzer>[,<analyzer>...] <reason>` is the
// escape hatch for deliberate exceptions.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// AllowPrefix introduces a suppression comment. The full form is
// `//cdelint:allow <analyzer>[,<analyzer>...] <reason>`; it silences the
// named analyzers on the comment's line and on the line that follows it.
// A reason is mandatory — an allow comment without one is itself a
// finding, as is an unknown analyzer name.
const AllowPrefix = "cdelint:allow"

// HotpathMarker annotates a function whose static call closure must stay
// free of heap-allocating constructs; see the hotalloc analyzer.
const HotpathMarker = "cdelint:hotpath"

// Diagnostic is one finding, positioned in the source tree.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the file:line:col style editors parse.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// File is one parsed non-test source file.
type File struct {
	Path string
	AST  *ast.File
	// allow maps a line number to the analyzer names suppressed there.
	allow map[int][]string
}

// allowedAt reports whether analyzer is suppressed on line.
func (f *File) allowedAt(line int, analyzer string) bool {
	for _, name := range f.allow[line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}

// Package is a directory of non-test files belonging to one Go package,
// parsed and type-checked.
type Package struct {
	Dir        string // filesystem directory
	Name       string // package name from the source
	RelPath    string // slash-separated path relative to the module root
	ImportPath string // module-qualified import path ("" outside a module)
	Files      []*File

	// Types is the type-checked package object; nil only if checking
	// failed catastrophically. TypeErrors collects soft type errors —
	// the engine analyzes what it can rather than refusing the tree.
	Types      *types.Package
	TypeErrors []error

	// implicit marks a package loaded only as a dependency of a lint
	// target: analyzers traverse it (facts, call graph) but findings in
	// it are not reported.
	implicit bool
}

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass gives an analyzer access to one package plus the whole-program
// view: merged type information, the fact store and the module call graph.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Tree     *Tree

	diags *[]Diagnostic
}

// Info returns the merged type information covering every loaded file.
func (p *Pass) Info() *types.Info { return p.Tree.Info }

// Reportf records a finding at pos unless an allow comment suppresses it
// or the position falls in an implicitly loaded dependency package.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Pkg.implicit {
		return
	}
	position := p.Fset.Position(pos)
	for _, f := range p.Pkg.Files {
		if f.Path == position.Filename && f.allowedAt(position.Line, p.Analyzer.Name) {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether analyzer `name` is allow-listed at pos; used
// by fact-generating analyzers to keep annotated exceptions from
// propagating through the call graph.
func (t *Tree) suppressed(pos token.Pos, name string) bool {
	position := t.Fset.Position(pos)
	pkg := t.byFile[position.Filename]
	if pkg == nil {
		return false
	}
	for _, f := range pkg.Files {
		if f.Path == position.Filename {
			return f.allowedAt(position.Line, name)
		}
	}
	return false
}

// ExportFact attaches a named fact to obj, visible to later ImportFact
// calls from any package — the cross-package channel for analyses like
// simtime's wall-clock reachability.
func (p *Pass) ExportFact(obj types.Object, name string, val any) {
	p.Tree.facts[factKey{obj, name}] = val
}

// ImportFact retrieves a fact exported for obj under name.
func (p *Pass) ImportFact(obj types.Object, name string) (any, bool) {
	v, ok := p.Tree.facts[factKey{obj, name}]
	return v, ok
}

type factKey struct {
	obj  types.Object
	name string
}

// Target selects a directory to lint. Non-recursive targets lint exactly
// that directory; recursive targets (the `dir/...` form) walk the subtree.
type Target struct {
	Dir       string
	Recursive bool
}

// Tree is a loaded, type-checked source tree ready to be analyzed.
type Tree struct {
	Fset *token.FileSet
	// Packages holds the lint targets plus any module-internal
	// dependencies loaded to type-check them, in dependency order
	// (every package appears after its module-internal imports).
	Packages []*Package
	// Info merges the type information of every loaded file; positions
	// are unique across the tree, so one map set serves all packages.
	Info *types.Info
	// ModulePath is the module path from go.mod ("" when absent).
	ModulePath string

	moduleRoot   string
	byImportPath map[string]*Package
	byRelPath    map[string]*Package
	byFile       map[string]*Package
	checking     map[string]bool
	typeErrs     []error

	// preDiags holds engine-level findings discovered during loading:
	// malformed allow comments and unknown analyzer names in them.
	preDiags []Diagnostic

	facts map[factKey]any
	memo  map[string]any
}

// memoize caches an expensive whole-tree computation (call graph, hotpath
// closure, wall-clock facts) under key for the Tree's lifetime.
func memoize[T any](t *Tree, key string, build func() T) T {
	if v, ok := t.memo[key]; ok {
		return v.(T)
	}
	v := build()
	t.memo[key] = v
	return v
}

// sharedFset is the process-wide file set. Sharing one across Load calls
// lets the stdlib source importer type-check the standard library once per
// process instead of once per loaded tree.
var sharedFset = token.NewFileSet()

var (
	stdOnce sync.Once
	stdImp  types.ImporterFrom
	stdMu   sync.Mutex
)

// stdImporter returns the shared standard-library importer, which
// type-checks stdlib packages from $GOROOT/src.
func stdImporter() types.ImporterFrom {
	stdOnce.Do(func() {
		// The source importer shells out to the cgo tool for packages with
		// cgo files; forcing CgoEnabled off selects the pure-Go variants
		// (net's Go resolver, etc.), which type-check hermetically.
		build.Default.CgoEnabled = false
		stdImp = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	})
	return stdImp
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod, which anchors the RelPath of every loaded package.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// readModulePath extracts the module path from moduleRoot's go.mod; it
// returns "" (not an error) when the file is missing or has no module
// directive, which disables module-internal import resolution.
func readModulePath(moduleRoot string) string {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Load parses and type-checks every non-test Go file reachable from
// targets, plus any module-internal packages they import. Package paths
// are recorded relative to moduleRoot so analyzers can match on stable
// locations like "internal/clock" regardless of where the tree lives.
func Load(moduleRoot string, targets []Target) (*Tree, error) {
	tree := &Tree{
		Fset:       sharedFset,
		ModulePath: readModulePath(moduleRoot),
		moduleRoot: moduleRoot,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Instances:  map[*ast.Ident]types.Instance{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
		byImportPath: map[string]*Package{},
		byRelPath:    map[string]*Package{},
		byFile:       map[string]*Package{},
		checking:     map[string]bool{},
		facts:        map[factKey]any{},
		memo:         map[string]any{},
	}

	var roots []*Package
	seen := map[string]bool{}
	for _, tgt := range targets {
		dirs, err := expandTarget(tgt)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			abs, err := filepath.Abs(dir)
			if err != nil {
				return nil, err
			}
			if seen[abs] {
				continue
			}
			seen[abs] = true
			pkg, err := tree.loadDir(abs, false)
			if err != nil {
				return nil, err
			}
			if pkg != nil {
				roots = append(roots, pkg)
			}
		}
	}
	// Type-check targets in a stable order; checking appends each package
	// (dependencies first) to tree.Packages as it completes.
	sort.Slice(roots, func(i, j int) bool { return roots[i].RelPath < roots[j].RelPath })
	for _, pkg := range roots {
		if err := tree.check(pkg); err != nil {
			return nil, err
		}
	}
	return tree, nil
}

// expandTarget resolves a Target to the concrete directories it covers.
func expandTarget(tgt Target) ([]string, error) {
	if !tgt.Recursive {
		return []string{tgt.Dir}, nil
	}
	var dirs []string
	err := filepath.WalkDir(tgt.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != tgt.Dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// loadDir parses the non-test Go files of one directory; it returns nil
// when the directory holds no lintable Go files. Re-loading a directory
// returns the cached package (promoting it to a lint target when implicit
// is false).
func (t *Tree) loadDir(dir string, implicit bool) (*Package, error) {
	rel, err := filepath.Rel(t.moduleRoot, dir)
	if err != nil {
		return nil, err
	}
	relPath := filepath.ToSlash(rel)
	if pkg, ok := t.byRelPath[relPath]; ok {
		if !implicit {
			pkg.implicit = false
		}
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, RelPath: relPath, implicit: implicit}
	if t.ModulePath != "" {
		pkg.ImportPath = t.ModulePath
		if relPath != "." {
			pkg.ImportPath += "/" + relPath
		}
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		astFile, err := parser.ParseFile(t.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		f := &File{Path: path, AST: astFile, allow: map[int][]string{}}
		t.collectAllows(f)
		pkg.Files = append(pkg.Files, f)
		t.byFile[path] = pkg
		if pkg.Name == "" {
			pkg.Name = astFile.Name.Name
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	t.byRelPath[relPath] = pkg
	if pkg.ImportPath != "" {
		t.byImportPath[pkg.ImportPath] = pkg
	}
	return pkg, nil
}

// check type-checks pkg (once), resolving module-internal imports through
// the tree and everything else through the stdlib source importer. It
// appends pkg to t.Packages after its dependencies, yielding a dependency-
// ordered package list for fact propagation.
func (t *Tree) check(pkg *Package) error {
	if pkg.Types != nil || t.checking[pkg.RelPath] {
		return nil
	}
	t.checking[pkg.RelPath] = true
	defer delete(t.checking, pkg.RelPath)

	conf := types.Config{
		Importer: &treeImporter{tree: t},
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	files := make([]*ast.File, len(pkg.Files))
	for i, f := range pkg.Files {
		files[i] = f.AST
	}
	path := pkg.ImportPath
	if path == "" {
		path = pkg.RelPath
	}
	// Check records everything it can even when it returns an error;
	// type errors were already captured per-package above.
	tpkg, _ := conf.Check(path, t.Fset, files, t.Info)
	pkg.Types = tpkg
	t.Packages = append(t.Packages, pkg)
	return nil
}

// treeImporter resolves imports for type-checking: module-internal paths
// load (and check) the corresponding source directory, the standard
// library goes through the shared source importer, and anything
// unresolvable degrades to an empty placeholder package so analysis can
// proceed on partial information.
type treeImporter struct {
	tree *Tree
}

func (ti *treeImporter) Import(path string) (*types.Package, error) {
	return ti.ImportFrom(path, "", 0)
}

func (ti *treeImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	t := ti.tree
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := t.moduleRel(path); ok {
		if pkg, err := t.loadDir(filepath.Join(t.moduleRoot, filepath.FromSlash(rel)), true); err == nil && pkg != nil {
			if err := t.check(pkg); err == nil && pkg.Types != nil {
				return pkg.Types, nil
			}
		}
		return placeholder(path), nil
	}
	stdMu.Lock()
	defer stdMu.Unlock()
	pkg, err := stdImporter().Import(path)
	if err != nil || pkg == nil {
		t.typeErrs = append(t.typeErrs, fmt.Errorf("lint: importing %s: %w", path, err))
		return placeholder(path), nil
	}
	return pkg, nil
}

// moduleRel maps a module-internal import path to its directory relative
// to the module root.
func (t *Tree) moduleRel(path string) (string, bool) {
	if t.ModulePath == "" {
		return "", false
	}
	if path == t.ModulePath {
		return ".", true
	}
	if rel, ok := strings.CutPrefix(path, t.ModulePath+"/"); ok {
		return rel, true
	}
	return "", false
}

// placeholder builds an empty, complete package for an unresolvable
// import; member uses will carry invalid types, which analyzers treat as
// "unknown" rather than erroring out.
func placeholder(path string) *types.Package {
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	return pkg
}

// knownAnalyzerNames is the set accepted in allow comments.
var knownAnalyzerNames = func() map[string]bool {
	m := map[string]bool{"all": true, "cdelint": true}
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}()

// collectAllows indexes the file's `//cdelint:allow` comments by line. It
// records a pre-diagnostic for an allow comment lacking a reason and for
// each unknown analyzer name — a typo'd name would otherwise silently
// suppress nothing and lull the author into believing it did.
func (t *Tree) collectAllows(f *File) {
	for _, group := range f.AST.Comments {
		for _, c := range group.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, AllowPrefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, AllowPrefix))
			pos := t.Fset.Position(c.Pos())
			if len(fields) < 2 {
				t.preDiags = append(t.preDiags, Diagnostic{
					Pos:      pos,
					Analyzer: "cdelint",
					Message:  "allow comment needs an analyzer name and a reason: //cdelint:allow <analyzer>[,<analyzer>] <reason>",
				})
				continue
			}
			for _, name := range strings.Split(fields[0], ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				if !knownAnalyzerNames[name] {
					t.preDiags = append(t.preDiags, Diagnostic{
						Pos:      pos,
						Analyzer: "cdelint",
						Message:  fmt.Sprintf("allow comment names unknown analyzer %q (known: %s)", name, strings.Join(sortedAnalyzerNames(), ", ")),
					})
					continue
				}
				// Suppress on the comment's own line (end-of-line form) and
				// on the line that follows (standalone form).
				f.allow[pos.Line] = append(f.allow[pos.Line], name)
				f.allow[pos.Line+1] = append(f.allow[pos.Line+1], name)
			}
		}
	}
}

func sortedAnalyzerNames() []string {
	names := make([]string, 0, len(knownAnalyzerNames))
	for name := range knownAnalyzerNames {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Run applies analyzers to every loaded package — lint targets and their
// module-internal dependencies, in dependency order so cross-package
// facts flow bottom-up — and returns the findings sorted by position.
// Findings are only reported in target packages.
func (t *Tree) Run(analyzers []*Analyzer) []Diagnostic {
	diags := append([]Diagnostic(nil), t.preDiags...)
	for _, a := range analyzers {
		for _, pkg := range t.Packages {
			a.Run(&Pass{Analyzer: a, Fset: t.Fset, Pkg: pkg, Tree: t, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Walltime, Detrand, Ctxflow, Mutexcopy, Goleak, Wiresafe,
		Hotalloc, Exhaustive, Simtime, Errflow,
	}
}

// Select returns the analyzers whose names appear in the comma-separated
// list; an empty list selects the full suite. Unknown names error.
func Select(list string) ([]*Analyzer, error) {
	if strings.TrimSpace(list) == "" {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// --- typed helpers shared by the analyzers ---

// pkgFunc resolves call to a function of the package with the given
// import path ("time", "math/rand", ...) and returns its name. Resolution
// is type-based, so aliased imports and shadowing are handled exactly.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	return fn.Name(), true
}

// staticCallee resolves a call expression to the function or method it
// statically invokes: a plain function, a package-qualified function, or
// a method called on a concrete (non-interface) receiver. Calls through
// interfaces and function values return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal || types.IsInterface(sel.Recv()) {
				return nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// FuncInfo describes one module function declaration.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	File *File
	// Hotpath is set when the declaration's doc comment carries the
	// //cdelint:hotpath marker.
	Hotpath bool
}

// moduleFuncs indexes every function declaration of every loaded package
// by its type object.
func moduleFuncs(t *Tree) map[*types.Func]*FuncInfo {
	return memoize(t, "lint.funcs", func() map[*types.Func]*FuncInfo {
		funcs := map[*types.Func]*FuncInfo{}
		for _, pkg := range t.Packages {
			for _, f := range pkg.Files {
				for _, decl := range f.AST.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					obj, ok := t.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					funcs[obj] = &FuncInfo{
						Obj:     obj,
						Decl:    fd,
						Pkg:     pkg,
						File:    f,
						Hotpath: hasMarker(fd.Doc, HotpathMarker),
					}
				}
			}
		}
		return funcs
	})
}

// hasMarker reports whether the comment group contains a line comment
// whose content is exactly the given marker.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == marker {
			return true
		}
	}
	return false
}

// staticCallees returns fn's statically resolvable callees that are
// declared in the module, deduplicated, in source order.
func staticCallees(t *Tree, funcs map[*types.Func]*FuncInfo, fn *FuncInfo) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(t.Info, call)
		if callee == nil || seen[callee] {
			return true
		}
		if _, inModule := funcs[callee]; inModule {
			seen[callee] = true
			out = append(out, callee)
		}
		return true
	})
	return out
}

// sortedFuncs returns the module functions in deterministic source order.
func sortedFuncs(funcs map[*types.Func]*FuncInfo) []*FuncInfo {
	out := make([]*FuncInfo, 0, len(funcs))
	for _, fi := range funcs {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// funcDisplayName renders a function name for diagnostics, qualifying
// methods with their receiver type and functions with their package.
func funcDisplayName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
