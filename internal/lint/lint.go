// Package lint implements cdelint, the project-specific static-analysis
// suite. It turns the repository's determinism, context-flow and
// wire-safety conventions into machine-checked invariants:
//
//   - walltime:  wall-clock reads stay behind the clock.Clock abstraction
//   - detrand:   math/rand is always injected or explicitly seeded
//   - ctxflow:   blocking exported APIs accept and use a context.Context
//   - mutexcopy: no value receivers on types guarding state with a mutex
//   - goleak:    goroutines carry a visible cancellation/completion signal
//   - wiresafe:  wire-buffer indexing is preceded by a bounds check
//
// The engine is deliberately stdlib-only (go/ast, go/parser, go/token):
// the repository has no module dependencies and the linter must not add
// one. Analyses are syntactic — precise enough for this codebase's
// conventions, with `//cdelint:allow <analyzer> <reason>` as the escape
// hatch for deliberate exceptions.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// AllowPrefix introduces a suppression comment. The full form is
// `//cdelint:allow <analyzer> <reason>`; it silences the named analyzer on
// the comment's line and on the line that follows it. A reason is
// mandatory — an allow comment without one is itself a finding.
const AllowPrefix = "cdelint:allow"

// Diagnostic is one finding, positioned in the source tree.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the file:line:col style editors parse.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// File is one parsed non-test source file.
type File struct {
	Path string
	AST  *ast.File
	// allow maps a line number to the analyzer names suppressed there.
	allow map[int][]string
}

// allowedAt reports whether analyzer is suppressed on line.
func (f *File) allowedAt(line int, analyzer string) bool {
	for _, name := range f.allow[line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}

// Package is a directory of non-test files belonging to one Go package.
type Package struct {
	Dir     string // filesystem directory
	Name    string // package name from the source
	RelPath string // slash-separated path relative to the module root
	Files   []*File
}

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass gives an analyzer access to one package plus a diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless an allow comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, f := range p.Pkg.Files {
		if f.Path == position.Filename && f.allowedAt(position.Line, p.Analyzer.Name) {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Target selects a directory to lint. Non-recursive targets lint exactly
// that directory; recursive targets (the `dir/...` form) walk the subtree.
type Target struct {
	Dir       string
	Recursive bool
}

// Tree is a loaded source tree ready to be analyzed.
type Tree struct {
	Fset     *token.FileSet
	Packages []*Package
	// preDiags holds engine-level findings discovered during loading,
	// currently malformed allow comments.
	preDiags []Diagnostic
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod, which anchors the RelPath of every loaded package.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load parses every non-test Go file reachable from targets. Package paths
// are recorded relative to moduleRoot so analyzers can match on stable
// locations like "internal/clock" regardless of where the tree lives.
func Load(moduleRoot string, targets []Target) (*Tree, error) {
	tree := &Tree{Fset: token.NewFileSet()}
	seen := map[string]bool{}
	for _, tgt := range targets {
		dirs, err := expandTarget(tgt)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			abs, err := filepath.Abs(dir)
			if err != nil {
				return nil, err
			}
			if seen[abs] {
				continue
			}
			seen[abs] = true
			pkg, err := tree.loadDir(abs, moduleRoot)
			if err != nil {
				return nil, err
			}
			if pkg != nil {
				tree.Packages = append(tree.Packages, pkg)
			}
		}
	}
	sort.Slice(tree.Packages, func(i, j int) bool {
		return tree.Packages[i].RelPath < tree.Packages[j].RelPath
	})
	return tree, nil
}

// expandTarget resolves a Target to the concrete directories it covers.
func expandTarget(tgt Target) ([]string, error) {
	if !tgt.Recursive {
		return []string{tgt.Dir}, nil
	}
	var dirs []string
	err := filepath.WalkDir(tgt.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != tgt.Dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// loadDir parses the non-test Go files of one directory; it returns nil
// when the directory holds no lintable Go files.
func (t *Tree) loadDir(dir, moduleRoot string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(moduleRoot, dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, RelPath: filepath.ToSlash(rel)}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		astFile, err := parser.ParseFile(t.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		f := &File{Path: path, AST: astFile, allow: map[int][]string{}}
		t.collectAllows(f)
		pkg.Files = append(pkg.Files, f)
		if pkg.Name == "" {
			pkg.Name = astFile.Name.Name
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// collectAllows indexes the file's `//cdelint:allow` comments by line and
// records a pre-diagnostic for any allow comment lacking a reason.
func (t *Tree) collectAllows(f *File) {
	for _, group := range f.AST.Comments {
		for _, c := range group.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, AllowPrefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, AllowPrefix))
			pos := t.Fset.Position(c.Pos())
			if len(fields) < 2 {
				t.preDiags = append(t.preDiags, Diagnostic{
					Pos:      pos,
					Analyzer: "cdelint",
					Message:  "allow comment needs an analyzer name and a reason: //cdelint:allow <analyzer> <reason>",
				})
				continue
			}
			// Suppress on the comment's own line (end-of-line form) and
			// on the next line (standalone form).
			f.allow[pos.Line] = append(f.allow[pos.Line], fields[0])
			f.allow[pos.Line+1] = append(f.allow[pos.Line+1], fields[0])
		}
	}
}

// Run applies analyzers to every loaded package and returns the findings
// sorted by position.
func (t *Tree) Run(analyzers []*Analyzer) []Diagnostic {
	diags := append([]Diagnostic(nil), t.preDiags...)
	for _, pkg := range t.Packages {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Fset: t.Fset, Pkg: pkg, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	return diags
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Walltime, Detrand, Ctxflow, Mutexcopy, Goleak, Wiresafe}
}

// importLocalName returns the identifier under which importPath is
// referred to in f ("time", "rand", or an alias), and whether the file
// imports it at all. Dot- and blank-imports report not-imported since no
// selector-based use can be attributed to them syntactically.
func importLocalName(f *ast.File, importPath string) (string, bool) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return "", false
			}
			return imp.Name.Name, true
		}
		// Default local name: the last path segment, skipping a major-
		// version suffix ("math/rand/v2" imports as "rand").
		segs := strings.Split(path, "/")
		name := segs[len(segs)-1]
		if len(segs) > 1 && isVersionSegment(name) {
			name = segs[len(segs)-2]
		}
		return name, true
	}
	return "", false
}

// isVersionSegment reports whether seg looks like a major-version import
// path element: "v2", "v10", ...
func isVersionSegment(seg string) bool {
	if len(seg) < 2 || seg[0] != 'v' {
		return false
	}
	for _, c := range seg[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// pkgCall matches a call expression of the form <local>.<Sel>(...) where
// local is the file-local name of an imported package; it returns the
// selected name. The Obj check keeps local variables that shadow the
// package name from matching.
func pkgCall(call *ast.CallExpr, local string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != local || id.Obj != nil {
		return "", false
	}
	return sel.Sel.Name, true
}
