package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Errflow keeps the error chain intact. Two rules:
//
//  1. Everywhere: fmt.Errorf with a constant format string must wrap
//     error-typed arguments with %w, not flatten them through %v/%s —
//     flattening breaks errors.Is/As matching against the sentinel
//     errors (ErrMalformed, ErrNoRoute, ...) the fault-injection and
//     loss-compensation layers dispatch on.
//  2. In the I/O packages (dnswire, udpnet, netsim): an assignment that
//     discards every result of a call returning an error (`_ = f()`,
//     `_, _ = f()`) silently swallows failures on exactly the paths the
//     paper's loss model needs to observe. Callees named Close are
//     exempt — Close-on-cleanup errors are discarded by convention.
var Errflow = &Analyzer{
	Name: "errflow",
	Doc:  "fmt.Errorf must wrap errors with %w; I/O packages must not blank-discard returned errors (Close exempt)",
	Run:  runErrflow,
}

// errflowDiscardTargets are the packages where blank-discarding an error
// is flagged.
var errflowDiscardTargets = map[string]bool{
	"internal/dnswire":    true,
	"internal/udpnet":     true,
	"internal/netsim":     true,
	"internal/netsim/des": true,
	"internal/worldstate": true,
}

func runErrflow(p *Pass) {
	info := p.Info()
	checkDiscards := errflowDiscardTargets[p.Pkg.RelPath]
	for _, f := range p.Pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkErrorfVerbs(p, info, x)
			case *ast.AssignStmt:
				if checkDiscards {
					checkErrorDiscard(p, info, x)
				}
			}
			return true
		})
	}
}

// checkErrorfVerbs flags error-typed arguments of fmt.Errorf formatted
// with %v or %s instead of %w.
func checkErrorfVerbs(p *Pass, info *types.Info, call *ast.CallExpr) {
	if name, ok := pkgFunc(info, call, "fmt"); !ok || name != "Errorf" {
		return
	}
	if len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := parseVerbs(constant.StringVal(tv.Value))
	if !ok {
		return // indexed or otherwise exotic format; don't guess
	}
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			break
		}
		if verb != 'v' && verb != 's' {
			continue
		}
		argTV, ok := info.Types[args[i]]
		if !ok || argTV.Type == nil || argTV.IsNil() {
			continue
		}
		if isErrorType(argTV.Type) {
			p.Reportf(args[i].Pos(),
				"fmt.Errorf formats an error with %%%c; use %%w so errors.Is/As can unwrap it", verb)
		}
	}
}

// parseVerbs extracts the verb letter for each sequential argument of a
// format string, counting `*` width/precision as argument slots. It
// reports ok=false for explicit argument indexes (%[1]v), which would
// break the positional mapping.
func parseVerbs(format string) ([]rune, bool) {
	var verbs []rune
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			continue // literal percent
		}
		j := i
	scan:
		for j < len(runes) {
			c := runes[j]
			switch {
			case c == '[':
				return nil, false
			case c == '*':
				verbs = append(verbs, '*')
				j++
			case c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9'):
				j++
			default:
				verbs = append(verbs, c)
				break scan
			}
		}
		i = j
	}
	return verbs, true
}

// isErrorType reports whether t implements the built-in error interface.
func isErrorType(t types.Type) bool {
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if errIface == nil {
		return false
	}
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

// checkErrorDiscard flags assignments whose left-hand sides are all blank
// and whose single call RHS returns an error.
func checkErrorDiscard(p *Pass, info *types.Info, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return
		}
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	if calleeName(info, call) == "Close" {
		return
	}
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	returnsError := false
	switch rt := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				returnsError = true
			}
		}
	default:
		returnsError = isErrorType(tv.Type)
	}
	if returnsError {
		p.Reportf(as.Pos(),
			"call result including an error is discarded with blank assignments; handle it, log it, or add an allow comment with the reason")
	}
}

// calleeName returns the syntactic name of a call's callee (method or
// function identifier), or "".
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
