package lint

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces context plumbing in the packages that block on real
// I/O: a probe run against millions of resolvers must be cancellable end
// to end, so every exported entry point that can block has to accept a
// context.Context and actually thread it through.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported functions in I/O packages that block must accept a context.Context and not drop it",
	Run:  runCtxflow,
}

// ctxflowTargets are the packages whose exported API performs (or fronts)
// network I/O.
var ctxflowTargets = map[string]bool{
	"internal/udpnet":   true,
	"internal/platform": true,
	"internal/authns":   true,
}

// blockingSelectors name method/function calls that can block on I/O or
// peer activity. Bind/close operations (Listen, Close) return promptly and
// are deliberately absent.
var blockingSelectors = map[string]bool{
	"Read":        true,
	"ReadFrom":    true,
	"ReadFromUDP": true,
	"ReadMsgUDP":  true,
	"ReadFull":    true,
	"Write":       true,
	"WriteTo":     true,
	"WriteToUDP":  true,
	"Accept":      true,
	"AcceptTCP":   true,
	"Dial":        true,
	"DialUDP":     true,
	"DialTCP":     true,
	"DialContext": true,
	"Exchange":    true,
	"ExchangeTCP": true,
	"ServeDNS":    true,
	"Serve":       true,
}

func runCtxflow(p *Pass) {
	if !ctxflowTargets[p.Pkg.RelPath] {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !exportedAPI(fn) {
				continue
			}
			ctxParam := contextParam(p.Info(), fn)
			if ctxParam == "" {
				if sel := firstBlockingCall(fn.Body); sel != "" {
					p.Reportf(fn.Pos(),
						"exported %s blocks on I/O (%s) but does not accept a context.Context", fn.Name.Name, sel)
				}
				continue
			}
			if ctxParam == "_" {
				p.Reportf(fn.Pos(),
					"exported %s accepts a context.Context but discards it (parameter is _)", fn.Name.Name)
				continue
			}
			if !identUsed(fn.Body, ctxParam) {
				p.Reportf(fn.Pos(),
					"exported %s accepts context parameter %q but never uses it", fn.Name.Name, ctxParam)
			}
		}
	}
}

// exportedAPI reports whether fn is part of the package's exported
// surface: an exported name on either a free function or a method of an
// exported receiver type.
func exportedAPI(fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	return ast.IsExported(receiverTypeName(fn.Recv.List[0].Type))
}

// receiverTypeName unwraps *T / T / T[...] to the receiver type name.
func receiverTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return receiverTypeName(t.X)
	case *ast.IndexListExpr:
		return receiverTypeName(t.X)
	}
	return ""
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// contextParam returns the name of fn's context.Context parameter, "" when
// there is none. A blank parameter is reported as "_". Resolution is
// type-based, so renamed imports and type aliases are matched.
func contextParam(info *types.Info, fn *ast.FuncDecl) string {
	if fn.Type.Params == nil {
		return ""
	}
	for _, field := range fn.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if len(field.Names) == 0 {
			return "_"
		}
		return field.Names[0].Name
	}
	return ""
}

// firstBlockingCall returns the selector name of the first call in body
// that matches the blocking heuristic, or "".
func firstBlockingCall(body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && blockingSelectors[sel.Sel.Name] {
			found = sel.Sel.Name
			return false
		}
		return true
	})
	return found
}

// identUsed reports whether an identifier named name appears in body.
// Shadowing is ignored: a shadowed mention still counts, which keeps the
// check cheap and errs toward silence, not noise.
func identUsed(body *ast.BlockStmt, name string) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
			return false
		}
		return !used
	})
	return used
}
