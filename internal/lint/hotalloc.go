package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc enforces the zero-allocation contract on hot paths: a function
// annotated `//cdelint:hotpath` — and everything it statically calls
// inside the module — must be free of heap-allocating constructs. The
// probe loop packs, transmits and unpacks one DNS message per exchange;
// an allocation introduced anywhere on that path multiplies by the
// million-resolver scan rates of the paper's Internet measurement.
//
// Flagged constructs: make/new, escaping composite literals (&T{} and
// slice/map literals), fmt formatting, non-constant string concatenation,
// append to a slice declared without a capacity hint, and interface
// boxing of non-pointer-shaped values at call sites.
//
// Two deliberate blind spots keep the signal clean: fmt.Errorf calls are
// exempt (error construction is the cold path by convention, and errflow
// requires %w wrapping there), and calls through interfaces or function
// values are not traversed (the static call graph cannot see them).
// An allow comment on a call line prunes that edge from the hot closure:
//
//	resp = dnswire.NewResponse(decoded) //cdelint:allow hotalloc fault path
//
// keeps NewResponse's own allocations out of the closure without
// annotating the callee.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//cdelint:hotpath functions and their static in-module callees must not contain heap-allocating constructs",
	Run:  runHotalloc,
}

// hotOrigin explains why a function is on the hot path.
type hotOrigin struct {
	root *FuncInfo // the annotated function whose closure reached it
}

// hotClosure computes (once per tree) the set of module functions
// reachable from //cdelint:hotpath annotations over static calls,
// skipping edges whose call site carries a hotalloc allow comment.
func hotClosure(t *Tree) map[*types.Func]*hotOrigin {
	return memoize(t, "hotalloc.closure", func() map[*types.Func]*hotOrigin {
		funcs := moduleFuncs(t)
		closure := map[*types.Func]*hotOrigin{}
		var queue []*FuncInfo
		for _, fi := range sortedFuncs(funcs) {
			if fi.Hotpath {
				closure[fi.Obj] = &hotOrigin{root: fi}
				queue = append(queue, fi)
			}
		}
		for len(queue) > 0 {
			fi := queue[0]
			queue = queue[1:]
			origin := closure[fi.Obj]
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(t.Info, call)
				if callee == nil || closure[callee] != nil {
					return true
				}
				ci, inModule := funcs[callee]
				if !inModule || t.suppressed(call.Pos(), "hotalloc") {
					return true
				}
				closure[callee] = &hotOrigin{root: origin.root}
				queue = append(queue, ci)
				return true
			})
		}
		return closure
	})
}

func runHotalloc(p *Pass) {
	closure := hotClosure(p.Tree)
	if len(closure) == 0 {
		return
	}
	for _, fi := range sortedFuncs(moduleFuncs(p.Tree)) {
		if fi.Pkg != p.Pkg {
			continue
		}
		if origin, ok := closure[fi.Obj]; ok {
			checkHotBody(p, fi, origin)
		}
	}
}

// checkHotBody reports every allocating construct in one hot function.
func checkHotBody(p *Pass, fi *FuncInfo, origin *hotOrigin) {
	info := p.Info()
	where := "hotpath " + funcDisplayName(origin.root.Obj)
	if origin.root == fi {
		where = "a //cdelint:hotpath function"
	}

	unhinted := unhintedSlices(info, fi.Decl)
	// handledLits are composite literals already reported as part of an
	// enclosing &T{...}; concatEnd marks the end of the last reported
	// string concatenation so a+b+c yields one finding, not two.
	handledLits := map[*ast.CompositeLit]bool{}
	var concatEnd token.Pos

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, info, x, unhinted, where)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					handledLits[lit] = true
					p.Reportf(x.Pos(), "&%s escapes to the heap in %s; reuse a pooled or caller-provided value",
						typeLabel(info, lit), where)
				}
			}
		case *ast.CompositeLit:
			if handledLits[x] {
				return true
			}
			if tv, ok := info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					p.Reportf(x.Pos(), "%s literal allocates in %s; use an array or a reused buffer",
						typeLabel(info, x), where)
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && x.Pos() >= concatEnd {
				if tv, ok := info.Types[x]; ok && tv.Value == nil && isStringType(tv.Type) {
					concatEnd = x.End()
					p.Reportf(x.Pos(), "string concatenation allocates in %s; precompute or use a reused buffer", where)
				}
			}
		}
		return true
	})
}

// checkHotCall reports allocating builtins, fmt formatting and interface
// boxing at one call site. fmt.Errorf is exempt wholesale: error
// construction marks the cold path, and errflow requires it to stay
// fmt.Errorf-with-%w.
func checkHotCall(p *Pass, info *types.Info, call *ast.CallExpr, unhinted map[types.Object]bool, where string) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if id, ok := fun.(*ast.Ident); ok && info.Types[id].IsBuiltin() {
		switch id.Name {
		case "make", "new":
			p.Reportf(call.Pos(), "%s allocates in %s; hoist the allocation out of the hot path or pool it", id.Name, where)
		case "append":
			if len(call.Args) == 0 {
				return
			}
			if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := info.Uses[base]; obj != nil && unhinted[obj] {
					p.Reportf(call.Pos(), "append to %q grows an unhinted slice in %s; pre-size it with make(..., 0, n) or reuse a buffer",
						base.Name, where)
				}
			}
		}
		return
	}
	if name, ok := pkgFunc(info, call, "fmt"); ok {
		if name != "Errorf" {
			p.Reportf(call.Pos(), "fmt.%s formats (and allocates) in %s; hot paths must not format", name, where)
		}
		return
	}
	tv, ok := info.Types[fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(paramType) {
			continue
		}
		argTV, ok := info.Types[arg]
		if !ok || argTV.Type == nil || argTV.IsNil() {
			continue
		}
		at := types.Default(argTV.Type)
		if types.IsInterface(at) || isPointerShaped(at) || isZeroSized(at) || !argTV.IsValue() {
			continue
		}
		p.Reportf(arg.Pos(), "passing %s boxes it into %s in %s; pass a pointer or restructure the call",
			types.TypeString(at, shortQualifier), types.TypeString(paramType, shortQualifier), where)
	}
}

// unhintedSlices collects the local slice variables of fn declared without
// a capacity hint: `var x []T`, `x := []T{...}` / nil, or `x := make([]T, n)`
// with no third argument. Parameters, receivers and call results are not
// classified — the caller owns their sizing.
func unhintedSlices(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case nil:
			out[obj] = true // var x []T
		case *ast.CompositeLit:
			out[obj] = true // x := []T{...}
		case *ast.Ident:
			if r.Name == "nil" {
				out[obj] = true
			}
		case *ast.CallExpr:
			if fid, ok := ast.Unparen(r.Fun).(*ast.Ident); ok &&
				fid.Name == "make" && info.Types[fid].IsBuiltin() && len(r.Args) < 3 {
				out[obj] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range x.Lhs {
				if i < len(x.Rhs) {
					mark(lhs, x.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					mark(name, rhs)
				}
			}
		}
		return true
	})
	return out
}

// isPointerShaped reports whether boxing a value of type t into an
// interface stores the value directly (a single pointer word) rather than
// heap-allocating a copy.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isZeroSized reports whether t occupies no storage (struct{} and
// friends); boxing a zero-sized value does not allocate.
func isZeroSized(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !isZeroSized(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return u.Len() == 0 || isZeroSized(u.Elem())
	}
	return false
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// typeLabel renders the (possibly implicit) type of a composite literal.
func typeLabel(info *types.Info, lit *ast.CompositeLit) string {
	if tv, ok := info.Types[lit]; ok && tv.Type != nil {
		return types.TypeString(tv.Type, shortQualifier)
	}
	return "composite"
}

// shortQualifier renders package-qualified names with the short package
// name, keeping diagnostics readable.
func shortQualifier(pkg *types.Package) string { return pkg.Name() }
