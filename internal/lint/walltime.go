package lint

import (
	"go/ast"
)

// Walltime enforces the clock abstraction: the cache-counting math (ω
// distinct queries out of q probes) only reproduces if TTL arithmetic and
// probe scheduling run on an injected clock.Clock, so direct wall-clock
// reads are confined to internal/clock. Deliberate wall-clock uses — UDP
// socket deadlines, periodic log flushing — carry a //cdelint:allow.
//
// Walltime flags the call sites it can see; its typed successor simtime
// additionally follows module-internal helpers reachable from the
// simulation packages.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "flags time.Now/Sleep/After/Tick/NewTicker/NewTimer/AfterFunc outside internal/clock; inject a clock.Clock instead",
	Run:  runWalltime,
}

// walltimeExempt lists the packages allowed to touch the wall clock
// without annotation: only the clock abstraction itself.
var walltimeExempt = map[string]bool{
	"internal/clock": true,
}

// walltimeDenied is the set of time-package functions that read or depend
// on the wall clock. Pure-value helpers (time.Date, time.Duration
// arithmetic, time.Unix) stay legal, as do Since/Until — those are
// simtime's concern on the simulation paths.
var walltimeDenied = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

func runWalltime(p *Pass) {
	if walltimeExempt[p.Pkg.RelPath] {
		return
	}
	info := p.Info()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := pkgFunc(info, call, "time")
			if ok && walltimeDenied[name] {
				p.Reportf(call.Pos(),
					"time.%s reads the wall clock outside internal/clock; inject a clock.Clock (or annotate a deliberate wall-clock use)", name)
			}
			return true
		})
	}
}
