package lint

import (
	"go/ast"
)

// Detrand enforces deterministic randomness: every RNG in non-test code
// must be injected (*rand.Rand parameters or struct fields) or explicitly
// seeded via rand.New(rand.NewSource(seed)). The package-level math/rand
// functions draw from a process-global, randomly-seeded source, which
// silently breaks run-to-run reproducibility of the simulated populations.
//
// It also flags a *rand.Rand captured by a goroutine literal: *rand.Rand
// is not safe for concurrent use, and even under a mutex the draw order
// would depend on goroutine scheduling — exactly the nondeterminism the
// detpar per-index seed derivation exists to avoid. Pass each goroutine
// its own derived RNG (detpar.Rand / detpar.ForEach) instead.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "flags package-level math/rand draws (rand.Intn, ...), rand.Seed, and *rand.Rand values captured by goroutine literals in non-test code",
	Run:  runDetrand,
}

// detrandDenied is the set of math/rand package-level functions that use
// (or mutate) the global source. Constructors — New, NewSource, NewZipf —
// are the approved pattern and stay legal.
var detrandDenied = map[string]bool{
	"Int":         true,
	"Intn":        true,
	"Int31":       true,
	"Int31n":      true,
	"Int63":       true,
	"Int63n":      true,
	"Uint32":      true,
	"Uint64":      true,
	"Float32":     true,
	"Float64":     true,
	"NormFloat64": true,
	"ExpFloat64":  true,
	"Perm":        true,
	"Shuffle":     true,
	"Read":        true,
	"Seed":        true,
}

func runDetrand(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, importPath := range []string{"math/rand", "math/rand/v2"} {
			local, ok := importLocalName(f.AST, importPath)
			if !ok {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := pkgCall(call, local)
				if ok && detrandDenied[name] {
					p.Reportf(call.Pos(),
						"rand.%s draws from the global math/rand source; inject a *rand.Rand or seed one with rand.New(rand.NewSource(seed))", name)
				}
				return true
			})
			checkGoroutineCaptures(p, f, local)
		}
	}
}

// checkGoroutineCaptures reports *rand.Rand variables that a `go func(){}`
// literal closes over. The RNG objects are collected syntactically: idents
// assigned from rand.New(...) / detpar.Rand(...), and declarations (vars,
// params, results) whose type is written *rand.Rand. Objects declared
// inside the literal itself — its own params or locals — are fine; only
// free variables shared with the spawning goroutine are flagged.
func checkGoroutineCaptures(p *Pass, f *File, randLocal string) {
	detparLocal, _ := importLocalName(f.AST, "dnscde/internal/detpar")

	rngs := map[*ast.Object]bool{}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if name, ok := pkgCall(call, randLocal); ok && name == "New" {
					markRNG(rngs, n.Lhs[i])
				}
				if detparLocal != "" {
					if name, ok := pkgCall(call, detparLocal); ok && name == "Rand" {
						markRNG(rngs, n.Lhs[i])
					}
				}
			}
		case *ast.Field:
			if isRandRandType(n.Type, randLocal) {
				for _, id := range n.Names {
					if id.Obj != nil {
						rngs[id.Obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			if isRandRandType(n.Type, randLocal) {
				for _, id := range n.Names {
					if id.Obj != nil {
						rngs[id.Obj] = true
					}
				}
			}
		}
		return true
	})
	if len(rngs) == 0 {
		return
	}

	ast.Inspect(f.AST, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		reported := map[*ast.Object]bool{}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok || id.Obj == nil || !rngs[id.Obj] || reported[id.Obj] {
				return true
			}
			// Declared within the literal (own param/local) — not a capture.
			if id.Obj.Pos() >= lit.Pos() && id.Obj.Pos() <= lit.End() {
				return true
			}
			reported[id.Obj] = true
			p.Reportf(id.Pos(),
				"*rand.Rand %q is captured by a goroutine literal; draws become scheduling-dependent — derive a per-goroutine RNG (detpar.Rand / detpar.ForEach) instead", id.Name)
			return true
		})
		return true
	})
}

// markRNG records the object behind an assignment target, if any.
func markRNG(rngs map[*ast.Object]bool, lhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok && id.Obj != nil {
		rngs[id.Obj] = true
	}
}

// isRandRandType matches the written type *<rand>.Rand.
func isRandRandType(t ast.Expr, randLocal string) bool {
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Rand" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == randLocal && id.Obj == nil
}
