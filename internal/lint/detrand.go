package lint

import (
	"go/ast"
)

// Detrand enforces deterministic randomness: every RNG in non-test code
// must be injected (*rand.Rand parameters or struct fields) or explicitly
// seeded via rand.New(rand.NewSource(seed)). The package-level math/rand
// functions draw from a process-global, randomly-seeded source, which
// silently breaks run-to-run reproducibility of the simulated populations.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "flags package-level math/rand draws (rand.Intn, rand.Float64, ...) and rand.Seed in non-test code",
	Run:  runDetrand,
}

// detrandDenied is the set of math/rand package-level functions that use
// (or mutate) the global source. Constructors — New, NewSource, NewZipf —
// are the approved pattern and stay legal.
var detrandDenied = map[string]bool{
	"Int":         true,
	"Intn":        true,
	"Int31":       true,
	"Int31n":      true,
	"Int63":       true,
	"Int63n":      true,
	"Uint32":      true,
	"Uint64":      true,
	"Float32":     true,
	"Float64":     true,
	"NormFloat64": true,
	"ExpFloat64":  true,
	"Perm":        true,
	"Shuffle":     true,
	"Read":        true,
	"Seed":        true,
}

func runDetrand(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, importPath := range []string{"math/rand", "math/rand/v2"} {
			local, ok := importLocalName(f.AST, importPath)
			if !ok {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := pkgCall(call, local)
				if ok && detrandDenied[name] {
					p.Reportf(call.Pos(),
						"rand.%s draws from the global math/rand source; inject a *rand.Rand or seed one with rand.New(rand.NewSource(seed))", name)
				}
				return true
			})
		}
	}
}
