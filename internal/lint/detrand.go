package lint

import (
	"go/ast"
	"go/types"
)

// Detrand enforces deterministic randomness: every RNG in non-test code
// must be injected (*rand.Rand parameters or struct fields) or explicitly
// seeded via rand.New(rand.NewSource(seed)). The package-level math/rand
// functions draw from a process-global, randomly-seeded source, which
// silently breaks run-to-run reproducibility of the simulated populations.
//
// It also flags a *rand.Rand captured by a goroutine literal: *rand.Rand
// is not safe for concurrent use, and even under a mutex the draw order
// would depend on goroutine scheduling — exactly the nondeterminism the
// detpar per-index seed derivation exists to avoid. Pass each goroutine
// its own derived RNG (detpar.Rand / detpar.ForEach) instead.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "flags package-level math/rand draws (rand.Intn, ...), rand.Seed, and *rand.Rand values captured by goroutine literals in non-test code",
	Run:  runDetrand,
}

// detrandDenied is the set of math/rand package-level functions that use
// (or mutate) the global source. Constructors — New, NewSource, NewZipf —
// are the approved pattern and stay legal.
var detrandDenied = map[string]bool{
	"Int":         true,
	"Intn":        true,
	"Int31":       true,
	"Int31n":      true,
	"Int63":       true,
	"Int63n":      true,
	"Uint32":      true,
	"Uint64":      true,
	"Float32":     true,
	"Float64":     true,
	"NormFloat64": true,
	"ExpFloat64":  true,
	"Perm":        true,
	"Shuffle":     true,
	"Read":        true,
	"Seed":        true,
}

// isMathRandPath matches both generations of the stdlib rand package.
func isMathRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runDetrand(p *Pass) {
	info := p.Info()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !isMathRandPath(fn.Pkg().Path()) {
				return true
			}
			// Methods on an injected or locally seeded *rand.Rand share names
			// with the global draws (Intn, Float64, ...); only the package-
			// level functions touch the global source.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if detrandDenied[fn.Name()] {
				p.Reportf(call.Pos(),
					"rand.%s draws from the global math/rand source; inject a *rand.Rand or seed one with rand.New(rand.NewSource(seed))", fn.Name())
			}
			return true
		})
		checkGoroutineCaptures(p, f)
	}
}

// isRandRand reports whether t is *rand.Rand (either rand generation).
func isRandRand(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && isMathRandPath(obj.Pkg().Path())
}

// checkGoroutineCaptures reports *rand.Rand variables that a `go func(){}`
// literal closes over. Objects declared inside the literal itself — its
// own params or locals, including RNGs it derives for itself — are fine;
// only free variables shared with the spawning goroutine are flagged.
func checkGoroutineCaptures(p *Pass, f *File) {
	info := p.Info()
	ast.Inspect(f.AST, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		reported := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || reported[obj] || !isRandRand(obj.Type()) {
				return true
			}
			v, isVar := obj.(*types.Var)
			if !isVar || v.IsField() {
				return true
			}
			// Declared within the literal (own param/local) — not a capture.
			if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
				return true
			}
			reported[obj] = true
			p.Reportf(id.Pos(),
				"*rand.Rand %q is captured by a goroutine literal; draws become scheduling-dependent — derive a per-goroutine RNG (detpar.Rand / detpar.ForEach) instead", id.Name)
			return true
		})
		return true
	})
}
