package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mutexcopy flags value receivers on types that guard state with a
// sync.Mutex/sync.RWMutex (directly or via an embedded struct): calling a
// value-receiver method copies the lock, and go vet's copylocks only
// catches the assignment forms, not the receiver declaration itself.
var Mutexcopy = &Analyzer{
	Name: "mutexcopy",
	Doc:  "flags value receivers on struct types that contain a sync.Mutex or sync.RWMutex",
	Run:  runMutexcopy,
}

func runMutexcopy(p *Pass) {
	info := p.Info()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			recvType := fn.Recv.List[0].Type
			if _, isPtr := recvType.(*ast.StarExpr); isPtr {
				continue
			}
			tv, ok := info.Types[recvType]
			if !ok {
				continue
			}
			if holdsMutex(tv.Type, map[types.Type]bool{}) {
				p.Reportf(fn.Recv.Pos(),
					"method %s has a value receiver but %s contains a mutex; use a pointer receiver", fn.Name.Name, receiverTypeName(recvType))
			}
		}
	}
}

// isSyncLock reports whether t is sync.Mutex or sync.RWMutex.
func isSyncLock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// holdsMutex reports whether a value of type t embeds lock state by value,
// walking named struct fields recursively (cross-package, unlike the old
// syntactic check). Pointer fields are fine — copying a pointer does not
// copy the lock.
func holdsMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isSyncLock(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if holdsMutex(st.Field(i).Type(), seen) {
			return true
		}
	}
	return false
}

// Goleak flags `go func() {...}()` statements in non-main packages whose
// body shows no cancellation or completion signal — no context, no done/
// quit channel, no WaitGroup — which is how measurement fan-out leaks
// goroutines under cancellation at production scan rates.
var Goleak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutine literals in non-main packages must reference a ctx/done/quit signal, a channel receive, or a WaitGroup",
	Run:  runGoleak,
}

// goleakSignalIdents are identifier names (exact) accepted as evidence the
// goroutine is tied to a lifecycle.
var goleakSignalIdents = map[string]bool{
	"ctx": true, "done": true, "quit": true, "stop": true,
	"wg": true, "sem": true, "cancel": true,
}

// goleakSignalSelectors are method names accepted as lifecycle evidence.
var goleakSignalSelectors = map[string]bool{
	"Done": true, "Wait": true, "Deadline": true, "Err": true,
}

func runGoleak(p *Pass) {
	if p.Pkg.Name == "main" {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if _, ok := gs.Call.Fun.(*ast.FuncLit); !ok {
				return true // `go x.method(ctx)` — the callee owns its lifecycle
			}
			if !goStmtHasSignal(gs) {
				p.Reportf(gs.Pos(),
					"goroutine has no visible cancellation or completion signal (ctx, done channel, or WaitGroup)")
			}
			return true
		})
	}
}

// goStmtHasSignal scans the go statement (literal body plus call
// arguments) for lifecycle evidence.
func goStmtHasSignal(gs *ast.GoStmt) bool {
	found := false
	ast.Inspect(gs.Call, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if goleakSignalIdents[x.Name] {
				found = true
			}
		case *ast.SelectorExpr:
			if goleakSignalSelectors[x.Sel.Name] {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.SendStmt:
			found = true
		}
		return !found
	})
	return found
}
