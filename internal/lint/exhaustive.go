package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive keeps switches over enum-like const sets honest: the
// scenario grammar's workload kinds, the fault-injection kinds, selector
// and egress policies are all module-defined named types with a fixed
// set of package-level constants, and a switch that silently ignores a
// member is how "add a fault kind" corrupts counters three packages away.
//
// A named type T declared in the module is enum-like when its declaring
// package defines at least two package-level constants of exactly type T.
// Every switch over such a T must either cover all members or carry a
// default that fails loudly; a default with an empty body is flagged too,
// because it swallows unhandled members without a trace.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over module-defined enum const sets must cover every member or carry a non-empty default",
	Run:  runExhaustive,
}

// enumMember is one constant of an enum set.
type enumMember struct {
	obj *types.Const
	key string // exact constant value, for alias-tolerant coverage
}

// enumSets indexes (once per tree) the module's enum-like const sets by
// their named type.
func enumSets(t *Tree) map[*types.TypeName][]enumMember {
	return memoize(t, "exhaustive.enums", func() map[*types.TypeName][]enumMember {
		sets := map[*types.TypeName][]enumMember{}
		for _, pkg := range t.Packages {
			if pkg.Types == nil {
				continue
			}
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				c, ok := scope.Lookup(name).(*types.Const)
				if !ok {
					continue
				}
				named, ok := c.Type().(*types.Named)
				if !ok {
					continue
				}
				tn := named.Obj()
				// Member and type must share a package: constants another
				// package declares of an imported type are values, not
				// new enum members.
				if tn.Pkg() != pkg.Types {
					continue
				}
				sets[tn] = append(sets[tn], enumMember{obj: c, key: c.Val().ExactString()})
			}
		}
		for tn, members := range sets {
			if len(members) < 2 {
				delete(sets, tn)
				continue
			}
			sort.Slice(members, func(i, j int) bool { return members[i].obj.Pos() < members[j].obj.Pos() })
			sets[tn] = members
		}
		return sets
	})
}

func runExhaustive(p *Pass) {
	sets := enumSets(p.Tree)
	if len(sets) == 0 {
		return
	}
	info := p.Info()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagTV, ok := info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tagTV.Type.(*types.Named)
			if !ok {
				return true
			}
			members, ok := sets[named.Obj()]
			if !ok {
				return true
			}
			checkEnumSwitch(p, info, sw, named.Obj(), members)
			return true
		})
	}
}

// checkEnumSwitch verifies one switch against its enum set.
func checkEnumSwitch(p *Pass, info *types.Info, sw *ast.SwitchStmt, tn *types.TypeName, members []enumMember) {
	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			defaultClause = clause
			continue
		}
		for _, expr := range clause.List {
			if tv, ok := info.Types[expr]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	if defaultClause != nil {
		if len(defaultClause.Body) == 0 {
			p.Reportf(defaultClause.Pos(),
				"switch over %s has an empty default; unhandled members pass silently — handle them or fail loudly", tn.Name())
		}
		return
	}

	var missing []string
	for _, m := range members {
		if !covered[m.key] {
			missing = append(missing, m.obj.Name())
		}
	}
	if len(missing) > 0 {
		p.Reportf(sw.Pos(),
			"switch over %s is not exhaustive: missing %s (add the cases or a default that fails loudly)",
			tn.Name(), strings.Join(missing, ", "))
	}
}
