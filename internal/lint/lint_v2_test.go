package lint

// Tests for the PR-6 typed analyzers: hotalloc, exhaustive, simtime,
// errflow, plus the cross-package machinery they ride on (module-internal
// imports, the hot closure, the taint fixpoint and the fact store). Each
// analyzer's table covers a positive case, a negative case, a suppression
// case and — where the analyzer is cross-package — a propagation case.

import (
	"go/ast"
	"testing"
)

// modFile declares the fixture module so module-internal imports resolve.
const modFile = "module fixmod\n\ngo 1.22\n"

func TestHotalloc(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  []string
	}{
		{
			name: "flags allocating constructs in an annotated function",
			files: map[string]string{"internal/foo/foo.go": `package foo

type point struct{ x, y int }

//cdelint:hotpath
func Hot(a, b string) string {
	buf := make([]byte, 64)
	_ = buf
	p := &point{1, 2}
	_ = p
	xs := []int{1, 2, 3}
	_ = xs
	return a + b
}
`},
			want: []string{
				"[hotalloc] make allocates",
				"[hotalloc] &foo.point escapes to the heap",
				"[hotalloc] []int literal allocates",
				"[hotalloc] string concatenation allocates",
			},
		},
		{
			name: "arrays, constants and unannotated functions are fine",
			files: map[string]string{"internal/foo/foo.go": `package foo

//cdelint:hotpath
func Hot() int {
	var counts [4]int
	counts = [...]int{1, 2, 3, 4}
	s := "a" + "b" // constant-folded
	return counts[0] + len(s)
}

func Cold() []byte { return make([]byte, 64) }
`},
			want: nil,
		},
		{
			name: "fmt formats are flagged, fmt.Errorf is exempt",
			files: map[string]string{"internal/foo/foo.go": `package foo

import "fmt"

//cdelint:hotpath
func Hot(err error) (string, error) {
	if err != nil {
		return "", fmt.Errorf("wrapped: %w", err)
	}
	return fmt.Sprintf("x=%d", 42), nil
}
`},
			want: []string{"[hotalloc] fmt.Sprintf formats (and allocates)"},
		},
		{
			name: "append to an unhinted slice is flagged, parameters are not",
			files: map[string]string{"internal/foo/foo.go": `package foo

//cdelint:hotpath
func Grow() int {
	var xs []int
	for i := 0; i < 4; i++ {
		xs = append(xs, i)
	}
	return len(xs)
}

//cdelint:hotpath
func Fill(xs []int) []int {
	for i := 0; i < 4; i++ {
		xs = append(xs, i)
	}
	return xs
}
`},
			want: []string{`[hotalloc] append to "xs" grows an unhinted slice`},
		},
		{
			name: "interface boxing of a value argument is flagged",
			files: map[string]string{"internal/foo/foo.go": `package foo

func sink(v any) { _ = v }

//cdelint:hotpath
func Hot(p *int) {
	sink(42)
	sink(p)  // pointer-shaped: free
	sink(nil)
}
`},
			want: []string{"[hotalloc] passing int boxes it into any"},
		},
		{
			name: "the closure crosses package boundaries",
			files: map[string]string{
				"go.mod": modFile,
				"internal/a/a.go": `package a

import "fixmod/internal/b"

//cdelint:hotpath
func Hot() []byte { return b.Helper() }
`,
				"internal/b/b.go": `package b

func Helper() []byte { return make([]byte, 64) }
`,
			},
			want: []string{"b.go:3:31: [hotalloc] make allocates in hotpath a.Hot"},
		},
		{
			name: "an allow comment on the call line prunes the edge",
			files: map[string]string{
				"go.mod": modFile,
				"internal/a/a.go": `package a

import "fixmod/internal/b"

//cdelint:hotpath
func Hot() []byte {
	//cdelint:allow hotalloc setup path runs once per trial
	return b.Helper()
}
`,
				"internal/b/b.go": `package b

func Helper() []byte { return make([]byte, 64) }
`,
			},
			want: nil,
		},
		{
			name: "suppression on the allocation line itself",
			files: map[string]string{"internal/foo/foo.go": `package foo

//cdelint:hotpath
func Hot() []byte {
	//cdelint:allow hotalloc scratch allocated once, reused by the caller
	return make([]byte, 64)
}
`},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, analyze(t, tc.files, []*Analyzer{Hotalloc}), tc.want...)
		})
	}
}

func TestExhaustive(t *testing.T) {
	const kindPkg = `package kind

type K string

const (
	A K = "a"
	B K = "b"
	C K = "c"
)
`
	cases := []struct {
		name  string
		files map[string]string
		want  []string
	}{
		{
			name: "missing member without default is flagged",
			files: map[string]string{
				"internal/kind/kind.go": kindPkg,
				"internal/kind/use.go": `package kind

func Use(k K) int {
	switch k {
	case A:
		return 1
	case B:
		return 2
	}
	return 0
}
`,
			},
			want: []string{"[exhaustive] switch over K is not exhaustive: missing C"},
		},
		{
			name: "full coverage passes, as does a loud default",
			files: map[string]string{
				"internal/kind/kind.go": kindPkg,
				"internal/kind/use.go": `package kind

func Full(k K) int {
	switch k {
	case A, B:
		return 1
	case C:
		return 2
	}
	return 0
}

func Loud(k K) int {
	switch k {
	case A:
		return 1
	default:
		panic("unhandled kind")
	}
}
`,
			},
			want: nil,
		},
		{
			name: "an empty default swallows members silently",
			files: map[string]string{
				"internal/kind/kind.go": kindPkg,
				"internal/kind/use.go": `package kind

func Use(k K) int {
	switch k {
	case A:
		return 1
	default:
	}
	return 0
}
`,
			},
			want: []string{"[exhaustive] switch over K has an empty default"},
		},
		{
			name: "enum sets propagate across packages",
			files: map[string]string{
				"go.mod":                modFile,
				"internal/kind/kind.go": kindPkg,
				"internal/use/use.go": `package use

import "fixmod/internal/kind"

func Dispatch(k kind.K) int {
	switch k {
	case kind.A:
		return 1
	}
	return 0
}
`,
			},
			want: []string{"use.go:6:2: [exhaustive] switch over K is not exhaustive: missing B, C"},
		},
		{
			name: "non-enum switches and other-package constants are ignored",
			files: map[string]string{
				"go.mod":                modFile,
				"internal/kind/kind.go": kindPkg,
				"internal/use/use.go": `package use

import "fixmod/internal/kind"

// Local constants of an imported type are values, not new members.
const local kind.K = "a"

func Str(s string) int {
	switch s {
	case "x":
		return 1
	}
	return 0
}

func Dispatch(k kind.K) int {
	switch k {
	case kind.A, kind.B, kind.C:
		return 1
	}
	return 0
}
`,
			},
			want: nil,
		},
		{
			name: "suppression silences one switch",
			files: map[string]string{
				"internal/kind/kind.go": kindPkg,
				"internal/kind/use.go": `package kind

func Use(k K) int {
	//cdelint:allow exhaustive only A matters on this path
	switch k {
	case A:
		return 1
	}
	return 0
}
`,
			},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, analyze(t, tc.files, []*Analyzer{Exhaustive}), tc.want...)
		})
	}
}

func TestSimtime(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  []string
	}{
		{
			name: "direct Since in a simulation package is flagged",
			files: map[string]string{"internal/netsim/sim.go": `package netsim

import "time"

func RTT(start time.Time) time.Duration { return time.Since(start) }
`},
			want: []string{"[simtime] time.Since measures the wall clock"},
		},
		{
			name: "Since outside the simulation packages is fine",
			files: map[string]string{"internal/udpnet/net.go": `package udpnet

import "time"

func RTT(start time.Time) time.Duration { return time.Since(start) }
`},
			want: nil,
		},
		{
			name: "wall-clock reach through a module helper is flagged with a chain",
			files: map[string]string{
				"go.mod": modFile,
				"internal/util/util.go": `package util

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
				"internal/netsim/sim.go": `package netsim

import "fixmod/internal/util"

func Record() int64 { return util.Stamp() }
`,
			},
			want: []string{"[simtime] call to util.Stamp reaches time.Now (util.Stamp → time.Now)"},
		},
		{
			name: "taint propagates through intermediate helpers",
			files: map[string]string{
				"go.mod": modFile,
				"internal/util/util.go": `package util

import "time"

func stamp() int64 { return time.Now().UnixNano() }

func Wrapped() int64 { return stamp() }
`,
				"internal/netsim/sim.go": `package netsim

import "fixmod/internal/util"

func Record() int64 { return util.Wrapped() }
`,
			},
			want: []string{"reaches time.Now (util.Wrapped → util.stamp → time.Now)"},
		},
		{
			name: "internal/clock is the sanctioned boundary and never taints",
			files: map[string]string{
				"go.mod": modFile,
				"internal/clock/clock.go": `package clock

import "time"

func Wall() time.Time { return time.Now() }
`,
				"internal/netsim/sim.go": `package netsim

import "fixmod/internal/clock"

func Record() int64 { return clock.Wall().UnixNano() }
`,
			},
			want: nil,
		},
		{
			name: "a suppressed source site does not taint its callers",
			files: map[string]string{
				"go.mod": modFile,
				"internal/util/util.go": `package util

import "time"

func Stamp() int64 {
	//cdelint:allow simtime log timestamps are wall-clock on purpose
	return time.Now().UnixNano()
}
`,
				"internal/netsim/sim.go": `package netsim

import "fixmod/internal/util"

func Record() int64 { return util.Stamp() }
`,
			},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, analyze(t, tc.files, []*Analyzer{Simtime}), tc.want...)
		})
	}
}

func TestErrflow(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  []string
	}{
		{
			name: "flattening an error with %v or %s is flagged, %w is not",
			files: map[string]string{"internal/foo/foo.go": `package foo

import "fmt"

func V(err error) error { return fmt.Errorf("ctx: %v", err) }
func S(err error) error { return fmt.Errorf("ctx: %s", err) }
func W(err error) error { return fmt.Errorf("ctx: %w", err) }
`},
			want: []string{
				"[errflow] fmt.Errorf formats an error with %v",
				"[errflow] fmt.Errorf formats an error with %s",
			},
		},
		{
			name: "non-error arguments and positional mapping are handled",
			files: map[string]string{"internal/foo/foo.go": `package foo

import "fmt"

func Mixed(key string, err error) error {
	return fmt.Errorf("key %q width %*d: %w then %v", key, 4, 7, err, "not an error")
}
`},
			want: nil,
		},
		{
			name: "blank-discarded errors in an I/O package are flagged, Close is exempt",
			files: map[string]string{"internal/dnswire/wire.go": `package dnswire

import "errors"

func op() error                { return errors.New("x") }
func pair() (int, error)       { return 0, errors.New("x") }
func Close() error             { return nil }

func Use() {
	_ = op()
	_, _ = pair()
	_ = Close()
}
`},
			want: []string{
				"[errflow] call result including an error is discarded",
				"[errflow] call result including an error is discarded",
			},
		},
		{
			name: "discards outside the I/O packages are not flagged",
			files: map[string]string{"internal/stats/s.go": `package stats

import "errors"

func op() error { return errors.New("x") }
func Use()      { _ = op() }
`},
			want: nil,
		},
		{
			name: "suppression",
			files: map[string]string{"internal/dnswire/wire.go": `package dnswire

import "errors"

func op() error { return errors.New("x") }

func Use() {
	//cdelint:allow errflow best-effort notification, failure is expected
	_ = op()
}
`},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, analyze(t, tc.files, []*Analyzer{Errflow}), tc.want...)
		})
	}
}

func TestAllowCommaLists(t *testing.T) {
	files := map[string]string{"internal/foo/foo.go": `package foo

import (
	"fmt"
	"time"
)

//cdelint:hotpath
func Hot() string {
	//cdelint:allow hotalloc,walltime fixture exercises both suppressions at once
	return fmt.Sprintf("%v", time.Now())
}
`}
	wantDiags(t, analyze(t, files, []*Analyzer{Walltime, Hotalloc}))
}

func TestAllowUnknownAnalyzerName(t *testing.T) {
	files := map[string]string{"internal/foo/foo.go": `package foo

//cdelint:allow warptime this analyzer does not exist
func F() {}
`}
	wantDiags(t, analyze(t, files, []*Analyzer{Walltime}),
		`[cdelint] allow comment names unknown analyzer "warptime"`)
}

// TestFactPropagation drives the fact store across packages: an analyzer
// exports a fact about an object while visiting its defining package and
// reads it back through the object's identity from an importing package.
func TestFactPropagation(t *testing.T) {
	var got []string
	probe := &Analyzer{
		Name: "probe",
		Run: func(p *Pass) {
			switch p.Pkg.RelPath {
			case "internal/a":
				obj := p.Pkg.Types.Scope().Lookup("Answer")
				if obj == nil {
					t.Fatal("fixture object Answer not found")
				}
				p.ExportFact(obj, "note", "forty-two")
			case "internal/b":
				info := p.Info()
				for _, f := range p.Pkg.Files {
					ast.Inspect(f.AST, func(n ast.Node) bool {
						id, ok := n.(*ast.Ident)
						if !ok || id.Name != "Answer" {
							return true
						}
						if obj := info.Uses[id]; obj != nil {
							if v, ok := p.ImportFact(obj, "note"); ok {
								got = append(got, v.(string))
							}
						}
						return true
					})
				}
			}
		},
	}
	files := map[string]string{
		"go.mod": modFile,
		"internal/a/a.go": `package a

const Answer = 42
`,
		"internal/b/b.go": `package b

import "fixmod/internal/a"

func Use() int { return a.Answer }
`,
	}
	wantDiags(t, analyze(t, files, []*Analyzer{probe}))
	if len(got) != 1 || got[0] != "forty-two" {
		t.Fatalf("fact round trip = %v, want [forty-two]", got)
	}
}

func TestSelect(t *testing.T) {
	picked, err := Select("hotalloc,errflow")
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].Name != "hotalloc" || picked[1].Name != "errflow" {
		t.Fatalf("Select = %v", picked)
	}
	if _, err := Select("hotalloc,bogus"); err == nil {
		t.Fatal("Select accepted an unknown analyzer name")
	}
}

func TestAnalyzersComplete(t *testing.T) {
	want := []string{
		"walltime", "detrand", "ctxflow", "mutexcopy", "goleak",
		"wiresafe", "hotalloc", "exhaustive", "simtime", "errflow",
	}
	all := Analyzers()
	if len(all) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, all[i].Name, name)
		}
	}
}
