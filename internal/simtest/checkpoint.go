package simtest

import (
	"fmt"
	"time"

	"dnscde/internal/loadbal"
	"dnscde/internal/worldstate"
)

// Snapshot captures the world's full mutable state at a quiescent
// barrier into a worldstate.Image. app is an opaque application payload
// (the scenario layer records which workload the barrier sits between);
// it rides along uninterpreted.
//
// The world must be quiescent: no events pending on any scheduler lane or
// mailbox, no exchanges in flight. Inside RunSequenced that holds exactly
// between workloads — every probe is a completed Await/Resume chain — so
// "between two workload loop iterations" is the natural barrier.
// Snapshot returns worldstate.ErrBusy otherwise and captures nothing.
//
// Not captured (see DESIGN.md §14): authoritative-zone records and query
// logs for sessions created before the barrier. Sessions are never
// re-queried after their workload completes — each workload creates fresh
// sessions with fresh names — so the zone tail is dead state; the session
// cursor is captured so post-restore sessions get the same names.
func (w *World) Snapshot(app []byte) (*worldstate.Image, error) {
	if w.Sharded != nil {
		if !w.Sharded.Quiescent() {
			return nil, worldstate.ErrBusy
		}
	} else if !w.Sched.Quiescent() {
		return nil, worldstate.ErrBusy
	}

	var barrier = w.Sched.Now()
	if w.Sharded != nil {
		barrier = w.Sharded.Now()
	}
	img := &worldstate.Image{
		Meta: worldstate.Meta{
			Seed:          w.seed,
			ClockUnixNano: w.Clock.Now().UnixNano(),
			BarrierT:      barrier,
			NextIngress:   w.nextIngress,
			NextEgress:    w.nextEgress,
			NextClient:    w.nextClient,
			SessionCursor: w.Infra.SessionCursor(),
		},
		Network: worldstate.Network{
			Stats:   w.Net.SnapshotStats(),
			Sources: w.Net.CheckpointSources(),
		},
		App: app,
	}
	for _, p := range w.platforms {
		st, err := p.Checkpoint()
		if err != nil {
			return nil, err
		}
		wp := worldstate.Platform{Name: p.Config().Name, State: st}
		for _, c := range p.Caches() {
			wp.Caches = append(wp.Caches, worldstate.CacheState{
				ID:    c.ID,
				Stats: c.SnapshotStats(),
				Items: c.CheckpointItems(),
			})
		}
		img.Platforms = append(img.Platforms, wp)
	}
	if w.Metrics != nil {
		img.Metrics = w.Metrics.Snapshot()
	}
	return img, nil
}

// Restore overlays a snapshot onto this world, which must be freshly
// built from the same scenario and seed (same platforms in the same
// order, same selector strategies, nothing run yet). After Restore the
// world continues byte-identically to the world the snapshot was taken
// from. The image is validated in full before anything is mutated; on
// error (worldstate.ErrMismatch) the world is unchanged.
func (w *World) Restore(img *worldstate.Image) error {
	if err := w.validateImage(img); err != nil {
		return err
	}

	// Clocks. The virtual clock starts at the fixed epoch in every fresh
	// world, so advancing by the difference lands exactly on the captured
	// instant; the event clock is set directly at the quiescent barrier.
	w.Clock.Advance(time.Unix(0, img.Meta.ClockUnixNano).Sub(w.Clock.Now()))
	if w.Sharded != nil {
		w.Sharded.RestoreClock(img.Meta.BarrierT)
	} else {
		w.Sched.RestoreClock(img.Meta.BarrierT)
	}

	// Allocator cursors and session IDs.
	w.nextIngress = img.Meta.NextIngress
	w.nextEgress = img.Meta.NextEgress
	w.nextClient = img.Meta.NextClient
	w.Infra.RestoreSessionCursor(img.Meta.SessionCursor)

	// Network: RNG stream positions, fault chains, folded counters.
	if err := w.Net.RestoreSources(img.Network.Sources); err != nil {
		return err
	}
	w.Net.RestoreStats(img.Network.Stats)

	// Platforms and caches.
	for i, p := range w.platforms {
		wp := img.Platforms[i]
		if err := p.RestoreCheckpoint(wp.State); err != nil {
			return err
		}
		for j, c := range p.Caches() {
			c.RestoreItems(wp.Caches[j].Items)
			c.RestoreStats(wp.Caches[j].Stats)
		}
	}

	// Metrics: the fresh registry's counters are all zero (nothing has
	// run), so merging the captured snapshot reproduces every value; the
	// captured snapshot includes zero-valued counters, so the restored
	// handle set is a superset of the fresh one and later snapshots match
	// the uninterrupted run's exactly.
	if w.Metrics != nil {
		w.Metrics.MergeSnapshot("", img.Metrics)
	}
	return nil
}

// validateImage checks that img fits this world without mutating
// anything.
func (w *World) validateImage(img *worldstate.Image) error {
	if img.Meta.Seed != w.seed {
		return fmt.Errorf("%w: snapshot seed %d, world seed %d", worldstate.ErrMismatch, img.Meta.Seed, w.seed)
	}
	if w.Sharded != nil {
		if !w.Sharded.Quiescent() {
			return worldstate.ErrBusy
		}
	} else if !w.Sched.Quiescent() {
		return worldstate.ErrBusy
	}
	if len(img.Platforms) != len(w.platforms) {
		return fmt.Errorf("%w: snapshot has %d platforms, world has %d", worldstate.ErrMismatch, len(img.Platforms), len(w.platforms))
	}
	for i, p := range w.platforms {
		wp := img.Platforms[i]
		cfg := p.Config()
		if wp.Name != cfg.Name {
			return fmt.Errorf("%w: platform %d is %q in snapshot, %q in world", worldstate.ErrMismatch, i, wp.Name, cfg.Name)
		}
		fresh, ok := loadbal.CaptureState(cfg.Selector)
		if !ok {
			return fmt.Errorf("%w: platform %q selector %q is not checkpointable", worldstate.ErrMismatch, cfg.Name, cfg.Selector.Name())
		}
		if fresh.Kind != wp.State.Selector.Kind {
			return fmt.Errorf("%w: platform %q selector is %q in snapshot, %q in world", worldstate.ErrMismatch, cfg.Name, wp.State.Selector.Kind, fresh.Kind)
		}
		caches := p.Caches()
		if len(wp.Caches) != len(caches) {
			return fmt.Errorf("%w: platform %q has %d caches in snapshot, %d in world", worldstate.ErrMismatch, cfg.Name, len(wp.Caches), len(caches))
		}
		if len(wp.State.Down) != len(caches) {
			return fmt.Errorf("%w: platform %q has %d down flags for %d caches", worldstate.ErrMismatch, cfg.Name, len(wp.State.Down), len(caches))
		}
		for j, c := range caches {
			if wp.Caches[j].ID != c.ID {
				return fmt.Errorf("%w: platform %q cache %d is %q in snapshot, %q in world", worldstate.ErrMismatch, cfg.Name, j, wp.Caches[j].ID, c.ID)
			}
		}
	}
	return nil
}
