package simtest

import (
	"context"
	"testing"

	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
)

func TestNewWiresWorld(t *testing.T) {
	w, err := New(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if w.Net == nil || w.Clock == nil || w.Tree == nil || w.Infra == nil {
		t.Fatal("incomplete world")
	}
	// Root, TLD and the CDE servers must be reachable.
	for _, addr := range []string{"203.0.113.253", "203.0.113.254", "203.0.113.20", "203.0.113.21"} {
		if !w.Net.Registered(netsim.MustAddr(addr)) {
			t.Errorf("host %s not registered", addr)
		}
	}
}

func TestMustNewPanicsOnlyOnError(t *testing.T) {
	// Normal options never panic.
	_ = MustNew(Options{Seed: 1})
}

func TestNewPlatformAllocatesDisjointRanges(t *testing.T) {
	w := MustNew(Options{Seed: 2})
	a, err := w.NewPlatform(PlatformSpec{Ingress: 3, Egress: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.NewPlatform(PlatformSpec{Ingress: 2, Egress: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range []*platform.Platform{a, b} {
		for _, ip := range p.Config().IngressIPs {
			if seen[ip.String()] {
				t.Fatalf("ingress %v reused", ip)
			}
			seen[ip.String()] = true
		}
		for _, ip := range p.Config().EgressIPs {
			if seen[ip.String()] {
				t.Fatalf("egress %v reused", ip)
			}
			seen[ip.String()] = true
		}
	}
}

func TestNewPlatformDefaults(t *testing.T) {
	w := MustNew(Options{Seed: 3})
	p, err := w.NewPlatform(PlatformSpec{})
	if err != nil {
		t.Fatal(err)
	}
	gt := p.GroundTruth()
	if gt.Caches != 1 || gt.IngressIPs != 1 || gt.EgressIPs != 1 {
		t.Errorf("defaults = %+v", gt)
	}
}

func TestNextClientAddrUnique(t *testing.T) {
	w := MustNew(Options{Seed: 4})
	a, b := w.NextClientAddr(), w.NextClientAddr()
	if a == b {
		t.Error("client addresses collide")
	}
}

func TestEndToEndResolutionThroughWorld(t *testing.T) {
	w := MustNew(Options{Seed: 6})
	p, err := w.NewPlatform(PlatformSpec{Caches: 2})
	if err != nil {
		t.Fatal(err)
	}
	session, err := w.Infra.NewHierarchySession(1)
	if err != nil {
		t.Fatal(err)
	}
	r := w.NewStub(p.Config().IngressIPs[0])
	res, err := r.Lookup(context.Background(), session.ProbeName(1), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Error("no records through full stack")
	}
	prober := w.DirectProber(p.Config().IngressIPs[0])
	if !prober.Direct() {
		t.Error("direct prober not direct")
	}
}
