// Package simtest wires complete simulated Internets — network, clock,
// root/TLD tree, CDE infrastructure and target platforms — for tests,
// examples and the experiment drivers. It removes the boilerplate of
// assembling the same topology in every package.
package simtest

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"dnscde/internal/clock"
	"dnscde/internal/core"
	"dnscde/internal/dnstree"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/netsim/des"
	"dnscde/internal/platform"
	"dnscde/internal/stub"
)

// Default infrastructure addresses.
var (
	DefaultParentAddr = netip.MustParseAddr("203.0.113.20")
	DefaultChildAddr  = netip.MustParseAddr("203.0.113.21")
	DefaultTarget     = netip.MustParseAddr("192.0.2.80")
	DefaultClient     = netip.MustParseAddr("198.18.0.1")
)

// World is a wired simulated Internet with CDE infrastructure.
type World struct {
	Net   *netsim.Network
	Clock *clock.Virtual
	Tree  *dnstree.Tree
	Infra *core.Infra
	// Sched is the world's discrete-event scheduler for callers that
	// multiplex many concurrent client exchanges on one event loop
	// (netsim.EventExchanger / ExchangeRetryEvent). Blocking Exchange
	// calls do not use it — they drive private pooled schedulers — so a
	// world mixes both styles freely. Single-threaded: one goroutine owns
	// Sched for the duration of a run. In a sharded world (Options.Shards
	// ≥ 1) this is lane 0 of Sharded.
	Sched *des.Scheduler
	// Sharded is the multi-lane scheduler universe when the world was
	// created with Options.Shards ≥ 1, nil otherwise. Workload code runs
	// on it through RunSequenced.
	Sharded *des.ShardedScheduler
	// Metrics is the cost-accounting registry wired through the network,
	// infrastructure and every platform built by NewPlatform; nil when the
	// world was created without one (all instrumentation is then no-op).
	Metrics *metrics.Registry

	seed           int64
	nextIngress    netip.Addr
	nextEgress     netip.Addr
	nextClient     netip.Addr
	platformFaults *netsim.FaultProfile
	// platforms tracks every platform built via NewPlatform in creation
	// order — the stable identity a world checkpoint is keyed by.
	platforms []*platform.Platform
}

// Options configures New.
type Options struct {
	// Seed for the network RNG; 0 uses 1.
	Seed int64
	// NSProfile is the link profile of the authoritative servers;
	// zero value uses 10ms one-way, no jitter, no loss.
	NSProfile netsim.LinkProfile
	// TreeProfile is the link profile of root and TLD servers; zero
	// value uses 5ms one-way.
	TreeProfile netsim.LinkProfile
	// Metrics, when non-nil, is attached to the network, the CDE
	// infrastructure and every platform the world creates.
	Metrics *metrics.Registry
	// PlatformFaults, when non-nil, is injected into the link profile of
	// every platform the world creates (unless a spec carries its own
	// fault profile) — the switchboard for running any experiment under
	// the deterministic fault substrate.
	PlatformFaults *netsim.FaultProfile
	// Shards, when ≥ 1, builds the world on a sharded scheduler with that
	// many event-loop lanes: exchanges run as event chains partitioned
	// across lanes by source/destination address, and handlers that speak
	// netsim.EventHandler serve natively on the loops. 0 keeps the legacy
	// single standalone scheduler (blocking exchanges on pooled private
	// schedulers).
	Shards int
}

// New builds a world: simulated network, virtual clock, root + TLD, and a
// CDE infrastructure on cache.example.
func New(opts Options) (*World, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.NSProfile == (netsim.LinkProfile{}) {
		opts.NSProfile = netsim.LinkProfile{OneWay: 10 * time.Millisecond}
	}
	if opts.TreeProfile == (netsim.LinkProfile{}) {
		opts.TreeProfile = netsim.LinkProfile{OneWay: 5 * time.Millisecond}
	}
	w := &World{
		Net:            netsim.New(opts.Seed),
		Clock:          clock.NewVirtual(),
		Metrics:        opts.Metrics,
		seed:           opts.Seed,
		nextIngress:    netip.MustParseAddr("10.10.0.1"),
		nextEgress:     netip.MustParseAddr("10.20.0.1"),
		nextClient:     netip.MustParseAddr("10.30.0.1"),
		platformFaults: opts.PlatformFaults,
	}
	if opts.Shards >= 1 {
		w.Sharded = des.NewSharded(opts.Shards)
		w.Sched = w.Sharded.LaneScheduler(0)
	} else {
		w.Sched = des.NewScheduler()
	}
	if opts.Metrics != nil {
		w.Net.SetMetrics(opts.Metrics)
	}
	tree, err := dnstree.Build(w.Net, w.Clock, opts.TreeProfile)
	if err != nil {
		return nil, fmt.Errorf("simtest: %w", err)
	}
	w.Tree = tree
	infra, err := core.NewInfra(tree, w.Clock, core.InfraConfig{
		ParentAddr: DefaultParentAddr,
		ChildAddr:  DefaultChildAddr,
		Target:     DefaultTarget,
		Profile:    opts.NSProfile,
		Metrics:    opts.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("simtest: %w", err)
	}
	w.Infra = infra
	return w, nil
}

// MustNew is New for test setup; it panics on error.
func MustNew(opts Options) *World {
	w, err := New(opts)
	if err != nil {
		panic(err)
	}
	return w
}

// PlatformSpec describes a platform to create; zero fields get defaults.
type PlatformSpec struct {
	Name    string
	Caches  int
	Ingress int
	Egress  int
	Seed    int64
	Profile netsim.LinkProfile
	Mutate  func(*platform.Config)
}

// NewPlatform creates a platform with fresh ingress/egress address ranges
// carved from the world's allocator.
func (w *World) NewPlatform(spec PlatformSpec) (*platform.Platform, error) {
	if spec.Caches == 0 {
		spec.Caches = 1
	}
	if spec.Ingress == 0 {
		spec.Ingress = 1
	}
	if spec.Egress == 0 {
		spec.Egress = 1
	}
	if spec.Name == "" {
		spec.Name = "platform"
	}
	if spec.Profile == (netsim.LinkProfile{}) {
		spec.Profile = netsim.LinkProfile{OneWay: 2 * time.Millisecond}
	}
	if spec.Profile.Faults == nil {
		spec.Profile.Faults = w.platformFaults
	}
	ingress := netsim.AddrRange(w.nextIngress, spec.Ingress)
	w.nextIngress = ingress[len(ingress)-1].Next()
	egress := netsim.AddrRange(w.nextEgress, spec.Egress)
	w.nextEgress = egress[len(egress)-1].Next()

	cfg := platform.Config{
		Name:       spec.Name,
		IngressIPs: ingress,
		EgressIPs:  egress,
		CacheCount: spec.Caches,
		Roots:      w.Tree.Roots(),
		Clock:      w.Clock,
		Seed:       spec.Seed,
		Metrics:    w.Metrics,
	}
	if spec.Mutate != nil {
		spec.Mutate(&cfg)
	}
	p, err := platform.New(cfg, w.Net, spec.Profile)
	if err != nil {
		return nil, err
	}
	w.platforms = append(w.platforms, p)
	return p, nil
}

// Platforms returns the platforms built via NewPlatform, in creation
// order.
func (w *World) Platforms() []*platform.Platform {
	out := make([]*platform.Platform, len(w.platforms))
	copy(out, w.platforms)
	return out
}

// NextClientAddr allocates a fresh client host address.
func (w *World) NextClientAddr() netip.Addr {
	addr := w.nextClient
	w.nextClient = w.nextClient.Next()
	return addr
}

// NewStub creates a stub resolver (browser + OS caches) for a fresh
// client host using the given platform ingress IP.
func (w *World) NewStub(platformIP netip.Addr) *stub.Resolver {
	return stub.New(stub.Config{
		ClientAddr: w.NextClientAddr(),
		PlatformIP: platformIP,
		Clock:      w.Clock,
	}, w.Net)
}

// DirectProber creates a direct prober for the given ingress IP from a
// fresh client host.
func (w *World) DirectProber(ingress netip.Addr) *core.DirectProber {
	return core.NewDirectProber(w.Net, w.NextClientAddr(), ingress, 0)
}

// RunSequenced executes fn — a blocking, strictly sequential workload:
// probes one after another, never two in flight — against the world. On a
// legacy world it simply calls fn. On a sharded world it runs fn on its
// own goroutine under a des.Process, with the process in fn's context so
// every nested ExchangeRetry rides the sharded event loops, and drives
// the scheduler until both fn and all outstanding event chains finish.
// The strict sequencing is what makes sharded runs byte-identical to
// legacy runs at any shard count: every RNG draw in the workload happens
// in causal chain order (DESIGN.md §12).
func (w *World) RunSequenced(ctx context.Context, fn func(ctx context.Context) error) error {
	if w.Sharded == nil {
		return fn(ctx)
	}
	proc := w.Sharded.NewProcess()
	var ferr error
	var panicked any
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if des.Aborted(r) {
					// The universe died (a lane panic elsewhere); Run
					// reports the cause.
					return
				}
				panicked = r
			}
			proc.Finish()
		}()
		ferr = fn(netsim.WithProcess(ctx, proc))
	}()
	if err := w.Sharded.Run(); err != nil {
		return fmt.Errorf("simtest: sharded run: %w", err)
	}
	// Run returns only after every process finished; proc.Finish's mutex
	// release happens-before the coordinator's final check, so reading
	// ferr/panicked here is race-free.
	if panicked != nil {
		panic(panicked)
	}
	return ferr
}
