package smtpsim

import (
	"context"

	"dnscde/internal/core"
	"dnscde/internal/dnswire"
)

// Prober adapts an SMTP server into a core.Prober: each probe sends one
// email whose envelope-from domain is the probe name, so the enterprise's
// resolver queries that name (under the qtypes of the server's check
// policy). The prober sees no DNS response — the measurement signal is
// entirely on the nameserver side, which is precisely the §IV-B2
// indirect-ingress setting.
type Prober struct {
	server *Server
}

var _ core.Prober = (*Prober)(nil)

// NewProber wraps an SMTP server.
func NewProber(s *Server) *Prober { return &Prober{server: s} }

// Probe implements core.Prober. qtype is ignored: the server's policy
// decides which record types it queries.
func (p *Prober) Probe(ctx context.Context, name string, _ dnswire.Type) (core.ProbeResult, error) {
	if err := SendProbe(ctx, p.server, name); err != nil {
		return core.ProbeResult{}, err
	}
	return core.ProbeResult{}, nil
}

// Direct implements core.Prober: SMTP probing is always indirect.
func (*Prober) Direct() bool { return false }
