package smtpsim

import (
	"context"
	"testing"

	"dnscde/internal/core"
	"dnscde/internal/dnswire"
	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
)

// fixture builds a world with one enterprise platform and an SMTP server
// resolving through it.
func fixture(t *testing.T, caches int, policy CheckPolicy) (*simtest.World, *Server) {
	t.Helper()
	w := simtest.MustNew(simtest.Options{Seed: 17})
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "enterprise", Caches: caches,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(3) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r := w.NewStub(plat.Config().IngressIPs[0])
	return w, NewServer("enterprise-1.example", policy, r)
}

func allChecks() CheckPolicy {
	return CheckPolicy{SPFTXT: true, SPFQtype: true, DKIM: true, ADSP: true, DMARC: true, MXBounce: true}
}

func TestDialogHappyPath(t *testing.T) {
	_, srv := fixture(t, 1, CheckPolicy{})
	ss := srv.NewSession()
	steps := []struct {
		line string
		want int
	}{
		{"EHLO prober.example", 250},
		{"MAIL FROM:<probe@h1.cache.example>", 250},
		{"RCPT TO:<nobody@enterprise-1.example>", 250},
		{"DATA", 354},
		{".", 250},
		{"QUIT", 221},
	}
	for _, s := range steps {
		code, err := ss.Command(context.Background(), s.line)
		if err != nil {
			t.Fatalf("%q: %v", s.line, err)
		}
		if code != s.want {
			t.Errorf("%q: code = %d, want %d", s.line, code, s.want)
		}
	}
}

func TestDialogSequenceErrors(t *testing.T) {
	_, srv := fixture(t, 1, CheckPolicy{})
	ss := srv.NewSession()
	if code, _ := ss.Command(context.Background(), "MAIL FROM:<a@b.example>"); code != 503 {
		t.Errorf("MAIL before HELO: %d", code)
	}
	if code, _ := ss.Command(context.Background(), "RCPT TO:<a@b.example>"); code != 503 {
		t.Errorf("RCPT before MAIL: %d", code)
	}
	if code, _ := ss.Command(context.Background(), "DATA"); code != 503 {
		t.Errorf("DATA before RCPT: %d", code)
	}
	if code, _ := ss.Command(context.Background(), "BOGUS"); code != 500 {
		t.Errorf("unknown verb: %d", code)
	}
	if code, _ := ss.Command(context.Background(), "."); code != 500 {
		t.Errorf("terminator outside DATA: %d", code)
	}
}

func TestDialogBadPaths(t *testing.T) {
	_, srv := fixture(t, 1, CheckPolicy{})
	ss := srv.NewSession()
	if _, err := ss.Command(context.Background(), "EHLO x"); err != nil {
		t.Fatal(err)
	}
	if code, _ := ss.Command(context.Background(), "MAIL TO:<a@b>"); code != 500 {
		t.Errorf("MAIL with TO: %d", code)
	}
	if code, _ := ss.Command(context.Background(), "MAIL FROM:<noatsign>"); code != 500 {
		t.Errorf("address without @: %d", code)
	}
}

func TestRejectAtRCPT(t *testing.T) {
	w, srv := fixture(t, 1, allChecks())
	srv.RejectAtRCPT = true
	ss := srv.NewSession()
	_, _ = ss.Command(context.Background(), "EHLO x")
	_, _ = ss.Command(context.Background(), "MAIL FROM:<probe@h9.cache.example>")
	code, _ := ss.Command(context.Background(), "RCPT TO:<ghost@enterprise-1.example>")
	if code != 550 {
		t.Fatalf("RCPT to ghost: %d, want 550", code)
	}
	_, _ = ss.Command(context.Background(), "QUIT")
	// No DSN → no MX query for the sender domain.
	if got := w.Infra.Parent.Log().CountNameType("h9.cache.example.", dnswire.TypeMX); got != 0 {
		t.Errorf("MX queries = %d, want 0 when rejecting at RCPT", got)
	}
}

func TestSenderChecksQueryExpectedNames(t *testing.T) {
	w, srv := fixture(t, 1, allChecks())
	if err := SendProbe(context.Background(), srv, "probe-domain.cache.example"); err != nil {
		t.Fatal(err)
	}
	log := w.Infra.Parent.Log()
	checks := []struct {
		label string
		name  string
		typ   dnswire.Type
	}{
		{"spf-txt", "probe-domain.cache.example.", dnswire.TypeTXT},
		{"spf-qtype", "probe-domain.cache.example.", dnswire.TypeSPF},
		{"dkim", "selector1._domainkey.probe-domain.cache.example.", dnswire.TypeTXT},
		{"adsp", "_adsp._domainkey.probe-domain.cache.example.", dnswire.TypeTXT},
		{"dmarc", "_dmarc.probe-domain.cache.example.", dnswire.TypeTXT},
		{"mx-bounce", "probe-domain.cache.example.", dnswire.TypeMX},
	}
	for _, c := range checks {
		if got := log.CountNameType(c.name, c.typ); got != 1 {
			t.Errorf("%s: %d queries for %s %v, want 1", c.label, got, c.name, c.typ)
		}
	}
	// No MX exists for the probe domain → RFC 5321 A fallback.
	if got := log.CountNameType("probe-domain.cache.example.", dnswire.TypeA); got != 1 {
		t.Errorf("A fallback queries = %d, want 1", got)
	}
}

func TestPolicySubset(t *testing.T) {
	w, srv := fixture(t, 1, CheckPolicy{DMARC: true})
	if err := SendProbe(context.Background(), srv, "only-dmarc.cache.example"); err != nil {
		t.Fatal(err)
	}
	log := w.Infra.Parent.Log()
	if got := log.CountNameType("_dmarc.only-dmarc.cache.example.", dnswire.TypeTXT); got != 1 {
		t.Errorf("DMARC queries = %d", got)
	}
	if got := log.CountNameType("only-dmarc.cache.example.", dnswire.TypeTXT); got != 0 {
		t.Errorf("unexpected SPF queries = %d", got)
	}
	if got := log.CountNameType("only-dmarc.cache.example.", dnswire.TypeMX); got != 0 {
		t.Errorf("unexpected MX queries = %d", got)
	}
}

func TestEnumerateChainViaSMTP(t *testing.T) {
	// The full §IV-B2a measurement through the SMTP channel: emails with
	// alias sender domains; arrivals for the common CNAME target count
	// the enterprise's caches.
	for _, n := range []int{1, 3} {
		w, srv := fixture(t, n, CheckPolicy{SPFTXT: true, MXBounce: true})
		prober := NewProber(srv)
		res, err := core.EnumerateChain(context.Background(), prober, w.Infra,
			core.EnumOptions{Queries: core.RecommendedQueries(n, 0.999)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Caches != n {
			t.Errorf("n=%d: measured %d caches via SMTP", n, res.Caches)
		}
	}
}

func TestEnumerateHierarchyViaSMTP(t *testing.T) {
	for _, n := range []int{1, 4} {
		w, srv := fixture(t, n, allChecks())
		prober := NewProber(srv)
		res, err := core.EnumerateHierarchy(context.Background(), prober, w.Infra,
			core.EnumOptions{Queries: core.RecommendedQueries(n, 0.999)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Caches != n {
			t.Errorf("n=%d: measured %d caches via SMTP hierarchy", n, res.Caches)
		}
	}
}

func TestProberIsIndirect(t *testing.T) {
	_, srv := fixture(t, 1, allChecks())
	var p core.Prober = NewProber(srv)
	if p.Direct() {
		t.Error("SMTP prober claims direct access")
	}
}

func TestHelpers(t *testing.T) {
	if v, a := splitVerb("mail FROM:<x@y>"); v != "MAIL" || a != "FROM:<x@y>" {
		t.Errorf("splitVerb = %q, %q", v, a)
	}
	if v, _ := splitVerb("."); v != "." {
		t.Errorf("terminator verb = %q", v)
	}
	if addr, ok := parsePath("FROM:<a@b.example>", "FROM:"); !ok || addr != "a@b.example" {
		t.Errorf("parsePath = %q, %v", addr, ok)
	}
	if _, ok := parsePath("FROM:<>", "FROM:"); ok {
		t.Error("empty path accepted")
	}
	if local, domain := splitAddress("user@dom.example"); local != "user" || domain != "dom.example" {
		t.Errorf("splitAddress = %q, %q", local, domain)
	}
	if got := senderDomain("u@D.Example"); got != "d.example." {
		t.Errorf("senderDomain = %q", got)
	}
	if got := senderDomain("bare"); got != "" {
		t.Errorf("senderDomain(bare) = %q", got)
	}
}
