// Package smtpsim simulates the paper's §III-B data-collection channel:
// SMTP servers of enterprise networks that, upon receiving mail for a
// nonexistent mailbox, trigger DNS queries through their local resolution
// platform — sender-authentication lookups (SPF, DKIM, ADSP, DMARC) at
// MAIL FROM time and MX/A lookups when generating the RFC 5321 Delivery
// Status Notification (bounce).
//
// The prober controls the *sender domain* of the probe email, so each
// message makes the enterprise's resolver query prober-chosen names — an
// indirect ingress channel in the sense of §IV-B2.
package smtpsim

import (
	"context"
	"fmt"
	"strings"

	"dnscde/internal/dnswire"
	"dnscde/internal/stub"
)

// CheckPolicy describes which DNS-based checks an SMTP server performs on
// inbound mail. The booleans mirror the rows of Table I; real servers run
// any subset.
type CheckPolicy struct {
	// SPFTXT: modern SPF lookup via TXT qtype (69.6% of the paper's
	// enterprise population).
	SPFTXT bool
	// SPFQtype: obsolete dedicated SPF RR type, RFC 7208 §3.1 (14.2%).
	SPFQtype bool
	// DKIM: selector._domainkey.<domain> TXT (0.3%).
	DKIM bool
	// ADSP: _adsp._domainkey.<domain> TXT (2%).
	ADSP bool
	// DMARC: _dmarc.<domain> TXT (35.3%).
	DMARC bool
	// MXBounce: MX + A lookups for the sender domain when generating the
	// DSN (30.4%).
	MXBounce bool
}

// DefaultTableIFractions are the population fractions reported in Table I.
var DefaultTableIFractions = map[string]float64{
	"spf-txt":   0.696,
	"spf-qtype": 0.142,
	"adsp":      0.02,
	"dkim":      0.003,
	"dmarc":     0.353,
	"mx-bounce": 0.304,
}

// SMTP reply codes used by the simulated dialog.
const (
	codeReady      = 220
	codeBye        = 221
	codeOK         = 250
	codeStartInput = 354
	codeNoMailbox  = 550
	codeBadSeq     = 503
	codeUnknown    = 500
)

// Server is one enterprise SMTP server bound to a local resolution
// platform via its stub resolver.
type Server struct {
	// Domain the server receives mail for, e.g. "enterprise-3.example.".
	Domain string
	// Mailboxes lists the existing local parts; probe mail targets a
	// missing one.
	Mailboxes map[string]bool
	// Policy selects the DNS checks.
	Policy CheckPolicy
	// RejectAtRCPT, when true, refuses unknown mailboxes during the
	// dialog (550) and never bounces; otherwise the server accepts and
	// generates a DSN afterwards (the paper's bounce path).
	RejectAtRCPT bool

	resolver *stub.Resolver
}

// NewServer creates an SMTP server resolving through r.
func NewServer(domain string, policy CheckPolicy, r *stub.Resolver) *Server {
	return &Server{
		Domain:    dnswire.CanonicalName(domain),
		Mailboxes: map[string]bool{"postmaster": true},
		Policy:    policy,
		resolver:  r,
	}
}

// Session is one SMTP dialog with the server.
type Session struct {
	srv *Server

	helloDone bool
	sender    string // envelope-from address
	rcpts     []string
	inData    bool
	dataDone  bool
}

// NewSession opens a dialog (the 220 greeting is implicit).
func (s *Server) NewSession() *Session { return &Session{srv: s} }

// Command feeds one SMTP command line to the session and returns the
// reply code. Only the command verbs the probe path needs are
// implemented: HELO/EHLO, MAIL FROM, RCPT TO, DATA, QUIT.
func (ss *Session) Command(ctx context.Context, line string) (int, error) {
	verb, arg := splitVerb(line)
	switch verb {
	case "HELO", "EHLO":
		ss.helloDone = true
		return codeOK, nil
	case "MAIL":
		if !ss.helloDone {
			return codeBadSeq, nil
		}
		addr, ok := parsePath(arg, "FROM:")
		if !ok {
			return codeUnknown, nil
		}
		ss.sender = addr
		// Sender-authentication checks fire here, against the
		// prober-controlled sender domain.
		ss.srv.senderChecks(ctx, senderDomain(addr))
		return codeOK, nil
	case "RCPT":
		if ss.sender == "" {
			return codeBadSeq, nil
		}
		addr, ok := parsePath(arg, "TO:")
		if !ok {
			return codeUnknown, nil
		}
		local, domain := splitAddress(addr)
		if dnswire.CanonicalName(domain) == ss.srv.Domain && !ss.srv.Mailboxes[local] && ss.srv.RejectAtRCPT {
			return codeNoMailbox, nil
		}
		ss.rcpts = append(ss.rcpts, addr)
		return codeOK, nil
	case "DATA":
		if len(ss.rcpts) == 0 {
			return codeBadSeq, nil
		}
		ss.inData = true
		return codeStartInput, nil
	case ".":
		if !ss.inData {
			return codeUnknown, nil
		}
		ss.inData, ss.dataDone = false, true
		return codeOK, nil
	case "QUIT":
		// Message accepted for a nonexistent box: RFC 5321 mandates a DSN,
		// whose delivery needs MX/A lookups on the sender domain.
		if ss.dataDone && ss.needsBounce() {
			ss.srv.bounce(ctx, senderDomain(ss.sender))
		}
		return codeBye, nil
	default:
		return codeUnknown, nil
	}
}

// needsBounce reports whether any accepted recipient does not exist.
func (ss *Session) needsBounce() bool {
	for _, rcpt := range ss.rcpts {
		local, domain := splitAddress(rcpt)
		if dnswire.CanonicalName(domain) == ss.srv.Domain && !ss.srv.Mailboxes[local] {
			return true
		}
	}
	return false
}

// senderChecks performs the MAIL-FROM-time DNS checks of the policy.
func (s *Server) senderChecks(ctx context.Context, domain string) {
	if domain == "" {
		return
	}
	if s.Policy.SPFTXT {
		_, _ = s.resolver.Lookup(ctx, domain, dnswire.TypeTXT)
	}
	if s.Policy.SPFQtype {
		_, _ = s.resolver.Lookup(ctx, domain, dnswire.TypeSPF)
	}
	if s.Policy.DKIM {
		_, _ = s.resolver.Lookup(ctx, "selector1._domainkey."+domain, dnswire.TypeTXT)
	}
	if s.Policy.ADSP {
		_, _ = s.resolver.Lookup(ctx, "_adsp._domainkey."+domain, dnswire.TypeTXT)
	}
	if s.Policy.DMARC {
		_, _ = s.resolver.Lookup(ctx, "_dmarc."+domain, dnswire.TypeTXT)
	}
}

// bounce performs the DSN-delivery lookups.
func (s *Server) bounce(ctx context.Context, domain string) {
	if domain == "" || !s.Policy.MXBounce {
		return
	}
	res, err := s.resolver.Lookup(ctx, domain, dnswire.TypeMX)
	if err == nil {
		for _, rr := range res.Records {
			if mx, ok := rr.Data.(dnswire.MXRecord); ok {
				_, _ = s.resolver.Lookup(ctx, mx.Host, dnswire.TypeA)
				return
			}
		}
	}
	// No MX: RFC 5321 §5.1 falls back to the domain's A record.
	_, _ = s.resolver.Lookup(ctx, domain, dnswire.TypeA)
}

// SendProbe drives a complete probe transaction: mail from
// probe@<senderDomain> to a nonexistent mailbox at the server's domain.
// This is the prober-side convenience used by the CDE SMTP channel.
func SendProbe(ctx context.Context, s *Server, senderDomain string) error {
	ss := s.NewSession()
	script := []string{
		"EHLO prober.example",
		"MAIL FROM:<probe@" + strings.TrimSuffix(dnswire.CanonicalName(senderDomain), ".") + ">",
		"RCPT TO:<nonexistent-mailbox@" + strings.TrimSuffix(s.Domain, ".") + ">",
		"DATA",
		".",
		"QUIT",
	}
	for _, line := range script {
		code, err := ss.Command(ctx, line)
		if err != nil {
			return fmt.Errorf("smtpsim: %q: %w", line, err)
		}
		if code >= 500 && code != codeNoMailbox {
			return fmt.Errorf("smtpsim: %q rejected with %d", line, code)
		}
	}
	return nil
}

// splitVerb splits "MAIL FROM:<x@y>" into ("MAIL", "FROM:<x@y>").
func splitVerb(line string) (string, string) {
	line = strings.TrimSpace(line)
	if line == "." {
		return ".", ""
	}
	verb, rest, _ := strings.Cut(line, " ")
	return strings.ToUpper(verb), strings.TrimSpace(rest)
}

// parsePath extracts the address from "FROM:<a@b>" / "TO:<a@b>".
func parsePath(arg, prefix string) (string, bool) {
	if !strings.HasPrefix(strings.ToUpper(arg), prefix) {
		return "", false
	}
	addr := strings.TrimSpace(arg[len(prefix):])
	addr = strings.TrimPrefix(addr, "<")
	addr = strings.TrimSuffix(addr, ">")
	if addr == "" || !strings.Contains(addr, "@") {
		return "", false
	}
	return addr, true
}

// splitAddress splits "local@domain".
func splitAddress(addr string) (local, domain string) {
	local, domain, _ = strings.Cut(addr, "@")
	return local, domain
}

// senderDomain returns the domain of an envelope address.
func senderDomain(addr string) string {
	_, domain := splitAddress(addr)
	if domain == "" {
		return ""
	}
	return dnswire.CanonicalName(domain)
}
