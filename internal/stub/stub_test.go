package stub

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"dnscde/internal/clock"
	"dnscde/internal/dnscache"
	"dnscde/internal/dnstree"
	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/platform"
	"dnscde/internal/zone"
)

var (
	parentNSAddr = netip.MustParseAddr("203.0.113.10")
	childNSAddr  = netip.MustParseAddr("203.0.113.11")
	targetAddr   = netip.MustParseAddr("192.0.2.80")
	clientAddr   = netip.MustParseAddr("198.18.0.1")
	ingressAddr  = netip.MustParseAddr("198.51.100.100")
)

type fixture struct {
	net    *netsim.Network
	clk    *clock.Virtual
	plat   *platform.Platform
	parent interface{ Log() interface{} }
}

func setup(t *testing.T, cacheCount int) (*netsim.Network, *clock.Virtual, *platform.Platform, *dnstree.Tree) {
	t.Helper()
	n := netsim.New(3)
	clk := clock.NewVirtual()
	tree, err := dnstree.Build(n, clk, netsim.LinkProfile{OneWay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := zone.BuildCNAMEChain("chain.example", 20, targetAddr, parentNSAddr, 300)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := zone.BuildHierarchy("cache.example", 20, targetAddr, parentNSAddr, childNSAddr, 300)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.AttachAuthority(parentNSAddr, netsim.LinkProfile{OneWay: 10 * time.Millisecond}, chain, hier.Parent); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.AttachAuthority(childNSAddr, netsim.LinkProfile{OneWay: 10 * time.Millisecond}, hier.Child); err != nil {
		t.Fatal(err)
	}
	plat, err := platform.New(platform.Config{
		Name:       "isp",
		IngressIPs: []netip.Addr{ingressAddr},
		EgressIPs:  []netip.Addr{netip.MustParseAddr("198.51.100.200")},
		CacheCount: cacheCount,
		Roots:      tree.Roots(),
		Clock:      clk,
		Seed:       5,
	}, n, netsim.LinkProfile{OneWay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return n, clk, plat, tree
}

func newStub(n *netsim.Network, clk clock.Clock) *Resolver {
	return New(Config{
		ClientAddr: clientAddr,
		PlatformIP: ingressAddr,
		Clock:      clk,
	}, n)
}

func TestLookupResolvesThroughPlatform(t *testing.T) {
	n, clk, _, _ := setup(t, 1)
	r := newStub(n, clk)
	res, err := r.Lookup(context.Background(), "x-1.sub.cache.example.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.FromLocalCache {
		t.Error("first lookup claimed a local hit")
	}
	if len(res.Records) != 1 {
		t.Fatalf("records = %v", res.Records)
	}
	if res.RTT == 0 {
		t.Error("no RTT recorded")
	}
}

func TestRepeatLookupServedLocally(t *testing.T) {
	// §IV-B limitation (1): "each hostname can be queried only once".
	n, clk, plat, _ := setup(t, 1)
	r := newStub(n, clk)
	if _, err := r.Lookup(context.Background(), "x-1.sub.cache.example.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	before := plat.SnapshotStats().Queries
	res, err := r.Lookup(context.Background(), "x-1.sub.cache.example.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromLocalCache {
		t.Error("repeat lookup went upstream")
	}
	if got := plat.SnapshotStats().Queries; got != before {
		t.Errorf("platform saw %d extra queries", got-before)
	}
}

func TestLocalTTLExpiryReleasesQuery(t *testing.T) {
	n, clk, plat, _ := setup(t, 1)
	r := newStub(n, clk)
	if _, err := r.Lookup(context.Background(), "x-2.sub.cache.example.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	clk.Advance(301 * time.Second)
	if _, err := r.Lookup(context.Background(), "x-2.sub.cache.example.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if got := plat.SnapshotStats().Queries; got != 2 {
		t.Errorf("platform saw %d queries, want 2 after TTL expiry", got)
	}
}

func TestBrowserCacheCapsTTL(t *testing.T) {
	// Browser caches pin entries for ~60s regardless of DNS TTL; after
	// that the OS cache still holds the record, so no upstream query.
	n, clk, plat, _ := setup(t, 1)
	r := newStub(n, clk)
	if _, err := r.Lookup(context.Background(), "x-3.sub.cache.example.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	clk.Advance(90 * time.Second) // browser layer expired, OS layer not
	res, err := r.Lookup(context.Background(), "x-3.sub.cache.example.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromLocalCache {
		t.Error("OS cache should still answer")
	}
	if got := plat.SnapshotStats().Queries; got != 1 {
		t.Errorf("platform saw %d queries, want 1", got)
	}
}

func TestDistinctNamesBypassLocalCaches(t *testing.T) {
	// The CNAME-chain bypass: distinct x-i names never hit local caches.
	n, clk, plat, _ := setup(t, 1)
	r := newStub(n, clk)
	for i := 1; i <= 10; i++ {
		res, err := r.Lookup(context.Background(), zone.ProbeName(i, "chain.example"), dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if res.FromLocalCache {
			t.Fatalf("probe %d answered locally", i)
		}
	}
	if got := plat.SnapshotStats().Queries; got != 10 {
		t.Errorf("platform saw %d queries, want 10", got)
	}
}

func TestLocalCachesStoreOnlyFinalAnswer(t *testing.T) {
	// §IV-B2a: local caches "only receive the final answer" — the alias
	// chain is resolved platform-side, and the local cache key is the
	// queried alias, not the target.
	n, clk, _, _ := setup(t, 1)
	r := newStub(n, clk)
	res, err := r.Lookup(context.Background(), zone.ProbeName(1, "chain.example"), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	// The answer contains CNAME + A; the target name itself must not be
	// separately cached locally.
	if len(res.Records) != 2 {
		t.Fatalf("records = %v", res.Records)
	}
	for _, c := range r.LocalCaches() {
		q := dnswire.Question{Name: "name.chain.example.", Type: dnswire.TypeA, Class: dnswire.ClassIN}
		if c.Contains(q, clk.Now()) {
			t.Errorf("cache %s holds the chain target", c.ID)
		}
	}
}

func TestDisableLayers(t *testing.T) {
	n, clk, plat, _ := setup(t, 1)
	r := New(Config{
		ClientAddr:          clientAddr,
		PlatformIP:          ingressAddr,
		Clock:               clk,
		DisableBrowserCache: true,
		DisableOSCache:      true,
	}, n)
	if got := len(r.LocalCaches()); got != 0 {
		t.Fatalf("layers = %d", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Lookup(context.Background(), "x-1.sub.cache.example.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if got := plat.SnapshotStats().Queries; got != 3 {
		t.Errorf("platform saw %d queries, want 3 with no local caches", got)
	}
}

func TestFlushLocal(t *testing.T) {
	n, clk, plat, _ := setup(t, 1)
	r := newStub(n, clk)
	if _, err := r.Lookup(context.Background(), "x-1.sub.cache.example.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	r.FlushLocal()
	if _, err := r.Lookup(context.Background(), "x-1.sub.cache.example.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if got := plat.SnapshotStats().Queries; got != 2 {
		t.Errorf("platform saw %d queries, want 2 after local flush", got)
	}
}

func TestCustomPolicies(t *testing.T) {
	n, clk, _, _ := setup(t, 1)
	browser := &dnscache.Policy{MaxTTL: 5 * time.Second, Capacity: 2}
	r := New(Config{
		ClientAddr:         clientAddr,
		PlatformIP:         ingressAddr,
		Clock:              clk,
		BrowserCachePolicy: browser,
		DisableOSCache:     true,
	}, n)
	if _, err := r.Lookup(context.Background(), "x-1.sub.cache.example.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	clk.Advance(6 * time.Second)
	res, err := r.Lookup(context.Background(), "x-1.sub.cache.example.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.FromLocalCache {
		t.Error("entry should have expired per custom 5s cap")
	}
}

func TestLookupErrorOnUnreachablePlatform(t *testing.T) {
	n := netsim.New(1)
	r := New(Config{ClientAddr: clientAddr, PlatformIP: ingressAddr, Clock: clock.NewVirtual()}, n)
	if _, err := r.Lookup(context.Background(), "a.example.", dnswire.TypeA); err == nil {
		t.Error("want error for unreachable platform")
	}
}
