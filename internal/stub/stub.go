// Package stub models the client-side DNS machinery that sits between an
// *indirect* prober and the resolution platform: the operating system's
// stub-resolver cache and the browser's internal cache (§IV-B of the
// paper: "local caches include caches in operating systems, caches in stub
// resolvers, caches in web browsers and web proxies").
//
// These local caches impose the two §IV-B limitations on indirect probing:
// (1) each hostname can effectively be queried only once until its TTL
// expires, and (2) the prober cannot control the timing of the queries.
// The CDE bypasses (CNAME chains and names hierarchies) are validated
// against this package.
package stub

import (
	"context"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"dnscde/internal/clock"
	"dnscde/internal/dnscache"
	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
)

// Resolver is a stub resolver with a chain of local caches in front of a
// recursive resolution platform. It is safe for concurrent use.
type Resolver struct {
	// localCaches are consulted in order (browser cache first, then OS
	// cache, mirroring a real client stack).
	localCaches []*dnscache.Cache
	conn        netsim.Exchanger
	platformIP  netip.Addr
	clk         clock.Clock
	retries     int
}

// Config configures a stub resolver.
type Config struct {
	// ClientAddr is the client host address queries originate from.
	ClientAddr netip.Addr
	// PlatformIP is the ingress IP of the recursive platform to use.
	PlatformIP netip.Addr
	// BrowserCache and OSCache enable the two local cache layers. Both
	// default to enabled with typical policies when nil Policy pointers
	// are kept; set Disable* to turn a layer off.
	DisableBrowserCache bool
	DisableOSCache      bool
	// BrowserCachePolicy defaults to a small cache with a browser-style
	// 60s cap on positive TTLs.
	BrowserCachePolicy *dnscache.Policy
	// OSCachePolicy defaults to an unbounded cache honouring TTLs.
	OSCachePolicy *dnscache.Policy
	// Clock drives cache TTLs; nil defaults to the wall clock.
	Clock clock.Clock
	// Retries per upstream exchange on timeout; zero defaults to 2.
	Retries int
}

// New creates a stub resolver sending queries over n.
func New(cfg Config, n *netsim.Network) *Resolver {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	retries := cfg.Retries
	if retries == 0 {
		retries = 2
	}
	r := &Resolver{
		conn:       n.Bind(cfg.ClientAddr),
		platformIP: cfg.PlatformIP,
		clk:        clk,
		retries:    retries,
	}
	if !cfg.DisableBrowserCache {
		policy := dnscache.Policy{MaxTTL: 60 * time.Second, Capacity: 256}
		if cfg.BrowserCachePolicy != nil {
			policy = *cfg.BrowserCachePolicy
		}
		r.localCaches = append(r.localCaches, dnscache.New("browser", policy))
	}
	if !cfg.DisableOSCache {
		policy := dnscache.Policy{Capacity: 4096}
		if cfg.OSCachePolicy != nil {
			policy = *cfg.OSCachePolicy
		}
		r.localCaches = append(r.localCaches, dnscache.New("os", policy))
	}
	return r
}

// Result describes one stub lookup.
type Result struct {
	// Records are the answer records (possibly a CNAME chain + address).
	Records []dnswire.RR
	RCode   dnswire.RCode
	// FromLocalCache reports whether the answer came from a local cache
	// without reaching the platform.
	FromLocalCache bool
	// RTT is the observed latency (zero on local hits).
	RTT time.Duration
}

// Lookup resolves (name, qtype) through the local cache chain and, on
// miss, the platform. Answers are inserted into every local cache layer.
func (r *Resolver) Lookup(ctx context.Context, name string, qtype dnswire.Type) (Result, error) {
	q := dnswire.Question{Name: dnswire.CanonicalName(name), Type: qtype, Class: dnswire.ClassIN}
	now := r.clk.Now()
	for _, c := range r.localCaches {
		if e, ok := c.Get(q, now); ok {
			return Result{Records: e.Records, RCode: e.RCode, FromLocalCache: true}, nil
		}
	}
	query := dnswire.NewQuery(nextStubID(), q.Name, q.Type)
	resp, rtt, err := netsim.ExchangeRetry(ctx, r.conn, query, r.platformIP, r.retries+1)
	if err != nil {
		return Result{}, fmt.Errorf("stub: lookup %s: %w", q.Name, err)
	}
	entry := dnscache.Entry{Records: resp.Answer, RCode: resp.Header.RCode, Authority: resp.Authority}
	// The local caches only ever see the *final* answer — the platform
	// resolves CNAME redirections internally (§IV-B2a: "The local caches
	// are not involved in the resolution process ... and only receive the
	// final answer").
	storedAt := r.clk.Now()
	for _, c := range r.localCaches {
		c.Put(q, entry, storedAt)
	}
	return Result{Records: resp.Answer, RCode: resp.Header.RCode, RTT: rtt}, nil
}

// LocalCaches exposes the layers for white-box assertions in tests.
func (r *Resolver) LocalCaches() []*dnscache.Cache {
	out := make([]*dnscache.Cache, len(r.localCaches))
	copy(out, r.localCaches)
	return out
}

// FlushLocal clears every local cache layer (e.g. a browser restart).
func (r *Resolver) FlushLocal() {
	for _, c := range r.localCaches {
		c.Flush()
	}
}

// _stubID generates message IDs for stub queries.
var _stubID atomic.Uint32

func nextStubID() uint16 { return uint16(_stubID.Add(1)) }
