package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("empty summary = %+v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("P%.0f = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

func TestCDFAtAndAbove(t *testing.T) {
	c := NewCDFInts([]int{1, 1, 2, 5, 20})
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.4}, {2, 0.6}, {5, 0.8}, {20, 1}, {100, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if got := c.Above(5); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Above(5) = %v", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDFInts([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got := c.Quantile(0.5); got != 5 {
		t.Errorf("median = %v", got)
	}
	if got := c.Quantile(1.0); got != 10 {
		t.Errorf("max = %v", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("min = %v", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDFInts([]int{1, 1, 3})
	pts := c.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].X != 1 || math.Abs(pts[0].Y-2.0/3) > 1e-12 {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[1].X != 3 || pts[1].Y != 1 {
		t.Errorf("second point = %+v", pts[1])
	}
}

func TestBubbleBinExact(t *testing.T) {
	xs := []int{1, 1, 2, 1}
	ys := []int{1, 1, 3, 1}
	bubbles := BubbleBin(xs, ys, 0)
	if len(bubbles) != 2 {
		t.Fatalf("bubbles = %v", bubbles)
	}
	if bubbles[0] != (Bubble{X: 1, Y: 1, Count: 3}) {
		t.Errorf("bubble 0 = %+v", bubbles[0])
	}
	if bubbles[1] != (Bubble{X: 2, Y: 3, Count: 1}) {
		t.Errorf("bubble 1 = %+v", bubbles[1])
	}
}

func TestBubbleBinLogSnap(t *testing.T) {
	// With base 2, values 4 and 5 both snap to 4 — neighbours merge.
	bubbles := BubbleBin([]int{4, 5, 500}, []int{1, 1, 30}, 2)
	if len(bubbles) != 2 {
		t.Fatalf("bubbles = %v", bubbles)
	}
	if bubbles[0].Count != 2 {
		t.Errorf("merged bubble = %+v", bubbles[0])
	}
}

func TestBubbleBinMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	BubbleBin([]int{1}, []int{1, 2}, 0)
}

func TestShares(t *testing.T) {
	got := Shares(map[string]int{"a": 3, "b": 1})
	if got["a"] != 0.75 || got["b"] != 0.25 {
		t.Errorf("shares = %v", got)
	}
	if len(Shares(map[string]int{})) != 0 {
		t.Error("empty shares")
	}
}

func TestFormatPercent(t *testing.T) {
	if got := FormatPercent(0.696); got != "69.6%" {
		t.Errorf("FormatPercent = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"Query type", "Fraction"}}
	tb.AddRow("Modern SPF (TXT)", "69.6%")
	tb.AddRow("DMARC", "35.3%")
	out := tb.String()
	if !strings.Contains(out, "Modern SPF (TXT)  69.6%") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("line count = %d", len(lines))
	}
}

func TestRenderCDFContainsSeries(t *testing.T) {
	c1 := NewCDFInts([]int{1, 1, 2, 3})
	c2 := NewCDFInts([]int{5, 10, 20, 40})
	out := RenderCDF([]string{"open", "isp"}, []*CDF{c1, c2}, 40, 10)
	if !strings.Contains(out, "* = open") || !strings.Contains(out, "o = isp") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "100%") || !strings.Contains(out, "0%") {
		t.Errorf("axis missing:\n%s", out)
	}
	if RenderCDF([]string{"x"}, nil, 10, 5) != "" {
		t.Error("mismatched render should be empty")
	}
}

func TestPropertyCDFMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]int, 1+r.Intn(50))
		for i := range xs {
			xs[i] = r.Intn(100)
		}
		c := NewCDFInts(xs)
		prev := -1.0
		for x := 0.0; x <= 100; x += 1 {
			v := c.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return c.At(100) == 1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyPercentileWithinRange(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(50))
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		p := r.Float64() * 100
		v := Percentile(xs, p)
		s := Summarize(xs)
		return v >= s.Min && v <= s.Max
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyBubbleCountsPreserved(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		xs := make([]int, n)
		ys := make([]int, n)
		for i := range xs {
			xs[i] = 1 + r.Intn(500)
			ys[i] = 1 + r.Intn(40)
		}
		total := 0
		for _, b := range BubbleBin(xs, ys, 2) {
			total += b.Count
		}
		return total == n
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, 0},
		{"empty p0", []float64{}, 0, 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 50, 7},
		{"single p100", []float64{7}, 100, 7},
		{"negative p clamps to min", []float64{3, 1, 2}, -10, 1},
		{"p over 100 clamps to max", []float64{3, 1, 2}, 150, 3},
		{"p0 is min", []float64{5, 4, 9}, 0, 4},
		{"p100 is max", []float64{5, 4, 9}, 100, 9},
		{"median interpolates", []float64{1, 2, 3, 4}, 50, 2.5},
		{"exact order statistic", []float64{10, 20, 30}, 50, 20},
		{"duplicates", []float64{2, 2, 2, 2}, 75, 2},
		{"unsorted input", []float64{9, 1, 5}, 50, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Percentile(tt.xs, tt.p); got != tt.want {
				t.Errorf("Percentile(%v, %v) = %v, want %v", tt.xs, tt.p, got, tt.want)
			}
		})
	}
}

func TestCDFQuantileEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"empty", nil, 0.5, 0},
		{"empty q1", nil, 1, 0},
		{"single q0", []float64{4}, 0, 4},
		{"single q1", []float64{4}, 1, 4},
		{"negative q clamps to min", []float64{2, 8}, -0.5, 2},
		{"q over 1 clamps to max", []float64{2, 8}, 1.5, 8},
		{"q1 is max", []float64{3, 1, 2}, 1, 3},
		{"median of two", []float64{1, 9}, 0.5, 1},
		{"duplicates", []float64{5, 5, 5}, 0.9, 5},
		{"small q is min", []float64{10, 20, 30, 40}, 0.25, 10},
		{"three quarters", []float64{10, 20, 30, 40}, 0.75, 30},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := NewCDF(tt.xs).Quantile(tt.q); got != tt.want {
				t.Errorf("NewCDF(%v).Quantile(%v) = %v, want %v", tt.xs, tt.q, got, tt.want)
			}
		})
	}
}

func TestCDFAtEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		x    float64
		want float64
	}{
		{"empty", nil, 3, 0},
		{"below min", []float64{1, 2, 3}, 0.5, 0},
		{"at min", []float64{1, 2, 3}, 1, 1.0 / 3},
		{"between samples", []float64{1, 2, 3}, 2.5, 2.0 / 3},
		{"at max", []float64{1, 2, 3}, 3, 1},
		{"above max", []float64{1, 2, 3}, 100, 1},
		{"duplicates counted once each", []float64{2, 2, 4}, 2, 2.0 / 3},
		{"single below", []float64{7}, 6, 0},
		{"single at", []float64{7}, 7, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := NewCDF(tt.xs)
			if got := c.At(tt.x); got != tt.want {
				t.Errorf("NewCDF(%v).At(%v) = %v, want %v", tt.xs, tt.x, got, tt.want)
			}
			if got := c.Above(tt.x); got != 1-tt.want {
				t.Errorf("NewCDF(%v).Above(%v) = %v, want %v", tt.xs, tt.x, got, 1-tt.want)
			}
		})
	}
}

// TestPercentileNaNSamples is the regression test for NaN poisoning:
// sort.Float64s leaves NaNs at unspecified positions (every comparison
// involving NaN is false), so a single NaN sample used to make every
// percentile silently wrong. NaNs are now filtered out.
func TestPercentileNaNSamples(t *testing.T) {
	nan := math.NaN()
	tests := []struct {
		name string
		xs   []float64
		p    float64
		want float64 // NaN means "want NaN"
	}{
		{"nan leading", []float64{nan, 1, 2, 3}, 50, 2},
		{"nan trailing", []float64{1, 2, 3, nan}, 50, 2},
		{"nan interleaved", []float64{3, nan, 1, nan, 2}, 50, 2},
		{"nan min", []float64{nan, 5, 4}, 0, 4},
		{"nan max", []float64{4, 5, nan}, 100, 5},
		{"nan interpolation", []float64{nan, 1, 2, 3, 4}, 50, 2.5},
		{"single real among nans", []float64{nan, 7, nan}, 50, 7},
		{"all nan", []float64{nan, nan}, 50, nan},
		{"all nan p0", []float64{nan}, 0, nan},
		{"all nan p100", []float64{nan}, 100, nan},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Percentile(tt.xs, tt.p)
			if math.IsNaN(tt.want) {
				if !math.IsNaN(got) {
					t.Errorf("Percentile(%v, %v) = %v, want NaN", tt.xs, tt.p, got)
				}
				return
			}
			if got != tt.want {
				t.Errorf("Percentile(%v, %v) = %v, want %v", tt.xs, tt.p, got, tt.want)
			}
		})
	}
}

// TestCDFNaNSamples: NaNs must be dropped at construction, or
// SearchFloat64s' binary search runs against an unsorted slice and
// returns garbage indices.
func TestCDFNaNSamples(t *testing.T) {
	nan := math.NaN()
	tests := []struct {
		name    string
		xs      []float64
		x       float64
		wantAt  float64
		wantLen int
	}{
		{"nan leading", []float64{nan, 1, 2, 3, 4}, 2, 0.5, 4},
		{"nan trailing", []float64{1, 2, 3, 4, nan}, 4, 1, 4},
		{"nan interleaved", []float64{1, nan, 2, nan, 3, 4}, 0, 0, 4},
		{"all nan", []float64{nan, nan}, 1, 0, 0},
		{"no nan unchanged", []float64{1, 2, 3, 4}, 3, 0.75, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := NewCDF(tt.xs)
			if c.Len() != tt.wantLen {
				t.Errorf("NewCDF(%v).Len() = %d, want %d", tt.xs, c.Len(), tt.wantLen)
			}
			if got := c.At(tt.x); got != tt.wantAt {
				t.Errorf("NewCDF(%v).At(%v) = %v, want %v", tt.xs, tt.x, got, tt.wantAt)
			}
			// The sorted-order invariant behind At must hold.
			for i := 1; i < len(c.sorted); i++ {
				if c.sorted[i-1] > c.sorted[i] {
					t.Fatalf("NewCDF(%v) not sorted: %v", tt.xs, c.sorted)
				}
			}
		})
	}
}
