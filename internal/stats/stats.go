// Package stats provides the small statistical toolkit the experiment
// drivers use to regenerate the paper's tables and figures: empirical
// CDFs (Figs. 3–4), bubble-scatter binning (Figs. 5, 7, 8), category
// shares (Fig. 6) and summary statistics, plus plain-text renderers since
// the harness is terminal-based.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual scalar statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(len(xs)))
	s.Median = Percentile(xs, 50)
	return s
}

// sortedWithoutNaN returns a sorted copy of xs with NaN samples removed.
// sort.Float64s "sorts" NaNs to unspecified positions (every comparison
// with NaN is false), which silently corrupts both order-statistic
// interpolation and binary search; dropping them keeps the remaining
// sample's statistics exact.
func sortedWithoutNaN(xs []float64) []float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	sort.Float64s(sorted)
	return sorted
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation between order statistics. NaN samples are ignored; if no
// real samples remain the result is NaN (distinguishable from the
// empty-input 0).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := sortedWithoutNaN(xs)
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from the sample (copied). NaN samples are dropped:
// a NaN has no place on a distribution axis, and left in it would break
// the sorted-order invariant that At's binary search depends on.
func NewCDF(xs []float64) *CDF {
	return &CDF{sorted: sortedWithoutNaN(xs)}
}

// NewCDFInts builds a CDF from integer samples.
func NewCDFInts(xs []int) *CDF {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return NewCDF(fs)
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Above returns P(X > x) — the form the paper quotes ("50% of the
// platforms use more than 20 IP addresses").
func (c *CDF) Above(x float64) float64 { return 1 - c.At(x) }

// Quantile returns the smallest sample value v with P(X ≤ v) ≥ q, for
// q in (0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Points returns (x, P(X ≤ x)) pairs at each distinct sample value — the
// series a CDF plot would draw.
func (c *CDF) Points() []Point {
	var out []Point
	for i, v := range c.sorted {
		if i+1 < len(c.sorted) && c.sorted[i+1] == v {
			continue // keep the last occurrence for the step height
		}
		out = append(out, Point{X: v, Y: float64(i+1) / float64(len(c.sorted))})
	}
	return out
}

// Point is one (x, y) coordinate of a rendered series.
type Point struct {
	X, Y float64
}

// Bubble is one point of a bubble scatter (Figs. 5, 7, 8): Count networks
// share the coordinate (X ingress IPs, Y caches).
type Bubble struct {
	X, Y  int
	Count int
}

// BubbleBin aggregates (x, y) pairs into bubbles, optionally snapping
// coordinates to log-spaced bins (base > 1) so sparse tails group
// together the way the paper's figures do. base <= 1 keeps exact values.
func BubbleBin(xs, ys []int, base float64) []Bubble {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: BubbleBin length mismatch %d vs %d", len(xs), len(ys)))
	}
	snap := func(v int) int {
		if base <= 1 || v <= 0 {
			return v
		}
		exp := math.Round(math.Log(float64(v)) / math.Log(base))
		return int(math.Round(math.Pow(base, exp)))
	}
	type key struct{ x, y int }
	counts := make(map[key]int)
	for i := range xs {
		counts[key{snap(xs[i]), snap(ys[i])}]++
	}
	out := make([]Bubble, 0, len(counts))
	for k, c := range counts {
		out = append(out, Bubble{X: k.x, Y: k.y, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// Shares converts category counts to fractions of the total.
func Shares[K comparable](counts map[K]int) map[K]float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make(map[K]float64, len(counts))
	if total == 0 {
		return out
	}
	for k, c := range counts {
		out[k] = float64(c) / float64(total)
	}
	return out
}

// FormatPercent renders a fraction as "12.3%".
func FormatPercent(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}

// Table renders rows as an aligned plain-text table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// RenderCDF draws a small ASCII CDF plot for a series of samples —
// sufficient for comparing knees and crossovers against the paper's
// figures in terminal output.
func RenderCDF(labels []string, cdfs []*CDF, width, height int) string {
	if len(labels) != len(cdfs) || len(cdfs) == 0 {
		return ""
	}
	maxX := 1.0
	for _, c := range cdfs {
		if c.Len() > 0 && c.sorted[c.Len()-1] > maxX {
			maxX = c.sorted[c.Len()-1]
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', 'o', '+', 'x', '#'}
	for ci, c := range cdfs {
		mark := marks[ci%len(marks)]
		for col := 0; col < width; col++ {
			// Log-spaced x axis: the paper's figures span 1..500+ IPs.
			x := math.Exp(math.Log(maxX) * float64(col) / float64(width-1))
			y := c.At(x)
			row := height - 1 - int(y*float64(height-1))
			if row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}
	var sb strings.Builder
	for i, row := range grid {
		frac := float64(height-1-i) / float64(height-1)
		fmt.Fprintf(&sb, "%5.0f%% |%s|\n", frac*100, string(row))
	}
	fmt.Fprintf(&sb, "        x: 1 .. %.0f (log scale)\n", maxX)
	for i, label := range labels {
		fmt.Fprintf(&sb, "        %c = %s\n", marks[i%len(marks)], label)
	}
	return sb.String()
}
