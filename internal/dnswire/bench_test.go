package dnswire

import (
	"net/netip"
	"testing"
)

// wireAllocBudget is the per-round-trip heap-allocation ceiling for
// AppendPack+Unpack of a representative cache-probe response. The pack
// side is allocation-free into a reused buffer; the unpack side pays only
// for the decoded Message itself (struct, section slices, name strings,
// rdata boxes). The hotalloc analyzer enforces the same contract
// statically; this guard catches what static analysis cannot see (escape-
// analysis regressions, stdlib changes). EXPERIMENTS.md documents the
// budget — raise it only with a bench justification in the PR.
const wireAllocBudget = 11

// benchResponse builds the shape the enumeration hot path round-trips:
// one question, an answer pair (CNAME chain step + A record), matching
// the paper's cache-probe responses.
func benchResponse() *Message {
	m := NewQuery(0x1234, "probe-0001.example.com.", TypeA)
	m.Header.Response = true
	m.Answer = append(m.Answer,
		RR{Name: "probe-0001.example.com.", Class: ClassIN, TTL: 300,
			Data: CNAMERecord{Target: "cache-17.example.net."}},
		RR{Name: "cache-17.example.net.", Class: ClassIN, TTL: 300,
			Data: ARecord{Addr: netip.MustParseAddr("192.0.2.17")}},
	)
	return m
}

func TestWirePackUnpackAllocBudget(t *testing.T) {
	msg := benchResponse()
	buf := make([]byte, 0, 512)
	var sink *Message
	allocs := testing.AllocsPerRun(200, func() {
		wire, err := msg.AppendPack(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		m, err := Unpack(wire)
		if err != nil {
			t.Fatal(err)
		}
		sink = m
	})
	_ = sink
	if allocs > wireAllocBudget {
		t.Errorf("pack+unpack allocates %.1f times per round trip, budget is %d", allocs, wireAllocBudget)
	}
}

func BenchmarkWirePackUnpack(b *testing.B) {
	msg := benchResponse()
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := msg.AppendPack(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireAppendPack(b *testing.B) {
	msg := benchResponse()
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := msg.AppendPack(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = wire[:0]
	}
}
