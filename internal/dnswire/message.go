package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Header flag bit masks within the 16-bit flags word (RFC 1035 §4.1.1).
const (
	_flagQR = 1 << 15
	_flagAA = 1 << 10
	_flagTC = 1 << 9
	_flagRD = 1 << 8
	_flagRA = 1 << 7
)

// Header is the fixed 12-octet DNS message header.
type Header struct {
	ID uint16
	// Response is the QR bit: false for queries, true for responses.
	Response bool
	Opcode   Opcode
	// Authoritative is the AA bit, set by authoritative nameservers.
	Authoritative bool
	// Truncated is the TC bit, set when the response exceeded the
	// transport's payload limit.
	Truncated bool
	// RecursionDesired is the RD bit, copied from query to response.
	RecursionDesired bool
	// RecursionAvailable is the RA bit, set by recursive resolvers.
	RecursionAvailable bool
	RCode              RCode
}

// Question is the single entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String returns a dig-style rendering of q.
func (q Question) String() string {
	return CanonicalName(q.Name) + " " + q.Class.String() + " " + q.Type.String()
}

// Key returns a canonical lookup key for the question, suitable for use as
// a cache key.
func (q Question) Key() string {
	return CanonicalName(q.Name) + "|" + q.Class.String() + "|" + q.Type.String()
}

// RR is a resource record: the shared fields plus a type-specific payload.
type RR struct {
	Name  string
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record type, derived from the payload.
func (rr RR) Type() Type {
	if rr.Data == nil {
		return 0
	}
	return rr.Data.Type()
}

// String returns the zone-file presentation of rr.
func (rr RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s",
		CanonicalName(rr.Name), rr.TTL, rr.Class, rr.Type(), rr.Data)
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Question   []Question
	Answer     []RR
	Authority  []RR
	Additional []RR
}

// Message-level errors.
var (
	ErrTooManyRecords = errors.New("dnswire: section exceeds 65535 records")
	ErrNoQuestion     = errors.New("dnswire: message has no question")
)

// NewQuery builds a recursive query for (name, t) with the given message ID.
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header: Header{
			ID:               id,
			Opcode:           OpcodeQuery,
			RecursionDesired: true,
		},
		Question: []Question{{Name: CanonicalName(name), Type: t, Class: ClassIN}},
	}
}

// NewResponse builds a response skeleton for query, copying the ID, opcode,
// question and RD bit as RFC 1035 requires.
func NewResponse(query *Message) *Message {
	resp := &Message{
		Header: Header{
			ID:               query.Header.ID,
			Response:         true,
			Opcode:           query.Header.Opcode,
			RecursionDesired: query.Header.RecursionDesired,
		},
	}
	resp.Question = append(resp.Question, query.Question...)
	return resp
}

// FirstQuestion returns the first question of the message.
func (m *Message) FirstQuestion() (Question, error) {
	if len(m.Question) == 0 {
		return Question{}, ErrNoQuestion
	}
	return m.Question[0], nil
}

// cmpPool recycles compression maps across Pack calls. The map only ever
// holds substrings of the names being packed, so clearing it on return
// drops every reference; size 8 covers a typical probe exchange without
// rehashing.
var cmpPool = sync.Pool{
	New: func() any { return make(compressionMap, 8) },
}

// Pack encodes m into wire format, applying name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack appends the wire encoding of m to buf and returns the
// extended slice. It is the allocation-free variant of Pack for callers
// that reuse scratch buffers (the netsim exchange path): with enough
// capacity in buf nothing escapes to the heap.
//
//cdelint:hotpath
func (m *Message) AppendPack(buf []byte) ([]byte, error) {
	counts := [4]int{len(m.Question), len(m.Answer), len(m.Authority), len(m.Additional)}
	for _, c := range counts {
		if c > 0xFFFF {
			return nil, ErrTooManyRecords
		}
	}

	// Name-compression offsets are relative to the start of the message,
	// which is buf's current end when appending to a prefix.
	base := len(buf)
	buf = binary.BigEndian.AppendUint16(buf, m.Header.ID)
	buf = binary.BigEndian.AppendUint16(buf, m.headerFlags())
	for _, c := range counts {
		buf = binary.BigEndian.AppendUint16(buf, uint16(c))
	}
	if base != 0 {
		// Compression pointers are message-relative; packName records
		// absolute buf offsets, so compression is only sound when the
		// message starts at offset 0. Appending to a non-empty prefix is
		// rare (no hot-path caller does it) — pack without compression.
		var err error
		for _, q := range m.Question {
			if buf, err = packName(buf, q.Name, nil); err != nil {
				return nil, fmt.Errorf("packing question %q: %w", q.Name, err)
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
			buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
		}
		for _, section := range [...][]RR{m.Answer, m.Authority, m.Additional} {
			for _, rr := range section {
				if buf, err = packRR(buf, rr, nil); err != nil {
					return nil, fmt.Errorf("packing record %q: %w", rr.Name, err)
				}
			}
		}
		return buf, nil
	}

	cmp := cmpPool.Get().(compressionMap)
	defer func() {
		clear(cmp)
		cmpPool.Put(cmp)
	}()
	var err error
	for _, q := range m.Question {
		if buf, err = packName(buf, q.Name, cmp); err != nil {
			return nil, fmt.Errorf("packing question %q: %w", q.Name, err)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, section := range [...][]RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range section {
			if buf, err = packRR(buf, rr, cmp); err != nil {
				return nil, fmt.Errorf("packing record %q: %w", rr.Name, err)
			}
		}
	}
	return buf, nil
}

func (m *Message) headerFlags() uint16 {
	var f uint16
	if m.Header.Response {
		f |= _flagQR
	}
	f |= uint16(m.Header.Opcode&0xF) << 11
	if m.Header.Authoritative {
		f |= _flagAA
	}
	if m.Header.Truncated {
		f |= _flagTC
	}
	if m.Header.RecursionDesired {
		f |= _flagRD
	}
	if m.Header.RecursionAvailable {
		f |= _flagRA
	}
	f |= uint16(m.Header.RCode & 0xF)
	return f
}

func packRR(buf []byte, rr RR, cmp compressionMap) ([]byte, error) {
	if rr.Data == nil {
		return nil, fmt.Errorf("%w: record %q has nil payload", ErrBadRData, rr.Name)
	}
	buf, err := packName(buf, rr.Name, cmp)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	// Reserve the RDLENGTH slot, pack, then backfill.
	lenOff := len(buf)
	buf = append(buf, 0, 0)
	buf, err = rr.Data.pack(buf, cmp)
	if err != nil {
		return nil, err
	}
	rdlen := len(buf) - lenOff - 2
	if rdlen > 0xFFFF {
		return nil, fmt.Errorf("%w: rdata exceeds 65535 octets", ErrBadRData)
	}
	binary.BigEndian.PutUint16(buf[lenOff:], uint16(rdlen))
	return buf, nil
}

// Unpack decodes a wire-format message. Beyond the Message being built —
// which is the product, not overhead — the decode loop itself must not
// allocate.
//
//cdelint:hotpath
func Unpack(wire []byte) (*Message, error) {
	if len(wire) < 12 {
		return nil, ErrTruncatedMessage
	}
	//cdelint:allow hotalloc the decoded Message is the product; its one allocation is the contract
	m := &Message{}
	m.Header.ID = binary.BigEndian.Uint16(wire)
	flags := binary.BigEndian.Uint16(wire[2:])
	m.Header.Response = flags&_flagQR != 0
	m.Header.Opcode = Opcode(flags >> 11 & 0xF)
	m.Header.Authoritative = flags&_flagAA != 0
	m.Header.Truncated = flags&_flagTC != 0
	m.Header.RecursionDesired = flags&_flagRD != 0
	m.Header.RecursionAvailable = flags&_flagRA != 0
	m.Header.RCode = RCode(flags & 0xF)

	qdCount := int(binary.BigEndian.Uint16(wire[4:]))
	anCount := int(binary.BigEndian.Uint16(wire[6:]))
	nsCount := int(binary.BigEndian.Uint16(wire[8:]))
	arCount := int(binary.BigEndian.Uint16(wire[10:]))

	off := 12
	var err error
	for i := 0; i < qdCount; i++ {
		var q Question
		q, off, err = unpackQuestion(wire, off)
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		m.Question = append(m.Question, q)
	}
	sections := [...]struct {
		count int
		dst   *[]RR
		name  string
	}{
		{anCount, &m.Answer, "answer"},
		{nsCount, &m.Authority, "authority"},
		{arCount, &m.Additional, "additional"},
	}
	for _, s := range sections {
		for i := 0; i < s.count; i++ {
			var rr RR
			rr, off, err = unpackRR(wire, off)
			if err != nil {
				return nil, fmt.Errorf("%s record %d: %w", s.name, i, err)
			}
			*s.dst = append(*s.dst, rr)
		}
	}
	return m, nil
}

func unpackQuestion(wire []byte, off int) (Question, int, error) {
	name, off, err := unpackName(wire, off)
	if err != nil {
		return Question{}, 0, err
	}
	if off+4 > len(wire) {
		return Question{}, 0, ErrTruncatedMessage
	}
	q := Question{
		Name:  name,
		Type:  Type(binary.BigEndian.Uint16(wire[off:])),
		Class: Class(binary.BigEndian.Uint16(wire[off+2:])),
	}
	return q, off + 4, nil
}

func unpackRR(wire []byte, off int) (RR, int, error) {
	name, off, err := unpackName(wire, off)
	if err != nil {
		return RR{}, 0, err
	}
	if off+10 > len(wire) {
		return RR{}, 0, ErrTruncatedMessage
	}
	t := Type(binary.BigEndian.Uint16(wire[off:]))
	class := Class(binary.BigEndian.Uint16(wire[off+2:]))
	ttl := binary.BigEndian.Uint32(wire[off+4:])
	rdlen := int(binary.BigEndian.Uint16(wire[off+8:]))
	off += 10
	data, err := unpackRData(wire, off, rdlen, t)
	if err != nil {
		return RR{}, 0, err
	}
	rr := RR{Name: name, Class: class, TTL: ttl, Data: data}
	if t == TypeOPT {
		// For OPT the class field carries the sender's UDP payload size.
		rr.Data = OPTRecord{UDPSize: uint16(class)}
	}
	return rr, off + rdlen, nil
}

// Summary returns a compact single-line rendering of the message, useful in
// logs and examples.
func (m *Message) Summary() string {
	var sb strings.Builder
	if m.Header.Response {
		sb.WriteString("response ")
		sb.WriteString(m.Header.RCode.String())
	} else {
		sb.WriteString("query")
	}
	for _, q := range m.Question {
		sb.WriteString(" ")
		sb.WriteString(q.String())
	}
	fmt.Fprintf(&sb, " [an=%d ns=%d ar=%d]", len(m.Answer), len(m.Authority), len(m.Additional))
	return sb.String()
}
