package dnswire

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewQuery(t *testing.T) {
	q := NewQuery(0x1234, "Name.Cache.Example", TypeA)
	if q.Header.ID != 0x1234 {
		t.Errorf("ID = %#x", q.Header.ID)
	}
	if !q.Header.RecursionDesired {
		t.Error("RD not set on query")
	}
	if q.Header.Response {
		t.Error("QR set on query")
	}
	want := Question{Name: "name.cache.example.", Type: TypeA, Class: ClassIN}
	if got, _ := q.FirstQuestion(); got != want {
		t.Errorf("question = %+v, want %+v", got, want)
	}
}

func TestNewResponseCopiesQueryFields(t *testing.T) {
	q := NewQuery(7, "a.example", TypeTXT)
	resp := NewResponse(q)
	if !resp.Header.Response {
		t.Error("QR not set on response")
	}
	if resp.Header.ID != q.Header.ID {
		t.Error("ID not copied")
	}
	if !resp.Header.RecursionDesired {
		t.Error("RD not copied")
	}
	if !reflect.DeepEqual(resp.Question, q.Question) {
		t.Error("question not copied")
	}
	// The copy must be independent of the query's slice.
	resp.Question[0].Name = "mutated."
	if q.Question[0].Name == "mutated." {
		t.Error("response question aliases query question slice")
	}
}

func TestFirstQuestionEmpty(t *testing.T) {
	m := &Message{}
	if _, err := m.FirstQuestion(); err != ErrNoQuestion {
		t.Errorf("err = %v, want ErrNoQuestion", err)
	}
}

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func sampleMessage(t *testing.T) *Message {
	t.Helper()
	m := NewQuery(42, "name.cache.example", TypeA)
	resp := NewResponse(m)
	resp.Header.Authoritative = true
	resp.Answer = []RR{
		{Name: "name.cache.example.", Class: ClassIN, TTL: 3600,
			Data: CNAMERecord{Target: "target.cache.example."}},
		{Name: "target.cache.example.", Class: ClassIN, TTL: 300,
			Data: ARecord{Addr: mustAddr(t, "192.0.2.1")}},
	}
	resp.Authority = []RR{
		{Name: "cache.example.", Class: ClassIN, TTL: 86400,
			Data: NSRecord{Host: "ns1.cache.example."}},
		{Name: "cache.example.", Class: ClassIN, TTL: 86400,
			Data: SOARecord{MName: "ns1.cache.example.", RName: "hostmaster.cache.example.",
				Serial: 2017010101, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 60}},
	}
	resp.Additional = []RR{
		{Name: "ns1.cache.example.", Class: ClassIN, TTL: 86400,
			Data: ARecord{Addr: mustAddr(t, "198.51.100.53")}},
		{Name: "mail.cache.example.", Class: ClassIN, TTL: 600,
			Data: MXRecord{Preference: 10, Host: "mx.cache.example."}},
		{Name: "spf.cache.example.", Class: ClassIN, TTL: 600,
			Data: TXTRecord{Strings: []string{"v=spf1 -all"}}},
		{Name: "spf.cache.example.", Class: ClassIN, TTL: 600,
			Data: SPFRecord{Strings: []string{"v=spf1 -all"}}},
		{Name: "v6.cache.example.", Class: ClassIN, TTL: 600,
			Data: AAAARecord{Addr: mustAddr(t, "2001:db8::1")}},
		{Name: "ptr.cache.example.", Class: ClassIN, TTL: 600,
			Data: PTRRecord{Target: "host.cache.example."}},
	}
	return resp
}

func TestMessagePackUnpackRoundTrip(t *testing.T) {
	m := sampleMessage(t)
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestPackCompressionShrinksMessage(t *testing.T) {
	m := sampleMessage(t)
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// A generous upper bound if compression works: the sample repeats
	// "cache.example." a dozen times (16 bytes each uncompressed).
	if len(wire) > 300 {
		t.Errorf("packed size = %d bytes, compression appears ineffective", len(wire))
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	hs := []Header{
		{ID: 1, Response: true, Opcode: OpcodeQuery, Authoritative: true, RCode: RCodeNXDomain},
		{ID: 2, Truncated: true, RecursionDesired: true, RecursionAvailable: true},
		{ID: 3, Opcode: OpcodeNotify, RCode: RCodeRefused},
		{ID: 0xFFFF, Response: true, Opcode: OpcodeUpdate, RCode: RCodeServFail},
	}
	for _, h := range hs {
		m := &Message{Header: h}
		wire, err := m.Pack()
		if err != nil {
			t.Fatalf("Pack(%+v): %v", h, err)
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Fatalf("Unpack(%+v): %v", h, err)
		}
		if got.Header != h {
			t.Errorf("header round trip: got %+v, want %+v", got.Header, h)
		}
	}
}

func TestUnpackTruncatedHeader(t *testing.T) {
	if _, err := Unpack([]byte{1, 2, 3}); err != ErrTruncatedMessage {
		t.Errorf("err = %v, want ErrTruncatedMessage", err)
	}
}

func TestUnpackGarbage(t *testing.T) {
	// Header claims one answer but provides none.
	wire := []byte{0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0}
	if _, err := Unpack(wire); err == nil {
		t.Error("want error for missing answer record")
	}
}

func TestPackNilRData(t *testing.T) {
	m := &Message{Answer: []RR{{Name: "a.example.", Class: ClassIN}}}
	if _, err := m.Pack(); err == nil {
		t.Error("want error for nil rdata")
	}
}

func TestRawRecordRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{ID: 9, Response: true},
		Answer: []RR{{Name: "x.example.", Class: ClassIN, TTL: 1,
			Data: RawRecord{RType: Type(4095), Data: []byte{0xde, 0xad, 0xbe, 0xef}}}},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := got.Answer[0].Data.(RawRecord)
	if !ok {
		t.Fatalf("data type = %T, want RawRecord", got.Answer[0].Data)
	}
	if raw.RType != Type(4095) || !reflect.DeepEqual(raw.Data, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Errorf("raw record = %+v", raw)
	}
}

func TestOPTRecordCarriesUDPSize(t *testing.T) {
	m := NewQuery(1, "a.example", TypeA)
	m.Additional = append(m.Additional, RR{
		Name: ".", Class: Class(MaxEDNSSize), Data: OPTRecord{UDPSize: MaxEDNSSize},
	})
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	opt, ok := got.Additional[0].Data.(OPTRecord)
	if !ok {
		t.Fatalf("data type = %T, want OPTRecord", got.Additional[0].Data)
	}
	if opt.UDPSize != MaxEDNSSize {
		t.Errorf("UDPSize = %d, want %d", opt.UDPSize, MaxEDNSSize)
	}
}

func TestQuestionKeyIsCaseInsensitive(t *testing.T) {
	a := Question{Name: "Name.Cache.Example", Type: TypeA, Class: ClassIN}
	b := Question{Name: "name.cache.example.", Type: TypeA, Class: ClassIN}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := Question{Name: "name.cache.example.", Type: TypeTXT, Class: ClassIN}
	if a.Key() == c.Key() {
		t.Error("keys for different qtypes collide")
	}
}

// randomRR builds a random resource record for property testing.
func randomRR(r *rand.Rand) RR {
	name := randomName(r)
	rr := RR{Name: name, Class: ClassIN, TTL: uint32(r.Intn(1 << 20))}
	switch r.Intn(7) {
	case 0:
		var a [4]byte
		r.Read(a[:])
		rr.Data = ARecord{Addr: netip.AddrFrom4(a)}
	case 1:
		var a [16]byte
		r.Read(a[:])
		a[0] = 0x20 // keep it a genuine IPv6, not 4-in-6
		rr.Data = AAAARecord{Addr: netip.AddrFrom16(a)}
	case 2:
		rr.Data = NSRecord{Host: randomName(r)}
	case 3:
		rr.Data = CNAMERecord{Target: randomName(r)}
	case 4:
		rr.Data = MXRecord{Preference: uint16(r.Intn(100)), Host: randomName(r)}
	case 5:
		rr.Data = TXTRecord{Strings: []string{randomName(r)}}
	default:
		rr.Data = SOARecord{
			MName: randomName(r), RName: randomName(r),
			Serial: r.Uint32(), Refresh: r.Uint32() % 100000, Retry: r.Uint32() % 100000,
			Expire: r.Uint32() % 100000, Minimum: r.Uint32() % 100000,
		}
	}
	return rr
}

func TestPropertyMessageRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewQuery(uint16(r.Uint32()), randomName(r), TypeA)
		resp := NewResponse(m)
		for i, n := 0, r.Intn(5); i < n; i++ {
			resp.Answer = append(resp.Answer, randomRR(r))
		}
		for i, n := 0, r.Intn(3); i < n; i++ {
			resp.Authority = append(resp.Authority, randomRR(r))
		}
		wire, err := resp.Pack()
		if err != nil {
			t.Logf("seed %d: pack: %v", seed, err)
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Logf("seed %d: unpack: %v", seed, err)
			return false
		}
		return reflect.DeepEqual(got, resp)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnpackNeverPanics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(raw []byte) bool {
		// Unpack must return an error or a message, never panic.
		_, _ = Unpack(raw)
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTypeStrings(t *testing.T) {
	tests := []struct {
		t    Type
		want string
	}{
		{TypeA, "A"}, {TypeTXT, "TXT"}, {TypeSPF, "SPF"}, {Type(4242), "TYPE4242"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.t, got, tt.want)
		}
	}
	if got, ok := ParseType("CNAME"); !ok || got != TypeCNAME {
		t.Errorf("ParseType(CNAME) = %v, %v", got, ok)
	}
	if _, ok := ParseType("NOPE"); ok {
		t.Error("ParseType(NOPE) succeeded")
	}
}

func TestRCodeAndSectionStrings(t *testing.T) {
	if RCodeNXDomain.String() != "NXDOMAIN" {
		t.Error("RCodeNXDomain string")
	}
	if RCode(14).String() != "RCODE14" {
		t.Error("unknown rcode string")
	}
	if SectionAnswer.String() != "ANSWER" || SectionAuthority.String() != "AUTHORITY" {
		t.Error("section strings")
	}
	if OpcodeQuery.String() != "QUERY" || Opcode(7).String() != "OPCODE7" {
		t.Error("opcode strings")
	}
	if ClassIN.String() != "IN" || Class(9).String() != "CLASS9" {
		t.Error("class strings")
	}
}

func TestRRString(t *testing.T) {
	rr := RR{Name: "name.cache.example.", Class: ClassIN, TTL: 300,
		Data: ARecord{Addr: netip.MustParseAddr("192.0.2.1")}}
	want := "name.cache.example.\t300\tIN\tA\t192.0.2.1"
	if got := rr.String(); got != want {
		t.Errorf("RR.String() = %q, want %q", got, want)
	}
}

func TestMessageSummary(t *testing.T) {
	m := NewQuery(1, "a.example", TypeA)
	if got := m.Summary(); got != "query a.example. IN A [an=0 ns=0 ar=0]" {
		t.Errorf("Summary() = %q", got)
	}
	resp := NewResponse(m)
	resp.Header.RCode = RCodeNXDomain
	if got := resp.Summary(); got != "response NXDOMAIN a.example. IN A [an=0 ns=0 ar=0]" {
		t.Errorf("Summary() = %q", got)
	}
}
