package dnswire

import (
	"net/netip"
	"strings"
	"testing"
)

func TestRDataStrings(t *testing.T) {
	tests := []struct {
		data RData
		want string
	}{
		{ARecord{Addr: netip.MustParseAddr("192.0.2.1")}, "192.0.2.1"},
		{AAAARecord{Addr: netip.MustParseAddr("2001:db8::1")}, "2001:db8::1"},
		{NSRecord{Host: "NS.Example"}, "ns.example."},
		{CNAMERecord{Target: "target.example"}, "target.example."},
		{PTRRecord{Target: "host.example."}, "host.example."},
		{MXRecord{Preference: 10, Host: "mx.example"}, "10 mx.example."},
		{TXTRecord{Strings: []string{"a b", "c"}}, `"a b" "c"`},
		{SPFRecord{Strings: []string{"v=spf1 -all"}}, `"v=spf1 -all"`},
		{SOARecord{MName: "ns.example", RName: "h.example", Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5},
			"ns.example. h.example. 1 2 3 4 5"},
		{OPTRecord{UDPSize: 4096}, "; EDNS0 udp=4096"},
		{RawRecord{RType: Type(999), Data: []byte{0xAB}}, "\\# 1 ab"},
	}
	for _, tt := range tests {
		if got := tt.data.String(); got != tt.want {
			t.Errorf("%T.String() = %q, want %q", tt.data, got, tt.want)
		}
	}
}

func TestRDataPackErrors(t *testing.T) {
	cases := []RData{
		ARecord{Addr: netip.MustParseAddr("2001:db8::1")},  // not IPv4
		AAAARecord{Addr: netip.MustParseAddr("192.0.2.1")}, // not IPv6
		TXTRecord{}, // no strings
		TXTRecord{Strings: []string{strings.Repeat("x", 256)}}, // string too long
		SPFRecord{}, // no strings
	}
	for _, data := range cases {
		if _, err := data.pack(nil, nil); err == nil {
			t.Errorf("%T.pack succeeded on invalid payload", data)
		}
	}
}

func TestUnpackRDataErrors(t *testing.T) {
	cases := []struct {
		name   string
		t      Type
		data   []byte
		length int
	}{
		{"A short", TypeA, []byte{1, 2, 3}, 3},
		{"AAAA short", TypeAAAA, []byte{1, 2, 3, 4}, 4},
		{"MX short", TypeMX, []byte{0}, 1},
		{"SOA short", TypeSOA, []byte{0, 0}, 2},
		{"TXT overrun", TypeTXT, []byte{5, 'a'}, 2},
		{"TXT empty", TypeTXT, []byte{}, 0},
		{"overrun message", TypeA, []byte{1, 2}, 10},
	}
	for _, tc := range cases {
		if _, err := unpackRData(tc.data, 0, tc.length, tc.t); err == nil {
			t.Errorf("%s: unpackRData succeeded", tc.name)
		}
	}
}

func TestUnpackSOAShortTail(t *testing.T) {
	// Valid names but truncated 20-byte numeric tail.
	buf, err := packName(nil, "ns.example.", nil)
	if err != nil {
		t.Fatal(err)
	}
	buf, err = packName(buf, "h.example.", nil)
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 1, 2, 3) // far too short
	if _, err := unpackRData(buf, 0, len(buf), TypeSOA); err == nil {
		t.Error("short SOA tail accepted")
	}
}

func TestCountLabels(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{".", 0}, {"example", 1}, {"a.b.example.", 3},
	}
	for _, tt := range tests {
		if got := CountLabels(tt.in); got != tt.want {
			t.Errorf("CountLabels(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestMoreEnumStrings(t *testing.T) {
	if got := OpcodeStatus.String(); got != "STATUS" {
		t.Errorf("OpcodeStatus = %q", got)
	}
	if got := OpcodeNotify.String(); got != "NOTIFY" {
		t.Errorf("OpcodeNotify = %q", got)
	}
	if got := ClassCH.String(); got != "CH" {
		t.Errorf("ClassCH = %q", got)
	}
	if got := ClassANY.String(); got != "ANY" {
		t.Errorf("ClassANY = %q", got)
	}
	for rc, want := range map[RCode]string{
		RCodeNoError: "NOERROR", RCodeFormErr: "FORMERR", RCodeServFail: "SERVFAIL",
		RCodeNotImp: "NOTIMP", RCodeRefused: "REFUSED",
	} {
		if got := rc.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", rc, got, want)
		}
	}
	if got := SectionAdditional.String(); got != "ADDITIONAL" {
		t.Errorf("SectionAdditional = %q", got)
	}
	if got := Section(9).String(); got != "SECTION9" {
		t.Errorf("unknown section = %q", got)
	}
	var rr RR
	if rr.Type() != 0 {
		t.Error("nil-payload RR type")
	}
}
