// Package dnswire implements the DNS wire format (RFC 1034/1035) used by
// every component of the CDE reproduction: the authoritative nameservers,
// the resolution-platform simulator and the real UDP measurement path.
//
// The package is deliberately self-contained (stdlib only) and implements
// the subset of DNS needed by the paper "Counting in the Dark: DNS Caches
// Discovery and Enumeration in the Internet" (DSN 2017): queries and
// responses for A, AAAA, NS, CNAME, SOA, MX, TXT, SPF and PTR records,
// name compression, and EDNS0 OPT pseudo-records.
package dnswire

import "strconv"

// Type is a DNS resource-record type (RFC 1035 §3.2.2 and successors).
type Type uint16

// Resource record types used by the CDE measurement methodology and the
// SMTP data-collection channel (Table I of the paper).
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	// TypeSPF is the obsolete dedicated SPF RR type (RFC 7208 §3.1
	// deprecates it); the paper's Table I still observes it in 14.2% of
	// enterprise resolver traffic.
	TypeSPF Type = 99
	// TypeANY is the query-only meta type.
	TypeANY Type = 255
)

var _typeNames = map[Type]string{
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypePTR:   "PTR",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeOPT:   "OPT",
	TypeSPF:   "SPF",
	TypeANY:   "ANY",
}

// String returns the conventional mnemonic for t, or TYPEnnn for unknown
// types as specified by RFC 3597.
func (t Type) String() string {
	if s, ok := _typeNames[t]; ok {
		return s
	}
	return "TYPE" + strconv.FormatUint(uint64(t), 10)
}

// ParseType converts a textual record type mnemonic to its Type value.
// It returns false when the mnemonic is unknown.
func ParseType(s string) (Type, bool) {
	for t, name := range _typeNames {
		if name == s {
			return t, true
		}
	}
	return 0, false
}

// Class is a DNS class. Only IN is used in practice.
type Class uint16

// DNS classes.
const (
	ClassIN  Class = 1
	ClassCH  Class = 3
	ClassANY Class = 255
)

// String returns the mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassANY:
		return "ANY"
	default:
		return "CLASS" + strconv.FormatUint(uint64(c), 10)
	}
}

// Opcode is the 4-bit DNS operation code.
type Opcode uint8

// Opcodes.
const (
	OpcodeQuery  Opcode = 0
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// String returns the mnemonic for o.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeStatus:
		return "STATUS"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	default:
		return "OPCODE" + strconv.FormatUint(uint64(o), 10)
	}
}

// RCode is the DNS response code.
type RCode uint8

// Response codes (RFC 1035 §4.1.1).
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the mnemonic for rc.
func (rc RCode) String() string {
	switch rc {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return "RCODE" + strconv.FormatUint(uint64(rc), 10)
	}
}

// Section identifies which message section a record belongs to.
type Section uint8

// Message sections.
const (
	SectionAnswer Section = iota + 1
	SectionAuthority
	SectionAdditional
)

// String returns the section name.
func (s Section) String() string {
	switch s {
	case SectionAnswer:
		return "ANSWER"
	case SectionAuthority:
		return "AUTHORITY"
	case SectionAdditional:
		return "ADDITIONAL"
	default:
		return "SECTION" + strconv.FormatUint(uint64(s), 10)
	}
}

// MaxUDPSize is the classic maximum DNS-over-UDP payload (RFC 1035 §2.3.4).
const MaxUDPSize = 512

// MaxEDNSSize is the EDNS0 payload size advertised by this implementation.
const MaxEDNSSize = 4096
