package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// RData is the type-specific payload of a resource record.
//
// pack appends the wire form of the RDATA (without the RDLENGTH prefix) to
// buf. Compression is used only for the record types RFC 3597 §4 permits
// (NS, CNAME, SOA, MX, PTR targets).
type RData interface {
	// Type returns the record type this payload belongs to.
	Type() Type
	// String returns the zone-file presentation of the payload.
	String() string

	pack(buf []byte, cmp compressionMap) ([]byte, error)
}

// ErrBadRData reports malformed type-specific payloads.
var ErrBadRData = errors.New("dnswire: malformed rdata")

// ARecord is an IPv4 host address (RFC 1035 §3.4.1).
type ARecord struct {
	Addr netip.Addr
}

var _ RData = ARecord{}

// Type implements RData.
func (ARecord) Type() Type { return TypeA }

// String implements RData.
func (r ARecord) String() string { return r.Addr.String() }

func (r ARecord) pack(buf []byte, _ compressionMap) ([]byte, error) {
	if !r.Addr.Is4() {
		return nil, fmt.Errorf("%w: A record address %v is not IPv4", ErrBadRData, r.Addr)
	}
	a4 := r.Addr.As4()
	return append(buf, a4[:]...), nil
}

// AAAARecord is an IPv6 host address (RFC 3596).
type AAAARecord struct {
	Addr netip.Addr
}

var _ RData = AAAARecord{}

// Type implements RData.
func (AAAARecord) Type() Type { return TypeAAAA }

// String implements RData.
func (r AAAARecord) String() string { return r.Addr.String() }

func (r AAAARecord) pack(buf []byte, _ compressionMap) ([]byte, error) {
	if !r.Addr.Is6() || r.Addr.Is4In6() {
		return nil, fmt.Errorf("%w: AAAA record address %v is not IPv6", ErrBadRData, r.Addr)
	}
	a16 := r.Addr.As16()
	return append(buf, a16[:]...), nil
}

// NSRecord names an authoritative nameserver (RFC 1035 §3.3.11).
type NSRecord struct {
	Host string
}

var _ RData = NSRecord{}

// Type implements RData.
func (NSRecord) Type() Type { return TypeNS }

// String implements RData.
func (r NSRecord) String() string { return CanonicalName(r.Host) }

func (r NSRecord) pack(buf []byte, cmp compressionMap) ([]byte, error) {
	return packName(buf, r.Host, cmp)
}

// CNAMERecord is the canonical-name alias record (RFC 1035 §3.3.1). The
// paper's local-cache bypass (§IV-B2a) builds chains of these.
type CNAMERecord struct {
	Target string
}

var _ RData = CNAMERecord{}

// Type implements RData.
func (CNAMERecord) Type() Type { return TypeCNAME }

// String implements RData.
func (r CNAMERecord) String() string { return CanonicalName(r.Target) }

func (r CNAMERecord) pack(buf []byte, cmp compressionMap) ([]byte, error) {
	return packName(buf, r.Target, cmp)
}

// PTRRecord is a domain-name pointer (RFC 1035 §3.3.12).
type PTRRecord struct {
	Target string
}

var _ RData = PTRRecord{}

// Type implements RData.
func (PTRRecord) Type() Type { return TypePTR }

// String implements RData.
func (r PTRRecord) String() string { return CanonicalName(r.Target) }

func (r PTRRecord) pack(buf []byte, cmp compressionMap) ([]byte, error) {
	return packName(buf, r.Target, cmp)
}

// SOARecord marks the start of a zone of authority (RFC 1035 §3.3.13).
type SOARecord struct {
	MName   string // primary nameserver
	RName   string // responsible mailbox
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32 // negative-caching TTL (RFC 2308)
}

var _ RData = SOARecord{}

// Type implements RData.
func (SOARecord) Type() Type { return TypeSOA }

// String implements RData.
func (r SOARecord) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		CanonicalName(r.MName), CanonicalName(r.RName),
		r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum)
}

func (r SOARecord) pack(buf []byte, cmp compressionMap) ([]byte, error) {
	buf, err := packName(buf, r.MName, cmp)
	if err != nil {
		return nil, err
	}
	buf, err = packName(buf, r.RName, cmp)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint32(buf, r.Serial)
	buf = binary.BigEndian.AppendUint32(buf, r.Refresh)
	buf = binary.BigEndian.AppendUint32(buf, r.Retry)
	buf = binary.BigEndian.AppendUint32(buf, r.Expire)
	buf = binary.BigEndian.AppendUint32(buf, r.Minimum)
	return buf, nil
}

// MXRecord names a mail exchanger (RFC 1035 §3.3.9). The SMTP bounce path
// of the paper's enterprise dataset resolves these.
type MXRecord struct {
	Preference uint16
	Host       string
}

var _ RData = MXRecord{}

// Type implements RData.
func (MXRecord) Type() Type { return TypeMX }

// String implements RData.
func (r MXRecord) String() string {
	return strconv.FormatUint(uint64(r.Preference), 10) + " " + CanonicalName(r.Host)
}

func (r MXRecord) pack(buf []byte, cmp compressionMap) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, r.Preference)
	return packName(buf, r.Host, cmp)
}

// TXTRecord carries descriptive text (RFC 1035 §3.3.14). Modern SPF, DKIM,
// DMARC and ADSP policies — 69.6%, 0.3%, 35.3% and 2% of the Table I query
// mix respectively — are all published as TXT.
type TXTRecord struct {
	Strings []string
}

var _ RData = TXTRecord{}

// Type implements RData.
func (TXTRecord) Type() Type { return TypeTXT }

// String implements RData.
func (r TXTRecord) String() string {
	quoted := make([]string, len(r.Strings))
	for i, s := range r.Strings {
		quoted[i] = strconv.Quote(s)
	}
	return strings.Join(quoted, " ")
}

func (r TXTRecord) pack(buf []byte, _ compressionMap) ([]byte, error) {
	if len(r.Strings) == 0 {
		return nil, fmt.Errorf("%w: TXT record with no strings", ErrBadRData)
	}
	for _, s := range r.Strings {
		if len(s) > 255 {
			return nil, fmt.Errorf("%w: TXT string exceeds 255 octets", ErrBadRData)
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

// SPFRecord is the deprecated SPF RR type (RFC 7208 §3.1); wire-identical to
// TXT but with its own type code.
type SPFRecord struct {
	Strings []string
}

var _ RData = SPFRecord{}

// Type implements RData.
func (SPFRecord) Type() Type { return TypeSPF }

// String implements RData.
func (r SPFRecord) String() string { return TXTRecord{Strings: r.Strings}.String() }

func (r SPFRecord) pack(buf []byte, cmp compressionMap) ([]byte, error) {
	return TXTRecord{Strings: r.Strings}.pack(buf, cmp)
}

// OPTRecord is the EDNS0 pseudo-record (RFC 6891). Only the UDP payload
// size is modelled; the paper's §II-C motivates measuring EDNS adoption.
type OPTRecord struct {
	UDPSize uint16
}

var _ RData = OPTRecord{}

// Type implements RData.
func (OPTRecord) Type() Type { return TypeOPT }

// String implements RData.
func (r OPTRecord) String() string {
	return "; EDNS0 udp=" + strconv.FormatUint(uint64(r.UDPSize), 10)
}

func (r OPTRecord) pack(buf []byte, _ compressionMap) ([]byte, error) {
	return buf, nil // OPT rdata is empty when no options are present
}

// RawRecord preserves the payload of record types this package does not
// parse (RFC 3597 unknown-type handling).
type RawRecord struct {
	RType Type
	Data  []byte
}

var _ RData = RawRecord{}

// Type implements RData.
func (r RawRecord) Type() Type { return r.RType }

// String implements RData.
func (r RawRecord) String() string {
	return fmt.Sprintf("\\# %d %x", len(r.Data), r.Data)
}

func (r RawRecord) pack(buf []byte, _ compressionMap) ([]byte, error) {
	return append(buf, r.Data...), nil
}

// unpackRData decodes the RDATA of a record of type t occupying
// msg[off:off+length]. The full message is needed to resolve compression
// pointers inside the payload.
func unpackRData(msg []byte, off, length int, t Type) (RData, error) {
	end := off + length
	if end > len(msg) {
		return nil, ErrTruncatedMessage
	}
	switch t {
	case TypeA:
		if length != 4 {
			return nil, fmt.Errorf("%w: A rdata length %d", ErrBadRData, length)
		}
		return ARecord{Addr: netip.AddrFrom4([4]byte(msg[off:end]))}, nil
	case TypeAAAA:
		if length != 16 {
			return nil, fmt.Errorf("%w: AAAA rdata length %d", ErrBadRData, length)
		}
		return AAAARecord{Addr: netip.AddrFrom16([16]byte(msg[off:end]))}, nil
	case TypeNS:
		host, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		return NSRecord{Host: host}, nil
	case TypeCNAME:
		target, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		return CNAMERecord{Target: target}, nil
	case TypePTR:
		target, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		return PTRRecord{Target: target}, nil
	case TypeSOA:
		return unpackSOA(msg, off, end)
	case TypeMX:
		if off+2 > end {
			return nil, fmt.Errorf("%w: MX rdata too short", ErrBadRData)
		}
		pref := binary.BigEndian.Uint16(msg[off:])
		host, _, err := unpackName(msg, off+2)
		if err != nil {
			return nil, err
		}
		return MXRecord{Preference: pref, Host: host}, nil
	case TypeTXT:
		ss, err := unpackStrings(msg[off:end])
		if err != nil {
			return nil, err
		}
		return TXTRecord{Strings: ss}, nil
	case TypeSPF:
		ss, err := unpackStrings(msg[off:end])
		if err != nil {
			return nil, err
		}
		return SPFRecord{Strings: ss}, nil
	case TypeOPT:
		return OPTRecord{}, nil
	default:
		//cdelint:allow hotalloc unknown-type rdata must be copied out of the caller's reused wire buffer
		data := make([]byte, length)
		copy(data, msg[off:end])
		return RawRecord{RType: t, Data: data}, nil
	}
}

func unpackSOA(msg []byte, off, end int) (RData, error) {
	mname, off, err := unpackName(msg, off)
	if err != nil {
		return nil, err
	}
	rname, off, err := unpackName(msg, off)
	if err != nil {
		return nil, err
	}
	if off+20 > end {
		return nil, fmt.Errorf("%w: SOA rdata too short", ErrBadRData)
	}
	return SOARecord{
		MName:   mname,
		RName:   rname,
		Serial:  binary.BigEndian.Uint32(msg[off:]),
		Refresh: binary.BigEndian.Uint32(msg[off+4:]),
		Retry:   binary.BigEndian.Uint32(msg[off+8:]),
		Expire:  binary.BigEndian.Uint32(msg[off+12:]),
		Minimum: binary.BigEndian.Uint32(msg[off+16:]),
	}, nil
}

func unpackStrings(data []byte) ([]string, error) {
	var out []string
	for i := 0; i < len(data); {
		n := int(data[i])
		i++
		if i+n > len(data) {
			return nil, fmt.Errorf("%w: character-string overruns rdata", ErrBadRData)
		}
		//cdelint:allow hotalloc decoded TXT character-strings are the product, sized by wire content
		out = append(out, string(data[i:i+n]))
		i += n
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty TXT rdata", ErrBadRData)
	}
	return out, nil
}
