package dnswire

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalName(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"", "."},
		{".", "."},
		{"example", "example."},
		{"Example.COM", "example.com."},
		{"cache.example.", "cache.example."},
		{"x-1.sub.cache.example", "x-1.sub.cache.example."},
	}
	for _, tt := range tests {
		if got := CanonicalName(tt.in); got != tt.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestSplitLabels(t *testing.T) {
	if got := SplitLabels("."); got != nil {
		t.Errorf("SplitLabels(.) = %v, want nil", got)
	}
	got := SplitLabels("a.b.example.")
	want := []string{"a", "b", "example"}
	if len(got) != len(want) {
		t.Fatalf("SplitLabels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("label %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	tests := []struct {
		child, parent string
		want          bool
	}{
		{"sub.cache.example", "cache.example", true},
		{"cache.example", "cache.example", true},
		{"cache.example", "sub.cache.example", false},
		{"notcache.example", "cache.example", false},
		{"anything.example", ".", true},
		{"x-1.sub.cache.example", "cache.example", true},
	}
	for _, tt := range tests {
		if got := IsSubdomain(tt.child, tt.parent); got != tt.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", tt.child, tt.parent, got, tt.want)
		}
	}
}

func TestParentName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"a.b.example.", "b.example."},
		{"example.", "."},
		{".", "."},
	}
	for _, tt := range tests {
		if got := ParentName(tt.in); got != tt.want {
			t.Errorf("ParentName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestValidateName(t *testing.T) {
	if err := ValidateName("cache.example"); err != nil {
		t.Errorf("ValidateName(cache.example) = %v, want nil", err)
	}
	if err := ValidateName("."); err != nil {
		t.Errorf("ValidateName(.) = %v, want nil", err)
	}
	long := strings.Repeat("a", 64)
	if err := ValidateName(long + ".example"); !errors.Is(err, ErrLabelTooLong) {
		t.Errorf("64-byte label: err = %v, want ErrLabelTooLong", err)
	}
	var parts []string
	for i := 0; i < 50; i++ {
		parts = append(parts, strings.Repeat("b", 10))
	}
	if err := ValidateName(strings.Join(parts, ".")); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("550-byte name: err = %v, want ErrNameTooLong", err)
	}
	if err := ValidateName("a..b.example"); !errors.Is(err, ErrEmptyLabel) {
		t.Errorf("empty label: err = %v, want ErrEmptyLabel", err)
	}
}

func TestPackUnpackNameRoundTrip(t *testing.T) {
	names := []string{
		".",
		"example.",
		"cache.example.",
		"x-1.sub.cache.example.",
		strings.Repeat("a", 63) + ".example.",
	}
	for _, name := range names {
		buf, err := packName(nil, name, nil)
		if err != nil {
			t.Fatalf("packName(%q): %v", name, err)
		}
		got, off, err := unpackName(buf, 0)
		if err != nil {
			t.Fatalf("unpackName(%q): %v", name, err)
		}
		if got != name {
			t.Errorf("round trip %q -> %q", name, got)
		}
		if off != len(buf) {
			t.Errorf("offset after %q = %d, want %d", name, off, len(buf))
		}
	}
}

func TestNameCompression(t *testing.T) {
	cmp := make(compressionMap)
	buf, err := packName(nil, "name.cache.example.", cmp)
	if err != nil {
		t.Fatal(err)
	}
	first := len(buf)
	buf, err = packName(buf, "x-1.cache.example.", cmp)
	if err != nil {
		t.Fatal(err)
	}
	// The second name should reuse "cache.example." via a pointer:
	// 1+3 ("x-1") + 2 (pointer) = 6 bytes.
	if grew := len(buf) - first; grew != 6 {
		t.Errorf("compressed name used %d bytes, want 6", grew)
	}
	got, _, err := unpackName(buf, first)
	if err != nil {
		t.Fatal(err)
	}
	if got != "x-1.cache.example." {
		t.Errorf("decompressed = %q", got)
	}
}

func TestUnpackNameLowercases(t *testing.T) {
	buf, err := packName(nil, "CaChE.Example.", nil)
	if err != nil {
		t.Fatal(err)
	}
	// packName canonicalises, so craft mixed case manually.
	raw := []byte{5, 'C', 'a', 'C', 'h', 'E', 7, 'E', 'x', 'a', 'm', 'p', 'l', 'e', 0}
	got, _, err := unpackName(raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != "cache.example." {
		t.Errorf("unpackName = %q, want lowercase", got)
	}
	_ = buf
}

func TestUnpackNamePointerLoop(t *testing.T) {
	// A name that points at itself must fail, not hang. Offset 2 holds a
	// pointer back to offset 0, and offset 0 holds a label so the pointer
	// target is valid but re-reaches the pointer.
	raw := []byte{1, 'a', 0xC0, 0x00}
	if _, _, err := unpackName(raw, 2); err == nil {
		t.Fatal("self-referential pointer chain: want error, got nil")
	}
}

func TestUnpackNameForwardPointer(t *testing.T) {
	raw := []byte{0xC0, 0x02, 1, 'a', 0}
	if _, _, err := unpackName(raw, 0); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("forward pointer: err = %v, want ErrBadPointer", err)
	}
}

func TestUnpackNameTruncated(t *testing.T) {
	cases := [][]byte{
		{},
		{5, 'a', 'b'},
		{0xC0},
	}
	for _, raw := range cases {
		if _, _, err := unpackName(raw, 0); !errors.Is(err, ErrTruncatedMessage) {
			t.Errorf("unpackName(%v): err = %v, want ErrTruncatedMessage", raw, err)
		}
	}
}

// randomName generates a valid random DNS name for property tests.
func randomName(r *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-"
	nLabels := 1 + r.Intn(4)
	labels := make([]string, nLabels)
	for i := range labels {
		n := 1 + r.Intn(12)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[r.Intn(len(alphabet)-1)] // avoid trailing '-' edge: fine for wire format
		}
		labels[i] = string(b)
	}
	return strings.Join(labels, ".") + "."
}

func TestPropertyNameRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		name := randomName(r)
		buf, err := packName(nil, name, nil)
		if err != nil {
			return false
		}
		got, _, err := unpackName(buf, 0)
		return err == nil && got == name
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertySubdomainOfParent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		name := randomName(r)
		return IsSubdomain(name, ParentName(name))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
