package dnswire

import (
	"net/netip"
	"testing"
)

// fuzzMessageSeeds packs a representative set of messages — every RData
// type, compression, EDNS, truncation — plus known-bad raw vectors from
// the unit tests, so the fuzzer starts at the interesting corners of the
// format.
func fuzzMessageSeeds(f *testing.F) {
	resp := NewResponse(NewQuery(0x1234, "probe.sub.cache.example.", TypeA))
	resp.Header.Authoritative = true
	resp.Answer = append(resp.Answer,
		RR{Name: "probe.sub.cache.example.", Class: ClassIN, TTL: 300,
			Data: CNAMERecord{Target: "x-1.sub.cache.example."}},
		RR{Name: "x-1.sub.cache.example.", Class: ClassIN, TTL: 300,
			Data: ARecord{Addr: netip.MustParseAddr("192.0.2.5")}},
	)
	resp.Authority = append(resp.Authority,
		RR{Name: "sub.cache.example.", Class: ClassIN, TTL: 60, Data: SOARecord{
			MName: "ns.sub.cache.example.", RName: "hostmaster.sub.cache.example.",
			Serial: 2017062601, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 60,
		}},
		RR{Name: "sub.cache.example.", Class: ClassIN, TTL: 60,
			Data: NSRecord{Host: "ns.sub.cache.example."}},
	)
	resp.Additional = append(resp.Additional,
		RR{Name: "cache.example.", Class: ClassIN, TTL: 60,
			Data: MXRecord{Preference: 10, Host: "mail.cache.example."}},
		RR{Name: "cache.example.", Class: ClassIN, TTL: 60,
			Data: TXTRecord{Strings: []string{"v=spf1 -all"}}},
		RR{Name: ".", Class: Class(MaxEDNSSize), Data: OPTRecord{UDPSize: MaxEDNSSize}},
		RR{Name: "raw.cache.example.", Class: ClassIN, TTL: 1,
			Data: RawRecord{RType: Type(4095), Data: []byte{0xde, 0xad, 0xbe, 0xef}}},
	)
	for _, m := range []*Message{NewQuery(7, "a.example.", TypeTXT), resp} {
		wire, err := m.Pack()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	// Known-bad shapes: truncated header, header promising a missing
	// record, and a pointer loop inside a question name.
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 1, 0, 1})
}

func FuzzMessageUnpack(f *testing.F) {
	fuzzMessageSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		// Unpack may legitimately yield messages Pack refuses (e.g. a
		// decompressed name whose re-encoding exceeds the length limits),
		// but packing must never panic — and what Pack emits must unpack.
		wire, err := m.Pack()
		if err != nil {
			return
		}
		if _, err := Unpack(wire); err != nil {
			t.Fatalf("repacked message does not unpack: %v\nwire: %x", err, wire)
		}
	})
}

func FuzzNameUnpack(f *testing.F) {
	for _, name := range []string{".", "a.example.", "probe.sub.cache.example."} {
		wire, err := packName(nil, name, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire, 0)
	}
	// Compression pointer into an earlier name, mixed case, and the
	// malformed shapes from the unit tests.
	f.Add([]byte{5, 'C', 'a', 'C', 'h', 'E', 7, 'E', 'x', 'a', 'm', 'p', 'l', 'e', 0}, 0)
	f.Add([]byte{1, 'a', 0, 1, 'b', 0xC0, 0x00}, 3)
	f.Add([]byte{1, 'a', 0xC0, 0x00}, 2)
	f.Add([]byte{0xC0, 0x02, 1, 'a', 0}, 0)
	f.Add([]byte{5, 'a', 'b'}, 0)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 || off > len(data) {
			off = 0
		}
		name, next, err := unpackName(data, off)
		if err != nil {
			return
		}
		if len(name) > MaxNameLen {
			t.Fatalf("unpackName returned %d-octet name %q", len(name), name)
		}
		if next < 0 || next > len(data) {
			t.Fatalf("unpackName returned out-of-range next offset %d (len %d)", next, len(data))
		}
		// A name that decoded cleanly and re-encodes must survive a
		// pack/unpack round trip (case and pointer chasing normalised).
		repacked, err := packName(nil, name, nil)
		if err != nil {
			return
		}
		again, _, err := unpackName(repacked, 0)
		if err != nil {
			t.Fatalf("repacked name %q does not unpack: %v (wire %x)", name, err, repacked)
		}
		if again != name {
			t.Fatalf("name round trip changed %q -> %q", name, again)
		}
	})
}
