package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Name-related wire-format limits (RFC 1035 §2.3.4).
const (
	// MaxNameLen is the maximum length of a domain name in wire format,
	// including the terminating root label.
	MaxNameLen = 255
	// MaxLabelLen is the maximum length of a single label.
	MaxLabelLen = 63
	// maxCompressionPointers bounds pointer chains during decompression so
	// a malicious message cannot loop forever.
	maxCompressionPointers = 64
)

// Name handling errors.
var (
	ErrNameTooLong      = errors.New("dnswire: domain name exceeds 255 octets")
	ErrLabelTooLong     = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel       = errors.New("dnswire: empty label in domain name")
	ErrBadPointer       = errors.New("dnswire: invalid compression pointer")
	ErrPointerLoop      = errors.New("dnswire: compression pointer loop")
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
)

// CanonicalName lower-cases a domain name and ensures it is fully qualified
// (ends with a single trailing dot). The root name is returned as ".".
// Lowercasing is ASCII-only: DNS case-insensitivity covers only A–Z
// (RFC 4343), and Unicode-aware lowering would corrupt raw label octets
// that are not valid UTF-8.
func CanonicalName(name string) string {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return "."
	}
	return asciiLowerString(name) + "."
}

// asciiLowerString lowercases ASCII A–Z in s, allocating only when needed.
func asciiLowerString(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			return string(bytesToLower([]byte(s)))
		}
	}
	return s
}

// SplitLabels splits a canonical name into its labels, excluding the root.
// SplitLabels("a.b.example.") returns ["a", "b", "example"].
func SplitLabels(name string) []string {
	name = strings.TrimSuffix(CanonicalName(name), ".")
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// CountLabels returns the number of labels in name, excluding the root.
func CountLabels(name string) int {
	return len(SplitLabels(name))
}

// IsSubdomain reports whether child is equal to or a subdomain of parent.
// Both arguments are canonicalised before comparison.
func IsSubdomain(child, parent string) bool {
	c, p := CanonicalName(child), CanonicalName(parent)
	if p == "." {
		return true
	}
	return c == p || strings.HasSuffix(c, "."+p)
}

// ParentName returns the name with its leftmost label removed.
// ParentName("a.b.example.") returns "b.example."; the parent of the root
// is the root.
func ParentName(name string) string {
	labels := SplitLabels(name)
	if len(labels) <= 1 {
		return "."
	}
	return strings.Join(labels[1:], ".") + "."
}

// ValidateName checks that name satisfies the RFC 1035 length limits.
func ValidateName(name string) error {
	name = CanonicalName(name)
	if name == "." {
		return nil
	}
	// Wire length: one length octet per label plus the label bytes plus the
	// terminating root label.
	wire := 1
	for _, label := range SplitLabels(name) {
		if len(label) == 0 {
			return ErrEmptyLabel
		}
		if len(label) > MaxLabelLen {
			return fmt.Errorf("%w: %q", ErrLabelTooLong, label)
		}
		wire += 1 + len(label)
	}
	if wire > MaxNameLen {
		return fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	return nil
}

// compressionMap tracks offsets of names already written to a message so
// later occurrences can be encoded as compression pointers (RFC 1035 §4.1.4).
type compressionMap map[string]int

// packName appends the wire encoding of name to buf, using and updating cmp
// for compression when cmp is non-nil. Offsets beyond 0x3FFF cannot be
// pointed at and are simply not recorded.
func packName(buf []byte, name string, cmp compressionMap) ([]byte, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	name = CanonicalName(name)
	labels := SplitLabels(name)
	for i := range labels {
		suffix := strings.Join(labels[i:], ".") + "."
		if cmp != nil {
			if off, ok := cmp[suffix]; ok {
				ptr := uint16(0xC000) | uint16(off)
				return append(buf, byte(ptr>>8), byte(ptr)), nil
			}
			if len(buf) <= 0x3FFF {
				cmp[suffix] = len(buf)
			}
		}
		buf = append(buf, byte(len(labels[i])))
		buf = append(buf, labels[i]...)
	}
	return append(buf, 0), nil
}

// unpackName decodes a possibly-compressed name starting at off in msg.
// It returns the canonical name and the offset of the first byte after the
// name's in-place encoding.
func unpackName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	ptrCount := 0
	// next is the offset to resume at after the first pointer jump; -1
	// means no pointer has been followed yet.
	next := -1
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		b := int(msg[off])
		switch {
		case b == 0:
			off++
			if next == -1 {
				next = off
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			if len(name) > MaxNameLen {
				return "", 0, ErrNameTooLong
			}
			return name, next, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			ptrCount++
			if ptrCount > maxCompressionPointers {
				return "", 0, ErrPointerLoop
			}
			target := (b&0x3F)<<8 | int(msg[off+1])
			if next == -1 {
				next = off + 2
			}
			// Pointers must point strictly backwards to already-seen
			// data; forward pointers are malformed.
			if target >= off {
				return "", 0, ErrBadPointer
			}
			off = target
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", b&0xC0)
		default:
			if off+1+b > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			sb.Write(bytesToLower(msg[off+1 : off+1+b]))
			sb.WriteByte('.')
			off += 1 + b
		}
	}
}

// bytesToLower returns an ASCII-lowercased copy of b.
func bytesToLower(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return out
}
