package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Name-related wire-format limits (RFC 1035 §2.3.4).
const (
	// MaxNameLen is the maximum length of a domain name in wire format,
	// including the terminating root label.
	MaxNameLen = 255
	// MaxLabelLen is the maximum length of a single label.
	MaxLabelLen = 63
	// maxCompressionPointers bounds pointer chains during decompression so
	// a malicious message cannot loop forever.
	maxCompressionPointers = 64
)

// Name handling errors.
var (
	ErrNameTooLong      = errors.New("dnswire: domain name exceeds 255 octets")
	ErrLabelTooLong     = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel       = errors.New("dnswire: empty label in domain name")
	ErrBadPointer       = errors.New("dnswire: invalid compression pointer")
	ErrPointerLoop      = errors.New("dnswire: compression pointer loop")
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
)

// CanonicalName lower-cases a domain name and ensures it is fully qualified
// (ends with a single trailing dot). The root name is returned as ".".
// Lowercasing is ASCII-only: DNS case-insensitivity covers only A–Z
// (RFC 4343), and Unicode-aware lowering would corrupt raw label octets
// that are not valid UTF-8.
func CanonicalName(name string) string {
	// Fast path: a name that already ends in "." and contains no uppercase
	// is returned unchanged (strip-one-dot + lower + re-append is the
	// identity on it). This keeps the wire hot path allocation-free, since
	// names coming off the wire or out of NewQuery are already canonical.
	if len(name) > 0 && name[len(name)-1] == '.' && !hasUpper(name) {
		return name
	}
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return "."
	}
	//cdelint:allow hotalloc non-canonical input only; wire and NewQuery names return early above
	return asciiLowerString(name) + "."
}

// hasUpper reports whether s contains an ASCII uppercase letter.
func hasUpper(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			return true
		}
	}
	return false
}

// asciiLowerString lowercases ASCII A–Z in s, allocating only when needed.
func asciiLowerString(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			return string(bytesToLower([]byte(s)))
		}
	}
	return s
}

// SplitLabels splits a canonical name into its labels, excluding the root.
// SplitLabels("a.b.example.") returns ["a", "b", "example"].
func SplitLabels(name string) []string {
	name = strings.TrimSuffix(CanonicalName(name), ".")
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// CountLabels returns the number of labels in name, excluding the root.
func CountLabels(name string) int {
	return len(SplitLabels(name))
}

// IsSubdomain reports whether child is equal to or a subdomain of parent.
// Both arguments are canonicalised before comparison.
func IsSubdomain(child, parent string) bool {
	c, p := CanonicalName(child), CanonicalName(parent)
	if p == "." {
		return true
	}
	return c == p || strings.HasSuffix(c, "."+p)
}

// ParentName returns the name with its leftmost label removed.
// ParentName("a.b.example.") returns "b.example."; the parent of the root
// is the root.
func ParentName(name string) string {
	labels := SplitLabels(name)
	if len(labels) <= 1 {
		return "."
	}
	return strings.Join(labels[1:], ".") + "."
}

// ValidateName checks that name satisfies the RFC 1035 length limits.
// It allocates only on the error path.
func ValidateName(name string) error {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return nil
	}
	// Wire length: one length octet per label plus the label bytes plus the
	// terminating root label.
	wire := 1
	start := 0
	for i := 0; i <= len(name); i++ {
		if i < len(name) && name[i] != '.' {
			continue
		}
		n := i - start
		if n == 0 {
			return ErrEmptyLabel
		}
		if n > MaxLabelLen {
			return fmt.Errorf("%w: %q", ErrLabelTooLong, name[start:i])
		}
		wire += 1 + n
		start = i + 1
	}
	if wire > MaxNameLen {
		return fmt.Errorf("%w: %q", ErrNameTooLong, CanonicalName(name))
	}
	return nil
}

// compressionMap tracks offsets of names already written to a message so
// later occurrences can be encoded as compression pointers (RFC 1035 §4.1.4).
type compressionMap map[string]int

// packName appends the wire encoding of name to buf, using and updating cmp
// for compression when cmp is non-nil. Offsets beyond 0x3FFF cannot be
// pointed at and are simply not recorded.
//
// Compression keys are the dotted suffixes of the canonical name
// (name[off:] including the trailing dot) — the same strings the old
// strings.Join construction produced, but as substrings of name, so the
// loop allocates nothing on an already-canonical input.
func packName(buf []byte, name string, cmp compressionMap) ([]byte, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	name = CanonicalName(name)
	if name == "." {
		return append(buf, 0), nil
	}
	for off := 0; off < len(name); {
		suffix := name[off:]
		if cmp != nil {
			if at, ok := cmp[suffix]; ok {
				ptr := uint16(0xC000) | uint16(at)
				return append(buf, byte(ptr>>8), byte(ptr)), nil
			}
			if len(buf) <= 0x3FFF {
				cmp[suffix] = len(buf)
			}
		}
		// ValidateName guarantees a dot terminates every label.
		n := strings.IndexByte(suffix, '.')
		buf = append(buf, byte(n))
		buf = append(buf, name[off:off+n]...)
		off += n + 1
	}
	return append(buf, 0), nil
}

// unpackName decodes a possibly-compressed name starting at off in msg.
// It returns the canonical name and the offset of the first byte after the
// name's in-place encoding.
func unpackName(msg []byte, off int) (string, int, error) {
	// nb is a stack scratch for the decoded presentation form: one past
	// MaxNameLen so a name that is exactly one octet too long is rejected
	// by the final length check (same error the old builder path produced)
	// rather than mid-build.
	var nb [MaxNameLen + 1]byte
	n := 0
	ptrCount := 0
	// next is the offset to resume at after the first pointer jump; -1
	// means no pointer has been followed yet.
	next := -1
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		b := int(msg[off])
		switch {
		case b == 0:
			off++
			if next == -1 {
				next = off
			}
			if n == 0 {
				return ".", next, nil
			}
			if n > MaxNameLen {
				return "", 0, ErrNameTooLong
			}
			return string(nb[:n]), next, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			ptrCount++
			if ptrCount > maxCompressionPointers {
				return "", 0, ErrPointerLoop
			}
			target := (b&0x3F)<<8 | int(msg[off+1])
			if next == -1 {
				next = off + 2
			}
			// Pointers must point strictly backwards to already-seen
			// data; forward pointers are malformed.
			if target >= off {
				return "", 0, ErrBadPointer
			}
			off = target
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", b&0xC0)
		default:
			if off+1+b > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			if n+b+1 > len(nb) {
				return "", 0, ErrNameTooLong
			}
			for _, c := range msg[off+1 : off+1+b] {
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				}
				nb[n] = c
				n++
			}
			nb[n] = '.'
			n++
			off += 1 + b
		}
	}
}

// bytesToLower returns an ASCII-lowercased copy of b.
func bytesToLower(b []byte) []byte {
	//cdelint:allow hotalloc reached only for names containing uppercase; canonical wire names do not
	out := make([]byte, len(b))
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return out
}
