// Package authns implements the authoritative nameserver side of the CDE
// infrastructure (Fig. 1 of the paper): it serves the prober-controlled
// zones (cache.example and its delegated children) and records every
// arriving query in a log.
//
// The query log is the paper's primary side channel: the number of queries
// ω that reach the nameserver for a probe name equals the number of caches
// that missed, and the set of source addresses seen equals the platform's
// egress IPs (§IV-B1).
package authns

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnscde/internal/clock"
	"dnscde/internal/dnswire"
	"dnscde/internal/metrics"
	"dnscde/internal/netsim"
	"dnscde/internal/netsim/des"
	"dnscde/internal/zone"
)

// LogEntry records one query observed by the nameserver.
type LogEntry struct {
	Time time.Time
	Src  netip.Addr
	Q    dnswire.Question
	// EDNS reports whether the query carried an EDNS0 OPT record, and
	// UDPSize its advertised payload size — the adoption signal §II-C
	// motivates measuring.
	EDNS    bool
	UDPSize uint16
}

// logShards is the shard count of a QueryLog. Every probe of a parallel
// measurement burst logs its arrival here, so the write path is sharded:
// an append takes one of 16 locks instead of serializing the whole pool
// on a single mutex.
const logShards = 16

// logShard is one stripe of the log. Entries carry a global sequence
// number so reads can merge the stripes back into arrival order.
type logShard struct {
	mu      sync.Mutex
	entries []seqEntry
}

type seqEntry struct {
	seq uint64
	e   LogEntry
}

// QueryLog is a thread-safe append-only log of observed queries.
// The zero value is ready to use.
//
// Writes are striped across logShards locks; a global atomic sequence
// number assigned at append time preserves arrival order, which Entries
// restores by merging the shards. Counting queries iterate the shards
// directly — order never matters for a count.
type QueryLog struct {
	seq    atomic.Uint64
	shards [logShards]logShard
}

// Append adds an entry.
func (l *QueryLog) Append(e LogEntry) {
	s := l.seq.Add(1) - 1
	sh := &l.shards[s%logShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.entries = append(sh.entries, seqEntry{seq: s, e: e})
}

// Len returns the number of logged queries.
func (l *QueryLog) Len() int {
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Entries returns a copy of the log in arrival order.
func (l *QueryLog) Entries() []LogEntry {
	var merged []seqEntry
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		merged = append(merged, sh.entries...)
		sh.mu.Unlock()
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a].seq < merged[b].seq })
	out := make([]LogEntry, len(merged))
	for i, se := range merged {
		out[i] = se.e
	}
	return out
}

// Reset clears the log between experiments.
func (l *QueryLog) Reset() {
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		sh.entries = nil
		sh.mu.Unlock()
	}
}

// forEach visits every logged entry shard by shard — unordered, which is
// fine for the counting methods built on it.
func (l *QueryLog) forEach(fn func(e *LogEntry)) {
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for j := range sh.entries {
			fn(&sh.entries[j].e)
		}
		sh.mu.Unlock()
	}
}

// CountName returns how many logged queries asked for name (any type).
// This is the ω of §IV-B1a.
func (l *QueryLog) CountName(name string) int {
	name = dnswire.CanonicalName(name)
	n := 0
	l.forEach(func(e *LogEntry) {
		if e.Q.Name == name {
			n++
		}
	})
	return n
}

// CountNameType returns how many logged queries asked for (name, qtype).
// Data-collection channels that query one name under several types (an
// SMTP server checking TXT, SPF and MX for a sender domain) are counted
// per type with this method so ω is not inflated.
func (l *QueryLog) CountNameType(name string, t dnswire.Type) int {
	name = dnswire.CanonicalName(name)
	n := 0
	l.forEach(func(e *LogEntry) {
		if e.Q.Name == name && e.Q.Type == t {
			n++
		}
	})
	return n
}

// CountNameMaxType returns the largest per-qtype arrival count for name.
// When a channel resolves one name under several types (TXT + SPF + MX
// from one probe email), each type group independently counts the caches
// it touched; the maximum is the best single-group estimate.
func (l *QueryLog) CountNameMaxType(name string) int {
	name = dnswire.CanonicalName(name)
	perType := make(map[dnswire.Type]int)
	best := 0
	l.forEach(func(e *LogEntry) {
		if e.Q.Name != name {
			return
		}
		perType[e.Q.Type]++
		if perType[e.Q.Type] > best {
			best = perType[e.Q.Type]
		}
	})
	return best
}

// CountSuffix returns how many logged queries asked for names under
// suffix (inclusive).
func (l *QueryLog) CountSuffix(suffix string) int {
	n := 0
	l.forEach(func(e *LogEntry) {
		if dnswire.IsSubdomain(e.Q.Name, suffix) {
			n++
		}
	})
	return n
}

// DistinctSources returns the set of source addresses seen, optionally
// restricted to queries under suffix (pass "" or "." for all). These are
// the platform's egress IPs.
func (l *QueryLog) DistinctSources(suffix string) []netip.Addr {
	seen := make(map[netip.Addr]struct{})
	var out []netip.Addr
	// First-seen order is part of the contract, so walk the merged
	// arrival-ordered view rather than the raw shards.
	for _, e := range l.Entries() {
		if suffix != "" && !dnswire.IsSubdomain(e.Q.Name, suffix) {
			continue
		}
		if _, dup := seen[e.Src]; !dup {
			seen[e.Src] = struct{}{}
			out = append(out, e.Src)
		}
	}
	return out
}

// EDNSShare returns the fraction of logged queries (optionally under
// suffix) that carried an EDNS0 OPT record — the §II-C adoption
// measurement.
func (l *QueryLog) EDNSShare(suffix string) float64 {
	total, edns := 0, 0
	l.forEach(func(e *LogEntry) {
		if suffix != "" && !dnswire.IsSubdomain(e.Q.Name, suffix) {
			return
		}
		total++
		if e.EDNS {
			edns++
		}
	})
	if total == 0 {
		return 0
	}
	return float64(edns) / float64(total)
}

// CountByType tallies logged queries per qtype, optionally restricted to
// names under suffix. The SMTP experiment (Table I) is built on this.
func (l *QueryLog) CountByType(suffix string) map[dnswire.Type]int {
	out := make(map[dnswire.Type]int)
	l.forEach(func(e *LogEntry) {
		if suffix != "" && !dnswire.IsSubdomain(e.Q.Name, suffix) {
			return
		}
		out[e.Q.Type]++
	})
	return out
}

// Server is an authoritative nameserver for one or more zones.
// It implements netsim.Handler and is safe for concurrent use.
type Server struct {
	mu    sync.RWMutex
	zones map[string]*zone.Zone

	log *QueryLog
	clk clock.Clock

	// processing is artificial per-query processing latency charged to
	// the simulated exchange.
	processing time.Duration
	// controlZone, when set, answers log-statistics TXT queries under
	// this origin (see control.go).
	controlZone string

	// metricsReg, when non-nil, mirrors arrivals into the accounting
	// registry: "authns.queries" plus per-qtype and per-source breakdowns.
	metricsReg *metrics.Registry
	mQueries   *metrics.Counter
}

var (
	_ netsim.Handler      = (*Server)(nil)
	_ netsim.EventHandler = (*Server)(nil)
)

// Option configures a Server.
type Option func(*Server)

// WithClock sets the clock used to timestamp log entries.
func WithClock(c clock.Clock) Option {
	return func(s *Server) { s.clk = c }
}

// WithProcessingDelay charges d of simulated time to every query.
func WithProcessingDelay(d time.Duration) Option {
	return func(s *Server) { s.processing = d }
}

// WithMetrics attaches an accounting registry at construction time; see
// SetMetrics.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *Server) { s.setMetricsLocked(reg) }
}

// SetMetrics attaches an accounting registry: arrivals are counted under
// "authns.queries" with "authns.queries.qtype.<type>" and
// "authns.queries.src.<addr>" breakdowns — the query-volume and egress-
// source view of the nameserver's side channel. A nil registry detaches
// instrumentation.
func (s *Server) SetMetrics(reg *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setMetricsLocked(reg)
}

func (s *Server) setMetricsLocked(reg *metrics.Registry) {
	s.metricsReg = reg
	s.mQueries = reg.Counter("authns.queries")
}

// countArrival mirrors one logged query into the registry.
func (s *Server) countArrival(e LogEntry) {
	s.mu.RLock()
	reg, total := s.metricsReg, s.mQueries
	s.mu.RUnlock()
	if reg == nil {
		return
	}
	total.Inc()
	reg.Counter("authns.queries.qtype." + e.Q.Type.String()).Inc()
	reg.Counter("authns.queries.src." + e.Src.String()).Inc()
}

// NewServer creates a nameserver serving the given zones.
func NewServer(zones []*zone.Zone, opts ...Option) *Server {
	s := &Server{
		zones: make(map[string]*zone.Zone, len(zones)),
		log:   &QueryLog{},
		clk:   clock.Real{},
	}
	for _, z := range zones {
		s.zones[z.Origin()] = z
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// AddZone attaches another zone to the server.
func (s *Server) AddZone(z *zone.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin()] = z
}

// Log returns the server's query log.
func (s *Server) Log() *QueryLog { return s.log }

// findZone returns the most specific zone whose origin is an ancestor of
// name.
func (s *Server) findZone(name string) (*zone.Zone, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best *zone.Zone
	bestLabels := -1
	for origin, z := range s.zones {
		if dnswire.IsSubdomain(name, origin) {
			if n := dnswire.CountLabels(origin); n > bestLabels {
				best, bestLabels = z, n
			}
		}
	}
	return best, best != nil
}

// ServeDNSEvent implements netsim.EventHandler: an authoritative lookup
// has no upstream work, so the event-native form is the synchronous
// lookup followed by a response event after the configured processing
// delay. On the synchronous path ChargeLatency meters that same delay
// (and is a no-op here, where no meter is in scope), so both paths charge
// identical handler time.
func (s *Server) ServeDNSEvent(ctx context.Context, sched *des.Scheduler, src netip.Addr, query *dnswire.Message, r netsim.Responder) {
	resp, err := s.ServeDNS(ctx, src, query)
	netsim.RespondAfter(sched, s.processing, r, resp, err)
}

// ServeDNS implements netsim.Handler: log the query, look it up, build the
// response per RFC 1034 §4.3.2 (including in-zone CNAME chasing).
func (s *Server) ServeDNS(ctx context.Context, src netip.Addr, query *dnswire.Message) (*dnswire.Message, error) {
	q, err := query.FirstQuestion()
	if err != nil {
		resp := dnswire.NewResponse(query)
		resp.Header.RCode = dnswire.RCodeFormErr
		return resp, nil
	}
	// Control queries read the log and are not part of the measurement;
	// answer them before logging.
	if ctl := s.controlAnswer(q, query); ctl != nil {
		return ctl, nil
	}
	entry := LogEntry{Time: s.clk.Now(), Src: src, Q: q}
	for _, rr := range query.Additional {
		if opt, ok := rr.Data.(dnswire.OPTRecord); ok {
			entry.EDNS = true
			entry.UDPSize = opt.UDPSize
			break
		}
	}
	s.log.Append(entry)
	s.countArrival(entry)
	if s.processing > 0 {
		netsim.ChargeLatency(ctx, s.processing)
	}

	resp := dnswire.NewResponse(query)
	if query.Header.Opcode != dnswire.OpcodeQuery {
		resp.Header.RCode = dnswire.RCodeNotImp
		return resp, nil
	}

	z, ok := s.findZone(q.Name)
	if !ok {
		resp.Header.RCode = dnswire.RCodeRefused
		return resp, nil
	}

	name := q.Name
	// Chase CNAMEs within our own authority. Both the hop bound and the
	// loop detection end the chase by returning the chain accumulated so
	// far (NOERROR) — like production servers, which leave the rest of a
	// long or looping chain to the resolver.
	visited := map[string]bool{name: true}
	for hop := 0; hop < 16; hop++ {
		res := z.Lookup(name, q.Type)
		switch res.Kind {
		case zone.Answer:
			resp.Header.Authoritative = true
			resp.Answer = append(resp.Answer, res.Records...)
			return resp, nil
		case zone.CNAMEAnswer:
			resp.Header.Authoritative = true
			resp.Answer = append(resp.Answer, res.Records...)
			if visited[res.Target] {
				return resp, nil // loop: stop with the partial chain
			}
			visited[res.Target] = true
			// Continue inside this server's zones if possible; the target
			// may cross into a child zone we also serve.
			if tz, ok := s.findZone(res.Target); ok {
				z, name = tz, res.Target
				continue
			}
			return resp, nil
		case zone.Delegation:
			resp.Header.Authoritative = false
			resp.Authority = append(resp.Authority, res.Records...)
			resp.Additional = append(resp.Additional, res.Glue...)
			return resp, nil
		case zone.NoData:
			resp.Header.Authoritative = true
			resp.Authority = append(resp.Authority, res.Authority...)
			return resp, nil
		case zone.NXDomain:
			resp.Header.Authoritative = true
			// If we already answered CNAME hops, the final target's
			// nonexistence still yields NXDOMAIN per RFC 6604.
			resp.Header.RCode = dnswire.RCodeNXDomain
			resp.Authority = append(resp.Authority, res.Authority...)
			return resp, nil
		case zone.OutOfZone:
			resp.Header.RCode = dnswire.RCodeRefused
			return resp, nil
		default:
			return nil, fmt.Errorf("authns: unexpected lookup kind %v", res.Kind)
		}
	}
	// Hop bound reached: return the partial chain accumulated so far.
	return resp, nil
}
