package authns

import (
	"net/netip"
	"strings"
	"testing"

	"dnscde/internal/dnswire"
	"dnscde/internal/zone"
)

func controlServer(t *testing.T) *Server {
	t.Helper()
	h, err := zone.BuildHierarchy("cache.example", 5, target, parentNS, childNS, 300)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer([]*zone.Zone{h.Parent, h.Child}, WithControlZone("ctl.cache.example."))
}

func txtStrings(t *testing.T, resp *dnswire.Message) []string {
	t.Helper()
	if len(resp.Answer) != 1 {
		t.Fatalf("resp = %s", resp.Summary())
	}
	txt, ok := resp.Answer[0].Data.(dnswire.TXTRecord)
	if !ok {
		t.Fatalf("data = %T", resp.Answer[0].Data)
	}
	return txt.Strings
}

func TestControlCount(t *testing.T) {
	s := controlServer(t)
	for i := 0; i < 3; i++ {
		_ = ask(t, s, egressIP, "x-1.sub.cache.example.", dnswire.TypeA)
	}
	resp := ask(t, s, egressIP, "count.x-1.sub.cache.example.ctl.cache.example.", dnswire.TypeTXT)
	if got := txtStrings(t, resp); got[0] != "3" {
		t.Errorf("count = %v, want 3", got)
	}
	// Control queries themselves are not logged.
	if s.Log().Len() != 3 {
		t.Errorf("log length = %d, want 3", s.Log().Len())
	}
}

func TestControlSuffixAndMax(t *testing.T) {
	s := controlServer(t)
	_ = ask(t, s, egressIP, "x-1.sub.cache.example.", dnswire.TypeA)
	_ = ask(t, s, egressIP, "x-1.sub.cache.example.", dnswire.TypeTXT)
	_ = ask(t, s, egressIP, "x-2.sub.cache.example.", dnswire.TypeA)

	resp := ask(t, s, egressIP, "suffix.sub.cache.example.ctl.cache.example.", dnswire.TypeTXT)
	if got := txtStrings(t, resp); got[0] != "3" {
		t.Errorf("suffix count = %v", got)
	}
	resp = ask(t, s, egressIP, "max.x-1.sub.cache.example.ctl.cache.example.", dnswire.TypeTXT)
	if got := txtStrings(t, resp); got[0] != "1" {
		t.Errorf("max per-type count = %v, want 1", got)
	}
}

func TestControlEgress(t *testing.T) {
	s := controlServer(t)
	srcs := []netip.Addr{
		netip.MustParseAddr("203.0.113.41"),
		netip.MustParseAddr("203.0.113.42"),
		netip.MustParseAddr("203.0.113.41"),
	}
	for _, src := range srcs {
		_ = ask(t, s, src, "x-3.sub.cache.example.", dnswire.TypeA)
	}
	resp := ask(t, s, egressIP, "egress.sub.cache.example.ctl.cache.example.", dnswire.TypeTXT)
	got := txtStrings(t, resp)
	if got[0] != "2" || len(got) != 3 {
		t.Fatalf("egress control = %v", got)
	}
	joined := strings.Join(got[1:], " ")
	if !strings.Contains(joined, "203.0.113.41") || !strings.Contains(joined, "203.0.113.42") {
		t.Errorf("sources = %v", got[1:])
	}
}

func TestControlUnknownOpAndMalformed(t *testing.T) {
	s := controlServer(t)
	resp := ask(t, s, egressIP, "bogusop.x.ctl.cache.example.", dnswire.TypeTXT)
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("bogus op rcode = %v", resp.Header.RCode)
	}
	resp = ask(t, s, egressIP, "ctl.cache.example.", dnswire.TypeTXT)
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("bare control origin rcode = %v", resp.Header.RCode)
	}
}

func TestControlDisabledFallsThrough(t *testing.T) {
	// Without WithControlZone the same name is an ordinary (refused or
	// NXDOMAIN) query and IS logged.
	h, err := zone.BuildHierarchy("cache.example", 3, target, parentNS, childNS, 300)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer([]*zone.Zone{h.Parent, h.Child})
	resp := ask(t, s, egressIP, "count.x.ctl.cache.example.", dnswire.TypeTXT)
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v (name is under cache.example but absent)", resp.Header.RCode)
	}
	if s.Log().Len() != 1 {
		t.Errorf("query not logged without control zone")
	}
}
