package authns

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnscde/internal/clock"
	"dnscde/internal/dnswire"
	"dnscde/internal/netsim"
	"dnscde/internal/zone"
)

var (
	parentNS = netip.MustParseAddr("198.51.100.1")
	childNS  = netip.MustParseAddr("198.51.100.2")
	target   = netip.MustParseAddr("192.0.2.80")
	egressIP = netip.MustParseAddr("203.0.113.7")
)

func hierarchyServer(t *testing.T) (*Server, *zone.Hierarchy) {
	t.Helper()
	h, err := zone.BuildHierarchy("cache.example", 10, target, parentNS, childNS, 300)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer([]*zone.Zone{h.Parent, h.Child}, WithClock(clock.NewVirtual())), h
}

func ask(t *testing.T, s *Server, src netip.Addr, name string, typ dnswire.Type) *dnswire.Message {
	t.Helper()
	resp, err := s.ServeDNS(context.Background(), src, dnswire.NewQuery(1, name, typ))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServeAnswer(t *testing.T) {
	s, _ := hierarchyServer(t)
	resp := ask(t, s, egressIP, "x-1.sub.cache.example.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeNoError || !resp.Header.Authoritative {
		t.Fatalf("resp = %s", resp.Summary())
	}
	if len(resp.Answer) != 1 {
		t.Fatalf("answers = %d", len(resp.Answer))
	}
	if a := resp.Answer[0].Data.(dnswire.ARecord); a.Addr != target {
		t.Errorf("addr = %v", a.Addr)
	}
}

func TestServePicksMostSpecificZone(t *testing.T) {
	s, _ := hierarchyServer(t)
	// The child zone must answer, not the parent's delegation, because
	// this server is authoritative for both.
	resp := ask(t, s, egressIP, "x-2.sub.cache.example.", dnswire.TypeA)
	if len(resp.Answer) != 1 {
		t.Errorf("want answer from child zone, got %s", resp.Summary())
	}
}

func TestServeDelegationFromParentOnly(t *testing.T) {
	h, err := zone.BuildHierarchy("cache.example", 5, target, parentNS, childNS, 300)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer([]*zone.Zone{h.Parent}) // parent only
	resp := ask(t, s, egressIP, "x-1.sub.cache.example.", dnswire.TypeA)
	if resp.Header.Authoritative {
		t.Error("referral must not be authoritative")
	}
	if len(resp.Answer) != 0 || len(resp.Authority) != 1 || resp.Authority[0].Type() != dnswire.TypeNS {
		t.Fatalf("resp = %s", resp.Summary())
	}
	if len(resp.Additional) != 1 {
		t.Errorf("glue = %v", resp.Additional)
	}
}

func TestServeNXDomainAndNoData(t *testing.T) {
	s, _ := hierarchyServer(t)
	resp := ask(t, s, egressIP, "nope.cache.example.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type() != dnswire.TypeSOA {
		t.Errorf("authority = %v", resp.Authority)
	}
	resp = ask(t, s, egressIP, "x-1.sub.cache.example.", dnswire.TypeTXT)
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answer) != 0 {
		t.Errorf("NODATA resp = %s", resp.Summary())
	}
}

func TestServeRefusedOutOfAuthority(t *testing.T) {
	s, _ := hierarchyServer(t)
	resp := ask(t, s, egressIP, "www.unrelated.example.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestServeCNAMEChaseWithinZone(t *testing.T) {
	z, err := zone.BuildCNAMEChain("cache.example", 5, target, parentNS, 300)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer([]*zone.Zone{z})
	resp := ask(t, s, egressIP, "x-3.cache.example.", dnswire.TypeA)
	if len(resp.Answer) != 2 {
		t.Fatalf("answers = %v", resp.Answer)
	}
	if resp.Answer[0].Type() != dnswire.TypeCNAME || resp.Answer[1].Type() != dnswire.TypeA {
		t.Errorf("answer types = %v, %v", resp.Answer[0].Type(), resp.Answer[1].Type())
	}
}

func TestServeCNAMELoopBounded(t *testing.T) {
	z := zone.New("cache.example")
	if err := zone.Apex(z, "ns.cache.example.", parentNS, 300); err != nil {
		t.Fatal(err)
	}
	z.MustAdd(dnswire.RR{Name: "a.cache.example.", Class: dnswire.ClassIN, TTL: 1,
		Data: dnswire.CNAMERecord{Target: "b.cache.example."}})
	z.MustAdd(dnswire.RR{Name: "b.cache.example.", Class: dnswire.ClassIN, TTL: 1,
		Data: dnswire.CNAMERecord{Target: "a.cache.example."}})
	s := NewServer([]*zone.Zone{z})
	// A CNAME loop terminates with the partial chain, like production
	// servers; the resolver's own chase limit handles the rest.
	resp := ask(t, s, egressIP, "a.cache.example.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %v, want NOERROR with partial chain", resp.Header.RCode)
	}
	if len(resp.Answer) != 2 {
		t.Errorf("answers = %d, want the two loop links exactly once each", len(resp.Answer))
	}
}

func TestServeFormErrOnNoQuestion(t *testing.T) {
	s, _ := hierarchyServer(t)
	resp, err := s.ServeDNS(context.Background(), egressIP, &dnswire.Message{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeFormErr {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestServeNotImpOnWeirdOpcode(t *testing.T) {
	s, _ := hierarchyServer(t)
	q := dnswire.NewQuery(1, "x-1.sub.cache.example.", dnswire.TypeA)
	q.Header.Opcode = dnswire.OpcodeUpdate
	resp, err := s.ServeDNS(context.Background(), egressIP, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNotImp {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestQueryLogCounting(t *testing.T) {
	s, _ := hierarchyServer(t)
	srcs := []netip.Addr{
		netip.MustParseAddr("203.0.113.1"),
		netip.MustParseAddr("203.0.113.2"),
		netip.MustParseAddr("203.0.113.1"),
	}
	for i, src := range srcs {
		_ = ask(t, s, src, "x-1.sub.cache.example.", dnswire.TypeA)
		_ = i
	}
	_ = ask(t, s, srcs[0], "x-2.sub.cache.example.", dnswire.TypeTXT)

	log := s.Log()
	if log.Len() != 4 {
		t.Errorf("Len = %d", log.Len())
	}
	if got := log.CountName("x-1.sub.cache.example."); got != 3 {
		t.Errorf("CountName = %d, want 3", got)
	}
	if got := log.CountSuffix("sub.cache.example."); got != 4 {
		t.Errorf("CountSuffix = %d, want 4", got)
	}
	if got := log.DistinctSources(""); len(got) != 2 {
		t.Errorf("DistinctSources = %v", got)
	}
	byType := log.CountByType("sub.cache.example.")
	if byType[dnswire.TypeA] != 3 || byType[dnswire.TypeTXT] != 1 {
		t.Errorf("CountByType = %v", byType)
	}
	log.Reset()
	if log.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestQueryLogEntriesAreCopies(t *testing.T) {
	var l QueryLog
	l.Append(LogEntry{Src: egressIP})
	es := l.Entries()
	es[0].Src = netip.MustParseAddr("192.0.2.99")
	if l.Entries()[0].Src != egressIP {
		t.Error("Entries exposed internal slice")
	}
}

func TestQueryLogConcurrent(t *testing.T) {
	var l QueryLog
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Append(LogEntry{Q: dnswire.Question{Name: "x.example."}})
				_ = l.CountName("x.example.")
			}
		}()
	}
	wg.Wait()
	if l.Len() != 3200 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestProcessingDelayCharged(t *testing.T) {
	h, err := zone.BuildHierarchy("cache.example", 3, target, parentNS, childNS, 300)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer([]*zone.Zone{h.Parent, h.Child}, WithProcessingDelay(25*time.Millisecond))
	n := netsim.New(1)
	n.Register(parentNS, netsim.LinkProfile{}, s)
	_, rtt, err := n.Bind(egressIP).Exchange(context.Background(), dnswire.NewQuery(1, "x-1.sub.cache.example.", dnswire.TypeA), parentNS)
	if err != nil {
		t.Fatal(err)
	}
	if rtt != 25*time.Millisecond {
		t.Errorf("rtt = %v, want 25ms processing delay", rtt)
	}
}

func TestLogTimestampsUseClock(t *testing.T) {
	vc := clock.NewVirtual()
	h, err := zone.BuildHierarchy("cache.example", 3, target, parentNS, childNS, 300)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer([]*zone.Zone{h.Parent}, WithClock(vc))
	_ = ask(t, s, egressIP, "cache.example.", dnswire.TypeSOA)
	vc.Advance(time.Hour)
	_ = ask(t, s, egressIP, "cache.example.", dnswire.TypeSOA)
	es := s.Log().Entries()
	if d := es[1].Time.Sub(es[0].Time); d != time.Hour {
		t.Errorf("timestamp delta = %v, want 1h", d)
	}
}

func TestAddZone(t *testing.T) {
	s := NewServer(nil)
	resp := ask(t, s, egressIP, "a.cache.example.", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("rcode = %v before AddZone", resp.Header.RCode)
	}
	z, err := zone.BuildFlat("cache.example", "a", target, parentNS, 300)
	if err != nil {
		t.Fatal(err)
	}
	s.AddZone(z)
	resp = ask(t, s, egressIP, "a.cache.example.", dnswire.TypeA)
	if len(resp.Answer) != 1 {
		t.Errorf("resp = %s", resp.Summary())
	}
}

func TestCountNameTypeAndMaxType(t *testing.T) {
	var l QueryLog
	add := func(name string, typ dnswire.Type) {
		l.Append(LogEntry{Q: dnswire.Question{Name: dnswire.CanonicalName(name), Type: typ, Class: dnswire.ClassIN}})
	}
	add("t.cache.example", dnswire.TypeTXT)
	add("t.cache.example", dnswire.TypeTXT)
	add("t.cache.example", dnswire.TypeTXT)
	add("t.cache.example", dnswire.TypeMX)
	add("other.cache.example", dnswire.TypeTXT)

	if got := l.CountNameType("T.Cache.Example", dnswire.TypeTXT); got != 3 {
		t.Errorf("CountNameType TXT = %d, want 3", got)
	}
	if got := l.CountNameType("t.cache.example", dnswire.TypeMX); got != 1 {
		t.Errorf("CountNameType MX = %d, want 1", got)
	}
	if got := l.CountNameType("t.cache.example", dnswire.TypeA); got != 0 {
		t.Errorf("CountNameType A = %d, want 0", got)
	}
	if got := l.CountNameMaxType("t.cache.example"); got != 3 {
		t.Errorf("CountNameMaxType = %d, want 3 (the TXT group)", got)
	}
	if got := l.CountNameMaxType("missing.cache.example"); got != 0 {
		t.Errorf("CountNameMaxType missing = %d", got)
	}
}

func TestEDNSShare(t *testing.T) {
	var l QueryLog
	l.Append(LogEntry{Q: dnswire.Question{Name: "a.cache.example.", Type: dnswire.TypeA}, EDNS: true, UDPSize: 4096})
	l.Append(LogEntry{Q: dnswire.Question{Name: "b.cache.example.", Type: dnswire.TypeA}})
	l.Append(LogEntry{Q: dnswire.Question{Name: "c.other.example.", Type: dnswire.TypeA}, EDNS: true})

	if got := l.EDNSShare(""); got < 0.66 || got > 0.67 {
		t.Errorf("EDNSShare(all) = %v, want 2/3", got)
	}
	if got := l.EDNSShare("cache.example."); got != 0.5 {
		t.Errorf("EDNSShare(cache.example) = %v, want 0.5", got)
	}
	if got := l.EDNSShare("unseen.example."); got != 0 {
		t.Errorf("EDNSShare(unseen) = %v", got)
	}
}
