package authns

import (
	"fmt"
	"strings"

	"dnscde/internal/dnswire"
)

// Control-channel support: a prober that runs its authoritative servers
// remotely (cmd/cdeserver) still needs the query-log counts — ω, the
// distinct egress sources — to finish an enumeration. Rather than invent
// a side protocol, the server answers *DNS TXT queries* in a dedicated
// control zone:
//
//	count.<name>.ctl.<domain>    TXT  → number of logged queries for <name>
//	egress.<suffix>.ctl.<domain> TXT  → distinct source count and the sources
//
// Control queries are answered before zone lookup and are not logged
// themselves. The control zone must be delegated to this server like any
// other zone so the prober can reach it directly (it queries the server's
// address, not the measured resolver).

// ControlSuffix is the label sequence that marks control queries,
// directly below the server's domain.
const ControlSuffix = "ctl."

// WithControlZone enables the control channel under origin
// ("ctl.cache.example."). Pass the full control origin.
func WithControlZone(origin string) Option {
	return func(s *Server) { s.controlZone = dnswire.CanonicalName(origin) }
}

// EnableControlZone turns the control channel on after construction —
// for servers built by helpers that do not expose Options.
func (s *Server) EnableControlZone(origin string) {
	s.controlZone = dnswire.CanonicalName(origin)
}

// controlAnswer handles a control query, returning nil when q is not a
// control name.
func (s *Server) controlAnswer(q dnswire.Question, query *dnswire.Message) *dnswire.Message {
	if s.controlZone == "" || !dnswire.IsSubdomain(q.Name, s.controlZone) {
		return nil
	}
	resp := dnswire.NewResponse(query)
	resp.Header.Authoritative = true

	payload := strings.TrimSuffix(q.Name, s.controlZone)
	payload = strings.TrimSuffix(payload, ".")
	op, rest, ok := strings.Cut(payload, ".")
	if !ok || rest == "" {
		resp.Header.RCode = dnswire.RCodeNXDomain
		return resp
	}
	var values []string
	switch op {
	case "count":
		values = []string{fmt.Sprintf("%d", s.log.CountName(rest))}
	case "max":
		// Largest per-qtype count — the multi-type channel variant.
		values = []string{fmt.Sprintf("%d", s.log.CountNameMaxType(rest))}
	case "suffix":
		values = []string{fmt.Sprintf("%d", s.log.CountSuffix(rest))}
	case "egress":
		sources := s.log.DistinctSources(rest)
		values = []string{fmt.Sprintf("%d", len(sources))}
		for _, src := range sources {
			values = append(values, src.String())
		}
	default:
		resp.Header.RCode = dnswire.RCodeNXDomain
		return resp
	}
	resp.Answer = append(resp.Answer, dnswire.RR{
		Name: q.Name, Class: dnswire.ClassIN, TTL: 0,
		Data: dnswire.TXTRecord{Strings: values},
	})
	return resp
}
