package population

import (
	"math/rand"
	"testing"

	"dnscde/internal/stats"
)

const _bigN = 4000

func generate(t *testing.T, kind Kind) Dataset {
	t.Helper()
	return Generate(kind, _bigN, rand.New(rand.NewSource(7)))
}

func TestGenerateCounts(t *testing.T) {
	d := Generate(OpenResolvers, 10, rand.New(rand.NewSource(1)))
	if len(d.Specs) != 10 {
		t.Fatalf("specs = %d", len(d.Specs))
	}
	for i, s := range d.Specs {
		if s.Name == "" || s.Operator == "" || s.Country == "" {
			t.Errorf("spec %d incomplete: %+v", i, s)
		}
		if s.Ingress < 1 || s.Egress < 1 || s.Caches < 1 {
			t.Errorf("spec %d degenerate topology: %+v", i, s)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(ISPs, 50, rand.New(rand.NewSource(3)))
	b := Generate(ISPs, 50, rand.New(rand.NewSource(3)))
	for i := range a.Specs {
		if a.Specs[i] != b.Specs[i] {
			t.Fatalf("spec %d differs between identical seeds", i)
		}
	}
}

func TestOpenResolverShape(t *testing.T) {
	d := generate(t, OpenResolvers)
	single := 0
	egress := make([]int, 0, _bigN)
	caches := make([]int, 0, _bigN)
	for _, s := range d.Specs {
		if s.SingleSingle() {
			single++
		}
		egress = append(egress, s.Egress)
		caches = append(caches, s.Caches)
	}
	// Fig. 6: almost 70% single IP + single cache.
	frac := float64(single) / _bigN
	if frac < 0.65 || frac < 0.60 {
		if frac < 0.65 || frac > 0.75 {
			t.Errorf("single/single = %.3f, want ≈0.70", frac)
		}
	}
	// Fig. 3: 85% use 5 or fewer egress IPs.
	if got := stats.NewCDFInts(egress).At(5); got < 0.80 || got > 0.92 {
		t.Errorf("P(egress ≤ 5) = %.3f, want ≈0.85", got)
	}
	// Fig. 4: 70% use 1–2 caches.
	if got := stats.NewCDFInts(caches).At(2); got < 0.65 || got > 0.90 {
		t.Errorf("P(caches ≤ 2) = %.3f, want ≈0.70+", got)
	}
}

func TestEnterpriseShape(t *testing.T) {
	d := generate(t, Enterprises)
	single, multi := 0, 0
	egress := make([]int, 0, _bigN)
	caches := make([]int, 0, _bigN)
	for _, s := range d.Specs {
		if s.SingleSingle() {
			single++
		}
		if s.MultiMulti() {
			multi++
		}
		egress = append(egress, s.Egress)
		caches = append(caches, s.Caches)
	}
	// Fig. 3: 50% of enterprises use more than 20 egress IPs.
	if got := stats.NewCDFInts(egress).Above(20); got < 0.40 || got > 0.60 {
		t.Errorf("P(egress > 20) = %.3f, want ≈0.50", got)
	}
	// Fig. 4: 65% use 1–4 caches.
	if got := stats.NewCDFInts(caches).At(4); got < 0.58 || got > 0.75 {
		t.Errorf("P(caches ≤ 4) = %.3f, want ≈0.65", got)
	}
	// Fig. 6: less than 5% single/single, more than 80% multi/multi.
	if frac := float64(single) / _bigN; frac > 0.05 {
		t.Errorf("single/single = %.3f, want < 0.05", frac)
	}
	if frac := float64(multi) / _bigN; frac < 0.80 {
		t.Errorf("multi/multi = %.3f, want > 0.80", frac)
	}
}

func TestISPShape(t *testing.T) {
	d := generate(t, ISPs)
	single, multi := 0, 0
	egress := make([]int, 0, _bigN)
	caches := make([]int, 0, _bigN)
	for _, s := range d.Specs {
		if s.SingleSingle() {
			single++
		}
		if s.MultiMulti() {
			multi++
		}
		egress = append(egress, s.Egress)
		caches = append(caches, s.Caches)
	}
	// Fig. 3: 50% of ISPs use more than 11 egress IPs.
	if got := stats.NewCDFInts(egress).Above(11); got < 0.38 || got > 0.62 {
		t.Errorf("P(egress > 11) = %.3f, want ≈0.50", got)
	}
	// Fig. 4: about 60% use 1–3 caches.
	if got := stats.NewCDFInts(caches).At(3); got < 0.50 || got > 0.70 {
		t.Errorf("P(caches ≤ 3) = %.3f, want ≈0.60", got)
	}
	// Fig. 6: <10% single/single, ≈65% multi/multi.
	if frac := float64(single) / _bigN; frac > 0.10 {
		t.Errorf("single/single = %.3f, want < 0.10", frac)
	}
	if frac := float64(multi) / _bigN; frac < 0.55 || frac > 0.75 {
		t.Errorf("multi/multi = %.3f, want ≈0.65", frac)
	}
}

func TestISPsSmallerThanEnterprises(t *testing.T) {
	ent := generate(t, Enterprises)
	isp := generate(t, ISPs)
	meanCaches := func(d Dataset) float64 {
		sum := 0
		for _, s := range d.Specs {
			sum += s.Caches
		}
		return float64(sum) / float64(len(d.Specs))
	}
	meanEgress := func(d Dataset) float64 {
		sum := 0
		for _, s := range d.Specs {
			sum += s.Egress
		}
		return float64(sum) / float64(len(d.Specs))
	}
	if meanCaches(isp) >= meanCaches(ent) {
		t.Errorf("ISP mean caches %.2f not below enterprise %.2f", meanCaches(isp), meanCaches(ent))
	}
	if meanEgress(isp) >= meanEgress(ent) {
		t.Errorf("ISP mean egress %.2f not below enterprise %.2f", meanEgress(isp), meanEgress(ent))
	}
}

func TestSelectorMix(t *testing.T) {
	d := generate(t, ISPs)
	unpredictable := 0
	for _, s := range d.Specs {
		if s.Selector == SelRandom {
			unpredictable++
		}
	}
	// §IV-A: more than 80% support unpredictable cache selection.
	if frac := float64(unpredictable) / _bigN; frac < 0.78 || frac > 0.87 {
		t.Errorf("unpredictable share = %.3f, want ≈0.82", frac)
	}
}

func TestOperatorSharesMatchFig2(t *testing.T) {
	cases := []struct {
		kind  Kind
		table []OperatorShare
	}{
		{OpenResolvers, OpenResolverOperators},
		{Enterprises, EnterpriseOperators},
		{ISPs, ISPOperators},
	}
	for _, tc := range cases {
		d := generate(t, tc.kind)
		shares := d.OperatorShares()
		for _, op := range tc.table {
			want := op.Share / 100
			got := shares[op.Name]
			tolerance := 0.03
			if want > 0.2 {
				tolerance = 0.05
			}
			if got < want-tolerance || got > want+tolerance {
				t.Errorf("%s / %s: share %.3f, want ≈%.3f", tc.kind, op.Name, got, want)
			}
		}
	}
}

func TestLossForCountry(t *testing.T) {
	if LossForCountry("IR") != 0.11 {
		t.Error("Iran loss")
	}
	if LossForCountry("CN") != 0.04 {
		t.Error("China loss")
	}
	if LossForCountry("US") != 0.01 {
		t.Error("typical loss")
	}
}

func TestCountryConsistentWithOperator(t *testing.T) {
	d := generate(t, Enterprises)
	for _, s := range d.Specs {
		if s.Operator == "Dadeh Gostar Asr Novin P.J.S. Co." && s.Country != "IR" {
			t.Fatalf("Iranian operator in %s", s.Country)
		}
		if s.Operator == "Yandex LLC" && s.Country != "RU" {
			t.Fatalf("Yandex in %s", s.Country)
		}
	}
}

func TestSMTPPolicyFractions(t *testing.T) {
	d := generate(t, Enterprises)
	counts := map[string]int{}
	for _, s := range d.Specs {
		p := s.SMTPPolicy
		if p.SPFTXT {
			counts["spf-txt"]++
		}
		if p.SPFQtype {
			counts["spf-qtype"]++
		}
		if p.DKIM {
			counts["dkim"]++
		}
		if p.ADSP {
			counts["adsp"]++
		}
		if p.DMARC {
			counts["dmarc"]++
		}
		if p.MXBounce {
			counts["mx-bounce"]++
		}
	}
	wants := map[string]float64{
		"spf-txt": 0.696, "spf-qtype": 0.142, "dkim": 0.003,
		"adsp": 0.02, "dmarc": 0.353, "mx-bounce": 0.304,
	}
	for key, want := range wants {
		got := float64(counts[key]) / _bigN
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%s: %.4f, want ≈%.3f", key, got, want)
		}
	}
}

func TestMakeSelectorAndPolicy(t *testing.T) {
	for _, kind := range []SelectorKind{SelRandom, SelRoundRobin, SelHashQName, SelHashSource} {
		spec := NetworkSpec{Selector: kind}
		if spec.MakeSelector(1) == nil {
			t.Errorf("%s: nil selector", kind)
		}
	}
	spec := NetworkSpec{MinTTL: 30, MaxTTL: 60}
	p := spec.CachePolicy()
	if p.MinTTL != 30 || p.MaxTTL != 60 {
		t.Errorf("policy = %+v", p)
	}
}

func TestGenerateUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Generate(Kind("bogus"), 1, rand.New(rand.NewSource(1)))
}
