// Package population synthesises the three network datasets of the
// paper's §III data collection: networks operating open resolvers
// (Alexa top-10K derived, 1739 IPs in 63 countries), enterprise networks
// probed via their email servers (Alexa top-1K enterprises), and ISP
// networks probed via an ad network (>12K web clients).
//
// The live Internet is not available offline, so each dataset's *ground
// truth* (operator, country, packet loss, ingress/egress/cache topology,
// cache-selection strategy) is drawn from parametric distributions fitted
// to the aggregates the paper reports: the operator shares of Fig. 2, the
// egress-IP CDFs of Fig. 3, the cache-count CDFs of Fig. 4, the IP-vs-
// cache masses of Figs. 5–8 and the §IV-A note that >80% of networks use
// unpredictable cache selection. The experiment drivers then *measure*
// these populations with CDE and compare measured against both ground
// truth and the paper's aggregates.
package population

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dnscde/internal/dnscache"
	"dnscde/internal/loadbal"
	"dnscde/internal/smtpsim"
)

// Kind identifies a dataset.
type Kind string

// Dataset kinds, matching the paper's three collection channels.
const (
	OpenResolvers Kind = "open-resolvers"
	Enterprises   Kind = "enterprises"
	ISPs          Kind = "isps"
)

// OperatorShare is one row of Fig. 2.
type OperatorShare struct {
	Name  string
	Share float64 // percent of the dataset
}

// Fig. 2 operator tables (percentages as published).
var (
	OpenResolverOperators = []OperatorShare{
		{"Aruba S.p.A.", 9.597},
		{"Google Inc.", 6.59},
		{"Korea Telecom", 4.095},
		{"INTERNET CZ, a.s.", 3.199},
		{"tw telecom holdings, inc.", 3.135},
		{"LG DACOM Corporation", 2.687},
		{"Data Communication Business Group", 2.175},
		{"Getty Images", 1.727},
		{"CNCGROUP IP network China169 Beijing", 1.536},
		{"Level 3 Communications, Inc.", 1.536},
		{"OTHER", 63.72},
	}
	EnterpriseOperators = []OperatorShare{
		{"Google Inc.", 24.211},
		{"Yandex LLC", 10.526},
		{"Amazon.com, Inc.", 4.2105},
		{"Hangzhou Alibaba Advertising Co.,Ltd.", 4.2105},
		{"Internet Initiative Japan Inc.", 4.2105},
		{"Websense Hosted Security Network", 4.2105},
		{"SAKURA Internet Inc.", 3.1579},
		{"ADVANCEDHOSTERS LIMITED", 2.1053},
		{"Dadeh Gostar Asr Novin P.J.S. Co.", 2.1053},
		{"Limited liability company Mail.Ru", 2.1053},
		{"OTHER", 38.947},
	}
	ISPOperators = []OperatorShare{
		{"Comcast Cable Communications, Inc.", 15.02},
		{"Time Warner Cable Internet LLC", 6.103},
		{"Orange S.A.", 5.634},
		{"Google Inc.", 4.695},
		{"BT Public Internet Service", 4.225},
		{"MCI Communications Services, Inc. Verizon", 3.286},
		{"AT&T Services, Inc.", 2.817},
		{"OVH SAS", 2.817},
		{"Free SAS", 2.347},
		{"Qwest Communications Company, LLC", 2.347},
		{"OTHER", 50.7},
	}
)

// operatorCountry maps operators to countries with distinctive packet
// loss in the paper's measurements (§V: Iran 11%, China ~4%, typical 1%).
var operatorCountry = map[string]string{
	"CNCGROUP IP network China169 Beijing":  "CN",
	"Hangzhou Alibaba Advertising Co.,Ltd.": "CN",
	"Dadeh Gostar Asr Novin P.J.S. Co.":     "IR",
	"Korea Telecom":                         "KR",
	"LG DACOM Corporation":                  "KR",
	"Yandex LLC":                            "RU",
	"Limited liability company Mail.Ru":     "RU",
	"Orange S.A.":                           "FR",
	"Free SAS":                              "FR",
	"OVH SAS":                               "FR",
	"BT Public Internet Service":            "GB",
	"Internet Initiative Japan Inc.":        "JP",
	"SAKURA Internet Inc.":                  "JP",
	"Aruba S.p.A.":                          "IT",
	"INTERNET CZ, a.s.":                     "CZ",
}

// LossForCountry returns the per-packet loss probability the paper
// measured for the country.
func LossForCountry(country string) float64 {
	switch country {
	case "IR":
		return 0.11
	case "CN":
		return 0.04
	default:
		return 0.01
	}
}

// SelectorKind names a cache-selection strategy in a NetworkSpec.
type SelectorKind string

// Selector kinds.
const (
	SelRandom     SelectorKind = "random"
	SelRoundRobin SelectorKind = "round-robin"
	SelHashQName  SelectorKind = "hash-qname"
	SelHashSource SelectorKind = "hash-source-ip"
)

// NetworkSpec is the ground truth of one synthetic network.
type NetworkSpec struct {
	Name     string
	Kind     Kind
	Operator string
	Country  string
	// Loss is the per-packet loss probability of the network's links.
	Loss float64
	// Latency is the one-way base delay of the network's links.
	Latency time.Duration
	// Jitter is the per-direction uniform jitter bound.
	Jitter time.Duration

	Ingress, Egress, Caches int
	Selector                SelectorKind
	// MinTTL/MaxTTL are optional cache clamps (the paper's §II-C
	// footnote); zero means unset.
	MinTTL, MaxTTL time.Duration
	// EDNS reports whether the platform attaches EDNS0 to upstream
	// queries; §II-C motivates measuring its adoption. The sampled
	// adoption rate is EDNSAdoptionRate.
	EDNS bool

	// SMTPPolicy is set for enterprise networks (Table I channel).
	SMTPPolicy smtpsim.CheckPolicy
}

// SingleSingle reports whether the network uses one ingress IP and one
// cache — the Fig. 6 category dominating open resolvers.
func (s NetworkSpec) SingleSingle() bool { return s.Ingress == 1 && s.Caches == 1 }

// MultiMulti reports whether the network uses multiple ingress IPs and
// multiple caches.
func (s NetworkSpec) MultiMulti() bool { return s.Ingress > 1 && s.Caches > 1 }

// MakeSelector instantiates the spec's load-balancing strategy.
func (s NetworkSpec) MakeSelector(seed int64) loadbal.Selector {
	switch s.Selector {
	case SelRoundRobin:
		return loadbal.NewRoundRobin()
	case SelHashQName:
		return loadbal.HashQName{}
	case SelHashSource:
		return loadbal.HashSourceIP{}
	default:
		return loadbal.NewRandom(seed)
	}
}

// CachePolicy builds the spec's cache policy.
func (s NetworkSpec) CachePolicy() dnscache.Policy {
	return dnscache.Policy{MinTTL: s.MinTTL, MaxTTL: s.MaxTTL}
}

// Dataset is a generated population.
type Dataset struct {
	Kind  Kind
	Specs []NetworkSpec
}

// Generate builds a dataset of the given kind with count networks, using
// rng for every random choice (deterministic per seed).
func Generate(kind Kind, count int, rng *rand.Rand) Dataset {
	specs := make([]NetworkSpec, 0, count)
	for i := 0; i < count; i++ {
		var spec NetworkSpec
		switch kind {
		case OpenResolvers:
			spec = openResolverSpec(rng)
		case Enterprises:
			spec = enterpriseSpec(rng)
		case ISPs:
			spec = ispSpec(rng)
		default:
			panic(fmt.Sprintf("population: unknown kind %q", kind))
		}
		spec.Kind = kind
		spec.Name = fmt.Sprintf("%s-%d", kind, i)
		specs = append(specs, spec)
	}
	return Dataset{Kind: kind, Specs: specs}
}

// pickOperator samples an operator from a Fig. 2 table; OTHER is expanded
// to a synthetic long-tail name.
func pickOperator(rng *rand.Rand, table []OperatorShare) string {
	total := 0.0
	for _, op := range table {
		total += op.Share
	}
	x := rng.Float64() * total
	for _, op := range table {
		x -= op.Share
		if x < 0 {
			if op.Name == "OTHER" {
				return fmt.Sprintf("AS%d Networks", 1000+rng.Intn(64000))
			}
			return op.Name
		}
	}
	return table[len(table)-1].Name
}

// pickCountry assigns a country consistent with the operator; unknown
// operators get a generic distribution with the paper's loss outliers.
func pickCountry(rng *rand.Rand, operator string) string {
	if c, ok := operatorCountry[operator]; ok {
		return c
	}
	x := rng.Float64()
	switch {
	case x < 0.35:
		return "US"
	case x < 0.50:
		return "DE"
	case x < 0.60:
		return "GB"
	case x < 0.70:
		return "FR"
	case x < 0.78:
		return "JP"
	case x < 0.86:
		return "BR"
	case x < 0.92:
		return "KR"
	case x < 0.96:
		return "CN"
	case x < 0.98:
		return "IR"
	default:
		return "AU"
	}
}

// pickSelector implements §IV-A's ">80% unpredictable" observation.
func pickSelector(rng *rand.Rand) SelectorKind {
	x := rng.Float64()
	switch {
	case x < 0.82:
		return SelRandom
	case x < 0.92:
		return SelRoundRobin
	case x < 0.96:
		return SelHashQName
	default:
		return SelHashSource
	}
}

// EDNSAdoptionRate is the ground-truth fraction of platforms advertising
// EDNS0, in line with mid-2010s resolver measurements.
const EDNSAdoptionRate = 0.75

// maybeTTLClamps gives ~10% of networks a min-TTL and ~10% a max-TTL
// clamp (§II-C footnote), and samples EDNS adoption.
func maybeTTLClamps(rng *rand.Rand, spec *NetworkSpec) {
	if rng.Float64() < 0.10 {
		spec.MinTTL = time.Duration(30+rng.Intn(270)) * time.Second
	}
	if rng.Float64() < 0.10 {
		spec.MaxTTL = time.Duration(3600+rng.Intn(82800)) * time.Second
	}
	spec.EDNS = rng.Float64() < EDNSAdoptionRate
}

// baseLink samples latency/jitter and derives loss from the country.
func baseLink(rng *rand.Rand, spec *NetworkSpec) {
	spec.Loss = LossForCountry(spec.Country)
	spec.Latency = time.Duration(2+rng.Intn(30)) * time.Millisecond
	spec.Jitter = time.Duration(rng.Intn(3)) * time.Millisecond
}

// logNormalInt samples round(exp(N(ln(median), sigma))) clamped to
// [lo, hi].
func logNormalInt(rng *rand.Rand, median float64, sigma float64, lo, hi int) int {
	v := int(math.Round(math.Exp(math.Log(median) + sigma*rng.NormFloat64())))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// openResolverSpec: Fig. 5/6 — ~70% single IP + single cache, 85% with
// ≤5 egress IPs, 70% with 1–2 caches, and a tiny tail of huge public
// platforms (>500 IPs, >30 caches).
func openResolverSpec(rng *rand.Rand) NetworkSpec {
	spec := NetworkSpec{}
	spec.Operator = pickOperator(rng, OpenResolverOperators)
	spec.Country = pickCountry(rng, spec.Operator)
	baseLink(rng, &spec)
	spec.Selector = pickSelector(rng)
	maybeTTLClamps(rng, &spec)

	x := rng.Float64()
	switch {
	case x < 0.70: // single address, single cache
		spec.Ingress, spec.Egress, spec.Caches = 1, 1, 1
	case x < 0.85: // small
		spec.Ingress = 1 + rng.Intn(3)
		spec.Egress = 1 + rng.Intn(4)
		spec.Caches = 2 + rng.Intn(3)
	case x < 0.95: // medium
		spec.Ingress = 2 + rng.Intn(9)
		spec.Egress = 2 + rng.Intn(7)
		spec.Caches = 2 + rng.Intn(5)
	case x < 0.99: // large
		spec.Ingress = 10 + rng.Intn(90)
		spec.Egress = 5 + rng.Intn(25)
		spec.Caches = 5 + rng.Intn(11)
	default: // huge public platform
		spec.Ingress = 500 + rng.Intn(400)
		spec.Egress = 30 + rng.Intn(170)
		spec.Caches = 31 + rng.Intn(30)
	}
	return spec
}

// enterpriseSpec: Fig. 3/4/7 — 50% with more than 20 egress IPs, 65%
// with 1–4 caches, <5% single/single, >80% multi/multi.
func enterpriseSpec(rng *rand.Rand) NetworkSpec {
	spec := NetworkSpec{}
	spec.Operator = pickOperator(rng, EnterpriseOperators)
	spec.Country = pickCountry(rng, spec.Operator)
	baseLink(rng, &spec)
	spec.Selector = pickSelector(rng)
	maybeTTLClamps(rng, &spec)
	spec.SMTPPolicy = SampleCheckPolicy(rng)

	if rng.Float64() < 0.04 { // rare single/single
		spec.Ingress, spec.Egress, spec.Caches = 1, 1, 1
		return spec
	}
	spec.Ingress = 2 + rng.Intn(29)
	spec.Egress = logNormalInt(rng, 20, 0.8, 2, 120)
	x := rng.Float64()
	switch {
	case x < 0.13:
		spec.Caches = 1
	case x < 0.34:
		spec.Caches = 2
	case x < 0.52:
		spec.Caches = 3
	case x < 0.67:
		spec.Caches = 4
	case x < 0.87:
		spec.Caches = 5 + rng.Intn(4)
	case x < 0.97:
		spec.Caches = 9 + rng.Intn(12)
	default:
		spec.Caches = 21 + rng.Intn(15)
	}
	return spec
}

// ispSpec: Fig. 3/4/8 — 50% with more than 11 egress IPs, ~60% with 1–3
// caches, <10% single/single, ~65% multi/multi; smaller than enterprises
// on both axes.
func ispSpec(rng *rand.Rand) NetworkSpec {
	spec := NetworkSpec{}
	spec.Operator = pickOperator(rng, ISPOperators)
	spec.Country = pickCountry(rng, spec.Operator)
	baseLink(rng, &spec)
	spec.Selector = pickSelector(rng)
	maybeTTLClamps(rng, &spec)

	x := rng.Float64()
	switch {
	case x < 0.08: // single/single
		spec.Ingress, spec.Egress, spec.Caches = 1, 1, 1
	case x < 0.20: // multiple IPs, one cache
		spec.Ingress = 2 + rng.Intn(8)
		spec.Egress = logNormalInt(rng, 8, 0.6, 1, 40)
		spec.Caches = 1
	case x < 0.35: // one ingress IP, multiple caches
		spec.Ingress = 1
		spec.Egress = logNormalInt(rng, 11, 0.6, 1, 50)
		spec.Caches = 2 + sampleISPCacheExtra(rng)
	default: // multi/multi
		spec.Ingress = 2 + rng.Intn(12)
		spec.Egress = logNormalInt(rng, 13, 0.7, 2, 60)
		spec.Caches = 2 + sampleISPCacheExtra(rng)
	}
	return spec
}

// sampleISPCacheExtra returns caches-2 for multi-cache ISP networks: half
// stay at 2–3 so that the overall ≤3 share lands near 60%.
func sampleISPCacheExtra(rng *rand.Rand) int {
	x := rng.Float64()
	switch {
	case x < 0.30:
		return 0 // 2 caches
	case x < 0.55:
		return 1 // 3 caches
	case x < 0.85:
		return 2 + rng.Intn(3) // 4-6
	default:
		return 5 + rng.Intn(7) // 7-13
	}
}

// SampleCheckPolicy draws an SMTP check policy with the Table I marginal
// fractions.
func SampleCheckPolicy(rng *rand.Rand) smtpsim.CheckPolicy {
	f := smtpsim.DefaultTableIFractions
	return smtpsim.CheckPolicy{
		SPFTXT:   rng.Float64() < f["spf-txt"],
		SPFQtype: rng.Float64() < f["spf-qtype"],
		DKIM:     rng.Float64() < f["dkim"],
		ADSP:     rng.Float64() < f["adsp"],
		DMARC:    rng.Float64() < f["dmarc"],
		MXBounce: rng.Float64() < f["mx-bounce"],
	}
}

// OperatorShares tallies the operator distribution of a dataset,
// collapsing synthetic long-tail names into OTHER — the measurement that
// regenerates Fig. 2.
func (d Dataset) OperatorShares() map[string]float64 {
	known := make(map[string]bool)
	var table []OperatorShare
	switch d.Kind {
	case OpenResolvers:
		table = OpenResolverOperators
	case Enterprises:
		table = EnterpriseOperators
	default:
		table = ISPOperators
	}
	for _, op := range table {
		known[op.Name] = true
	}
	counts := make(map[string]int)
	for _, spec := range d.Specs {
		name := spec.Operator
		if !known[name] {
			name = "OTHER"
		}
		counts[name]++
	}
	shares := make(map[string]float64, len(counts))
	for name, c := range counts {
		shares[name] = float64(c) / float64(len(d.Specs))
	}
	return shares
}
