package zone

import (
	"errors"
	"net/netip"
	"testing"

	"dnscde/internal/dnswire"
)

var (
	nsAddr  = netip.MustParseAddr("198.51.100.1")
	nsAddr2 = netip.MustParseAddr("198.51.100.2")
	target  = netip.MustParseAddr("192.0.2.80")
)

// testZone builds the paper's cache.example zone with a delegation.
func testZone(t *testing.T) *Zone {
	t.Helper()
	z := New("cache.example")
	if err := Apex(z, "ns.cache.example.", nsAddr, 3600); err != nil {
		t.Fatal(err)
	}
	z.MustAdd(dnswire.RR{Name: "name.cache.example.", Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.ARecord{Addr: target}})
	z.MustAdd(dnswire.RR{Name: "alias.cache.example.", Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.CNAMERecord{Target: "name.cache.example."}})
	z.MustAdd(dnswire.RR{Name: "sub.cache.example.", Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.NSRecord{Host: "ns.sub.cache.example."}})
	z.MustAdd(dnswire.RR{Name: "ns.sub.cache.example.", Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.ARecord{Addr: nsAddr2}})
	z.MustAdd(dnswire.RR{Name: "*.wild.cache.example.", Class: dnswire.ClassIN, TTL: 60,
		Data: dnswire.TXTRecord{Strings: []string{"wildcard"}}})
	z.MustAdd(dnswire.RR{Name: "mail.cache.example.", Class: dnswire.ClassIN, TTL: 600,
		Data: dnswire.MXRecord{Preference: 10, Host: "mx.cache.example."}})
	return z
}

func TestLookupAnswer(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("name.cache.example.", dnswire.TypeA)
	if res.Kind != Answer {
		t.Fatalf("kind = %v, want ANSWER", res.Kind)
	}
	if len(res.Records) != 1 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if a, ok := res.Records[0].Data.(dnswire.ARecord); !ok || a.Addr != target {
		t.Errorf("record = %v", res.Records[0])
	}
}

func TestLookupIsCaseInsensitive(t *testing.T) {
	z := testZone(t)
	if res := z.Lookup("NAME.Cache.Example", dnswire.TypeA); res.Kind != Answer {
		t.Errorf("kind = %v, want ANSWER", res.Kind)
	}
}

func TestLookupCNAME(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("alias.cache.example.", dnswire.TypeA)
	if res.Kind != CNAMEAnswer {
		t.Fatalf("kind = %v, want CNAME", res.Kind)
	}
	if res.Target != "name.cache.example." {
		t.Errorf("target = %q", res.Target)
	}
	// Asking for the CNAME itself returns it as a plain answer.
	if res := z.Lookup("alias.cache.example.", dnswire.TypeCNAME); res.Kind != Answer {
		t.Errorf("CNAME qtype: kind = %v, want ANSWER", res.Kind)
	}
}

func TestLookupDelegation(t *testing.T) {
	z := testZone(t)
	for _, name := range []string{
		"sub.cache.example.",
		"x-1.sub.cache.example.",
		"deep.deeper.sub.cache.example.",
		"ns.sub.cache.example.", // glue is below the cut
	} {
		res := z.Lookup(name, dnswire.TypeA)
		if res.Kind != Delegation {
			t.Errorf("Lookup(%q) kind = %v, want DELEGATION", name, res.Kind)
			continue
		}
		if len(res.Records) != 1 || res.Records[0].Type() != dnswire.TypeNS {
			t.Errorf("Lookup(%q) records = %v", name, res.Records)
		}
		if len(res.Glue) != 1 {
			t.Errorf("Lookup(%q) glue = %v, want the ns.sub A record", name, res.Glue)
		}
	}
}

func TestLookupNXDomain(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("missing.cache.example.", dnswire.TypeA)
	if res.Kind != NXDomain {
		t.Fatalf("kind = %v, want NXDOMAIN", res.Kind)
	}
	if len(res.Authority) != 1 || res.Authority[0].Type() != dnswire.TypeSOA {
		t.Errorf("authority = %v, want SOA", res.Authority)
	}
}

func TestLookupNoData(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("name.cache.example.", dnswire.TypeTXT)
	if res.Kind != NoData {
		t.Fatalf("kind = %v, want NODATA", res.Kind)
	}
	if len(res.Authority) != 1 {
		t.Errorf("authority = %v, want SOA for negative caching", res.Authority)
	}
}

func TestLookupEmptyNonTerminal(t *testing.T) {
	z := testZone(t)
	// "wild.cache.example." does not exist itself but "*.wild..." is below.
	res := z.Lookup("wild.cache.example.", dnswire.TypeA)
	if res.Kind != NoData {
		t.Errorf("empty non-terminal kind = %v, want NODATA", res.Kind)
	}
}

func TestLookupWildcard(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("anything.wild.cache.example.", dnswire.TypeTXT)
	if res.Kind != Answer {
		t.Fatalf("kind = %v, want ANSWER via wildcard", res.Kind)
	}
	if res.Records[0].Name != "anything.wild.cache.example." {
		t.Errorf("owner = %q, want the queried name", res.Records[0].Name)
	}
}

func TestLookupOutOfZone(t *testing.T) {
	z := testZone(t)
	if res := z.Lookup("www.other.example.", dnswire.TypeA); res.Kind != OutOfZone {
		t.Errorf("kind = %v, want OUTOFZONE", res.Kind)
	}
}

func TestLookupANY(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("cache.example.", dnswire.TypeANY)
	if res.Kind != Answer {
		t.Fatalf("kind = %v", res.Kind)
	}
	// Apex has SOA + NS.
	if len(res.Records) < 2 {
		t.Errorf("ANY returned %d records, want >= 2", len(res.Records))
	}
}

func TestAddRejectsOutOfZone(t *testing.T) {
	z := New("cache.example")
	err := z.Add(dnswire.RR{Name: "www.other.example.", Class: dnswire.ClassIN, TTL: 1,
		Data: dnswire.ARecord{Addr: target}})
	if !errors.Is(err, ErrOutOfZone) {
		t.Errorf("err = %v, want ErrOutOfZone", err)
	}
}

func TestAddRejectsCNAMEConflict(t *testing.T) {
	z := New("cache.example")
	z.MustAdd(dnswire.RR{Name: "a.cache.example.", Class: dnswire.ClassIN, TTL: 1,
		Data: dnswire.ARecord{Addr: target}})
	err := z.Add(dnswire.RR{Name: "a.cache.example.", Class: dnswire.ClassIN, TTL: 1,
		Data: dnswire.CNAMERecord{Target: "b.cache.example."}})
	if !errors.Is(err, ErrCNAMEConflict) {
		t.Errorf("CNAME over A: err = %v, want ErrCNAMEConflict", err)
	}
	z2 := New("cache.example")
	z2.MustAdd(dnswire.RR{Name: "a.cache.example.", Class: dnswire.ClassIN, TTL: 1,
		Data: dnswire.CNAMERecord{Target: "b.cache.example."}})
	err = z2.Add(dnswire.RR{Name: "a.cache.example.", Class: dnswire.ClassIN, TTL: 1,
		Data: dnswire.ARecord{Addr: target}})
	if !errors.Is(err, ErrCNAMEConflict) {
		t.Errorf("A over CNAME: err = %v, want ErrCNAMEConflict", err)
	}
}

func TestRemove(t *testing.T) {
	z := testZone(t)
	if !z.Remove("name.cache.example.", dnswire.TypeA) {
		t.Fatal("Remove returned false")
	}
	if res := z.Lookup("name.cache.example.", dnswire.TypeA); res.Kind != NXDomain {
		t.Errorf("after remove: kind = %v, want NXDOMAIN", res.Kind)
	}
	if z.Remove("name.cache.example.", dnswire.TypeA) {
		t.Error("second Remove returned true")
	}
}

func TestValidate(t *testing.T) {
	z := testZone(t)
	if err := z.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	empty := New("cache.example")
	if err := empty.Validate(); !errors.Is(err, ErrNoSOA) {
		t.Errorf("empty zone: err = %v, want ErrNoSOA", err)
	}
}

func TestLenAndNames(t *testing.T) {
	z := New("cache.example")
	if z.Len() != 0 {
		t.Error("empty zone Len != 0")
	}
	if err := Apex(z, "ns.cache.example.", nsAddr, 3600); err != nil {
		t.Fatal(err)
	}
	if z.Len() != 3 { // SOA + NS + glue A
		t.Errorf("Len = %d, want 3", z.Len())
	}
	names := z.Names()
	if len(names) != 2 {
		t.Errorf("Names = %v", names)
	}
}

func TestBuildFlat(t *testing.T) {
	z, err := BuildFlat("cache.example", "name", target, nsAddr, 300)
	if err != nil {
		t.Fatal(err)
	}
	if err := z.Validate(); err != nil {
		t.Fatal(err)
	}
	res := z.Lookup("name.cache.example.", dnswire.TypeA)
	if res.Kind != Answer {
		t.Errorf("kind = %v", res.Kind)
	}
}

func TestBuildCNAMEChain(t *testing.T) {
	const q = 25
	z, err := BuildCNAMEChain("cache.example", q, target, nsAddr, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= q; i++ {
		res := z.Lookup(ProbeName(i, "cache.example"), dnswire.TypeA)
		if res.Kind != CNAMEAnswer {
			t.Fatalf("probe %d: kind = %v, want CNAME", i, res.Kind)
		}
		if res.Target != "name.cache.example." {
			t.Fatalf("probe %d: target = %q", i, res.Target)
		}
	}
	if _, err := BuildCNAMEChain("cache.example", 0, target, nsAddr, 300); err == nil {
		t.Error("q=0 accepted")
	}
}

func TestBuildHierarchy(t *testing.T) {
	const q = 10
	h, err := BuildHierarchy("cache.example", q, target, nsAddr, nsAddr2, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Parent must refer queries for the child's names.
	res := h.Parent.Lookup("x-3.sub.cache.example.", dnswire.TypeA)
	if res.Kind != Delegation {
		t.Fatalf("parent kind = %v, want DELEGATION", res.Kind)
	}
	if len(res.Glue) == 0 {
		t.Error("no glue in referral")
	}
	// Child must answer them.
	res = h.Child.Lookup("x-3.sub.cache.example.", dnswire.TypeA)
	if res.Kind != Answer {
		t.Fatalf("child kind = %v, want ANSWER", res.Kind)
	}
	if a := res.Records[0].Data.(dnswire.ARecord); a.Addr != target {
		t.Errorf("child answer = %v", a.Addr)
	}
	if h.ChildOrigin != "sub.cache.example." {
		t.Errorf("ChildOrigin = %q", h.ChildOrigin)
	}
	if _, err := BuildHierarchy("cache.example", 0, target, nsAddr, nsAddr2, 300); err == nil {
		t.Error("q=0 accepted")
	}
}

func TestProbeName(t *testing.T) {
	if got := ProbeName(7, "cache.example"); got != "x-7.cache.example." {
		t.Errorf("ProbeName = %q", got)
	}
}

func BenchmarkLookupExact(b *testing.B) {
	z, err := BuildCNAMEChain("cache.example", 100, target, nsAddr, 300)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := z.Lookup(ProbeName(1+i%100, "cache.example"), dnswire.TypeA)
		if res.Kind != CNAMEAnswer {
			b.Fatal(res.Kind)
		}
	}
}

func BenchmarkLookupDelegation(b *testing.B) {
	h, err := BuildHierarchy("cache.example", 10, target, nsAddr, nsAddr2, 300)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := h.Parent.Lookup("x-1.sub.cache.example.", dnswire.TypeA)
		if res.Kind != Delegation {
			b.Fatal(res.Kind)
		}
	}
}

func BenchmarkParseZone(b *testing.B) {
	h, err := BuildHierarchy("cache.example", 50, target, nsAddr, nsAddr2, 300)
	if err != nil {
		b.Fatal(err)
	}
	text := h.Child.Format()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(text, ""); err != nil {
			b.Fatal(err)
		}
	}
}
