package zone

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dnscde/internal/dnswire"
)

// WriteTo serialises the zone as an RFC 1035 master file that Parse
// accepts back (a round-trippable format). Records are grouped by owner
// in DNS order (apex first), SOA leading. It is used by cdeserver -dump
// so operators can install generated CDE zones on their existing DNS
// infrastructure.
func (z *Zone) WriteTo(w io.Writer) (int64, error) {
	var total int64
	write := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := write("$ORIGIN %s\n", z.origin); err != nil {
		return total, err
	}

	names := z.Names()
	// Apex first, then remaining names sorted.
	sort.SliceStable(names, func(i, j int) bool {
		if names[i] == z.origin {
			return names[j] != z.origin
		}
		if names[j] == z.origin {
			return false
		}
		return names[i] < names[j]
	})

	z.mu.RLock()
	defer z.mu.RUnlock()
	for _, name := range names {
		sets := z.names[name]
		for _, t := range sortedTypes(sets) {
			for _, rr := range sets[t] {
				if err := write("%s\t%d\t%s\t%s\t%s\n",
					relativeName(name, z.origin), rr.TTL, rr.Class, t, presentRData(rr.Data)); err != nil {
					return total, err
				}
			}
		}
	}
	return total, nil
}

// Format returns the zone's master-file text.
func (z *Zone) Format() string {
	var sb strings.Builder
	_, _ = z.WriteTo(&sb)
	return sb.String()
}

// sortedTypes orders rrset types SOA-first, then numerically.
func sortedTypes(sets map[dnswire.Type][]dnswire.RR) []dnswire.Type {
	out := make([]dnswire.Type, 0, len(sets))
	for t := range sets {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i] == dnswire.TypeSOA {
			return out[j] != dnswire.TypeSOA
		}
		if out[j] == dnswire.TypeSOA {
			return false
		}
		return out[i] < out[j]
	})
	return out
}

// relativeName shortens name against origin; the apex renders as '@'.
func relativeName(name, origin string) string {
	if name == origin {
		return "@"
	}
	return strings.TrimSuffix(strings.TrimSuffix(name, origin), ".")
}

// presentRData renders a payload in a Parse-compatible form; TXT/SPF
// strings come pre-quoted from their String methods.
func presentRData(data dnswire.RData) string {
	return data.String()
}
