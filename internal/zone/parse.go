package zone

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"dnscde/internal/dnswire"
)

// Parse errors.
var (
	ErrParse        = errors.New("zone: parse error")
	ErrNoOrigin     = errors.New("zone: no origin ($ORIGIN missing and none supplied)")
	ErrUnknownType  = errors.New("zone: unknown record type")
	ErrBadDirective = errors.New("zone: bad directive")
)

// defaultTTL applies when neither a $TTL directive nor a per-record TTL is
// given (RFC 1035 predates $TTL; we follow BIND's historical 1h default).
const defaultTTL = 3600

// Parse reads an RFC 1035 master file and returns the zone it defines.
// origin may be empty when the file carries its own $ORIGIN directive.
//
// Supported: $ORIGIN and $TTL directives, ';' comments, parenthesised
// multi-line records (SOA), quoted character-strings (TXT/SPF), '@' owner,
// blank-owner continuation, relative names, optional TTL and class in
// either order, and the record types of package dnswire.
func Parse(r io.Reader, origin string) (*Zone, error) {
	p := &parser{
		origin: strings.TrimSpace(origin),
		ttl:    defaultTTL,
	}
	if p.origin != "" {
		p.origin = dnswire.CanonicalName(p.origin)
	}

	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	var pending strings.Builder
	depth := 0
	for scanner.Scan() {
		lineNo++
		line := stripComment(scanner.Text())
		depth += strings.Count(line, "(") - strings.Count(line, ")")
		if depth < 0 {
			return nil, fmt.Errorf("%w: line %d: unbalanced ')'", ErrParse, lineNo)
		}
		pending.WriteString(line)
		if depth > 0 {
			pending.WriteString(" ")
			continue
		}
		full := pending.String()
		pending.Reset()
		if err := p.line(full); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrParse, err)
	}
	if depth != 0 {
		return nil, fmt.Errorf("%w: unbalanced '(' at end of file", ErrParse)
	}
	if p.zone == nil {
		if p.origin == "" {
			return nil, ErrNoOrigin
		}
		p.zone = New(p.origin)
	}
	return p.zone, nil
}

// ParseString is Parse over a string.
func ParseString(text, origin string) (*Zone, error) {
	return Parse(strings.NewReader(text), origin)
}

type parser struct {
	origin    string
	ttl       uint32
	lastOwner string
	zone      *Zone
}

// stripComment removes a ';' comment, honouring quoted strings.
func stripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case ';':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

// tokenize splits a record line into fields, keeping quoted strings as
// single tokens (with quotes removed) and dropping parentheses.
func tokenize(line string) ([]string, bool, error) {
	var tokens []string
	var cur strings.Builder
	inQuote := false
	quoted := make(map[int]bool)
	flush := func(wasQuoted bool) {
		if cur.Len() > 0 || wasQuoted {
			if wasQuoted {
				quoted[len(tokens)] = true
			}
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			if inQuote {
				inQuote = false
				flush(true)
			} else {
				inQuote = true
			}
		case inQuote:
			cur.WriteByte(c)
		case c == ' ' || c == '\t':
			flush(false)
		case c == '(' || c == ')':
			flush(false)
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, false, fmt.Errorf("%w: unterminated quoted string", ErrParse)
	}
	flush(false)
	// A line whose first token was quoted is nonsense for DNS; report
	// whether the first token was an owner (unquoted) for caller logic.
	firstQuoted := quoted[0]
	return tokens, firstQuoted, nil
}

func (p *parser) line(line string) error {
	if strings.TrimSpace(line) == "" {
		return nil
	}
	// Leading whitespace means "reuse previous owner".
	ownerOmitted := line[0] == ' ' || line[0] == '\t'

	tokens, firstQuoted, err := tokenize(line)
	if err != nil {
		return err
	}
	if len(tokens) == 0 {
		return nil
	}
	if firstQuoted {
		return fmt.Errorf("%w: quoted owner name", ErrParse)
	}

	switch strings.ToUpper(tokens[0]) {
	case "$ORIGIN":
		if len(tokens) != 2 {
			return fmt.Errorf("%w: $ORIGIN wants one argument", ErrBadDirective)
		}
		p.origin = dnswire.CanonicalName(tokens[1])
		return nil
	case "$TTL":
		if len(tokens) != 2 {
			return fmt.Errorf("%w: $TTL wants one argument", ErrBadDirective)
		}
		ttl, err := parseTTL(tokens[1])
		if err != nil {
			return err
		}
		p.ttl = ttl
		return nil
	case "$INCLUDE", "$GENERATE":
		return fmt.Errorf("%w: %s not supported", ErrBadDirective, tokens[0])
	}

	if p.origin == "" {
		return ErrNoOrigin
	}
	if p.zone == nil {
		p.zone = New(p.origin)
	}

	var owner string
	rest := tokens
	if ownerOmitted {
		if p.lastOwner == "" {
			return fmt.Errorf("%w: blank owner with no previous record", ErrParse)
		}
		owner = p.lastOwner
	} else {
		owner = p.absolute(tokens[0])
		rest = tokens[1:]
	}
	p.lastOwner = owner

	ttl := p.ttl
	class := dnswire.ClassIN
	// TTL and class may appear in either order before the type.
	for len(rest) > 0 {
		up := strings.ToUpper(rest[0])
		if up == "IN" || up == "CH" {
			if up == "CH" {
				class = dnswire.ClassCH
			}
			rest = rest[1:]
			continue
		}
		if t, err := parseTTL(rest[0]); err == nil {
			ttl = t
			rest = rest[1:]
			continue
		}
		break
	}
	if len(rest) == 0 {
		return fmt.Errorf("%w: missing record type for %q", ErrParse, owner)
	}
	rtype, ok := dnswire.ParseType(strings.ToUpper(rest[0]))
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownType, rest[0])
	}
	data, err := p.rdata(rtype, rest[1:])
	if err != nil {
		return fmt.Errorf("record %q %v: %w", owner, rtype, err)
	}
	return p.zone.Add(dnswire.RR{Name: owner, Class: class, TTL: ttl, Data: data})
}

// absolute resolves a possibly-relative name against the current origin.
func (p *parser) absolute(name string) string {
	if name == "@" {
		return p.origin
	}
	if strings.HasSuffix(name, ".") {
		return dnswire.CanonicalName(name)
	}
	if p.origin == "." {
		return dnswire.CanonicalName(name)
	}
	return dnswire.CanonicalName(name + "." + p.origin)
}

func (p *parser) rdata(t dnswire.Type, args []string) (dnswire.RData, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%w: want %d rdata fields, have %d", ErrParse, n, len(args))
		}
		return nil
	}
	switch t {
	case dnswire.TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(args[0])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("%w: bad IPv4 %q", ErrParse, args[0])
		}
		return dnswire.ARecord{Addr: addr}, nil
	case dnswire.TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(args[0])
		if err != nil || !addr.Is6() || addr.Is4In6() {
			return nil, fmt.Errorf("%w: bad IPv6 %q", ErrParse, args[0])
		}
		return dnswire.AAAARecord{Addr: addr}, nil
	case dnswire.TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.NSRecord{Host: p.absolute(args[0])}, nil
	case dnswire.TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.CNAMERecord{Target: p.absolute(args[0])}, nil
	case dnswire.TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.PTRRecord{Target: p.absolute(args[0])}, nil
	case dnswire.TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(args[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("%w: bad MX preference %q", ErrParse, args[0])
		}
		return dnswire.MXRecord{Preference: uint16(pref), Host: p.absolute(args[1])}, nil
	case dnswire.TypeTXT:
		if len(args) == 0 {
			return nil, fmt.Errorf("%w: TXT wants at least one string", ErrParse)
		}
		return dnswire.TXTRecord{Strings: append([]string(nil), args...)}, nil
	case dnswire.TypeSPF:
		if len(args) == 0 {
			return nil, fmt.Errorf("%w: SPF wants at least one string", ErrParse)
		}
		return dnswire.SPFRecord{Strings: append([]string(nil), args...)}, nil
	case dnswire.TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		nums := make([]uint32, 5)
		for i, a := range args[2:] {
			v, err := parseTTL(a)
			if err != nil {
				return nil, fmt.Errorf("%w: bad SOA field %q", ErrParse, a)
			}
			nums[i] = v
		}
		return dnswire.SOARecord{
			MName: p.absolute(args[0]), RName: p.absolute(args[1]),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4],
		}, nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownType, t)
	}
}

// parseTTL parses a TTL value: plain seconds or BIND unit notation
// (e.g. 1h30m, 2d, 1w).
func parseTTL(s string) (uint32, error) {
	if s == "" {
		return 0, fmt.Errorf("%w: empty TTL", ErrParse)
	}
	if v, err := strconv.ParseUint(s, 10, 32); err == nil {
		return uint32(v), nil
	}
	total := uint64(0)
	num := uint64(0)
	haveNum := false
	for _, c := range strings.ToLower(s) {
		switch {
		case c >= '0' && c <= '9':
			num = num*10 + uint64(c-'0')
			haveNum = true
		case c == 's' || c == 'm' || c == 'h' || c == 'd' || c == 'w':
			if !haveNum {
				return 0, fmt.Errorf("%w: bad TTL %q", ErrParse, s)
			}
			mult := map[rune]uint64{'s': 1, 'm': 60, 'h': 3600, 'd': 86400, 'w': 604800}[c]
			total += num * mult
			num, haveNum = 0, false
		default:
			return 0, fmt.Errorf("%w: bad TTL %q", ErrParse, s)
		}
	}
	if haveNum {
		return 0, fmt.Errorf("%w: trailing number in TTL %q", ErrParse, s)
	}
	if total > 1<<31 {
		return 0, fmt.Errorf("%w: TTL %q overflows", ErrParse, s)
	}
	return uint32(total), nil
}
