package zone

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"dnscde/internal/dnswire"
)

func TestFormatRoundTrip(t *testing.T) {
	z := testZone(t)
	text := z.Format()
	if !strings.HasPrefix(text, "$ORIGIN cache.example.\n") {
		t.Fatalf("missing origin header:\n%s", text)
	}
	reparsed, err := ParseString(text, "")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if reparsed.Len() != z.Len() {
		t.Errorf("round trip lost records: %d vs %d\n%s", reparsed.Len(), z.Len(), text)
	}
	// Spot-check lookup equivalence on every name and a few types.
	for _, name := range z.Names() {
		for _, typ := range []dnswire.Type{dnswire.TypeA, dnswire.TypeNS, dnswire.TypeTXT, dnswire.TypeMX, dnswire.TypeSOA} {
			a := z.Lookup(name, typ)
			b := reparsed.Lookup(name, typ)
			if a.Kind != b.Kind || len(a.Records) != len(b.Records) {
				t.Errorf("%s %v: %v/%d vs %v/%d", name, typ, a.Kind, len(a.Records), b.Kind, len(b.Records))
			}
		}
	}
}

func TestFormatApexFirst(t *testing.T) {
	z := testZone(t)
	lines := strings.Split(strings.TrimSpace(z.Format()), "\n")
	if len(lines) < 3 {
		t.Fatalf("too few lines:\n%s", z.Format())
	}
	// First record line is the apex SOA.
	if !strings.HasPrefix(lines[1], "@\t") || !strings.Contains(lines[1], "\tSOA\t") {
		t.Errorf("first record = %q, want apex SOA", lines[1])
	}
}

func TestFormatHierarchyZonesRoundTrip(t *testing.T) {
	h, err := BuildHierarchy("cache.example", 5, target, nsAddr, nsAddr2, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range []*Zone{h.Parent, h.Child} {
		re, err := ParseString(z.Format(), "")
		if err != nil {
			t.Fatalf("%s: %v", z.Origin(), err)
		}
		if re.Origin() != z.Origin() || re.Len() != z.Len() {
			t.Errorf("%s: round trip mismatch", z.Origin())
		}
	}
}

func TestFormatTXTQuoting(t *testing.T) {
	z := New("cache.example")
	z.MustAdd(dnswire.RR{Name: "txt.cache.example.", Class: dnswire.ClassIN, TTL: 60,
		Data: dnswire.TXTRecord{Strings: []string{"v=spf1 -all", "second part"}}})
	re, err := ParseString(z.Format(), "")
	if err != nil {
		t.Fatal(err)
	}
	res := re.Lookup("txt.cache.example.", dnswire.TypeTXT)
	txt := res.Records[0].Data.(dnswire.TXTRecord)
	if len(txt.Strings) != 2 || txt.Strings[0] != "v=spf1 -all" {
		t.Errorf("strings = %v", txt.Strings)
	}
}

func TestRelativeName(t *testing.T) {
	if got := relativeName("cache.example.", "cache.example."); got != "@" {
		t.Errorf("apex = %q", got)
	}
	if got := relativeName("x-1.sub.cache.example.", "cache.example."); got != "x-1.sub" {
		t.Errorf("relative = %q", got)
	}
}

func TestPropertyFormatParseRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		z := New("cache.example")
		if err := Apex(z, "ns.cache.example.", nsAddr, uint32(1+rng.Intn(86400))); err != nil {
			return false
		}
		labels := []string{"a", "b", "www", "mail", "deep.sub", "x-1", "txt"}
		for i, n := 0, rng.Intn(12); i < n; i++ {
			owner := labels[rng.Intn(len(labels))] + ".cache.example."
			ttl := uint32(1 + rng.Intn(100000))
			var data dnswire.RData
			switch rng.Intn(4) {
			case 0:
				data = dnswire.ARecord{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(rng.Intn(256))})}
			case 1:
				data = dnswire.MXRecord{Preference: uint16(rng.Intn(100)), Host: "mx.cache.example."}
			case 2:
				data = dnswire.TXTRecord{Strings: []string{fmt.Sprintf("v=%d", rng.Intn(1000))}}
			default:
				data = dnswire.PTRRecord{Target: "host.cache.example."}
			}
			// CNAME conflicts are rejected by Add; ignore those errors.
			_ = z.Add(dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: ttl, Data: data})
		}
		re, err := ParseString(z.Format(), "")
		if err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, z.Format())
			return false
		}
		return re.Len() == z.Len() && re.Origin() == z.Origin()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
