package zone

import (
	"fmt"
	"net/netip"

	"dnscde/internal/dnswire"
)

// This file provides builders for the exact zone shapes the paper's CDE
// infrastructure uses (§IV-A, §IV-B2). They are used by internal/core, by
// tests and by cmd/cdeserver.

// Apex inserts the SOA and NS apex records every zone needs, with ns as
// the in-zone nameserver host owning address addr.
func Apex(z *Zone, ns string, addr netip.Addr, ttl uint32) error {
	origin := z.Origin()
	soa := dnswire.RR{Name: origin, Class: dnswire.ClassIN, TTL: ttl, Data: dnswire.SOARecord{
		MName: ns, RName: "hostmaster." + origin,
		Serial: 2017062601, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 60,
	}}
	if err := z.Add(soa); err != nil {
		return err
	}
	if err := z.Add(dnswire.RR{Name: origin, Class: dnswire.ClassIN, TTL: ttl, Data: dnswire.NSRecord{Host: ns}}); err != nil {
		return err
	}
	return z.Add(dnswire.RR{Name: ns, Class: dnswire.ClassIN, TTL: ttl, Data: dnswire.ARecord{Addr: addr}})
}

// BuildFlat creates the direct-probing zone of §IV-B1:
//
//	name.<origin> IN A <target>
//
// with the nameserver ns.<origin> at nsAddr.
func BuildFlat(origin, name string, target, nsAddr netip.Addr, ttl uint32) (*Zone, error) {
	z := New(origin)
	if err := Apex(z, "ns."+z.Origin(), nsAddr, ttl); err != nil {
		return nil, err
	}
	rr := dnswire.RR{
		Name: name + "." + z.Origin(), Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.ARecord{Addr: target},
	}
	if err := z.Add(rr); err != nil {
		return nil, err
	}
	return z, nil
}

// BuildCNAMEChain creates the §IV-B2a local-cache-bypass zone:
//
//	x-1.<origin> IN CNAME name.<origin>
//	...
//	x-q.<origin> IN CNAME name.<origin>
//	name.<origin> IN A <target>
//
// Probe names are x-1 … x-q; ProbeName returns them.
func BuildCNAMEChain(origin string, q int, target, nsAddr netip.Addr, ttl uint32) (*Zone, error) {
	if q < 1 {
		return nil, fmt.Errorf("zone: CNAME chain needs q >= 1, have %d", q)
	}
	z := New(origin)
	if err := Apex(z, "ns."+z.Origin(), nsAddr, ttl); err != nil {
		return nil, err
	}
	final := "name." + z.Origin()
	if err := z.Add(dnswire.RR{Name: final, Class: dnswire.ClassIN, TTL: ttl, Data: dnswire.ARecord{Addr: target}}); err != nil {
		return nil, err
	}
	for i := 1; i <= q; i++ {
		alias := ProbeName(i, z.Origin())
		if err := z.Add(dnswire.RR{Name: alias, Class: dnswire.ClassIN, TTL: ttl, Data: dnswire.CNAMERecord{Target: final}}); err != nil {
			return nil, err
		}
	}
	return z, nil
}

// ProbeName returns the i-th probe owner name, "x-<i>.<origin>".
func ProbeName(i int, origin string) string {
	return fmt.Sprintf("x-%d.%s", i, dnswire.CanonicalName(origin))
}

// Hierarchy is the two-zone setup of §IV-B2b: a parent that delegates
// sub.<origin> and a child holding the probe records. The count of
// delegation re-fetches observed at the parent's nameserver equals the
// cache count.
type Hierarchy struct {
	Parent *Zone
	Child  *Zone
	// ChildNS is the delegated nameserver host (ns.sub.<origin>).
	ChildNS string
	// ChildOrigin is sub.<origin>.
	ChildOrigin string
}

// BuildHierarchy creates the names-hierarchy pair of zones. parentNSAddr
// and childNSAddr are the addresses of the two authoritative servers
// (a.b.c.d in the paper); target is the address answered for the probe
// names (a.b.c.e in the paper).
func BuildHierarchy(origin string, q int, target, parentNSAddr, childNSAddr netip.Addr, ttl uint32) (*Hierarchy, error) {
	if q < 1 {
		return nil, fmt.Errorf("zone: hierarchy needs q >= 1, have %d", q)
	}
	parent := New(origin)
	if err := Apex(parent, "ns."+parent.Origin(), parentNSAddr, ttl); err != nil {
		return nil, err
	}
	childOrigin := "sub." + parent.Origin()
	childNS := "ns." + childOrigin

	// Parent side: delegation NS + glue, exactly the zone fragment in the
	// paper.
	if err := parent.Add(dnswire.RR{Name: childOrigin, Class: dnswire.ClassIN, TTL: ttl, Data: dnswire.NSRecord{Host: childNS}}); err != nil {
		return nil, err
	}
	if err := parent.Add(dnswire.RR{Name: childNS, Class: dnswire.ClassIN, TTL: ttl, Data: dnswire.ARecord{Addr: childNSAddr}}); err != nil {
		return nil, err
	}

	child := New(childOrigin)
	if err := Apex(child, childNS, childNSAddr, ttl); err != nil {
		return nil, err
	}
	for i := 1; i <= q; i++ {
		name := ProbeName(i, childOrigin)
		if err := child.Add(dnswire.RR{Name: name, Class: dnswire.ClassIN, TTL: ttl, Data: dnswire.ARecord{Addr: target}}); err != nil {
			return nil, err
		}
	}
	return &Hierarchy{Parent: parent, Child: child, ChildNS: childNS, ChildOrigin: childOrigin}, nil
}
