// Package zone implements authoritative DNS zone data: an in-memory store
// of resource records with RFC 1034 lookup semantics (exact matches, CNAME
// indirection, zone cuts / delegations, wildcards, NXDOMAIN vs NODATA) and
// an RFC 1035 master-file parser.
//
// The CDE infrastructure of the paper is built on exactly the two zone
// shapes reproduced in zonefiles.go: the flat cache.example zone with
// CNAME chains (§IV-B2a) and the delegated sub.cache.example hierarchy
// (§IV-B2b).
package zone

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dnscde/internal/dnswire"
)

// Zone errors.
var (
	ErrNoSOA         = errors.New("zone: zone has no SOA record")
	ErrOutOfZone     = errors.New("zone: record owner not within zone origin")
	ErrCNAMEConflict = errors.New("zone: CNAME cannot coexist with other data")
)

// Zone holds the records of one zone of authority. The zero value is not
// usable; use New. Zone is safe for concurrent use: lookups may race with
// record insertion (used by experiments that plant honey records live).
type Zone struct {
	origin string

	mu sync.RWMutex
	// names maps canonical owner name → rrset per type.
	names map[string]map[dnswire.Type][]dnswire.RR
}

// New creates an empty zone rooted at origin.
func New(origin string) *Zone {
	return &Zone{
		origin: dnswire.CanonicalName(origin),
		names:  make(map[string]map[dnswire.Type][]dnswire.RR),
	}
}

// Origin returns the canonical zone origin.
func (z *Zone) Origin() string { return z.origin }

// Add inserts rr into the zone. The owner must be at or below the origin.
// Adding a CNAME alongside other data (or vice versa) is rejected, per
// RFC 1034 §3.6.2.
func (z *Zone) Add(rr dnswire.RR) error {
	name := dnswire.CanonicalName(rr.Name)
	if !dnswire.IsSubdomain(name, z.origin) {
		return fmt.Errorf("%w: %q not under %q", ErrOutOfZone, name, z.origin)
	}
	if rr.Data == nil {
		return fmt.Errorf("zone: record %q has nil payload", name)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	sets := z.names[name]
	if sets == nil {
		sets = make(map[dnswire.Type][]dnswire.RR)
		z.names[name] = sets
	}
	if rr.Type() == dnswire.TypeCNAME {
		for t := range sets {
			if t != dnswire.TypeCNAME {
				return fmt.Errorf("%w: %q already has %v data", ErrCNAMEConflict, name, t)
			}
		}
	} else if _, hasCNAME := sets[dnswire.TypeCNAME]; hasCNAME {
		return fmt.Errorf("%w: %q already has a CNAME", ErrCNAMEConflict, name)
	}
	sets[rr.Type()] = append(sets[rr.Type()], rr)
	return nil
}

// MustAdd is Add for static zone construction in tests and examples; it
// panics on error.
func (z *Zone) MustAdd(rr dnswire.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// Remove deletes all records of type t at name. It reports whether any
// records were removed.
func (z *Zone) Remove(name string, t dnswire.Type) bool {
	name = dnswire.CanonicalName(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	sets, ok := z.names[name]
	if !ok {
		return false
	}
	if _, ok := sets[t]; !ok {
		return false
	}
	delete(sets, t)
	if len(sets) == 0 {
		delete(z.names, name)
	}
	return true
}

// SOA returns the zone's SOA record.
func (z *Zone) SOA() (dnswire.RR, error) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	if set, ok := z.names[z.origin]; ok {
		if soas := set[dnswire.TypeSOA]; len(soas) > 0 {
			return soas[0], nil
		}
	}
	return dnswire.RR{}, ErrNoSOA
}

// Validate checks basic zone invariants: an SOA and NS set at the apex.
func (z *Zone) Validate() error {
	if _, err := z.SOA(); err != nil {
		return err
	}
	z.mu.RLock()
	defer z.mu.RUnlock()
	if len(z.names[z.origin][dnswire.TypeNS]) == 0 {
		return fmt.Errorf("zone: no NS records at apex %q", z.origin)
	}
	return nil
}

// Len returns the total number of records in the zone.
func (z *Zone) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, sets := range z.names {
		for _, rrs := range sets {
			n += len(rrs)
		}
	}
	return n
}

// Names returns the sorted list of owner names present in the zone.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]string, 0, len(z.names))
	for name := range z.names {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ResultKind classifies the outcome of a zone lookup.
type ResultKind uint8

// Lookup outcomes.
const (
	// Answer: records of the requested type exist at the name.
	Answer ResultKind = iota + 1
	// CNAMEAnswer: the name owns a CNAME; Records holds it and Target the
	// alias target for the caller to chase.
	CNAMEAnswer
	// Delegation: the name is at or below a zone cut; Records holds the
	// NS rrset and Glue the in-zone addresses of those servers.
	Delegation
	// NoData: the name exists but has no records of the requested type.
	NoData
	// NXDomain: the name does not exist in the zone.
	NXDomain
	// OutOfZone: the name is not within this zone's origin at all.
	OutOfZone
)

// String returns a mnemonic for k.
func (k ResultKind) String() string {
	switch k {
	case Answer:
		return "ANSWER"
	case CNAMEAnswer:
		return "CNAME"
	case Delegation:
		return "DELEGATION"
	case NoData:
		return "NODATA"
	case NXDomain:
		return "NXDOMAIN"
	case OutOfZone:
		return "OUTOFZONE"
	default:
		return fmt.Sprintf("KIND%d", k)
	}
}

// Result is the outcome of a Lookup.
type Result struct {
	Kind    ResultKind
	Records []dnswire.RR
	// Glue carries A/AAAA records for delegation NS targets when present
	// in the zone.
	Glue []dnswire.RR
	// Target is the CNAME target when Kind is CNAMEAnswer.
	Target string
	// Authority carries the SOA record for negative answers.
	Authority []dnswire.RR
}

// Lookup resolves (name, qtype) against the zone following RFC 1034 §4.3.2:
// walk down from the origin; a zone cut (NS rrset at a non-apex name on the
// path) yields a referral; otherwise match the name exactly or via
// wildcard.
func (z *Zone) Lookup(name string, qtype dnswire.Type) Result {
	name = dnswire.CanonicalName(name)
	if !dnswire.IsSubdomain(name, z.origin) {
		return Result{Kind: OutOfZone}
	}
	z.mu.RLock()
	defer z.mu.RUnlock()

	// Walk ancestors from just below the origin down to the name itself,
	// looking for a zone cut. Any name at or below a cut yields a
	// referral — the parent is not authoritative past the cut.
	if cut, ok := z.findCutLocked(name); ok {
		// Referral: NS set at the cut plus glue.
		nsSet := z.names[cut][dnswire.TypeNS]
		res := Result{Kind: Delegation, Records: copyRRs(nsSet)}
		for _, ns := range nsSet {
			nsr, ok := ns.Data.(dnswire.NSRecord)
			if !ok {
				continue
			}
			host := dnswire.CanonicalName(nsr.Host)
			if set, ok := z.names[host]; ok {
				res.Glue = append(res.Glue, copyRRs(set[dnswire.TypeA])...)
				res.Glue = append(res.Glue, copyRRs(set[dnswire.TypeAAAA])...)
			}
		}
		return res
	}

	sets, exists := z.names[name]
	if !exists {
		// Try wildcard: replace the leftmost label at each ancestor level
		// (RFC 1034 §4.3.3, simplified to the closest-encloser wildcard).
		if wsets, ok := z.findWildcardLocked(name); ok {
			return z.answerFromLocked(name, wsets, qtype)
		}
		// Empty non-terminal: some existing name is below this one.
		for existing := range z.names {
			if existing != name && dnswire.IsSubdomain(existing, name) {
				return z.negativeLocked(NoData)
			}
		}
		return z.negativeLocked(NXDomain)
	}
	return z.answerFromLocked(name, sets, qtype)
}

// findCutLocked finds the highest zone cut strictly below the origin on the
// path to name. It returns the cut owner and true when a cut exists at or
// above name.
func (z *Zone) findCutLocked(name string) (string, bool) {
	labels := dnswire.SplitLabels(name)
	originLabels := dnswire.CountLabels(z.origin)
	// Ancestors from just below origin to name itself.
	for depth := originLabels + 1; depth <= len(labels); depth++ {
		ancestor := strings.Join(labels[len(labels)-depth:], ".") + "."
		if sets, ok := z.names[ancestor]; ok {
			if _, hasNS := sets[dnswire.TypeNS]; hasNS && ancestor != z.origin {
				return ancestor, true
			}
		}
	}
	return "", false
}

// findWildcardLocked looks for "*.<ancestor>" records covering name.
func (z *Zone) findWildcardLocked(name string) (map[dnswire.Type][]dnswire.RR, bool) {
	labels := dnswire.SplitLabels(name)
	for i := 1; i < len(labels); i++ {
		candidate := "*." + strings.Join(labels[i:], ".") + "."
		if !dnswire.IsSubdomain(candidate, z.origin) {
			break
		}
		if sets, ok := z.names[candidate]; ok {
			return sets, true
		}
	}
	return nil, false
}

// answerFromLocked builds the result for an existing name. Records are
// rewritten to carry the queried owner name so wildcard synthesis is
// transparent to callers.
func (z *Zone) answerFromLocked(owner string, sets map[dnswire.Type][]dnswire.RR, qtype dnswire.Type) Result {
	if cnames := sets[dnswire.TypeCNAME]; len(cnames) > 0 && qtype != dnswire.TypeCNAME && qtype != dnswire.TypeANY {
		rr := cnames[0]
		rr.Name = owner
		target := ""
		if c, ok := rr.Data.(dnswire.CNAMERecord); ok {
			target = dnswire.CanonicalName(c.Target)
		}
		return Result{Kind: CNAMEAnswer, Records: []dnswire.RR{rr}, Target: target}
	}
	var records []dnswire.RR
	if qtype == dnswire.TypeANY {
		for _, rrs := range sets {
			records = append(records, rrs...)
		}
	} else {
		records = copyRRs(sets[qtype])
	}
	if len(records) == 0 {
		return z.negativeLocked(NoData)
	}
	out := make([]dnswire.RR, len(records))
	for i, rr := range records {
		rr.Name = owner
		out[i] = rr
	}
	return Result{Kind: Answer, Records: out}
}

// negativeLocked decorates a negative result with the zone SOA for
// RFC 2308 negative caching.
func (z *Zone) negativeLocked(kind ResultKind) Result {
	res := Result{Kind: kind}
	if set, ok := z.names[z.origin]; ok {
		res.Authority = copyRRs(set[dnswire.TypeSOA])
	}
	return res
}

// copyRRs returns a defensive copy of rrs (the RR values themselves are
// treated as immutable).
func copyRRs(rrs []dnswire.RR) []dnswire.RR {
	if len(rrs) == 0 {
		return nil
	}
	out := make([]dnswire.RR, len(rrs))
	copy(out, rrs)
	return out
}
