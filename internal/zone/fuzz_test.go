package zone

import (
	"testing"
)

func FuzzZoneParse(f *testing.F) {
	// Seed with the paper's two zones plus directive/quoting corners the
	// unit tests exercise.
	f.Add(_paperParentZone, "")
	f.Add(_paperChildZone, "")
	f.Add("$ORIGIN x.example.\n@ IN SOA ns. host. 1 2 3 4 5\n@ IN NS ns.x.example.\n", "")
	f.Add("@ IN TXT \"v=spf1 a:mail.example.com -all\" \"second string\"\n", "x.example.")
	f.Add("www 300 IN A 192.0.2.1\nmail IN 600 MX 10 mx.example.\n", "example.")
	f.Add("@ IN SOA ns. host. (\n1 ; serial\n2 3 4 5 )\n", "p.example.")
	f.Add("$TTL 60\n$ORIGIN e.\nb IN CNAME a\na IN AAAA 2001:db8::1\n", "")
	f.Add("bad line without enough fields\n", "example.")
	f.Add("@ IN SPF \"v=spf1 -all\"\n@ IN PTR target.example.\n", "example.")
	f.Fuzz(func(t *testing.T, input, origin string) {
		if len(input) > 1<<16 {
			t.Skip("oversize input")
		}
		z, err := ParseString(input, origin)
		if err != nil {
			return
		}
		// A zone that parsed must render and re-parse without panicking;
		// formatting errors are fine, crashes are not.
		text := z.Format()
		if z2, err := ParseString(text, z.Origin()); err == nil && z2.Len() != z.Len() {
			t.Fatalf("format/re-parse changed record count %d -> %d\nzone:\n%s", z.Len(), z2.Len(), text)
		}
	})
}
