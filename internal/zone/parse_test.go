package zone

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"dnscde/internal/dnswire"
)

// _paperParentZone is the literal zone fragment from §IV-B2b of the paper
// (with the apex SOA/NS that any real zone needs).
const _paperParentZone = `
$ORIGIN cache.example.
$TTL 3600
@	IN	SOA	ns.cache.example. hostmaster.cache.example. (
		2017062601 ; serial
		7200       ; refresh
		3600       ; retry
		1209600    ; expire
		60 )       ; minimum
@	IN	NS	ns.cache.example.
ns	IN	A	198.51.100.1
sub.cache.example.	IN	NS	ns.sub.cache.example.
ns.sub.cache.example.	IN	A	192.0.2.4
`

const _paperChildZone = `
$ORIGIN sub.cache.example.
$TTL 300
@	IN	SOA	ns.sub.cache.example. hostmaster.sub.cache.example. 1 7200 3600 1209600 60
@	IN	NS	ns
ns	IN	A	192.0.2.4
x-1	IN	A	192.0.2.5
x-2	IN	A	192.0.2.5
x-3	IN	A	192.0.2.5
`

func TestParsePaperParentZone(t *testing.T) {
	z, err := ParseString(_paperParentZone, "")
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin() != "cache.example." {
		t.Errorf("origin = %q", z.Origin())
	}
	if err := z.Validate(); err != nil {
		t.Fatal(err)
	}
	soa, err := z.SOA()
	if err != nil {
		t.Fatal(err)
	}
	s := soa.Data.(dnswire.SOARecord)
	if s.Serial != 2017062601 || s.Minimum != 60 {
		t.Errorf("SOA = %+v", s)
	}
	res := z.Lookup("x-9.sub.cache.example.", dnswire.TypeA)
	if res.Kind != Delegation {
		t.Errorf("kind = %v, want DELEGATION", res.Kind)
	}
}

func TestParsePaperChildZone(t *testing.T) {
	z, err := ParseString(_paperChildZone, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"x-1", "x-2", "x-3"} {
		res := z.Lookup(name+".sub.cache.example.", dnswire.TypeA)
		if res.Kind != Answer {
			t.Errorf("%s: kind = %v", name, res.Kind)
		}
	}
}

func TestParseRelativeAndAbsoluteNames(t *testing.T) {
	z, err := ParseString(`
www	300	IN	A	192.0.2.1
abs.example.org.	IN	A	192.0.2.2
`, "example.org")
	if err != nil {
		t.Fatal(err)
	}
	if res := z.Lookup("www.example.org.", dnswire.TypeA); res.Kind != Answer {
		t.Errorf("relative name: %v", res.Kind)
	}
	if res := z.Lookup("abs.example.org.", dnswire.TypeA); res.Kind != Answer {
		t.Errorf("absolute name: %v", res.Kind)
	}
	if recs := z.Lookup("www.example.org.", dnswire.TypeA).Records; recs[0].TTL != 300 {
		t.Errorf("per-record TTL not honoured")
	}
}

func TestParseBlankOwnerContinuation(t *testing.T) {
	z, err := ParseString(`
host	IN	A	192.0.2.1
	IN	TXT	"second record same owner"
`, "example.org")
	if err != nil {
		t.Fatal(err)
	}
	if res := z.Lookup("host.example.org.", dnswire.TypeTXT); res.Kind != Answer {
		t.Errorf("continuation owner: %v", res.Kind)
	}
}

func TestParseQuotedTXTWithSemicolonAndSpaces(t *testing.T) {
	z, err := ParseString(`
spf	IN	TXT	"v=spf1 ip4:192.0.2.0/24 -all; note"
`, "example.org")
	if err != nil {
		t.Fatal(err)
	}
	res := z.Lookup("spf.example.org.", dnswire.TypeTXT)
	txt := res.Records[0].Data.(dnswire.TXTRecord)
	if txt.Strings[0] != "v=spf1 ip4:192.0.2.0/24 -all; note" {
		t.Errorf("TXT = %q", txt.Strings[0])
	}
}

func TestParseTTLUnits(t *testing.T) {
	tests := []struct {
		in   string
		want uint32
	}{
		{"30", 30}, {"1h", 3600}, {"1h30m", 5400}, {"2d", 172800}, {"1w", 604800},
	}
	for _, tt := range tests {
		got, err := parseTTL(tt.in)
		if err != nil {
			t.Errorf("parseTTL(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("parseTTL(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
	for _, bad := range []string{"", "h", "1x", "1h2", "99999999999"} {
		if _, err := parseTTL(bad); err == nil {
			t.Errorf("parseTTL(%q) succeeded", bad)
		}
	}
}

func TestParseDollarTTLDirective(t *testing.T) {
	z, err := ParseString(`
$TTL 120
a	IN	A	192.0.2.1
`, "example.org")
	if err != nil {
		t.Fatal(err)
	}
	if ttl := z.Lookup("a.example.org.", dnswire.TypeA).Records[0].TTL; ttl != 120 {
		t.Errorf("TTL = %d, want 120", ttl)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text string
		origin     string
		wantErr    error
	}{
		{"no origin", "a IN A 192.0.2.1", "", ErrNoOrigin},
		{"unknown type", "a IN BOGUS foo", "example.org", ErrUnknownType},
		{"bad directive", "$INCLUDE other.zone", "example.org", ErrBadDirective},
		{"unbalanced paren", "a IN SOA ns. rn. (1 2 3 4 5", "example.org", ErrParse},
		{"bad A rdata", "a IN A not-an-ip", "example.org", ErrParse},
		{"bad AAAA rdata", "a IN AAAA 192.0.2.1", "example.org", ErrParse},
		{"missing type", "a IN", "example.org", ErrParse},
		{"bad MX pref", "a IN MX ten mx.example.org.", "example.org", ErrParse},
		{"unterminated quote", `a IN TXT "oops`, "example.org", ErrParse},
		{"blank owner first", "\tIN A 192.0.2.1", "example.org", ErrParse},
		{"SOA field count", "@ IN SOA ns. rn. 1 2 3", "example.org", ErrParse},
	}
	for _, tc := range cases {
		_, err := ParseString(tc.text, tc.origin)
		if !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseEmptyZoneWithOrigin(t *testing.T) {
	z, err := ParseString("; nothing but comments\n", "example.org")
	if err != nil {
		t.Fatal(err)
	}
	if z.Len() != 0 {
		t.Errorf("Len = %d", z.Len())
	}
}

func TestParseAllSupportedTypes(t *testing.T) {
	z, err := ParseString(`
@	IN	NS	ns.example.org.
a	IN	A	192.0.2.1
aaaa	IN	AAAA	2001:db8::1
cn	IN	CNAME	a
ptr	IN	PTR	a.example.org.
mx	IN	MX	10 a
txt	IN	TXT	"hello" "world"
spf	IN	SPF	"v=spf1 -all"
`, "example.org")
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string]dnswire.Type{
		"a": dnswire.TypeA, "aaaa": dnswire.TypeAAAA,
		"ptr": dnswire.TypePTR, "mx": dnswire.TypeMX,
		"txt": dnswire.TypeTXT, "spf": dnswire.TypeSPF,
	}
	for label, typ := range wants {
		res := z.Lookup(label+".example.org.", typ)
		if res.Kind != Answer {
			t.Errorf("%s %v: kind = %v", label, typ, res.Kind)
		}
	}
	// NS at the apex is an answer, not a delegation.
	if res := z.Lookup("example.org.", dnswire.TypeNS); res.Kind != Answer {
		t.Errorf("apex NS: kind = %v", res.Kind)
	}
	if res := z.Lookup("cn.example.org.", dnswire.TypeA); res.Kind != CNAMEAnswer {
		t.Errorf("cn: kind = %v", res.Kind)
	}
	// Multi-string TXT survives.
	txt := z.Lookup("txt.example.org.", dnswire.TypeTXT).Records[0].Data.(dnswire.TXTRecord)
	if len(txt.Strings) != 2 || txt.Strings[1] != "world" {
		t.Errorf("TXT strings = %v", txt.Strings)
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	// Every record String() emitted by the sample zone must reparse to an
	// equivalent record — a weak but useful self-consistency property.
	z := testZone(t)
	for _, name := range z.Names() {
		for _, typ := range []dnswire.Type{dnswire.TypeA, dnswire.TypeNS, dnswire.TypeMX, dnswire.TypeTXT} {
			res := z.Lookup(name, typ)
			if res.Kind != Answer {
				continue
			}
			for _, rr := range res.Records {
				line := rr.String()
				z2, err := ParseString(line, "cache.example")
				if err != nil {
					t.Errorf("reparse %q: %v", line, err)
					continue
				}
				if z2.Len() != 1 {
					t.Errorf("reparse %q produced %d records", line, z2.Len())
				}
			}
		}
	}
}

func TestPropertyParseNeverPanics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1500}
	f := func(text string) bool {
		_, _ = ParseString(text, "example.org")
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestStripComment(t *testing.T) {
	tests := []struct{ in, want string }{
		{"a IN A 1.2.3.4 ; comment", "a IN A 1.2.3.4 "},
		{`txt IN TXT "keep ; this" ; drop this`, `txt IN TXT "keep ; this" `},
		{"; whole line", ""},
	}
	for _, tt := range tests {
		if got := stripComment(tt.in); got != tt.want {
			t.Errorf("stripComment(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestTokenizeQuotes(t *testing.T) {
	tokens, firstQuoted, err := tokenize(`name IN TXT "one two" three`)
	if err != nil {
		t.Fatal(err)
	}
	if firstQuoted {
		t.Error("firstQuoted = true")
	}
	want := []string{"name", "IN", "TXT", "one two", "three"}
	if strings.Join(tokens, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v", tokens)
	}
}
