package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// SinkOptions tunes the parallel JSONL sink; zero values pick defaults.
type SinkOptions struct {
	// Encoders is the number of parallel chunk-encoding workers
	// (default 4).
	Encoders int
	// ChunkRows is how many rows one chunk batches before it is handed
	// to an encoder (default 512).
	ChunkRows int
}

// defaults for SinkOptions.
const (
	defaultEncoders  = 4
	defaultChunkRows = 512
)

// chunkJob is a sealed batch of rows awaiting encoding.
type chunkJob struct {
	seq  int
	rows []any
}

// encodedChunk is one chunk's JSONL bytes, tagged with its sequence so
// the assembler can restore append order.
type encodedChunk struct {
	seq  int
	data []byte
}

// Sink streams JSONL rows to an io.Writer through a chunked parallel
// pipeline: Append batches rows into fixed-size chunks, a pool of
// encoder workers marshals whole chunks concurrently, and a single
// assembler goroutine writes the encoded chunks back in sequence order.
// The shape follows gvisor's checkpoint parallel-writer: producers and
// encoders never touch the output stream, and the assembler holds at
// most a bounded window of out-of-order chunks, so a million-row
// campaign streams through a constant-size buffer instead of
// accumulating in memory.
//
// Output order is exactly Append order. Append is safe for concurrent
// use, but concurrent appenders get an arbitrary interleaving — callers
// that need a deterministic stream (the campaign runner) serialize
// appends through an orderedEmitter.
type Sink struct {
	chunkRows int
	w         io.Writer

	mu     sync.Mutex // guards cur, seq, closed
	cur    []any
	seq    int
	closed bool

	jobs    chan chunkJob
	encoded chan encodedChunk
	encWG   sync.WaitGroup
	asmDone chan struct{}
	// inflight caps chunks dispatched but not yet written through, making
	// the assembler's out-of-order window structurally bounded instead of
	// timing-dependent: one slot is taken before a chunk enters jobs and
	// released only when the assembler has written it (in order).
	inflight chan struct{}

	// flushMu/flushCond track how many chunks the assembler has fully
	// processed, so Flush can wait for a precise drain point.
	flushMu    sync.Mutex
	flushCond  *sync.Cond
	chunksDone int

	rows       atomic.Int64
	written    atomic.Int64
	maxPending atomic.Int64

	errMu sync.Mutex
	err   error
}

// NewSink starts the pipeline over w. The caller owns w: Close flushes
// and stops the pipeline but does not close w.
func NewSink(w io.Writer, opts SinkOptions) *Sink {
	if opts.Encoders <= 0 {
		opts.Encoders = defaultEncoders
	}
	if opts.ChunkRows <= 0 {
		opts.ChunkRows = defaultChunkRows
	}
	s := &Sink{
		chunkRows: opts.ChunkRows,
		w:         w,
		jobs:      make(chan chunkJob, opts.Encoders),
		encoded:   make(chan encodedChunk, opts.Encoders),
		asmDone:   make(chan struct{}),
		inflight:  make(chan struct{}, 3*opts.Encoders),
	}
	s.flushCond = sync.NewCond(&s.flushMu)
	s.encWG.Add(opts.Encoders)
	for i := 0; i < opts.Encoders; i++ {
		go s.encodeLoop()
	}
	go s.assemble()
	return s
}

// Append queues one row. It blocks when the pipeline is saturated — that
// backpressure is what bounds the sink's memory — and reports the first
// pipeline error once one occurred.
func (s *Sink) Append(v any) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("campaign: append to closed sink")
	}
	if s.cur == nil {
		s.cur = make([]any, 0, s.chunkRows)
	}
	s.cur = append(s.cur, v)
	var job chunkJob
	dispatch := false
	if len(s.cur) >= s.chunkRows {
		job = chunkJob{seq: s.seq, rows: s.cur}
		s.seq++
		s.cur = nil
		dispatch = true
	}
	s.mu.Unlock()
	if dispatch {
		s.inflight <- struct{}{}
		s.jobs <- job
	}
	s.rows.Add(1)
	return s.Err()
}

// Rows returns the number of rows appended so far.
func (s *Sink) Rows() int64 { return s.rows.Load() }

// Flush seals the partial chunk, waits until every row appended so far
// has been written through to the underlying writer, and returns the
// total bytes successfully written since the sink was created. The
// campaign checkpointer calls it before recording a durable result-file
// offset; the sink stays usable afterwards. Flushing a closed sink just
// reports the totals.
func (s *Sink) Flush() (int64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.written.Load(), s.Err()
	}
	var job chunkJob
	dispatch := false
	if len(s.cur) > 0 {
		job = chunkJob{seq: s.seq, rows: s.cur}
		s.seq++
		s.cur = nil
		dispatch = true
	}
	target := s.seq
	s.mu.Unlock()
	if dispatch {
		s.inflight <- struct{}{}
		s.jobs <- job
	}
	s.flushMu.Lock()
	for s.chunksDone < target {
		s.flushCond.Wait()
	}
	s.flushMu.Unlock()
	return s.written.Load(), s.Err()
}

// MaxPending reports the largest number of out-of-order chunks the
// assembler ever held — the sink's buffering high-water mark, asserted
// bounded by the tests.
func (s *Sink) MaxPending() int { return int(s.maxPending.Load()) }

// Err returns the first pipeline error (encode or write), if any.
func (s *Sink) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// fail records the first pipeline error.
func (s *Sink) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// Close flushes the partial chunk, drains the pipeline and returns the
// first error. The sink cannot be used after Close.
func (s *Sink) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.Err()
	}
	s.closed = true
	var job chunkJob
	dispatch := false
	if len(s.cur) > 0 {
		job = chunkJob{seq: s.seq, rows: s.cur}
		s.seq++
		s.cur = nil
		dispatch = true
	}
	s.mu.Unlock()
	if dispatch {
		s.inflight <- struct{}{}
		s.jobs <- job
	}
	close(s.jobs)
	s.encWG.Wait()
	close(s.encoded)
	<-s.asmDone
	return s.Err()
}

// encodeLoop marshals whole chunks to JSONL bytes. A chunk is always
// forwarded — even after a marshal error — so the assembler's sequence
// stays contiguous and Close never deadlocks.
func (s *Sink) encodeLoop() {
	defer s.encWG.Done()
	for job := range s.jobs {
		var buf bytes.Buffer
		for _, v := range job.rows {
			b, err := json.Marshal(v)
			if err != nil {
				s.fail(fmt.Errorf("campaign: encoding result row: %w", err))
				break
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
		s.encoded <- encodedChunk{seq: job.seq, data: buf.Bytes()}
	}
}

// assemble writes encoded chunks in sequence order, holding early
// arrivals in a pending window bounded by the encoder count.
func (s *Sink) assemble() {
	defer close(s.asmDone)
	pending := make(map[int][]byte)
	next := 0
	for c := range s.encoded {
		pending[c.seq] = c.data
		if n := int64(len(pending)); n > s.maxPending.Load() {
			s.maxPending.Store(n)
		}
		for {
			data, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if s.Err() == nil {
				if n, err := s.w.Write(data); err != nil {
					s.written.Add(int64(n))
					s.fail(fmt.Errorf("campaign: sink write: %w", err))
				} else {
					s.written.Add(int64(n))
				}
			}
			s.flushMu.Lock()
			s.chunksDone = next
			s.flushCond.Broadcast()
			s.flushMu.Unlock()
			<-s.inflight
		}
	}
}

// runOutcome is one run's settled result handed to the ordered emitter:
// its rows (nil for a failed run), whether it completed, and the retries
// it consumed. The emitter folds outcomes into its durable cursor state
// as the cursor passes them.
type runOutcome struct {
	rows      []Row
	completed bool
	retries   int
	errText   string
}

// cursorState is the emitter's durable prefix: every run below Next has
// emitted (rows appended to the sink), and the counters describe exactly
// those runs. This is what a campaign checkpoint records — restart with
// the same cursor state and the same spec, and the result stream
// continues byte-identically.
type cursorState struct {
	Next      int
	Completed int
	Failed    int
	Retries   int
	LastErr   string
}

// orderedEmitter serializes per-run row batches into the sink in run
// order: a run that finishes early parks its outcome until every earlier
// run has emitted. The window is bounded by the campaign's
// max-concurrent budget, so parking cannot grow without bound.
type orderedEmitter struct {
	sink *Sink
	// onAdvance, when set, is invoked with the new cursor state after the
	// cursor moves — while the emitter lock is held, so no row can be
	// appended between the sink flush the hook performs and the cursor it
	// records. That lock-step is what makes a checkpoint's file offset
	// exactly the byte length of the durable run prefix.
	onAdvance func(cursorState)

	mu      sync.Mutex
	cur     cursorState
	pending map[int]runOutcome
}

// emit hands over run's outcome. Each scheduled run emits at most once;
// a run interrupted by cancellation never emits, freezing the cursor so
// a later resume re-executes it.
func (e *orderedEmitter) emit(run int, o runOutcome) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pending == nil {
		e.pending = make(map[int]runOutcome)
	}
	e.pending[run] = o
	var firstErr error
	advanced := false
	for {
		out, ok := e.pending[e.cur.Next]
		if !ok {
			break
		}
		delete(e.pending, e.cur.Next)
		e.cur.Next++
		advanced = true
		if out.completed {
			e.cur.Completed++
		} else {
			e.cur.Failed++
			if out.errText != "" {
				e.cur.LastErr = out.errText
			}
		}
		e.cur.Retries += out.retries
		for i := range out.rows {
			if err := e.sink.Append(&out.rows[i]); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if advanced && e.onAdvance != nil {
		e.onAdvance(e.cur)
	}
	return firstErr
}
