package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// resumeSpec is a campaign whose launch interval leaves a wide window
// to interrupt it between runs: 3 ticks, one at a time, 300ms apart.
const resumeSpec = `$SCENARIO camp-resume
$SEED 11
$TRIALS 2

campaign (
    ticks 3
    max-concurrent 1
    interval 300ms
)

platform target (
    caches 3
)

workload direct (
    queries 8
)
`

// TestEngineResumeContinuesByteIdentically is the campaign-resume e2e
// check: run a campaign partway, drain the engine (the SIGTERM path),
// resume it in a fresh engine over the same results directory, and the
// completed result file must be byte-identical to an uninterrupted
// campaign's.
func TestEngineResumeContinuesByteIdentically(t *testing.T) {
	// Uninterrupted baseline in its own directory.
	ea, err := NewEngine(Options{Dir: t.TempDir(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ea.Close()
	ca, err := ea.Submit(resumeSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, ca)
	if p := ca.Progress(); p.State != StateDone {
		t.Fatalf("baseline state = %s (error %q)", p.State, p.Error)
	}
	baseline, err := os.ReadFile(ca.Path())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: drain after the first run completes, inside the
	// launch-interval window.
	dir := t.TempDir()
	eb, err := NewEngine(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := eb.Submit(resumeSpec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for cb.Progress().Completed < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("first run never completed: %+v", cb.Progress())
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := eb.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	pb := cb.Progress()
	if pb.State != StateCancelled || pb.Completed >= 3 {
		t.Fatalf("interrupted campaign = %+v, want cancelled with < 3 completed", pb)
	}
	ckpt := filepath.Join(dir, cb.ID()+CheckpointExt)
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("drain did not keep the checkpoint: %v", err)
	}
	partial, err := os.ReadFile(cb.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) == 0 || len(partial) >= len(baseline) {
		t.Fatalf("partial result file is %d bytes, want (0, %d)", len(partial), len(baseline))
	}

	// Resume in a fresh engine over the same directory.
	ec, err := NewEngine(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	resumed, err := ec.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if len(resumed) != 1 || resumed[0].ID() != cb.ID() {
		t.Fatalf("resumed %d campaigns (%v), want exactly %s", len(resumed), resumed, cb.ID())
	}
	waitCampaign(t, resumed[0])
	p := resumed[0].Progress()
	if p.State != StateDone || p.Completed != 3 || p.Failed != 0 {
		t.Fatalf("resumed campaign = %+v, want done 3/0", p)
	}
	got, err := os.ReadFile(resumed[0].Path())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, baseline) {
		t.Errorf("resumed result file differs from uninterrupted run:\n got: %s\nwant: %s", got, baseline)
	}
	if p.Rows != ca.Progress().Rows {
		t.Errorf("resumed rows = %d, baseline %d", p.Rows, ca.Progress().Rows)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint survived campaign completion: %v", err)
	}

	// Fresh submissions must not collide with resumed IDs.
	extra, err := ec.Submit(smokeSpec)
	if err != nil {
		t.Fatal(err)
	}
	if extra.ID() == resumed[0].ID() {
		t.Errorf("ID collision after resume: %s", extra.ID())
	}
	waitCampaign(t, extra)
}

// TestSubmitWritesInitialCheckpoint asserts a campaign is resumable the
// moment Submit returns, and that an explicit Cancel abandons it —
// checkpoint deleted, nothing for a later Resume to pick up.
func TestSubmitWritesInitialCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e, err := NewEngine(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	spec := strings.Replace(smokeSpec, "ticks 3", "ticks 500\n    interval 1h", 1)
	c, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, c.ID()+CheckpointExt)
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint right after Submit: %v", err)
	}
	if _, err := e.Cancel(c.ID()); err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, c)
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("explicit cancel kept the checkpoint: %v", err)
	}
	if got, err := e.Resume(); err != nil || len(got) != 0 {
		t.Errorf("Resume after cancel = %v campaigns, err %v; want none", len(got), err)
	}
}

// TestResumeRejectsDamagedCheckpoint covers the corrupt-checkpoint
// paths: unparseable JSON and a result file shorter than the recorded
// offset must both fail loudly instead of silently rerunning.
func TestResumeRejectsDamagedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "c0001-x"+CheckpointExt), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Resume(); err == nil {
		t.Error("Resume accepted an unparseable checkpoint")
	}

	dir2 := t.TempDir()
	ck := `{"version":1,"id":"c0001-camp-smoke","name":"camp-smoke","spec":` +
		jsonString(smokeSpec) + `,"next":1,"completed":1,"rows":2,"offset":4096}`
	if err := os.WriteFile(filepath.Join(dir2, "c0001-camp-smoke"+CheckpointExt), []byte(ck), 0o644); err != nil {
		t.Fatal(err)
	}
	// Result file much shorter than the checkpoint's offset.
	if err := os.WriteFile(filepath.Join(dir2, "c0001-camp-smoke.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(Options{Dir: dir2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, err := e2.Resume(); err == nil {
		t.Error("Resume accepted a checkpoint pointing past the result file")
	}
}

// jsonString marshals s as a JSON string literal for fixture building.
func jsonString(s string) string {
	b := new(strings.Builder)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// TestSinkFlushReportsExactOffsets locks Flush's contract: after Flush
// returns, every appended row is on the writer and the returned byte
// count equals the writer's length — the invariant campaign checkpoints
// record as Offset.
func TestSinkFlushReportsExactOffsets(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf, SinkOptions{Encoders: 3, ChunkRows: 4})
	total := 0
	for i := 0; i < 10; i++ {
		if err := s.Append(Row{Run: i}); err != nil {
			t.Fatal(err)
		}
		total++
		if i%3 == 0 {
			written, err := s.Flush()
			if err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if written != int64(buf.Len()) {
				t.Fatalf("Flush reported %d bytes, writer holds %d", written, buf.Len())
			}
			lines := strings.Count(buf.String(), "\n")
			if lines != total {
				t.Fatalf("after Flush: %d rows on writer, appended %d", lines, total)
			}
		}
	}
	// The sink keeps accepting rows after a flush.
	if err := s.Append(Row{Run: 99}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if written, _ := s.Flush(); written != int64(buf.Len()) {
		t.Errorf("Flush after Close = %d, want %d", written, buf.Len())
	}
}
