package campaign

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSinkStreamsRowsInOrder(t *testing.T) {
	// Acceptance bar: ≥100k rows through the chunked parallel pipeline
	// with bounded buffering and append-order output.
	const n = 120000
	var buf bytes.Buffer
	s := NewSink(&buf, SinkOptions{Encoders: 4, ChunkRows: 256})
	for i := 0; i < n; i++ {
		if err := s.Append(struct {
			N int `json:"n"`
		}{i}); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := s.Rows(); got != n {
		t.Errorf("Rows = %d, want %d", got, n)
	}
	sc := bufio.NewScanner(&buf)
	i := 0
	for sc.Scan() {
		if want := fmt.Sprintf(`{"n":%d}`, i); sc.Text() != want {
			t.Fatalf("line %d = %q, want %q", i, sc.Text(), want)
		}
		i++
	}
	if i != n {
		t.Errorf("lines = %d, want %d", i, n)
	}
	// Bounded buffering: the assembler can park at most the pipeline's
	// in-flight window — jobs queue + busy encoders + encoded queue,
	// each bounded by the encoder count — never the whole stream.
	if maxChunks := 3*4 + 1; s.MaxPending() > maxChunks {
		t.Errorf("MaxPending = %d chunks, want <= %d", s.MaxPending(), maxChunks)
	}
}

func TestSinkFlushesPartialChunk(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf, SinkOptions{Encoders: 2, ChunkRows: 1000})
	for i := 0; i < 3; i++ {
		if err := s.Append(Row{Campaign: "c", Run: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Errorf("lines = %d, want 3", got)
	}
}

func TestSinkAppendAfterClose(t *testing.T) {
	s := NewSink(&bytes.Buffer{}, SinkOptions{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Row{}); err == nil {
		t.Error("Append after Close succeeded")
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// failWriter errors after the first write.
type failWriter struct{ writes int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestSinkSurfacesWriteError(t *testing.T) {
	s := NewSink(&failWriter{}, SinkOptions{Encoders: 2, ChunkRows: 4})
	for i := 0; i < 64; i++ {
		// Append keeps accepting (errors surface asynchronously); the
		// pipeline must drain rather than deadlock.
		_ = s.Append(Row{Run: i}) //nolint — error checked at Close
	}
	err := s.Close()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Close = %v, want disk-full write error", err)
	}
}

func TestOrderedEmitterRestoresRunOrder(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf, SinkOptions{Encoders: 2, ChunkRows: 2})
	e := &orderedEmitter{sink: s}
	// Runs finish out of order; run 1 failed (nil rows) but still
	// advances the cursor.
	if err := e.emit(2, runOutcome{rows: []Row{{Run: 2, Trial: 0}}, completed: true}); err != nil {
		t.Fatal(err)
	}
	if err := e.emit(1, runOutcome{errText: "boom"}); err != nil {
		t.Fatal(err)
	}
	if err := e.emit(0, runOutcome{rows: []Row{{Run: 0, Trial: 0}, {Run: 0, Trial: 1}}, completed: true}); err != nil {
		t.Fatal(err)
	}
	if e.cur.Next != 3 || e.cur.Completed != 2 || e.cur.Failed != 1 || e.cur.LastErr != "boom" {
		t.Errorf("cursor = %+v, want next=3 completed=2 failed=1 lastErr=boom", e.cur)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var runs []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		runs = append(runs, line)
	}
	if len(runs) != 3 {
		t.Fatalf("rows = %d, want 3: %q", len(runs), runs)
	}
	for i, want := range []string{`"run":0,"trial":0`, `"run":0,"trial":1`, `"run":2`} {
		if !strings.Contains(runs[i], want) {
			t.Errorf("row %d = %s, want it to contain %s", i, runs[i], want)
		}
	}
}
