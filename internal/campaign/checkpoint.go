package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dnscde/internal/metrics"
	"dnscde/internal/scenario"
)

// checkpointVersion is the campaign checkpoint file format version.
const checkpointVersion = 1

// CheckpointExt is the extension of campaign checkpoint files, written
// next to each campaign's JSONL result file in the engine's results
// directory.
const CheckpointExt = ".ckpt"

// checkpointFile is the durable record of a campaign's progress: the
// spec (every run is a pure function of it and the run index), the
// emitter's durable cursor, and the result file's byte offset at that
// cursor. A process restarted with the same results directory resumes
// from it and the result stream continues byte-identically.
type checkpointFile struct {
	Version   int       `json:"version"`
	ID        string    `json:"id"`
	Name      string    `json:"name"`
	Spec      string    `json:"spec"`
	Submitted time.Time `json:"submitted"`
	// Next is the first run index not yet durably emitted; Completed,
	// Failed and Retries describe exactly the runs below Next.
	Next      int `json:"next"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Retries   int `json:"retries"`
	// Rows and Offset are the result file's row count and byte length
	// for the durable run prefix; resume truncates the file to Offset,
	// discarding any rows a dying process appended past its last flush.
	Rows    int64  `json:"rows"`
	Offset  int64  `json:"offset"`
	LastErr string `json:"last_err,omitempty"`
}

// ckptPath returns the campaign's checkpoint file path.
func (c *Campaign) ckptPath() string {
	return filepath.Join(c.engine.dir, c.id+CheckpointExt)
}

// writeCheckpoint persists the campaign's durable cursor. It is invoked
// by the ordered emitter with its lock held (so no rows can land between
// the flush and the recorded cursor) and once at submit/resume time with
// the initial cursor. Checkpoint I/O errors are recorded on the campaign
// rather than failing the run: a missing checkpoint only costs replayed
// work after a crash.
func (c *Campaign) writeCheckpoint(cur cursorState) {
	written, err := c.sink.Flush()
	if err != nil {
		return // the sink error surfaces through the run path
	}
	ck := checkpointFile{
		Version:   checkpointVersion,
		ID:        c.id,
		Name:      c.name,
		Spec:      c.text,
		Submitted: c.submitted,
		Next:      cur.Next,
		Completed: cur.Completed,
		Failed:    cur.Failed,
		Retries:   cur.Retries,
		Rows:      c.rowsBase + c.sink.Rows(),
		Offset:    c.fileBase + written,
		LastErr:   cur.LastErr,
	}
	b, err := json.MarshalIndent(&ck, "", "  ")
	if err == nil {
		err = writeFileAtomic(c.ckptPath(), b)
	}
	if err != nil {
		c.mu.Lock()
		if c.lastErr == "" {
			c.lastErr = fmt.Sprintf("checkpoint: %v", err)
		}
		c.mu.Unlock()
	}
}

// removeCheckpoint deletes the campaign's checkpoint file; called when
// the campaign settles for good (done, failed, or explicitly cancelled).
func (c *Campaign) removeCheckpoint() {
	if err := os.Remove(c.ckptPath()); err != nil && !os.IsNotExist(err) {
		c.mu.Lock()
		if c.lastErr == "" {
			c.lastErr = fmt.Sprintf("checkpoint: %v", err)
		}
		c.mu.Unlock()
	}
}

// writeFileAtomic writes data via a temp file + rename so a checkpoint
// is always either the old complete record or the new complete record.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Resume scans the engine's results directory for campaign checkpoints
// left by a previous process (SIGTERM drain, crash) and restarts each
// interrupted campaign from its durable cursor: the result file is
// truncated to the checkpointed offset and reopened for append, the
// scheduler starts at the first non-durable run, and because every run
// is a pure function of (spec, run index) the completed file ends up
// byte-identical to an uninterrupted campaign's. Call it once, after
// NewEngine and before serving traffic. It returns the resumed
// campaigns.
func (e *Engine) Resume() ([]*Campaign, error) {
	paths, err := filepath.Glob(filepath.Join(e.dir, "*"+CheckpointExt))
	if err != nil {
		return nil, fmt.Errorf("campaign: scanning checkpoints: %w", err)
	}
	sort.Strings(paths)
	resumed := make([]*Campaign, 0, len(paths))
	for _, p := range paths {
		c, err := e.resumeOne(p)
		if err != nil {
			return resumed, fmt.Errorf("campaign: resuming %s: %w", p, err)
		}
		resumed = append(resumed, c)
	}
	return resumed, nil
}

// resumeOne restarts one campaign from its checkpoint file.
func (e *Engine) resumeOne(path string) (*Campaign, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck checkpointFile
	if err := json.Unmarshal(b, &ck); err != nil {
		return nil, fmt.Errorf("parsing checkpoint: %w", err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint version %d, this build reads %d", ck.Version, checkpointVersion)
	}
	sc, err := scenario.ParseString(ck.Spec)
	if err != nil {
		return nil, fmt.Errorf("re-parsing spec: %w", err)
	}
	header := scenario.CampaignDef{}
	if sc.Campaign != nil {
		header = *sc.Campaign
	} else {
		header.Ticks = 1
		header.MaxConcurrent = 1
	}
	if ck.Next < 0 || ck.Next > header.Ticks || ck.Offset < 0 {
		return nil, fmt.Errorf("checkpoint cursor out of range (next=%d ticks=%d offset=%d)", ck.Next, header.Ticks, ck.Offset)
	}

	resultPath := filepath.Join(e.dir, ck.ID+".jsonl")
	file, err := os.OpenFile(resultPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("reopening result file: %w", err)
	}
	fi, err := file.Stat()
	if err == nil && fi.Size() < ck.Offset {
		err = fmt.Errorf("result file is %d bytes, checkpoint expects >= %d", fi.Size(), ck.Offset)
	}
	if err == nil {
		// Drop anything appended past the last durable flush, then append
		// from exactly the checkpointed offset.
		if err = file.Truncate(ck.Offset); err == nil {
			_, err = file.Seek(ck.Offset, io.SeekStart)
		}
	}
	if err != nil {
		file.Close()
		return nil, err
	}

	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		file.Close()
		return nil, ErrDraining
	}
	if _, dup := e.campaigns[ck.ID]; dup {
		e.mu.Unlock()
		file.Close()
		return nil, fmt.Errorf("campaign %s already registered", ck.ID)
	}
	// Keep fresh submissions from colliding with resumed IDs.
	var seq int
	if _, err := fmt.Sscanf(ck.ID, "c%d-", &seq); err == nil && seq > e.nextID {
		e.nextID = seq
	}
	ctx, cancel := context.WithCancel(e.baseCtx)
	sink := NewSink(file, e.opts.Sink)
	c := &Campaign{
		id:        ck.ID,
		name:      ck.Name,
		header:    header,
		text:      ck.Spec,
		submitted: ck.Submitted,
		path:      resultPath,
		engine:    e,
		ctx:       ctx,
		cancel:    cancel,
		reg:       metrics.New(),
		sink:      sink,
		file:      file,
		done:      make(chan struct{}),
		emitter: &orderedEmitter{sink: sink, cur: cursorState{
			Next:      ck.Next,
			Completed: ck.Completed,
			Failed:    ck.Failed,
			Retries:   ck.Retries,
			LastErr:   ck.LastErr,
		}},
		startRun:    ck.Next,
		rowsBase:    ck.Rows,
		fileBase:    ck.Offset,
		state:       StatePending,
		completed:   ck.Completed,
		failed:      ck.Failed,
		retriesUsed: ck.Retries,
		lastErr:     ck.LastErr,
	}
	c.emitter.onAdvance = c.writeCheckpoint
	e.campaigns[ck.ID] = c
	e.order = append(e.order, ck.ID)
	e.wg.Add(1)
	e.mu.Unlock()

	go c.loop()
	return c, nil
}
