package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dnscde/internal/metrics"
	"dnscde/internal/scenario"
)

// smokeSpec is a small but real campaign: 3 scheduled runs, two
// concurrent, each run a 2-trial simulated measurement.
const smokeSpec = `$SCENARIO camp-smoke
$SEED 7
$TRIALS 2

campaign (
    ticks 3
    max-concurrent 2
)

platform target (
    caches 2
)

workload direct (
    queries 8
)
`

func waitCampaign(t *testing.T, c *Campaign) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("campaign %s did not finish: %v (progress %+v)", c.ID(), err, c.Progress())
	}
}

func TestEngineRunsCampaignToDone(t *testing.T) {
	service := metrics.New()
	e, err := NewEngine(Options{Dir: t.TempDir(), Service: service})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	c, err := e.Submit(smokeSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, c)

	p := c.Progress()
	if p.State != StateDone {
		t.Errorf("state = %s, want done (error %q)", p.State, p.Error)
	}
	if p.Completed != 3 || p.Failed != 0 {
		t.Errorf("completed/failed = %d/%d, want 3/0", p.Completed, p.Failed)
	}
	// ticks × trials × workloads rows.
	if p.Rows != 3*2*1 {
		t.Errorf("rows = %d, want 6", p.Rows)
	}
	if p.Cost.Probes == 0 {
		t.Errorf("campaign cost roll-up empty: %+v", p.Cost)
	}

	data, err := os.ReadFile(c.Path())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 6 {
		t.Fatalf("result file has %d lines, want 6", len(lines))
	}
	for i, line := range lines {
		if !strings.Contains(line, `"campaign":"`+c.ID()+`"`) {
			t.Errorf("line %d missing campaign id: %s", i, line)
		}
	}

	// Every run's accounting reached the service-wide registry under the
	// campaigns label.
	snap := service.Snapshot()
	var labeled bool
	for name := range snap.Counters {
		if strings.HasPrefix(name, "campaigns.") {
			labeled = true
			break
		}
	}
	if !labeled {
		t.Errorf("service registry has no campaigns.* counters: %v", snap.Counters)
	}
}

func TestEngineShardAndWorkerConformance(t *testing.T) {
	// The acceptance bar: an identical spec must yield byte-identical
	// result files regardless of shard or worker count.
	read := func(t *testing.T, opts Options) []byte {
		t.Helper()
		opts.Dir = t.TempDir()
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		c, err := e.Submit(smokeSpec)
		if err != nil {
			t.Fatal(err)
		}
		waitCampaign(t, c)
		if p := c.Progress(); p.State != StateDone {
			t.Fatalf("state = %s, want done (error %q)", p.State, p.Error)
		}
		data, err := os.ReadFile(c.Path())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	base := read(t, Options{Shards: 1, Workers: 1})
	if len(base) == 0 {
		t.Fatal("baseline result file is empty")
	}
	for _, opts := range []Options{
		{Shards: 4, Workers: 1},
		{Shards: 4, Workers: 4},
	} {
		if got := read(t, opts); !bytes.Equal(got, base) {
			t.Errorf("results at shards=%d workers=%d differ from shards=1 workers=1:\n got: %s\nwant: %s",
				opts.Shards, opts.Workers, got, base)
		}
	}
}

func TestEngineRetryBudgetExhaustion(t *testing.T) {
	// White-box: a spec that parses at submit time but is invalid at run
	// time cannot be built through Submit, so wire a campaign directly to
	// drive the retry loop against a failing run.
	e, err := NewEngine(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var buf bytes.Buffer
	sink := NewSink(&buf, SinkOptions{})
	c := &Campaign{
		id:      "t-retry",
		header:  scenario.CampaignDef{Ticks: 1, MaxConcurrent: 1, Retries: 2},
		text:    "not a scenario",
		engine:  e,
		ctx:     context.Background(),
		cancel:  func() {},
		reg:     metrics.New(),
		sink:    sink,
		emitter: &orderedEmitter{sink: sink},
	}
	c.runOnce(0)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != 1 {
		t.Errorf("failed = %d, want 1", c.failed)
	}
	if c.retriesUsed != 2 {
		t.Errorf("retriesUsed = %d, want 2 (full budget)", c.retriesUsed)
	}
	if !strings.Contains(c.lastErr, "run 0") {
		t.Errorf("lastErr = %q, want run 0 context", c.lastErr)
	}
	// The failed run still advanced the ordered emitter: no rows, no
	// deadlock.
	if buf.Len() != 0 {
		t.Errorf("failed run emitted rows: %q", buf.String())
	}
}

func TestEngineCancelStopsSchedule(t *testing.T) {
	e, err := NewEngine(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// A long launch interval parks the scheduler after run 0; Cancel must
	// interrupt the sleep.
	spec := strings.Replace(smokeSpec, "ticks 3", "ticks 5\n    interval 1h", 1)
	c, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Cancel(c.ID()); err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, c)
	p := c.Progress()
	if p.State != StateCancelled {
		t.Errorf("state = %s, want cancelled", p.State)
	}
	if p.Completed >= 5 {
		t.Errorf("completed = %d, want < 5", p.Completed)
	}
	if _, err := e.Cancel("c9999-nope"); err == nil {
		t.Error("Cancel of unknown id succeeded")
	}
}

func TestEngineDrainRefusesNewWork(t *testing.T) {
	e, err := NewEngine(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	spec := strings.Replace(smokeSpec, "ticks 3", "ticks 1000\n    interval 1h", 1)
	c, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := e.Submit(smokeSpec); err != ErrDraining {
		t.Errorf("Submit during drain = %v, want ErrDraining", err)
	}
	p := c.Progress()
	if p.State != StateCancelled {
		t.Errorf("state after drain = %s, want cancelled", p.State)
	}
	if p.Failed != 0 {
		t.Errorf("drain marked runs failed: %+v", p)
	}
}

func TestEngineRateLimitedCampaign(t *testing.T) {
	e, err := NewEngine(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// A fast token bucket: burst 1, 500 refills/second — the schedule
	// path runs through take() for every launch.
	spec := strings.Replace(smokeSpec, "max-concurrent 2", "max-concurrent 2\n    rate 500 burst=1", 1)
	c, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, c)
	if p := c.Progress(); p.State != StateDone || p.Completed != 3 {
		t.Errorf("rate-limited campaign = %+v, want done 3/3", p)
	}
}

func TestEngineListAndDirs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "results")
	e, err := NewEngine(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Dir() != dir {
		t.Errorf("Dir = %q, want %q", e.Dir(), dir)
	}
	a, err := e.Submit(smokeSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Submit(smokeSpec)
	if err != nil {
		t.Fatal(err)
	}
	list := e.List()
	if len(list) != 2 || list[0] != a || list[1] != b {
		t.Errorf("List not in submission order: %v", list)
	}
	if a.ID() == b.ID() {
		t.Errorf("duplicate campaign ids: %s", a.ID())
	}
	waitCampaign(t, a)
	waitCampaign(t, b)
}
