package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dnscde/internal/clock"
	"dnscde/internal/metrics"
	"dnscde/internal/scenario"
)

// Engine errors the HTTP layer maps to status codes.
var (
	ErrNotFound = errors.New("campaign: no such campaign")
	ErrDraining = errors.New("campaign: engine is draining")
)

// Options configures an Engine.
type Options struct {
	// Workers is the per-run trial fan-out (scenario.RunOptions.Workers);
	// <= 0 uses GOMAXPROCS.
	Workers int
	// Shards is the event-loop lane count each run's world is built with
	// (scenario.RunOptions.Shards); results are byte-identical at any
	// value.
	Shards int
	// Dir is where campaign JSONL result files live; empty creates a
	// fresh temporary directory.
	Dir string
	// Service, when non-nil, receives every run's accounting snapshot
	// merged under the "campaigns" label — the service-wide roll-up the
	// /metrics endpoint exports.
	Service *metrics.Registry
	// Clock stamps submission times; nil uses the wall clock.
	Clock clock.Clock
	// Sink tunes the per-campaign result pipelines.
	Sink SinkOptions
}

// Engine owns every campaign of a cdeserver process: submission,
// scheduling, progress and drain. All methods are safe for concurrent
// use.
type Engine struct {
	opts Options
	clk  clock.Clock
	dir  string

	baseCtx    context.Context
	baseCancel context.CancelFunc
	drainCh    chan struct{}
	wg         sync.WaitGroup

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string
	nextID    int
	draining  bool
}

// NewEngine creates an engine writing result files under opts.Dir.
func NewEngine(opts Options) (*Engine, error) {
	dir := opts.Dir
	var err error
	if dir == "" {
		dir, err = os.MkdirTemp("", "cde-campaigns-")
		if err != nil {
			return nil, fmt.Errorf("campaign: results dir: %w", err)
		}
	} else if err = os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: results dir: %w", err)
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Engine{
		opts:       opts,
		clk:        clk,
		dir:        dir,
		baseCtx:    ctx,
		baseCancel: cancel,
		drainCh:    make(chan struct{}),
		campaigns:  make(map[string]*Campaign),
	}, nil
}

// Dir returns the engine's results directory.
func (e *Engine) Dir() string { return e.dir }

// Submit parses and validates a campaign spec (a scenario file; a
// missing campaign stanza means a single immediate run), assigns an ID,
// opens its result sink and starts its scheduler loop.
func (e *Engine) Submit(text string) (*Campaign, error) {
	sc, err := scenario.ParseString(text)
	if err != nil {
		return nil, err
	}
	header := scenario.CampaignDef{}
	if sc.Campaign != nil {
		header = *sc.Campaign
	} else {
		header.Ticks = 1
		header.MaxConcurrent = 1
	}

	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return nil, ErrDraining
	}
	e.nextID++
	id := fmt.Sprintf("c%04d-%s", e.nextID, sc.Name)
	path := filepath.Join(e.dir, id+".jsonl")
	file, err := os.Create(path)
	if err != nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("campaign: creating result file: %w", err)
	}
	ctx, cancel := context.WithCancel(e.baseCtx)
	sink := NewSink(file, e.opts.Sink)
	c := &Campaign{
		id:        id,
		name:      sc.Name,
		header:    header,
		text:      sc.Format(),
		submitted: e.clk.Now(),
		path:      path,
		engine:    e,
		ctx:       ctx,
		cancel:    cancel,
		reg:       metrics.New(),
		sink:      sink,
		file:      file,
		done:      make(chan struct{}),
		emitter:   &orderedEmitter{sink: sink},
		state:     StatePending,
	}
	c.emitter.onAdvance = c.writeCheckpoint
	e.campaigns[id] = c
	e.order = append(e.order, id)
	e.wg.Add(1)
	e.mu.Unlock()

	// Persist the initial cursor so a shutdown before the first run still
	// leaves a resumable campaign behind.
	c.writeCheckpoint(cursorState{})
	go c.loop()
	return c, nil
}

// Get returns a campaign by ID.
func (e *Engine) Get(id string) (*Campaign, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.campaigns[id]
	return c, ok
}

// List returns every campaign in submission order.
func (e *Engine) List() []*Campaign {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Campaign, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.campaigns[id])
	}
	return out
}

// Cancel stops a campaign: no further ticks launch and in-flight runs
// are interrupted. An explicit cancel abandons the campaign for good —
// its checkpoint is deleted, so a later process will not resurrect it.
// Cancelling a finished campaign is a no-op.
func (e *Engine) Cancel(id string) (*Campaign, error) {
	c, ok := e.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	c.mu.Lock()
	c.explicitCancel = true
	c.mu.Unlock()
	c.cancel()
	return c, nil
}

// Drain gracefully winds the engine down: new submissions are refused,
// no new ticks launch, and in-flight runs finish. If ctx expires first,
// in-flight runs are cancelled and Drain still waits for every
// campaign loop to flush its sink before returning ctx's error.
func (e *Engine) Drain(ctx context.Context) error {
	e.beginDrain()
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		e.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close hard-cancels every campaign and waits for the loops to finish.
func (e *Engine) Close() {
	e.beginDrain()
	e.baseCancel()
	e.wg.Wait()
}

// beginDrain flips the engine into draining mode exactly once.
func (e *Engine) beginDrain() {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.drainCh)
	}
	e.mu.Unlock()
}
