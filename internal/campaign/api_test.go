package campaign

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func apiFixture(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	e, err := NewEngine(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return e, srv
}

func decodeProgress(t *testing.T, r io.Reader) Progress {
	t.Helper()
	var p Progress
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		t.Fatalf("decoding progress: %v", err)
	}
	return p
}

func TestAPICampaignLifecycle(t *testing.T) {
	e, srv := apiFixture(t)

	// Submit.
	resp, err := http.Post(srv.URL+"/campaigns", "text/plain", strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST /campaigns = %d: %s", resp.StatusCode, body)
	}
	p := decodeProgress(t, resp.Body)
	resp.Body.Close()
	if p.ID == "" || p.Ticks != 3 {
		t.Fatalf("submit progress = %+v", p)
	}

	// Wait server-side, then poll the progress endpoint.
	c, ok := e.Get(p.ID)
	if !ok {
		t.Fatalf("engine lost campaign %s", p.ID)
	}
	waitCampaign(t, c)

	resp, err = http.Get(srv.URL + "/campaigns/" + p.ID)
	if err != nil {
		t.Fatal(err)
	}
	p = decodeProgress(t, resp.Body)
	resp.Body.Close()
	if p.State != StateDone || p.Completed != 3 {
		t.Errorf("polled progress = %+v, want done 3/3", p)
	}

	// List.
	resp, err = http.Get(srv.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list []Progress
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != p.ID {
		t.Errorf("GET /campaigns = %+v, want one entry %s", list, p.ID)
	}

	// Stream results.
	resp, err = http.Get(srv.URL + "/campaigns/" + p.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("results Content-Type = %q", ct)
	}
	rows := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row Row
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad result row %q: %v", sc.Text(), err)
		}
		if row.Campaign != p.ID {
			t.Errorf("row campaign = %q, want %q", row.Campaign, p.ID)
		}
		rows++
	}
	resp.Body.Close()
	if rows != 6 {
		t.Errorf("streamed %d rows, want 6", rows)
	}
}

func TestAPICancelAndErrors(t *testing.T) {
	_, srv := apiFixture(t)
	client := srv.Client()

	// Unknown IDs.
	for _, path := range []string{"/campaigns/c9999-x", "/campaigns/c9999-x/results"} {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/campaigns/c9999-x", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown = %d, want 404", resp.StatusCode)
	}

	// Malformed spec.
	resp, err = http.Post(srv.URL+"/campaigns", "text/plain", strings.NewReader("not a scenario"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST bad spec = %d, want 400", resp.StatusCode)
	}

	// Oversized spec.
	big := strings.NewReader(strings.Repeat(";", maxSpecBytes+2))
	resp, err = http.Post(srv.URL+"/campaigns", "text/plain", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("POST oversized spec = %d, want 413", resp.StatusCode)
	}

	// Cancel a parked campaign via DELETE.
	spec := strings.Replace(smokeSpec, "ticks 3", "ticks 100\n    interval 1h", 1)
	resp, err = http.Post(srv.URL+"/campaigns", "text/plain", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	p := decodeProgress(t, resp.Body)
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/campaigns/"+p.ID, nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err = client.Get(srv.URL + "/campaigns/" + p.ID)
		if err != nil {
			t.Fatal(err)
		}
		p = decodeProgress(t, resp.Body)
		resp.Body.Close()
		if p.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never reached a terminal state: %+v", p)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.State != StateCancelled {
		t.Errorf("state after DELETE = %s, want cancelled", p.State)
	}
}

func TestAPIRefusesSubmitDuringDrain(t *testing.T) {
	e, srv := apiFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/campaigns", "text/plain", strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST during drain = %d, want 503", resp.StatusCode)
	}
}
