package campaign

import (
	"context"
	"fmt"

	"dnscde/internal/detpar"
	"dnscde/internal/metrics"
	"dnscde/internal/scenario"
)

// saltCampaignRun separates per-run seed streams from the scenario's
// own platform/workload salts: run i of a campaign measures a fresh,
// independent simulated Internet, deterministically derived from
// (spec seed, i).
const saltCampaignRun = 0xCA

// runOnce executes one scheduled run under the per-run retry budget,
// emits its rows (always exactly once, so the ordered emitter's cursor
// advances even for failed runs) and settles the tick's outcome.
func (c *Campaign) runOnce(run int) {
	rows, err := c.attemptRun(run)
	if emitErr := c.emitter.emit(run, rows); emitErr != nil && err == nil {
		err = emitErr
	}
	if err != nil {
		c.noteFailed(err)
		return
	}
	c.noteCompleted()
}

// attemptRun drives executeRun through the retry budget, merging the
// winning attempt's accounting into the per-campaign and service
// registries.
func (c *Campaign) attemptRun(run int) ([]Row, error) {
	var lastErr error
	for attempt := 0; attempt <= c.header.Retries; attempt++ {
		if err := c.ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		if attempt > 0 {
			c.noteRetry()
		}
		rows, snap, err := executeRun(c.ctx, c.id, c.text, run, c.engine.opts)
		if err == nil {
			c.reg.MergeSnapshot("", snap)
			c.engine.opts.Service.MergeSnapshot("campaigns", snap)
			return rows, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("campaign: run %d: %w", run, lastErr)
}

// executeRun is the simulated-time core: it compiles the spec onto a
// fresh sharded simtest world (scenario.RunDetailed → World.RunSequenced)
// and flattens the per-trial outcomes into result rows. The spec text is
// re-parsed per run so concurrent runs never share mutable scenario
// state, and the run's seed is derived from (spec seed, run), so the
// row stream is a pure function of the spec — byte-identical at any
// worker or shard count, which the conformance test locks.
func executeRun(ctx context.Context, id, text string, run int, opts Options) ([]Row, metrics.Snapshot, error) {
	sc, err := scenario.ParseString(text)
	if err != nil {
		return nil, metrics.Snapshot{}, err
	}
	sc.Seed = detpar.Derive(sc.Seed, saltCampaignRun, uint64(run))
	_, details, err := scenario.RunDetailed(ctx, sc, scenario.RunOptions{
		Workers: opts.Workers,
		Shards:  opts.Shards,
	})
	if err != nil {
		return nil, metrics.Snapshot{}, err
	}
	rows := make([]Row, 0, len(details)*len(sc.Workloads))
	var merged metrics.Snapshot
	for ti, d := range details {
		merged = merged.Merge(d.Metrics)
		for wi, tw := range d.Workloads {
			wd := sc.Workloads[wi]
			rows = append(rows, Row{
				Campaign:    id,
				Run:         run,
				Trial:       ti,
				Workload:    wi,
				Kind:        string(wd.Kind),
				Platform:    wd.Platform,
				Caches:      tw.Caches,
				ProbesSent:  tw.ProbesSent,
				ProbeErrors: tw.ProbeErrors,
			})
		}
	}
	return rows, merged, nil
}
