package campaign

import (
	"context"
	"fmt"

	"dnscde/internal/detpar"
	"dnscde/internal/metrics"
	"dnscde/internal/scenario"
)

// saltCampaignRun separates per-run seed streams from the scenario's
// own platform/workload salts: run i of a campaign measures a fresh,
// independent simulated Internet, deterministically derived from
// (spec seed, i).
const saltCampaignRun = 0xCA

// runOnce executes one scheduled run under the per-run retry budget,
// emits its outcome (exactly once for settled runs — completed or
// budget-exhausted — so the ordered emitter's cursor advances past them)
// and settles the tick's counters. A run interrupted by cancellation is
// neither a completion nor a failure: it does not emit, so the durable
// cursor freezes before it and a later Engine.Resume re-executes it.
func (c *Campaign) runOnce(run int) {
	rows, retries, err := c.attemptRun(run)
	if err != nil && c.ctx.Err() != nil {
		return // interrupted, not settled
	}
	o := runOutcome{rows: rows, retries: retries, completed: err == nil}
	if err != nil {
		o.errText = err.Error()
	}
	if emitErr := c.emitter.emit(run, o); emitErr != nil && err == nil {
		err = emitErr
	}
	if err != nil {
		c.noteFailed(err)
		return
	}
	c.noteCompleted()
}

// attemptRun drives executeRun through the retry budget, merging the
// winning attempt's accounting into the per-campaign and service
// registries. It returns the retries this run consumed alongside its
// rows.
func (c *Campaign) attemptRun(run int) ([]Row, int, error) {
	var lastErr error
	retries := 0
	for attempt := 0; attempt <= c.header.Retries; attempt++ {
		if err := c.ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		if attempt > 0 {
			c.noteRetry()
			retries++
		}
		rows, snap, err := executeRun(c.ctx, c.id, c.text, run, c.engine.opts)
		if err == nil {
			c.reg.MergeSnapshot("", snap)
			c.engine.opts.Service.MergeSnapshot("campaigns", snap)
			return rows, retries, nil
		}
		lastErr = err
	}
	return nil, retries, fmt.Errorf("campaign: run %d: %w", run, lastErr)
}

// executeRun is the simulated-time core: it compiles the spec onto a
// fresh sharded simtest world (scenario.RunDetailed → World.RunSequenced)
// and flattens the per-trial outcomes into result rows. The spec text is
// re-parsed per run so concurrent runs never share mutable scenario
// state, and the run's seed is derived from (spec seed, run), so the
// row stream is a pure function of the spec — byte-identical at any
// worker or shard count, which the conformance test locks.
func executeRun(ctx context.Context, id, text string, run int, opts Options) ([]Row, metrics.Snapshot, error) {
	sc, err := scenario.ParseString(text)
	if err != nil {
		return nil, metrics.Snapshot{}, err
	}
	sc.Seed = detpar.Derive(sc.Seed, saltCampaignRun, uint64(run))
	_, details, err := scenario.RunDetailed(ctx, sc, scenario.RunOptions{
		Workers: opts.Workers,
		Shards:  opts.Shards,
	})
	if err != nil {
		return nil, metrics.Snapshot{}, err
	}
	rows := make([]Row, 0, len(details)*len(sc.Workloads))
	var merged metrics.Snapshot
	for ti, d := range details {
		merged = merged.Merge(d.Metrics)
		for wi, tw := range d.Workloads {
			wd := sc.Workloads[wi]
			rows = append(rows, Row{
				Campaign:    id,
				Run:         run,
				Trial:       ti,
				Workload:    wi,
				Kind:        string(wd.Kind),
				Platform:    wd.Platform,
				Caches:      tw.Caches,
				ProbesSent:  tw.ProbesSent,
				ProbeErrors: tw.ProbeErrors,
			})
		}
	}
	return rows, merged, nil
}
