// Package campaign is the standing-measurement control plane: it turns
// scenario files (the PR 5 grammar, extended with a `campaign` header)
// into scheduled, budgeted, resumable measurement campaigns. Where
// cdebench runs a scenario once and prints a report, the engine here
// runs it N times on a schedule — every run an independent sharded
// simtest world driven through World.RunSequenced — under a worker
// pool, a per-campaign retry budget and a token-bucket launch rate,
// with per-run metrics registries merged into per-campaign and
// service-wide roll-ups, and every per-trial result row streamed to a
// chunked parallel JSONL sink.
//
// The split the simtime analyzer enforces: the run core (runner.go) is
// a pure function of (spec, run index) on simulated time, while the
// tick scheduler (scheduler.go) is the one annotated wall-clock
// boundary — intervals, token buckets and drains are wall-clock by
// design, and nothing downstream of them reads the host clock.
//
// cmd/cdeserver exposes the whole lifecycle over HTTP (api.go):
// submit, list, poll progress, stream results, cancel — with a
// graceful drain on SIGTERM. See DESIGN.md §13.
package campaign

import (
	"context"
	"os"
	"sync"
	"time"

	"dnscde/internal/metrics"
	"dnscde/internal/scenario"
)

// State is a campaign's lifecycle phase.
type State string

// Campaign states. A campaign is pending from Submit until its
// scheduler loop starts, running while ticks execute, and ends in
// exactly one of done (every tick completed), failed (every tick
// attempted, at least one exhausted its retry budget) or cancelled
// (DELETE, engine drain, or shutdown stopped it early).
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Row is one JSONL result record: the outcome of one workload within
// one trial of one scheduled run. Rows are emitted in (run, trial,
// workload) order and are byte-identical at any worker or shard count.
type Row struct {
	Campaign    string `json:"campaign"`
	Run         int    `json:"run"`
	Trial       int    `json:"trial"`
	Workload    int    `json:"workload"`
	Kind        string `json:"kind"`
	Platform    string `json:"platform"`
	Caches      int    `json:"caches"`
	ProbesSent  int64  `json:"probes_sent"`
	ProbeErrors int64  `json:"probe_errors"`
}

// Progress is a campaign's externally visible status: scheduling
// counters plus the cost roll-up read from the per-campaign registry.
// It is what the HTTP API serves.
type Progress struct {
	ID        string `json:"id"`
	Scenario  string `json:"scenario"`
	State     State  `json:"state"`
	Ticks     int    `json:"ticks"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	// RetriesUsed counts re-executions drawn from the per-run retry
	// budget across the whole campaign.
	RetriesUsed int `json:"retries_used"`
	// Rows is the number of result rows streamed to the JSONL sink so
	// far.
	Rows      int64  `json:"rows"`
	Submitted string `json:"submitted"`
	Error     string `json:"error,omitempty"`
	// Cost is the campaign-wide accounting roll-up, merged from every
	// completed run's registry.
	Cost scenario.Cost `json:"cost"`
}

// Campaign is one standing measurement: a validated spec plus its
// scheduler state, per-campaign registry and result sink. All methods
// are safe for concurrent use.
type Campaign struct {
	id        string
	name      string
	header    scenario.CampaignDef
	text      string // canonical spec source, re-parsed per run
	submitted time.Time
	path      string

	engine  *Engine
	ctx     context.Context
	cancel  context.CancelFunc
	reg     *metrics.Registry
	sink    *Sink
	file    *os.File
	done    chan struct{}
	emitter *orderedEmitter

	// startRun is the first run index this process schedules: 0 for a
	// fresh campaign, the checkpoint cursor for a resumed one. rowsBase
	// and fileBase are the resumed result file's row count and byte
	// offset — this process's sink counts from zero on top of them.
	startRun int
	rowsBase int64
	fileBase int64

	mu          sync.Mutex
	state       State
	completed   int
	failed      int
	retriesUsed int
	lastErr     string
	// explicitCancel marks a user-requested cancel (Engine.Cancel): the
	// campaign is abandoned and its checkpoint deleted, unlike a drain or
	// shutdown, which keeps the checkpoint for the next process to resume.
	explicitCancel bool
}

// ID returns the engine-assigned campaign identifier.
func (c *Campaign) ID() string { return c.id }

// Path returns the campaign's JSONL results file.
func (c *Campaign) Path() string { return c.path }

// Done returns a channel closed when the campaign's scheduler loop has
// fully finished (sink flushed, final state set).
func (c *Campaign) Done() <-chan struct{} { return c.done }

// Wait blocks until the campaign finishes or ctx expires.
func (c *Campaign) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Progress reports the campaign's current status.
func (c *Campaign) Progress() Progress {
	c.mu.Lock()
	p := Progress{
		ID:          c.id,
		Scenario:    c.name,
		State:       c.state,
		Ticks:       c.header.Ticks,
		Completed:   c.completed,
		Failed:      c.failed,
		RetriesUsed: c.retriesUsed,
		Error:       c.lastErr,
	}
	c.mu.Unlock()
	p.Rows = c.rowsBase + c.sink.Rows()
	p.Submitted = c.submitted.UTC().Format(time.RFC3339)
	p.Cost = scenario.CostFromSnapshot(c.reg.Snapshot())
	return p
}

// setState transitions the campaign's lifecycle state.
func (c *Campaign) setState(s State) {
	c.mu.Lock()
	c.state = s
	c.mu.Unlock()
}

// noteCompleted records one successfully completed run.
func (c *Campaign) noteCompleted() {
	c.mu.Lock()
	c.completed++
	c.mu.Unlock()
}

// noteFailed records one run that exhausted its retry budget.
func (c *Campaign) noteFailed(err error) {
	c.mu.Lock()
	c.failed++
	if err != nil {
		c.lastErr = err.Error()
	}
	c.mu.Unlock()
}

// noteRetry records one retry drawn from the per-run budget.
func (c *Campaign) noteRetry() {
	c.mu.Lock()
	c.retriesUsed++
	c.mu.Unlock()
}
