package campaign

import (
	"sync"
	"time"
)

// This file is the campaign engine's only wall-clock surface. Launch
// intervals, token-bucket refills and drain waits are real-time by
// design — a standing service schedules against the host clock — so
// every wall-clock read here carries an explicit cdelint allow. The run
// core it launches (runner.go) stays on simulated time; the simtime
// analyzer keeps it that way.

// loop is a campaign's scheduler: it launches header.Ticks runs,
// spacing launches by the interval, metering them through the token
// bucket, and bounding in-flight runs with the max-concurrent
// semaphore. It exits early on cancellation or an engine drain, then
// waits for in-flight runs, flushes the sink and settles the final
// state.
func (c *Campaign) loop() {
	defer c.engine.wg.Done()
	defer close(c.done)
	c.setState(StateRunning)

	h := c.header
	sem := make(chan struct{}, h.MaxConcurrent)
	var bucket *tokenBucket
	if h.Rate > 0 {
		bucket = newTokenBucket(h.Rate, h.Burst)
	}
	var runWG sync.WaitGroup
schedule:
	for run := c.startRun; run < h.Ticks; run++ {
		if run > c.startRun && h.Interval > 0 && !c.sleep(h.Interval) {
			break schedule
		}
		if bucket != nil && !bucket.take(c) {
			break schedule
		}
		select {
		case sem <- struct{}{}:
		case <-c.ctx.Done():
			break schedule
		case <-c.engine.drainCh:
			break schedule
		}
		runWG.Add(1)
		go func(run int) {
			defer runWG.Done()
			defer func() { <-sem }()
			c.runOnce(run)
		}(run)
	}
	runWG.Wait()

	sinkErr := c.sink.Close()
	closeErr := c.file.Close()

	c.mu.Lock()
	switch {
	case c.ctx.Err() != nil:
		c.state = StateCancelled
	case c.completed == h.Ticks:
		c.state = StateDone
	case c.failed > 0 && c.completed+c.failed == h.Ticks:
		c.state = StateFailed
	default:
		// Drained before every tick was scheduled.
		c.state = StateCancelled
	}
	if c.lastErr == "" {
		if sinkErr != nil {
			c.lastErr = sinkErr.Error()
		} else if closeErr != nil {
			c.lastErr = closeErr.Error()
		}
	}
	settled := c.state == StateDone || c.state == StateFailed ||
		(c.state == StateCancelled && c.explicitCancel)
	c.mu.Unlock()

	// A settled campaign never runs again: drop its checkpoint. An
	// interrupted one (drain or shutdown) keeps it for the next process's
	// Engine.Resume.
	if settled {
		c.removeCheckpoint()
	}
}

// sleep waits out the launch interval; false means the campaign was
// cancelled or the engine started draining.
func (c *Campaign) sleep(d time.Duration) bool {
	//cdelint:allow walltime,simtime the launch interval of a standing campaign is wall-clock by design
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-c.ctx.Done():
		return false
	case <-c.engine.drainCh:
		return false
	}
}

// tokenBucket meters run launches: capacity burst, refilled at rate
// tokens per second of wall time.
type tokenBucket struct {
	rate  float64
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// newTokenBucket returns a full bucket.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		//cdelint:allow walltime,simtime token-bucket refill is anchored to the wall clock by design
		last: time.Now(),
	}
}

// take blocks until a token is available; false means the campaign was
// cancelled or the engine started draining before one arrived.
func (b *tokenBucket) take(c *Campaign) bool {
	for {
		b.mu.Lock()
		//cdelint:allow walltime,simtime token-bucket refill is anchored to the wall clock by design
		now := time.Now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
		if b.tokens >= 1 {
			b.tokens--
			b.mu.Unlock()
			return true
		}
		need := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		//cdelint:allow walltime,simtime waiting for a token refill is a wall-clock sleep by design
		timer := time.NewTimer(need)
		select {
		case <-timer.C:
		case <-c.ctx.Done():
			timer.Stop()
			return false
		case <-c.engine.drainCh:
			timer.Stop()
			return false
		}
	}
}
