package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
)

// maxSpecBytes bounds a POSTed campaign spec (matches the scenario
// parser's own file limit).
const maxSpecBytes = 1 << 20

// NewAPI returns the campaign control plane as an http.Handler:
//
//	POST   /campaigns              submit a spec (scenario text), 201 + progress
//	GET    /campaigns              list every campaign's progress
//	GET    /campaigns/{id}         one campaign's progress + cost roll-up
//	GET    /campaigns/{id}/results stream the JSONL result rows
//	DELETE /campaigns/{id}         cancel the campaign
//
// Submissions during a drain answer 503; unknown IDs answer 404.
func NewAPI(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
		if err != nil {
			http.Error(w, fmt.Sprintf("reading spec: %v", err), http.StatusBadRequest)
			return
		}
		if len(body) > maxSpecBytes {
			http.Error(w, fmt.Sprintf("spec exceeds %d bytes", maxSpecBytes), http.StatusRequestEntityTooLarge)
			return
		}
		c, err := e.Submit(string(body))
		if err != nil {
			if errors.Is(err, ErrDraining) {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusCreated, c.Progress())
	})
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		list := e.List()
		out := make([]Progress, 0, len(list))
		for _, c := range list {
			out = append(out, c.Progress())
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		c, ok := e.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, ErrNotFound.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, c.Progress())
	})
	mux.HandleFunc("GET /campaigns/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		c, ok := e.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, ErrNotFound.Error(), http.StatusNotFound)
			return
		}
		f, err := os.Open(c.Path())
		if err != nil {
			http.Error(w, fmt.Sprintf("opening results: %v", err), http.StatusInternalServerError)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/x-ndjson")
		// Copy errors past the header are client disconnects; nothing
		// useful can be reported to the peer anymore.
		_, _ = io.Copy(w, f)
	})
	mux.HandleFunc("DELETE /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		c, err := e.Cancel(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, c.Progress())
	})
	return mux
}

// writeJSON renders one API response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encode errors past WriteHeader are client disconnects.
	_ = enc.Encode(v)
}
