// Package adnet simulates the paper's §III-C data-collection channel: an
// ad network whose iframe-embedded script makes web clients' browsers
// navigate to prober-controlled URLs, generating DNS queries through each
// client's ISP resolution platform.
//
// The channel has the §IV-B indirect-ingress constraints (browser + OS
// caches in front of the platform, no timing control) plus its own
// operational quirk the paper reports: the test runs as a pop-under over
// several minutes and only ≈1:50 of executions complete — modelled here
// as per-client patience.
package adnet

import (
	"context"
	"fmt"

	"dnscde/internal/core"
	"dnscde/internal/dnswire"
	"dnscde/internal/stub"
)

// Client is one web client recruited through the ad network.
type Client struct {
	// ID labels the client in campaign output.
	ID int
	// Patience is how many URL fetches the client performs before the
	// pop-under is closed; 0 means unlimited.
	Patience int

	resolver *stub.Resolver
	fetched  int
}

// NewClient creates a client resolving through r (its browser + OS caches
// and its ISP platform).
func NewClient(id int, patience int, r *stub.Resolver) *Client {
	return &Client{ID: id, Patience: patience, resolver: r}
}

// ErrClientGone reports a client that closed the pop-under before the
// probe script finished.
var ErrClientGone = fmt.Errorf("adnet: client closed the page")

// Fetch simulates the script navigating the browser to http://<name>/:
// one DNS lookup through the local caches and the ISP platform.
func (c *Client) Fetch(ctx context.Context, name string) (core.ProbeResult, error) {
	if c.Patience > 0 && c.fetched >= c.Patience {
		return core.ProbeResult{}, ErrClientGone
	}
	c.fetched++
	res, err := c.resolver.Lookup(ctx, name, dnswire.TypeA)
	if err != nil {
		return core.ProbeResult{}, err
	}
	return core.ProbeResult{
		RCode:          res.RCode,
		Records:        res.Records,
		RTT:            res.RTT,
		FromLocalCache: res.FromLocalCache,
	}, nil
}

// Fetches returns how many URL fetches the client performed.
func (c *Client) Fetches() int { return c.fetched }

// Prober adapts a Client to core.Prober; the probe names become URLs the
// script navigates to.
type Prober struct {
	client *Client
}

var _ core.Prober = (*Prober)(nil)

// NewProber wraps a client.
func NewProber(c *Client) *Prober { return &Prober{client: c} }

// Probe implements core.Prober.
func (p *Prober) Probe(ctx context.Context, name string, _ dnswire.Type) (core.ProbeResult, error) {
	return p.client.Fetch(ctx, name)
}

// Direct implements core.Prober: browser probing is always indirect.
func (*Prober) Direct() bool { return false }

// ClientPool aggregates many web clients of the same ISP into one
// core.Prober, cycling probes across them. This is how the ad-network
// channel really measures: thousands of clients with *different source
// addresses* share one resolution platform, which defeats
// hash-by-source-IP cache selection that would pin a single client to a
// single cache.
type ClientPool struct {
	clients []*Client
	next    int
}

// NewClientPool builds a pool. It panics on an empty client list.
func NewClientPool(clients []*Client) *ClientPool {
	if len(clients) == 0 {
		panic("adnet: empty client pool")
	}
	return &ClientPool{clients: append([]*Client(nil), clients...)}
}

var _ core.Prober = (*ClientPool)(nil)

// Probe implements core.Prober, rotating through the pool.
func (p *ClientPool) Probe(ctx context.Context, name string, _ dnswire.Type) (core.ProbeResult, error) {
	c := p.clients[p.next%len(p.clients)]
	p.next++
	return c.Fetch(ctx, name)
}

// Direct implements core.Prober.
func (*ClientPool) Direct() bool { return false }

// CampaignStats summarises an ad campaign run.
type CampaignStats struct {
	Clients   int
	Completed int
	// AJAXCallbacks counts clients that loaded the page and ran the
	// script at all (the paper's "AJAX call was made to our web server").
	AJAXCallbacks int
}

// RunCampaign executes the probe script (a fixed fetch sequence produced
// by script) on each client, tolerating abandonment. A client completes
// when every fetch of its script succeeds.
func RunCampaign(ctx context.Context, clients []*Client, script func(clientID int) []string) CampaignStats {
	stats := CampaignStats{Clients: len(clients)}
	for _, c := range clients {
		names := script(c.ID)
		if len(names) == 0 {
			continue
		}
		stats.AJAXCallbacks++
		completed := true
		for _, name := range names {
			if _, err := c.Fetch(ctx, name); err != nil {
				completed = false
				break
			}
		}
		if completed {
			stats.Completed++
		}
	}
	return stats
}
