package adnet

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"dnscde/internal/core"
	"dnscde/internal/loadbal"
	"dnscde/internal/platform"
	"dnscde/internal/simtest"
)

func fixture(t *testing.T, caches int) (*simtest.World, *platform.Platform) {
	t.Helper()
	w := simtest.MustNew(simtest.Options{Seed: 23})
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "isp", Caches: caches,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.NewRandom(4) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, plat
}

func TestFetchResolves(t *testing.T) {
	w, plat := fixture(t, 1)
	c := NewClient(1, 0, w.NewStub(plat.Config().IngressIPs[0]))
	session, err := w.Infra.NewHierarchySession(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Fetch(context.Background(), session.ProbeName(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Error("no records")
	}
	if c.Fetches() != 1 {
		t.Errorf("Fetches = %d", c.Fetches())
	}
}

func TestPatienceLimitsFetches(t *testing.T) {
	w, plat := fixture(t, 1)
	c := NewClient(1, 2, w.NewStub(plat.Config().IngressIPs[0]))
	session, err := w.Infra.NewHierarchySession(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if _, err := c.Fetch(context.Background(), session.ProbeName(i)); err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	if _, err := c.Fetch(context.Background(), session.ProbeName(3)); !errors.Is(err, ErrClientGone) {
		t.Errorf("err = %v, want ErrClientGone", err)
	}
}

func TestEnumerateHierarchyViaAdNetwork(t *testing.T) {
	// The paper's ISP measurement: a patient web client completes the
	// full probe sequence and the parent-arrival count recovers the ISP
	// platform's cache count.
	for _, n := range []int{1, 3} {
		w, plat := fixture(t, n)
		client := NewClient(1, 0, w.NewStub(plat.Config().IngressIPs[0]))
		res, err := core.EnumerateHierarchy(context.Background(), NewProber(client), w.Infra,
			core.EnumOptions{Queries: core.RecommendedQueries(n, 0.999)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Caches != n {
			t.Errorf("n=%d: measured %d caches via ad network", n, res.Caches)
		}
	}
}

func TestImpatientClientAborts(t *testing.T) {
	w, plat := fixture(t, 2)
	client := NewClient(1, 3, w.NewStub(plat.Config().IngressIPs[0]))
	_, err := core.EnumerateHierarchy(context.Background(), NewProber(client), w.Infra,
		core.EnumOptions{Queries: 20})
	// The run loses most probes but must not panic; the enumeration
	// reports partial results or an error depending on coverage.
	if err == nil {
		// Partial results are acceptable — at most 3 probes landed.
		t.Log("enumeration degraded gracefully with an impatient client")
	}
}

func TestRunCampaignCompletionRate(t *testing.T) {
	// Paper: >12K clients ran the script (AJAX callback) but only ≈1:50
	// completed the several-minute test.
	w, plat := fixture(t, 2)
	session, err := w.Infra.NewHierarchySession(60)
	if err != nil {
		t.Fatal(err)
	}
	const clientCount = 200
	clients := make([]*Client, 0, clientCount)
	for i := 0; i < clientCount; i++ {
		patience := 5 // most clients close the pop-under early
		if i%50 == 0 {
			patience = 0 // 1:50 stick around to the end
		}
		clients = append(clients, NewClient(i, patience, w.NewStub(plat.Config().IngressIPs[0])))
	}
	stats := RunCampaign(context.Background(), clients, func(clientID int) []string {
		names := make([]string, 0, 30)
		for i := 1; i <= 30; i++ {
			names = append(names, session.ProbeName(i))
		}
		return names
	})
	if stats.Clients != clientCount || stats.AJAXCallbacks != clientCount {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Completed != clientCount/50 {
		t.Errorf("completed = %d, want %d (1:50)", stats.Completed, clientCount/50)
	}
}

func TestRunCampaignEmptyScript(t *testing.T) {
	w, plat := fixture(t, 1)
	clients := []*Client{NewClient(1, 0, w.NewStub(plat.Config().IngressIPs[0]))}
	stats := RunCampaign(context.Background(), clients, func(int) []string { return nil })
	if stats.AJAXCallbacks != 0 || stats.Completed != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestProberIsIndirect(t *testing.T) {
	w, plat := fixture(t, 1)
	var p core.Prober = NewProber(NewClient(1, 0, w.NewStub(plat.Config().IngressIPs[0])))
	if p.Direct() {
		t.Error("ad-network prober claims direct access")
	}
}

func TestDistinctClientsSeparateLocalCaches(t *testing.T) {
	// Two clients of the same ISP share the platform caches but not the
	// local browser/OS caches.
	w, plat := fixture(t, 1)
	ingress := plat.Config().IngressIPs[0]
	a := NewClient(1, 0, w.NewStub(ingress))
	b := NewClient(2, 0, w.NewStub(ingress))
	session, err := w.Infra.NewHierarchySession(2)
	if err != nil {
		t.Fatal(err)
	}
	name := session.ProbeName(1)
	if _, err := a.Fetch(context.Background(), name); err != nil {
		t.Fatal(err)
	}
	res, err := b.Fetch(context.Background(), name)
	if err != nil {
		t.Fatal(err)
	}
	if res.FromLocalCache {
		t.Error("client b hit client a's local cache")
	}
	// But the platform cache is shared: the child nameserver saw the name
	// only once.
	if got := w.Infra.Child.Log().CountName(fmt.Sprintf("%s", name)); got != 1 {
		t.Errorf("child arrivals = %d, want 1 (platform cache shared)", got)
	}
}

func TestClientPoolRotatesVantages(t *testing.T) {
	w, plat := fixture(t, 4)
	ingress := plat.Config().IngressIPs[0]
	clients := make([]*Client, 0, 8)
	for i := 0; i < 8; i++ {
		clients = append(clients, NewClient(i, 0, w.NewStub(ingress)))
	}
	pool := NewClientPool(clients)
	if pool.Direct() {
		t.Error("pool claims direct access")
	}
	session, err := w.Infra.NewHierarchySession(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if _, err := pool.Probe(context.Background(), session.ProbeName(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	// Each client performed exactly one fetch.
	for i, c := range clients {
		if c.Fetches() != 1 {
			t.Errorf("client %d fetched %d times", i, c.Fetches())
		}
	}
}

func TestClientPoolDefeatsHashSource(t *testing.T) {
	// The reason pools exist: hash-by-source-IP platforms look like a
	// single cache to any one client but not to many.
	w := simtest.MustNew(simtest.Options{Seed: 77})
	plat, err := w.NewPlatform(simtest.PlatformSpec{
		Name: "isp", Caches: 3,
		Mutate: func(c *platform.Config) { c.Selector = loadbal.HashSourceIP{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	ingress := plat.Config().IngressIPs[0]
	clients := make([]*Client, 0, 64)
	for i := 0; i < 64; i++ {
		clients = append(clients, NewClient(i, 0, w.NewStub(ingress)))
	}
	res, err := core.EnumerateHierarchy(context.Background(), NewClientPool(clients), w.Infra,
		core.EnumOptions{Queries: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Caches != 3 {
		t.Errorf("pool measured %d caches, want 3", res.Caches)
	}
	single := NewClient(999, 0, w.NewStub(ingress))
	res, err = core.EnumerateHierarchy(context.Background(), NewProber(single), w.Infra,
		core.EnumOptions{Queries: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Caches != 1 {
		t.Errorf("single client measured %d caches, want 1", res.Caches)
	}
}

func TestNewClientPoolPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewClientPool(nil)
}
