package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestAddAndEvents(t *testing.T) {
	tr := New()
	tr.Add("lb", "cache %d selected", 2)
	tr.Add("cache-miss", "empty")
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Kind != "lb" || events[0].Detail != "cache 2 selected" {
		t.Errorf("event 0 = %+v", events[0])
	}
	if got := tr.Kinds(); got[1] != "cache-miss" {
		t.Errorf("kinds = %v", got)
	}
	// Events returns a copy.
	events[0].Kind = "mutated"
	if tr.Events()[0].Kind != "lb" {
		t.Error("Events exposed internal slice")
	}
}

func TestString(t *testing.T) {
	tr := New()
	tr.Add("upstream", "asks root")
	out := tr.String()
	if !strings.Contains(out, " 1. upstream: asks root") {
		t.Errorf("String = %q", out)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New()
	ctx := With(context.Background(), tr)
	Addf(ctx, "k", "v%d", 1)
	if got, ok := FromContext(ctx); !ok || got != tr {
		t.Fatal("FromContext lost the trace")
	}
	if len(tr.Events()) != 1 {
		t.Errorf("events = %d", len(tr.Events()))
	}
}

func TestAddfWithoutCollectorIsNoop(t *testing.T) {
	Addf(context.Background(), "k", "v") // must not panic
	if _, ok := FromContext(context.Background()); ok {
		t.Error("trace found in bare context")
	}
}

func TestConcurrentAdd(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Add("k", "x")
			}
		}()
	}
	wg.Wait()
	if len(tr.Events()) != 1600 {
		t.Errorf("events = %d", len(tr.Events()))
	}
}
