// Package trace provides lightweight, context-propagated resolution
// tracing. A client attaches a collector to its query context; every
// component on the path — the platform's load balancer, caches, the
// iterative resolver — appends events, and the client reads the full
// resolution story afterwards. The simulated network forwards the
// context into handlers, so traces cross simulated host boundaries.
//
// Tracing is opt-in and zero-cost when no collector is attached.
package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// Event is one step of a resolution.
type Event struct {
	// Kind labels the step, e.g. "lb", "cache-hit", "upstream",
	// "referral", "cname", "forward".
	Kind string
	// Detail is the human-readable specifics.
	Detail string
}

// String renders the event.
func (e Event) String() string { return e.Kind + ": " + e.Detail }

// Trace collects events. It is safe for concurrent use.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// New creates an empty trace.
func New() *Trace { return &Trace{} }

// Add appends an event.
func (t *Trace) Add(kind, format string, args ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Events returns a copy of the collected events.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Kinds returns the event kinds in order — convenient for assertions.
func (t *Trace) Kinds() []string {
	events := t.Events()
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = e.Kind
	}
	return out
}

// String renders the whole trace, one event per line.
func (t *Trace) String() string {
	var sb strings.Builder
	for i, e := range t.Events() {
		fmt.Fprintf(&sb, "%2d. %s\n", i+1, e)
	}
	return sb.String()
}

type ctxKey struct{}

// With attaches t to ctx.
func With(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the attached trace, if any.
func FromContext(ctx context.Context) (*Trace, bool) {
	t, ok := ctx.Value(ctxKey{}).(*Trace)
	return t, ok
}

// Addf appends an event to the context's trace; it is a no-op when no
// trace is attached — the hot-path cost is one context lookup.
func Addf(ctx context.Context, kind, format string, args ...any) {
	if t, ok := FromContext(ctx); ok {
		t.Add(kind, format, args...)
	}
}
